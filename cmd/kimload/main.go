// Command kimload bulk-loads CSV data into a kimdb class.
//
// Usage:
//
//	kimload -db /path/to/dbdir -class Part [-create] [-batch 500] data.csv
//
// The CSV header row names the attributes. With -create, the class is
// defined on the fly with domains inferred from the first data row
// (Float for numeric, Boolean for true/false, else String). Values parse
// as: integers,
// floats, true/false, empty string = null, @class:seq = object reference,
// anything else = string. Rows load in batched transactions.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"oodb"
)

func main() {
	dbdir := flag.String("db", "", "database directory (required)")
	class := flag.String("class", "", "target class (required)")
	create := flag.Bool("create", false, "define the class from the CSV header")
	batch := flag.Int("batch", 500, "rows per transaction")
	flag.Parse()
	if *dbdir == "" || *class == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kimload -db dir -class Name [-create] [-batch N] file.csv")
		os.Exit(2)
	}
	if err := run(*dbdir, *class, flag.Arg(0), *create, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "kimload:", err)
		os.Exit(1)
	}
}

func run(dbdir, class, path string, create bool, batch int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("read header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}

	db, err := oodb.Open(dbdir, oodb.Options{})
	if err != nil {
		return err
	}
	defer db.Close()

	// Read the first data row early: -create infers domains from it.
	first, err := r.Read()
	if err == io.EOF {
		first = nil
	} else if err != nil {
		return err
	}

	if create {
		if _, err := db.ClassByName(class); err != nil {
			attrs := make([]oodb.Attr, len(header))
			for i, name := range header {
				domain := "String"
				if first != nil {
					domain = inferDomain(first[i])
				}
				attrs[i] = oodb.Attr{Name: name, Domain: domain}
			}
			if _, err := db.DefineClass(class, nil, attrs...); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "defined class %s with %d attributes\n", class, len(attrs))
		}
	}

	total := 0
	pending := [][]string{}
	if first != nil {
		pending = append(pending, first)
	}
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for _, rec := range pending {
				attrs := oodb.Attrs{}
				for i, name := range header {
					if i >= len(rec) {
						break
					}
					v, err := parseValue(rec[i])
					if err != nil {
						return fmt.Errorf("row %d, column %s: %w", total, name, err)
					}
					if !v.IsNull() {
						attrs[name] = v
					}
				}
				if _, err := tx.Insert(class, attrs); err != nil {
					return err
				}
				total++
			}
			return nil
		})
		pending = pending[:0]
		return err
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pending = append(pending, rec)
		if len(pending) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d objects into %s\n", total, class)
	return nil
}

// inferDomain guesses a primitive domain from a sample value. Numeric
// cells infer Float — integers widen into a Float domain, so a column
// whose first cell happens to be integral still accepts later decimals.
func inferDomain(s string) string {
	s = strings.TrimSpace(s)
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return "Float"
	}
	if s == "true" || s == "false" {
		return "Boolean"
	}
	return "String"
}

// parseValue converts a CSV cell to a value.
func parseValue(s string) (oodb.Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return oodb.Null, nil
	case s == "true":
		return oodb.Bool(true), nil
	case s == "false":
		return oodb.Bool(false), nil
	case strings.HasPrefix(s, "@"):
		parts := strings.SplitN(s[1:], ":", 2)
		if len(parts) != 2 {
			return oodb.Null, fmt.Errorf("bad reference %q", s)
		}
		class, err1 := strconv.ParseUint(parts[0], 10, 32)
		seq, err2 := strconv.ParseUint(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			return oodb.Null, fmt.Errorf("bad reference %q", s)
		}
		return oodb.Ref(oodb.OID(class<<40 | seq)), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return oodb.Int(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return oodb.Float(f), nil
	}
	return oodb.String(s), nil
}
