// Command kimsrv serves a kimdb database over the kimw wire protocol.
//
// Usage:
//
//	kimsrv -db DIR [-addr host:port] [-http addr] [-tokens role=tok,...]
//	       [-max-sessions N] [-idle-timeout D] [-drain-timeout D]
//
// kimsrv is the network front end of the embedded engine: each client
// connection becomes a session with its own workspace and optional
// explicit transaction (see internal/server). On SIGTERM or SIGINT it
// drains gracefully — refuses new dials, lets in-flight commits finish,
// aborts stragglers after -drain-timeout, checkpoints, and exits.
//
// -http mounts the observability mux (/metrics JSON, /debug/pprof) on a
// separate listener; the wire port carries only protocol frames.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oodb"
	"oodb/internal/obs"
	"oodb/internal/server"
)

var (
	dbDir        = flag.String("db", "", "database directory (required; created if missing)")
	addr         = flag.String("addr", "127.0.0.1:7040", "wire listen address")
	httpAddr     = flag.String("http", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	tokens       = flag.String("tokens", "", "restrict handshakes to these role=token pairs, comma-separated (empty: any role)")
	maxSessions  = flag.Int("max-sessions", 1024, "maximum concurrent sessions")
	maxInFlight  = flag.Int("max-inflight", 0, "maximum concurrently executing requests (0: 4×GOMAXPROCS)")
	idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle for this long")
	drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long a drain lets in-flight work finish")
)

func main() {
	flag.Parse()
	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "kimsrv: -db is required")
		flag.Usage()
		os.Exit(2)
	}

	var tokenMap map[string]string
	if *tokens != "" {
		tokenMap = make(map[string]string)
		for _, pair := range strings.Split(*tokens, ",") {
			role, tok, _ := strings.Cut(strings.TrimSpace(pair), "=")
			if role == "" {
				fmt.Fprintf(os.Stderr, "kimsrv: bad -tokens entry %q (want role=token)\n", pair)
				os.Exit(2)
			}
			tokenMap[role] = tok
		}
	}

	db, err := oodb.Open(*dbDir, oodb.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kimsrv: open:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Options{
		Addr:         *addr,
		Tokens:       tokenMap,
		MaxSessions:  *maxSessions,
		MaxInFlight:  *maxInFlight,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drainTimeout,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "kimsrv: listen:", err)
		os.Exit(1)
	}
	fmt.Printf("kimsrv: serving %s on %s\n", *dbDir, srv.Addr())

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, obs.NewMux(obs.Default())); err != nil {
				fmt.Fprintln(os.Stderr, "kimsrv: -http:", err)
			}
		}()
		fmt.Printf("kimsrv: metrics on http://%s/metrics\n", *httpAddr)
	}

	// Block until asked to stop, then drain: refuse new dials, finish
	// in-flight commits, abort stragglers at the deadline, checkpoint.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("kimsrv: %v: draining (timeout %v)\n", got, *drainTimeout)
	if err := srv.Drain(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "kimsrv: drain:", err)
		_ = db.Close()
		os.Exit(1)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kimsrv: close:", err)
		os.Exit(1)
	}
	fmt.Println("kimsrv: clean shutdown")
}
