// Command kimsh is an interactive shell for a kimdb database: the
// programmatic interface of the engine exposed as a line-oriented tool
// (queries in the declarative language, dot-commands for DDL and object
// manipulation).
//
// Usage:
//
//	kimsh -db /path/to/dbdir
//	kimsh -connect host:port [-role r] [-token t]
//	kimsh -shards host1:p1,host2:p2,... [-role r] [-token t]
//
// With -db the shell embeds the engine. With -connect (or the .connect
// command) it becomes a remote shell: data commands — queries, .insert,
// .set, .del, .get, and the explicit .begin/.commit/.abort transaction
// commands — travel over the kimw wire protocol to a kimsrv, exercising
// exactly the client surface an application would. Schema and
// maintenance commands need the embedded engine and refuse politely in
// remote mode.
//
// With -shards the shell fronts a whole shard group: queries
// scatter-gather across every member, .insert places new objects by
// consistent hashing, and .set/.del/.get route to the owner recorded in
// the object's global OID. The .shard command inspects the group
// (.shard status / .shard place / .shard refresh).
//
// Commands:
//
//	SELECT ...                          run a query
//	.defclass Name [super,...]          define a class
//	.attr Class name Domain [set]       add an attribute
//	.index name Class path.dotted [ch]  create an index (ch = hierarchy)
//	.indexes                            list indexes
//	.classes                            list classes
//	.schema Class                       show a class's effective schema
//	.insert Class a=v b=v ...           insert an object
//	.set @c:s a=v ...                   update an object
//	.del @c:s                           delete an object
//	.get @c:s                           show an object
//	.explain SELECT ...                 show the query plan
//	.analyze SELECT ...                 run the query, show the annotated plan
//	.compact [Class]                    compact segments (all, or one class)
//	.stats [Class]                      collect and show planner statistics
//	.metrics                            dump the obs metric snapshot as JSON
//	.checkpoint                         force a checkpoint
//	.connect host:port [role [token]]   switch to remote mode against a kimsrv
//	.disconnect                         drop the remote session
//	.begin / .commit / .abort           explicit transaction (remote mode)
//	.ping                               round-trip the wire (remote mode)
//	.shard status|place|refresh         inspect the shard group (shard mode)
//	.help / .quit
//
// Value literals: integers, floats, 'strings', true/false, null, @class:seq
// references, {v, v, ...} sets.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"oodb"
	"oodb/internal/maint"
	"oodb/internal/obs"
	"oodb/internal/server/client"
	"oodb/internal/shard"
)

func main() {
	dbdir := flag.String("db", "", "database directory (or use -connect for remote mode)")
	connect := flag.String("connect", "", "connect to a kimsrv at host:port instead of embedding the engine")
	shards := flag.String("shards", "", "comma-separated kimsrv addresses forming one sharded database")
	role := flag.String("role", "public", "role name for -connect / -shards")
	token := flag.String("token", "", "authentication token for -connect / -shards")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if *dbdir == "" && *connect == "" && *shards == "" {
		fmt.Fprintln(os.Stderr, "kimsh: need -db directory, -connect host:port, or -shards a,b,...")
		os.Exit(2)
	}
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, obs.NewMux(obs.Default())); err != nil {
				fmt.Fprintln(os.Stderr, "kimsh: -http:", err)
			}
		}()
	}
	sh := &shell{out: os.Stdout}
	if *dbdir != "" {
		db, err := oodb.Open(*dbdir, oodb.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kimsh:", err)
			os.Exit(1)
		}
		defer db.Close()
		sh.db = db
		sh.mnt = db.Maintenance(maint.Options{})
	}
	if *connect != "" {
		if err := sh.connect([]string{*connect, *role, *token}); err != nil {
			fmt.Fprintln(os.Stderr, "kimsh:", err)
			os.Exit(1)
		}
	}
	if *shards != "" {
		r, err := shard.New(strings.Split(*shards, ","),
			shard.Options{Client: client.Options{Role: *role, Token: *token}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kimsh:", err)
			os.Exit(1)
		}
		r.Start()
		defer r.Close()
		sh.sharded = r
		healthy := 0
		for _, st := range r.Probe() {
			if st.Healthy {
				healthy++
			}
		}
		fmt.Fprintf(sh.out, "  shard group: %d members (%d healthy)\n", len(r.Addrs()), healthy)
	}
	defer func() {
		if sh.remote != nil {
			sh.remote.Close()
		}
	}()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("kimdb> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == ".quit" || line == ".exit" {
			break
		}
		if line != "" {
			if err := sh.exec(line); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		fmt.Print("kimdb> ")
	}
	fmt.Println()
}

type shell struct {
	db      *oodb.DB
	out     *os.File
	mnt     *maint.Manager
	remote  *client.Client
	sharded *shard.Router
}

// needDB guards commands that require the embedded engine.
func (sh *shell) needDB() error {
	if sh.db == nil {
		return fmt.Errorf("command needs the embedded engine (start with -db); remote mode carries data commands only")
	}
	return nil
}

func (sh *shell) exec(line string) error {
	// Shard-mode routing first (a shard group is a kind of remote), then
	// single-server remote; everything else falls through to the embedded
	// engine (if any).
	if sh.sharded != nil {
		if handled, err := sh.execShard(line); handled {
			return err
		}
	}
	if sh.remote != nil {
		if handled, err := sh.execRemote(line); handled {
			return err
		}
	}
	head := strings.Fields(line)
	switch head[0] {
	case ".connect":
		return sh.connect(head[1:])
	case ".disconnect", ".begin", ".commit", ".abort", ".ping":
		return fmt.Errorf("not connected (use .connect host:port)")
	case ".shard":
		return fmt.Errorf("not sharded (start with -shards a,b,...)")
	}
	if sh.db == nil && line != ".help" {
		return sh.needDB()
	}
	switch {
	case strings.HasPrefix(strings.ToLower(line), "select"):
		if err := sh.needDB(); err != nil {
			return err
		}
		return sh.query(line)
	case line == ".help":
		fmt.Fprintln(sh.out, "queries: SELECT ... ; commands: .defclass .attr .index .indexes .classes .schema .insert .set .del .get .explain .analyze .compact .stats .metrics .snapshot .snapshots .schemadiff .checkpoint .connect .disconnect .begin .commit .abort .ping .shard .quit")
		return nil
	case line == ".metrics":
		out, err := json.MarshalIndent(sh.db.Metrics(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, string(out))
		return nil
	case strings.HasPrefix(line, ".analyze "):
		out, err := sh.db.ExplainAnalyze(strings.TrimSpace(strings.TrimPrefix(line, ".analyze")))
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, out)
		return nil
	case line == ".classes":
		for _, cl := range sh.db.Engine().Catalog.Classes() {
			fmt.Fprintf(sh.out, "  %4d  %s\n", cl.ID, cl.Name)
		}
		return nil
	case line == ".indexes":
		for _, idx := range sh.db.Engine().Indexes.All() {
			kind := "single-class"
			if idx.Hierarchy {
				kind = "class-hierarchy"
			}
			if len(idx.Path) > 1 {
				kind += ", nested"
			}
			fmt.Fprintf(sh.out, "  %s on class %d path %v (%s, %d entries)\n",
				idx.Name, idx.Class, idx.Path, kind, idx.Len())
		}
		return nil
	case line == ".checkpoint":
		return sh.db.Checkpoint()
	case line == ".snapshots":
		vs, err := sh.db.SchemaVersions()
		if err != nil {
			return err
		}
		for _, v := range vs {
			fmt.Fprintf(sh.out, "  %s (catalog version %d)\n", v.Label, v.Version)
		}
		return nil
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case ".defclass":
		if len(fields) < 2 {
			return fmt.Errorf("usage: .defclass Name [super,...]")
		}
		var supers []string
		if len(fields) > 2 {
			supers = strings.Split(fields[2], ",")
		}
		_, err := sh.db.DefineClass(fields[1], supers)
		return err
	case ".attr":
		if len(fields) < 4 {
			return fmt.Errorf("usage: .attr Class name Domain [set]")
		}
		return sh.db.AddAttribute(fields[1], oodb.Attr{
			Name: fields[2], Domain: fields[3],
			SetValued: len(fields) > 4 && fields[4] == "set",
		})
	case ".index":
		if len(fields) < 4 {
			return fmt.Errorf("usage: .index name Class path.dotted [ch]")
		}
		hier := len(fields) > 4 && fields[4] == "ch"
		return sh.db.CreateIndex(fields[1], fields[2], strings.Split(fields[3], "."), hier)
	case ".snapshot":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .snapshot label")
		}
		v, err := sh.db.SnapshotSchema(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "  snapshot %q at catalog version %d\n", fields[1], v)
		return nil
	case ".schemadiff":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .schemadiff label")
		}
		diff, err := sh.db.DiffSchema(fields[1])
		if err != nil {
			return err
		}
		if len(diff) == 0 {
			fmt.Fprintln(sh.out, "  (no changes)")
		}
		for _, line := range diff {
			fmt.Fprintln(sh.out, " ", line)
		}
		return nil
	case ".schema":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .schema Class")
		}
		return sh.schema(fields[1])
	case ".insert":
		if len(fields) < 2 {
			return fmt.Errorf("usage: .insert Class a=v ...")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return err
		}
		var oid oodb.OID
		err = sh.db.Do(func(tx *oodb.Tx) error {
			var err error
			oid, err = tx.Insert(fields[1], attrs)
			return err
		})
		if err == nil {
			fmt.Fprintf(sh.out, "  @%s\n", oid)
		}
		return err
	case ".set":
		if len(fields) < 3 {
			return fmt.Errorf("usage: .set @c:s a=v ...")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return err
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return err
		}
		return sh.db.Do(func(tx *oodb.Tx) error { return tx.Update(oid, attrs) })
	case ".del":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .del @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return err
		}
		return sh.db.Do(func(tx *oodb.Tx) error { return tx.Delete(oid) })
	case ".get":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .get @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return err
		}
		return sh.show(oid)
	case ".explain":
		plan, err := sh.db.Explain(strings.TrimSpace(strings.TrimPrefix(line, ".explain")))
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, " ", plan)
		return nil
	case ".compact":
		return sh.compact(fields[1:])
	case ".stats":
		return sh.stats(fields[1:])
	default:
		return fmt.Errorf("unknown command %q (try .help)", fields[0])
	}
}

// compact rewrites one class's segment (or every segment) online and
// reports the space recovered.
func (sh *shell) compact(args []string) error {
	report := func(name string, before, after int) {
		fmt.Fprintf(sh.out, "  %s: %d pages -> %d pages\n", name, before, after)
	}
	if len(args) == 1 {
		cl, err := sh.db.ClassByName(args[0])
		if err != nil {
			return err
		}
		res, err := sh.mnt.CompactClass(cl.ID)
		if err != nil {
			return err
		}
		report(cl.Name, res.PagesBefore, res.PagesAfter)
		return sh.db.Checkpoint()
	}
	results, err := sh.mnt.CompactAll()
	if err != nil {
		return err
	}
	cat := sh.db.Engine().Catalog
	for _, cl := range cat.Classes() {
		if res, ok := results[cl.ID]; ok {
			report(cl.Name, res.PagesBefore, res.PagesAfter)
		}
	}
	return nil
}

// stats collects (or refreshes) planner statistics and prints them.
func (sh *shell) stats(args []string) error {
	cat := sh.db.Engine().Catalog
	classes := cat.Classes()
	if len(args) == 1 {
		cl, err := sh.db.ClassByName(args[0])
		if err != nil {
			return err
		}
		if _, err := sh.mnt.AnalyzeClass(cl.ID); err != nil {
			return err
		}
		if err := sh.db.Checkpoint(); err != nil {
			return err
		}
		classes = []*oodb.Class{cl}
	} else if _, err := sh.mnt.AnalyzeAll(); err != nil {
		return err
	}
	reg := sh.db.Engine().Stats
	for _, cl := range classes {
		cs := reg.Get(cl.ID)
		if cs == nil {
			continue
		}
		fmt.Fprintf(sh.out, "  %s: cardinality=%d avg_size=%.1fB\n", cl.Name, cs.Cardinality, cs.AvgSize())
		attrs, err := cat.EffectiveAttrs(cl.ID)
		if err != nil {
			return err
		}
		for _, a := range attrs {
			as := cs.Attr(a.ID)
			if as == nil {
				continue
			}
			fmt.Fprintf(sh.out, "    %s: count=%d distinct=%d min=%s max=%s\n",
				a.Name, as.Count, as.Distinct, as.Min, as.Max)
		}
	}
	return nil
}

func (sh *shell) query(src string) error {
	res, err := sh.db.Query(src)
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, " ", strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row.Values))
		for i, v := range row.Values {
			parts[i] = v.String()
		}
		fmt.Fprintln(sh.out, " ", strings.Join(parts, " | "))
	}
	fmt.Fprintf(sh.out, "  (%d rows)\n", len(res.Rows))
	return nil
}

func (sh *shell) schema(name string) error {
	cl, err := sh.db.ClassByName(name)
	if err != nil {
		return err
	}
	cat := sh.db.Engine().Catalog
	fmt.Fprintf(sh.out, "  class %s (id %d)\n", cl.Name, cl.ID)
	if len(cl.Supers) > 0 {
		var supers []string
		for _, s := range cl.Supers {
			if sc, err := cat.Class(s); err == nil {
				supers = append(supers, sc.Name)
			}
		}
		fmt.Fprintf(sh.out, "  superclasses: %s\n", strings.Join(supers, ", "))
	}
	attrs, err := cat.EffectiveAttrs(cl.ID)
	if err != nil {
		return err
	}
	for _, a := range attrs {
		domain := fmt.Sprintf("class %d", a.Domain)
		if dc, err := cat.Class(a.Domain); err == nil {
			domain = dc.Name
		}
		set := ""
		if a.SetValued {
			set = " set-of"
		}
		inherited := ""
		if a.Source != cl.ID {
			if sc, err := cat.Class(a.Source); err == nil {
				inherited = fmt.Sprintf(" (inherited from %s)", sc.Name)
			}
		}
		fmt.Fprintf(sh.out, "    %s:%s %s%s\n", a.Name, set, domain, inherited)
	}
	return nil
}

func (sh *shell) show(oid oodb.OID) error {
	obj, err := sh.db.Fetch(oid)
	if err != nil {
		return err
	}
	cat := sh.db.Engine().Catalog
	cl, err := cat.Class(obj.Class())
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "  @%s (%s)\n", oid, cl.Name)
	attrs, err := cat.EffectiveAttrs(cl.ID)
	if err != nil {
		return err
	}
	for _, a := range attrs {
		v, err := sh.db.Get(obj, a.Name)
		if err != nil {
			continue
		}
		fmt.Fprintf(sh.out, "    %s = %s\n", a.Name, v)
	}
	return nil
}

// parseOID parses "@class:seq".
func parseOID(s string) (oodb.OID, error) {
	s = strings.TrimPrefix(s, "@")
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad oid %q (want @class:seq)", s)
	}
	class, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad oid class %q", parts[0])
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad oid seq %q", parts[1])
	}
	return oodb.OID(uint64(class)<<40 | seq), nil
}

// parseAttrs parses a=v pairs.
func parseAttrs(pairs []string) (oodb.Attrs, error) {
	out := oodb.Attrs{}
	for _, p := range pairs {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad attribute %q (want name=value)", p)
		}
		v, err := parseValue(p[eq+1:])
		if err != nil {
			return nil, err
		}
		out[p[:eq]] = v
	}
	return out, nil
}

// parseValue parses a shell value literal.
func parseValue(s string) (oodb.Value, error) {
	switch {
	case s == "null":
		return oodb.Null, nil
	case s == "true":
		return oodb.Bool(true), nil
	case s == "false":
		return oodb.Bool(false), nil
	case strings.HasPrefix(s, "@"):
		oid, err := parseOID(s)
		if err != nil {
			return oodb.Null, err
		}
		return oodb.Ref(oid), nil
	case strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2:
		return oodb.String(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return oodb.SetOf(), nil
		}
		var members []oodb.Value
		for _, m := range strings.Split(inner, ",") {
			v, err := parseValue(strings.TrimSpace(m))
			if err != nil {
				return oodb.Null, err
			}
			members = append(members, v)
		}
		return oodb.SetOf(members...), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return oodb.Int(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return oodb.Float(f), nil
	}
	return oodb.String(s), nil
}

// connect dials a kimsrv and switches the shell to remote mode.
func (sh *shell) connect(args []string) error {
	if len(args) < 1 || args[0] == "" {
		return fmt.Errorf("usage: .connect host:port [role [token]]")
	}
	opts := client.Options{}
	if len(args) > 1 && args[1] != "" {
		opts.Role = args[1]
	}
	if len(args) > 2 {
		opts.Token = args[2]
	}
	c, err := client.Dial(args[0], opts)
	if err != nil {
		return err
	}
	if sh.remote != nil {
		_ = sh.remote.Close()
	}
	sh.remote = c
	role := opts.Role
	if role == "" {
		role = "public"
	}
	fmt.Fprintf(sh.out, "  connected to %s as %q (session %d)\n", args[0], role, c.SessionID())
	return nil
}

// execRemote routes data commands over the wire. It reports whether the
// command was remote-handled; unhandled commands fall through to the
// embedded engine.
func (sh *shell) execRemote(line string) (bool, error) {
	if strings.HasPrefix(strings.ToLower(line), "select") {
		res, err := sh.remote.Query(line)
		if err != nil {
			return true, err
		}
		fmt.Fprintln(sh.out, " ", strings.Join(res.Cols, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row.Values))
			for i, v := range row.Values {
				parts[i] = v.String()
			}
			fmt.Fprintln(sh.out, " ", strings.Join(parts, " | "))
		}
		fmt.Fprintf(sh.out, "  (%d rows)\n", len(res.Rows))
		return true, nil
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case ".connect":
		return true, sh.connect(fields[1:])
	case ".disconnect":
		err := sh.remote.Close()
		sh.remote = nil
		fmt.Fprintln(sh.out, "  disconnected")
		return true, err
	case ".ping":
		return true, sh.remote.Ping()
	case ".begin":
		return true, sh.remote.Begin()
	case ".commit":
		return true, sh.remote.Commit()
	case ".abort":
		return true, sh.remote.Abort()
	case ".insert":
		if len(fields) < 2 {
			return true, fmt.Errorf("usage: .insert Class a=v ...")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return true, err
		}
		oid, err := sh.remote.Insert(fields[1], attrs)
		if err == nil {
			fmt.Fprintf(sh.out, "  @%s\n", oid)
		}
		return true, err
	case ".set":
		if len(fields) < 3 {
			return true, fmt.Errorf("usage: .set @c:s a=v ...")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return true, err
		}
		return true, sh.remote.Update(oid, attrs)
	case ".del":
		if len(fields) != 2 {
			return true, fmt.Errorf("usage: .del @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		return true, sh.remote.Delete(oid)
	case ".get":
		if len(fields) != 2 {
			return true, fmt.Errorf("usage: .get @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		obj, err := sh.remote.Fetch(oid)
		if err != nil {
			return true, err
		}
		fmt.Fprintf(sh.out, "  @%s (%s)\n", obj.OID, obj.Class)
		names := make([]string, 0, len(obj.Attrs))
		for name := range obj.Attrs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(sh.out, "    %s = %s\n", name, obj.Attrs[name])
		}
		return true, nil
	}
	return false, nil
}

// execShard routes data commands through the shard router. Queries
// scatter-gather; object commands route to the owner encoded in the
// global OID. Unhandled commands fall through (to the embedded engine,
// if any).
func (sh *shell) execShard(line string) (bool, error) {
	if strings.HasPrefix(strings.ToLower(line), "select") {
		res, err := sh.sharded.Query(line)
		if err != nil {
			var pe *shard.PartialError
			if errors.As(err, &pe) && pe.Result != nil {
				for _, f := range pe.Failed {
					fmt.Fprintf(sh.out, "  ! member %d (%s) failed: %v\n", f.Member, f.Addr, f.Err)
				}
				fmt.Fprintf(sh.out, "  (partial: %d rows from surviving members, NOT the full answer)\n",
					len(pe.Result.Rows))
			}
			return true, err
		}
		fmt.Fprintln(sh.out, " ", strings.Join(res.Cols, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row.Values))
			for i, v := range row.Values {
				parts[i] = v.String()
			}
			fmt.Fprintln(sh.out, " ", strings.Join(parts, " | "))
		}
		fmt.Fprintf(sh.out, "  (%d rows)\n", len(res.Rows))
		return true, nil
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case ".shard":
		sub := "status"
		if len(fields) > 1 {
			sub = fields[1]
		}
		switch sub {
		case "status":
			for _, st := range sh.sharded.Probe() {
				state := "healthy"
				if !st.Healthy {
					state = "DOWN"
				}
				fmt.Fprintf(sh.out, "  member %d  %-21s  %s\n", st.Member, st.Addr, state)
			}
			return true, nil
		case "place":
			pm, err := sh.sharded.Placement()
			if err != nil {
				return true, err
			}
			names := make([]string, 0, len(pm))
			for name := range pm {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(sh.out, "  %s: members %v\n", name, pm[name])
			}
			return true, nil
		case "refresh":
			if err := sh.sharded.Refresh(); err != nil {
				return true, err
			}
			fmt.Fprintln(sh.out, "  placement map refreshed")
			return true, nil
		default:
			return true, fmt.Errorf("usage: .shard status|place|refresh")
		}
	case ".ping":
		healthy := 0
		st := sh.sharded.Probe()
		for _, s := range st {
			if s.Healthy {
				healthy++
			}
		}
		if healthy < len(st) {
			return true, fmt.Errorf("%d/%d members healthy", healthy, len(st))
		}
		fmt.Fprintf(sh.out, "  %d/%d members healthy\n", healthy, len(st))
		return true, nil
	case ".insert":
		if len(fields) < 2 {
			return true, fmt.Errorf("usage: .insert Class a=v ...")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return true, err
		}
		oid, err := sh.sharded.Insert(fields[1], attrs)
		if err == nil {
			fmt.Fprintf(sh.out, "  @%s\n", oid)
		}
		return true, err
	case ".set":
		if len(fields) < 3 {
			return true, fmt.Errorf("usage: .set @c:s a=v ...")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return true, err
		}
		return true, sh.sharded.Update(oid, attrs)
	case ".del":
		if len(fields) != 2 {
			return true, fmt.Errorf("usage: .del @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		return true, sh.sharded.Delete(oid)
	case ".get":
		if len(fields) != 2 {
			return true, fmt.Errorf("usage: .get @c:s")
		}
		oid, err := parseOID(fields[1])
		if err != nil {
			return true, err
		}
		obj, err := sh.sharded.Fetch(oid)
		if err != nil {
			return true, err
		}
		fmt.Fprintf(sh.out, "  @%s (%s)\n", obj.OID, obj.Class)
		names := make([]string, 0, len(obj.Attrs))
		for name := range obj.Attrs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(sh.out, "    %s = %s\n", name, obj.Attrs[name])
		}
		return true, nil
	case ".classes":
		pm, err := sh.sharded.Placement()
		if err != nil {
			return true, err
		}
		names := make([]string, 0, len(pm))
		for name := range pm {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(sh.out, "  %s\n", name)
		}
		return true, nil
	}
	return false, nil
}
