package main

// Server throughput/latency datapoints: hundreds of concurrent wire
// sessions drive a mixed workload (attribute reads, object fetches,
// updates, inserts, queries, explicit transactions) against one kimsrv
// over loopback TCP. The report (BENCH_server.json) records sustained
// ops/sec and the client-observed p50/p99/p999 request latency, plus how
// the admission controller behaved (sheds) and how long the final
// graceful drain took. The acceptance bar is >= 200 concurrent sessions
// sustained without server failure.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oodb"
	"oodb/internal/server"
	"oodb/internal/server/client"
)

type serverReport struct {
	Experiment  string  `json:"experiment"`
	Description string  `json:"description"`
	Sessions    int     `json:"sessions"`
	WindowMS    int     `json:"window_ms"`
	Preloaded   int     `json:"preloaded_objects"`
	Ops         uint64  `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	Sheds       uint64  `json:"sheds"`        // typed-retryable admission rejections
	Errors      uint64  `json:"other_errors"` // anything that was not OK or a shed
	DrainMS     float64 `json:"drain_ms"`
	MinSessions int     `json:"min_sessions_bar"`
	BarMet      bool    `json:"bar_met"`
}

// runServerBench drives the wire server under concurrent session load and
// writes the JSON report to outPath.
func runServerBench(outPath string) {
	sessions := scale(256, 32)
	preload := scale(2000, 400)
	window := 4 * time.Second
	if *quick {
		window = time.Second
	}

	db, done := openDB()
	defer done()
	_, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
	)
	check(err)
	oids := make([]oodb.OID, 0, preload)
	for len(oids) < preload {
		check(db.Do(func(tx *oodb.Tx) error {
			for j := 0; j < 500 && len(oids) < preload; j++ {
				oid, err := tx.Insert("Part", oodb.Attrs{
					"name":   oodb.String(fmt.Sprintf("part-%d", len(oids))),
					"weight": oodb.Int(int64(len(oids) % 10000)),
				})
				if err != nil {
					return err
				}
				oids = append(oids, oid)
			}
			return nil
		}))
	}

	srv := server.New(db, server.Options{MaxSessions: sessions + 8})
	check(srv.Start())
	addr := srv.Addr().String()
	fmt.Printf("kimbench: server bench: %d sessions on %s, %v window\n", sessions, addr, window)

	var ops, sheds, errs uint64
	latencies := make([][]int64, sessions)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		ready.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Role: "bench"})
			ready.Done()
			if err != nil {
				atomic.AddUint64(&errs, 1)
				return
			}
			defer c.Close()
			lat := make([]int64, 0, 1<<14)
			defer func() { latencies[id] = lat }()
			<-start
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				oid := oids[(id*2654435761+n)%len(oids)]
				t0 := time.Now()
				var err error
				switch n % 16 {
				case 0: // explicit transaction: two writes, one commit
					if err = c.Begin(); err == nil {
						if _, err = c.Insert("Part", map[string]oodb.Value{
							"name": oodb.String("txp"), "weight": oodb.Int(int64(n)),
						}); err == nil {
							err = c.Commit()
						} else {
							_ = c.Abort()
						}
					}
				case 1: // auto-commit update
					err = c.Update(oid, map[string]oodb.Value{"weight": oodb.Int(int64(n % 10000))})
				case 2: // indexless associative query over a small slice
					_, err = c.QuerySnapshot(fmt.Sprintf(
						`SELECT name FROM Part WHERE weight = %d`, n%10000))
				case 3: // whole-object fetch
					_, err = c.Fetch(oid)
				default: // attribute read (the OO1-style hot path)
					_, err = c.Get(oid, "weight")
				}
				switch {
				case err == nil:
					lat = append(lat, time.Since(t0).Nanoseconds())
					atomic.AddUint64(&ops, 1)
				case client.Retryable(err):
					atomic.AddUint64(&sheds, 1)
				default:
					atomic.AddUint64(&errs, 1)
					return
				}
			}
		}(s)
	}
	ready.Wait()
	live := srv.Sessions()
	close(start)
	t0 := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	var all []int64
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e3
	}

	d0 := time.Now()
	check(srv.Drain(10 * time.Second))
	drain := time.Since(d0)

	rep := serverReport{
		Experiment:  "E18",
		Description: "concurrent wire sessions vs one kimsrv: sustained ops/sec and client-observed latency under admission control",
		Sessions:    live,
		WindowMS:    int(elapsed.Milliseconds()),
		Preloaded:   preload,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50us:       pct(0.50),
		P99us:       pct(0.99),
		P999us:      pct(0.999),
		Sheds:       sheds,
		Errors:      errs,
		DrainMS:     float64(drain.Microseconds()) / 1e3,
		MinSessions: 200,
	}
	rep.BarMet = (*quick || rep.Sessions >= rep.MinSessions) && errs == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	check(os.WriteFile(outPath, out, 0o644))
	fmt.Printf("kimbench: server bench: %d sessions, %.0f ops/sec, p50 %.0fus p99 %.0fus p999 %.0fus, %d sheds, drain %.1fms -> %s\n",
		rep.Sessions, rep.OpsPerSec, rep.P50us, rep.P99us, rep.P999us, rep.Sheds, rep.DrainMS, outPath)
	if !rep.BarMet {
		check(fmt.Errorf("server bench bar not met: %d sessions (want >= %d), %d errors", rep.Sessions, rep.MinSessions, errs))
	}
}
