package main

// Recovery-time datapoints: how long a cold open takes as a function of
// the WAL size it must replay (E9's claim, measured as a curve and written
// to a JSON file the repo tracks as BENCH_recovery.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"oodb"
)

type recoveryPoint struct {
	Txns     int     `json:"txns"`
	Objects  int     `json:"objects"`
	WALBytes int64   `json:"wal_bytes"`
	OpenMS   float64 `json:"open_ms"` // median of reps cold opens
	Reps     int     `json:"reps"`
}

type recoveryReport struct {
	Experiment  string          `json:"experiment"`
	Description string          `json:"description"`
	Points      []recoveryPoint `json:"points"`
}

// runRecoveryBench builds databases whose WAL holds progressively more
// committed work (checkpointing disabled so nothing is truncated), then
// measures a plain reopen — scan, physical restore, logical replay,
// directory rebuild — against a fresh copy each repetition.
func runRecoveryBench(outPath string) {
	scales := []int{10, 50, 200, 800}
	if *quick {
		scales = []int{10, 50}
	}
	report := recoveryReport{
		Experiment:  "recovery",
		Description: "cold-open time vs WAL size: scan + torn-page restore + logical replay + directory rebuild",
	}
	for _, txns := range scales {
		src, err := os.MkdirTemp("", "kimbench-recovery")
		check(err)
		db, err := oodb.Open(src, oodb.Options{NoSync: true, CheckpointBytes: 1 << 30})
		check(err)
		_, err = db.DefineClass("P", nil, oodb.Attr{Name: "n", Domain: "Integer"})
		check(err)
		for i := 0; i < txns; i++ {
			check(db.Do(func(tx *oodb.Tx) error {
				for j := 0; j < 100; j++ {
					if _, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(j))}); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		check(db.Engine().Log.Sync())
		st, err := os.Stat(filepath.Join(src, "log.wal"))
		check(err)

		const reps = 5
		times := make([]time.Duration, reps)
		for r := range times {
			dir, err := os.MkdirTemp("", "kimbench-recovery-copy")
			check(err)
			for _, f := range []string{"data.kdb", "log.wal"} {
				data, err := os.ReadFile(filepath.Join(src, f))
				check(err)
				check(os.WriteFile(filepath.Join(dir, f), data, 0o644))
			}
			start := time.Now()
			db2, err := oodb.Open(dir, oodb.Options{})
			check(err)
			times[r] = time.Since(start)
			db2.Close()
			os.RemoveAll(dir)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		med := times[reps/2]
		db.Close()
		os.RemoveAll(src)

		report.Points = append(report.Points, recoveryPoint{
			Txns:     txns,
			Objects:  txns * 100,
			WALBytes: st.Size(),
			OpenMS:   float64(med.Microseconds()) / 1000,
			Reps:     reps,
		})
		fmt.Printf("recovery: %4d txns, WAL %8d bytes -> open %v\n", txns, st.Size(), med)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("wrote %s\n", outPath)
}
