package main

// Recovery-time datapoints: how long a cold open takes as a function of
// the WAL size it must replay (E9's claim, measured as a curve and written
// to a JSON file the repo tracks as BENCH_recovery.json). Since the redo
// pass parallelizes by class, each scale is measured twice — serial
// (ReplayWorkers 1) and parallel (ReplayWorkers 8) — and the speedup is
// reported alongside. On a single-core host the two converge; the columns
// stay honest either way because recovery output is identical at any
// worker count (differential-tested in internal/core).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"oodb"
)

// replayWorkers is the parallel column's worker bound. Fixed rather than
// GOMAXPROCS so the report is comparable across hosts.
const replayWorkers = 8

type recoveryPoint struct {
	Txns           int     `json:"txns"`
	Objects        int     `json:"objects"`
	Classes        int     `json:"classes"`
	WALBytes       int64   `json:"wal_bytes"`
	OpenMS         float64 `json:"open_ms"`          // median cold open, serial replay
	OpenParallelMS float64 `json:"open_parallel_ms"` // median cold open, parallel replay
	Speedup        float64 `json:"speedup"`          // open_ms / open_parallel_ms
	ReplayWorkers  int     `json:"replay_workers"`
	Reps           int     `json:"reps"`
}

type recoveryReport struct {
	Experiment  string          `json:"experiment"`
	Description string          `json:"description"`
	Points      []recoveryPoint `json:"points"`
}

// runRecoveryBench builds databases whose WAL holds progressively more
// committed work spread over several classes (checkpointing disabled so
// nothing is truncated), then measures a plain reopen — scan, physical
// restore, logical replay, directory rebuild — against a fresh copy each
// repetition, once per replay mode.
func runRecoveryBench(outPath string) {
	scales := []int{10, 50, 200, 800}
	if *quick {
		scales = []int{10, 50}
	}
	const nClasses = 8
	report := recoveryReport{
		Experiment:  "recovery",
		Description: "cold-open time vs WAL size, serial vs parallel redo: scan + torn-page restore + logical replay + directory rebuild",
	}
	for _, txns := range scales {
		src, err := os.MkdirTemp("", "kimbench-recovery")
		check(err)
		db, err := oodb.Open(src, oodb.Options{NoSync: true, CheckpointBytes: 1 << 30})
		check(err)
		names := make([]string, nClasses)
		for c := 0; c < nClasses; c++ {
			names[c] = fmt.Sprintf("P%d", c)
			_, err = db.DefineClass(names[c], nil, oodb.Attr{Name: "n", Domain: "Integer"})
			check(err)
		}
		for i := 0; i < txns; i++ {
			class := names[i%nClasses]
			check(db.Do(func(tx *oodb.Tx) error {
				for j := 0; j < 100; j++ {
					if _, err := tx.Insert(class, oodb.Attrs{"n": oodb.Int(int64(j))}); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		check(db.Engine().Log.Sync())
		st, err := os.Stat(filepath.Join(src, "log.wal"))
		check(err)

		const reps = 5
		coldOpen := func(workers int) time.Duration {
			times := make([]time.Duration, reps)
			for r := range times {
				dir, err := os.MkdirTemp("", "kimbench-recovery-copy")
				check(err)
				for _, f := range []string{"data.kdb", "log.wal"} {
					data, err := os.ReadFile(filepath.Join(src, f))
					check(err)
					check(os.WriteFile(filepath.Join(dir, f), data, 0o644))
				}
				start := time.Now()
				db2, err := oodb.Open(dir, oodb.Options{ReplayWorkers: workers})
				check(err)
				times[r] = time.Since(start)
				db2.Close()
				os.RemoveAll(dir)
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			return times[reps/2]
		}
		serial := coldOpen(1)
		parallel := coldOpen(replayWorkers)
		db.Close()
		os.RemoveAll(src)

		speedup := 0.0
		if parallel > 0 {
			speedup = float64(serial) / float64(parallel)
		}
		report.Points = append(report.Points, recoveryPoint{
			Txns:           txns,
			Objects:        txns * 100,
			Classes:        nClasses,
			WALBytes:       st.Size(),
			OpenMS:         float64(serial.Microseconds()) / 1000,
			OpenParallelMS: float64(parallel.Microseconds()) / 1000,
			Speedup:        speedup,
			ReplayWorkers:  replayWorkers,
			Reps:           reps,
		})
		fmt.Printf("recovery: %4d txns, WAL %8d bytes -> open serial %v, parallel %v (%.2fx)\n",
			txns, st.Size(), serial, parallel, speedup)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("wrote %s\n", outPath)
}
