//go:build linux

package main

import (
	"os"
	"syscall"
)

// dropFileCache asks the kernel to evict the file's pages from the OS
// page cache (posix_fadvise DONTNEED). Best effort: on failure the
// benchmark still runs, just with a warmer cache than intended.
//
// The shard benchmark uses this to keep loopback honest: on one machine
// every member's file shares the host page cache, which no real shard
// deployment has — each member owns its RAM. Dropping the cache
// uniformly means a member's buffer pool is the only memory it gets,
// which is exactly the resource sharding aggregates.
func dropFileCache(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	// fadvise64(fd, offset=0, len=0 /* whole file */, POSIX_FADV_DONTNEED)
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, 4, 0, 0)
}
