package main

// MVCC reader-throughput datapoints: the tentpole claim is that snapshot
// readers never touch the lock manager, so a bulk writer that would stall
// every S-locking scan leaves snapshot scan throughput essentially flat.
// Three modes over the same database, each a fixed wall-clock window:
//
//	baseline  N snapshot readers, no writer
//	mvcc      N snapshot readers + 1 bulk writer
//	locked    N S-locking readers + 1 bulk writer (the contrast)
//
// The report (BENCH_mvcc.json) records reader scans/sec per mode and the
// baseline/mvcc ratio; the acceptance bar is ratio <= 1.5.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oodb"
)

type mvccMode struct {
	Mode          string  `json:"mode"`
	Readers       int     `json:"readers"`
	Writer        bool    `json:"writer"`
	ReaderScans   uint64  `json:"reader_scans"`
	ScansPerSec   float64 `json:"scans_per_sec"`
	WriterCommits uint64  `json:"writer_commits"`
	ReaderErrors  uint64  `json:"reader_errors"` // aborted locked scans (deadlock victims etc.)
}

type mvccReport struct {
	Experiment    string     `json:"experiment"`
	Description   string     `json:"description"`
	Objects       int        `json:"objects"`
	WindowMS      int        `json:"window_ms"`
	Modes         []mvccMode `json:"modes"`
	SlowdownVsRO  float64    `json:"slowdown_vs_readonly"` // baseline rate / mvcc rate
	SlowdownLimit float64    `json:"slowdown_limit"`
	WithinLimit   bool       `json:"within_limit"`
}

// runMVCCBench measures snapshot-reader throughput with and without a bulk
// writer and writes the JSON report to outPath.
func runMVCCBench(outPath string) {
	const readers = 8
	objects := scale(4000, 800)
	window := 1500 * time.Millisecond
	if *quick {
		window = 400 * time.Millisecond
	}

	db, done := openDB()
	defer done()
	_, err := db.DefineClass("R", nil, oodb.Attr{Name: "n", Domain: "Integer"})
	check(err)
	cls, err := db.ClassByName("R")
	check(err)
	var oids []oodb.OID
	const insertBatch = 500
	for len(oids) < objects {
		check(db.Do(func(tx *oodb.Tx) error {
			for j := 0; j < insertBatch && len(oids) < objects; j++ {
				oid, err := tx.Insert("R", oodb.Attrs{"n": oodb.Int(int64(len(oids)))})
				if err != nil {
					return err
				}
				oids = append(oids, oid)
			}
			return nil
		}))
	}

	// Sanity: the facade's snapshot query path agrees with the heap before
	// any contention starts.
	res, err := db.QuerySnapshot(`SELECT * FROM R`)
	check(err)
	if len(res.Rows) != objects {
		check(fmt.Errorf("snapshot query sees %d of %d objects", len(res.Rows), objects))
	}

	snapshotScan := func() (int, error) {
		tx := db.BeginSnapshot()
		n := 0
		err := tx.Scan(cls.ID, func(*oodb.Object) bool { n++; return true })
		tx.Commit()
		return n, err
	}
	lockedScan := func() (int, error) {
		tx := db.Begin()
		n := 0
		err := tx.Scan(cls.ID, func(*oodb.Object) bool { n++; return true })
		if err != nil {
			tx.Abort()
			return n, err
		}
		return n, tx.Commit()
	}

	runMode := func(mode string, scan func() (int, error), withWriter bool) mvccMode {
		var scans, readerErrs, commits uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := scan(); err != nil {
						atomic.AddUint64(&readerErrs, 1)
						continue
					}
					atomic.AddUint64(&scans, 1)
				}
			}()
		}
		if withWriter {
			wg.Add(1)
			go func() {
				defer wg.Done()
				const batch = 64
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					base := (i * batch) % len(oids)
					err := db.Do(func(tx *oodb.Tx) error {
						for j := 0; j < batch; j++ {
							oid := oids[(base+j)%len(oids)]
							if err := tx.Update(oid, oodb.Attrs{"n": oodb.Int(int64(i))}); err != nil {
								return err
							}
						}
						return nil
					})
					if err == nil {
						atomic.AddUint64(&commits, 1)
					}
				}
			}()
		}
		start := time.Now()
		time.Sleep(window)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)
		m := mvccMode{
			Mode:          mode,
			Readers:       readers,
			Writer:        withWriter,
			ReaderScans:   atomic.LoadUint64(&scans),
			ScansPerSec:   float64(atomic.LoadUint64(&scans)) / elapsed.Seconds(),
			WriterCommits: atomic.LoadUint64(&commits),
			ReaderErrors:  atomic.LoadUint64(&readerErrs),
		}
		fmt.Printf("mvcc: %-28s %8.1f scans/s  (%d scans, %d writer commits, %d reader errors)\n",
			mode, m.ScansPerSec, m.ReaderScans, m.WriterCommits, m.ReaderErrors)
		return m
	}

	report := mvccReport{
		Experiment: "mvcc",
		Description: fmt.Sprintf("%d snapshot readers scanning %d objects for %v per mode; "+
			"bulk writer commits %d-object update transactions", readers, objects, window, 64),
		Objects:       objects,
		WindowMS:      int(window.Milliseconds()),
		SlowdownLimit: 1.5,
	}
	baseline := runMode("snapshot readers, no writer", snapshotScan, false)
	mvcc := runMode("snapshot readers + bulk writer", snapshotScan, true)
	locked := runMode("locked readers + bulk writer", lockedScan, true)
	report.Modes = []mvccMode{baseline, mvcc, locked}
	if mvcc.ScansPerSec > 0 {
		report.SlowdownVsRO = baseline.ScansPerSec / mvcc.ScansPerSec
	}
	report.WithinLimit = report.SlowdownVsRO <= report.SlowdownLimit

	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("wrote %s (slowdown vs read-only: %.2fx, limit %.1fx)\n",
		outPath, report.SlowdownVsRO, report.SlowdownLimit)
}
