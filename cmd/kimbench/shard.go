package main

// Scale-out datapoint (E19): the same dataset partitioned over 4 kimsrv
// members vs loaded into 1, driven through the same shard router in both
// cases so the wire and merge costs are identical. Records are padded to
// ~1 KiB and the dataset is sized so each member's quarter fits its
// buffer pool while the single member must stream every scan through a
// pool several times too small — the classic reason to shard before a
// machine runs out: aggregate buffer pool. The report (BENCH_shard.json)
// records both throughputs, the speedup, and whether a selective query
// answers fingerprint-identically on both layouts. The acceptance bar is
// speedup >= 2 with matching fingerprints.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"oodb"
	"oodb/internal/model"
	"oodb/internal/server"
	"oodb/internal/server/client"
	"oodb/internal/shard"
)

type shardReport struct {
	Experiment       string  `json:"experiment"`
	Description      string  `json:"description"`
	Members          int     `json:"members"`
	Objects          int     `json:"objects"`
	PadBytes         int     `json:"pad_bytes"`
	PoolPages        int     `json:"pool_pages_per_member"`
	WindowMS         int     `json:"window_ms"`
	SingleQPS        float64 `json:"single_member_queries_per_sec"`
	ShardQPS         float64 `json:"sharded_queries_per_sec"`
	Speedup          float64 `json:"speedup"`
	FingerprintMatch bool    `json:"fingerprint_match"`
	MinSpeedup       float64 `json:"min_speedup_bar"`
	BarMet           bool    `json:"bar_met"`
}

// shardGroup is one set of loopback members fronted by a router.
type shardGroup struct {
	router    *shard.Router
	dbs       []*oodb.DB
	dataFiles []string
	close     func()
}

// newShardGroup starts n members, each its own database directory and
// buffer pool, and a router over them.
func newShardGroup(n, pool int) *shardGroup {
	g := &shardGroup{}
	var closers []func()
	var addrs []string
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "kimbench-shard")
		check(err)
		db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: pool})
		check(err)
		_, err = db.DefineClass("Part", nil,
			oodb.Attr{Name: "name", Domain: "String"},
			oodb.Attr{Name: "weight", Domain: "Integer"},
			oodb.Attr{Name: "pad", Domain: "String"},
		)
		check(err)
		srv := server.New(db, server.Options{})
		check(srv.Start())
		addrs = append(addrs, srv.Addr().String())
		g.dbs = append(g.dbs, db)
		g.dataFiles = append(g.dataFiles, filepath.Join(dir, "data.kdb"))
		d := dir
		closers = append(closers, func() {
			_ = srv.Drain(5 * time.Second)
			_ = db.Close()
			_ = os.RemoveAll(d)
		})
	}
	r, err := shard.New(addrs, shard.Options{Client: client.Options{Role: "bench", RequestTimeout: 30 * time.Second}})
	check(err)
	closers = append(closers, func() { _ = r.Close() })
	g.router = r
	g.close = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	return g
}

// settle checkpoints every member and fsyncs its data file so the
// kernel pages are clean: posix_fadvise cannot evict dirty page-cache
// pages, and the cold-cache loop below depends on eviction actually
// happening. (Checkpoint alone is not enough — the members run NoSync,
// which skips the checkpoint fsync too.)
func (g *shardGroup) settle() {
	for _, db := range g.dbs {
		check(db.Checkpoint())
	}
	for _, p := range g.dataFiles {
		f, err := os.Open(p)
		check(err)
		check(f.Sync())
		check(f.Close())
	}
}

// coldCache evicts every member's data file from the OS page cache. On
// one machine all members share the host cache — which no real shard
// deployment has; each member owns its RAM — so between rounds the
// benchmark drops it uniformly, leaving each member exactly its buffer
// pool. The sharded group keeps answering from its aggregate pools; the
// single member, whose pool is a quarter of the dataset, pays real I/O.
func (g *shardGroup) coldCache() {
	for _, p := range g.dataFiles {
		dropFileCache(p)
	}
}

// loadParts inserts the deterministic dataset through the router (the
// ring spreads it over however many members the group has).
func loadParts(g *shardGroup, objects, padBytes int) {
	pad := strings.Repeat("x", padBytes)
	for i := 0; i < objects; i++ {
		_, err := g.router.Insert("Part", map[string]model.Value{
			"name":   model.String(fmt.Sprintf("part-%06d", i)),
			"weight": model.Int(int64(i % 10000)),
			"pad":    model.String(pad),
		})
		check(err)
	}
}

// shardBands are the selective scan predicates the throughput loop
// rotates through: each scans the full segment (no index) but returns a
// narrow slice, so page access dominates and merge cost stays small.
func shardBands() []string {
	var qs []string
	for lo := 0; lo < 10000; lo += 1250 {
		qs = append(qs, fmt.Sprintf(
			`SELECT name, weight FROM Part WHERE weight >= %d AND weight < %d`, lo, lo+150))
	}
	return qs
}

// fingerprintRows hashes a result's values order-insensitively: rows are
// canonically encoded, sorted, and FNV-hashed. OIDs differ between
// layouts by construction, so values only.
func fingerprintRows(res *shard.Result) uint64 {
	enc := make([][]byte, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b []byte
		for _, v := range row.Values {
			b = model.AppendValue(b, v)
		}
		enc = append(enc, b)
	}
	sort.Slice(enc, func(a, b int) bool { return bytes.Compare(enc[a], enc[b]) < 0 })
	h := fnv.New64a()
	for _, b := range enc {
		_, _ = h.Write(b)
		_, _ = h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// measureQPS runs the band queries round-robin for the window and
// reports completed queries per second. The OS cache is dropped before
// every query (see coldCache); buffer pools persist across queries, so
// whatever a member's pool holds is the memory it genuinely owns.
func measureQPS(g *shardGroup, window time.Duration) float64 {
	bands := shardBands()
	// Warm up: one pass so every pool holds whatever fits.
	for _, q := range bands {
		_, err := g.router.Query(q)
		check(err)
	}
	done := 0
	t0 := time.Now()
	for time.Since(t0) < window {
		g.coldCache()
		_, err := g.router.Query(bands[done%len(bands)])
		check(err)
		done++
	}
	return float64(done) / time.Since(t0).Seconds()
}

// runShardBench measures 4-member vs 1-member throughput and writes the
// JSON report to outPath.
func runShardBench(outPath string) {
	// Records are padded to just under one page (MaxRecord is ~4060
	// bytes), so each object owns a heap page and a scan touches one page
	// per object. The dataset is ~2.7x each member's pool: the single
	// member misses on every page while each sharded quarter fits its
	// pool whole.
	const members = 4
	objects := scale(16000, 1000)
	pool := scale(6144, 384)
	padBytes := 3600
	window := 4 * time.Second
	if *quick {
		window = time.Second
	}

	fmt.Printf("kimbench: shard bench: %d objects (~%d KiB each), pool %d pages/member\n",
		objects, (padBytes+64)/1024+1, pool)

	single := newShardGroup(1, pool)
	defer single.close()
	loadParts(single, objects, padBytes)
	single.settle()

	sharded := newShardGroup(members, pool)
	defer sharded.close()
	loadParts(sharded, objects, padBytes)
	sharded.settle()

	// Correctness before speed: a selective query must answer identically
	// on both layouts (values, not OIDs). The band sits inside the weight
	// range that exists at any scale.
	probe := `SELECT name, weight FROM Part WHERE weight >= 0 AND weight < 100`
	res1, err := single.router.Query(probe)
	check(err)
	resN, err := sharded.router.Query(probe)
	check(err)
	match := len(res1.Rows) > 0 && fingerprintRows(res1) == fingerprintRows(resN)

	singleQPS := measureQPS(single, window)
	shardQPS := measureQPS(sharded, window)

	rep := shardReport{
		Experiment:       "E19",
		Description:      "scatter-gather over 4 kimsrv members vs 1: aggregate buffer pool turns scan-bound queries memory-resident",
		Members:          members,
		Objects:          objects,
		PadBytes:         padBytes,
		PoolPages:        pool,
		WindowMS:         int(window.Milliseconds()),
		SingleQPS:        singleQPS,
		ShardQPS:         shardQPS,
		Speedup:          shardQPS / singleQPS,
		FingerprintMatch: match,
		MinSpeedup:       2.0,
	}
	rep.BarMet = match && (*quick || rep.Speedup >= rep.MinSpeedup)

	out, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	check(os.WriteFile(outPath, out, 0o644))
	fmt.Printf("kimbench: shard bench: single %.1f q/s, sharded %.1f q/s, speedup %.2fx, fingerprint match %v -> %s\n",
		rep.SingleQPS, rep.ShardQPS, rep.Speedup, rep.FingerprintMatch, outPath)
	if !rep.BarMet {
		check(fmt.Errorf("shard bench bar not met: speedup %.2fx (want >= %.1fx), match %v",
			rep.Speedup, rep.MinSpeedup, rep.FingerprintMatch))
	}
}
