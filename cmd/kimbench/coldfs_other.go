//go:build !linux

package main

// dropFileCache is a no-op off Linux: the shard benchmark then measures
// with whatever the host page cache holds (reported numbers are still
// honest, the single-member side is just artificially warm).
func dropFileCache(path string) {}
