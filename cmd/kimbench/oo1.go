package main

// OO1 clustering datapoints (E17, written to BENCH_oo1.json): cold-cache
// pointer-chasing traversals over the same seeded part/connection graph in
// three physical layouts — fragmented (as a long-lived database converges
// to), default-compacted (scan order), and composite-clustered (children
// laid next to parents). The generator decorrelates physical order from
// graph locality (internal/bench/oo1.go), so the difference between the
// layouts is exactly what the placement policy buys. A fourth section
// measures heat-ordered placement on the lookup workload it targets: a hot
// subset is fetched repeatedly, the segment is recompacted under
// ClusterHot, and the cold misses of re-reading the hot set are compared.
//
// The traversal fingerprint (visits + order-sensitive hash) is asserted
// identical across all layouts — the benchmark refuses to report a win
// that changed logical content.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"oodb"
	"oodb/internal/bench"
	"oodb/internal/maint"
)

type oo1Layout struct {
	Pages        int     `json:"pages"`
	TraversalMS  float64 `json:"traversal_ms"`  // median of reps, cold pool each rep
	PoolMisses   uint64  `json:"pool_misses"`   // during the traversals of the median rep
	Reordered    int     `json:"reordered"`     // records moved off scan order by the rewrite
	ScanMS       float64 `json:"scan_ms"`       // full-class scan, cold
	HashMatches  bool    `json:"hash_matches"`  // traversal fingerprint equals the fragmented layout's
	VisitMatches bool    `json:"visit_matches"` // visit count equals the fragmented layout's
}

type oo1Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Parts       int    `json:"parts"`
	Conn        int    `json:"connections_per_part"`
	NoisePer    int    `json:"noise_per_part"`
	Seed        int64  `json:"seed"`
	ColdPool    int    `json:"cold_pool_pages"`
	Reps        int    `json:"reps"`
	Roots       int    `json:"traversal_roots"`
	Visits      int    `json:"traversal_visits"`
	Hash        string `json:"traversal_hash"`

	OccupancyFragmented float64 `json:"occupancy_fragmented"`

	Fragmented oo1Layout `json:"fragmented"`
	Default    oo1Layout `json:"default_compacted"`
	Composite  oo1Layout `json:"composite_clustered"`

	HotSet          int     `json:"hot_set_parts"`
	HotBeforeMS     float64 `json:"hot_lookup_ms_fragmented"`
	HotAfterMS      float64 `json:"hot_lookup_ms_clustered"`
	HotBeforeMisses uint64  `json:"hot_lookup_misses_fragmented"`
	HotAfterMisses  uint64  `json:"hot_lookup_misses_clustered"`
	HotReordered    int     `json:"hot_reordered"`
}

// runOO1Bench builds the graph three times (same seed ⇒ identical graphs,
// pinned by TestOO1Deterministic), compacts each copy under a different
// policy, and measures cold-cache closure traversals on each layout.
func runOO1Bench(outPath string) {
	nParts, reps := 8000, 5
	if *quick {
		nParts, reps = 2000, 3
	}
	const (
		conn     = 3
		noisePer = 4
		seed     = 17
		coldPool = 64
		nRoots   = 4
	)
	roots := make([]int, nRoots)
	for i := range roots {
		roots[i] = i * nParts / nRoots
	}

	// build creates the fragmented graph in a fresh directory and compacts
	// it under the given policy (ClusterNone with compact=false leaves it
	// fragmented). Returns the directory, the graph handle, the pre-compact
	// occupancy, and the rewrite stats.
	build := func(compactIt bool, policy maint.ClusterPolicy) (string, *bench.OO1, float64, int, int) {
		dir, err := os.MkdirTemp("", "kimbench-oo1")
		check(err)
		db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: 8192, CheckpointBytes: 1 << 30})
		check(err)
		g, err := bench.BuildOO1(db, nParts, conn, noisePer, seed)
		check(err)
		cls, err := db.ClassByName("Part")
		check(err)
		cm, err := db.Composites()
		check(err)
		check(cm.DeclareComposite(cls.ID, "to", false))
		info, err := db.Engine().SegmentInfo(cls.ID)
		check(err)
		occ := info.Occupancy
		pages, reordered := info.Pages, 0
		if compactIt {
			mnt := db.Maintenance(maint.Options{Clustering: policy})
			res, err := mnt.CompactClass(cls.ID)
			check(err)
			pages, reordered = res.PagesAfter, res.Reordered
		}
		check(db.Checkpoint())
		check(db.Close())
		return dir, g, occ, pages, reordered
	}

	// measure reopens the directory with a tiny pool (cold cache) per rep
	// and runs the closure traversals, returning the median wall time, the
	// pool misses of the median rep, one cold full-class scan time, and the
	// traversal fingerprint.
	measure := func(dir string, g *bench.OO1) (float64, uint64, float64, int, uint64) {
		times := make([]time.Duration, reps)
		missesPer := make([]uint64, reps)
		var visits int
		var hash uint64
		for rep := 0; rep < reps; rep++ {
			db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: coldPool})
			check(err)
			_, m0 := db.Engine().Store.PoolStats()
			start := time.Now()
			visits, hash = 0, 0
			for _, root := range roots {
				v, h, err := g.Closure(db, root)
				check(err)
				visits += v
				hash = hash*1099511628211 ^ h
			}
			times[rep] = time.Since(start)
			_, m1 := db.Engine().Store.PoolStats()
			missesPer[rep] = m1 - m0
			check(db.Close())
		}
		// One cold scan for the latency the compactor already optimizes —
		// context for how much of the win is density vs placement.
		db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: coldPool})
		check(err)
		s0 := time.Now()
		res, err := db.Query(`SELECT pid FROM Part WHERE pid >= 0`)
		check(err)
		if len(res.Rows) != nParts {
			check(fmt.Errorf("scan saw %d rows, want %d", len(res.Rows), nParts))
		}
		scanMS := float64(time.Since(s0).Microseconds()) / 1000
		check(db.Close())
		// Median by time; report that rep's miss count.
		order := make([]int, reps)
		for i := range order {
			order[i] = i
		}
		for i := 1; i < reps; i++ {
			for j := i; j > 0 && times[order[j]] < times[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		med := order[reps/2]
		return float64(times[med].Microseconds()) / 1000, missesPer[med], scanMS, visits, hash
	}

	fmt.Printf("oo1: building 3x %d parts (conn %d, noise %d, seed %d)...\n", nParts, conn, noisePer, seed)
	fragDir, fragG, occ, fragPages, _ := build(false, maint.ClusterNone)
	defer os.RemoveAll(fragDir)
	defDir, defG, _, defPages, defReord := build(true, maint.ClusterNone)
	defer os.RemoveAll(defDir)
	compDir, compG, _, compPages, compReord := build(true, maint.ClusterComposite)
	defer os.RemoveAll(compDir)

	fragMS, fragMiss, fragScan, visits, hash := measure(fragDir, fragG)
	defMS, defMiss, defScan, defVisits, defHash := measure(defDir, defG)
	compMS, compMiss, compScan, compVisits, compHash := measure(compDir, compG)
	if defVisits != visits || compVisits != visits || defHash != hash || compHash != hash {
		check(fmt.Errorf("traversal fingerprint diverged across layouts: frag(%d,%x) default(%d,%x) composite(%d,%x)",
			visits, hash, defVisits, defHash, compVisits, compHash))
	}

	// Heat-ordered placement on its target workload: repeated lookups of a
	// hot 10% subset, then a ClusterHot recompaction of the fragmented
	// directory, then cold re-reads of the same subset.
	hotSet := nParts / 10
	hotR := rand.New(rand.NewSource(seed + 1))
	hotPids := hotR.Perm(nParts)[:hotSet]
	lookupCold := func(dir string, g *bench.OO1) (float64, uint64) {
		db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: coldPool})
		check(err)
		defer db.Close()
		_, m0 := db.Engine().Store.PoolStats()
		start := time.Now()
		for _, pid := range hotPids {
			_, err := db.Fetch(g.Parts[pid])
			check(err)
		}
		elapsed := time.Since(start)
		_, m1 := db.Engine().Store.PoolStats()
		return float64(elapsed.Microseconds()) / 1000, m1 - m0
	}
	hotBeforeMS, hotBeforeMiss := lookupCold(fragDir, fragG)
	hotReordered := 0
	{
		db, err := oodb.Open(fragDir, oodb.Options{NoSync: true, PoolPages: 8192})
		check(err)
		cls, err := db.ClassByName("Part")
		check(err)
		for pass := 0; pass < 3; pass++ { // accumulate heat on the hot set
			for _, pid := range hotPids {
				_, err := db.Fetch(fragG.Parts[pid])
				check(err)
			}
		}
		mnt := db.Maintenance(maint.Options{Clustering: maint.ClusterHot})
		res, err := mnt.CompactClass(cls.ID)
		check(err)
		hotReordered = res.Reordered
		check(db.Checkpoint())
		check(db.Close())
	}
	hotAfterMS, hotAfterMiss := lookupCold(fragDir, fragG)

	report := oo1Report{
		Experiment:  "oo1-clustering",
		Description: "cold-cache OO1 closure traversals on fragmented vs default-compacted vs composite-clustered layouts; heat-ordered placement on a hot-set lookup workload",
		Parts:       nParts, Conn: conn, NoisePer: noisePer, Seed: seed,
		ColdPool: coldPool, Reps: reps, Roots: nRoots,
		Visits: visits, Hash: fmt.Sprintf("%016x", hash),
		OccupancyFragmented: occ,
		Fragmented: oo1Layout{Pages: fragPages, TraversalMS: fragMS, PoolMisses: fragMiss,
			ScanMS: fragScan, HashMatches: true, VisitMatches: true},
		Default: oo1Layout{Pages: defPages, TraversalMS: defMS, PoolMisses: defMiss,
			Reordered: defReord, ScanMS: defScan, HashMatches: defHash == hash, VisitMatches: defVisits == visits},
		Composite: oo1Layout{Pages: compPages, TraversalMS: compMS, PoolMisses: compMiss,
			Reordered: compReord, ScanMS: compScan, HashMatches: compHash == hash, VisitMatches: compVisits == visits},
		HotSet:      hotSet,
		HotBeforeMS: hotBeforeMS, HotAfterMS: hotAfterMS,
		HotBeforeMisses: hotBeforeMiss, HotAfterMisses: hotAfterMiss,
		HotReordered: hotReordered,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("oo1 traversal (%d visits, %d-page pool): fragmented %.2fms (%d misses) | default %.2fms (%d misses) | composite %.2fms (%d misses)\n",
		visits, coldPool, fragMS, fragMiss, defMS, defMiss, compMS, compMiss)
	fmt.Printf("oo1 hot lookups (%d parts): fragmented %.2fms (%d misses) -> hot-clustered %.2fms (%d misses)\n",
		hotSet, hotBeforeMS, hotBeforeMiss, hotAfterMS, hotAfterMiss)
	fmt.Printf("wrote %s\n", outPath)
}
