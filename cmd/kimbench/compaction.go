package main

// Compaction datapoints: how much scan latency an online segment rewrite
// recovers on a fragmented heap (DESIGN §11, written to a JSON file the
// repo tracks as BENCH_compaction.json). The workload inserts padded
// objects, deletes most of them — leaving pages mostly dead but still
// chained into the scan path — and measures a full class scan before and
// after the maintenance manager compacts the segment.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"oodb"
	"oodb/internal/maint"
)

type compactionReport struct {
	Experiment   string  `json:"experiment"`
	Description  string  `json:"description"`
	Objects      int     `json:"objects_inserted"`
	Deleted      int     `json:"objects_deleted"`
	Survivors    int     `json:"objects_surviving"`
	PagesBefore  int     `json:"pages_before"`
	PagesAfter   int     `json:"pages_after"`
	ScanMSBefore float64 `json:"scan_ms_before"` // median of reps
	ScanMSAfter  float64 `json:"scan_ms_after"`
	Reps         int     `json:"reps"`
}

// runCompactionBench fragments a segment, compacts it, and reports the
// measured scan-latency change alongside the pages recovered.
func runCompactionBench(outPath string) {
	objects, reps := 20000, 7
	if *quick {
		objects, reps = 4000, 5
	}
	dir, err := os.MkdirTemp("", "kimbench-compaction")
	check(err)
	defer os.RemoveAll(dir)
	db, err := oodb.Open(dir, oodb.Options{NoSync: true, CheckpointBytes: 1 << 30})
	check(err)
	defer db.Close()
	_, err = db.DefineClass("P", nil,
		oodb.Attr{Name: "n", Domain: "Integer"},
		oodb.Attr{Name: "pad", Domain: "String"})
	check(err)

	// Padded inserts spread the class over many pages; deleting 9 in 10
	// leaves every page nearly empty but still on the scan path.
	pad := strings.Repeat("x", 200)
	oids := make([]oodb.OID, objects)
	for lo := 0; lo < objects; lo += 500 {
		hi := lo + 500
		if hi > objects {
			hi = objects
		}
		check(db.Do(func(tx *oodb.Tx) error {
			for i := lo; i < hi; i++ {
				oid, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(i)), "pad": oodb.String(pad)})
				if err != nil {
					return err
				}
				oids[i] = oid
			}
			return nil
		}))
	}
	deleted := 0
	for lo := 0; lo < objects; lo += 500 {
		hi := lo + 500
		if hi > objects {
			hi = objects
		}
		check(db.Do(func(tx *oodb.Tx) error {
			for i := lo; i < hi; i++ {
				if i%10 == 0 {
					continue // survivor
				}
				if err := tx.Delete(oids[i]); err != nil {
					return err
				}
				deleted++
			}
			return nil
		}))
	}

	cl, err := db.ClassByName("P")
	check(err)
	scanMS := func() float64 {
		best := make([]time.Duration, reps)
		for r := range best {
			start := time.Now()
			res, err := db.Query(`SELECT * FROM P WHERE n >= 0`)
			check(err)
			if len(res.Rows) != objects-deleted {
				check(fmt.Errorf("scan saw %d rows, want %d", len(res.Rows), objects-deleted))
			}
			best[r] = time.Since(start)
		}
		return medianMS(best)
	}

	before := scanMS()

	mnt := db.Maintenance(maint.Options{})
	res, err := mnt.CompactClass(cl.ID)
	check(err)
	check(db.Checkpoint())
	after := scanMS()

	report := compactionReport{
		Experiment:   "compaction",
		Description:  "full-class scan latency before/after online segment compaction of a 90%-dead heap",
		Objects:      objects,
		Deleted:      deleted,
		Survivors:    objects - deleted,
		PagesBefore:  res.PagesBefore,
		PagesAfter:   res.PagesAfter,
		ScanMSBefore: before,
		ScanMSAfter:  after,
		Reps:         reps,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("compaction: %d pages -> %d pages, scan %.2fms -> %.2fms\n",
		res.PagesBefore, res.PagesAfter, before, after)
	fmt.Printf("wrote %s\n", outPath)
}

func medianMS(ds []time.Duration) float64 {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return float64(ds[len(ds)/2].Microseconds()) / 1000
}
