// Command kimbench runs every experiment in DESIGN.md §7 (E1–E12) and
// prints the tables recorded in EXPERIMENTS.md. Each experiment reproduces
// one quantitative claim of Kim (PODS 1990); kimbench reports the measured
// shape (who wins, by what factor) next to the paper's claim.
//
// Usage:
//
//	kimbench [-quick] [-only E3] [-recovery out.json] [-metrics out.json] [-oo1 out.json] [-server out.json] [-http addr]
//
// -oo1 runs the OO1-style clustering experiment (E17): cold-cache closure
// traversals over a seeded, 90%-fragmented part/connection graph, measured
// on the fragmented layout, after a default (scan-order) compaction, and
// after a composite-clustered compaction, plus a heat-ordered-placement
// lookup experiment; the JSON report is tracked as BENCH_oo1.json.
//
// -server runs the wire-server experiment (E18): hundreds of concurrent
// client sessions drive a mixed workload against an in-process kimsrv
// over loopback TCP, reporting sustained ops/sec, client-observed
// p50/p99/p999 latency, admission-control sheds and graceful-drain time;
// the JSON report is tracked as BENCH_server.json.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"oodb"
	"oodb/internal/bench"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/relational"
)

var (
	quick    = flag.Bool("quick", false, "smaller scales, fewer repetitions")
	only     = flag.String("only", "", "run only the named experiment (e.g. E3)")
	recovery = flag.String("recovery", "", "measure recovery time vs WAL size, write the JSON report to this path, and exit")
	compact  = flag.String("compact", "", "measure scan latency before/after online compaction, write the JSON report to this path, and exit")
	metrics  = flag.String("metrics", "", "run the obs workload, write the metric snapshot report to this path, and exit")
	mvcc     = flag.String("mvcc", "", "measure snapshot-reader throughput vs a bulk writer, write the JSON report to this path, and exit")
	oo1      = flag.String("oo1", "", "measure cold-cache OO1 traversals on fragmented vs compacted vs composite-clustered layouts, write the JSON report to this path, and exit")
	servOut  = flag.String("server", "", "drive hundreds of concurrent wire sessions against an in-process kimsrv, write the JSON report to this path, and exit")
	shardOut = flag.String("shard", "", "measure scatter-gather throughput over 4 kimsrv members vs 1, write the JSON report to this path, and exit")
	httpAddr = flag.String("http", "", "serve /metrics and /debug/pprof on this address while running (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, obs.NewMux(obs.Default())); err != nil {
				fmt.Fprintln(os.Stderr, "kimbench: -http:", err)
			}
		}()
	}
	if *recovery != "" {
		runRecoveryBench(*recovery)
		return
	}
	if *compact != "" {
		runCompactionBench(*compact)
		return
	}
	if *metrics != "" {
		runMetricsBench(*metrics)
		return
	}
	if *mvcc != "" {
		runMVCCBench(*mvcc)
		return
	}
	if *oo1 != "" {
		runOO1Bench(*oo1)
		return
	}
	if *servOut != "" {
		runServerBench(*servOut)
		return
	}
	if *shardOut != "" {
		runShardBench(*shardOut)
		return
	}
	experiments := []struct {
		name  string
		claim string
		run   func() []row
	}{
		{"E1", "one class-hierarchy index beats per-class indexes and scans for hierarchy-scoped queries (§3.2)", e1},
		{"E2", "a nested-attribute index expedites nested predicates vs forward traversal (§3.2)", e2},
		{"E3", "joins are 'intolerably expensive' vs OID->pointer navigation (§3.3)", e3},
		{"E4", "OO1-style operations: lookup / traversal / insert, OODB vs relational (§5.6)", e4},
		{"E5", "memory-resident object access is ~an order of magnitude above a raw memory lookup (§4.2)", e5},
		{"E6", "schema evolution must be dynamic and cheap (lazy instance maintenance) (§3.1, §5.1)", e6},
		{"E7", "instance-granularity locking sustains concurrent writers; class locks serialize (§3.2)", e7},
		{"E8", "the system, not the application, picks access paths (§2.2)", e8},
		{"E9", "recovery replays the log after a crash (§3.1)", e9},
		{"E10", "Wisconsin-style relational operations (selection, join) on the baseline (§5.6)", e10},
		{"E11", "composite clustering expedites component retrieval (§3.2, §4.2)", e11},
		{"E12", "version derivation and change notification (§3.3, §5.5)", e12},
		{"E13", "group commit: concurrent transactions share one fsync (§3.1 transaction management)", e13},
	}
	for _, ex := range experiments {
		if *only != "" && !strings.EqualFold(*only, ex.name) {
			continue
		}
		fmt.Printf("\n== %s: %s ==\n", ex.name, ex.claim)
		rows := ex.run()
		width := 0
		for _, r := range rows {
			if len(r.label) > width {
				width = len(r.label)
			}
		}
		for _, r := range rows {
			fmt.Printf("  %-*s  %s\n", width, r.label, r.value)
		}
	}
}

type row struct{ label, value string }

// timeIt returns the median wall time of reps runs of fn.
func timeIt(reps int, fn func()) time.Duration {
	if *quick && reps > 3 {
		reps = 3
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func perOp(d time.Duration, ops int) string {
	return fmt.Sprintf("%10v  (%v/op)", d, d/time.Duration(ops))
}

func openDB() (*oodb.DB, func()) {
	dir, err := os.MkdirTemp("", "kimbench")
	check(err)
	db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: 8192})
	check(err)
	return db, func() { db.Close(); os.RemoveAll(dir) }
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kimbench:", err)
		os.Exit(1)
	}
}

func scale(full, quickN int) int {
	if *quick {
		return quickN
	}
	return full
}

// --- E1 ------------------------------------------------------------------

func e1() []row {
	perClass := scale(500, 100)
	const queries = 200
	variant := func(index string, only bool) time.Duration {
		db, done := openDB()
		defer done()
		h, err := bench.BuildHierarchy(db, 4, 3, perClass, 1000, 1)
		check(err)
		switch index {
		case "ch":
			check(h.IndexCH(db))
		case "sc":
			check(h.IndexPerClass(db))
		}
		q := `SELECT * FROM H0 WHERE val = %d`
		if only {
			q = `SELECT * FROM ONLY H3 WHERE val = %d`
		}
		return timeIt(5, func() {
			for i := 0; i < queries; i++ {
				_, err := db.Query(fmt.Sprintf(q, i%1000))
				check(err)
			}
		})
	}
	return []row{
		{fmt.Sprintf("hierarchy query (21 classes, %d objs/class), CH index", perClass), perOp(variant("ch", false), queries)},
		{"hierarchy query, 21 single-class indexes", perOp(variant("sc", false), queries)},
		{"hierarchy query, heap scan", perOp(variant("none", false), queries)},
		{"single-class (ONLY) query, CH index", perOp(variant("ch", true), queries)},
		{"single-class (ONLY) query, SC index", perOp(variant("sc", true), queries)},
	}
}

// --- E2 ------------------------------------------------------------------

func e2() []row {
	nVehicles := scale(10000, 2000)
	const queries = 100
	variant := func(indexed bool, q string) time.Duration {
		db, done := openDB()
		defer done()
		_, err := bench.BuildVehicleWorld(db, 200, nVehicles, 50, 2)
		check(err)
		if indexed {
			check(db.CreateIndex("vloc", "Vehicle", []string{"manufacturer", "location"}, true))
			check(db.CreateIndex("vdiv", "Vehicle", []string{"manufacturer", "division", "city"}, true))
		}
		return timeIt(3, func() {
			for i := 0; i < queries; i++ {
				_, err := db.Query(fmt.Sprintf(q, i%50))
				check(err)
			}
		})
	}
	p2 := `SELECT * FROM Vehicle WHERE manufacturer.location = 'City%d'`
	p3 := `SELECT * FROM Vehicle WHERE manufacturer.division.city = 'City%d'`
	return []row{
		{fmt.Sprintf("path len 2 (%d vehicles), nested index", nVehicles), perOp(variant(true, p2), queries)},
		{"path len 2, forward traversal under scan", perOp(variant(false, p2), queries)},
		{"path len 3, nested index", perOp(variant(true, p3), queries)},
		{"path len 3, forward traversal under scan", perOp(variant(false, p3), queries)},
	}
}

// --- E3 ------------------------------------------------------------------

func e3() []row {
	nParts := scale(20000, 5000)
	const depth, conn, roots = 5, 3, 50
	db, done := openDB()
	defer done()
	p, err := bench.BuildParts(db, nParts, conn, 3)
	check(err)
	ws := db.NewWorkspace()
	_, err = bench.Traverse(ws, p.OIDs[0], depth) // warm/materialize
	check(err)

	swizzled := timeIt(5, func() {
		for i := 0; i < roots; i++ {
			_, err := bench.Traverse(ws, p.OIDs[i], depth)
			check(err)
		}
	})
	fetch := timeIt(5, func() {
		for i := 0; i < roots; i++ {
			_, err := bench.TraverseFetch(db, p.OIDs[i], depth)
			check(err)
		}
	})
	rp, err := bench.BuildRelParts(nParts, conn, 3)
	check(err)
	joins := timeIt(5, func() {
		for i := 0; i < roots; i++ {
			_, err := rp.TraverseRel(int64(i), depth)
			check(err)
		}
	})
	visited, _ := bench.Traverse(ws, p.OIDs[0], depth)
	label := fmt.Sprintf("traversal depth %d (~%d visits), %d parts", depth, visited, nParts)
	return []row{
		{label + ", swizzled workspace", perOp(swizzled, roots)},
		{label + ", fetch per object", perOp(fetch, roots)},
		{label + ", relational index-joins", perOp(joins, roots)},
	}
}

// --- E4 ------------------------------------------------------------------

func e4() []row {
	nParts := scale(20000, 5000)
	const lookups, traversals, inserts = 1000, 20, 100
	db, done := openDB()
	defer done()
	p, err := bench.BuildParts(db, nParts, 3, 4)
	check(err)
	check(db.CreateIndex("part_pid", "Part", []string{"pid"}, true))
	ws := db.NewWorkspace()
	bench.Traverse(ws, p.OIDs[0], 7)

	rp, err := bench.BuildRelParts(nParts, 3, 4)
	check(err)

	looO := timeIt(3, func() {
		for i := 0; i < lookups; i++ {
			_, err := db.Query(fmt.Sprintf(`SELECT x, y FROM Part WHERE pid = %d`, i*7%nParts))
			check(err)
		}
	})
	idx, err := db.Engine().Indexes.Get("part_pid")
	check(err)
	looIdx := timeIt(3, func() {
		for i := 0; i < lookups; i++ {
			if got := idx.Lookup(oodb.Int(int64(i*7%nParts)), nil); len(got) != 1 {
				check(fmt.Errorf("lookup found %d", len(got)))
			}
		}
	})
	looR := timeIt(3, func() {
		for i := 0; i < lookups; i++ {
			_, err := rp.Part.SelectEq("id", model.Int(int64(i*7%nParts)))
			check(err)
		}
	})
	traO := timeIt(3, func() {
		for i := 0; i < traversals; i++ {
			_, err := bench.Traverse(ws, p.OIDs[i], 7)
			check(err)
		}
	})
	traR := timeIt(3, func() {
		for i := 0; i < traversals; i++ {
			_, err := rp.TraverseRel(int64(i), 7)
			check(err)
		}
	})
	n := 0
	insO := timeIt(3, func() {
		check(db.Do(func(tx *oodb.Tx) error {
			for i := 0; i < inserts; i++ {
				n++
				if _, err := tx.Insert("Part", oodb.Attrs{
					"pid": oodb.Int(int64(1000000 + n)),
					"x":   oodb.Int(int64(n)), "y": oodb.Int(int64(n)),
					"to": oodb.SetOf(oodb.Ref(p.OIDs[n%nParts])),
				}); err != nil {
					return err
				}
			}
			return nil
		}))
	})
	insR := timeIt(3, func() {
		for i := 0; i < inserts; i++ {
			n++
			_, err := rp.Part.Insert(model.Int(int64(1000000+n)),
				model.Int(int64(n)), model.Int(int64(n)), model.String("t"))
			check(err)
			rp.Conn.Insert(model.Int(int64(1000000+n)), model.Int(int64(n%nParts)))
		}
	})
	return []row{
		{fmt.Sprintf("lookup by id (%d parts, indexed), OODB query", nParts), perOp(looO, lookups)},
		{"lookup by id, OODB index API (no parse/plan/txn)", perOp(looIdx, lookups)},
		{"lookup by id, relational select", perOp(looR, lookups)},
		{"traversal depth 7, OODB workspace", perOp(traO, traversals)},
		{"traversal depth 7, relational joins", perOp(traR, traversals)},
		{"insert part + connection, OODB (txn, WAL, index)", perOp(insO, inserts)},
		{"insert part + connection, relational (no txn)", perOp(insR, inserts)},
	}
}

// --- E5 ------------------------------------------------------------------

func e5() []row {
	const hops = 1_000_000
	type node struct {
		x    int64
		next *node
	}
	ring := make([]node, 100)
	for i := range ring {
		ring[i].x = int64(i)
		ring[i].next = &ring[(i+1)%100]
	}
	cur := &ring[0]
	var sum int64
	native := timeIt(5, func() {
		for i := 0; i < hops; i++ {
			sum += cur.x
			cur = cur.next
		}
	})
	_ = sum

	db, done := openDB()
	defer done()
	_, err := db.DefineClass("Node", nil,
		oodb.Attr{Name: "x", Domain: "Integer"},
		oodb.Attr{Name: "next", Domain: "Node"})
	check(err)
	var oids []oodb.OID
	check(db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < 100; i++ {
			oid, err := tx.Insert("Node", oodb.Attrs{"x": oodb.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		for i, oid := range oids {
			if err := tx.Update(oid, oodb.Attrs{"next": oodb.Ref(oids[(i+1)%100])}); err != nil {
				return err
			}
		}
		return nil
	}))
	ws := db.NewWorkspace()
	d, _ := ws.Fetch(oids[0])
	for i := 0; i < 100; i++ {
		d, _ = d.Deref("next")
	}
	wsHops := hops / 10
	wsT := timeIt(5, func() {
		for i := 0; i < wsHops; i++ {
			nd, err := d.Deref("next")
			check(err)
			d = nd
		}
	})
	fetchHops := hops / 100
	fetchT := timeIt(5, func() {
		for i := 0; i < fetchHops; i++ {
			_, err := db.Fetch(oids[i%100])
			check(err)
		}
	})
	return []row{
		{"native Go pointer hop", perOp(native, hops)},
		{"workspace swizzled deref", perOp(wsT, wsHops)},
		{"engine fetch (buffer pool + decode)", perOp(fetchT, fetchHops)},
	}
}

// --- E6 ------------------------------------------------------------------

func e6() []row {
	perClass := scale(1000, 200)
	db, done := openDB()
	defer done()
	_, err := bench.BuildHierarchy(db, 4, 3, perClass, 100, 6)
	check(err)
	total := 21 * perClass

	addLazy := timeIt(5, func() {
		check(db.AddAttribute("H0", oodb.Attr{Name: "c1", Domain: "Integer", Default: oodb.Int(0)}))
		check(db.DropAttribute("H0", "c1"))
	})
	// Eager alternative: write the default into every instance.
	check(db.AddAttribute("H0", oodb.Attr{Name: "c2", Domain: "Integer", Default: oodb.Int(0)}))
	eager := timeIt(1, func() {
		check(db.Do(func(tx *oodb.Tx) error {
			res, err := db.QueryTx(tx, `SELECT * FROM H0`)
			if err != nil {
				return err
			}
			for _, r := range res.Rows {
				if err := tx.Update(r.OID, oodb.Attrs{"c2": oodb.Int(0)}); err != nil {
					return err
				}
			}
			return nil
		}))
	})
	return []row{
		{fmt.Sprintf("add+drop attribute on root of %d instances (lazy)", total), fmt.Sprintf("%10v", addLazy)},
		{"eager default sweep over all instances", fmt.Sprintf("%10v", eager)},
	}
}

// --- E7 ------------------------------------------------------------------

func e7() []row {
	const workers, opsPer = 8, 200
	variant := func(coarse bool) time.Duration {
		db, done := openDB()
		defer done()
		_, err := db.DefineClass("Counter", nil, oodb.Attr{Name: "n", Domain: "Integer"})
		check(err)
		var oids []oodb.OID
		check(db.Do(func(tx *oodb.Tx) error {
			for i := 0; i < workers; i++ {
				oid, err := tx.Insert("Counter", oodb.Attrs{"n": oodb.Int(0)})
				if err != nil {
					return err
				}
				oids = append(oids, oid)
			}
			return nil
		}))
		cls, err := db.ClassByName("Counter")
		check(err)
		return timeIt(3, func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						db.Do(func(tx *oodb.Tx) error {
							if coarse {
								if err := db.Engine().Locks.LockClassWrite(tx.ID(), cls.ID); err != nil {
									return err
								}
							}
							return tx.Update(oids[w], oodb.Attrs{"n": oodb.Int(int64(i))})
						})
					}
				}(w)
			}
			wg.Wait()
		})
	}
	fine := variant(false)
	coarse := variant(true)
	ops := workers * opsPer
	return []row{
		{fmt.Sprintf("%d writers x %d updates, instance IX/X locks", workers, opsPer), perOp(fine, ops)},
		{"same load, class-level X lock (serialized)", perOp(coarse, ops)},
	}
}

// --- E8 ------------------------------------------------------------------

func e8() []row {
	perClass := scale(500, 100)
	const queries = 200
	db, done := openDB()
	defer done()
	h, err := bench.BuildHierarchy(db, 4, 3, perClass, 1000, 8)
	check(err)
	check(h.IndexCH(db))
	planOn, err := db.Explain(`SELECT * FROM H0 WHERE val = 5`)
	check(err)
	on := timeIt(5, func() {
		for i := 0; i < queries; i++ {
			_, err := db.Query(fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
			check(err)
		}
	})
	// Ablation: drop the index, forcing scans (the planner has nothing to
	// pick — equivalent to disabling access-path selection).
	check(db.DropIndex("ch_val"))
	planOff, err := db.Explain(`SELECT * FROM H0 WHERE val = 5`)
	check(err)
	off := timeIt(5, func() {
		for i := 0; i < queries; i++ {
			_, err := db.Query(fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
			check(err)
		}
	})
	return []row{
		{"optimizer picks: " + planOn, perOp(on, queries)},
		{"ablated:         " + planOff, perOp(off, queries)},
	}
}

// --- E9 ------------------------------------------------------------------

func e9() []row {
	var out []row
	for _, txns := range []int{10, 50, 200} {
		src, err := os.MkdirTemp("", "kimbench-e9")
		check(err)
		db, err := oodb.Open(src, oodb.Options{NoSync: true, CheckpointBytes: 1 << 30})
		check(err)
		_, err = db.DefineClass("P", nil, oodb.Attr{Name: "n", Domain: "Integer"})
		check(err)
		for i := 0; i < txns; i++ {
			check(db.Do(func(tx *oodb.Tx) error {
				for j := 0; j < 100; j++ {
					if _, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(j))}); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		check(db.Engine().Log.Sync())
		// Crash: abandon the handle, recover a copy.
		med := timeIt(3, func() {
			dir, err := os.MkdirTemp("", "kimbench-e9-copy")
			check(err)
			for _, f := range []string{"data.kdb", "log.wal"} {
				data, err := os.ReadFile(filepath.Join(src, f))
				check(err)
				check(os.WriteFile(filepath.Join(dir, f), data, 0o644))
			}
			start := time.Now()
			db2, err := oodb.Open(dir, oodb.Options{})
			check(err)
			_ = time.Since(start)
			db2.Close()
			os.RemoveAll(dir)
		})
		db.Close()
		os.RemoveAll(src)
		out = append(out, row{
			fmt.Sprintf("recover %d committed txns (%d objects) from WAL", txns, txns*100),
			fmt.Sprintf("%10v (copy+open+close)", med),
		})
	}
	return out
}

// --- E10 -----------------------------------------------------------------

func e10() []row {
	n := scale(100000, 20000)
	rdb := relational.NewDB()
	rel, err := rdb.Create("wisc", "unique1", "unique2", "ten", "hundred")
	check(err)
	for i := 0; i < n; i++ {
		rel.Insert(model.Int(int64(i)), model.Int(int64((i*7)%n)),
			model.Int(int64(i%10)), model.Int(int64(i%100)))
	}
	sel := n / 100 // 1% selection
	scan := timeIt(5, func() {
		_, err := rel.SelectRange("unique1", model.Int(0), model.Int(int64(sel-1)), true)
		check(err)
	})
	check(rel.CreateIndex("unique1"))
	indexed := timeIt(5, func() {
		_, err := rel.SelectRange("unique1", model.Int(0), model.Int(int64(sel-1)), true)
		check(err)
	})
	l, _ := rdb.Create("l", "k")
	r, _ := rdb.Create("r", "k")
	for i := 0; i < n/10; i++ {
		l.Insert(model.Int(int64(i)))
		r.Insert(model.Int(int64(i % (n / 100))))
	}
	hash := timeIt(3, func() {
		_, err := relational.HashJoin(l, r, "k", "k")
		check(err)
	})
	return []row{
		{fmt.Sprintf("1%% selection of %d tuples, scan", n), fmt.Sprintf("%10v", scan)},
		{"1% selection, B+tree index", fmt.Sprintf("%10v", indexed)},
		{fmt.Sprintf("hash join %d x %d", n/10, n/10), fmt.Sprintf("%10v", hash)},
	}
}

// --- E11 -----------------------------------------------------------------

func e11() []row {
	nParts := scale(2000, 400)
	build := func(clustered bool) (string, func()) {
		dir, err := os.MkdirTemp("", "kimbench-e11")
		check(err)
		db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: 8192})
		check(err)
		_, err = db.DefineClass("Asm", nil,
			oodb.Attr{Name: "name", Domain: "String"},
			oodb.Attr{Name: "pad", Domain: "String"},
			oodb.Attr{Name: "parts", Domain: "Asm", SetValued: true})
		check(err)
		cm, err := db.Composites()
		check(err)
		cls, _ := db.ClassByName("Asm")
		check(cm.DeclareComposite(cls.ID, "parts", true))
		var root oodb.OID
		pad := strings.Repeat("x", 200)
		check(db.Do(func(tx *oodb.Tx) error {
			var err error
			root, err = tx.Insert("Asm", oodb.Attrs{"name": oodb.String("root")})
			return err
		}))
		// Interleave component inserts with noise so components scatter.
		check(db.Do(func(tx *oodb.Tx) error {
			for i := 0; i < nParts; i++ {
				child, err := tx.Insert("Asm", oodb.Attrs{
					"name": oodb.String(fmt.Sprintf("c%d", i)), "pad": oodb.String(pad)})
				if err != nil {
					return err
				}
				if err := cm.Attach(tx, root, "parts", child); err != nil {
					return err
				}
				for j := 0; j < 4; j++ {
					if _, err := tx.Insert("Asm", oodb.Attrs{
						"name": oodb.String("noise"), "pad": oodb.String(pad)}); err != nil {
						return err
					}
				}
			}
			return nil
		}))
		if clustered {
			check(db.Do(func(tx *oodb.Tx) error {
				_, err := cm.Recluster(tx, root)
				return err
			}))
		}
		db.Close()
		// Reopen with a tiny pool so placement shows up as buffer misses.
		db, err = oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: 32})
		check(err)
		cm, err = db.Composites()
		check(err)
		med := timeIt(3, func() {
			comps, err := cm.Components(root)
			check(err)
			for _, c := range comps {
				_, err := db.Fetch(c)
				check(err)
			}
		})
		hits, misses := db.Engine().Store.PoolStats()
		label := fmt.Sprintf("%10v  (pool hits %d, misses %d)", med, hits, misses)
		return label, func() { db.Close(); os.RemoveAll(dir) }
	}
	scattered, done1 := build(false)
	defer done1()
	clustered, done2 := build(true)
	defer done2()
	return []row{
		{fmt.Sprintf("fetch %d components, scattered placement, 32-page pool", nParts), scattered},
		{"same, after Recluster (DFS rewrite)", clustered},
	}
}

// --- E13 -----------------------------------------------------------------

func e13() []row {
	// Durable commits (real fsync) with 1 vs 8 concurrent committers.
	run := func(workers, opsPer int) (time.Duration, float64) {
		dir, err := os.MkdirTemp("", "kimbench-e13")
		check(err)
		defer os.RemoveAll(dir)
		db, err := oodb.Open(dir, oodb.Options{}) // NoSync off: durability on
		check(err)
		defer db.Close()
		_, err = db.DefineClass("P", nil, oodb.Attr{Name: "n", Domain: "Integer"})
		check(err)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					check(db.Do(func(tx *oodb.Tx) error {
						_, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(i))})
						return err
					}))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		syncs := db.Engine().Log.Syncs.Load()
		commits := workers * opsPer
		return elapsed / time.Duration(commits), float64(commits) / float64(syncs)
	}
	opsPer := scale(300, 100)
	solo, soloBatch := run(1, opsPer)
	grp, grpBatch := run(8, opsPer)
	return []row{
		{"1 committer, durable commit", fmt.Sprintf("%10v/commit  (batch %.1f)", solo, soloBatch)},
		{"8 concurrent committers, durable commit", fmt.Sprintf("%10v/commit  (batch %.1f)", grp, grpBatch)},
	}
}

// --- E12 -----------------------------------------------------------------

func e12() []row {
	db, done := openDB()
	defer done()
	cl, err := db.DefineClass("Design", nil, oodb.Attr{Name: "name", Domain: "String"})
	check(err)
	vm, err := db.Versions()
	check(err)
	check(vm.EnableVersioning(cl.ID))
	var g, cur oodb.OID
	check(db.Do(func(tx *oodb.Tx) error {
		var err error
		g, cur, err = vm.CreateVersioned(tx, cl.ID, oodb.Attrs{"name": oodb.String("x")})
		return err
	}))
	const derives = 200
	chain := timeIt(3, func() {
		check(db.Do(func(tx *oodb.Tx) error {
			for i := 0; i < derives; i++ {
				next, err := vm.Derive(tx, cur)
				if err != nil {
					return err
				}
				cur = next
			}
			return nil
		}))
	})
	for i := 0; i < 1000; i++ {
		vm.RegisterDependent(g, oodb.OID(model.MakeOID(999, uint64(i+1))))
	}
	notify := timeIt(3, func() {
		check(db.Do(func(tx *oodb.Tx) error {
			next, err := vm.Derive(tx, cur)
			cur = next
			return err
		}))
		vm.ClearStale()
	})
	return []row{
		{fmt.Sprintf("derive chain of %d versions", derives), perOp(chain, derives)},
		{"derive with 1000 registered dependents (flag fanout)", fmt.Sprintf("%10v", notify)},
	}
}
