package main

// The -metrics mode: run a fixed mixed workload with the obs subsystem on,
// then write the derived health figures plus the full metric snapshot as a
// JSON report (tracked in the repo as BENCH_metrics.json). The workload has
// three phases chosen to light up each layer's metrics:
//
//  1. hierarchy build + heap-scanned hierarchy queries — parallel scan
//     fan-out, rows examined/matched, buffer traffic;
//  2. the same queries through a class-hierarchy index — index probes and
//     probe depth;
//  3. durable concurrent commits (fsync on) — WAL fsync latency and group-
//     commit batch size.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"oodb"
	"oodb/internal/bench"
	"oodb/internal/obs"
)

type metricsReport struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`

	// Derived headline figures (the acceptance set), pulled out of the
	// snapshot so a reader does not have to do histogram math.
	BufferHitRatio    float64 `json:"buffer_hit_ratio"`
	FsyncP50Ns        uint64  `json:"fsync_p50_ns"`
	FsyncP99Ns        uint64  `json:"fsync_p99_ns"`
	GroupCommitMean   float64 `json:"group_commit_mean_batch"`
	CommitWaitP50Ns   uint64  `json:"commit_wait_p50_ns"`
	CommitWaitP99Ns   uint64  `json:"commit_wait_p99_ns"`
	FsyncErrors       uint64  `json:"fsync_errors"`
	ScanFanoutMean    float64 `json:"scan_fanout_mean_width"`
	ScanFanoutP50     uint64  `json:"scan_fanout_p50_width"`
	DurableCommits    int     `json:"durable_commits"`
	DurableCommitRate float64 `json:"durable_commits_per_sec"`

	ExplainAnalyze string `json:"explain_analyze_sample"`

	Snapshot obs.Snapshot `json:"snapshot"`
}

// runMetricsBench drives the workload and writes the report to outPath.
func runMetricsBench(outPath string) {
	oodb.SetMetricsEnabled(true)

	// Phase 1+2: hierarchy scans then indexed probes. The hierarchy is
	// built with a roomy pool, then reopened with a pool well below the
	// working set so the buffer hit ratio is informative rather than a
	// flat 1.0 (every page born in the pool counts as a hit forever).
	sdir, err := os.MkdirTemp("", "kimbench-metrics-scan")
	check(err)
	perClass := scale(500, 100)
	queries := scale(200, 50)
	db, err := oodb.Open(sdir, oodb.Options{NoSync: true, PoolPages: 8192})
	check(err)
	h, err := bench.BuildHierarchy(db, 4, 3, perClass, 1000, 1)
	check(err)
	check(db.Close())
	db, err = oodb.Open(sdir, oodb.Options{NoSync: true, PoolPages: 16})
	check(err)
	done := func() { db.Close(); os.RemoveAll(sdir) }
	for i := 0; i < queries; i++ {
		_, err := db.Query(fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
		check(err)
	}
	check(h.IndexCH(db))
	for i := 0; i < queries; i++ {
		_, err := db.Query(fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
		check(err)
	}
	explain, err := db.ExplainAnalyze(`SELECT * FROM H0 WHERE val < 25`)
	check(err)
	hits, misses := db.Engine().Store.PoolStats()
	done()

	// Phase 3: durable concurrent commits on a separate database with
	// fsync on, so the WAL latency, commit-wait and group-commit histograms
	// see real syncs. 32 committers give the writer's adaptive batching
	// room to form large groups (the acceptance bar is mean batch >= 8).
	const workers = 32
	opsPer := scale(100, 25)
	dir, err := os.MkdirTemp("", "kimbench-metrics")
	check(err)
	defer os.RemoveAll(dir)
	ddb, err := oodb.Open(dir, oodb.Options{})
	check(err)
	_, err = ddb.DefineClass("P", nil, oodb.Attr{Name: "n", Domain: "Integer"})
	check(err)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				check(ddb.Do(func(tx *oodb.Tx) error {
					_, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(i))})
					return err
				}))
			}
		}(w)
	}
	wg.Wait()
	commitElapsed := time.Since(start)
	ddb.Close()

	snap := obs.TakeSnapshot()
	fsync := snap.Histograms["wal_fsync_latency_ns"]
	batch := snap.Histograms["wal_group_commit_batch"]
	wait := snap.Histograms["wal_commit_wait_ns"]
	fanout := snap.Histograms["query_scan_fanout_width"]
	commits := workers * opsPer
	report := metricsReport{
		Experiment:  "metrics",
		Description: "obs snapshot after hierarchy scans, indexed probes and durable concurrent commits",

		BufferHitRatio:    ratio(hits, hits+misses),
		FsyncP50Ns:        fsync.P50,
		FsyncP99Ns:        fsync.P99,
		GroupCommitMean:   batch.Mean,
		CommitWaitP50Ns:   wait.P50,
		CommitWaitP99Ns:   wait.P99,
		FsyncErrors:       snap.Counters["wal_fsync_errors_total"],
		ScanFanoutMean:    fanout.Mean,
		ScanFanoutP50:     fanout.P50,
		DurableCommits:    commits,
		DurableCommitRate: float64(commits) / commitElapsed.Seconds(),

		ExplainAnalyze: explain,
		Snapshot:       snap,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile(outPath, append(out, '\n'), 0o644))
	fmt.Printf("metrics: buffer hit ratio %.3f, fsync p50 %v p99 %v, group-commit mean batch %.1f, commit wait p50 %v, scan fan-out mean %.1f\n",
		report.BufferHitRatio,
		time.Duration(report.FsyncP50Ns), time.Duration(report.FsyncP99Ns),
		report.GroupCommitMean, time.Duration(report.CommitWaitP50Ns),
		report.ScanFanoutMean)
	fmt.Printf("wrote %s\n", outPath)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
