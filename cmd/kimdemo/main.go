// Command kimdemo reproduces the paper's only figure functionally: it
// builds the Figure 1 schema (the Vehicle and Company class hierarchies
// with the manufacturer aggregation edge), populates it, and runs the
// paper's example query — "Find all vehicles that weigh more than 7500
// lbs, and that are manufactured by a company located in Detroit" — first
// by heap scan, then again with a class-hierarchy index and a
// nested-attribute index in place, printing the chosen plans.
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdemo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Println("== Figure 1 schema ==")
	must(define(db))
	must(populate(db))

	const q = `SELECT vid, weight, manufacturer.location FROM Vehicle
	           WHERE weight > 7500 AND manufacturer.location = 'Detroit'`

	fmt.Println("\n== The paper's example query, no indexes ==")
	run(db, q)

	fmt.Println("\n== With a class-hierarchy index on weight and a nested index on manufacturer.location ==")
	must(db.CreateIndex("veh_weight", "Vehicle", []string{"weight"}, true))
	must(db.CreateIndex("veh_loc", "Vehicle", []string{"manufacturer", "location"}, true))
	run(db, q)

	fmt.Println("\n== Hierarchy scope: FROM Vehicle vs FROM ONLY Vehicle ==")
	run(db, `SELECT vid FROM Vehicle ORDER BY vid`)
	run(db, `SELECT vid FROM ONLY Vehicle ORDER BY vid`)

	fmt.Println("\n== Message passing with late binding ==")
	must(db.AddMethod("Vehicle", "describe", func(eng oodb.MethodEngine, recv *oodb.Object, _ []oodb.Value) (oodb.Value, error) {
		return oodb.String("a vehicle"), nil
	}))
	must(db.AddMethod("Truck", "describe", func(eng oodb.MethodEngine, recv *oodb.Object, _ []oodb.Value) (oodb.Value, error) {
		return oodb.String("a truck (overrides Vehicle.describe)"), nil
	}))
	res, err := db.Query(`SELECT vid, describe FROM Vehicle ORDER BY vid`)
	must(err)
	for _, row := range res.Rows {
		vid, _ := row.Values[0].AsString()
		desc, _ := row.Values[1].AsString()
		fmt.Printf("  %-4s -> %s\n", vid, desc)
	}
}

func define(db *oodb.DB) error {
	if _, err := db.DefineClass("Company", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "location", Domain: "String"},
	); err != nil {
		return err
	}
	for _, c := range []struct{ name, super string }{
		{"AutoCompany", "Company"},
		{"TruckCompany", "Company"},
		{"JapaneseAutoCompany", "AutoCompany"},
	} {
		if _, err := db.DefineClass(c.name, []string{c.super}); err != nil {
			return err
		}
	}
	if _, err := db.DefineClass("Vehicle", nil,
		oodb.Attr{Name: "vid", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
		oodb.Attr{Name: "manufacturer", Domain: "Company"},
	); err != nil {
		return err
	}
	for _, c := range []struct{ name, super string }{
		{"Automobile", "Vehicle"},
		{"Truck", "Vehicle"},
		{"DomesticAutomobile", "Automobile"},
	} {
		if _, err := db.DefineClass(c.name, []string{c.super}); err != nil {
			return err
		}
	}
	fmt.Println("  defined Company, AutoCompany, TruckCompany, JapaneseAutoCompany")
	fmt.Println("  defined Vehicle, Automobile, Truck, DomesticAutomobile")
	fmt.Println("  Vehicle.manufacturer has domain Company (aggregation edge)")
	return nil
}

func populate(db *oodb.DB) error {
	return db.Do(func(tx *oodb.Tx) error {
		gm, err := tx.Insert("AutoCompany", oodb.Attrs{
			"name": oodb.String("GM"), "location": oodb.String("Detroit")})
		if err != nil {
			return err
		}
		toyota, _ := tx.Insert("JapaneseAutoCompany", oodb.Attrs{
			"name": oodb.String("Toyota"), "location": oodb.String("Toyota City")})
		freight, _ := tx.Insert("TruckCompany", oodb.Attrs{
			"name": oodb.String("Freightliner"), "location": oodb.String("Detroit")})
		for _, v := range []struct {
			class, id string
			weight    int64
			maker     oodb.OID
		}{
			{"Vehicle", "v1", 5000, gm},
			{"Automobile", "a1", 3000, gm},
			{"Automobile", "a2", 8000, toyota},
			{"DomesticAutomobile", "d1", 7600, gm},
			{"Truck", "t1", 9000, freight},
			{"Truck", "t2", 7000, freight},
		} {
			if _, err := tx.Insert(v.class, oodb.Attrs{
				"vid":          oodb.String(v.id),
				"weight":       oodb.Int(v.weight),
				"manufacturer": oodb.Ref(v.maker),
			}); err != nil {
				return err
			}
		}
		fmt.Println("  inserted 3 companies and 6 vehicles")
		return nil
	})
}

func run(db *oodb.DB, q string) {
	plan, err := db.Explain(q)
	must(err)
	fmt.Printf("  plan: %s\n", plan)
	res, err := db.Query(q)
	must(err)
	for _, row := range res.Rows {
		fmt.Print("  ")
		for i, v := range row.Values {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
