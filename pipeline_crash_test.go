package oodb_test

// Crash coverage for the WAL commit pipeline's I/O sites: the writer's
// batch append and fsync (crashed mid-flight under concurrent mixed
// sync/async committers) and the watermark publish (crashed in the window
// between a completed fsync and the durability announcement, via the
// WAL's afterSync test seam).

import (
	"sync"
	"testing"

	"oodb/internal/core"
	"oodb/internal/fault"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// TestCrashDuringPipelineCommit runs four committers — two full-durability,
// two relaxed (CommitAsync) — into a scripted crash, then verifies the
// pipeline's two acknowledgment contracts on the recovered image:
//   - every sync-acked commit is durable;
//   - each worker's surviving async-acked commits form a prefix of its ack
//     order (the WAL holds commits in order, so a crash loses only a
//     suffix), and any survivor is complete and correct.
func TestCrashDuringPipelineCommit(t *testing.T) {
	for _, crashAt := range []int{200, 600} {
		sched := fault.Schedule{Seed: 11, CrashAt: crashAt, Style: fault.StyleClean}
		dir := t.TempDir()
		inj := fault.NewInjector(sched)
		db, err := core.Open(dir, core.Options{
			PoolPages: 128,
			WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
			WrapWAL:   fault.WrapWAL(inj),
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		cl, err := db.DefineClass("G", nil,
			schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)})
		if err != nil {
			t.Fatalf("define class: %v", err)
		}

		type acked struct {
			oid model.OID
			n   int64
		}
		const workers = 4
		synced := make([][]acked, workers)
		async := make([][]acked, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				relaxed := w >= workers/2
				for i := 0; ; i++ {
					tx := db.Begin()
					n := int64(w*1_000_000 + i)
					oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(n)})
					if err != nil {
						tx.Abort()
						return
					}
					if relaxed {
						err = tx.CommitAsync()
					} else {
						err = tx.Commit()
					}
					if err != nil {
						return
					}
					if relaxed {
						async[w] = append(async[w], acked{oid, n})
					} else {
						synced[w] = append(synced[w], acked{oid, n})
					}
				}
			}(w)
		}
		wg.Wait()
		if !inj.Crashed() {
			t.Fatalf("workers stopped before the crash fired (schedule {%v})", sched)
		}

		db2, err := core.Open(dir, core.Options{})
		if err != nil {
			t.Fatalf("recovery reopen after {%v}: %v", sched, err)
		}
		checkRow := func(a acked) bool {
			obj, err := db2.FetchObject(a.oid)
			if err != nil {
				return false
			}
			v, err := db2.AttrValue(obj, "n")
			if err != nil {
				t.Fatalf("attr n of %s: %v", a.oid, err)
			}
			if got, _ := v.AsInt(); got != a.n {
				t.Fatalf("object %s: n=%d want %d (schedule {%v})", a.oid, got, a.n, sched)
			}
			return true
		}
		var syncN, asyncN, asyncLost int
		for w, list := range synced {
			for _, a := range list {
				if !checkRow(a) {
					t.Fatalf("sync-acked commit lost: worker %d object %s n=%d (schedule {%v})", w, a.oid, a.n, sched)
				}
				syncN++
			}
		}
		for w, list := range async {
			gone := false
			for _, a := range list {
				if checkRow(a) {
					if gone {
						t.Fatalf("async survivor after a lost commit: worker %d n=%d — suffix-loss contract broken (schedule {%v})", w, a.n, sched)
					}
					asyncN++
				} else {
					gone = true
					asyncLost++
				}
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("close after verification: %v", err)
		}
		t.Logf("schedule {%v}: %d sync acks durable, %d async acks durable, %d async acks lost (allowed)",
			sched, syncN, asyncN, asyncLost)
	}
}

// TestCrashAtWatermarkPublish crashes in the pipeline's third I/O site:
// after a group fsync completes but before the writer publishes the new
// durability watermark. Everything acknowledged up to that moment has been
// through a completed fsync, so recovery must surface every acked commit.
func TestCrashAtWatermarkPublish(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.Schedule{Seed: 3})
	db, err := core.Open(dir, core.Options{
		WrapDisk: fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:  fault.WrapWAL(inj),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cl, err := db.DefineClass("W", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)})
	if err != nil {
		t.Fatalf("define class: %v", err)
	}
	// Crash on the 5th post-arm fsync, in the fsync→publish window.
	var syncs int
	db.Log.SetAfterSync(func() {
		syncs++
		if syncs == 5 {
			inj.Crash()
		}
	})

	type acked struct {
		oid model.OID
		n   int64
	}
	var all []acked
	for i := 0; !inj.Crashed(); i++ {
		tx := db.Begin()
		oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
		if err != nil {
			tx.Abort()
			break
		}
		if err := tx.Commit(); err != nil {
			break
		}
		all = append(all, acked{oid, int64(i)})
	}
	if !inj.Crashed() {
		t.Fatal("workload ended before the publish-window crash fired")
	}
	if len(all) == 0 {
		t.Fatal("no commit was acknowledged before the crash; the test is vacuous")
	}

	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer db2.Close()
	for _, a := range all {
		obj, err := db2.FetchObject(a.oid)
		if err != nil {
			t.Fatalf("acked commit lost at publish-window crash: %s (n=%d): %v", a.oid, a.n, err)
		}
		v, _ := db2.AttrValue(obj, "n")
		if got, _ := v.AsInt(); got != a.n {
			t.Fatalf("object %s: n=%d want %d", a.oid, got, a.n)
		}
	}
	t.Logf("%d acked commits durable across a crash between fsync and watermark publish", len(all))
}
