package oodb_test

// Crash matrix for the clustered compaction path: the composite-clustered
// rewrite adds work the default rewrite never does — the placement policy
// reads objects (lock-free fetches) inside the DDL critical section, and
// the new segment is written in policy order rather than scan order. A
// crash anywhere in that window must still honor the rewrite's contract:
// no committed row lost, no deleted row resurrected, no page freed twice,
// and after ReclaimLeaked the page accountant reports zero leaks. The
// workload is census-enumerated exactly like TestCrashDuringCompaction and
// shares its verifier.

import (
	"fmt"
	"testing"

	"oodb/internal/composite"
	"oodb/internal/core"
	"oodb/internal/fault"
	"oodb/internal/maint"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// clusterCompactWorkload mirrors compactWorkload but makes class C a
// composite hierarchy: a self-referencing "kids" set declared composite,
// wired so every third survivor owns the next two survivors. The compact
// phase runs under maint.ClusterComposite, so the crash window covers the
// policy's in-DDL reads and the out-of-scan-order segment build.
func clusterCompactWorkload(dir string, inj *fault.Injector) (kept, deleted []model.OID, err error) {
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages: 64,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("setup")
	cl, err := db.DefineClass("C", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)},
		schema.AttrSpec{Name: "s", Domain: schema.ClassString, Default: model.String("")})
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.AddAttribute(cl.ID, schema.AttrSpec{Name: "kids", Domain: cl.ID, SetValued: true}); err != nil {
		return nil, nil, err
	}
	cm, err := composite.New(db)
	if err != nil {
		return nil, nil, err
	}
	if err := cm.DeclareComposite(cl.ID, "kids", false); err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex("c_n", cl.ID, []string{"n"}, false); err != nil {
		return nil, nil, err
	}
	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	var all []model.OID
	err = db.Do(func(tx *core.Tx) error {
		for i := 0; i < 18; i++ {
			s := fmt.Sprintf("row%d", i)
			if i%4 == 0 {
				s += string(big) // overflow chain: must survive the rewrite
			}
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "s": model.String(s)})
			if err != nil {
				return err
			}
			all = append(all, oid)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("shred")
	err = db.Do(func(tx *core.Tx) error {
		for i, oid := range all {
			if i%3 == 0 {
				continue // survivor
			}
			if err := tx.Delete(oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, oid := range all {
		if i%3 == 0 {
			kept = append(kept, oid)
		} else {
			deleted = append(deleted, oid)
		}
	}
	inj.SetPhase("wire")
	// Composite structure among survivors only, cross-interleaved so the
	// clustered layout genuinely differs from scan order: kept[0] owns the
	// even-indexed tail, kept[1] the odd-indexed tail. The rewrite must
	// emit [0 2 4 1 3 5], displacing four of six records.
	err = db.Do(func(tx *core.Tx) error {
		if len(kept) < 6 {
			return fmt.Errorf("workload kept %d rows, need >= 6", len(kept))
		}
		wire := func(parent model.OID, kids ...model.OID) error {
			members := make([]model.Value, len(kids))
			for i, k := range kids {
				members[i] = model.Ref(k)
			}
			return tx.Update(parent, map[string]model.Value{"kids": model.Set(members...)})
		}
		if err := wire(kept[0], kept[2], kept[4]); err != nil {
			return err
		}
		return wire(kept[1], kept[3], kept[5])
	})
	if err != nil {
		return kept, deleted, err
	}
	inj.SetPhase("checkpoint")
	if err := db.Checkpoint(); err != nil {
		return kept, deleted, err
	}
	inj.SetPhase("compact")
	if _, err := maint.New(db, maint.Options{Clustering: maint.ClusterComposite}).CompactClass(cl.ID); err != nil {
		return kept, deleted, err
	}
	inj.SetPhase("close")
	return kept, deleted, db.Close()
}

// TestCrashDuringClusteredCompaction crashes at every I/O op inside the
// composite-clustered compaction window and verifies the same contract as
// TestCrashDuringCompaction (shared verifier): committed rows survive with
// their bytes, deleted rows stay dead, fresh allocations never clobber
// live pages, and ReclaimLeaked drives the page accountant to zero leaks.
func TestCrashDuringClusteredCompaction(t *testing.T) {
	cdir := t.TempDir()
	cinj := fault.NewCensus(matrixSeed)
	kept, deleted, err := clusterCompactWorkload(cdir, cinj)
	if err != nil {
		t.Fatalf("census clustered-compact workload failed: %v", err)
	}
	// Sanity: the clustered census run itself must end correctly ordered —
	// if the policy did nothing the matrix exercises the wrong code path.
	{
		db, err := core.Open(cdir, core.Options{})
		if err != nil {
			t.Fatalf("census reopen: %v", err)
		}
		cl, err := db.Catalog.ClassByName("C")
		if err != nil {
			db.Close()
			t.Fatal(err)
		}
		var order []model.OID
		if err := db.Store.ScanClass(cl.ID, func(oid model.OID, _ []byte) bool {
			order = append(order, oid)
			return true
		}); err != nil {
			db.Close()
			t.Fatal(err)
		}
		db.Close()
		if len(order) < 6 || order[1] != kept[2] || order[2] != kept[4] || order[3] != kept[1] {
			t.Fatalf("census run not clustered: scan order %v, want families [0 2 4 1 3 5] of %v", order, kept)
		}
	}
	var window []fault.Point
	for _, p := range cinj.Census() {
		if p.Phase == "compact" {
			window = append(window, p)
		}
	}
	if len(window) < 5 {
		t.Fatalf("clustered compact window exposes only %d I/O ops; the test is vacuous", len(window))
	}
	step := 1
	if len(window) > 60 {
		step = len(window) / 60
	}
	for i := 0; i < len(window); i += step {
		p := window[i]
		sched := fault.Schedule{
			Seed:    matrixSeed*2_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 2), // clean, torn
		}
		name := fmt.Sprintf("op%04d_%s_%s", p.Index, p.Op, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(sched)
			_, _, err := clusterCompactWorkload(dir, inj)
			if err == nil && !inj.Crashed() {
				t.Fatalf("schedule {%v}: crash never fired", sched)
			}
			verifyCompactCrash(t, dir, sched, kept, deleted)
		})
	}
}
