package oodb_test

import (
	"fmt"
	"os"

	"oodb"
)

// Example shows the minimal session: schema with inheritance, data,
// a hierarchy-scoped query with a nested predicate, and an aggregate.
func Example() {
	dir, _ := os.MkdirTemp("", "kimdb-example")
	defer os.RemoveAll(dir)
	db, _ := oodb.Open(dir, oodb.Options{})
	defer db.Close()

	db.DefineClass("Company", nil,
		oodb.Attr{Name: "location", Domain: "String"})
	db.DefineClass("Vehicle", nil,
		oodb.Attr{Name: "weight", Domain: "Integer"},
		oodb.Attr{Name: "manufacturer", Domain: "Company"})
	db.DefineClass("Truck", []string{"Vehicle"})

	db.Do(func(tx *oodb.Tx) error {
		gm, _ := tx.Insert("Company", oodb.Attrs{"location": oodb.String("Detroit")})
		tx.Insert("Truck", oodb.Attrs{"weight": oodb.Int(9000), "manufacturer": oodb.Ref(gm)})
		tx.Insert("Vehicle", oodb.Attrs{"weight": oodb.Int(3000), "manufacturer": oodb.Ref(gm)})
		return nil
	})

	res, _ := db.Query(`SELECT weight FROM Vehicle WHERE manufacturer.location = 'Detroit' ORDER BY weight`)
	for _, row := range res.Rows {
		fmt.Println(row.Values[0])
	}
	agg, _ := db.Query(`SELECT COUNT(*), MAX(weight) FROM Vehicle`)
	fmt.Println(agg.Rows[0].Values[0], agg.Rows[0].Values[1])
	// Output:
	// 3000
	// 9000
	// 2 9000
}

// ExampleDB_NewWorkspace demonstrates memory-resident navigation: the
// second dereference is a swizzled pointer hop, not a database call.
func ExampleDB_NewWorkspace() {
	dir, _ := os.MkdirTemp("", "kimdb-example-ws")
	defer os.RemoveAll(dir)
	db, _ := oodb.Open(dir, oodb.Options{})
	defer db.Close()
	db.DefineClass("Node", nil,
		oodb.Attr{Name: "label", Domain: "String"},
		oodb.Attr{Name: "next", Domain: "Node"})
	var a oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		b, _ := tx.Insert("Node", oodb.Attrs{"label": oodb.String("b")})
		var err error
		a, err = tx.Insert("Node", oodb.Attrs{"label": oodb.String("a"), "next": oodb.Ref(b)})
		return err
	})
	ws := db.NewWorkspace()
	d, _ := ws.Fetch(a)
	next, _ := d.Deref("next")
	label, _ := next.Get("label")
	fmt.Println(label)
	// Output: "b"
}
