package oodb_test

// MVCC crash matrix: the version-chain overlay is volatile, so what a
// crash can break is the pact between the overlay and the durable state —
// a recovered database must never let a snapshot observe an uncommitted
// version, a torn generation, or a commit-epoch regression. The workload
// commits whole generations (every object moves together), checkpoints in
// the middle, and leaves one uncommitted generation aborting at the end;
// crashes are injected at every sampled I/O op between version-chain
// appends (the in-transaction heap writes), commit-epoch stamps (the
// commit records and their group sync) and the checkpoint.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"oodb/internal/core"
	"oodb/internal/fault"
	"oodb/internal/model"
	"oodb/internal/schema"
)

const (
	mvccObjects     = 8
	mvccGenerations = 4
	mvccAbortedGen  = 99 // staged by a transaction that always aborts
)

// mvccWorkload is the deterministic workload behind TestCrashMatrixMVCC.
// Every run issues the identical I/O sequence, so a census enumerates
// exactly the ops a scheduled crash run will hit.
func mvccWorkload(dir string, inj *fault.Injector) error {
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages: 64,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		return err
	}
	inj.SetPhase("setup")
	cl, err := db.DefineClass("V", nil,
		schema.AttrSpec{Name: "g", Domain: schema.ClassInteger, Default: model.Int(0)},
		schema.AttrSpec{Name: "k", Domain: schema.ClassInteger, Default: model.Int(0)})
	if err != nil {
		return err
	}
	oids := make([]model.OID, mvccObjects)
	err = db.Do(func(tx *core.Tx) error {
		for i := range oids {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"g": model.Int(0), "k": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids[i] = oid
		}
		return nil
	})
	if err != nil {
		return err
	}
	setGen := func(tx *core.Tx, g int64) error {
		for _, oid := range oids {
			if err := tx.Update(oid, map[string]model.Value{"g": model.Int(g)}); err != nil {
				return err
			}
		}
		return nil
	}
	for g := int64(1); g <= mvccGenerations; g++ {
		tx := db.Begin()
		// The chain-append window: every update installs its version-chain
		// entry before the heap write it shields.
		inj.SetPhase("append")
		if err := setGen(tx, g); err != nil {
			tx.Abort()
			return err
		}
		// The epoch-stamp window: commit record, group sync, stamp.
		inj.SetPhase("stamp")
		if err := tx.Commit(); err != nil {
			return err
		}
		if g == mvccGenerations/2 {
			inj.SetPhase("checkpoint")
			if err := db.Checkpoint(); err != nil {
				return err
			}
		}
	}
	// A generation that never commits: its chain entries and heap writes
	// land, then the whole thing rolls back. No recovered snapshot may
	// ever surface it.
	tx := db.Begin()
	inj.SetPhase("append")
	if err := setGen(tx, mvccAbortedGen); err != nil {
		tx.Abort()
		return err
	}
	inj.SetPhase("abort")
	if err := tx.Abort(); err != nil {
		return err
	}
	inj.SetPhase("close")
	return db.Close()
}

// verifyMVCCCrash reopens the crashed database without fault injection
// and checks the snapshot contract on the recovered state.
func verifyMVCCCrash(t *testing.T, dir string, sched fault.Schedule) {
	t.Helper()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen after {%v}: %v", sched, err)
	}
	defer db.Close()

	cl, err := db.Catalog.ClassByName("V")
	if err != nil {
		return // crashed before the schema was durable: nothing to check
	}

	// Snapshot view: one whole committed generation or nothing — never the
	// aborted generation, never a mix (a mix is exactly an uncommitted or
	// half-stamped commit leaking through recovery).
	snap := db.BeginSnapshot()
	gen := int64(-1)
	var oids []model.OID
	snapImages := make(map[model.OID][]byte)
	err = snap.Scan(cl.ID, func(obj *model.Object) bool {
		oids = append(oids, obj.OID)
		snapImages[obj.OID] = model.EncodeObject(obj)
		v, verr := db.AttrValue(obj, "g")
		if verr != nil {
			t.Fatalf("schedule {%v}: attr g: %v", sched, verr)
		}
		g, _ := v.AsInt()
		if g == mvccAbortedGen {
			t.Fatalf("schedule {%v}: recovered snapshot exposes the aborted generation", sched)
		}
		if gen == -1 {
			gen = g
		} else if g != gen {
			t.Fatalf("schedule {%v}: recovered snapshot is torn: generations %d and %d", sched, gen, g)
		}
		return true
	})
	snap.Commit()
	if err != nil {
		t.Fatalf("schedule {%v}: snapshot scan: %v", sched, err)
	}
	if n := len(oids); n != 0 && n != mvccObjects {
		t.Fatalf("schedule {%v}: recovered snapshot sees %d of %d objects", sched, n, mvccObjects)
	}
	if gen > mvccGenerations {
		t.Fatalf("schedule {%v}: recovered generation %d was never committed", sched, gen)
	}

	// Differential: on the quiesced recovered database the snapshot view
	// must equal the locked heap view byte for byte.
	ltx := db.Begin()
	if err := ltx.LockClassScan([]model.ClassID{cl.ID}); err != nil {
		t.Fatalf("schedule {%v}: lock scan: %v", sched, err)
	}
	heap := 0
	err = ltx.ScanLocked(cl.ID, func(obj *model.Object) bool {
		heap++
		want, ok := snapImages[obj.OID]
		if !ok {
			t.Fatalf("schedule {%v}: locked scan sees %s, snapshot does not", sched, obj.OID)
		}
		if !bytes.Equal(model.EncodeObject(obj), want) {
			t.Fatalf("schedule {%v}: object %s differs between snapshot and locked read", sched, obj.OID)
		}
		return true
	})
	ltx.Commit()
	if err != nil {
		t.Fatalf("schedule {%v}: locked scan: %v", sched, err)
	}
	if heap != len(snapImages) {
		t.Fatalf("schedule {%v}: locked scan sees %d objects, snapshot %d", sched, heap, len(snapImages))
	}

	// Epoch monotonicity across the crash: RestoreEpoch replayed the
	// commit watermark, so a post-recovery commit must advance the epoch
	// and become visible to a fresh snapshot at full strength.
	if len(oids) == 0 {
		return
	}
	epochBefore := db.Versions.Epoch()
	err = db.Do(func(tx *core.Tx) error {
		for _, oid := range oids {
			if err := tx.Update(oid, map[string]model.Value{"g": model.Int(7)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("schedule {%v}: post-recovery commit: %v", sched, err)
	}
	if e := db.Versions.Epoch(); e <= epochBefore {
		t.Fatalf("schedule {%v}: post-recovery commit left epoch at %d (was %d)", sched, e, epochBefore)
	}
	after := db.BeginSnapshot()
	defer after.Commit()
	err = after.Scan(cl.ID, func(obj *model.Object) bool {
		v, _ := db.AttrValue(obj, "g")
		if g, _ := v.AsInt(); g != 7 {
			t.Fatalf("schedule {%v}: post-recovery snapshot sees g=%d, want 7", sched, g)
		}
		return true
	})
	if err != nil {
		t.Fatalf("schedule {%v}: post-recovery snapshot scan: %v", sched, err)
	}
	runtime.GC()
}

// TestCrashMatrixMVCC enumerates the workload's I/O ops and crashes at a
// phase-balanced sample of them, verifying the snapshot contract after
// every recovery.
func TestCrashMatrixMVCC(t *testing.T) {
	cdir := t.TempDir()
	cinj := fault.NewCensus(matrixSeed)
	if err := mvccWorkload(cdir, cinj); err != nil {
		t.Fatalf("census mvcc workload failed: %v", err)
	}
	pts := cinj.Census()
	if len(pts) < 20 {
		t.Fatalf("mvcc workload exposes only %d I/O ops; the test is vacuous", len(pts))
	}
	phaseSeen := make(map[string]bool)
	for _, p := range pts {
		phaseSeen[p.Phase] = true
	}
	// The append and abort windows perform no I/O of their own (WAL
	// appends buffer until the commit's group sync, heap writes live in
	// the pool), so a crash "between the chain append and the stamp" is
	// physically a crash at the stamp's first op — the stamp, checkpoint
	// and close phases together cover every window the overlay creates.
	for _, required := range []string{"stamp", "checkpoint", "close"} {
		if !phaseSeen[required] {
			t.Fatalf("census has no crash points in required phase %q", required)
		}
	}

	selected := selectCrashPoints(pts, 40)
	t.Logf("census: %d I/O ops; crashing at %d of them", len(pts), len(selected))
	for i, p := range selected {
		sched := fault.Schedule{
			Seed:    matrixSeed*1_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 2), // clean, torn (lie voids the contract checked here)
		}
		name := fmt.Sprintf("op%04d_%s_%s_%s", p.Index, p.Op, p.Phase, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(sched)
			err := mvccWorkload(dir, inj)
			if err == nil && !inj.Crashed() {
				t.Fatalf("schedule {%v}: crash never fired", sched)
			}
			verifyMVCCCrash(t, dir, sched)
		})
	}
}
