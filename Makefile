GO ?= go

# Crash matrix breadth for `make crash` (the test's default is 60; the
# pre-merge gate sweeps wider). Override: make crash CRASH_SCHEDULES=500
CRASH_SCHEDULES ?= 120

.PHONY: build test vet fmtcheck race bench crash maint mvcc pipeline oo1 server shard metrics-lint verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Static check of obs metric registrations: every name must follow the
# layer_subsystem_name convention and no name may be registered twice
# (internal/obs/metricslint walks the source with go/parser).
metrics-lint:
	$(GO) run ./internal/obs/metricslint .

# The crash-recovery matrix under the race detector: every schedule
# crashes the engine at a distinct I/O op and verifies both recovery
# invariants after reopening (crash_test.go, internal/fault).
crash:
	CRASH_SCHEDULES=$(CRASH_SCHEDULES) $(GO) test -race -count=1 -run 'TestCrash' .

# The maintenance subsystem under the race detector: compactor, leak
# reclaimer, statistics collector and the planner's selectivity model
# (internal/maint, internal/stats, plus the compaction crash matrix).
maint:
	$(GO) test -race -count=1 ./internal/maint/ ./internal/stats/
	CRASH_SCHEDULES=$(CRASH_SCHEDULES) $(GO) test -race -count=1 -run 'TestCrashDuringCompaction|TestCrashCheckpointRootSwap' .

# The MVCC snapshot stack under the race detector: visibility and
# chain-lifecycle invariants (internal/mvcc), the snapshot/locked scan
# differential, concurrent reader-vs-writer stress, and the snapshot
# crash matrix (epoch persistence across recovery).
mvcc:
	$(GO) test -race -count=1 ./internal/mvcc/
	$(GO) test -race -count=1 -run 'TestSnapshot' ./internal/core/
	CRASH_SCHEDULES=$(CRASH_SCHEDULES) $(GO) test -race -count=1 -run 'TestCrashMatrixMVCC' .

# The commit pipeline and fail-stop error handling under the race
# detector: the WAL writer/watermark unit tests, the fsync-latch and
# poison regressions, the serial-vs-parallel replay differential, and the
# pipeline crash schedules (batch append, fsync, watermark publish).
pipeline:
	$(GO) test -race -count=1 ./internal/wal/
	$(GO) test -race -count=1 -run 'TestFsyncFailure|TestCommitFlushFailure|TestAutoCheckpointFailure|TestParallelReplay' ./internal/core/
	CRASH_SCHEDULES=$(CRASH_SCHEDULES) $(GO) test -race -count=1 -run 'TestCrashDuringPipelineCommit|TestCrashAtWatermarkPublish' .

# The clustering stack under the race detector: placement-policy unit
# tests, the logical-invisibility differential, the clustered-compaction
# crash matrix, the OO1 generator determinism pin, and the access-tracker
# tests behind heat-ordered placement.
oo1:
	$(GO) test -race -count=1 -run 'TestAccessTracker' ./internal/obs/
	$(GO) test -race -count=1 -run 'TestRewriteSegmentOrdered' ./internal/storage/
	$(GO) test -race -count=1 -run 'TestComposite|TestHeat|TestCluster' ./internal/maint/
	$(GO) test -race -count=1 -run 'TestOO1' ./internal/bench/
	$(GO) test -race -count=1 -run 'TestClusteredRewrite|TestSnapshotPinnedAcrossClusteredRewrite|TestCrashDuringClusteredCompaction' .

# The wire server stack under the race detector: protocol codec units
# (including the junk-buffer decoder fuzz), client/server parity and
# transaction semantics, admission-control sheds, panic isolation, idle
# eviction with lock release, the malformed/oversized-frame fuzz, and
# the drain-under-load regression (zero committed-transaction loss
# across shutdown + restart).
server:
	$(GO) test -race -count=1 ./internal/server/...

# The sharding layer under the race detector: consistent-hash ring and
# global-OID translation units, scatter-gather parity against a single
# database, owner-routed object operations, per-class placement, remote
# federation-source parity, and the fault-injection suite (member down
# mid-scatter -> typed partial failure; member crash + restart mid-write
# storm -> no acked write lost).
shard:
	$(GO) test -race -count=1 ./internal/shard/
	$(GO) test -race -count=1 -run 'TestPushdown' ./internal/federation/

# The full pre-merge gate: compile, static checks, formatting drift, the
# whole test suite under the race detector, a wide crash sweep, the
# maintenance matrix, the MVCC snapshot stack, the commit pipeline, the
# clustering stack, the wire server stack, and the sharding layer.
verify: build vet fmtcheck metrics-lint race crash maint mvcc pipeline oo1 server shard
