GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The full pre-merge gate: compile, static checks, and the whole test
# suite under the race detector (the concurrency tests depend on it).
verify: build vet race
