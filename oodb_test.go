package oodb

import (
	"strings"
	"testing"

	"oodb/internal/authz"
	"oodb/internal/federation"
)

// TestPublicAPIEndToEnd exercises the facade the way the README's quick
// start does: schema, data, query, method dispatch, workspace, views.
func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.DefineClass("Company", nil,
		Attr{Name: "name", Domain: "String"},
		Attr{Name: "location", Domain: "String"},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Vehicle", nil,
		Attr{Name: "id", Domain: "String"},
		Attr{Name: "weight", Domain: "Integer"},
		Attr{Name: "manufacturer", Domain: "Company"},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Truck", []string{"Vehicle"},
		Attr{Name: "payload", Domain: "Integer"},
	); err != nil {
		t.Fatal(err)
	}

	var gm, truck OID
	err = db.Do(func(tx *Tx) error {
		var err error
		gm, err = tx.Insert("Company", Attrs{
			"name": String("GM"), "location": String("Detroit")})
		if err != nil {
			return err
		}
		truck, err = tx.Insert("Truck", Attrs{
			"id": String("t1"), "weight": Int(9000), "manufacturer": Ref(gm)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// The paper's example query through the public API.
	res, err := db.Query(`SELECT id FROM Vehicle WHERE weight > 7500 AND manufacturer.location = 'Detroit'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "t1" {
		t.Fatalf("id = %v", res.Rows[0].Values[0])
	}

	// Method dispatch with late binding.
	if err := db.AddMethod("Vehicle", "describe", func(eng MethodEngine, recv *Object, _ []Value) (Value, error) {
		return String("a vehicle"), nil
	}); err != nil {
		t.Fatal(err)
	}
	out, err := db.Send(truck, "describe")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := out.AsString(); s != "a vehicle" {
		t.Fatalf("describe = %v", out)
	}

	// Workspace navigation.
	ws := db.NewWorkspace()
	d, err := ws.Fetch(truck)
	if err != nil {
		t.Fatal(err)
	}
	maker, err := d.Deref("manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	loc, _ := maker.Get("location")
	if s, _ := loc.AsString(); s != "Detroit" {
		t.Fatalf("workspace deref = %v", loc)
	}
}

func TestSelfReferentialDomain(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.DefineClass("Employee", nil,
		Attr{Name: "name", Domain: "String"},
		Attr{Name: "manager", Domain: "Employee"}, // self-reference
	); err != nil {
		t.Fatal(err)
	}
	var boss, emp OID
	err = db.Do(func(tx *Tx) error {
		var err error
		boss, err = tx.Insert("Employee", Attrs{"name": String("alice")})
		if err != nil {
			return err
		}
		emp, err = tx.Insert("Employee", Attrs{
			"name": String("bob"), "manager": Ref(boss)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT name FROM Employee WHERE manager.name = 'alice'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	_ = emp
}

func TestIndexAndExplainThroughFacade(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("P", nil, Attr{Name: "n", Domain: "Integer"})
	if err := db.CreateIndex("pn", "P", []string{"n"}, true); err != nil {
		t.Fatal(err)
	}
	db.Do(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if _, err := tx.Insert("P", Attrs{"n": Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	plan, err := db.Explain(`SELECT * FROM P WHERE n = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if want := "index-eq(pn)"; !strings.Contains(plan, want) {
		t.Fatalf("plan = %q, want %q", plan, want)
	}
	res, _ := db.Query(`SELECT * FROM P WHERE n = 3`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := db.DropIndex("pn"); err != nil {
		t.Fatal(err)
	}
}

func TestExplainAnalyzeAndMetricsThroughFacade(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("A", nil, Attr{Name: "n", Domain: "Integer"})
	db.DefineClass("B", []string{"A"})
	db.Do(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.Insert("A", Attrs{"n": Int(int64(i))}); err != nil {
				return err
			}
			if _, err := tx.Insert("B", Attrs{"n": Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	out, err := db.ExplainAnalyze(`SELECT * FROM A WHERE n >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"rows=6", "scan A", "scan B", "rows_scanned=", "buffer: hits="} {
		if !strings.Contains(out, w) {
			t.Fatalf("ExplainAnalyze output missing %q:\n%s", w, out)
		}
	}
	snap := db.Metrics()
	if snap.Counters["query_exec_statements_total"] == 0 {
		t.Fatalf("metrics snapshot shows no executed statements: %v", snap.Counters)
	}
}

func TestFeatureLayersThroughFacade(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, err := db.DefineClass("Design", nil, Attr{Name: "name", Domain: "String"})
	if err != nil {
		t.Fatal(err)
	}

	vm, err := db.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EnableVersioning(cl.ID); err != nil {
		t.Fatal(err)
	}
	var v1 OID
	db.Do(func(tx *Tx) error {
		_, v1, err = vm.CreateVersioned(tx, cl.ID, Attrs{"name": String("x")})
		return err
	})
	if v1.IsNil() {
		t.Fatal("no version created")
	}

	views, err := db.Views()
	if err != nil {
		t.Fatal(err)
	}
	if err := views.Define("AllDesigns", `SELECT * FROM Design`); err != nil {
		t.Fatal(err)
	}

	az := db.Authorizer()
	az.AddRole("eng")
	if az.Allowed("eng", authz.Read, authz.Class(cl.ID)) {
		t.Fatal("closed world violated")
	}

	eng, edb := db.RuleEngine()
	if err := edb.MapClass("design", "Design"); err != nil {
		t.Fatal(err)
	}
	facts, err := eng.Infer("design")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 {
		t.Fatalf("design facts = %d", len(facts))
	}
}

func TestFacadeSchemaOps(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.DefineClass("A", nil, Attr{Name: "x", Domain: "Integer"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("B", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AddSuperclass("B", "A"); err != nil {
		t.Fatal(err)
	}
	// B inherits x now.
	db.Do(func(tx *Tx) error {
		_, err := tx.Insert("B", Attrs{"x": Int(7)})
		return err
	})
	res, err := db.Query(`SELECT * FROM A WHERE x = 7`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("hierarchy query after AddSuperclass: %d rows, %v", len(res.Rows), err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropClass("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ClassByName("B"); err == nil {
		t.Fatal("B survived drop")
	}
	// Unknown names error cleanly.
	if err := db.AddSuperclass("A", "Nope"); err == nil {
		t.Fatal("unknown super accepted")
	}
	if err := db.DropClass("Nope"); err == nil {
		t.Fatal("unknown class dropped")
	}
	if err := db.AddAttribute("Nope", Attr{Name: "x", Domain: "Integer"}); err == nil {
		t.Fatal("attr on unknown class accepted")
	}
	if err := db.AddAttribute("A", Attr{Name: "y", Domain: "Nope"}); err == nil {
		t.Fatal("attr with unknown domain accepted")
	}
}

func TestFacadeSchemaVersioning(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("P", nil, Attr{Name: "n", Domain: "Integer"})
	if _, err := db.SnapshotSchema("v1"); err != nil {
		t.Fatal(err)
	}
	db.AddAttribute("P", Attr{Name: "m", Domain: "Integer"})
	diff, err := db.DiffSchema("v1")
	if err != nil || len(diff) != 1 || diff[0] != "+ attr P.m" {
		t.Fatalf("diff = %v, %v", diff, err)
	}
	vs, _ := db.SchemaVersions()
	if len(vs) != 1 {
		t.Fatalf("versions = %v", vs)
	}
}

func TestFacadeQueryFromView(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("P", nil, Attr{Name: "n", Domain: "Integer"})
	db.Do(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.Insert("P", Attrs{"n": Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	vm, err := db.Views()
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Define("Big", `SELECT * FROM P WHERE n >= 3`); err != nil {
		t.Fatal(err)
	}
	// The facade's own Query resolves the view name.
	res, err := db.Query(`SELECT COUNT(*) FROM Big`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0].Values[0].AsInt(); n != 2 {
		t.Fatalf("COUNT over view = %v", res.Rows[0].Values[0])
	}
}

func TestFacadeFederationSource(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("P", nil, Attr{Name: "n", Domain: "Integer"})
	db.Do(func(tx *Tx) error {
		_, err := tx.Insert("P", Attrs{"n": Int(1)})
		return err
	})
	src := db.FederationSource()
	found := false
	for _, c := range src.Classes() {
		if c == "P" {
			found = true
		}
	}
	if !found {
		t.Fatal("federation source misses class P")
	}
	n := 0
	src.Scan("P", func(federation.Entity) bool { n++; return true })
	if n != 1 {
		t.Fatalf("scan saw %d entities", n)
	}
}
