package oodb

import (
	"errors"
	"testing"

	"oodb/internal/authz"
)

// sessionWorld: Employees with salaries; HR reads everything, staff read
// everything except salary, interns see nothing.
func sessionWorld(t *testing.T) (*DB, *authz.Authorizer, OID) {
	t.Helper()
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.DefineClass("Employee", nil,
		Attr{Name: "name", Domain: "String"},
		Attr{Name: "salary", Domain: "Integer"},
	); err != nil {
		t.Fatal(err)
	}
	var alice OID
	db.Do(func(tx *Tx) error {
		var err error
		alice, err = tx.Insert("Employee", Attrs{
			"name": String("alice"), "salary": Int(200)})
		return err
	})
	cl, _ := db.ClassByName("Employee")
	az := db.Authorizer()
	for _, r := range []string{"hr", "staff", "intern"} {
		az.AddRole(r)
	}
	az.Grant(authz.Grant{Role: "hr", Type: authz.Write, Object: authz.ClassDeep(cl.ID)})
	az.Grant(authz.Grant{Role: "staff", Type: authz.Read, Object: authz.ClassDeep(cl.ID)})
	az.Grant(authz.Grant{Role: "staff", Type: authz.Read,
		Object: authz.Attribute(cl.ID, "salary"), Negative: true})
	return db, az, alice
}

func TestSessionQueryFiltering(t *testing.T) {
	db, az, _ := sessionWorld(t)
	// Staff see the row; interns see nothing; neither errors.
	res, err := db.Session(az, "staff").Query(`SELECT name FROM Employee`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("staff rows = %d, %v", len(res.Rows), err)
	}
	res, err = db.Session(az, "intern").Query(`SELECT name FROM Employee`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("intern rows = %d, %v", len(res.Rows), err)
	}
}

func TestSessionAttributeHiding(t *testing.T) {
	db, az, alice := sessionWorld(t)
	staff := db.Session(az, "staff")
	obj, err := staff.Fetch(alice)
	if err != nil {
		t.Fatal(err)
	}
	// name readable, salary hidden by the attribute negative.
	if _, err := staff.Get(obj, "name"); err != nil {
		t.Fatalf("name: %v", err)
	}
	if _, err := staff.Get(obj, "salary"); !errors.Is(err, authz.ErrDenied) {
		t.Fatalf("salary: expected denial, got %v", err)
	}
	// HR reads both (write implies read; no negative for hr).
	hr := db.Session(az, "hr")
	if _, err := hr.Get(obj, "salary"); err != nil {
		t.Fatalf("hr salary: %v", err)
	}
}

func TestSessionWriteEnforcement(t *testing.T) {
	db, az, alice := sessionWorld(t)
	staff := db.Session(az, "staff")
	if err := staff.Update(alice, Attrs{"name": String("x")}); !errors.Is(err, authz.ErrDenied) {
		t.Fatalf("staff update: %v", err)
	}
	if _, err := staff.Insert("Employee", Attrs{"name": String("bob")}); !errors.Is(err, authz.ErrDenied) {
		t.Fatalf("staff insert: %v", err)
	}
	if err := staff.Delete(alice); !errors.Is(err, authz.ErrDenied) {
		t.Fatalf("staff delete: %v", err)
	}
	hr := db.Session(az, "hr")
	if err := hr.Update(alice, Attrs{"salary": Int(210)}); err != nil {
		t.Fatalf("hr update: %v", err)
	}
	bob, err := hr.Insert("Employee", Attrs{"name": String("bob")})
	if err != nil {
		t.Fatalf("hr insert: %v", err)
	}
	if err := hr.Delete(bob); err != nil {
		t.Fatalf("hr delete: %v", err)
	}
}

func TestSessionAttributeWriteProhibition(t *testing.T) {
	db, az, alice := sessionWorld(t)
	cl, _ := db.ClassByName("Employee")
	az.AddRole("auditor")
	az.Grant(authz.Grant{Role: "auditor", Type: authz.Write, Object: authz.ClassDeep(cl.ID)})
	az.Grant(authz.Grant{Role: "auditor", Type: authz.Write,
		Object: authz.Attribute(cl.ID, "salary"), Negative: true})
	auditor := db.Session(az, "auditor")
	// May rename, may not touch salary.
	if err := auditor.Update(alice, Attrs{"name": String("a2")}); err != nil {
		t.Fatalf("auditor rename: %v", err)
	}
	if err := auditor.Update(alice, Attrs{"salary": Int(0)}); !errors.Is(err, authz.ErrDenied) {
		t.Fatalf("auditor salary write: %v", err)
	}
}

func TestSessionAggregateRequiresDatabaseRead(t *testing.T) {
	db, az, _ := sessionWorld(t)
	// Aggregates have no row identity; only a database-wide reader sees
	// them through a session.
	res, err := db.Session(az, "staff").Query(`SELECT COUNT(*) FROM Employee`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("staff aggregate rows = %d, %v", len(res.Rows), err)
	}
	az.AddRole("root")
	az.Grant(authz.Grant{Role: "root", Type: authz.Read, Object: authz.Database()})
	res, err = db.Session(az, "root").Query(`SELECT COUNT(*) FROM Employee`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("root aggregate rows = %d, %v", len(res.Rows), err)
	}
}
