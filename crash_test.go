package oodb_test

// Crash-recovery matrix: the harness workload is run once under a census
// injector to enumerate every I/O op it performs, then re-run once per
// selected crash point with the injector scripted to crash there —
// cleanly, mid-write (torn), or behind a lying fsync. After each crash the
// database is reopened without fault injection and checked against the
// reference model. Every failure message prints the fault.Schedule that
// reproduces it; the workload seed is fixed in this file, so
// schedule + seed fully determine the run.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"oodb/internal/core"
	"oodb/internal/fault"
	"oodb/internal/fault/harness"
	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/storage"
)

// matrixSeed drives both the matrix workload and (by derivation) its crash
// schedules. Changing it changes every schedule; failures always print the
// derived schedule, which together with this constant reproduces the run.
const matrixSeed int64 = 42

const matrixSteps = 48

// crashScheduleCount returns how many crash points to run (bounded for CI;
// override with CRASH_SCHEDULES).
func crashScheduleCount(t *testing.T) int {
	if s := os.Getenv("CRASH_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_SCHEDULES=%q", s)
		}
		return n
	}
	return 60
}

// censusPoints runs the workload once with a never-firing injector and
// returns every I/O op it performed, tagged with the workload phase.
func censusPoints(t *testing.T) []fault.Point {
	t.Helper()
	dir := t.TempDir()
	inj := fault.NewCensus(matrixSeed)
	m := harness.NewModel()
	res := harness.Run(dir, inj, matrixSeed, matrixSteps, m)
	if res.Err != nil {
		t.Fatalf("census run failed: %v", res.Err)
	}
	if err := harness.Check(dir, m, nil); err != nil {
		t.Fatalf("census run (no faults) fails its own invariants: %v", err)
	}
	// A run with no faults must account for every page: anything leaked
	// here is a genuine space bug, not a deliberate recovery trade-off.
	acct := accountPages(t, dir)
	if acct.Leaked != 0 {
		t.Fatalf("census run (no faults) leaked %d pages: %v", acct.Leaked, acct.LeakedPages)
	}
	return inj.Census()
}

// selectCrashPoints spreads n crash points across the workload phases:
// every phase contributes evenly spaced points, so commit, group-commit,
// checkpoint and DDL paths are all crashed even when one phase dominates
// the op count.
func selectCrashPoints(pts []fault.Point, n int) []fault.Point {
	byPhase := make(map[string][]fault.Point)
	for _, p := range pts {
		byPhase[p.Phase] = append(byPhase[p.Phase], p)
	}
	phases := make([]string, 0, len(byPhase))
	for ph := range byPhase {
		phases = append(phases, ph)
	}
	sort.Strings(phases)

	picked := make(map[int]bool)
	var out []fault.Point
	for round := 0; len(out) < n && round < len(pts); round++ {
		for _, ph := range phases {
			if len(out) >= n {
				break
			}
			list := byPhase[ph]
			// Evenly spaced position for this round within the phase list.
			k := (round*2049 + 1025) % len(list) // deterministic low-discrepancy walk
			p := list[k]
			if picked[p.Index] {
				// Linear probe to the next unpicked point of the phase.
				for i := 0; i < len(list); i++ {
					q := list[(k+i)%len(list)]
					if !picked[q.Index] {
						p = q
						break
					}
				}
				if picked[p.Index] {
					continue // phase exhausted
				}
			}
			picked[p.Index] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// TestCrashMatrix enumerates crash points across the workload and verifies
// both recovery invariants after every one.
func TestCrashMatrix(t *testing.T) {
	pts := censusPoints(t)
	if len(pts) < 50 {
		t.Fatalf("workload exposes only %d crash points; need >= 50", len(pts))
	}
	phaseSeen := make(map[string]bool)
	for _, p := range pts {
		phaseSeen[p.Phase] = true
	}
	for _, required := range []string{"dml", "group-commit", "checkpoint", "ddl"} {
		if !phaseSeen[required] {
			t.Fatalf("census has no crash points in required phase %q", required)
		}
	}

	n := crashScheduleCount(t)
	selected := selectCrashPoints(pts, n)
	t.Logf("census: %d I/O ops; crashing at %d of them", len(pts), len(selected))

	for i, p := range selected {
		sched := fault.Schedule{
			Seed:    matrixSeed*1_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 3),
		}
		name := fmt.Sprintf("op%04d_%s_%s_%s", p.Index, p.Op, p.Phase, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runSchedule(t, sched)
		})
	}
}

// runSchedule executes one crash/recover/check cycle and reports failures
// with the reproducing schedule.
func runSchedule(t *testing.T, sched fault.Schedule) {
	t.Helper()
	dir := t.TempDir()
	m := harness.NewModel()
	inj := fault.NewInjector(sched)
	res := harness.Run(dir, inj, matrixSeed, matrixSteps, m)
	if res.Err != nil && !res.Crashed {
		t.Fatalf("schedule {%v}: workload error without a crash: %v", sched, res.Err)
	}
	if inj.Lied() {
		// An fsync acknowledged without durability: full model equality is
		// unenforceable (see harness.CheckLied), check the lie contract.
		if err := harness.CheckLied(dir, m); err != nil {
			t.Fatalf("schedule {%v}: lie contract violated: %v\nreproduce: the schedule is derived from matrixSeed=%d and CrashAt=%d in crash_test.go", sched, err, matrixSeed, sched.CrashAt)
		}
		runtime.GC()
		return
	}
	if err := harness.Check(dir, m, res.Indet); err != nil {
		t.Fatalf("schedule {%v}: recovery invariant violated: %v\nreproduce: the schedule is derived from matrixSeed=%d and CrashAt=%d in crash_test.go", sched, err, matrixSeed, sched.CrashAt)
	}
	// Post-recovery page accounting: recovery may leak pages by design
	// (quarantined chains, amputated pages — freeing them risks double
	// ownership), but the count should be visible, not silent.
	if acct := accountPages(t, dir); acct.Leaked > 0 {
		t.Logf("schedule {%v}: recovery leaked %d of %d pages (deliberate: see AccountPages)", sched, acct.Leaked, acct.Total)
	}
	// The crashed engine is abandoned, not closed (that is the point);
	// nudge the runtime to reclaim its descriptors between subtests.
	runtime.GC()
}

// accountPages reopens the recovered database without fault injection and
// runs the storage accountant's full-file reachability walk.
func accountPages(t *testing.T, dir string) *storage.PageAccount {
	t.Helper()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("accountant reopen: %v", err)
	}
	defer db.Close()
	acct, err := db.Store.AccountPages()
	if err != nil {
		t.Fatalf("AccountPages: %v", err)
	}
	return acct
}

// TestCrashRegressions replays the exact schedules under which the harness
// caught real recovery bugs, so the fixes stay fixed. Each schedule is
// relative to the matrix workload (matrixSeed/matrixSteps); if the
// workload's I/O sequence ever changes these crash elsewhere, which is
// still a valid (if different) crash test.
func TestCrashRegressions(t *testing.T) {
	cases := []struct {
		name  string
		sched fault.Schedule
	}{
		// freeIfOverflow destroyed a committed overflow chain in place
		// before the freeing transaction's undo records were durable: a
		// loser update left the old value unrecoverable. Fixed by forcing
		// the log ahead of every destructive free (BufferPool.FreePage).
		{"undo_durable_before_free_clean", fault.Schedule{Seed: matrixSeed*1_000_000 + 402, CrashAt: 402, Style: fault.StyleClean}},
		{"undo_durable_before_free_abort", fault.Schedule{Seed: matrixSeed*1_000_000 + 451, CrashAt: 451, Style: fault.StyleClean}},
		{"undo_durable_before_free_torn", fault.Schedule{Seed: matrixSeed*1_000_000 + 459, CrashAt: 459, Style: fault.StyleTorn}},
		// A lost overflow write reverted a chain page to a stale but
		// checksum-valid state; the open-time directory rebuild died on it
		// instead of quarantining the record for WAL replay to reinsert.
		// Fixed by Heap.RecoverScan.
		{"stale_overflow_quarantined", fault.Schedule{Seed: matrixSeed*1_000_000 + 239, CrashAt: 239, Style: fault.StyleClean}},
		{"stale_overflow_quarantined_torn", fault.Schedule{Seed: matrixSeed*1_000_000 + 240, CrashAt: 240, Style: fault.StyleTorn}},
		{"stale_overflow_mid_group_commit", fault.Schedule{Seed: matrixSeed*1_000_000 + 407, CrashAt: 407, Style: fault.StyleTorn}},
		// A class created just before a checkpoint crash left its first
		// heap page durable only as its old free-list seal — checksum
		// valid, type free, with a free-list link aimed at a page reused
		// for the catalog blob. The directory rebuild followed the link,
		// adopted the catalog page into the heap chain and quarantined a
		// catalog record. Fixed by type-guarding the chain walk (and
		// amputate no longer frees the cut page — its provenance is
		// unknowable, so freeing risks handing one page to two owners).
		{"stale_chain_walk_adopts_reused_page", fault.Schedule{Seed: matrixSeed*1_000_000 + 517, CrashAt: 517, Style: fault.StyleClean}},
		// A lie schedule whose crash op is a disk.free degrades to a clean
		// crash, so the strong checker applies; the failure it caught was
		// replay freeing a chain through a stale heap stub.
		{"lie_degraded_free_crash", fault.Schedule{Seed: matrixSeed*1_000_000 + 495, CrashAt: 495, Style: fault.StyleLie}},
		// WAL replay freed an overflow chain through a stub read from a
		// reverted page: the chain pages had since been reallocated to
		// another record's chain (same page type — no guard can tell), so
		// the free double-entered them on the free list and a later replay
		// write clobbered the other record's chunk. Fixed by suppressing
		// all stub-driven frees during replay (BufferPool recovery mode);
		// replaced chains leak instead.
		{"replay_free_through_stale_stub", fault.Schedule{Seed: matrixSeed*1_000_000 + 263, CrashAt: 263, Style: fault.StyleTorn}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			runSchedule(t, c.sched)
		})
	}
}

// TestCrashDifferential is the property-based differential test: random
// op sequences run against the engine and the in-memory model through
// several crash/recover cycles per seed, comparing full state after every
// recovery. Crash points are drawn blindly (they may fall beyond the run,
// which then completes and closes cleanly — also worth checking).
func TestCrashDifferential(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			m := harness.NewModel()
			meta := rand.New(rand.NewSource(seed))
			for cycle := 0; cycle < 3; cycle++ {
				// Clean and torn crashes only: a lying fsync voids the
				// durability guarantees this test carries across cycles
				// (lie schedules are exercised by the matrix instead).
				sched := fault.Schedule{
					Seed:    seed + int64(cycle)*1000,
					CrashAt: 1 + meta.Intn(400),
					Style:   fault.Style(meta.Intn(2)),
				}
				inj := fault.NewInjector(sched)
				res := harness.Run(dir, inj, sched.Seed, 30, m)
				if res.Err != nil && !res.Crashed {
					t.Fatalf("cycle %d schedule {%v}: workload error without crash: %v", cycle, sched, res.Err)
				}
				if err := harness.Check(dir, m, res.Indet); err != nil {
					t.Fatalf("cycle %d schedule {%v}: %v", cycle, sched, err)
				}
				runtime.GC()
			}
		})
	}
}

// TestCrashDuringConcurrentGroupCommit crashes while several committers
// share group-commit fsyncs, then verifies every acknowledged commit
// survived. (Not schedule-deterministic — goroutine interleaving decides
// which op hits the crash point — but every acked commit must be durable
// regardless of interleaving.)
func TestCrashDuringConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	sched := fault.Schedule{Seed: 7, CrashAt: 600, Style: fault.StyleClean}
	inj := fault.NewInjector(sched)
	db, err := core.Open(dir, core.Options{
		PoolPages: 128,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cl, err := db.DefineClass("G", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)})
	if err != nil {
		t.Fatalf("define class: %v", err)
	}
	if err := db.CreateIndex("g_n", cl.ID, []string{"n"}, false); err != nil {
		t.Fatalf("create index: %v", err)
	}

	type acked struct {
		oid model.OID
		n   int64
	}
	results := make(chan []acked, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var mine []acked
			for i := 0; ; i++ {
				tx := db.Begin()
				n := int64(w*1_000_000 + i)
				oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(n)})
				if err != nil {
					tx.Abort()
					break
				}
				if err := tx.Commit(); err != nil {
					break
				}
				mine = append(mine, acked{oid, n})
			}
			results <- mine
		}(w)
	}
	var all []acked
	for w := 0; w < 4; w++ {
		all = append(all, <-results...)
	}
	if !inj.Crashed() {
		t.Fatalf("workers stopped before the crash fired (schedule {%v})", sched)
	}

	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen after {%v}: %v", sched, err)
	}
	defer db2.Close()
	idx, err := db2.Indexes.Get("g_n")
	if err != nil {
		t.Fatalf("index g_n missing after recovery: %v", err)
	}
	for _, a := range all {
		obj, err := db2.FetchObject(a.oid)
		if err != nil {
			t.Fatalf("acked commit lost: object %s (n=%d): %v (schedule {%v})", a.oid, a.n, err, sched)
		}
		v, err := db2.AttrValue(obj, "n")
		if err != nil {
			t.Fatalf("attr n of %s: %v", a.oid, err)
		}
		if got, _ := v.AsInt(); got != a.n {
			t.Fatalf("object %s: n=%d want %d", a.oid, got, a.n)
		}
		found := false
		for _, hit := range idx.Lookup(model.Int(a.n), nil) {
			if hit == a.oid {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("index g_n lost acked entry %d -> %s", a.n, a.oid)
		}
	}
	t.Logf("%d acked commits all durable across crash", len(all))
}

// dropWorkload is the deterministic workload behind TestCrashDuringDropClass:
// two classes with committed data (including multi-KB rows that spill to
// overflow chains) and an index on the doomed class, a checkpoint, then
// DropClass. Every run issues the identical I/O sequence, so a census
// enumerates exactly the ops a scheduled crash run will hit.
func dropWorkload(dir string, inj *fault.Injector) (keep, doomed []model.OID, err error) {
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages: 64,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("setup")
	attrs := []schema.AttrSpec{
		{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)},
		{Name: "s", Domain: schema.ClassString, Default: model.String("")},
	}
	clKeep, err := db.DefineClass("Keep", nil, attrs...)
	if err != nil {
		return nil, nil, err
	}
	clDoomed, err := db.DefineClass("Doomed", nil, attrs...)
	if err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex("doomed_n", clDoomed.ID, []string{"n"}, false); err != nil {
		return nil, nil, err
	}
	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	err = db.Do(func(tx *core.Tx) error {
		for i := 0; i < 12; i++ {
			s := fmt.Sprintf("row%d", i)
			if i%4 == 0 {
				s += string(big) // overflow chain: the drop must free these too
			}
			ko, err := tx.InsertClass(clKeep.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "s": model.String(s)})
			if err != nil {
				return err
			}
			do, err := tx.InsertClass(clDoomed.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "s": model.String(s)})
			if err != nil {
				return err
			}
			keep = append(keep, ko)
			doomed = append(doomed, do)
		}
		return nil
	})
	if err != nil {
		return keep, doomed, err
	}
	inj.SetPhase("checkpoint")
	if err := db.Checkpoint(); err != nil {
		return keep, doomed, err
	}
	inj.SetPhase("drop")
	if err := db.DropClass(clDoomed.ID); err != nil {
		return keep, doomed, err
	}
	inj.SetPhase("close")
	return keep, doomed, db.Close()
}

// TestCrashDuringDropClass crashes at every I/O op inside the DropClass
// window and verifies the WAL-before-data ordering of the detach/checkpoint/
// free sequence: the surviving class is always fully intact, and the dropped
// class is all-or-nothing — either still present with every committed row
// readable (drop not yet durable) or gone entirely (never half-dropped with
// its pages already freed). This is the regression net for the hole where
// DropSegment freed committed heap pages before the DDL checkpoint was
// durable: a crash in that window lost rows while the durable metadata
// still named the class, which surfaces here as a doomed row neither intact
// nor gone.
func TestCrashDuringDropClass(t *testing.T) {
	cdir := t.TempDir()
	cinj := fault.NewCensus(matrixSeed)
	keep, doomed, err := dropWorkload(cdir, cinj)
	if err != nil {
		t.Fatalf("census drop workload failed: %v", err)
	}
	var window []fault.Point
	for _, p := range cinj.Census() {
		if p.Phase == "drop" {
			window = append(window, p)
		}
	}
	if len(window) < 5 {
		t.Fatalf("drop window exposes only %d I/O ops; the test is vacuous", len(window))
	}
	// Crash at every op in the window (evenly sampled if it is very wide),
	// alternating clean and torn styles.
	step := 1
	if len(window) > 60 {
		step = len(window) / 60
	}
	for i := 0; i < len(window); i += step {
		p := window[i]
		sched := fault.Schedule{
			Seed:    matrixSeed*1_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 2), // clean, torn
		}
		name := fmt.Sprintf("op%04d_%s_%s", p.Index, p.Op, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(sched)
			_, _, err := dropWorkload(dir, inj)
			if err == nil && !inj.Crashed() {
				t.Fatalf("schedule {%v}: crash never fired", sched)
			}
			verifyDropCrash(t, dir, sched, keep, doomed)
		})
	}
}

func verifyDropCrash(t *testing.T, dir string, sched fault.Schedule, keep, doomed []model.OID) {
	t.Helper()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen after {%v}: %v", sched, err)
	}
	// The surviving class must be fully intact: its rows committed before
	// the checkpoint, so no crash inside the drop window may touch them.
	for i, oid := range keep {
		obj, err := db.FetchObject(oid)
		if err != nil {
			db.Close()
			t.Fatalf("schedule {%v}: surviving row %s lost: %v", sched, oid, err)
		}
		v, err := db.AttrValue(obj, "n")
		if err != nil {
			db.Close()
			t.Fatalf("schedule {%v}: surviving row %s attr n: %v", sched, oid, err)
		}
		if got, _ := v.AsInt(); got != int64(i) {
			db.Close()
			t.Fatalf("schedule {%v}: surviving row %s: n=%d want %d", sched, oid, got, i)
		}
		sv, err := db.AttrValue(obj, "s")
		if err != nil {
			db.Close()
			t.Fatalf("schedule {%v}: surviving row %s attr s: %v", sched, oid, err)
		}
		want := fmt.Sprintf("row%d", i)
		if s, _ := sv.AsString(); len(s) < len(want) || s[:len(want)] != want {
			db.Close()
			t.Fatalf("schedule {%v}: surviving row %s: s=%.20q want prefix %q", sched, oid, s, want)
		}
	}
	// The dropped class: while the catalog still names it, every committed
	// row must be fully intact — this is the regression net for the old
	// DropSegment behavior, which freed the heap pages BEFORE the DDL
	// checkpoint was durable and so lost rows the durable metadata still
	// named. Once the catalog has dropped the class, its rows must be gone
	// entirely: the checkpoint swaps catalog and segment table under a
	// single metadata write (BufferPool.SwapBlobs), so the old window where
	// a crash between the two blob swaps left readable orphans no longer
	// exists.
	if _, err := db.Catalog.ClassByName("Doomed"); err == nil {
		for i, oid := range doomed {
			obj, err := db.FetchObject(oid)
			if err != nil {
				db.Close()
				t.Fatalf("schedule {%v}: drop not durable but row %s lost: %v", sched, oid, err)
			}
			v, err := db.AttrValue(obj, "n")
			if err != nil {
				db.Close()
				t.Fatalf("schedule {%v}: doomed row %s attr n: %v", sched, oid, err)
			}
			if got, _ := v.AsInt(); got != int64(i) {
				db.Close()
				t.Fatalf("schedule {%v}: doomed row %s: n=%d want %d", sched, oid, got, i)
			}
		}
	} else {
		for _, oid := range doomed {
			if _, err := db.FetchObject(oid); err == nil {
				db.Close()
				t.Fatalf("schedule {%v}: class Doomed dropped but row %s still readable (catalog and segment table must swap atomically)", sched, oid)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("schedule {%v}: close after verification: %v", sched, err)
	}
	// A crash between the drop's checkpoint and its frees leaks the doomed
	// segment's pages by design; make the count visible.
	if acct := accountPages(t, dir); acct.Leaked > 0 {
		t.Logf("schedule {%v}: drop crash leaked %d of %d pages (deliberate: freed only after the checkpoint)", sched, acct.Leaked, acct.Total)
	}
	runtime.GC()
}

// compactWorkload is the deterministic workload behind
// TestCrashDuringCompaction: one class filled with committed rows (some
// spilling to overflow chains), two thirds deleted to fragment the
// segment, a checkpoint, then an online compaction. Returns the OIDs that
// must survive and the ones that must stay deleted.
func compactWorkload(dir string, inj *fault.Injector) (kept, deleted []model.OID, err error) {
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages: 64,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("setup")
	cl, err := db.DefineClass("C", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)},
		schema.AttrSpec{Name: "s", Domain: schema.ClassString, Default: model.String("")})
	if err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex("c_n", cl.ID, []string{"n"}, false); err != nil {
		return nil, nil, err
	}
	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	var all []model.OID
	err = db.Do(func(tx *core.Tx) error {
		for i := 0; i < 18; i++ {
			s := fmt.Sprintf("row%d", i)
			if i%4 == 0 {
				s += string(big) // overflow chain: must survive the rewrite
			}
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "s": model.String(s)})
			if err != nil {
				return err
			}
			all = append(all, oid)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("shred")
	err = db.Do(func(tx *core.Tx) error {
		for i, oid := range all {
			if i%3 == 0 {
				continue // survivor
			}
			if err := tx.Delete(oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, oid := range all {
		if i%3 == 0 {
			kept = append(kept, oid)
		} else {
			deleted = append(deleted, oid)
		}
	}
	inj.SetPhase("checkpoint")
	if err := db.Checkpoint(); err != nil {
		return kept, deleted, err
	}
	inj.SetPhase("compact")
	if _, err := db.CompactClass(cl.ID, nil); err != nil {
		return kept, deleted, err
	}
	inj.SetPhase("close")
	return kept, deleted, db.Close()
}

// TestCrashDuringCompaction crashes at every I/O op inside the online
// compaction window — the WAL marker, the fresh-chain writes, the segment
// table swap inside the DDL checkpoint, and the old-chain frees — and
// verifies the rewrite's crash contract: no committed row is ever lost, no
// deleted row resurfaces, and no page is freed twice (the fresh chain
// before the checkpoint and the old chain after it may leak, which the
// reclaimer then drives to zero).
func TestCrashDuringCompaction(t *testing.T) {
	cdir := t.TempDir()
	cinj := fault.NewCensus(matrixSeed)
	kept, deleted, err := compactWorkload(cdir, cinj)
	if err != nil {
		t.Fatalf("census compact workload failed: %v", err)
	}
	var window []fault.Point
	for _, p := range cinj.Census() {
		if p.Phase == "compact" {
			window = append(window, p)
		}
	}
	if len(window) < 5 {
		t.Fatalf("compact window exposes only %d I/O ops; the test is vacuous", len(window))
	}
	step := 1
	if len(window) > 60 {
		step = len(window) / 60
	}
	for i := 0; i < len(window); i += step {
		p := window[i]
		sched := fault.Schedule{
			Seed:    matrixSeed*1_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 2), // clean, torn
		}
		name := fmt.Sprintf("op%04d_%s_%s", p.Index, p.Op, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(sched)
			_, _, err := compactWorkload(dir, inj)
			if err == nil && !inj.Crashed() {
				t.Fatalf("schedule {%v}: crash never fired", sched)
			}
			verifyCompactCrash(t, dir, sched, kept, deleted)
		})
	}
}

func verifyCompactCrash(t *testing.T, dir string, sched fault.Schedule, kept, deleted []model.OID) {
	t.Helper()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen after {%v}: %v", sched, err)
	}
	checkRows := func(label string) {
		for _, oid := range kept {
			i := int(oid.Seq() - 1) // OIDs were minted in insertion order
			obj, err := db.FetchObject(oid)
			if err != nil {
				db.Close()
				t.Fatalf("schedule {%v}: %s: committed row %s lost across compaction crash: %v", sched, label, oid, err)
			}
			v, _ := db.AttrValue(obj, "n")
			if got, _ := v.AsInt(); got != int64(i) {
				db.Close()
				t.Fatalf("schedule {%v}: %s: row %s: n=%d want %d", sched, label, oid, got, i)
			}
			sv, _ := db.AttrValue(obj, "s")
			want := fmt.Sprintf("row%d", i)
			if s, _ := sv.AsString(); len(s) < len(want) || s[:len(want)] != want {
				db.Close()
				t.Fatalf("schedule {%v}: %s: row %s: s=%.20q want prefix %q", sched, label, oid, s, want)
			}
		}
		for _, oid := range deleted {
			if _, err := db.FetchObject(oid); err == nil {
				db.Close()
				t.Fatalf("schedule {%v}: %s: deleted row %s resurrected by compaction crash", sched, label, oid)
			}
		}
	}
	checkRows("after recovery")

	// Double-free detector: if any live page was freed (or one page handed
	// to two owners), new allocations will clobber it. Write fresh rows —
	// overflow-sized, to grab several pages — checkpoint, and re-verify.
	cl, err := db.Catalog.ClassByName("C")
	if err != nil {
		db.Close()
		t.Fatalf("schedule {%v}: class C missing after recovery: %v", sched, err)
	}
	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte('z' - i%26)
	}
	var fresh []model.OID
	err = db.Do(func(tx *core.Tx) error {
		for i := 0; i < 8; i++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(1000 + i)), "s": model.String(string(big))})
			if err != nil {
				return err
			}
			fresh = append(fresh, oid)
		}
		return nil
	})
	if err != nil {
		db.Close()
		t.Fatalf("schedule {%v}: insert exercise after recovery: %v", sched, err)
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		t.Fatalf("schedule {%v}: checkpoint after insert exercise: %v", sched, err)
	}
	checkRows("after insert exercise")

	// The reclaimer sweeps whatever chain the crash leaked (fresh pages
	// before the checkpoint, old pages after) without touching live data.
	if _, err := db.ReclaimLeaked(); err != nil {
		db.Close()
		t.Fatalf("schedule {%v}: reclaim after recovery: %v", sched, err)
	}
	acct, err := db.Store.AccountPages()
	if err != nil {
		db.Close()
		t.Fatalf("schedule {%v}: account after reclaim: %v", sched, err)
	}
	if acct.Leaked != 0 {
		db.Close()
		t.Fatalf("schedule {%v}: %d pages still leaked after reclaim: %v", sched, acct.Leaked, acct.LeakedPages)
	}
	checkRows("after reclaim")
	for _, oid := range fresh {
		if _, err := db.FetchObject(oid); err != nil {
			db.Close()
			t.Fatalf("schedule {%v}: exercise row %s lost after reclaim: %v", sched, oid, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("schedule {%v}: close after verification: %v", sched, err)
	}
	runtime.GC()
}

// ckptWorkload is the deterministic workload behind
// TestCrashCheckpointRootSwap: committed data across two classes and an
// index, then two explicit checkpoints — each of which rewrites all four
// system blobs (catalog, segment table, index table, statistics) and
// publishes them with the single atomic root swap (DiskManager.SetRoots).
func ckptWorkload(dir string, inj *fault.Injector) (rowsA, rowsB []model.OID, err error) {
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages: 64,
		WrapDisk:  fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:   fault.WrapWAL(inj),
	})
	if err != nil {
		return nil, nil, err
	}
	inj.SetPhase("setup")
	attrs := []schema.AttrSpec{
		{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)},
		{Name: "s", Domain: schema.ClassString, Default: model.String("")},
	}
	clA, err := db.DefineClass("A", nil, attrs...)
	if err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex("a_n", clA.ID, []string{"n"}, false); err != nil {
		return nil, nil, err
	}
	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	insert := func(cl model.ClassID, base int) ([]model.OID, error) {
		var out []model.OID
		err := db.Do(func(tx *core.Tx) error {
			for i := 0; i < 10; i++ {
				s := fmt.Sprintf("row%d", base+i)
				if i%4 == 0 {
					s += string(big)
				}
				oid, err := tx.InsertClass(cl, map[string]model.Value{
					"n": model.Int(int64(base + i)), "s": model.String(s)})
				if err != nil {
					return err
				}
				out = append(out, oid)
			}
			return nil
		})
		return out, err
	}
	if rowsA, err = insert(clA.ID, 0); err != nil {
		return nil, nil, err
	}
	inj.SetPhase("rootswap1")
	if err := db.Checkpoint(); err != nil {
		return rowsA, nil, err
	}
	inj.SetPhase("grow")
	clB, err := db.DefineClass("B", nil, attrs...)
	if err != nil {
		return rowsA, nil, err
	}
	if rowsB, err = insert(clB.ID, 100); err != nil {
		return rowsA, nil, err
	}
	inj.SetPhase("rootswap2")
	if err := db.Checkpoint(); err != nil {
		return rowsA, rowsB, err
	}
	inj.SetPhase("close")
	return rowsA, rowsB, db.Close()
}

// TestCrashCheckpointRootSwap crashes at every I/O op inside the two
// checkpoint windows and verifies the metadata swap is all-or-nothing:
// after recovery the four system roots name a mutually consistent state —
// every committed row readable with its index intact, no segment owned by
// a class the catalog does not know. Before SetRoots collapsed the
// checkpoint into one metadata write, a crash between the per-root writes
// could publish a new catalog against an old segment table (or vice
// versa); this is the census-enumerated net over that window.
func TestCrashCheckpointRootSwap(t *testing.T) {
	cdir := t.TempDir()
	cinj := fault.NewCensus(matrixSeed)
	rowsA, rowsB, err := ckptWorkload(cdir, cinj)
	if err != nil {
		t.Fatalf("census checkpoint workload failed: %v", err)
	}
	var window []fault.Point
	for _, p := range cinj.Census() {
		if p.Phase == "rootswap1" || p.Phase == "rootswap2" {
			window = append(window, p)
		}
	}
	if len(window) < 5 {
		t.Fatalf("checkpoint windows expose only %d I/O ops; the test is vacuous", len(window))
	}
	step := 1
	if len(window) > 60 {
		step = len(window) / 60
	}
	for i := 0; i < len(window); i += step {
		p := window[i]
		sched := fault.Schedule{
			Seed:    matrixSeed*1_000_000 + int64(p.Index),
			CrashAt: p.Index,
			Style:   fault.Style(i % 2), // clean, torn
		}
		name := fmt.Sprintf("op%04d_%s_%s_%s", p.Index, p.Op, p.Phase, sched.Style)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(sched)
			_, _, err := ckptWorkload(dir, inj)
			if err == nil && !inj.Crashed() {
				t.Fatalf("schedule {%v}: crash never fired", sched)
			}
			verifyRootSwapCrash(t, dir, sched, rowsA, rowsB)
		})
	}
}

func verifyRootSwapCrash(t *testing.T, dir string, sched fault.Schedule, rowsA, rowsB []model.OID) {
	t.Helper()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatalf("recovery reopen after {%v}: %v", sched, err)
	}
	defer db.Close()
	checkClass := func(name string, rows []model.OID, base int) {
		for i, oid := range rows {
			obj, err := db.FetchObject(oid)
			if err != nil {
				t.Fatalf("schedule {%v}: class %s row %s lost across checkpoint crash: %v", sched, name, oid, err)
			}
			v, _ := db.AttrValue(obj, "n")
			if got, _ := v.AsInt(); got != int64(base+i) {
				t.Fatalf("schedule {%v}: class %s row %s: n=%d want %d", sched, name, oid, got, base+i)
			}
		}
	}
	// Class A and its index predate both checkpoint windows: always intact.
	checkClass("A", rowsA, 0)
	idx, err := db.Indexes.Get("a_n")
	if err != nil {
		t.Fatalf("schedule {%v}: index a_n missing after recovery: %v", sched, err)
	}
	for i, oid := range rowsA {
		found := false
		for _, hit := range idx.Lookup(model.Int(int64(i)), nil) {
			if hit == oid {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("schedule {%v}: index a_n lost entry %d -> %s", sched, i, oid)
		}
	}
	// Class B exists only in runs that got past its DefineClass; when the
	// catalog names it, every committed row must be readable.
	if _, err := db.Catalog.ClassByName("B"); err == nil {
		checkClass("B", rowsB, 100)
	}
	// Cross-root consistency: every segment the durable segment table names
	// belongs to a class the durable catalog knows. A torn multi-root swap
	// is exactly what would break this.
	for _, classID := range db.Store.Classes() {
		if _, err := db.Catalog.Class(classID); err != nil {
			t.Fatalf("schedule {%v}: segment for class %d has no catalog entry (roots swapped non-atomically)", sched, classID)
		}
	}
	runtime.GC()
}
