// Benchmark harness: one testing.B family per experiment in DESIGN.md §7
// and EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem .
//
// The cmd/kimbench binary runs the same experiments at larger scale and
// prints the tables recorded in EXPERIMENTS.md.
package oodb_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"oodb"
	"oodb/internal/bench"
	"oodb/internal/model"
	"oodb/internal/relational"
)

// openBenchDB opens a throwaway database tuned for benchmarking (NoSync:
// we measure engine paths, not the disk's fsync latency).
func openBenchDB(b *testing.B) *oodb.DB {
	b.Helper()
	dir, err := os.MkdirTemp("", "kimdb-bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := oodb.Open(dir, oodb.Options{NoSync: true, PoolPages: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func mustRows(b *testing.B, db *oodb.DB, q string) int {
	b.Helper()
	res, err := db.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	return len(res.Rows)
}

// --- E1: class-hierarchy index vs per-class indexes vs scan ------------

func e1DB(b *testing.B, index string) *oodb.DB {
	db := openBenchDB(b)
	h, err := bench.BuildHierarchy(db, 4, 3, 200, 1000, 1) // 21 classes, 4200 objects
	if err != nil {
		b.Fatal(err)
	}
	switch index {
	case "ch":
		err = h.IndexCH(db)
	case "sc":
		err = h.IndexPerClass(db)
	}
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchE1(b *testing.B, index, query string) {
	db := e1DB(b, index)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := mustRows(b, db, fmt.Sprintf(query, i%1000)); n < 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE1_HierarchyEq_CHIndex(b *testing.B) {
	benchE1(b, "ch", `SELECT * FROM H0 WHERE val = %d`)
}

func BenchmarkE1_HierarchyEq_SCIndexes(b *testing.B) {
	benchE1(b, "sc", `SELECT * FROM H0 WHERE val = %d`)
}

func BenchmarkE1_HierarchyEq_Scan(b *testing.B) {
	benchE1(b, "none", `SELECT * FROM H0 WHERE val = %d`)
}

func BenchmarkE1_SingleClassEq_CHIndex(b *testing.B) {
	benchE1(b, "ch", `SELECT * FROM ONLY H3 WHERE val = %d`)
}

func BenchmarkE1_SingleClassEq_SCIndexes(b *testing.B) {
	benchE1(b, "sc", `SELECT * FROM ONLY H3 WHERE val = %d`)
}

// --- E2: nested-attribute index vs forward traversal -------------------

func e2DB(b *testing.B, indexed bool) *oodb.DB {
	db := openBenchDB(b)
	if _, err := bench.BuildVehicleWorld(db, 200, 4000, 50, 2); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := db.CreateIndex("vloc", "Vehicle", []string{"manufacturer", "location"}, true); err != nil {
			b.Fatal(err)
		}
		if err := db.CreateIndex("vdivcity", "Vehicle", []string{"manufacturer", "division", "city"}, true); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func benchE2(b *testing.B, indexed bool, query string) {
	db := e2DB(b, indexed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRows(b, db, fmt.Sprintf(query, i%50))
	}
}

func BenchmarkE2_Path2_NestedIndex(b *testing.B) {
	benchE2(b, true, `SELECT * FROM Vehicle WHERE manufacturer.location = 'City%d'`)
}

func BenchmarkE2_Path2_Traversal(b *testing.B) {
	benchE2(b, false, `SELECT * FROM Vehicle WHERE manufacturer.location = 'City%d'`)
}

func BenchmarkE2_Path3_NestedIndex(b *testing.B) {
	benchE2(b, true, `SELECT * FROM Vehicle WHERE manufacturer.division.city = 'City%d'`)
}

func BenchmarkE2_Path3_Traversal(b *testing.B) {
	benchE2(b, false, `SELECT * FROM Vehicle WHERE manufacturer.division.city = 'City%d'`)
}

// --- E3: navigation vs joins -------------------------------------------

const (
	e3Parts = 5000
	e3Conn  = 3
	e3Depth = 5
)

func BenchmarkE3_Traverse_Swizzled(b *testing.B) {
	db := openBenchDB(b)
	p, err := bench.BuildParts(db, e3Parts, e3Conn, 3)
	if err != nil {
		b.Fatal(err)
	}
	ws := db.NewWorkspace()
	// Warm lap materializes and swizzles; measured laps are pointer hops.
	if _, err := bench.Traverse(ws, p.OIDs[0], e3Depth); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Traverse(ws, p.OIDs[i%100], e3Depth); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_Traverse_FetchPerObject(b *testing.B) {
	db := openBenchDB(b)
	p, err := bench.BuildParts(db, e3Parts, e3Conn, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TraverseFetch(db, p.OIDs[i%100], e3Depth); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_Traverse_RelationalJoins(b *testing.B) {
	rp, err := bench.BuildRelParts(e3Parts, e3Conn, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.TraverseRel(int64(i%100), e3Depth); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: OO1 lookup / traversal / insert -------------------------------

func e4OODB(b *testing.B) (*oodb.DB, *bench.Parts) {
	db := openBenchDB(b)
	p, err := bench.BuildParts(db, 5000, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("part_pid", "Part", []string{"pid"}, true); err != nil {
		b.Fatal(err)
	}
	return db, p
}

func BenchmarkE4_Lookup_OODB(b *testing.B) {
	db, _ := e4OODB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := mustRows(b, db, fmt.Sprintf(`SELECT x, y FROM Part WHERE pid = %d`, i%5000)); n != 1 {
			b.Fatalf("lookup found %d", n)
		}
	}
}

func BenchmarkE4_Lookup_OODB_IndexAPI(b *testing.B) {
	// Apples-to-apples with the relational SelectEq row: a bare index
	// probe, no query parse/plan/txn.
	db, _ := e4OODB(b)
	idx, err := db.Engine().Indexes.Get("part_pid")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Lookup(oodb.Int(int64(i%5000)), nil); len(got) != 1 {
			b.Fatalf("lookup found %d", len(got))
		}
	}
}

func BenchmarkE4_Lookup_Relational(b *testing.B) {
	rp, err := bench.BuildRelParts(5000, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := rp.Part.SelectEq("id", model.Int(int64(i%5000)))
		if err != nil || len(rows) != 1 {
			b.Fatalf("lookup: %v %v", rows, err)
		}
	}
}

func BenchmarkE4_Traversal_OODB(b *testing.B) {
	db, p := e4OODB(b)
	ws := db.NewWorkspace()
	bench.Traverse(ws, p.OIDs[0], 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Traverse(ws, p.OIDs[i%50], 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_Traversal_Relational(b *testing.B) {
	rp, err := bench.BuildRelParts(5000, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.TraverseRel(int64(i%50), 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_Insert_OODB(b *testing.B) {
	db, p := e4OODB(b)
	b.ResetTimer()
	i := 0
	for ; i < b.N; i++ {
		err := db.Do(func(tx *oodb.Tx) error {
			oid, err := tx.Insert("Part", oodb.Attrs{
				"pid": oodb.Int(int64(100000 + i)),
				"x":   oodb.Int(int64(i)), "y": oodb.Int(int64(i)),
				"to": oodb.SetOf(oodb.Ref(p.OIDs[i%5000]), oodb.Ref(p.OIDs[(i+7)%5000])),
			})
			_ = oid
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_Insert_Relational(b *testing.B) {
	rp, err := bench.BuildRelParts(5000, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.Part.Insert(
			model.Int(int64(100000+i)), model.Int(int64(i)), model.Int(int64(i)),
			model.String("t"),
		); err != nil {
			b.Fatal(err)
		}
		rp.Conn.Insert(model.Int(int64(100000+i)), model.Int(int64(i%5000)))
		rp.Conn.Insert(model.Int(int64(100000+i)), model.Int(int64((i+7)%5000)))
	}
}

// --- E5: memory-residence cost ladder -----------------------------------

type nativePart struct {
	x    int64
	next *nativePart
}

func BenchmarkE5_NativePointer(b *testing.B) {
	// The floor: a native Go pointer hop.
	ring := make([]nativePart, 100)
	for i := range ring {
		ring[i].x = int64(i)
		ring[i].next = &ring[(i+1)%len(ring)]
	}
	cur := &ring[0]
	var sum int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += cur.x
		cur = cur.next
	}
	_ = sum
}

func e5Workspace(b *testing.B) (*oodb.Workspace, oodb.OID) {
	db := openBenchDB(b)
	if _, err := db.DefineClass("Node", nil,
		oodb.Attr{Name: "x", Domain: "Integer"},
		oodb.Attr{Name: "next", Domain: "Node"},
	); err != nil {
		b.Fatal(err)
	}
	var oids []oodb.OID
	err := db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < 100; i++ {
			oid, err := tx.Insert("Node", oodb.Attrs{"x": oodb.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		for i, oid := range oids {
			if err := tx.Update(oid, oodb.Attrs{"next": oodb.Ref(oids[(i+1)%len(oids)])}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	ws := db.NewWorkspace()
	// Materialize the ring.
	d, _ := ws.Fetch(oids[0])
	for i := 0; i < 100; i++ {
		d, _ = d.Deref("next")
	}
	return ws, oids[0]
}

func BenchmarkE5_WorkspaceDeref(b *testing.B) {
	ws, root := e5Workspace(b)
	d, _ := ws.Fetch(root)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := d.Deref("next")
		if err != nil {
			b.Fatal(err)
		}
		d = next
	}
}

func BenchmarkE5_EngineFetch(b *testing.B) {
	db := openBenchDB(b)
	db.DefineClass("Node", nil, oodb.Attr{Name: "x", Domain: "Integer"})
	var oid oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		var err error
		oid, err = tx.Insert("Node", oodb.Attrs{"x": oodb.Int(1)})
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Fetch(oid); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: schema evolution cost -------------------------------------------

func BenchmarkE6_AddAttributeLazy(b *testing.B) {
	// Adding an attribute high in a populated hierarchy is O(catalog), not
	// O(instances): the lazy default-fill contract.
	db := openBenchDB(b)
	if _, err := bench.BuildHierarchy(db, 4, 3, 100, 100, 6); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("extra%d", i)
		if err := db.AddAttribute("H0", oodb.Attr{
			Name: name, Domain: "Integer", Default: oodb.Int(0)}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := db.DropAttribute("H0", name); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkE6_ReadLazyDefault(b *testing.B) {
	db := openBenchDB(b)
	if _, err := bench.BuildHierarchy(db, 2, 2, 200, 100, 6); err != nil {
		b.Fatal(err)
	}
	if err := db.AddAttribute("H0", oodb.Attr{
		Name: "extra", Domain: "Integer", Default: oodb.Int(42)}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := mustRows(b, db, `SELECT extra FROM H0 LIMIT 10`); n != 10 {
			b.Fatal("lazy read failed")
		}
	}
}

// --- E7: lock granularity throughput ------------------------------------

func benchE7(b *testing.B, workers int, coarse bool) {
	db := openBenchDB(b)
	db.DefineClass("Counter", nil, oodb.Attr{Name: "n", Domain: "Integer"})
	var oids []oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < workers; i++ {
			oid, err := tx.Insert("Counter", oodb.Attrs{"n": oodb.Int(0)})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	cls, err := db.ClassByName("Counter")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				db.Do(func(tx *oodb.Tx) error {
					if coarse {
						// Class-level X lock: every writer serializes.
						if err := db.Engine().Locks.LockClassWrite(tx.ID(), cls.ID); err != nil {
							return err
						}
					}
					return tx.Update(oids[w], oodb.Attrs{"n": oodb.Int(int64(i))})
				})
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkE7_InstanceLocks_8Writers(b *testing.B) { benchE7(b, 8, false) }
func BenchmarkE7_ClassXLock_8Writers(b *testing.B)    { benchE7(b, 8, true) }

// --- E14: read-path concurrency (sharded pool + parallel scope scans) ----

// e14DB builds a moderately deep hierarchy with no indexes, so every query
// is a multi-class heap scan — the workload that serializes on the storage
// layer's locks. Run with -cpu 1,4,8 to see the scaling curve.
func e14DB(b *testing.B) *oodb.DB {
	db := openBenchDB(b)
	if _, err := bench.BuildHierarchy(db, 4, 3, 200, 1000, 1); err != nil { // 21 classes, 4200 objects
		b.Fatal(err)
	}
	// Warm the buffer pool so the benchmark measures lock contention on
	// cached pages, not disk I/O.
	mustRows(b, db, `SELECT * FROM H0 WHERE val < 0`)
	return db
}

func BenchmarkE14_HierarchyScan_Concurrent(b *testing.B) {
	db := e14DB(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val < %d`, i%1000))
			i++
		}
	})
}

func BenchmarkE14_HierarchyScan_SingleClient(b *testing.B) {
	// One client, many cores: per-query latency. The per-class fan-out is
	// the only parallelism available here.
	db := e14DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val < %d`, i%1000))
	}
}

func BenchmarkE14_HierarchyScan_SingleClientSerialExec(b *testing.B) {
	db := e14DB(b)
	db.QueryEngine().SerialScan = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val < %d`, i%1000))
	}
}

func BenchmarkE14_HierarchyScan_SerialExec(b *testing.B) {
	// Ablation: same workload with the per-class fan-out disabled, isolating
	// the executor's contribution from the storage-layer lock fixes.
	db := e14DB(b)
	db.QueryEngine().SerialScan = true
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val < %d`, i%1000))
			i++
		}
	})
}

// --- E8: optimizer ablation ----------------------------------------------

func BenchmarkE8_Optimized(b *testing.B) {
	db := e1DB(b, "ch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
	}
}

func BenchmarkE8_ForcedScan(b *testing.B) {
	// Same database and query, optimizer disabled via the engine-level
	// switch (exposed in internal/query; here we simply define no index).
	db := e1DB(b, "none")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRows(b, db, fmt.Sprintf(`SELECT * FROM H0 WHERE val = %d`, i%1000))
	}
}

// --- E9: recovery --------------------------------------------------------

func BenchmarkE9_RecoveryReplay(b *testing.B) {
	// Build a database with a WAL tail of ~2000 committed ops and measure
	// reopen (analysis + redo) time. The directory is copied per iteration
	// so each Open replays the same log.
	src, err := os.MkdirTemp("", "kimdb-e9")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(src)
	db, err := oodb.Open(src, oodb.Options{NoSync: true, CheckpointBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	db.DefineClass("P", nil, oodb.Attr{Name: "n", Domain: "Integer"})
	for i := 0; i < 20; i++ {
		db.Do(func(tx *oodb.Tx) error {
			for j := 0; j < 100; j++ {
				if _, err := tx.Insert("P", oodb.Attrs{"n": oodb.Int(int64(j))}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	// Simulate the crash: flush the WAL but do not checkpoint or close.
	db.Engine().Log.Sync()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := copyDir(b, src)
		b.StartTimer()
		db2, err := oodb.Open(dir, oodb.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db2.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

func copyDir(b *testing.B, src string) string {
	b.Helper()
	dst, err := os.MkdirTemp("", "kimdb-e9-copy")
	if err != nil {
		b.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dst
}

// --- E10: Wisconsin-style relational operations --------------------------

func e10Relation(b *testing.B, indexed bool) *relational.Relation {
	rdb := relational.NewDB()
	rel, err := rdb.Create("wisc", "unique1", "unique2", "ten", "hundred", "str")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		rel.Insert(
			model.Int(int64(i)), model.Int(int64((i*7)%10000)),
			model.Int(int64(i%10)), model.Int(int64(i%100)),
			model.String(fmt.Sprintf("w%06d", i)),
		)
	}
	if indexed {
		rel.CreateIndex("unique1")
	}
	return rel
}

func BenchmarkE10_Selection1Pct_Indexed(b *testing.B) {
	rel := e10Relation(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64((i * 97) % 9900)
		rows, err := rel.SelectRange("unique1", model.Int(lo), model.Int(lo+99), true)
		if err != nil || len(rows) != 100 {
			b.Fatalf("selection: %d rows, %v", len(rows), err)
		}
	}
}

func BenchmarkE10_Selection1Pct_Scan(b *testing.B) {
	rel := e10Relation(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64((i * 97) % 9900)
		rows, err := rel.SelectRange("unique1", model.Int(lo), model.Int(lo+99), true)
		if err != nil || len(rows) != 100 {
			b.Fatalf("selection: %d rows, %v", len(rows), err)
		}
	}
}

func BenchmarkE10_HashJoin(b *testing.B) {
	rdb := relational.NewDB()
	l, _ := rdb.Create("l", "k", "pad")
	r, _ := rdb.Create("r", "k", "pad")
	for i := 0; i < 5000; i++ {
		l.Insert(model.Int(int64(i)), model.Int(0))
		r.Insert(model.Int(int64(i%1000)), model.Int(0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := relational.HashJoin(l, r, "k", "k")
		if err != nil || len(rows) != 5000 {
			b.Fatalf("join: %d rows, %v", len(rows), err)
		}
	}
}

// --- E11: composite clustering -------------------------------------------

func BenchmarkE11_ComponentFetch(b *testing.B) {
	// Scattered vs reclustered composite: measured in cmd/kimbench with a
	// cold buffer pool; here we measure the warm traversal as a regression
	// guard.
	db := openBenchDB(b)
	db.DefineClass("Asm", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "parts", Domain: "Asm", SetValued: true},
	)
	cm, err := db.Composites()
	if err != nil {
		b.Fatal(err)
	}
	if err := cm.DeclareComposite(mustClassID(b, db, "Asm"), "parts", true); err != nil {
		b.Fatal(err)
	}
	var root oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		var err error
		root, err = tx.Insert("Asm", oodb.Attrs{"name": oodb.String("root")})
		return err
	})
	db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < 50; i++ {
			child, err := tx.Insert("Asm", oodb.Attrs{"name": oodb.String(fmt.Sprintf("c%d", i))})
			if err != nil {
				return err
			}
			if err := cm.Attach(tx, root, "parts", child); err != nil {
				return err
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps, err := cm.Components(root)
		if err != nil || len(comps) != 50 {
			b.Fatalf("components: %d, %v", len(comps), err)
		}
	}
}

func mustClassID(b *testing.B, db *oodb.DB, name string) oodb.ClassID {
	b.Helper()
	cl, err := db.ClassByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return cl.ID
}

// --- E12: versions --------------------------------------------------------

func BenchmarkE12_Derive(b *testing.B) {
	db := openBenchDB(b)
	cl, err := db.DefineClass("Design", nil, oodb.Attr{Name: "name", Domain: "String"})
	if err != nil {
		b.Fatal(err)
	}
	vm, err := db.Versions()
	if err != nil {
		b.Fatal(err)
	}
	vm.EnableVersioning(cl.ID)
	var cur oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		_, cur, err = vm.CreateVersioned(tx, cl.ID, oodb.Attrs{"name": oodb.String("x")})
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Do(func(tx *oodb.Tx) error {
			next, err := vm.Derive(tx, cur)
			if err != nil {
				return err
			}
			cur = next
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_NotifyFanout(b *testing.B) {
	db := openBenchDB(b)
	cl, _ := db.DefineClass("Design", nil, oodb.Attr{Name: "name", Domain: "String"})
	vm, _ := db.Versions()
	vm.EnableVersioning(cl.ID)
	var g, v oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		var err error
		g, v, err = vm.CreateVersioned(tx, cl.ID, oodb.Attrs{"name": oodb.String("x")})
		return err
	})
	for i := 0; i < 100; i++ {
		vm.RegisterDependent(g, oodb.OID(model.MakeOID(999, uint64(i+1))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Do(func(tx *oodb.Tx) error {
			next, err := vm.Derive(tx, v)
			v = next
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		vm.ClearStale()
	}
}
