// CAD example: the workload that motivated object-oriented databases
// (Kim §2.2/§3.3) — a VLSI design environment with composite design
// objects, versions, long checkout/checkin transactions and fast
// in-memory navigation of the design graph.
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdb-cad")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Design objects: a Module contains Cells (composite, exclusive);
	// cells reference a shared standard-cell library entry.
	must(defineSchema(db))

	cm, err := db.Composites()
	must(err)
	mod, _ := db.ClassByName("Module")
	must(cm.DeclareComposite(mod.ID, "cells", true))

	vm, err := db.Versions()
	must(err)
	must(vm.EnableVersioning(mod.ID))

	// Build v1 of the ALU as a composite design object.
	var generic, v1, lib oodb.OID
	must(db.Do(func(tx *oodb.Tx) error {
		var err error
		lib, err = tx.Insert("LibCell", oodb.Attrs{
			"name": oodb.String("NAND2"), "delayPs": oodb.Int(14)})
		if err != nil {
			return err
		}
		generic, v1, err = vm.CreateVersioned(tx, mod.ID, oodb.Attrs{
			"name": oodb.String("alu"), "area": oodb.Int(100)})
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			cell, err := tx.Insert("Cell", oodb.Attrs{
				"name": oodb.String(fmt.Sprintf("c%d", i)),
				"kind": oodb.Ref(lib),
				"x":    oodb.Int(int64(i * 10)), "y": oodb.Int(0),
			})
			if err != nil {
				return err
			}
			if err := cm.Attach(tx, v1, "cells", cell); err != nil {
				return err
			}
		}
		return nil
	}))
	comps, err := cm.Components(v1)
	must(err)
	fmt.Printf("alu v1: composite object with %d components\n", len(comps))

	// Alice checks the module out for a long edit session; Bob is locked
	// out cooperatively in the meantime.
	co, err := db.Checkouts()
	must(err)
	desc, err := co.Checkout("alice", v1)
	must(err)
	if _, err := co.Checkout("bob", v1); err != nil {
		fmt.Println("bob's checkout refused:", err)
	}
	must(desc.Set("area", oodb.Int(96))) // private edit
	must(co.Checkin("alice", v1))
	fmt.Println("alice checked in her area optimization")

	// Derive v2 (v1 is auto-promoted to working), change it, release it.
	var v2 oodb.OID
	must(db.Do(func(tx *oodb.Tx) error {
		var err error
		v2, err = vm.Derive(tx, v1)
		if err != nil {
			return err
		}
		if err := vm.UpdateVersion(tx, v2, oodb.Attrs{"area": oodb.Int(88)}); err != nil {
			return err
		}
		if _, err := vm.Promote(tx, v2); err != nil { // -> working
			return err
		}
		_, err = vm.Promote(tx, v2) // -> released
		return err
	}))
	st, _ := vm.StateOf(v2)
	fmt.Printf("derived v2 (state %v); dynamic binding resolves the generic to ", st)
	def, err := vm.Resolve(generic)
	must(err)
	obj, _ := db.Fetch(def)
	area, _ := db.Get(obj, "area")
	fmt.Printf("the latest version (area %v)\n", area)

	// Change notification: a floorplan depends on the ALU; deriving v3
	// flags it stale.
	floorplan := oodb.OID(0)
	must(db.Do(func(tx *oodb.Tx) error {
		var err error
		floorplan, err = tx.Insert("Cell", oodb.Attrs{"name": oodb.String("floorplan")})
		return err
	}))
	vm.RegisterDependent(generic, floorplan)
	must(db.Do(func(tx *oodb.Tx) error {
		_, err := vm.Derive(tx, v2)
		return err
	}))
	fmt.Printf("after deriving v3, stale dependents: %v\n", vm.StaleDependents())

	// Interactive navigation: load the design into a workspace and walk
	// cells -> library entries through swizzled pointers.
	ws := db.NewWorkspace()
	root, err := ws.Fetch(v1)
	must(err)
	cells, err := root.DerefSet("cells")
	must(err)
	total := int64(0)
	for _, c := range cells {
		kind, err := c.Deref("kind")
		must(err)
		d, _ := kind.Get("delayPs")
		ps, _ := d.AsInt()
		total += ps
	}
	fmt.Printf("navigated %d cells in memory; total path delay %dps (db fetches: %d)\n",
		len(cells), total, wsFetches(ws))
}

func defineSchema(db *oodb.DB) error {
	if _, err := db.DefineClass("LibCell", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "delayPs", Domain: "Integer"},
	); err != nil {
		return err
	}
	if _, err := db.DefineClass("Cell", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "kind", Domain: "LibCell"},
		oodb.Attr{Name: "x", Domain: "Integer"},
		oodb.Attr{Name: "y", Domain: "Integer"},
	); err != nil {
		return err
	}
	_, err := db.DefineClass("Module", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "area", Domain: "Integer"},
		oodb.Attr{Name: "cells", Domain: "Cell", SetValued: true},
	)
	return err
}

func wsFetches(ws *oodb.Workspace) uint64 { return ws.Fetches }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
