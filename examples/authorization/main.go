// Authorization example (Kim §3.2, §5.4; Rabitti-Bertino-Kim): the role
// lattice, implicit authorization along the granularity lattice, explicit
// negatives at attribute granularity, and enforcement through role-bound
// sessions — plus content-based authorization via a view.
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
	"oodb/internal/authz"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdb-authz")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema and data: employees with salaries; some records classified.
	if _, err := db.DefineClass("Employee", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "salary", Domain: "Integer"},
		oodb.Attr{Name: "classified", Domain: "Boolean"},
	); err != nil {
		log.Fatal(err)
	}
	var alice, mole oodb.OID
	must(db.Do(func(tx *oodb.Tx) error {
		alice, _ = tx.Insert("Employee", oodb.Attrs{
			"name": oodb.String("alice"), "salary": oodb.Int(200),
			"classified": oodb.Bool(false)})
		mole, _ = tx.Insert("Employee", oodb.Attrs{
			"name": oodb.String("mole"), "salary": oodb.Int(999),
			"classified": oodb.Bool(true)})
		return nil
	}))

	// Role lattice: director > manager > staff.
	cl, _ := db.ClassByName("Employee")
	az := db.Authorizer()
	for _, r := range []string{"director", "manager", "staff"} {
		az.AddRole(r)
	}
	must(az.AddRoleEdge("director", "manager"))
	must(az.AddRoleEdge("manager", "staff"))

	// Grants. Note the RBK subtlety: a stronger role inherits ALL of its
	// subordinates' authorizations — including negatives — so overriding
	// an inherited negative takes a STRONG positive at the higher role.
	must(az.Grant(authz.Grant{Role: "staff", Type: authz.Read, Object: authz.ClassDeep(cl.ID)}))
	must(az.Grant(authz.Grant{Role: "staff", Type: authz.Read,
		Object: authz.Attribute(cl.ID, "salary"), Negative: true})) // salaries hidden
	must(az.Grant(authz.Grant{Role: "staff", Type: authz.Read,
		Object: authz.Instance(mole), Negative: true})) // classified record hidden
	must(az.Grant(authz.Grant{Role: "manager", Type: authz.Write, Object: authz.ClassDeep(cl.ID)}))
	must(az.Grant(authz.Grant{Role: "manager", Type: authz.Write,
		Object: authz.Attribute(cl.ID, "salary"), Strong: true})) // managers handle pay
	must(az.Grant(authz.Grant{Role: "director", Type: authz.Read,
		Object: authz.Instance(mole), Strong: true})) // directors see everything

	// Sessions enforce the lattice.
	for _, role := range []string{"staff", "manager", "director"} {
		sess := db.Session(az, role)
		res, err := sess.Query(`SELECT name FROM Employee ORDER BY name`)
		must(err)
		fmt.Printf("%-8s sees %d employee(s):", role, len(res.Rows))
		for _, row := range res.Rows {
			fmt.Printf(" %v", row.Values[0])
		}
		obj, err := sess.Fetch(alice)
		if err == nil {
			if _, serr := sess.Get(obj, "salary"); serr != nil {
				fmt.Print("  [salary hidden]")
			} else {
				fmt.Print("  [salary visible]")
			}
		}
		fmt.Println()
	}

	// Writes: staff refused, manager allowed (inheriting staff's read).
	staff := db.Session(az, "staff")
	if err := staff.Update(alice, oodb.Attrs{"salary": oodb.Int(0)}); err != nil {
		fmt.Println("staff raise refused:", err)
	}
	manager := db.Session(az, "manager")
	must(manager.Update(alice, oodb.Attrs{"salary": oodb.Int(210)}))
	fmt.Println("manager adjusted alice's salary")

	// Content-based authorization via a view: the audit role sees exactly
	// the unclassified partition, whatever it contains over time.
	views, err := db.Views()
	must(err)
	must(views.Define("Unclassified", `SELECT * FROM Employee WHERE classified = false`))
	tx := db.Begin()
	visible, err := views.Visible(tx, "Unclassified", alice)
	must(err)
	hidden, err := views.Visible(tx, "Unclassified", mole)
	must(err)
	tx.Commit()
	fmt.Printf("view-based audit: alice visible=%v, mole visible=%v\n", visible, hidden)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
