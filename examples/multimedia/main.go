// Multimedia example (Kim §2.2): "multimedia systems which deal with
// images, voice, and textual documents" need long unstructured data,
// user-visible set attributes, and content organization — here a compound
// document store with multi-page payloads (spilled to overflow chains by
// the storage engine), tags, and views over the catalog.
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdb-multimedia")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Document hierarchy: Document <- {Image, Audio}. The payload is a
	// Bytes attribute; anything larger than a 4 KiB page spills to
	// overflow chains transparently.
	must2(db.DefineClass("Document", nil,
		oodb.Attr{Name: "title", Domain: "String"},
		oodb.Attr{Name: "tags", Domain: "String", SetValued: true},
		oodb.Attr{Name: "payload", Domain: "Bytes"},
	))
	must2(db.DefineClass("Image", []string{"Document"},
		oodb.Attr{Name: "width", Domain: "Integer"},
		oodb.Attr{Name: "height", Domain: "Integer"},
	))
	must2(db.DefineClass("Audio", []string{"Document"},
		oodb.Attr{Name: "seconds", Domain: "Integer"},
	))

	// Store three documents; the image payload is 64 KiB — sixteen pages
	// of overflow chain behind one object.
	bigPixels := make([]byte, 64<<10)
	for i := range bigPixels {
		bigPixels[i] = byte(i * 31)
	}
	var img oodb.OID
	must(db.Do(func(tx *oodb.Tx) error {
		var err error
		img, err = tx.Insert("Image", oodb.Attrs{
			"title":   oodb.String("die-photo"),
			"tags":    oodb.SetOf(oodb.String("vlsi"), oodb.String("scan")),
			"payload": oodb.BytesValue(bigPixels),
			"width":   oodb.Int(1024), "height": oodb.Int(64),
		})
		if err != nil {
			return err
		}
		if _, err := tx.Insert("Audio", oodb.Attrs{
			"title":   oodb.String("design-review"),
			"tags":    oodb.SetOf(oodb.String("meeting"), oodb.String("vlsi")),
			"payload": oodb.BytesValue(make([]byte, 8<<10)),
			"seconds": oodb.Int(1800),
		}); err != nil {
			return err
		}
		_, err = tx.Insert("Document", oodb.Attrs{
			"title":   oodb.String("spec.txt"),
			"tags":    oodb.SetOf(oodb.String("text")),
			"payload": oodb.BytesValue([]byte("The ALU shall ...")),
		})
		return err
	}))

	// The big payload round-trips intact.
	obj, err := db.Fetch(img)
	must(err)
	pv, _ := db.Get(obj, "payload")
	data, _ := pv.AsBytes()
	want := byte((50000 * 31) % 256)
	fmt.Printf("stored 64 KiB image; read back %d bytes, byte[50000]=%d (want %d)\n",
		len(data), data[50000], want)

	// Set-membership query across the document hierarchy.
	res, err := db.Query(`SELECT title FROM Document WHERE tags CONTAINS 'vlsi' ORDER BY title`)
	must(err)
	fmt.Print("documents tagged vlsi:")
	for _, row := range res.Rows {
		s, _ := row.Values[0].AsString()
		fmt.Printf(" %s", s)
	}
	fmt.Println()

	// A view as the library's "recordings" catalog.
	views, err := db.Views()
	must(err)
	must(views.Define("LongRecordings", `SELECT title, seconds FROM Audio WHERE seconds > 600`))
	tx := db.Engine().Begin()
	vres, err := views.Run(tx, "LongRecordings")
	tx.Commit()
	must(err)
	for _, row := range vres.Rows {
		title, _ := row.Values[0].AsString()
		secs, _ := row.Values[1].AsInt()
		fmt.Printf("long recording: %s (%d s)\n", title, secs)
	}

	// Long data survives restart (overflow chains are ordinary pages).
	must(db.Close())
	db2, err := oodb.Open(dir, oodb.Options{})
	must(err)
	obj, err = db2.Fetch(img)
	must(err)
	pv, _ = db2.Get(obj, "payload")
	data, _ = pv.AsBytes()
	fmt.Printf("after reopen: payload still %d bytes intact\n", len(data))
	db2.Close()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}
