// Deductive example (Kim §5.4): rules over an object base — a bill of
// materials with recursive reachability, plus a derived "critical part"
// classification, queried both forward (all facts) and backward (goal
// with constants).
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
	"oodb/internal/rules"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdb-deductive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema: parts with a supplier and direct subparts.
	if _, err := db.DefineClass("Supplier", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "singleSource", Domain: "Boolean"},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineClass("BPart", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "supplier", Domain: "Supplier"},
		oodb.Attr{Name: "subparts", Domain: "BPart", SetValued: true},
	); err != nil {
		log.Fatal(err)
	}

	// A small bill of materials:
	//   engine -> {block, piston}; piston -> {ring}; ring from a
	//   single-source supplier.
	names := map[string]oodb.OID{}
	must(db.Do(func(tx *oodb.Tx) error {
		acme, err := tx.Insert("Supplier", oodb.Attrs{
			"name": oodb.String("Acme"), "singleSource": oodb.Bool(false)})
		if err != nil {
			return err
		}
		rare, _ := tx.Insert("Supplier", oodb.Attrs{
			"name": oodb.String("RareMetals"), "singleSource": oodb.Bool(true)})
		for _, p := range []struct {
			name     string
			supplier oodb.OID
		}{
			{"engine", acme}, {"block", acme}, {"piston", acme}, {"ring", rare},
		} {
			oid, err := tx.Insert("BPart", oodb.Attrs{
				"name": oodb.String(p.name), "supplier": oodb.Ref(p.supplier)})
			if err != nil {
				return err
			}
			names[p.name] = oid
		}
		if err := tx.Update(names["engine"], oodb.Attrs{
			"subparts": oodb.SetOf(oodb.Ref(names["block"]), oodb.Ref(names["piston"]))}); err != nil {
			return err
		}
		return tx.Update(names["piston"], oodb.Attrs{
			"subparts": oodb.SetOf(oodb.Ref(names["ring"]))})
	}))

	// Map the object base into predicates.
	eng, edb := db.RuleEngine()
	must(edb.MapClass("part", "BPart"))
	must(edb.MapAttr("subpart", "BPart", "subparts"))
	must(edb.MapAttr("supplier", "BPart", "supplier"))
	must(edb.MapAttr("partName", "BPart", "name"))
	must(edb.MapAttr("singleSource", "Supplier", "singleSource"))

	// contains(X, Y): Y is anywhere beneath X (recursive).
	must(eng.AddRule(rules.Rule{
		Head: rules.A("contains", rules.V("X"), rules.V("Y")),
		Body: []rules.Atom{rules.A("subpart", rules.V("X"), rules.V("Y"))},
	}))
	must(eng.AddRule(rules.Rule{
		Head: rules.A("contains", rules.V("X"), rules.V("Z")),
		Body: []rules.Atom{
			rules.A("contains", rules.V("X"), rules.V("Y")),
			rules.A("subpart", rules.V("Y"), rules.V("Z")),
		},
	}))
	// critical(X): X (transitively) contains a part from a single-source
	// supplier.
	must(eng.AddRule(rules.Rule{
		Head: rules.A("risky", rules.V("P")),
		Body: []rules.Atom{
			rules.A("supplier", rules.V("P"), rules.V("S")),
			rules.A("singleSource", rules.V("S"), rules.C(oodb.Bool(true))),
		},
	}))
	must(eng.AddRule(rules.Rule{
		Head: rules.A("critical", rules.V("X")),
		Body: []rules.Atom{rules.A("risky", rules.V("X"))},
	}))
	must(eng.AddRule(rules.Rule{
		Head: rules.A("critical", rules.V("X")),
		Body: []rules.Atom{
			rules.A("contains", rules.V("X"), rules.V("Y")),
			rules.A("risky", rules.V("Y")),
		},
	}))

	// Forward: compute every contains fact.
	facts, err := eng.Infer("contains")
	must(err)
	fmt.Printf("contains/2 has %d derived facts\n", len(facts))

	// Backward: what does the engine contain?
	sols, err := eng.Query(rules.A("contains",
		rules.C(oodb.Ref(names["engine"])), rules.V("Y")))
	must(err)
	fmt.Print("engine contains:")
	for _, env := range sols {
		fmt.Printf(" %s", partName(db, env["Y"]))
	}
	fmt.Println()

	// Which parts are critical?
	crit, err := eng.Infer("critical")
	must(err)
	fmt.Print("critical parts:")
	for _, f := range crit {
		fmt.Printf(" %s", partName(db, f[0]))
	}
	fmt.Println()

	// Ground query: is the block critical?
	sols, err = eng.Query(rules.A("critical", rules.C(oodb.Ref(names["block"]))))
	must(err)
	fmt.Printf("block critical? %v\n", len(sols) > 0)
}

func partName(db *oodb.DB, v oodb.Value) string {
	oid, ok := v.AsRef()
	if !ok {
		return v.String()
	}
	obj, err := db.Fetch(oid)
	if err != nil {
		return v.String()
	}
	nv, _ := db.Get(obj, "name")
	s, _ := nv.AsString()
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
