// Quickstart: the minimal kimdb session — define a schema with
// inheritance, store objects, query with nested predicates and hierarchy
// scope, and dispatch a message with late binding.
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
)

func main() {
	dir, err := os.MkdirTemp("", "kimdb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open (or create) a database.
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A small schema: Person, and Employee specializing it. Attribute
	// domains are classes — "manager" is a reference to another Employee.
	if _, err := db.DefineClass("Person", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "age", Domain: "Integer"},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineClass("Employee", []string{"Person"},
		oodb.Attr{Name: "salary", Domain: "Integer"},
		oodb.Attr{Name: "manager", Domain: "Employee"},
	); err != nil {
		log.Fatal(err)
	}

	// Insert objects transactionally.
	var alice oodb.OID
	err = db.Do(func(tx *oodb.Tx) error {
		var err error
		alice, err = tx.Insert("Employee", oodb.Attrs{
			"name": oodb.String("Alice"), "age": oodb.Int(47), "salary": oodb.Int(200),
		})
		if err != nil {
			return err
		}
		if _, err := tx.Insert("Employee", oodb.Attrs{
			"name": oodb.String("Bob"), "age": oodb.Int(31), "salary": oodb.Int(120),
			"manager": oodb.Ref(alice),
		}); err != nil {
			return err
		}
		_, err = tx.Insert("Person", oodb.Attrs{
			"name": oodb.String("Carol"), "age": oodb.Int(25),
		})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// A query against Person ranges over Person AND Employee (hierarchy
	// scope); nested predicates traverse references.
	res, err := db.Query(`SELECT name, age FROM Person WHERE age > 20 ORDER BY age`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("everyone over 20 (hierarchy scope):")
	for _, row := range res.Rows {
		fmt.Printf("  %v, age %v\n", row.Values[0], row.Values[1])
	}

	res, err = db.Query(`SELECT name FROM Employee WHERE manager.name = 'Alice'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reports to Alice (nested predicate):")
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row.Values[0])
	}

	// Behavior: a method on Person, overridden by Employee, dispatched
	// with late binding.
	must(db.AddMethod("Person", "greet", func(eng oodb.MethodEngine, recv *oodb.Object, _ []oodb.Value) (oodb.Value, error) {
		return oodb.String("hello"), nil
	}))
	must(db.AddMethod("Employee", "greet", func(eng oodb.MethodEngine, recv *oodb.Object, _ []oodb.Value) (oodb.Value, error) {
		return oodb.String("hello from the office"), nil
	}))
	greeting, err := db.Send(alice, "greet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice says:", greeting)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
