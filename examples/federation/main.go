// Federation example (Kim §5.2): "suppose that an Employee database is
// managed by a relational database system ... and a Company database is
// managed by an object-oriented database system. An object-oriented data
// model may be used as the common data model for presenting the schemas
// of these different databases to the user."
package main

import (
	"fmt"
	"log"
	"os"

	"oodb"
	"oodb/internal/federation"
	"oodb/internal/model"
	"oodb/internal/relational"
)

func main() {
	// --- Member 1: a relational Employee database ----------------------
	rdb := relational.NewDB()
	dept, err := rdb.Create("Department", "id", "name", "city")
	must(err)
	emp, err := rdb.Create("Employee", "id", "name", "dept", "salary")
	must(err)
	dept.Insert(model.String("d1"), model.String("Engineering"), model.String("Austin"))
	dept.Insert(model.String("d2"), model.String("Sales"), model.String("Detroit"))
	emp.Insert(model.String("e1"), model.String("alice"), model.String("d1"), model.Int(120))
	emp.Insert(model.String("e2"), model.String("bob"), model.String("d2"), model.Int(90))
	emp.Insert(model.String("e3"), model.String("carol"), model.String("d1"), model.Int(130))

	hr := federation.NewRelSource(rdb)
	must(hr.Export("Employee"))
	must(hr.Export("Department"))
	// The FK becomes an aggregation edge of the common model.
	must(hr.DeclareFK("Employee", "dept", federation.FK{Relation: "Department", KeyCol: "id"}))

	// --- Member 2: an object-oriented Company database ------------------
	dir, err := os.MkdirTemp("", "kimdb-federation")
	must(err)
	defer os.RemoveAll(dir)
	odb, err := oodb.Open(dir, oodb.Options{})
	must(err)
	defer odb.Close()
	_, err = odb.DefineClass("Company", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "location", Domain: "String"})
	must(err)
	_, err = odb.DefineClass("AutoCompany", []string{"Company"})
	must(err)
	must(odb.Do(func(tx *oodb.Tx) error {
		if _, err := tx.Insert("AutoCompany", oodb.Attrs{
			"name": oodb.String("GM"), "location": oodb.String("Detroit")}); err != nil {
			return err
		}
		_, err := tx.Insert("Company", oodb.Attrs{
			"name": oodb.String("MCC"), "location": oodb.String("Austin")})
		return err
	}))

	// --- One federation, one data model, one query language ------------
	fed := federation.New()
	fed.Register("hr", hr)
	fed.Register("corp", odb.FederationSource())
	fmt.Println("federation members:", fed.Sources())

	// A nested path through the relational member: dept is a foreign key,
	// but the user writes it exactly like an object reference.
	res, err := fed.Query("hr",
		`SELECT name, dept.city FROM Employee WHERE dept.name = 'Engineering' ORDER BY name`)
	must(err)
	fmt.Println("engineers (relational member, FK traversed as aggregation):")
	printRows(res)

	// The same query shape against the object member, with hierarchy
	// scope: GM is an AutoCompany but answers FROM Company.
	res, err = fed.Query("corp",
		`SELECT name, location FROM Company WHERE location = 'Detroit'`)
	must(err)
	fmt.Println("Detroit companies (object member, hierarchy scope):")
	printRows(res)

	// Cross-member application logic under the single model: for every
	// employee in a city, find the companies located there.
	res, err = fed.Query("hr", `SELECT name, dept.city FROM Employee ORDER BY name`)
	must(err)
	for _, row := range res.Rows {
		city := row.Values[1]
		cres, err := fed.Query("corp", fmt.Sprintf(
			`SELECT name FROM Company WHERE location = %s`, city))
		must(err)
		var companies []string
		for _, c := range cres.Rows {
			s, _ := c.Values[0].AsString()
			companies = append(companies, s)
		}
		name, _ := row.Values[0].AsString()
		cs, _ := city.AsString()
		fmt.Printf("%s works in %s; companies there: %v\n", name, cs, companies)
	}
}

func printRows(res *federation.Result) {
	for _, row := range res.Rows {
		fmt.Print("  ")
		for i, v := range row.Values {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
