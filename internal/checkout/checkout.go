// Package checkout implements long-duration transactions via checkout and
// checkin of objects between a shared database and private workspaces —
// the CAx requirement the paper lists in §3.3 ("long-duration
// transactions, checkout and checkin of objects between a shared database
// and private databases").
//
// A designer checks objects out into a named private workspace: the
// checkout is recorded persistently in the shared database (it survives
// restarts — that is what makes the transaction "long"), and the objects
// are copied into a private in-memory workspace where the designer
// iterates without holding short-term locks. Checkin writes the private
// state back in one short transaction and releases the checkout. Other
// designers can read checked-out objects but cannot check them out or
// check in over them (the cooperative write protocol of ORION).
package checkout

import (
	"errors"
	"fmt"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/workspace"
)

// Errors of the checkout layer.
var (
	ErrCheckedOut    = errors.New("checkout: object is checked out by another user")
	ErrNotCheckedOut = errors.New("checkout: object is not checked out by this user")
)

const recordClassName = "CheckoutRecord"

// Manager mediates checkout/checkin against one shared database.
type Manager struct {
	db     *core.DB
	record *schema.Class

	// privates holds each user's private workspace (the "private
	// database" of the paper, realized as a memory-resident workspace).
	privates map[string]*workspace.Workspace
}

// New creates (or re-attaches) the checkout layer. Existing checkout
// records in the shared database remain in force.
func New(db *core.DB) (*Manager, error) {
	m := &Manager{db: db, privates: make(map[string]*workspace.Workspace)}
	cl, err := db.Catalog.ClassByName(recordClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		cl, err = db.DefineClass(recordClassName, nil,
			schema.AttrSpec{Name: "object", Domain: schema.ClassObject},
			schema.AttrSpec{Name: "user", Domain: schema.ClassString},
		)
	}
	if err != nil {
		return nil, err
	}
	m.record = cl
	return m, nil
}

// Workspace returns the user's private workspace, creating it on first
// use.
func (m *Manager) Workspace(user string) *workspace.Workspace {
	ws, ok := m.privates[user]
	if !ok {
		ws = workspace.New(m.db)
		m.privates[user] = ws
	}
	return ws
}

// holder returns who has oid checked out ("" if nobody) and the record's
// OID.
func (m *Manager) holder(oid model.OID) (string, model.OID, error) {
	var user string
	var rec model.OID
	err := m.db.Store.ScanClass(m.record.ID, func(roid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		v, _ := m.db.AttrValue(obj, "object")
		if ref, ok := v.AsRef(); ok && ref == oid {
			uv, _ := m.db.AttrValue(obj, "user")
			user, _ = uv.AsString()
			rec = roid
			return false
		}
		return true
	})
	return user, rec, err
}

// Holder reports who has the object checked out ("" if nobody).
func (m *Manager) Holder(oid model.OID) (string, error) {
	user, _, err := m.holder(oid)
	return user, err
}

// Checkout copies the object into the user's private workspace and
// records the checkout persistently. Checking out an object you already
// hold is a no-op returning the resident descriptor.
func (m *Manager) Checkout(user string, oid model.OID) (*workspace.Descriptor, error) {
	cur, _, err := m.holder(oid)
	if err != nil {
		return nil, err
	}
	switch cur {
	case "":
		err := m.db.Do(func(tx *core.Tx) error {
			// Short lock to serialize competing checkouts.
			if _, err := tx.Fetch(oid); err != nil {
				return err
			}
			_, err := tx.InsertClass(m.record.ID, map[string]model.Value{
				"object": model.Ref(oid),
				"user":   model.String(user),
			})
			return err
		})
		if err != nil {
			return nil, err
		}
	case user:
		// Already ours.
	default:
		return nil, fmt.Errorf("%w: held by %q", ErrCheckedOut, cur)
	}
	return m.Workspace(user).Fetch(oid)
}

// CheckoutComposite checks out an object together with the given
// components (the caller typically supplies composite.Components output).
func (m *Manager) CheckoutComposite(user string, root model.OID, components []model.OID) ([]*workspace.Descriptor, error) {
	all := append([]model.OID{root}, components...)
	out := make([]*workspace.Descriptor, 0, len(all))
	var done []model.OID
	for _, oid := range all {
		d, err := m.Checkout(user, oid)
		if err != nil {
			// Roll back the checkouts made so far.
			for _, u := range done {
				m.Cancel(user, u)
			}
			return nil, err
		}
		done = append(done, oid)
		out = append(out, d)
	}
	return out, nil
}

// Checkin writes the user's private changes to the object back to the
// shared database and releases the checkout.
func (m *Manager) Checkin(user string, oid model.OID) error {
	cur, rec, err := m.holder(oid)
	if err != nil {
		return err
	}
	if cur != user {
		return fmt.Errorf("%w: %s", ErrNotCheckedOut, oid)
	}
	ws := m.Workspace(user)
	// Save flushes every dirty descriptor in the workspace; per-object
	// checkin writes just this object if dirty.
	if ws.Resident(oid) {
		if err := ws.Save(); err != nil {
			return err
		}
		ws.Evict(oid)
	}
	return m.db.Do(func(tx *core.Tx) error {
		return tx.Delete(rec)
	})
}

// Cancel abandons a checkout without writing back.
func (m *Manager) Cancel(user string, oid model.OID) error {
	cur, rec, err := m.holder(oid)
	if err != nil {
		return err
	}
	if cur != user {
		return fmt.Errorf("%w: %s", ErrNotCheckedOut, oid)
	}
	ws := m.Workspace(user)
	ws.Discard() // drop private state (all of it: cancel is abandonment)
	return m.db.Do(func(tx *core.Tx) error {
		return tx.Delete(rec)
	})
}

// GuardUpdate enforces the cooperative protocol for direct shared-database
// writers: an update through this guard fails while someone else holds the
// object checked out.
func (m *Manager) GuardUpdate(tx *core.Tx, user string, oid model.OID, attrs map[string]model.Value) error {
	cur, _, err := m.holder(oid)
	if err != nil {
		return err
	}
	if cur != "" && cur != user {
		return fmt.Errorf("%w: held by %q", ErrCheckedOut, cur)
	}
	return tx.Update(oid, attrs)
}

// CheckedOutBy lists the objects a user currently holds.
func (m *Manager) CheckedOutBy(user string) ([]model.OID, error) {
	var out []model.OID
	err := m.db.Store.ScanClass(m.record.ID, func(_ model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		uv, _ := m.db.AttrValue(obj, "user")
		if u, _ := uv.AsString(); u != user {
			return true
		}
		v, _ := m.db.AttrValue(obj, "object")
		if ref, ok := v.AsRef(); ok {
			out = append(out, ref)
		}
		return true
	})
	return out, err
}
