package checkout

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

type world struct {
	db     *core.DB
	cm     *Manager
	design *schema.Class
	oid    model.OID
}

func newWorld(t *testing.T) *world {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	design, _ := db.DefineClass("Design", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "rev", Domain: schema.ClassInteger})
	cm, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{db: db, cm: cm, design: design}
	db.Do(func(tx *core.Tx) error {
		var err error
		w.oid, err = tx.InsertClass(design.ID, map[string]model.Value{
			"name": model.String("chip"), "rev": model.Int(1)})
		return err
	})
	return w
}

func TestCheckoutEditCheckin(t *testing.T) {
	w := newWorld(t)
	d, err := w.cm.Checkout("alice", w.oid)
	if err != nil {
		t.Fatal(err)
	}
	if holder, _ := w.cm.Holder(w.oid); holder != "alice" {
		t.Fatalf("holder = %q", holder)
	}
	// Long edit session in the private workspace.
	if err := d.Set("rev", model.Int(2)); err != nil {
		t.Fatal(err)
	}
	// Shared database still sees rev 1.
	obj, _ := w.db.FetchObject(w.oid)
	rv, _ := w.db.AttrValue(obj, "rev")
	if n, _ := rv.AsInt(); n != 1 {
		t.Fatal("private edit leaked before checkin")
	}
	if err := w.cm.Checkin("alice", w.oid); err != nil {
		t.Fatal(err)
	}
	obj, _ = w.db.FetchObject(w.oid)
	rv, _ = w.db.AttrValue(obj, "rev")
	if n, _ := rv.AsInt(); n != 2 {
		t.Fatal("checkin did not write back")
	}
	if holder, _ := w.cm.Holder(w.oid); holder != "" {
		t.Fatal("checkout record survived checkin")
	}
}

func TestConflictingCheckoutRejected(t *testing.T) {
	w := newWorld(t)
	if _, err := w.cm.Checkout("alice", w.oid); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cm.Checkout("bob", w.oid); !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("expected ErrCheckedOut, got %v", err)
	}
	// Re-checkout by the holder is fine.
	if _, err := w.cm.Checkout("alice", w.oid); err != nil {
		t.Fatal(err)
	}
}

func TestCheckinRequiresHolder(t *testing.T) {
	w := newWorld(t)
	w.cm.Checkout("alice", w.oid)
	if err := w.cm.Checkin("bob", w.oid); !errors.Is(err, ErrNotCheckedOut) {
		t.Fatalf("expected ErrNotCheckedOut, got %v", err)
	}
}

func TestCancelDiscardsChanges(t *testing.T) {
	w := newWorld(t)
	d, _ := w.cm.Checkout("alice", w.oid)
	d.Set("rev", model.Int(99))
	if err := w.cm.Cancel("alice", w.oid); err != nil {
		t.Fatal(err)
	}
	obj, _ := w.db.FetchObject(w.oid)
	rv, _ := w.db.AttrValue(obj, "rev")
	if n, _ := rv.AsInt(); n != 1 {
		t.Fatal("canceled change reached shared database")
	}
	if holder, _ := w.cm.Holder(w.oid); holder != "" {
		t.Fatal("record survived cancel")
	}
	// Bob can now check out.
	if _, err := w.cm.Checkout("bob", w.oid); err != nil {
		t.Fatal(err)
	}
}

func TestGuardUpdateCooperativeProtocol(t *testing.T) {
	w := newWorld(t)
	w.cm.Checkout("alice", w.oid)
	err := w.db.Do(func(tx *core.Tx) error {
		return w.cm.GuardUpdate(tx, "bob", w.oid, map[string]model.Value{"rev": model.Int(5)})
	})
	if !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("expected ErrCheckedOut, got %v", err)
	}
	// The holder may write directly.
	err = w.db.Do(func(tx *core.Tx) error {
		return w.cm.GuardUpdate(tx, "alice", w.oid, map[string]model.Value{"rev": model.Int(5)})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckoutSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := core.Open(dir, core.Options{})
	design, _ := db.DefineClass("Design", nil,
		schema.AttrSpec{Name: "rev", Domain: schema.ClassInteger})
	cm, _ := New(db)
	var oid model.OID
	db.Do(func(tx *core.Tx) error {
		var err error
		oid, err = tx.InsertClass(design.ID, map[string]model.Value{"rev": model.Int(1)})
		return err
	})
	if _, err := cm.Checkout("alice", oid); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// The long transaction spans the restart.
	db2, _ := core.Open(dir, core.Options{})
	defer db2.Close()
	cm2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	if holder, _ := cm2.Holder(oid); holder != "alice" {
		t.Fatalf("holder after reopen = %q", holder)
	}
	if _, err := cm2.Checkout("bob", oid); !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("expected ErrCheckedOut after reopen, got %v", err)
	}
	// Alice resumes and checks in (workspace state was lost with the
	// process; she re-fetches, edits, checks in).
	d, err := cm2.Checkout("alice", oid)
	if err != nil {
		t.Fatal(err)
	}
	d.Set("rev", model.Int(7))
	if err := cm2.Checkin("alice", oid); err != nil {
		t.Fatal(err)
	}
	obj, _ := db2.FetchObject(oid)
	rv, _ := db2.AttrValue(obj, "rev")
	if n, _ := rv.AsInt(); n != 7 {
		t.Fatal("resumed checkin lost")
	}
}

func TestCheckoutComposite(t *testing.T) {
	w := newWorld(t)
	var c1, c2 model.OID
	w.db.Do(func(tx *core.Tx) error {
		c1, _ = tx.InsertClass(w.design.ID, map[string]model.Value{"rev": model.Int(1)})
		c2, _ = tx.InsertClass(w.design.ID, map[string]model.Value{"rev": model.Int(1)})
		return nil
	})
	descs, err := w.cm.CheckoutComposite("alice", w.oid, []model.OID{c1, c2})
	if err != nil || len(descs) != 3 {
		t.Fatalf("composite checkout = %d, %v", len(descs), err)
	}
	// All three held.
	held, _ := w.cm.CheckedOutBy("alice")
	if len(held) != 3 {
		t.Fatalf("CheckedOutBy = %v", held)
	}
	// A conflicting component checkout rolls the whole group back.
	w.cm.Checkin("alice", w.oid)
	w.cm.Checkin("alice", c1)
	w.cm.Checkin("alice", c2)
	w.cm.Checkout("bob", c2)
	if _, err := w.cm.CheckoutComposite("alice", w.oid, []model.OID{c1, c2}); !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("expected ErrCheckedOut, got %v", err)
	}
	held, _ = w.cm.CheckedOutBy("alice")
	if len(held) != 0 {
		t.Fatalf("partial composite checkout not rolled back: %v", held)
	}
}
