package core

// Regression coverage for the fail-stop commit path (the fsyncgate class of
// bugs): a commit that fails after its effects reached the heap must poison
// the engine — locks retained, every further operation refused — instead of
// releasing locks over state a restart may roll back. Also covers the
// auto-checkpoint error surfacing that used to swallow Checkpoint failures.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"oodb/internal/fault"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/schema"
	"oodb/internal/txn"
	"oodb/internal/wal"
)

// openFaultDB opens a DB with both I/O seams routed through a fresh
// injector and a single integer class "P" defined.
func openFaultDB(t *testing.T, dir string) (*DB, *fault.Injector, *schema.Class) {
	t.Helper()
	inj := fault.NewInjector(fault.Schedule{Seed: 1})
	db, err := Open(dir, Options{
		WrapDisk: fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:  fault.WrapWAL(inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	return db, inj, cl
}

// TestFsyncFailurePoisonsDB is the fsyncgate regression: a failed commit
// fsync must latch the WAL, poison the DB, and refuse all further work
// until a reopen recovers to the durable prefix.
func TestFsyncFailurePoisonsDB(t *testing.T) {
	dir := t.TempDir()
	db, inj, cl := openFaultDB(t, dir)

	// One durably committed object before the fault.
	var keep model.OID
	if err := db.Do(func(tx *Tx) error {
		var err error
		keep, err = tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// The next fsync fails: the commit must error and the engine fail-stop.
	inj.FailAt(fault.OpWALSync, 1)
	tx := db.Begin()
	victim, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit succeeded across a failed fsync")
	}
	if !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("commit error %v does not wrap wal.ErrFailed", err)
	}
	if db.FailStopped() == nil {
		t.Fatal("failed commit did not poison the DB")
	}

	// Every subsequent operation reports the poison, including reads that
	// would otherwise block on the dead transaction's retained locks.
	err = db.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(3)})
		return err
	})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("insert after poison: %v, want ErrPoisoned", err)
	}
	rd := db.Begin()
	if _, err := rd.Fetch(victim); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("fetch after poison: %v, want ErrPoisoned", err)
	}
	if err := rd.Scan(cl.ID, func(*model.Object) bool { return true }); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("scan after poison: %v, want ErrPoisoned", err)
	}
	rd.Abort()
	if err := db.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("checkpoint after poison: %v, want ErrPoisoned", err)
	}
	if err := db.Close(); err == nil {
		t.Fatal("close of a poisoned DB reported success")
	}

	// Reopen without the injector: the pre-fault commit is intact; the
	// failed commit is indeterminate (its record may have reached the file
	// before the refused fsync) but never corrupt — if present, it is
	// complete and correct.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after fail-stop: %v", err)
	}
	defer db2.Close()
	obj, err := db2.FetchObject(keep)
	if err != nil {
		t.Fatalf("durable pre-fault object lost: %v", err)
	}
	if v, _ := db2.AttrValue(obj, "n"); !model.Equal(v, model.Int(1)) {
		t.Fatalf("pre-fault object n = %v, want 1", v)
	}
	if obj, err := db2.FetchObject(victim); err == nil {
		if v, _ := db2.AttrValue(obj, "n"); !model.Equal(v, model.Int(2)) {
			t.Fatalf("recovered victim has n = %v, want 2", v)
		}
	}
	// The recovered engine accepts work again.
	if err := db2.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(4)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCommitFlushFailureRetainsLocks pins the partial-failure half of the
// fix: the failed committer's heap writes stay shielded — no other
// transaction can observe them, because the engine poisons before a single
// lock releases.
func TestCommitFlushFailureRetainsLocks(t *testing.T) {
	dir := t.TempDir()
	db, inj, cl := openFaultDB(t, dir)
	defer db.Close()

	tx := db.Begin()
	oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	// The insert reached the heap; now the commit's log flush fails.
	inj.FailAt(fault.OpWALWrite, 1)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded across a failed log write")
	}
	if _, held := db.Locks.Holding(tx.ID(), txn.InstanceRes(oid)); !held {
		t.Fatal("failed commit released its locks over never-durable heap state")
	}
	// A reader cannot reach the uncommitted bytes: the poison check fires
	// before the lock request would block on the retained X lock.
	rd := db.Begin()
	if _, err := rd.Fetch(oid); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("fetch of uncommitted heap state: %v, want ErrPoisoned", err)
	}
	rd.Abort()
}

// TestAutoCheckpointFailureSurfaced: maybeCheckpoint swallows Checkpoint
// errors by design (the WAL is intact, so durability holds and the commit
// must succeed) but has to surface them — counter plus event-log line —
// instead of discarding them silently.
func TestAutoCheckpointFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.Schedule{Seed: 1})
	db, err := Open(dir, Options{
		CheckpointBytes: 1, // every commit attempts a checkpoint
		WrapDisk:        fault.WrapDisk(inj, dir+"/data.kdb"),
		WrapWAL:         fault.WrapWAL(inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, err := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	prev := obs.SetLogWriter(&buf)
	defer obs.SetLogWriter(prev)
	before := mCkptErrors.Value()

	// The checkpoint's page flush fails; the commit itself must succeed.
	inj.FailAt(fault.OpDiskWrite, 1)
	if err := db.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)})
		return err
	}); err != nil {
		t.Fatalf("commit failed on auto-checkpoint error (durability was intact): %v", err)
	}
	if got := mCkptErrors.Value(); got != before+1 {
		t.Fatalf("core_checkpoint_errors_total = %d, want %d", got, before+1)
	}
	if !strings.Contains(buf.String(), "auto-checkpoint failed") {
		t.Fatalf("no event-log line for the failed checkpoint; log: %q", buf.String())
	}
	// The engine is not poisoned — the WAL still holds the redo — and the
	// next auto-checkpoint (fault disarmed) succeeds.
	if err := db.FailStopped(); err != nil {
		t.Fatalf("auto-checkpoint failure must not fail-stop: %v", err)
	}
	if err := db.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(2)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
}
