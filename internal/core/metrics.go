package core

import (
	"oodb/internal/obs"
)

// Engine-level metrics (obs registry).
var (
	mCkptNs      = obs.RegisterHistogram("core_checkpoint_duration_ns")
	mCkptSkipped = obs.RegisterCounter("core_checkpoint_truncation_skips")

	// Snapshot-transaction traffic: begins/ends pair up (a leak shows as
	// a widening gap), reads count objects resolved through the overlay
	// path. Chain-shape health lives in internal/mvcc's metrics.
	mSnapBegins = obs.RegisterCounter("txn_snapshot_begins_total")
	mSnapEnds   = obs.RegisterCounter("txn_snapshot_ends_total")
	mSnapReads  = obs.RegisterCounter("txn_snapshot_reads_total")
)
