package core

import (
	"oodb/internal/obs"
)

// Engine-level metrics (obs registry).
var (
	mCkptNs      = obs.RegisterHistogram("core_checkpoint_duration_ns")
	mCkptSkipped = obs.RegisterCounter("core_checkpoint_truncation_skips")
	// Failed Checkpoint calls surfaced by maybeCheckpoint (best-effort
	// auto-checkpoints used to discard these silently; now they count here
	// and emit an obs log line).
	mCkptErrors = obs.RegisterCounter("core_checkpoint_errors_total")
	// Fail-stop poisonings: a commit failed after its effects reached the
	// heap, so the engine refused all further work (see DB.poison).
	mFailStop = obs.RegisterCounter("core_failstop_events_total")

	// Crash-recovery replay shape: total redo ops applied, the worker
	// count of the last (possibly parallel) redo pass, and end-to-end
	// replay latency.
	mReplayOps     = obs.RegisterCounter("core_replay_redo_ops_total")
	mReplayWorkers = obs.RegisterGauge("core_replay_redo_workers")
	mReplayNs      = obs.RegisterHistogram("core_replay_duration_ns")

	// Snapshot-transaction traffic: begins/ends pair up (a leak shows as
	// a widening gap), reads count objects resolved through the overlay
	// path. Chain-shape health lives in internal/mvcc's metrics.
	mSnapBegins = obs.RegisterCounter("txn_snapshot_begins_total")
	mSnapEnds   = obs.RegisterCounter("txn_snapshot_ends_total")
	mSnapReads  = obs.RegisterCounter("txn_snapshot_reads_total")
)
