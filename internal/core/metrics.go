package core

import (
	"oodb/internal/obs"
)

// Engine-level metrics (obs registry).
var (
	mCkptNs      = obs.RegisterHistogram("core_checkpoint_duration_ns")
	mCkptSkipped = obs.RegisterCounter("core_checkpoint_truncation_skips")
)
