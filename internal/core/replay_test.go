package core

// Differential coverage for the parallel redo pass: recovering the same
// crash image with ReplayWorkers 1 and 8 must produce byte-identical
// databases. The build leaves transactions unfinished so the (serial) undo
// pass runs over parallel-redone state too.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// buildCrashImage writes a multi-class workload with NoSync commits, syncs
// the log explicitly, and leaves two transactions in flight — then simply
// abandons the DB (no close, no checkpoint), simulating a crash whose whole
// state lives in the WAL.
func buildCrashImage(t *testing.T, dir string) {
	t.Helper()
	db, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const nClasses = 8
	classes := make([]*schema.Class, nClasses)
	for i := range classes {
		classes[i], err = db.DefineClass(fmt.Sprintf("C%d", i), nil,
			schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Skewed committed load (class i gets 10*(i+1) objects, some updated,
	// some deleted) so the LPT balancer has uneven partitions to chew on.
	var all []model.OID
	for i, cl := range classes {
		err := db.Do(func(tx *Tx) error {
			for j := 0; j < 10*(i+1); j++ {
				oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(j))})
				if err != nil {
					return err
				}
				all = append(all, oid)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	err = db.Do(func(tx *Tx) error {
		for k, oid := range all {
			if k%7 == 0 {
				if err := tx.Update(oid, map[string]model.Value{"n": model.Int(int64(-k))}); err != nil {
					return err
				}
			} else if k%11 == 0 {
				if err := tx.Delete(oid); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two in-flight transactions across several classes: their redo records
	// replay forward, then the undo pass rolls them back.
	for w := 0; w < 2; w++ {
		tx := db.Begin()
		for i, cl := range classes {
			if i%2 == w%2 {
				if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(9999)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := tx.Update(all[3+w], map[string]model.Value{"n": model.Int(-9999)}); err != nil {
			t.Fatal(err)
		}
		// Abandoned, never finished.
	}
	if err := db.Log.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: walk away without Close.
}

// copyImage clones the on-disk database files into a fresh dir.
func copyImage(t *testing.T, src, dst string) {
	t.Helper()
	for _, name := range []string{"data.kdb", "log.wal"} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// dumpObjects collects every stored object of every class as OID -> bytes.
func dumpObjects(t *testing.T, db *DB) map[model.OID]string {
	t.Helper()
	out := make(map[model.OID]string)
	for _, cl := range db.Catalog.Classes() {
		err := db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
			out[oid] = string(data)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestParallelReplayMatchesSerial(t *testing.T) {
	src := t.TempDir()
	buildCrashImage(t, src)

	open := func(workers int) *DB {
		dir := t.TempDir()
		copyImage(t, src, dir)
		db, err := Open(dir, Options{ReplayWorkers: workers})
		if err != nil {
			t.Fatalf("recovery with %d workers: %v", workers, err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	serial := dumpObjects(t, open(1))
	parallel := dumpObjects(t, open(8))

	if len(serial) == 0 {
		t.Fatal("empty recovered image: the workload never reached the heap")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("object counts diverge: serial %d, parallel %d", len(serial), len(parallel))
	}
	for oid, want := range serial {
		got, ok := parallel[oid]
		if !ok {
			t.Fatalf("parallel replay lost %v", oid)
		}
		if got != want {
			t.Fatalf("parallel replay diverges at %v:\n serial  %x\n parallel %x", oid, want, got)
		}
	}
	// The parallel pass actually engaged (gauge records the last redo's
	// worker count; the parallel open ran last).
	if got := mReplayWorkers.Value(); got != 8 {
		t.Fatalf("core_replay_redo_workers = %d, want 8 (parallel pass did not engage)", got)
	}
	// No in-flight marker survived either recovery: undo ran after redo.
	for _, data := range serial {
		obj, err := model.DecodeObject([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, av := range obj.AttrVals() {
			if model.Equal(av.V, model.Int(9999)) {
				t.Fatalf("uncommitted insert survived recovery at %v", obj.OID)
			}
		}
	}
}
