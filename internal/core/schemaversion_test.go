package core

import (
	"errors"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

func TestSchemaSnapshotAndDiff(t *testing.T) {
	td := openVehicleDB(t)
	if _, err := td.SnapshotSchema("v1"); err != nil {
		t.Fatal(err)
	}
	// Evolve: add an attribute, add a class, drop an attribute.
	if _, err := td.AddAttribute(td.vehicle.ID, schema.AttrSpec{
		Name: "color", Domain: schema.ClassString}); err != nil {
		t.Fatal(err)
	}
	if _, err := td.DefineClass("Motorcycle", []model.ClassID{td.vehicle.ID}); err != nil {
		t.Fatal(err)
	}
	if err := td.DropAttribute(td.truck.ID, "payload"); err != nil {
		t.Fatal(err)
	}

	diff, err := td.DiffSchema("v1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"+ class Motorcycle":      false,
		"+ attr Vehicle.color":    false,
		"+ attr Truck.color":      false,
		"- attr Truck.payload":    false,
		"+ attr Automobile.color": false,
	}
	for _, line := range diff {
		if _, ok := want[line]; ok {
			want[line] = true
		}
	}
	for line, seen := range want {
		if !seen {
			t.Errorf("diff missing %q (got %v)", line, diff)
		}
	}

	// The old catalog is inspectable: payload existed, color did not.
	old, err := td.CatalogAt("v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.ResolveAttr(td.truck.ID, "payload"); err != nil {
		t.Error("snapshot lost Truck.payload")
	}
	if _, err := old.ResolveAttr(td.vehicle.ID, "color"); err == nil {
		t.Error("snapshot sees future attribute")
	}
}

func TestSchemaSnapshotsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if _, err := db.SnapshotSchema("before"); err != nil {
		t.Fatal(err)
	}
	db.DropAttribute(mustClass(t, db, "P"), "n")
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	vs, err := db2.SchemaVersions()
	if err != nil || len(vs) != 1 || vs[0].Label != "before" {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	old, err := db2.CatalogAt("before")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.ResolveAttr(mustClass(t, db2, "P"), "n"); err != nil {
		t.Error("snapshot lost P.n across reopen")
	}
	diff, _ := db2.DiffSchema("before")
	found := false
	for _, line := range diff {
		if line == "- attr P.n" {
			found = true
		}
	}
	if !found {
		t.Errorf("diff = %v", diff)
	}
}

func TestSnapshotErrors(t *testing.T) {
	td := openVehicleDB(t)
	if _, err := td.CatalogAt("nope"); !errors.Is(err, ErrNoSuchSnapshot) {
		t.Fatalf("expected ErrNoSuchSnapshot, got %v", err)
	}
	if _, err := td.SnapshotSchema("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := td.SnapshotSchema("x"); err == nil {
		t.Fatal("duplicate label accepted")
	}
	vs, _ := td.SchemaVersions()
	if len(vs) != 1 {
		t.Fatalf("versions = %v", vs)
	}
}

func mustClass(t *testing.T, db *DB, name string) model.ClassID {
	t.Helper()
	cl, err := db.Catalog.ClassByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cl.ID
}
