package core

import (
	"errors"
	"testing"
	"time"

	"oodb/internal/model"
	"oodb/internal/schema"
)

func TestRenameAttributeEngine(t *testing.T) {
	td := openVehicleDB(t)
	oid := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(5)})
	if err := td.RenameAttribute(td.vehicle.ID, "weight", "grossWeight"); err != nil {
		t.Fatal(err)
	}
	// Stored value readable under the new name (same AttrID).
	obj, _ := td.FetchObject(oid)
	v, err := td.AttrValue(obj, "grossWeight")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 5 {
		t.Fatalf("renamed attr value = %v", v)
	}
	if _, err := td.AttrValue(obj, "weight"); err == nil {
		t.Fatal("old name still resolves")
	}
	// Rename survives restart.
	if err := td.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(td.dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	obj, _ = db2.FetchObject(oid)
	if _, err := db2.AttrValue(obj, "grossWeight"); err != nil {
		t.Fatal("rename lost across restart")
	}
}

func TestDropSuperclassReindexes(t *testing.T) {
	td := openVehicleDB(t)
	// Give Truck a second superclass so dropping one is legal.
	aux, _ := td.DefineClass("Taxable", nil)
	if err := td.AddSuperclass(td.truck.ID, aux.ID); err != nil {
		t.Fatal(err)
	}
	if err := td.CreateIndex("tax_idx", aux.ID, []string{"weight"}, true); err == nil {
		t.Fatal("index path should not resolve on Taxable (no weight attr)")
	}
	// Index the vehicle hierarchy; trucks are covered.
	if err := td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true); err != nil {
		t.Fatal(err)
	}
	td.mustInsert(t, "Truck", map[string]model.Value{"weight": model.Int(9000)})
	idx, _ := td.Indexes.Get("w")
	if got := idx.Lookup(model.Int(9000), nil); len(got) != 1 {
		t.Fatal("setup: truck not indexed")
	}
	// Drop Truck's Vehicle edge: trucks leave the hierarchy and must leave
	// the CH index too (reindexAfterUncover path). Truck loses `weight`,
	// making its instances unindexable under the vehicle index.
	if err := td.DropSuperclass(td.truck.ID, td.vehicle.ID); err != nil {
		t.Fatal(err)
	}
	idx, err := td.Indexes.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(model.Int(9000), nil); got != nil {
		t.Fatalf("uncovered truck still indexed: %v", got)
	}
	if td.Catalog.IsSubclassOf(td.truck.ID, td.vehicle.ID) {
		t.Fatal("edge not dropped")
	}
}

func TestRegisterMethodAfterReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	cl, _ := db.DefineClass("P", nil)
	if err := db.AddMethod(cl.ID, "ping", func(schema.MethodEngine, *model.Object, []model.Value) (model.Value, error) {
		return model.String("pong"), nil
	}); err != nil {
		t.Fatal(err)
	}
	var oid model.OID
	db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(cl.ID, nil)
		return err
	})
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Signature survived, implementation did not.
	if _, err := db2.Send(oid, "ping"); err == nil {
		t.Fatal("unregistered method body executed")
	}
	if err := db2.RegisterMethod(cl.ID, "ping", func(schema.MethodEngine, *model.Object, []model.Value) (model.Value, error) {
		return model.String("pong2"), nil
	}); err != nil {
		t.Fatal(err)
	}
	out, err := db2.Send(oid, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := out.AsString(); s != "pong2" {
		t.Fatalf("Send = %v", out)
	}
	// Registering on an undefined signature fails.
	if err := db2.RegisterMethod(cl.ID, "nosuch", nil); !errors.Is(err, schema.ErrNoSuchMethod) {
		t.Fatalf("expected ErrNoSuchMethod, got %v", err)
	}
}

func TestDropIndexEngine(t *testing.T) {
	td := openVehicleDB(t)
	if err := td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true); err != nil {
		t.Fatal(err)
	}
	if err := td.DropIndex("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := td.Indexes.Get("w"); err == nil {
		t.Fatal("index survived drop")
	}
	// The drop is durable (index table checkpointed).
	td.Close()
	db2, err := Open(td.dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Indexes.Get("w"); err == nil {
		t.Fatal("dropped index resurrected at reopen")
	}
}

func TestRewriteRelocatesWithoutStateChange(t *testing.T) {
	td := openVehicleDB(t)
	td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true)
	a := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(10)})
	// Interleave inserts so a is not at the tail.
	for i := 0; i < 50; i++ {
		td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(int64(i + 100))})
	}
	if err := td.Do(func(tx *Tx) error { return tx.Rewrite(a) }); err != nil {
		t.Fatal(err)
	}
	// State unchanged.
	obj, err := td.FetchObject(a)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := td.AttrValue(obj, "weight")
	if n, _ := v.AsInt(); n != 10 {
		t.Fatalf("rewrite changed state: %v", v)
	}
	// Index unchanged.
	idx, _ := td.Indexes.Get("w")
	if got := idx.Lookup(model.Int(10), nil); len(got) != 1 || got[0] != a {
		t.Fatalf("rewrite disturbed index: %v", got)
	}
	// Abort of a rewrite restores, too.
	tx := td.Begin()
	if err := tx.Rewrite(a); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, err := td.FetchObject(a); err != nil {
		t.Fatalf("aborted rewrite lost object: %v", err)
	}
}

func TestTxStringAndID(t *testing.T) {
	td := openVehicleDB(t)
	tx := td.Begin()
	defer tx.Commit()
	if tx.ID() == 0 {
		t.Error("transaction id should be nonzero")
	}
	if tx.String() == "" {
		t.Error("empty String()")
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	cl, _ := db.DefineClass("P", nil)
	db.Close()
	// Double close is a no-op.
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	tx := db.Begin()
	if _, err := tx.InsertClass(cl.ID, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	if _, err := db.DefineClass("Q", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("DDL after close: %v", err)
	}
}

func TestLockClassScanFootprint(t *testing.T) {
	td := openVehicleDB(t)
	tx := td.Begin()
	classes, _ := td.Catalog.Descendants(td.vehicle.ID)
	if err := tx.LockClassScan(classes); err != nil {
		t.Fatal(err)
	}
	// DDL on a subclass must block behind the scan locks.
	done := make(chan error, 1)
	go func() {
		_, err := td.AddAttribute(td.truck.ID, schema.AttrSpec{Name: "zz", Domain: schema.ClassInteger})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("DDL proceeded under scan locks: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	tx.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Finished transactions refuse further scans.
	if err := tx.LockClassScan(classes); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("expected ErrTxnFinished, got %v", err)
	}
}
