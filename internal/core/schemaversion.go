package core

import (
	"errors"
	"fmt"
	"sort"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// Schema versioning (Kim & Chou, "Versions of Schema for Object-Oriented
// Databases", VLDB 1988 — [KIM88a], which §5.4 offers views as one light
// form of). A schema snapshot captures the entire catalog as of a moment,
// durably, so applications can later inspect old schemas, diff them
// against the present, and reason about which shape their stored data was
// written under. Snapshots are ordinary objects (the catalog image is a
// Bytes attribute, spilling to overflow pages when large), so they ride
// the same transaction, recovery and checkpoint machinery as user data.

const schemaVersionClassName = "SchemaVersion"

// SchemaVersion describes one stored snapshot.
type SchemaVersion struct {
	Label   string
	Version uint64 // catalog version at snapshot time
	OID     model.OID
}

// ErrNoSuchSnapshot reports an unknown snapshot label.
var ErrNoSuchSnapshot = errors.New("core: no such schema snapshot")

// ensureSchemaVersionClass lazily defines the system class that stores
// snapshots.
func (db *DB) ensureSchemaVersionClass() (*schema.Class, error) {
	cl, err := db.Catalog.ClassByName(schemaVersionClassName)
	if err == nil {
		return cl, nil
	}
	if !errors.Is(err, schema.ErrNoSuchClass) {
		return nil, err
	}
	return db.DefineClass(schemaVersionClassName, nil,
		schema.AttrSpec{Name: "label", Domain: schema.ClassString},
		schema.AttrSpec{Name: "version", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "image", Domain: schema.ClassBytes},
	)
}

// SnapshotSchema stores a durable snapshot of the current catalog under a
// label. Labels are unique; re-snapshotting a label fails.
func (db *DB) SnapshotSchema(label string) (uint64, error) {
	cl, err := db.ensureSchemaVersionClass()
	if err != nil {
		return 0, err
	}
	if _, err := db.findSnapshot(cl, label); err == nil {
		return 0, fmt.Errorf("core: schema snapshot %q already exists", label)
	}
	version := db.Catalog.Version()
	image := schema.EncodeCatalog(db.Catalog)
	err = db.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{
			"label":   model.String(label),
			"version": model.Int(int64(version)),
			"image":   model.Bytes(image),
		})
		return err
	})
	if err != nil {
		return 0, err
	}
	return version, nil
}

// findSnapshot locates the snapshot object with the given label.
func (db *DB) findSnapshot(cl *schema.Class, label string) (*model.Object, error) {
	var found *model.Object
	err := db.Store.ScanClass(cl.ID, func(_ model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		lv, _ := db.AttrValue(obj, "label")
		if s, _ := lv.AsString(); s == label {
			found = obj
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSnapshot, label)
	}
	return found, nil
}

// SchemaVersions lists stored snapshots in label order.
func (db *DB) SchemaVersions() ([]SchemaVersion, error) {
	cl, err := db.Catalog.ClassByName(schemaVersionClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []SchemaVersion
	err = db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		lv, _ := db.AttrValue(obj, "label")
		vv, _ := db.AttrValue(obj, "version")
		label, _ := lv.AsString()
		v, _ := vv.AsInt()
		out = append(out, SchemaVersion{Label: label, Version: uint64(v), OID: oid})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

// CatalogAt decodes the catalog as of the labeled snapshot. The returned
// catalog is a standalone read-only copy: method implementations are nil
// and changes to it do not affect the live schema.
func (db *DB) CatalogAt(label string) (*schema.Catalog, error) {
	cl, err := db.Catalog.ClassByName(schemaVersionClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSnapshot, label)
	}
	if err != nil {
		return nil, err
	}
	obj, err := db.findSnapshot(cl, label)
	if err != nil {
		return nil, err
	}
	iv, _ := db.AttrValue(obj, "image")
	image, ok := iv.AsBytes()
	if !ok {
		return nil, fmt.Errorf("core: schema snapshot %q has no image", label)
	}
	return schema.DecodeCatalog(image)
}

// DiffSchema compares the labeled snapshot against the live catalog and
// returns human-readable change lines: classes added/dropped and, per
// surviving class, attributes added/dropped (by effective definition).
func (db *DB) DiffSchema(label string) ([]string, error) {
	old, err := db.CatalogAt(label)
	if err != nil {
		return nil, err
	}
	var out []string
	oldByName := map[string]model.ClassID{}
	for _, cl := range old.Classes() {
		if !schema.IsPrimitive(cl.ID) {
			oldByName[cl.Name] = cl.ID
		}
	}
	newByName := map[string]model.ClassID{}
	for _, cl := range db.Catalog.Classes() {
		if !schema.IsPrimitive(cl.ID) {
			newByName[cl.Name] = cl.ID
		}
	}
	var names []string
	for n := range oldByName {
		names = append(names, n)
	}
	for n := range newByName {
		if _, ok := oldByName[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		oldID, inOld := oldByName[name]
		newID, inNew := newByName[name]
		switch {
		case !inOld:
			out = append(out, fmt.Sprintf("+ class %s", name))
		case !inNew:
			out = append(out, fmt.Sprintf("- class %s", name))
		default:
			oldAttrs := map[string]bool{}
			attrs, _ := old.EffectiveAttrs(oldID)
			for _, a := range attrs {
				oldAttrs[a.Name] = true
			}
			newAttrs := map[string]bool{}
			attrs, _ = db.Catalog.EffectiveAttrs(newID)
			for _, a := range attrs {
				newAttrs[a.Name] = true
			}
			var attrNames []string
			for a := range oldAttrs {
				attrNames = append(attrNames, a)
			}
			for a := range newAttrs {
				if !oldAttrs[a] {
					attrNames = append(attrNames, a)
				}
			}
			sort.Strings(attrNames)
			for _, a := range attrNames {
				switch {
				case !oldAttrs[a]:
					out = append(out, fmt.Sprintf("+ attr %s.%s", name, a))
				case !newAttrs[a]:
					out = append(out, fmt.Sprintf("- attr %s.%s", name, a))
				}
			}
		}
	}
	return out, nil
}
