package core

import (
	"errors"
	"fmt"

	"oodb/internal/model"
)

// Snapshot transactions: read-only Tx instances whose reads resolve
// through the MVCC overlay (internal/mvcc) at a pinned commit epoch
// instead of taking locks. One bulk writer holding X locks no longer
// stalls a hierarchy scan — the reader simply sees the epoch it began at.

// ErrReadOnlyTxn reports a write attempted through a snapshot
// transaction.
var ErrReadOnlyTxn = errors.New("core: snapshot transaction is read-only")

// BeginSnapshot starts a read-only snapshot transaction pinned to the
// current commit epoch. Its reads never touch the lock manager: Fetch and
// the scan methods resolve visibility through the version overlay, writes
// fail with ErrReadOnlyTxn, and Commit/Abort (either one) releases the
// snapshot. Unlike a locked Tx, its scans may be issued from multiple
// goroutines at once.
func (db *DB) BeginSnapshot() *Tx {
	mSnapBegins.Add(1)
	return &Tx{
		db:        db,
		id:        db.nextTxn.Add(1),
		snap:      true,
		snapEpoch: db.Versions.BeginSnapshot(),
	}
}

// Snapshot reports whether the transaction is a snapshot (read-only,
// lock-free) transaction.
func (tx *Tx) Snapshot() bool { return tx.snap }

// SnapshotEpoch returns the pinned commit epoch of a snapshot
// transaction (0, false for a locked transaction).
func (tx *Tx) SnapshotEpoch() (uint64, bool) {
	if !tx.snap {
		return 0, false
	}
	return tx.snapEpoch, true
}

// endSnapshot releases the snapshot registration exactly once.
func (tx *Tx) endSnapshot() {
	if tx.snapEnded.CompareAndSwap(false, true) {
		tx.db.Versions.EndSnapshot(tx.snapEpoch)
		mSnapEnds.Add(1)
	}
}

// snapshotFetch resolves one object at the pinned epoch. The heap is read
// first and the overlay consulted second — the reader half of the MVCC
// ordering protocol (see internal/mvcc).
func (tx *Tx) snapshotFetch(oid model.OID) (*model.Object, error) {
	data, err := tx.db.Store.Get(oid)
	heapOK := err == nil
	vdata, ok := tx.db.Versions.Resolve(oid, data, heapOK, tx.snapEpoch)
	if !ok {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrNoObject, oid)
	}
	mSnapReads.Add(1)
	return model.DecodeObject(vdata)
}

// snapshotScan iterates the snapshot-visible instances of exactly one
// class, lock-free.
func (tx *Tx) snapshotScan(class model.ClassID, fn func(*model.Object) bool) error {
	var derr error
	err := tx.snapshotScanRaw(class, func(oid model.OID, data []byte) bool {
		obj, err := model.DecodeObject(data)
		if err != nil {
			derr = err
			return false
		}
		return fn(obj)
	})
	if err != nil {
		return err
	}
	return derr
}

// snapshotScanRaw is snapshotScan over encoded images: a heap scan with
// every record resolved through the overlay, then a sweep of the class's
// remaining version chains — objects whose heap record is already deleted
// (or not yet created) but whose snapshot-visible version lives on in the
// overlay. Per-object resolution takes only the OID's shard read-lock in
// the overlay, which is what keeps reader throughput flat under a bulk
// writer (the -mvcc bench pins the ratio). On a quiesced database the
// overlay is empty or converged, so the output is byte-identical to a
// locked heap scan (the differential test pins this).
func (tx *Tx) snapshotScanRaw(class model.ClassID, fn func(oid model.OID, data []byte) bool) error {
	seen := make(map[model.OID]bool)
	reads := uint64(0)
	defer func() { mSnapReads.Add(reads) }()
	stopped := false
	err := tx.db.Store.ScanClass(class, func(oid model.OID, data []byte) bool {
		if seen[oid] {
			return true // a concurrent relocation surfaced it twice
		}
		seen[oid] = true
		vdata, ok := tx.db.Versions.Resolve(oid, data, true, tx.snapEpoch)
		if !ok {
			return true // invisible at this epoch
		}
		reads++
		if !fn(oid, vdata) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	// Only delete-shielded chains can belong to objects the heap scan
	// missed: inserts write their heap record before commit, and
	// Heap.Scan guarantees no live record is skipped (a concurrent
	// relocation only ever moves a record to the heap tail, which the
	// scan still visits — see internal/storage). The tombstone count is
	// checked after the heap scan so a delete recorded mid-scan is never
	// overlooked.
	if tx.db.Versions.ClassTombstones(class) == 0 {
		return nil
	}
	for _, oid := range tx.db.Versions.ClassChains(class) {
		if seen[oid] {
			continue
		}
		// Heap state is irrelevant here: the heap scan already missed the
		// record, so visibility is decided by the chain alone. A chain
		// vacuumed between listing and resolving had converged with the
		// heap, meaning the object was either scanned above or invisible.
		vdata, ok := tx.db.Versions.Resolve(oid, nil, false, tx.snapEpoch)
		if !ok {
			continue
		}
		reads++
		if !fn(oid, vdata) {
			return nil
		}
	}
	return nil
}

// SnapshotOverlayOIDs lists the objects of class that currently have
// version chains — the candidates an index probe under a snapshot must
// additionally consider, because index postings track the uncommitted
// present (a key changed or a row deleted after the snapshot began no
// longer probes under its old key). Nil for locked transactions.
func (tx *Tx) SnapshotOverlayOIDs(class model.ClassID) []model.OID {
	if !tx.snap {
		return nil
	}
	return tx.db.Versions.ClassChains(class)
}
