package core

import (
	"errors"
	"time"

	"oodb/internal/model"
	"oodb/internal/storage"
	"oodb/internal/wal"
)

// Engine-level maintenance operations: online segment compaction and leaked
// page reclamation. The policy that decides *when* to run them lives in
// internal/maint; this file supplies the crash-safe mechanisms, built on
// the same detach→checkpoint→free protocol as DropClass.

// ErrBusy reports that a maintenance operation refused to run because
// transactions were in flight. Retry when the system quiesces.
var ErrBusy = errors.New("core: maintenance blocked by transactions in flight")

// CompactClass rewrites the class's heap segment online: live records are
// copied in physical order into a fresh, densely packed segment (dropping
// dead slots and any stale duplicates a past crash left behind), the
// segment table is atomically repointed, and only after the checkpoint
// makes the new segment durable are the old pages freed.
//
// Crash safety mirrors DropClass: a RecCompaction marker is logged first
// (replay-inert — compaction never changes logical content, so recovery
// has nothing to redo), the swap happens inside the DDL critical section,
// and ddl's closing checkpoint persists the new segment table. A crash
// before the checkpoint leaks the fresh segment's pages; a crash after it
// but before the frees leaks the old segment's pages. Either way no
// committed row is lost and no page is freed twice — the accountant
// (Store.AccountPages) counts the leak and ReclaimLeaked recovers it.
//
// visit, when non-nil, observes every surviving record during the copy —
// the hook the maintenance subsystem uses to collect statistics in the
// same sweep. Indexes need no maintenance: they map values to OIDs and
// compaction only changes RIDs.
func (db *DB) CompactClass(class model.ClassID, visit func(oid model.OID, data []byte)) (*storage.CompactResult, error) {
	return db.CompactClassOrdered(class, nil, visit)
}

// CompactClassOrdered is CompactClass with a placement policy deciding the
// physical order of the rewritten segment (nil = physical scan order,
// byte-identical to CompactClass). The policy runs inside the DDL critical
// section — writers of the class are excluded, so the layout it computes
// from the live set is the layout that lands. It may read objects through
// the store (FetchObject takes no transaction locks) but must not write.
// Placement changes only where records sit; the logical contract — OIDs,
// visible bytes, index postings, WAL replay — is untouched, which is what
// TestClusteredRewriteLogicallyInvisible pins.
func (db *DB) CompactClassOrdered(class model.ClassID, order storage.Placement, visit func(oid model.OID, data []byte)) (*storage.CompactResult, error) {
	var (
		detached *storage.DetachedSegment
		result   *storage.CompactResult
	)
	err := db.ddl([]model.ClassID{class}, func() error {
		if _, err := db.Log.Append(wal.Record{Type: wal.RecCompaction, OID: model.OID(class)}); err != nil {
			return err
		}
		var err error
		detached, result, err = db.Store.RewriteSegmentOrdered(class, order, visit)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := db.Store.FreeDetached(detached); err != nil {
		return result, err
	}
	return result, nil
}

// AnalyzeClass feeds every instance of the class to visit without
// rewriting anything — the on-demand statistics sweep for segments
// healthy enough to skip compaction. The sweep reads through a snapshot
// transaction: it stays lock-free, but visibility is pinned to the commit
// epoch at which it starts, so the statistics never count rows a
// concurrent uncommitted transaction wrote (and might abort) — the KMV
// sketches describe a state that actually existed.
func (db *DB) AnalyzeClass(class model.ClassID, visit func(oid model.OID, data []byte)) error {
	if db.closed.Load() {
		return ErrClosed
	}
	tx := db.BeginSnapshot()
	defer tx.Commit()
	return tx.snapshotScanRaw(class, func(oid model.OID, data []byte) bool {
		visit(oid, data)
		return true
	})
}

// ReclaimLeaked frees every page the accountant classifies as leaked —
// the debris of crashes inside the detach→checkpoint→free window — and
// returns how many were freed. It is ReclaimLeakedWait with no quiesce
// window: any transaction in flight yields ErrBusy immediately.
func (db *DB) ReclaimLeaked() (int, error) {
	return db.ReclaimLeakedWait(0)
}

// ReclaimLeakedWait is ReclaimLeaked with a bounded quiesce window: when
// transactions are in flight it holds the begin fence — new transactions
// block in Begin's first operation — and waits up to wait for the
// in-flight ones to drain before reclaiming, so a steady trickle of
// short transactions can no longer starve the reclaimer forever (each
// sweep previously found activeTxns != 0 and gave up, leaking pages
// unbounded). If the window expires the reclaim still yields ErrBusy.
//
// Ordering is load-bearing. The begin fence is taken first: new
// transactions block in their first operation, while in-flight ones drain
// freely — waiting for the active count to reach zero cannot deadlock,
// because a draining transaction never re-acquires the fence (Commit
// leaves the active set *before* its checkpoint attempt, which then just
// blocks until the fence drops, and Abort never takes it). If any
// transaction remains past the deadline the reclaim refuses (ErrBusy)
// rather than free pages whose WAL images could be replayed after a
// crash. Once quiesced, a full checkpoint runs inline under the fence —
// flush, root swap, and unconditional log truncation — so the
// accountant's reachability walk sees exactly the durable state and no
// stale page image survives to resurrect a freed page's old content
// after a later crash.
func (db *DB) ReclaimLeakedWait(wait time.Duration) (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	deadline := time.Now().Add(wait)
	for db.activeTxns.Load() != 0 {
		if wait <= 0 || time.Now().After(deadline) {
			return 0, ErrBusy
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := db.checkpointBody(); err != nil {
		return 0, err
	}
	if err := db.Log.Reset(); err != nil {
		return 0, err
	}
	return db.Store.ReclaimLeaked()
}

// SegmentInfo reports the physical shape of a class's segment — the
// fragmentation signal the maintenance policy triggers compaction on.
// Returns nil if the class has no materialized segment.
func (db *DB) SegmentInfo(class model.ClassID) (*storage.SegmentInfo, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	return db.Store.SegmentInfo(class)
}
