package core

import (
	"errors"

	"oodb/internal/model"
	"oodb/internal/storage"
	"oodb/internal/wal"
)

// Engine-level maintenance operations: online segment compaction and leaked
// page reclamation. The policy that decides *when* to run them lives in
// internal/maint; this file supplies the crash-safe mechanisms, built on
// the same detach→checkpoint→free protocol as DropClass.

// ErrBusy reports that a maintenance operation refused to run because
// transactions were in flight. Retry when the system quiesces.
var ErrBusy = errors.New("core: maintenance blocked by transactions in flight")

// CompactClass rewrites the class's heap segment online: live records are
// copied in physical order into a fresh, densely packed segment (dropping
// dead slots and any stale duplicates a past crash left behind), the
// segment table is atomically repointed, and only after the checkpoint
// makes the new segment durable are the old pages freed.
//
// Crash safety mirrors DropClass: a RecCompaction marker is logged first
// (replay-inert — compaction never changes logical content, so recovery
// has nothing to redo), the swap happens inside the DDL critical section,
// and ddl's closing checkpoint persists the new segment table. A crash
// before the checkpoint leaks the fresh segment's pages; a crash after it
// but before the frees leaks the old segment's pages. Either way no
// committed row is lost and no page is freed twice — the accountant
// (Store.AccountPages) counts the leak and ReclaimLeaked recovers it.
//
// visit, when non-nil, observes every surviving record during the copy —
// the hook the maintenance subsystem uses to collect statistics in the
// same sweep. Indexes need no maintenance: they map values to OIDs and
// compaction only changes RIDs.
func (db *DB) CompactClass(class model.ClassID, visit func(oid model.OID, data []byte)) (*storage.CompactResult, error) {
	var (
		detached *storage.DetachedSegment
		result   *storage.CompactResult
	)
	err := db.ddl([]model.ClassID{class}, func() error {
		if _, err := db.Log.Append(wal.Record{Type: wal.RecCompaction, OID: model.OID(class)}); err != nil {
			return err
		}
		var err error
		detached, result, err = db.Store.RewriteSegment(class, visit)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := db.Store.FreeDetached(detached); err != nil {
		return result, err
	}
	return result, nil
}

// AnalyzeClass scans the class and returns the bytes-and-count callback
// feed without rewriting anything — the on-demand statistics sweep for
// segments healthy enough to skip compaction. The scan runs outside any
// lock (the storage layer's lock-free reader discipline), so concurrent
// writers may or may not be observed; statistics are advisory and tolerate
// that.
func (db *DB) AnalyzeClass(class model.ClassID, visit func(oid model.OID, data []byte)) error {
	if db.closed.Load() {
		return ErrClosed
	}
	return db.Store.ScanClass(class, func(oid model.OID, data []byte) bool {
		visit(oid, data)
		return true
	})
}

// ReclaimLeaked frees every page the accountant classifies as leaked —
// the debris of crashes inside the detach→checkpoint→free window — and
// returns how many were freed.
//
// Ordering is load-bearing. The checkpoint runs first, making the current
// catalog, segment table and system blobs durable, so the accountant's
// reachability walk reflects exactly the durable state; it must happen
// before taking the begin fence because Checkpoint acquires ckptMu itself.
// Then, under the fence, the active-transaction count is exact: if any
// transaction is in flight the reclaim refuses (ErrBusy) rather than free
// pages whose WAL images could be replayed after a crash. With the count
// at zero the preceding checkpoint has truncated the log, so no stale
// page image can resurrect a freed page's old content.
func (db *DB) ReclaimLeaked() (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if err := db.Checkpoint(); err != nil {
		return 0, err
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.activeTxns.Load() != 0 {
		return 0, ErrBusy
	}
	return db.Store.ReclaimLeaked()
}

// SegmentInfo reports the physical shape of a class's segment — the
// fragmentation signal the maintenance policy triggers compaction on.
// Returns nil if the class has no materialized segment.
func (db *DB) SegmentInfo(class model.ClassID) (*storage.SegmentInfo, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	return db.Store.SegmentInfo(class)
}
