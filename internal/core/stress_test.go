package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// TestConcurrentSameClassWriters hammers one class from many goroutines.
// The lock manager serializes per-object conflicts, but distinct objects
// of the same class share heap pages — this test (under -race) guards the
// heap latch that serializes page mutation.
func TestConcurrentSameClassWriters(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, err := db.DefineClass("P", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "pad", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("pn", cl.ID, []string{"n"}, true); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const opsPer = 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			var mine []model.OID
			for i := 0; i < opsPer; i++ {
				err := db.Do(func(tx *Tx) error {
					switch {
					case len(mine) == 0 || r.Intn(3) == 0:
						oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
							"n":   model.Int(int64(r.Intn(50))),
							"pad": model.String(string(make([]byte, r.Intn(300)))),
						})
						if err != nil {
							return err
						}
						mine = append(mine, oid)
						return nil
					case r.Intn(4) == 0:
						victim := mine[r.Intn(len(mine))]
						if err := tx.Delete(victim); err != nil {
							return err
						}
						for j, o := range mine {
							if o == victim {
								mine = append(mine[:j], mine[j+1:]...)
								break
							}
						}
						return nil
					default:
						return tx.Update(mine[r.Intn(len(mine))], map[string]model.Value{
							"n":   model.Int(int64(r.Intn(50))),
							"pad": model.String(string(make([]byte, r.Intn(600)))),
						})
					}
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Invariant: the index agrees exactly with a scan, key by key.
	idx, err := db.Indexes.Get("pn")
	if err != nil {
		t.Fatal(err)
	}
	scanCounts := map[int64]int{}
	total := 0
	err = db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			t.Errorf("corrupt object %v: %v", oid, derr)
			return true
		}
		v, _ := db.AttrValue(obj, "n")
		n, _ := v.AsInt()
		scanCounts[n]++
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no objects survived the stress run")
	}
	for k := int64(0); k < 50; k++ {
		got := len(idx.Lookup(model.Int(k), nil))
		if got != scanCounts[k] {
			t.Errorf("index[n=%d] has %d entries, scan found %d", k, got, scanCounts[k])
		}
	}
	if idx.Len() != total {
		t.Errorf("index size %d != live objects %d", idx.Len(), total)
	}
}

// TestConcurrentReadersAndWriters mixes scans, point reads and writers on
// one class; under -race it guards reader/writer page access.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	var oids []model.OID
	db.Do(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				db.Do(func(tx *Tx) error {
					return tx.Update(oids[r.Intn(len(oids))], map[string]model.Value{
						"n": model.Int(int64(r.Intn(1000)))})
				})
			}
		}(w)
	}
	// Scanning readers.
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Do(func(tx *Tx) error {
					n := 0
					if err := tx.Scan(cl.ID, func(*model.Object) bool { n++; return true }); err != nil {
						return err
					}
					if n != 100 {
						t.Errorf("scan saw %d objects, want 100", n)
					}
					return nil
				})
			}
		}()
	}
	// Point readers through the lock-free path (read-uncommitted).
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(w + 100)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.FetchObject(oids[r.Intn(len(oids))]); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
