package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// TestConcurrentSameClassWriters hammers one class from many goroutines.
// The lock manager serializes per-object conflicts, but distinct objects
// of the same class share heap pages — this test (under -race) guards the
// heap latch that serializes page mutation.
func TestConcurrentSameClassWriters(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, err := db.DefineClass("P", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "pad", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("pn", cl.ID, []string{"n"}, true); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const opsPer = 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			var mine []model.OID
			for i := 0; i < opsPer; i++ {
				err := db.Do(func(tx *Tx) error {
					switch {
					case len(mine) == 0 || r.Intn(3) == 0:
						oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
							"n":   model.Int(int64(r.Intn(50))),
							"pad": model.String(string(make([]byte, r.Intn(300)))),
						})
						if err != nil {
							return err
						}
						mine = append(mine, oid)
						return nil
					case r.Intn(4) == 0:
						victim := mine[r.Intn(len(mine))]
						if err := tx.Delete(victim); err != nil {
							return err
						}
						for j, o := range mine {
							if o == victim {
								mine = append(mine[:j], mine[j+1:]...)
								break
							}
						}
						return nil
					default:
						return tx.Update(mine[r.Intn(len(mine))], map[string]model.Value{
							"n":   model.Int(int64(r.Intn(50))),
							"pad": model.String(string(make([]byte, r.Intn(600)))),
						})
					}
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Invariant: the index agrees exactly with a scan, key by key.
	idx, err := db.Indexes.Get("pn")
	if err != nil {
		t.Fatal(err)
	}
	scanCounts := map[int64]int{}
	total := 0
	err = db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			t.Errorf("corrupt object %v: %v", oid, derr)
			return true
		}
		v, _ := db.AttrValue(obj, "n")
		n, _ := v.AsInt()
		scanCounts[n]++
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no objects survived the stress run")
	}
	for k := int64(0); k < 50; k++ {
		got := len(idx.Lookup(model.Int(k), nil))
		if got != scanCounts[k] {
			t.Errorf("index[n=%d] has %d entries, scan found %d", k, got, scanCounts[k])
		}
	}
	if idx.Len() != total {
		t.Errorf("index size %d != live objects %d", idx.Len(), total)
	}
}

// TestConcurrentHierarchyScansAndWriters drives the read path the parallel
// query executor uses — LockClassScan over a class hierarchy, then
// concurrent ScanLocked per class from several goroutines — while a writer
// keeps inserting into the leaf classes. Run under -race it guards the
// sharded buffer pool, the store RWMutex and the heap read latch.
func TestConcurrentHierarchyScansAndWriters(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true, PoolShards: 4, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// A three-level hierarchy: Root <- Mid{0,1} <- Leaf{0,1,2,3}.
	root, err := db.DefineClass("Root", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "pad", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	var leaves []model.ClassID
	for m := 0; m < 2; m++ {
		mid, err := db.DefineClass(fmt.Sprintf("Mid%d", m), []model.ClassID{root.ID})
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < 2; l++ {
			leaf, err := db.DefineClass(fmt.Sprintf("Leaf%d_%d", m, l), []model.ClassID{mid.ID})
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leaf.ID)
		}
	}
	scope, err := db.Catalog.Descendants(root.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Seed every class in the scope; spill across pages with padding.
	const seedPerClass = 40
	err = db.Do(func(tx *Tx) error {
		for _, c := range scope {
			for i := 0; i < seedPerClass; i++ {
				if _, err := tx.InsertClass(c, map[string]model.Value{
					"n":   model.Int(int64(i)),
					"pad": model.String(string(make([]byte, 200))),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	minTotal := seedPerClass * len(scope)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// One writer appending to the leaves (inserts only: the scan floor
	// stays valid).
	writers.Add(1)
	go func() {
		defer writers.Done()
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			err := db.Do(func(tx *Tx) error {
				_, err := tx.InsertClass(leaves[r.Intn(len(leaves))], map[string]model.Value{
					"n":   model.Int(int64(i)),
					"pad": model.String(string(make([]byte, r.Intn(400)))),
				})
				return err
			})
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	// Hierarchy-scoped readers: lock the scope once, then scan every class
	// from its own goroutine — the executor's fan-out, concentrated.
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.Do(func(tx *Tx) error {
					if err := tx.LockClassScan(scope); err != nil {
						return err
					}
					counts := make([]int, len(scope))
					var wg sync.WaitGroup
					for i, c := range scope {
						wg.Add(1)
						go func(i int, c model.ClassID) {
							defer wg.Done()
							tx.ScanLocked(c, func(*model.Object) bool {
								counts[i]++
								return true
							})
						}(i, c)
					}
					wg.Wait()
					total := 0
					for _, n := range counts {
						total += n
					}
					if total < minTotal {
						t.Errorf("hierarchy scan saw %d objects, want >= %d", total, minTotal)
					}
					return nil
				})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestConcurrentReadersAndWriters mixes scans, point reads and writers on
// one class; under -race it guards reader/writer page access.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	var oids []model.OID
	db.Do(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				db.Do(func(tx *Tx) error {
					return tx.Update(oids[r.Intn(len(oids))], map[string]model.Value{
						"n": model.Int(int64(r.Intn(1000)))})
				})
			}
		}(w)
	}
	// Scanning readers.
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Do(func(tx *Tx) error {
					n := 0
					if err := tx.Scan(cl.ID, func(*model.Object) bool { n++; return true }); err != nil {
						return err
					}
					if n != 100 {
						t.Errorf("scan saw %d objects, want 100", n)
					}
					return nil
				})
			}
		}()
	}
	// Point readers through the lock-free path (read-uncommitted).
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(w + 100)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.FetchObject(oids[r.Intn(len(oids))]); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
