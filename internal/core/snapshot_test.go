package core

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// openGenDB opens a fresh database with one class G{g, k Integer} and
// inserts count objects at generation 0. Returns the OIDs in insertion
// order.
func openGenDB(t *testing.T, count int) (*DB, *schema.Class, []model.OID) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cl, err := db.DefineClass("G", nil,
		schema.AttrSpec{Name: "g", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "k", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	oids := make([]model.OID, count)
	if err := db.Do(func(tx *Tx) error {
		for i := range oids {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"g": model.Int(0), "k": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids[i] = oid
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db, cl, oids
}

// setGeneration commits one transaction that moves every object to
// generation g — the all-or-nothing unit the isolation tests assert on.
func setGeneration(db *DB, cl *schema.Class, oids []model.OID, g int64) error {
	return db.Do(func(tx *Tx) error {
		for _, oid := range oids {
			if err := tx.Update(oid, map[string]model.Value{"g": model.Int(g)}); err != nil {
				return err
			}
		}
		return nil
	})
}

// attrInt reads an integer attribute or fails the test.
func attrInt(t *testing.T, db *DB, obj *model.Object, name string) int64 {
	t.Helper()
	v, err := db.AttrValue(obj, name)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := v.AsInt()
	return n
}

func TestSnapshotReadOnlyEnforced(t *testing.T) {
	db, cl, oids := openGenDB(t, 3)
	tx := db.BeginSnapshot()
	if !tx.Snapshot() {
		t.Fatal("BeginSnapshot returned a non-snapshot transaction")
	}
	if _, ok := tx.SnapshotEpoch(); !ok {
		t.Fatal("snapshot has no pinned epoch")
	}
	if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"g": model.Int(1)}); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Insert through snapshot = %v, want ErrReadOnlyTxn", err)
	}
	if err := tx.Update(oids[0], map[string]model.Value{"g": model.Int(1)}); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Update through snapshot = %v, want ErrReadOnlyTxn", err)
	}
	if err := tx.Delete(oids[0]); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Delete through snapshot = %v, want ErrReadOnlyTxn", err)
	}
	if err := tx.Rewrite(oids[0]); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Rewrite through snapshot = %v, want ErrReadOnlyTxn", err)
	}
	if _, err := tx.Fetch(oids[0]); err != nil {
		t.Fatalf("snapshot Fetch: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("snapshot Commit: %v", err)
	}
	if db.Versions.LiveSnapshots() != 0 {
		t.Fatalf("live snapshots after commit = %d, want 0", db.Versions.LiveSnapshots())
	}
	// Both finishers on one snapshot release it exactly once.
	tx2 := db.BeginSnapshot()
	tx2.Abort()
	if err := tx2.Commit(); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("second finish = %v, want ErrTxnFinished", err)
	}
	if db.Versions.LiveSnapshots() != 0 {
		t.Fatalf("live snapshots after abort+commit = %d, want 0", db.Versions.LiveSnapshots())
	}
}

// TestSnapshotDifferentialLockedScan is the acceptance differential: on a
// quiesced database a snapshot scan must return byte-identical images to
// a locked heap scan, including when the overlay still carries chains
// from history that ran while older snapshots were live.
func TestSnapshotDifferentialLockedScan(t *testing.T) {
	db, cl, oids := openGenDB(t, 40)

	// Build history that leaves chains in the overlay: a pinned snapshot
	// keeps commit-time pruning from converging them.
	pin := db.BeginSnapshot()
	if err := setGeneration(db, cl, oids, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Do(func(tx *Tx) error { // deletes: chains with delete markers
		for _, oid := range oids[:10] {
			if err := tx.Delete(oid); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Do(func(tx *Tx) error { // fresh inserts: chains with no base
		for i := 0; i < 5; i++ {
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"g": model.Int(1), "k": model.Int(int64(1000 + i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pin.Commit()
	if db.Versions.Chains() == 0 {
		t.Fatal("test is vacuous: overlay converged before the differential ran")
	}

	collect := func(scan func(fn func(oid model.OID, data []byte) bool) error) map[model.OID][]byte {
		out := make(map[model.OID][]byte)
		if err := scan(func(oid model.OID, data []byte) bool {
			out[oid] = append([]byte(nil), data...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Locked side: S lock on the class, then the raw heap.
	ltx := db.Begin()
	if err := ltx.LockClassScan([]model.ClassID{cl.ID}); err != nil {
		t.Fatal(err)
	}
	locked := collect(func(fn func(model.OID, []byte) bool) error {
		return db.Store.ScanClass(cl.ID, fn)
	})
	ltx.Commit()

	stx := db.BeginSnapshot()
	snap := collect(func(fn func(model.OID, []byte) bool) error {
		return stx.snapshotScanRaw(cl.ID, fn)
	})
	stx.Commit() // chains are only droppable once no snapshot is live

	if len(snap) != len(locked) {
		t.Fatalf("snapshot scan returned %d objects, locked scan %d", len(snap), len(locked))
	}
	for oid, want := range locked {
		got, ok := snap[oid]
		if !ok {
			t.Fatalf("snapshot scan missing %s", oid)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("object %s differs: snapshot %d bytes, locked %d bytes", oid, len(got), len(want))
		}
	}

	// And after the vacuum converges the overlay, still identical.
	if live := db.Versions.Vacuum(); live != 0 {
		t.Fatalf("vacuum on a quiesced database left %d chains", live)
	}
	stx2 := db.BeginSnapshot()
	defer stx2.Commit()
	snap2 := collect(func(fn func(model.OID, []byte) bool) error {
		return stx2.snapshotScanRaw(cl.ID, fn)
	})
	if len(snap2) != len(locked) {
		t.Fatalf("post-vacuum snapshot scan returned %d objects, want %d", len(snap2), len(locked))
	}
	for oid, want := range locked {
		if !bytes.Equal(snap2[oid], want) {
			t.Fatalf("post-vacuum object %s differs from locked scan", oid)
		}
	}
}

// TestSnapshotIsolationAcrossWriter pins the visibility rules against a
// live writer: uncommitted updates and deletes are invisible, a snapshot
// begun before a commit keeps the old state after it, and a snapshot
// begun after sees the new state.
func TestSnapshotIsolationAcrossWriter(t *testing.T) {
	db, _, oids := openGenDB(t, 4)

	before := db.BeginSnapshot()
	defer before.Commit()

	w := db.Begin()
	if err := w.Update(oids[0], map[string]model.Value{"g": model.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete(oids[1]); err != nil {
		t.Fatal(err)
	}

	// Uncommitted writer state: invisible to a snapshot begun before or
	// during the transaction.
	during := db.BeginSnapshot()
	for _, tx := range []*Tx{before, during} {
		obj, err := tx.Fetch(oids[0])
		if err != nil {
			t.Fatalf("fetch under writer: %v", err)
		}
		if g := attrInt(t, db, obj, "g"); g != 0 {
			t.Fatalf("snapshot sees uncommitted g=%d, want 0", g)
		}
		if _, err := tx.Fetch(oids[1]); err != nil {
			t.Fatalf("uncommitted delete already visible: %v", err)
		}
	}
	during.Commit()

	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the pre-commit state.
	obj, err := before.Fetch(oids[0])
	if err != nil {
		t.Fatal(err)
	}
	if g := attrInt(t, db, obj, "g"); g != 0 {
		t.Fatalf("pre-commit snapshot drifted to g=%d", g)
	}
	if _, err := before.Fetch(oids[1]); err != nil {
		t.Fatalf("pre-commit snapshot lost the deleted object: %v", err)
	}
	n := 0
	if err := before.Scan(oids[0].Class(), func(*model.Object) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("pre-commit snapshot scan sees %d objects, want 4", n)
	}

	// A fresh snapshot sees the committed truth.
	after := db.BeginSnapshot()
	defer after.Commit()
	obj, err = after.Fetch(oids[0])
	if err != nil {
		t.Fatal(err)
	}
	if g := attrInt(t, db, obj, "g"); g != 7 {
		t.Fatalf("post-commit snapshot sees g=%d, want 7", g)
	}
	if _, err := after.Fetch(oids[1]); err == nil {
		t.Fatal("post-commit snapshot still sees the deleted object")
	}

	// An aborted writer leaves every snapshot untouched.
	a := db.Begin()
	if err := a.Update(oids[2], map[string]model.Value{"g": model.Int(99)}); err != nil {
		t.Fatal(err)
	}
	mid := db.BeginSnapshot()
	a.Abort()
	obj, err = mid.Fetch(oids[2])
	if err != nil {
		t.Fatal(err)
	}
	if g := attrInt(t, db, obj, "g"); g != 0 {
		t.Fatalf("snapshot across abort sees g=%d, want 0", g)
	}
	mid.Commit()
}

// TestSnapshotReadersVsWritersStress races N lock-free snapshot readers
// against a writer committing whole generations. Invariants, checked on
// every read: a snapshot observes one single generation across all
// objects (commits are all-or-nothing), pinned epochs never decrease, and
// the generation seen never decreases as epochs advance. Run under -race
// this doubles as the data-race net for the heap/overlay ordering
// protocol.
func TestSnapshotReadersVsWritersStress(t *testing.T) {
	const objects, readers, generations = 8, 4, 120
	db, cl, oids := openGenDB(t, objects)

	var lastCommitted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for g := int64(1); g <= generations; g++ {
			if err := setGeneration(db, cl, oids, g); err != nil {
				t.Errorf("writer generation %d: %v", g, err)
				return
			}
			lastCommitted.Store(g)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevEpoch uint64
			var prevGen int64 = -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := lastCommitted.Load()
				tx := db.BeginSnapshot()
				epoch, _ := tx.SnapshotEpoch()
				if epoch < prevEpoch {
					t.Errorf("epoch went backwards: %d after %d", epoch, prevEpoch)
				}
				prevEpoch = epoch
				gen := int64(-1)
				n := 0
				err := tx.Scan(cl.ID, func(obj *model.Object) bool {
					n++
					v, verr := db.AttrValue(obj, "g")
					if verr != nil {
						t.Errorf("attr g: %v", verr)
						return false
					}
					g, _ := v.AsInt()
					if gen == -1 {
						gen = g
					} else if g != gen {
						t.Errorf("torn snapshot at epoch %d: saw generations %d and %d", epoch, gen, g)
						return false
					}
					return true
				})
				tx.Commit()
				if err != nil {
					t.Errorf("snapshot scan: %v", err)
					return
				}
				if t.Failed() {
					return
				}
				if n != objects {
					t.Errorf("snapshot at epoch %d saw %d objects, want %d", epoch, n, objects)
					return
				}
				if gen < prevGen {
					t.Errorf("generation went backwards: %d after %d", gen, prevGen)
					return
				}
				prevGen = gen
				if gen < floor {
					t.Errorf("snapshot begun after generation %d committed saw generation %d", floor, gen)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced end state: one vacuum converges the overlay completely.
	db.Versions.Vacuum()
	if n := db.Versions.Chains(); n != 0 {
		t.Fatalf("overlay still holds %d chains after quiesce+vacuum", n)
	}
}

// TestReclaimLeakedWaitQuiesces pins the ErrBusy-starvation fix: under a
// continuous stream of short transactions the bounded quiesce window
// (hold new begins, drain in-flight) lets the reclaimer run, where the
// old try-once behavior returned ErrBusy forever.
func TestReclaimLeakedWaitQuiesces(t *testing.T) {
	db, cl, oids := openGenDB(t, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = db.Do(func(tx *Tx) error {
					return tx.Update(oids[w], map[string]model.Value{"g": model.Int(int64(i))})
				})
			}
		}(w)
	}
	// Let the stream establish itself, then prove try-once starves while
	// the bounded window succeeds against the same load.
	time.Sleep(5 * time.Millisecond)
	busySeen := false
	for i := 0; i < 50; i++ {
		if _, err := db.ReclaimLeaked(); err == ErrBusy {
			busySeen = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.ReclaimLeakedWait(5 * time.Second); err != nil {
			t.Fatalf("bounded quiesce run %d failed under continuous load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if !busySeen {
		t.Log("try-once reclaim never hit ErrBusy (load too light to pin starvation this run)")
	}

	// A transaction that outlives the window still yields ErrBusy.
	held := db.Begin()
	if _, err := held.InsertClass(cl.ID, map[string]model.Value{"g": model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReclaimLeakedWait(10 * time.Millisecond); err != ErrBusy {
		t.Fatalf("reclaim with a held transaction = %v, want ErrBusy", err)
	}
	if err := held.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReclaimLeakedWait(time.Second); err != nil {
		t.Fatalf("reclaim after release: %v", err)
	}
}
