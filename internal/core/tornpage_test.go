package core

import (
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/storage"
)

// TestTornPageRecovered injects a torn write (a corrupted heap page) and
// verifies the full recovery story: the directory rebuild amputates the
// torn page and logical WAL replay re-materializes every committed object
// that lived on it.
func TestTornPageRecovered(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	// 50 committed objects. DefineClass checkpointed, so these live in the
	// WAL tail; FlushAll pushes their pages to disk as a crash might.
	var oids []model.OID
	err = db.Do(func(tx *Tx) error {
		for i := 0; i < 50; i++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Store.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Log.Sync(); err != nil {
		t.Fatal(err)
	}

	// Crash: corrupt the last heap-typed page in the data file (the torn
	// write), without closing the database.
	path := filepath.Join(dir, "data.kdb")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const pageSize = 4096
	torn := -1
	for off := 0; off+pageSize <= len(data); off += pageSize {
		if data[off+12] == 1 { // pageTypeHeap
			torn = off
		}
	}
	if torn < 0 {
		t.Fatal("no heap page found in data file")
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 512)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	if _, err := f.WriteAt(garbage, int64(torn+1000)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery: open must succeed, amputate the torn page and replay the
	// WAL so every committed object is back.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	defer db2.Close()
	for i, oid := range oids {
		obj, err := db2.FetchObject(oid)
		if err != nil {
			t.Fatalf("object %d (%v) lost to torn page: %v", i, oid, err)
		}
		v, _ := db2.AttrValue(obj, "n")
		if n, _ := v.AsInt(); n != int64(i) {
			t.Fatalf("object %d has n=%v", i, v)
		}
	}
	// The store stays fully usable: inserts and a reopen both work.
	err = db2.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(999)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Store.Count(cl.ID); got != 51 {
		t.Fatalf("Count = %d, want 51", got)
	}
}

// TestTornPageWithoutWALLosesOnlyThatPage documents the model's limit: a
// torn page whose records are no longer in the WAL (post-checkpoint
// corruption) loses those records but the database still opens and the
// rest of the data survives.
func TestTornPageWithoutWALLosesOnlyThatPage(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	db.Do(func(tx *Tx) error {
		for i := 0; i < 400; i++ { // several pages worth
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := db.Close(); err != nil { // checkpoint: WAL truncated
		t.Fatal(err)
	}

	path := filepath.Join(dir, "data.kdb")
	data, _ := os.ReadFile(path)
	const pageSize = 4096
	torn := -1
	for off := 0; off+pageSize <= len(data); off += pageSize {
		if data[off+12] == 1 {
			torn = off // last heap page
		}
	}
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, int64(torn+2000))
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after post-checkpoint torn page: %v", err)
	}
	defer db2.Close()
	got := db2.Store.Count(cl.ID)
	if got >= 400 {
		t.Fatalf("Count = %d; corruption should have cost some records", got)
	}
	if got == 0 {
		t.Fatal("all records lost; amputation should be page-local")
	}
}

// TestOpenStillFailsOnUnreadableMeta verifies amputation does not mask
// real structural corruption: a destroyed metadata page must fail Open.
func TestOpenStillFailsOnUnreadableMeta(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.DefineClass("P", nil)
	db.Close()
	path := filepath.Join(dir, "data.kdb")
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	// Destroy both duplexed metadata slots: losing one is survivable by
	// design (the twin takes over), losing both is real corruption.
	for slot := int64(0); slot < storage.MetaSlots; slot++ {
		f.WriteAt(make([]byte, 256), slot*storage.PageSize)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a database with no valid metadata slot")
	}
}

// TestAbortThenCommitThenCrash is the regression test for the
// compensation-logging fix: T1 updates X and aborts (releasing its lock),
// T2 updates X and commits, then the process crashes. Recovery must leave
// X at T2's committed value — a recovery-time undo of T1 would clobber it.
func TestAbortThenCommitThenCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	var oid model.OID
	db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)})
		return err
	})
	db.Checkpoint()

	// T1: update then abort.
	t1 := db.Begin()
	if err := t1.Update(oid, map[string]model.Value{"n": model.Int(666)}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	// T2: update then commit.
	db.Do(func(tx *Tx) error {
		return tx.Update(oid, map[string]model.Value{"n": model.Int(2)})
	})
	db.Log.Sync()
	// Crash (no close), reopen, replay.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	obj, err := db2.FetchObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := db2.AttrValue(obj, "n")
	if n, _ := v.AsInt(); n != 2 {
		t.Fatalf("n = %v after recovery, want 2 (T1's undo must not clobber T2)", v)
	}
}

// TestCheckpointKeepsLogWithActiveTxn: a checkpoint taken while a
// transaction is in flight must retain the WAL (the flush may have
// persisted uncommitted state whose undo information lives there).
func TestCheckpointKeepsLogWithActiveTxn(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	var oid model.OID
	db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)})
		return err
	})

	// In-flight transaction with a logged update.
	t1 := db.Begin()
	if err := t1.Update(oid, map[string]model.Value{"n": model.Int(666)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	size, _ := db.Log.Size()
	if size == 0 {
		t.Fatal("checkpoint truncated the WAL under an active transaction")
	}
	db.Log.Sync()
	// Crash with T1 unfinished: recovery must roll its update back even
	// though the checkpoint flushed the dirty page.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	obj, _ := db2.FetchObject(oid)
	v, _ := db2.AttrValue(obj, "n")
	if n, _ := v.AsInt(); n != 1 {
		t.Fatalf("n = %v, want 1 (in-flight update must be undone)", v)
	}
	// After the in-flight txn ends, checkpoints truncate again.
	db2.Do(func(tx *Tx) error {
		return tx.Update(oid, map[string]model.Value{"n": model.Int(3)})
	})
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	size, _ = db2.Log.Size()
	if size != 0 {
		t.Fatalf("quiet checkpoint left %d log bytes", size)
	}
}

// TestReplayToleratesDroppedClass: a logged write whose class was dropped
// before the crash must not fail recovery.
func TestReplayToleratesDroppedClass(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := db.DefineClass("Keep", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	gone, _ := db.DefineClass("Gone", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})

	// Hold a transaction open so checkpoints keep the log.
	holdOID := func() model.OID {
		var oid model.OID
		db.Do(func(tx *Tx) error {
			var err error
			oid, err = tx.InsertClass(keep.ID, map[string]model.Value{"n": model.Int(1)})
			return err
		})
		return oid
	}
	kept := holdOID()
	hold := db.Begin()
	if err := hold.Update(kept, map[string]model.Value{"n": model.Int(5)}); err != nil {
		t.Fatal(err)
	}
	// Committed write into Gone (logged; log survives DDL checkpoint
	// because hold is active).
	db.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(gone.ID, map[string]model.Value{"n": model.Int(9)})
		return err
	})
	if err := db.DropClass(gone.ID); err != nil {
		t.Fatal(err)
	}
	db.Log.Sync()
	// Crash with hold unfinished.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed on dropped-class record: %v", err)
	}
	defer db2.Close()
	obj, err := db2.FetchObject(kept)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := db2.AttrValue(obj, "n")
	if n, _ := v.AsInt(); n != 1 {
		t.Fatalf("kept.n = %v, want 1 (hold's update undone)", v)
	}
	if _, err := db2.Catalog.ClassByName("Gone"); err == nil {
		t.Fatal("dropped class resurrected")
	}
}
