package core

import (
	"math/rand"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// TestCrashSoak runs several crash/recover rounds against a reference
// model: each round applies random committed transactions (recorded in the
// model only after Commit returns), leaves one transaction in flight, and
// "crashes" by abandoning the handle without Close. After every reopen the
// database must agree exactly with the model — committed work present,
// in-flight work gone.
func TestCrashSoak(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(31))
	expected := map[model.OID]int64{} // committed state

	var classID model.ClassID
	for round := 0; round < 6; round++ {
		db, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("round %d: open: %v", round, err)
		}
		if round == 0 {
			cl, err := db.DefineClass("S", nil,
				schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
			if err != nil {
				t.Fatal(err)
			}
			classID = cl.ID
		}

		// Verify the database matches the model exactly.
		if got := db.Store.Count(classID); got != len(expected) {
			t.Fatalf("round %d: %d objects stored, model has %d", round, got, len(expected))
		}
		for oid, want := range expected {
			obj, err := db.FetchObject(oid)
			if err != nil {
				t.Fatalf("round %d: committed object %v missing: %v", round, oid, err)
			}
			v, _ := db.AttrValue(obj, "n")
			if n, _ := v.AsInt(); n != want {
				t.Fatalf("round %d: %v = %d, want %d", round, oid, n, want)
			}
		}

		// Random committed transactions.
		oids := make([]model.OID, 0, len(expected))
		for oid := range expected {
			oids = append(oids, oid)
		}
		for txi := 0; txi < 15; txi++ {
			// Stage the ops; apply to the model only after commit.
			staged := map[model.OID]int64{}
			deleted := map[model.OID]bool{}
			tx := db.Begin()
			ok := true
			for op := 0; op < 1+r.Intn(5); op++ {
				switch {
				case len(oids) == 0 || r.Intn(3) == 0:
					oid, err := tx.InsertClass(classID, map[string]model.Value{
						"n": model.Int(int64(r.Intn(1000)))})
					if err != nil {
						ok = false
						break
					}
					obj, _ := db.FetchObject(oid)
					v, _ := db.AttrValue(obj, "n")
					n, _ := v.AsInt()
					staged[oid] = n
					oids = append(oids, oid)
				case r.Intn(4) == 0:
					victim := oids[r.Intn(len(oids))]
					if deleted[victim] {
						continue
					}
					if err := tx.Delete(victim); err != nil {
						ok = false
						break
					}
					deleted[victim] = true
					delete(staged, victim)
				default:
					target := oids[r.Intn(len(oids))]
					if deleted[target] {
						continue
					}
					n := int64(r.Intn(1000))
					if err := tx.Update(target, map[string]model.Value{"n": model.Int(n)}); err != nil {
						ok = false
						break
					}
					staged[target] = n
				}
			}
			if !ok || r.Intn(5) == 0 {
				tx.Abort() // some transactions abort on purpose
				// Remove aborted inserts from the working oid list.
				live := oids[:0]
				for _, o := range oids {
					if _, stagedInsert := staged[o]; stagedInsert && !db.Store.Exists(o) {
						continue
					}
					live = append(live, o)
				}
				oids = live
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d: commit: %v", round, err)
			}
			for oid, n := range staged {
				expected[oid] = n
			}
			for oid := range deleted {
				delete(expected, oid)
			}
		}

		// Leave one transaction in flight, touching committed objects.
		if len(oids) > 0 {
			hang := db.Begin()
			for i := 0; i < 3 && i < len(oids); i++ {
				target := oids[r.Intn(len(oids))]
				if _, exists := expected[target]; !exists {
					continue
				}
				hang.Update(target, map[string]model.Value{"n": model.Int(-999)})
			}
			// Occasionally flush dirty pages so the in-flight state hits
			// disk (the hard case for recovery).
			if r.Intn(2) == 0 {
				db.Store.Pool().FlushAll()
			}
		}
		db.Log.Sync()
		// Crash: abandon the handle.
	}

	// Final clean open and verify.
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Store.Count(classID); got != len(expected) {
		t.Fatalf("final: %d objects, model has %d", got, len(expected))
	}
	for oid, want := range expected {
		obj, err := db.FetchObject(oid)
		if err != nil {
			t.Fatalf("final: %v missing", oid)
		}
		v, _ := db.AttrValue(obj, "n")
		if n, _ := v.AsInt(); n != want {
			t.Fatalf("final: %v = %d, want %d", oid, n, want)
		}
	}
}
