package core

import (
	"fmt"
	"sync/atomic"

	"oodb/internal/model"
	"oodb/internal/txn"
	"oodb/internal/wal"
)

// Tx is a database transaction: strict two-phase locked, WAL-logged,
// all-or-nothing. A Tx must be used by a single goroutine and finished
// with exactly one Commit or Abort.
//
// A Tx returned by BeginSnapshot runs in snapshot mode instead (see
// snapshot.go): read-only, lock-free, visibility pinned to the commit
// epoch at which it began. Snapshot scans — unlike the rest of Tx — are
// safe to issue from multiple goroutines at once, since snapshot mode
// keeps no per-call state beyond the pinned epoch.
type Tx struct {
	db    *DB
	id    uint64
	began bool // RecBegin written
	done  bool
	undos []undo

	// Snapshot mode: when snap is true, reads resolve through the MVCC
	// overlay at snapEpoch and every write path fails with ErrReadOnlyTxn.
	snap      bool
	snapEpoch uint64
	snapEnded atomic.Bool // EndSnapshot delivered exactly once
}

// undo records the inverse of one applied operation, for in-process
// rollback (crash rollback uses the same images from the WAL).
type undo struct {
	oid    model.OID
	before *model.Object // nil: operation was an insert — undo deletes
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, id: db.nextTxn.Add(1)}
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) ensureBegan() error {
	if tx.done {
		return ErrTxnFinished
	}
	if tx.snap {
		return ErrReadOnlyTxn
	}
	if err := tx.db.check(); err != nil {
		return err
	}
	if !tx.began {
		// Under the checkpoint fence: the begin record and the active-count
		// increment are atomic with respect to WAL truncation, so a
		// checkpoint can never truncate the log out from under a
		// transaction that has started logging (see DB.ckptMu).
		tx.db.ckptMu.RLock()
		_, err := tx.db.Log.Append(wal.Record{Txn: tx.id, Type: wal.RecBegin})
		if err == nil {
			tx.began = true
			tx.db.activeTxns.Add(1)
		}
		tx.db.ckptMu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// abortOn wraps lock errors: a deadlock victim is rolled back before the
// error is surfaced, so the caller can simply retry the transaction.
func (tx *Tx) abortOn(err error) error {
	if err == nil {
		return nil
	}
	if err == txn.ErrDeadlock {
		tx.Abort()
	}
	return err
}

// resolveAttrs maps attribute names to (Attribute, checked value) pairs
// against the effective definition of class.
func (tx *Tx) resolveAttrs(class model.ClassID, attrs map[string]model.Value) (map[model.AttrID]model.Value, error) {
	out := make(map[model.AttrID]model.Value, len(attrs))
	for name, v := range attrs {
		a, err := tx.db.Catalog.ResolveAttr(class, name)
		if err != nil {
			return nil, err
		}
		if err := tx.db.Catalog.CheckValue(a, v); err != nil {
			return nil, err
		}
		out[a.ID] = v
	}
	return out, nil
}

// Insert creates a new instance of the named class with the given
// attribute values and returns its OID.
func (tx *Tx) Insert(className string, attrs map[string]model.Value) (model.OID, error) {
	cl, err := tx.db.Catalog.ClassByName(className)
	if err != nil {
		return model.NilOID, err
	}
	return tx.InsertClass(cl.ID, attrs)
}

// InsertClass is Insert by class id.
func (tx *Tx) InsertClass(class model.ClassID, attrs map[string]model.Value) (model.OID, error) {
	if err := tx.ensureBegan(); err != nil {
		return model.NilOID, err
	}
	resolved, err := tx.resolveAttrs(class, attrs)
	if err != nil {
		return model.NilOID, err
	}
	oid, err := tx.db.Store.NewOID(class)
	if err != nil {
		return model.NilOID, err
	}
	if err := tx.abortOn(tx.db.Locks.LockInstanceWrite(tx.id, oid)); err != nil {
		return model.NilOID, err
	}
	obj := model.NewObject(oid)
	for id, v := range resolved {
		obj.Set(id, v)
	}
	if err := tx.applyPut(nil, obj); err != nil {
		return model.NilOID, err
	}
	return oid, nil
}

// Update overwrites the given attributes of an existing object.
func (tx *Tx) Update(oid model.OID, attrs map[string]model.Value) error {
	if err := tx.ensureBegan(); err != nil {
		return err
	}
	if err := tx.abortOn(tx.db.Locks.LockInstanceWrite(tx.id, oid)); err != nil {
		return err
	}
	old, err := tx.db.FetchObject(oid)
	if err != nil {
		return err
	}
	resolved, err := tx.resolveAttrs(oid.Class(), attrs)
	if err != nil {
		return err
	}
	next := old.Clone()
	for id, v := range resolved {
		next.Set(id, v)
	}
	return tx.applyPut(old, next)
}

// Delete removes an object.
func (tx *Tx) Delete(oid model.OID) error {
	if err := tx.ensureBegan(); err != nil {
		return err
	}
	if err := tx.abortOn(tx.db.Locks.LockInstanceWrite(tx.id, oid)); err != nil {
		return err
	}
	old, err := tx.db.FetchObject(oid)
	if err != nil {
		return err
	}
	before := model.EncodeObject(old)
	if _, err := tx.db.Log.Append(wal.Record{
		Txn: tx.id, Type: wal.RecDelete, OID: oid, Before: before,
	}); err != nil {
		return err
	}
	// Version-chain entry before the heap delete: a snapshot reader that
	// misses the record still finds the committed base in the overlay.
	tx.db.Versions.RecordDelete(tx.id, oid, before)
	if err := tx.db.Store.Delete(oid); err != nil {
		return err
	}
	if err := tx.db.Indexes.OnDelete(old); err != nil {
		return err
	}
	tx.undos = append(tx.undos, undo{oid: oid, before: old})
	return nil
}

// applyPut logs, stores and indexes one object write.
func (tx *Tx) applyPut(old, next *model.Object) error {
	rec := wal.Record{Txn: tx.id, Type: wal.RecPut, OID: next.OID, After: model.EncodeObject(next)}
	if old != nil {
		rec.Before = model.EncodeObject(old)
	}
	if _, err := tx.db.Log.Append(rec); err != nil {
		return err
	}
	// Version-chain entry before the heap write (the MVCC ordering
	// protocol): a snapshot reader that observes the uncommitted heap
	// bytes is guaranteed to find the chain shielding them.
	tx.db.Versions.RecordWrite(tx.id, next.OID, rec.Before, rec.After)
	if err := tx.db.Store.Put(next.OID, rec.After); err != nil {
		return err
	}
	if err := tx.db.Indexes.OnPut(old, next); err != nil {
		return err
	}
	tx.undos = append(tx.undos, undo{oid: next.OID, before: old})
	return nil
}

// Rewrite physically relocates an object to the tail of its class
// segment without changing its state: the record is deleted and re-put, so
// it lands on the segment's current tail page. Rewriting a set of objects
// in sequence therefore places them on contiguous pages — the physical
// clustering primitive (Kim §4.2) used by the composite layer's Recluster.
func (tx *Tx) Rewrite(oid model.OID) error {
	if err := tx.ensureBegan(); err != nil {
		return err
	}
	if err := tx.abortOn(tx.db.Locks.LockInstanceWrite(tx.id, oid)); err != nil {
		return err
	}
	old, err := tx.db.FetchObject(oid)
	if err != nil {
		return err
	}
	img := model.EncodeObject(old)
	if _, err := tx.db.Log.Append(wal.Record{
		Txn: tx.id, Type: wal.RecPut, OID: oid, Before: img, After: img,
	}); err != nil {
		return err
	}
	// The relocation leaves the object logically unchanged, but between
	// the delete and the re-put the heap has no record; the chain keeps
	// the image visible to snapshot scans through that window.
	tx.db.Versions.RecordWrite(tx.id, oid, img, img)
	if err := tx.db.Store.Delete(oid); err != nil {
		return err
	}
	if err := tx.db.Store.Put(oid, img); err != nil {
		return err
	}
	tx.undos = append(tx.undos, undo{oid: oid, before: old})
	return nil
}

// Fetch returns the object under a shared lock (snapshot mode: the
// snapshot-visible version, no lock). The returned object is a private
// copy; mutate it freely and write back with Update.
func (tx *Tx) Fetch(oid model.OID) (*model.Object, error) {
	if tx.done {
		return nil, ErrTxnFinished
	}
	if tx.snap {
		return tx.snapshotFetch(oid)
	}
	// Locked reads check the poison latch: a fail-stopped DB retains the
	// failed committer's locks forever, so without the check a reader would
	// block indefinitely instead of learning the engine is dead. (Snapshot
	// reads above stay safe without it — the failed transaction's version
	// chains were never committed, so they shield its heap bytes.)
	if err := tx.db.check(); err != nil {
		return nil, err
	}
	if err := tx.abortOn(tx.db.Locks.LockInstanceRead(tx.id, oid)); err != nil {
		return nil, err
	}
	return tx.db.FetchObject(oid)
}

// LockClassScan takes the class-scan (S) lock footprint over the given
// classes; the query executor calls it before scanning. Snapshot
// transactions skip the lock manager entirely — visibility comes from the
// pinned epoch, so the call is a no-op for them.
func (tx *Tx) LockClassScan(classes []model.ClassID) error {
	if tx.done {
		return ErrTxnFinished
	}
	if tx.snap {
		return nil
	}
	if err := tx.db.check(); err != nil {
		return err
	}
	return tx.abortOn(tx.db.Locks.LockHierarchyRead(tx.id, classes))
}

// Scan iterates the stored instances of exactly one class under a class
// S lock (snapshot mode: the snapshot-visible instances, no lock).
func (tx *Tx) Scan(class model.ClassID, fn func(*model.Object) bool) error {
	if tx.done {
		return ErrTxnFinished
	}
	if tx.snap {
		return tx.snapshotScan(class, fn)
	}
	if err := tx.db.check(); err != nil {
		return err
	}
	if err := tx.abortOn(tx.db.Locks.LockClassRead(tx.id, class)); err != nil {
		return err
	}
	return tx.scanClass(class, fn)
}

// ScanLocked iterates the stored instances of exactly one class, assuming
// the transaction already holds the class S lock (via LockClassScan). It
// acquires no locks and performs no abort handling, so — unlike the rest
// of Tx — it is safe to call from multiple goroutines at once: the query
// executor locks a hierarchy scope up front and then fans the per-class
// scans out in parallel. In snapshot mode no lock is assumed (there is
// none): the scan resolves visibility by epoch instead.
func (tx *Tx) ScanLocked(class model.ClassID, fn func(*model.Object) bool) error {
	if tx.done {
		return ErrTxnFinished
	}
	if tx.snap {
		return tx.snapshotScan(class, fn)
	}
	return tx.scanClass(class, fn)
}

func (tx *Tx) scanClass(class model.ClassID, fn func(*model.Object) bool) error {
	var derr error
	err := tx.db.Store.ScanClass(class, func(oid model.OID, data []byte) bool {
		obj, err := model.DecodeObject(data)
		if err != nil {
			derr = err
			return false
		}
		return fn(obj)
	})
	if err != nil {
		return err
	}
	return derr
}

// Commit makes the transaction durable and releases its locks. For a
// snapshot transaction it simply releases the snapshot. Under
// Options.Durability == DurabilityRelaxed it behaves like CommitAsync.
func (tx *Tx) Commit() error {
	return tx.commitMode(tx.db.opts.Durability == DurabilityRelaxed)
}

// CommitAsync commits without waiting for the commit record to reach disk:
// the write is queued for the WAL writer's next batch and the call returns
// as soon as the record is in the log buffer. Ordering is preserved — the
// log holds commits in commit order, so a crash can only lose a suffix of
// acknowledged-async transactions, never an intermediate one. Locks release
// immediately; a later Commit (full durability) by any transaction also
// hardens every async commit queued before it.
func (tx *Tx) CommitAsync() error {
	return tx.commitMode(true)
}

func (tx *Tx) commitMode(async bool) error {
	if tx.done {
		return ErrTxnFinished
	}
	tx.done = true
	if tx.snap {
		tx.endSnapshot()
		return nil
	}
	// Locks release only on the success path. A commit that fails after its
	// writes reached the heap leaves objects whose durability is unknown;
	// releasing the locks would let other transactions read and build on
	// state a restart may roll back. Fail-stop instead: keep the locks,
	// poison the DB so every subsequent operation reports the fault, and
	// force a reopen (which recovers to the last durable prefix).
	release := true
	defer func() {
		if release {
			tx.db.Locks.ReleaseAll(tx.id)
		}
	}()
	if !tx.began {
		return nil // read-only: nothing to log
	}
	decremented := false
	finish := func() {
		if !decremented {
			decremented = true
			tx.db.activeTxns.Add(-1)
		}
	}
	defer finish()
	// The logged epoch is a conservative watermark: the real epoch is
	// assigned when the versions are stamped below, after the group
	// commit. Recovery only needs a monotonic restart point, and the
	// overlay itself never survives a restart.
	lsn, err := tx.db.Log.Append(wal.Record{
		Txn: tx.id, Type: wal.RecCommit, Epoch: tx.db.Versions.Epoch() + 1,
	})
	if err != nil {
		release = false
		tx.db.poison(fmt.Errorf("txn %d: commit append: %w", tx.id, err))
		return err
	}
	if !tx.db.opts.NoSync {
		if async {
			// Relaxed durability: hand the LSN to the writer and return.
			tx.db.Log.RequestSync(lsn)
		} else if err := tx.db.Log.WaitDurable(lsn); err != nil {
			release = false
			tx.db.poison(fmt.Errorf("txn %d: commit sync: %w", tx.id, err))
			return err
		}
	}
	// Stamp the version chains only after the commit is durable (or, for
	// async mode, queued behind the durability the caller opted out of),
	// matching the locked path's guarantee: no snapshot ever observes a
	// commit the log could still lose under full durability.
	tx.db.Versions.Commit(tx.id)
	// Leave the active set before deciding on a checkpoint, or a lone
	// committer would block its own WAL truncation.
	finish()
	tx.db.maybeCheckpoint()
	return nil
}

// Abort rolls the transaction back: every applied operation is reversed
// (store and indexes) and the reversal is logged as compensation records
// — after a crash, replaying the aborted transaction forward (originals
// then compensations) reproduces the rolled-back state, so recovery never
// undoes an aborted transaction a second time (which could overwrite a
// later committed write once locks are released here). Ends with an abort
// record and lock release.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxnFinished
	}
	tx.done = true
	if tx.snap {
		tx.endSnapshot()
		return nil
	}
	defer tx.db.Locks.ReleaseAll(tx.id)
	// Discard the pending version-chain entries only after the heap is
	// restored below, so snapshot readers stay shielded from the dirty
	// bytes for the whole rollback.
	defer tx.db.Versions.Abort(tx.id)
	if tx.began {
		defer tx.db.activeTxns.Add(-1)
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := len(tx.undos) - 1; i >= 0; i-- {
		u := tx.undos[i]
		cur, _ := tx.db.FetchObject(u.oid) // nil if currently absent
		if u.before != nil {
			img := model.EncodeObject(u.before)
			_, err := tx.db.Log.Append(wal.Record{
				Txn: tx.id, Type: wal.RecPut, OID: u.oid, After: img,
			})
			keep(err)
			keep(tx.db.Store.Put(u.oid, img))
			keep(tx.db.Indexes.OnPut(cur, u.before))
		} else {
			_, err := tx.db.Log.Append(wal.Record{
				Txn: tx.id, Type: wal.RecDelete, OID: u.oid,
			})
			keep(err)
			keep(tx.db.Store.Delete(u.oid))
			if cur != nil {
				keep(tx.db.Indexes.OnDelete(cur))
			}
		}
	}
	if tx.began {
		_, err := tx.db.Log.Append(wal.Record{Txn: tx.id, Type: wal.RecAbort})
		keep(err)
	}
	return firstErr
}

// Do runs fn inside a transaction, committing on nil and aborting on
// error, with one automatic retry after a deadlock abort.
func (db *DB) Do(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			return tx.Commit()
		}
		if !tx.done {
			tx.Abort()
		}
		if err == txn.ErrDeadlock && attempt == 0 {
			continue
		}
		return err
	}
}

// String renders a transaction for diagnostics.
func (tx *Tx) String() string { return fmt.Sprintf("txn(%d)", tx.id) }
