// Package core implements the kimdb database engine: it binds the schema
// catalog, the storage engine, the write-ahead log, the lock manager and
// the index manager into a single object-oriented database satisfying the
// paper's two minimum requirements (Kim §3.1): a core object-oriented data
// model, plus conventional database features (transactions, recovery,
// indexing, declarative queries) with semantics extended to that model.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oodb/internal/index"
	"oodb/internal/model"
	"oodb/internal/mvcc"
	"oodb/internal/obs"
	"oodb/internal/schema"
	"oodb/internal/stats"
	"oodb/internal/storage"
	"oodb/internal/txn"
	"oodb/internal/wal"
)

// Durability selects the commit contract.
type Durability int

// The durability modes.
const (
	// DurabilityFull (the default): Commit returns only after the commit
	// record is fsynced (parked on the WAL's durability watermark).
	DurabilityFull Durability = iota
	// DurabilityRelaxed: every Commit behaves like CommitAsync — the
	// commit record is appended and queued for the WAL writer's next
	// batch, but the call returns without waiting for the fsync. A crash
	// may lose a suffix of recent commits (bounded by the writer's batch
	// window); it can never lose a commit an earlier surviving commit
	// depends on, because WAL order is commit order.
	DurabilityRelaxed
)

// Options configures a database.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (0 = default).
	PoolPages int
	// PoolShards is the number of lock stripes in the buffer pool
	// (0 = default). More shards reduce contention between concurrent
	// readers of unrelated pages.
	PoolShards int
	// CheckpointBytes triggers an automatic checkpoint when the WAL grows
	// past this size (0 = 8 MiB).
	CheckpointBytes int64
	// NoSync skips the fsync at commit. Unsafe; benchmarks only.
	NoSync bool
	// Durability selects the commit contract (default DurabilityFull).
	// Per-transaction override: Tx.CommitAsync.
	Durability Durability
	// ReplayWorkers bounds the parallel redo pass of crash recovery:
	// 0 = GOMAXPROCS, 1 = serial (the differential-test baseline), n > 1 =
	// at most n workers. Redo is partitioned by owning class, which
	// preserves per-object LSN order; the undo pass is always serial.
	ReplayWorkers int
	// WrapDisk and WrapWAL, when set, wrap the storage disk layer and the
	// WAL's backing file — the seams the fault-injection harness
	// (internal/fault) uses to script I/O failures and simulated crashes.
	WrapDisk func(storage.Disk) storage.Disk
	WrapWAL  func(wal.File) wal.File
}

// DB is an open kimdb database.
type DB struct {
	Catalog *schema.Catalog
	Store   *storage.Store
	Log     *wal.WAL
	Locks   *txn.LockManager
	Indexes *index.Manager
	// Stats holds the planner statistics collected by the maintenance
	// subsystem (internal/maint): per-class cardinality and per-attribute
	// distinct/min/max summaries, persisted under the metadata's stats root
	// at every checkpoint. Advisory only — an empty registry just means the
	// planner keeps its heuristic ranking.
	Stats *stats.Registry
	// Versions is the MVCC overlay: per-object version chains and the
	// commit-epoch counter that give snapshot transactions (BeginSnapshot)
	// their lock-free visibility rule. Writers feed it from the Tx write
	// paths; the maintenance sweep vacuums it (see internal/mvcc).
	Versions *mvcc.Manager

	opts       Options
	nextTxn    atomic.Uint64
	activeTxns atomic.Int64 // logged (begun) and unfinished transactions

	// ddlMu serializes DDL (schema evolution is rare and heavyweight:
	// catalog change + instance/index maintenance + checkpoint).
	ddlMu sync.Mutex

	// ckptMu fences WAL truncation against transaction begin: a
	// transaction logs its begin record and raises activeTxns under the
	// read side, the checkpoint checks activeTxns and truncates under the
	// write side. Without the fence, Checkpoint can observe zero active
	// transactions, then a begin record (and first data record) lands in
	// the log just before Reset truncates it — an acknowledged commit of
	// that transaction would then lose its records.
	ckptMu sync.RWMutex

	closed atomic.Bool

	// Fail-stop poison latch: set when a commit fails after its effects
	// reached the heap (WAL append or durability wait failed). The failed
	// transaction's locks are retained and every subsequent locked
	// operation returns ErrPoisoned — releasing the locks would expose
	// heap bytes that were neither made durable nor rolled back. Recovery
	// is a reopen, which replays the durable WAL prefix.
	poisoned    atomic.Bool
	poisonMu    sync.Mutex
	poisonCause error
}

// Sentinel errors of the engine layer.
var (
	ErrClosed      = errors.New("core: database closed")
	ErrTxnFinished = errors.New("core: transaction already committed or aborted")
	ErrNoObject    = storage.ErrNoObject
	// ErrPoisoned reports a database fail-stopped by a failed commit; see
	// DB.poison. Every error returned after the latch wraps ErrPoisoned
	// and the original cause.
	ErrPoisoned = errors.New("core: database fail-stopped by a failed commit (reopen to recover)")
)

// poison latches the database into its fail-stop state (first cause wins).
func (db *DB) poison(cause error) {
	db.poisonMu.Lock()
	if !db.poisoned.Load() {
		db.poisonCause = cause
		db.poisoned.Store(true)
		mFailStop.Add(1)
		obs.Logf("core: fail-stop: %v", cause)
	}
	db.poisonMu.Unlock()
}

// FailStopped returns nil while the database is healthy, or the poison
// error — wrapping ErrPoisoned and the original cause — once a failed
// commit has fail-stopped it.
func (db *DB) FailStopped() error {
	if !db.poisoned.Load() {
		return nil
	}
	db.poisonMu.Lock()
	defer db.poisonMu.Unlock()
	return fmt.Errorf("%w: %w", ErrPoisoned, db.poisonCause)
}

// check gates every transactional entry point on the closed and poison
// latches.
func (db *DB) check() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return db.FailStopped()
}

// Open opens (or creates) a database in dir. The directory holds two
// files: data.kdb (pages) and log.wal (the write-ahead log). Open runs
// crash recovery: committed work since the last checkpoint is redone,
// uncommitted work is undone, and all indexes are rebuilt.
func Open(dir string, opts Options) (*DB, error) {
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create %s: %w", dir, err)
	}
	dataPath := filepath.Join(dir, "data.kdb")
	// The WAL opens first: pages torn by a crash mid-write are physically
	// restored from their logged full-page images before the store scans
	// anything (WAL-before-data, so an image always exists for such pages).
	log, records, err := wal.OpenWith(filepath.Join(dir, "log.wal"), opts.WrapWAL)
	if err != nil {
		return nil, err
	}
	if imgs := wal.PageImages(records); len(imgs) > 0 {
		if _, err := storage.RestoreTornPages(dataPath, imgs); err != nil {
			log.Close()
			return nil, fmt.Errorf("core: page-image restore failed: %w", err)
		}
	}
	store, err := storage.Open(dataPath, storage.Options{
		PoolPages:  opts.PoolPages,
		PoolShards: opts.PoolShards,
		WrapDisk:   opts.WrapDisk,
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	// From here on, in-place page writes log full-page images first.
	store.Pool().SetPageLogger(pageLogger{log: log, noSync: opts.NoSync})

	// Restore the catalog persisted at the last checkpoint (or start
	// fresh).
	cat := schema.NewCatalog()
	if head := store.Disk().GetRoot(storage.RootCatalog); head != storage.InvalidPage {
		blob, err := store.Pool().ReadBlob(head)
		if err != nil {
			store.Close()
			log.Close()
			return nil, err
		}
		cat, err = schema.DecodeCatalog(blob)
		if err != nil {
			store.Close()
			log.Close()
			return nil, err
		}
	}

	// Restore planner statistics from the stats root. Tolerant: stats are
	// advisory, so a missing or undecodable blob (e.g. written by an older
	// format) degrades to an empty registry, never a failed open.
	reg := stats.NewRegistry()
	if head := store.Disk().GetRoot(storage.RootStats); head != storage.InvalidPage {
		if blob, err := store.Pool().ReadBlob(head); err == nil {
			if dec, err := stats.DecodeRegistry(blob); err == nil {
				reg = dec
			}
		}
	}

	db := &DB{
		Catalog:  cat,
		Store:    store,
		Log:      log,
		Locks:    txn.NewLockManager(),
		Stats:    reg,
		Versions: mvcc.NewManager(),
		opts:     opts,
	}
	db.Indexes = index.NewManager(cat, db)

	// Crash recovery: logical redo of winners, undo of losers. Replay runs
	// with stub-driven frees suppressed — a stub read back from the heap
	// may predate the records being replayed (its page can have reverted
	// in the crash), so the chain it names is not trustworthy to free.
	if len(records) > 0 {
		store.Pool().SetRecovering(true)
		err := db.replay(records)
		store.Pool().SetRecovering(false)
		if err != nil {
			store.Close()
			log.Close()
			return nil, fmt.Errorf("core: recovery failed: %w", err)
		}
	}

	// Recreate index definitions and rebuild contents from class scans.
	if head := store.Disk().GetRoot(storage.RootIndexTable); head != storage.InvalidPage {
		blob, err := store.Pool().ReadBlob(head)
		if err != nil {
			store.Close()
			log.Close()
			return nil, err
		}
		defs, err := index.DecodeDefs(blob)
		if err != nil {
			store.Close()
			log.Close()
			return nil, err
		}
		for _, d := range defs {
			if err := db.buildIndex(d.Name, d.Class, d.Path, d.Hierarchy); err != nil {
				store.Close()
				log.Close()
				return nil, err
			}
		}
	}

	// Recovery done: checkpoint so the log starts clean.
	if len(records) > 0 {
		if err := db.Checkpoint(); err != nil {
			store.Close()
			log.Close()
			return nil, err
		}
	}
	return db, nil
}

// Close checkpoints and closes the database. A poisoned database skips the
// checkpoint — flushing the pool could persist heap state whose undo
// information never became durable — and returns the poison error after
// releasing the files; the next Open recovers from the durable WAL prefix.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if err := db.FailStopped(); err != nil {
		db.Store.CloseNoFlush()
		db.Log.Close()
		return err
	}
	if err := db.Checkpoint(); err != nil {
		db.Store.Close()
		db.Log.Close()
		return err
	}
	if err := db.Store.Close(); err != nil {
		db.Log.Close()
		return err
	}
	return db.Log.Close()
}

// Checkpoint makes the on-disk state self-contained: catalog, index
// definitions, segment table and planner statistics are persisted, every
// dirty page is flushed, and — when no transactions are in flight — the
// WAL is truncated. With active transactions the truncation is skipped:
// their undo information must survive, because the flush may have written
// their uncommitted page state. The flushed prefix is still safe to replay
// (logical redo is idempotent), so skipping truncation costs only log
// space.
//
// All four system blobs move under a single metadata write (SwapBlobs): a
// crash during the checkpoint leaves either every root pointing at the old
// blobs or every root pointing at the new ones, never a mix — the
// metadata-swap window that three sequential ReplaceBlob calls used to
// leave open (catalog new, segment table old ⇒ a recreated class scanning
// a freed segment) is gone.
func (db *DB) Checkpoint() error {
	// Fail-stop: a poisoned engine must not flush the pool (uncommitted
	// heap state, no durable undo) or truncate the log.
	if err := db.FailStopped(); err != nil {
		return err
	}
	if err := db.checkpointBody(); err != nil {
		return err
	}
	// Truncate under the begin fence: after taking the write side, the
	// active count is exact — no transaction can slip its begin record into
	// the log between the check and the Reset (see ckptMu).
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.activeTxns.Load() != 0 {
		mCkptSkipped.Add(1)
		return nil // keep the log: in-flight undo information lives there
	}
	return db.Log.Reset()
}

// checkpointBody is the fence-free first half of Checkpoint: flush every
// dirty page, then move all four system roots in one atomic swap. Shared
// with ReclaimLeakedWait, which runs it while already holding the begin
// fence (Checkpoint itself must not, since it takes the fence afterwards).
func (db *DB) checkpointBody() error {
	t0 := time.Now()
	defer func() { mCkptNs.Observe(uint64(time.Since(t0))) }()
	pool := db.Store.Pool()
	// Flush data pages BEFORE the root swap: the new segment table may name
	// freshly written chains (a compaction's rewritten heap), and publishing
	// a root over pages still dirty in the pool would lose committed rows on
	// a crash between the swap and the flush.
	if err := pool.FlushAll(); err != nil {
		return err
	}
	return pool.SwapBlobs(map[storage.MetaRoot][]byte{
		storage.RootCatalog:    schema.EncodeCatalog(db.Catalog),
		storage.RootIndexTable: index.EncodeDefs(db.Indexes),
		storage.RootSegTable:   db.Store.EncodeSegTable(),
		storage.RootStats:      db.Stats.Encode(),
	})
}

// pageLogger adapts the WAL to the buffer pool's full-page-image hook.
// With NoSync the flush skips the fsync, consistent with commits: the
// NoSync mode trades crash safety for speed across the board.
type pageLogger struct {
	log    *wal.WAL
	noSync bool
}

func (l pageLogger) LogPageImage(id storage.PageID, img []byte) error {
	_, err := l.log.Append(wal.Record{Type: wal.RecPageImage, OID: model.OID(id), After: img})
	return err
}

func (l pageLogger) FlushImages() error {
	if l.noSync {
		return nil
	}
	return l.log.Sync()
}

// maybeCheckpoint checkpoints when the WAL has outgrown the configured
// threshold. Called at commit boundaries. A failed auto-checkpoint is
// survivable — the WAL stays in place, so durability is unaffected — but
// it must not be silent: the log keeps growing and the failure cause
// (a sick disk, a poisoned engine) is operationally significant, so it
// counts in core_checkpoint_errors_total and emits an obs log line.
func (db *DB) maybeCheckpoint() {
	size, err := db.Log.Size()
	if err != nil || size < db.opts.CheckpointBytes {
		return
	}
	if err := db.Checkpoint(); err != nil {
		mCkptErrors.Add(1)
		obs.Logf("core: auto-checkpoint failed (WAL retained at %d bytes): %v", size, err)
	}
}

// replay applies recovered WAL records: redo committed transactions, then
// undo uncommitted ones in reverse order. Both passes are idempotent (Put
// is an upsert keyed by OID; Delete of a missing object is a no-op).
//
// The redo pass parallelizes by partitioning ops on their owning class
// (Options.ReplayWorkers): a worker applies its classes' ops in LSN order,
// so per-object redo order — the only order last-writer-wins replay
// depends on — is exactly the serial pass's, and two workers never touch
// the same class segment. The undo pass stays serial: its reverse-LSN
// before-image restores can cross classes in ways that do not commute.
func (db *DB) replay(records []wal.Record) error {
	t0 := time.Now()
	defer func() { mReplayNs.Observe(uint64(time.Since(t0))) }()
	a := wal.Analyze(records)
	// Restore the commit-epoch watermark from the logged commit records.
	// The overlay itself stays empty: replay reconstructs a fully
	// committed heap, so every recovered snapshot reads committed truth.
	var maxEpoch uint64
	for _, r := range records {
		if r.Type == wal.RecCommit && r.Epoch > maxEpoch {
			maxEpoch = r.Epoch
		}
	}
	db.Versions.RestoreEpoch(maxEpoch)
	redo := a.RedoOps()
	mReplayOps.Add(uint64(len(redo)))
	workers := db.opts.ReplayWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below ~2 ops per potential worker the fan-out costs more than the
	// work; fall back to the serial loop.
	if workers > 1 && len(redo) >= 2*workers {
		if err := db.redoParallel(redo, workers); err != nil {
			return err
		}
	} else {
		mReplayWorkers.Set(1)
		for _, r := range redo {
			if err := db.redoOne(r); err != nil {
				return err
			}
		}
	}
	for _, r := range a.UndoOps() {
		if r.Before != nil {
			if err := tolerateDropped(db.Store.Put(r.OID, r.Before)); err != nil {
				return err
			}
		} else if err := tolerateDropped(db.Store.Delete(r.OID)); err != nil {
			return err
		}
	}
	return nil
}

// tolerateDropped absorbs replay of a record targeting a class dropped
// after it was logged (DDL checkpoints persist the catalog immediately,
// but the log survives a checkpoint taken under active transactions):
// such writes are moot.
func tolerateDropped(err error) error {
	if errors.Is(err, storage.ErrNoSegment) {
		return nil
	}
	return err
}

// redoOne applies a single redo record.
func (db *DB) redoOne(r wal.Record) error {
	switch r.Type {
	case wal.RecPut:
		return tolerateDropped(db.Store.Put(r.OID, r.After))
	case wal.RecDelete:
		return tolerateDropped(db.Store.Delete(r.OID))
	}
	return nil
}

// redoParallel fans the redo pass out across at most `workers` goroutines,
// partitioned by owning class with a deterministic greedy balance (largest
// class first onto the lightest worker). Safe because the storage layer is
// internally latched for concurrent writers, classes map to disjoint
// segments, and per-class op order is preserved.
func (db *DB) redoParallel(redo []wal.Record, workers int) error {
	classOps := make(map[model.ClassID][]wal.Record)
	var classes []model.ClassID
	for _, r := range redo {
		c := r.OID.Class()
		if _, ok := classOps[c]; !ok {
			classes = append(classes, c)
		}
		classOps[c] = append(classOps[c], r)
	}
	if len(classes) < 2 {
		mReplayWorkers.Set(1)
		for _, r := range redo {
			if err := db.redoOne(r); err != nil {
				return err
			}
		}
		return nil
	}
	sort.Slice(classes, func(i, j int) bool {
		ni, nj := len(classOps[classes[i]]), len(classOps[classes[j]])
		if ni != nj {
			return ni > nj
		}
		return classes[i] < classes[j]
	})
	if workers > len(classes) {
		workers = len(classes)
	}
	buckets := make([][]model.ClassID, workers)
	loads := make([]int, workers)
	for _, c := range classes {
		k := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[k] {
				k = i
			}
		}
		buckets[k] = append(buckets[k], c)
		loads[k] += len(classOps[c])
	}
	mReplayWorkers.Set(int64(workers))
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for _, b := range buckets {
		wg.Add(1)
		go func(cs []model.ClassID) {
			defer wg.Done()
			for _, c := range cs {
				for _, r := range classOps[c] {
					if err := db.redoOne(r); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// FetchObject returns the last stored state of oid, without locking: the
// read-uncommitted path used by method bodies, index maintenance and the
// workspace. Transactional reads go through Tx.Fetch.
func (db *DB) FetchObject(oid model.OID) (*model.Object, error) {
	data, err := db.Store.Get(oid)
	if err != nil {
		return nil, err
	}
	return model.DecodeObject(data)
}

// AttrValue reads an attribute of an object by name, applying inheritance
// and the class default for unset attributes — the read-side half of lazy
// schema evolution (an instance written before AddAttribute reads the new
// attribute's default).
func (db *DB) AttrValue(obj *model.Object, name string) (model.Value, error) {
	a, err := db.Catalog.ResolveAttr(obj.Class(), name)
	if err != nil {
		return model.Null, err
	}
	if v, ok := obj.Lookup(a.ID); ok {
		return v, nil
	}
	return a.Default, nil
}

// Send dispatches a message to an object with late binding (Kim §3.1
// model 6): the method is resolved starting at the instance's class and
// walking up the hierarchy; the body runs with this database as its
// engine.
func (db *DB) Send(oid model.OID, message string, args ...model.Value) (model.Value, error) {
	obj, err := db.FetchObject(oid)
	if err != nil {
		return model.Null, err
	}
	m, err := db.Catalog.ResolveMethod(obj.Class(), message)
	if err != nil {
		return model.Null, err
	}
	if m.Impl == nil {
		return model.Null, fmt.Errorf("core: method %q has no registered implementation (register after open)", message)
	}
	return m.Impl(db, obj, args)
}

// interface conformance: the engine is the method-execution environment
// and the index manager's object fetcher.
var (
	_ schema.MethodEngine = (*DB)(nil)
	_ index.Fetcher       = (*DB)(nil)
)
