package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/storage"
	"oodb/internal/wal"
)

// testDB opens a fresh database with the Figure 1 vehicle schema.
type testDB struct {
	*DB
	dir                                   string
	vehicle, auto, truck, company, autoCo *schema.Class
}

func openVehicleDB(t *testing.T) *testDB {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	td := &testDB{DB: db, dir: dir}
	td.company, err = db.DefineClass("Company", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "location", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	td.autoCo, _ = db.DefineClass("AutoCompany", []model.ClassID{td.company.ID})
	td.vehicle, err = db.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "weight", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "manufacturer", Domain: td.company.ID})
	if err != nil {
		t.Fatal(err)
	}
	td.auto, _ = db.DefineClass("Automobile", []model.ClassID{td.vehicle.ID})
	td.truck, _ = db.DefineClass("Truck", []model.ClassID{td.vehicle.ID},
		schema.AttrSpec{Name: "payload", Domain: schema.ClassInteger})
	return td
}

func (td *testDB) mustInsert(t *testing.T, class string, attrs map[string]model.Value) model.OID {
	t.Helper()
	var oid model.OID
	err := td.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.Insert(class, attrs)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestInsertFetchRoundTrip(t *testing.T) {
	td := openVehicleDB(t)
	maker := td.mustInsert(t, "Company", map[string]model.Value{
		"name": model.String("GM"), "location": model.String("Detroit"),
	})
	oid := td.mustInsert(t, "Vehicle", map[string]model.Value{
		"weight": model.Int(8000), "manufacturer": model.Ref(maker),
	})
	tx := td.Begin()
	defer tx.Commit()
	obj, err := tx.Fetch(oid)
	if err != nil {
		t.Fatal(err)
	}
	w, err := td.AttrValue(obj, "weight")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := w.AsInt(); v != 8000 {
		t.Errorf("weight = %v", w)
	}
	m, _ := td.AttrValue(obj, "manufacturer")
	ref, _ := m.AsRef()
	if ref != maker {
		t.Errorf("manufacturer = %v, want %v", ref, maker)
	}
}

func TestDomainViolationRejected(t *testing.T) {
	td := openVehicleDB(t)
	err := td.Do(func(tx *Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{"weight": model.String("heavy")})
		return err
	})
	if !errors.Is(err, schema.ErrDomain) {
		t.Fatalf("expected ErrDomain, got %v", err)
	}
	// Reference to the wrong class rejected too.
	v := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(1)})
	err = td.Do(func(tx *Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{"manufacturer": model.Ref(v)})
		return err
	})
	if !errors.Is(err, schema.ErrDomain) {
		t.Fatalf("expected ErrDomain for wrong ref class, got %v", err)
	}
}

func TestSubclassInstanceSatisfiesDomain(t *testing.T) {
	td := openVehicleDB(t)
	ac := td.mustInsert(t, "AutoCompany", map[string]model.Value{"name": model.String("Toyota")})
	err := td.Do(func(tx *Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{"manufacturer": model.Ref(ac)})
		return err
	})
	if err != nil {
		t.Fatalf("AutoCompany should satisfy Company domain: %v", err)
	}
}

func TestInheritedAttributeOnSubclass(t *testing.T) {
	td := openVehicleDB(t)
	oid := td.mustInsert(t, "Truck", map[string]model.Value{
		"weight": model.Int(9000), "payload": model.Int(4000),
	})
	if oid.Class() != td.truck.ID {
		t.Fatalf("class = %d", oid.Class())
	}
	obj, _ := td.FetchObject(oid)
	w, _ := td.AttrValue(obj, "weight")
	if v, _ := w.AsInt(); v != 9000 {
		t.Error("inherited attribute lost")
	}
}

func TestAbortRollsBackStoreAndIndexes(t *testing.T) {
	td := openVehicleDB(t)
	if err := td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true); err != nil {
		t.Fatal(err)
	}
	pre := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(100)})

	tx := td.Begin()
	ins, err := tx.Insert("Vehicle", map[string]model.Value{"weight": model.Int(200)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(pre, map[string]model.Value{"weight": model.Int(300)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	// Inserted object gone.
	if _, err := td.FetchObject(ins); !errors.Is(err, ErrNoObject) {
		t.Errorf("aborted insert visible: %v", err)
	}
	// Update reversed.
	obj, _ := td.FetchObject(pre)
	w, _ := td.AttrValue(obj, "weight")
	if v, _ := w.AsInt(); v != 100 {
		t.Errorf("aborted update visible: %v", w)
	}
	// Index agrees.
	idx, _ := td.Indexes.Get("w")
	if got := idx.Lookup(model.Int(100), nil); len(got) != 1 {
		t.Errorf("index lost pre-image: %v", got)
	}
	if got := idx.Lookup(model.Int(200), nil); got != nil {
		t.Errorf("index kept aborted insert: %v", got)
	}
	if got := idx.Lookup(model.Int(300), nil); got != nil {
		t.Errorf("index kept aborted update: %v", got)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	var oids []model.OID
	db.Do(func(tx *Tx) error {
		for i := 0; i < 50; i++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Catalog.ClassByName("P"); err != nil {
		t.Fatal("catalog lost")
	}
	for i, oid := range oids {
		obj, err := db2.FetchObject(oid)
		if err != nil {
			t.Fatalf("object %d lost: %v", i, err)
		}
		n, _ := db2.AttrValue(obj, "n")
		if v, _ := n.AsInt(); v != int64(i) {
			t.Fatalf("object %d corrupted", i)
		}
	}
}

// crash simulates a crash: the store file keeps whatever was flushed, the
// WAL keeps synced records, and nothing graceful runs. We reopen from the
// same directory.
func TestCrashRecoveryCommittedSurvives(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})

	var committed model.OID
	db.Do(func(tx *Tx) error {
		var err error
		committed, err = tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(7)})
		return err
	})

	// An uncommitted transaction in flight at the crash.
	tx := db.Begin()
	loser, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(666)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(committed, map[string]model.Value{"n": model.Int(999)}); err != nil {
		t.Fatal(err)
	}
	// Force the loser's dirty state to disk (evictions could do this in
	// production), then "crash" without commit/close.
	if err := db.Store.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	db.Log.Sync() // loser ops are durable in the log, but no commit record

	// Crash: reopen without Close.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	// Committed object survives with its committed value.
	obj, err := db2.FetchObject(committed)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := db2.AttrValue(obj, "n")
	if v, _ := n.AsInt(); v != 7 {
		t.Fatalf("committed value = %v, want 7 (loser update must be undone)", n)
	}
	// Loser insert is gone.
	if _, err := db2.FetchObject(loser); !errors.Is(err, ErrNoObject) {
		t.Fatalf("loser insert survived crash: %v", err)
	}
}

func TestCrashRecoveryRedo(t *testing.T) {
	// Committed work that never reached the data file (no checkpoint, no
	// flush) must be redone from the log alone.
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	// DefineClass checkpointed; subsequent DML lives only in WAL + buffer.
	var oid model.OID
	db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(42)})
		return err
	})
	// Crash without flushing pages or closing.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	obj, err := db2.FetchObject(oid)
	if err != nil {
		t.Fatalf("committed insert lost (redo failed): %v", err)
	}
	n, _ := db2.AttrValue(obj, "n")
	if v, _ := n.AsInt(); v != 42 {
		t.Fatal("redo applied wrong image")
	}
}

func TestIndexesRebuiltOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	db.CreateIndex("pn", cl.ID, []string{"n"}, true)
	db.Do(func(tx *Tx) error {
		for i := 0; i < 30; i++ {
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i % 5))}); err != nil {
				return err
			}
		}
		return nil
	})
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	idx, err := db2.Indexes.Get("pn")
	if err != nil {
		t.Fatal("index definition lost across reopen")
	}
	if got := idx.Lookup(model.Int(3), nil); len(got) != 6 {
		t.Fatalf("rebuilt index lookup = %d entries, want 6", len(got))
	}
}

func TestLateBindingSendAndOverride(t *testing.T) {
	td := openVehicleDB(t)
	// describe on Vehicle; Truck overrides.
	if err := td.AddMethod(td.vehicle.ID, "describe", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		return model.String("a vehicle"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := td.AddMethod(td.truck.ID, "describe", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		return model.String("a truck"), nil
	}); err != nil {
		t.Fatal(err)
	}
	car := td.mustInsert(t, "Automobile", map[string]model.Value{"weight": model.Int(1)})
	truck := td.mustInsert(t, "Truck", map[string]model.Value{"weight": model.Int(2)})

	// Automobile has no describe: late binding walks up to Vehicle.
	got, err := td.Send(car, "describe")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.AsString(); s != "a vehicle" {
		t.Errorf("Send(car) = %v", got)
	}
	got, _ = td.Send(truck, "describe")
	if s, _ := got.AsString(); s != "a truck" {
		t.Errorf("Send(truck) = %v", got)
	}
	// Unknown message.
	if _, err := td.Send(car, "fly"); err == nil {
		t.Error("unknown message accepted")
	}
}

func TestMethodsCanSendAndFetch(t *testing.T) {
	td := openVehicleDB(t)
	// makerLocation fetches the referenced company through the engine.
	err := td.AddMethod(td.vehicle.ID, "makerLocation", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		for _, a := range recv.AttrVals() {
			_ = a
		}
		mref, err := td.AttrValue(recv, "manufacturer")
		if err != nil {
			return model.Null, err
		}
		oid, ok := mref.AsRef()
		if !ok {
			return model.Null, nil
		}
		maker, err := eng.FetchObject(oid)
		if err != nil {
			return model.Null, err
		}
		return td.AttrValue(maker, "location")
	})
	if err != nil {
		t.Fatal(err)
	}
	maker := td.mustInsert(t, "Company", map[string]model.Value{"location": model.String("Detroit")})
	v := td.mustInsert(t, "Vehicle", map[string]model.Value{"manufacturer": model.Ref(maker)})
	got, err := td.Send(v, "makerLocation")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.AsString(); s != "Detroit" {
		t.Errorf("makerLocation = %v", got)
	}
}

func TestLazyEvolutionDefaults(t *testing.T) {
	td := openVehicleDB(t)
	oid := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(1)})
	// Add an attribute after the instance exists.
	if _, err := td.AddAttribute(td.vehicle.ID, schema.AttrSpec{
		Name: "color", Domain: schema.ClassString, Default: model.String("white"),
	}); err != nil {
		t.Fatal(err)
	}
	obj, _ := td.FetchObject(oid)
	c, err := td.AttrValue(obj, "color")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := c.AsString(); s != "white" {
		t.Errorf("lazy default = %v", c)
	}
	// Writing it overrides the default.
	td.Do(func(tx *Tx) error {
		return tx.Update(oid, map[string]model.Value{"color": model.String("red")})
	})
	obj, _ = td.FetchObject(oid)
	c, _ = td.AttrValue(obj, "color")
	if s, _ := c.AsString(); s != "red" {
		t.Errorf("written value = %v", c)
	}
}

func TestDropAttributeDropsCoveringIndexes(t *testing.T) {
	td := openVehicleDB(t)
	td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true)
	td.CreateIndex("loc", td.vehicle.ID, []string{"manufacturer", "location"}, true)
	if err := td.DropAttribute(td.vehicle.ID, "weight"); err != nil {
		t.Fatal(err)
	}
	if _, err := td.Indexes.Get("w"); err == nil {
		t.Error("index on dropped attribute survived")
	}
	if _, err := td.Indexes.Get("loc"); err != nil {
		t.Error("unrelated index dropped")
	}
}

func TestDropClassRemovesInstances(t *testing.T) {
	td := openVehicleDB(t)
	leaf, _ := td.DefineClass("Moped", []model.ClassID{td.vehicle.ID})
	var oid model.OID
	td.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(leaf.ID, map[string]model.Value{"weight": model.Int(90)})
		return err
	})
	if err := td.DropClass(leaf.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := td.FetchObject(oid); !errors.Is(err, ErrNoObject) {
		t.Error("instance survived class drop")
	}
	if _, err := td.Catalog.ClassByName("Moped"); err == nil {
		t.Error("class survived drop")
	}
}

func TestAddSuperclassExtendsIndexCoverage(t *testing.T) {
	td := openVehicleDB(t)
	td.CreateIndex("w", td.vehicle.ID, []string{"weight"}, true)
	// A standalone class with compatible data, initially outside the
	// hierarchy.
	bike, _ := td.DefineClass("Bicycle", nil)
	var oid model.OID
	td.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.InsertClass(bike.ID, nil)
		return err
	})
	_ = oid
	// Link it under Vehicle: it inherits weight and joins the CH index
	// coverage (no data yet — but new inserts get indexed).
	if err := td.AddSuperclass(bike.ID, td.vehicle.ID); err != nil {
		t.Fatal(err)
	}
	td.Do(func(tx *Tx) error {
		_, err := tx.InsertClass(bike.ID, map[string]model.Value{"weight": model.Int(12)})
		return err
	})
	idx, _ := td.Indexes.Get("w")
	if got := idx.Lookup(model.Int(12), nil); len(got) != 1 {
		t.Fatalf("bicycle not covered by CH index after AddSuperclass: %v", got)
	}
}

func TestScanIsolationClassLock(t *testing.T) {
	td := openVehicleDB(t)
	for i := 0; i < 10; i++ {
		td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(int64(i))})
	}
	tx := td.Begin()
	n := 0
	if err := tx.Scan(td.vehicle.ID, func(*model.Object) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scan saw %d", n)
	}
	tx.Commit()
}

func TestDoRetriesDeadlock(t *testing.T) {
	// Two transactions updating a, b in opposite orders; Do's retry must
	// let both complete eventually.
	td := openVehicleDB(t)
	a := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(1)})
	b := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(2)})
	done := make(chan error, 2)
	run := func(first, second model.OID) {
		done <- td.Do(func(tx *Tx) error {
			if err := tx.Update(first, map[string]model.Value{"weight": model.Int(10)}); err != nil {
				return err
			}
			if err := tx.Update(second, map[string]model.Value{"weight": model.Int(20)}); err != nil {
				return err
			}
			return nil
		})
	}
	go run(a, b)
	go run(b, a)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func TestAutoCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "s", Domain: schema.ClassString})
	payload := model.String(string(make([]byte, 512)))
	for i := 0; i < 20; i++ {
		db.Do(func(tx *Tx) error {
			_, err := tx.InsertClass(cl.ID, map[string]model.Value{"s": payload})
			return err
		})
	}
	size, _ := db.Log.Size()
	if size > 8192 {
		t.Fatalf("WAL grew to %d bytes; auto-checkpoint never fired", size)
	}
}

func TestTxFinishedGuards(t *testing.T) {
	td := openVehicleDB(t)
	tx := td.Begin()
	tx.Commit()
	if _, err := tx.Insert("Vehicle", nil); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("Insert after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestWALRecordsHaveBeforeImages(t *testing.T) {
	// White-box: an update logs both images (needed for undo).
	td := openVehicleDB(t)
	oid := td.mustInsert(t, "Vehicle", map[string]model.Value{"weight": model.Int(1)})
	td.Do(func(tx *Tx) error {
		return tx.Update(oid, map[string]model.Value{"weight": model.Int(2)})
	})
	td.Log.Sync()
	// Read the WAL file directly.
	recs := readWAL(t, td.dir)
	var found bool
	for _, r := range recs {
		if r.Type == wal.RecPut && r.OID == oid && r.Before != nil {
			found = true
		}
	}
	if !found {
		t.Error("update logged without before-image")
	}
}

func readWAL(t *testing.T, dir string) []wal.Record {
	t.Helper()
	// Open a second handle on the log for inspection.
	tmp := filepath.Join(t.TempDir(), "copy.wal")
	data, err := os.ReadFile(filepath.Join(dir, "log.wal"))
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(tmp, data, 0o644)
	w, recs, err := wal.Open(tmp)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	return recs
}

func TestManyObjectsAcrossCheckpointAndCrash(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	cl, _ := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	for i := 0; i < 10; i++ {
		db.Do(func(tx *Tx) error {
			for j := 0; j < 20; j++ {
				if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(j))}); err != nil {
					return err
				}
			}
			return nil
		})
		if i == 4 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash without close.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Store.Count(cl.ID); got != 200 {
		t.Fatalf("Count = %d, want 200", got)
	}
}

func TestOpenRejectsCorruptDataFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "data.kdb"), make([]byte, storage.PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	// A zero metadata page has no magic; Open must fail, not panic.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("garbage data file accepted")
	}
}

func ExampleDB_Send() {
	dir, _ := os.MkdirTemp("", "kimdb")
	defer os.RemoveAll(dir)
	db, _ := Open(dir, Options{})
	defer db.Close()
	shape, _ := db.DefineClass("Shape", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	db.AddMethod(shape.ID, "display", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		return model.String("displaying a shape"), nil
	})
	var oid model.OID
	db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.Insert("Shape", map[string]model.Value{"name": model.String("box")})
		return err
	})
	out, _ := db.Send(oid, "display")
	s, _ := out.AsString()
	fmt.Println(s)
	// Output: displaying a shape
}
