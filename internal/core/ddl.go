package core

import (
	"fmt"

	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/storage"
)

// DDL operations. Schema evolution is auto-committed: each operation takes
// exclusive class locks (under a dedicated transaction id), mutates the
// catalog, maintains affected instances and indexes, and checkpoints so
// catalog and data are durably consistent — the engine's invariant that WAL
// replay never needs to reconstruct DDL.

// ddl runs fn with exclusive locks on the given classes.
func (db *DB) ddl(classes []model.ClassID, fn func() error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	id := db.nextTxn.Add(1)
	defer db.Locks.ReleaseAll(id)
	for _, c := range classes {
		if err := db.Locks.LockClassWrite(id, c); err != nil {
			return err
		}
	}
	if err := fn(); err != nil {
		return err
	}
	return db.Checkpoint()
}

// DefineClass creates a class (see schema.Catalog.DefineClass) and its
// storage segment.
func (db *DB) DefineClass(name string, supers []model.ClassID, attrs ...schema.AttrSpec) (*schema.Class, error) {
	var cl *schema.Class
	err := db.ddl(nil, func() error {
		var err error
		cl, err = db.Catalog.DefineClass(name, supers, attrs...)
		if err != nil {
			return err
		}
		return db.Store.CreateSegment(cl.ID)
	})
	return cl, err
}

// DropClass deletes every instance of the class, removes indexes rooted at
// it, and drops it from the catalog (subclasses re-link per Banerjee).
//
// Destruction is ordered after durability: inside the DDL critical
// section the segment is only *detached* (catalog, segment table and
// directory stop naming it), and ddl's closing checkpoint makes that
// removal durable. Only then are the segment's pages physically freed.
// Freeing first — the old behavior — destroyed committed heap pages in
// place before the checkpoint; a crash in that window reopened with a
// catalog still naming the class but its pages free-sealed, losing
// committed objects that predate the last checkpoint (no WAL redo exists
// for them). A crash after the checkpoint but before the frees merely
// leaks the pages, which the accountant (Store.AccountPages) counts.
func (db *DB) DropClass(class model.ClassID) error {
	var detached *storage.DetachedSegment
	err := db.ddl([]model.ClassID{class}, func() error {
		// Unindex the class's instances everywhere, then detach the segment.
		err := db.Store.ScanClass(class, func(oid model.OID, data []byte) bool {
			if obj, derr := model.DecodeObject(data); derr == nil {
				_ = db.Indexes.OnDelete(obj)
			}
			return true
		})
		if err != nil {
			return err
		}
		detached = db.Store.DetachSegment(class)
		// Indexes rooted at the dropped class are dropped with it.
		for _, idx := range db.Indexes.All() {
			if idx.Class == class {
				_ = db.Indexes.Drop(idx.Name)
			}
		}
		db.Stats.Remove(class)
		_, err = db.Catalog.DropClass(class)
		return err
	})
	if err != nil {
		return err
	}
	return db.Store.FreeDetached(detached)
}

// AddAttribute adds an attribute to a class. Existing instances are
// untouched: they read the attribute's default until first written (lazy
// evolution; see AttrValue).
func (db *DB) AddAttribute(class model.ClassID, spec schema.AttrSpec) (*schema.Attribute, error) {
	var attr *schema.Attribute
	err := db.ddl([]model.ClassID{class}, func() error {
		var err error
		attr, _, err = db.Catalog.AddAttribute(class, spec)
		return err
	})
	return attr, err
}

// DropAttribute removes a locally defined attribute. Indexes whose path
// uses the attribute are dropped, and stored values become inert (attribute
// ids are never reused).
func (db *DB) DropAttribute(class model.ClassID, name string) error {
	a, err := db.Catalog.ResolveAttr(class, name)
	if err != nil {
		return err
	}
	return db.ddl([]model.ClassID{class}, func() error {
		if _, err := db.Catalog.DropAttribute(class, name); err != nil {
			return err
		}
		for _, idx := range db.Indexes.All() {
			for _, step := range idx.Path {
				if step == a.ID {
					_ = db.Indexes.Drop(idx.Name)
					break
				}
			}
		}
		return nil
	})
}

// RenameAttribute renames a locally defined attribute.
func (db *DB) RenameAttribute(class model.ClassID, oldName, newName string) error {
	return db.ddl([]model.ClassID{class}, func() error {
		_, err := db.Catalog.RenameAttribute(class, oldName, newName)
		return err
	})
}

// AddSuperclass adds an inheritance edge. Indexes rooted above the class
// gain coverage of its instances, so they are repopulated.
func (db *DB) AddSuperclass(class, super model.ClassID) error {
	return db.ddl([]model.ClassID{class, super}, func() error {
		if _, err := db.Catalog.AddSuperclass(class, super); err != nil {
			return err
		}
		return db.repopulateClass(class)
	})
}

// DropSuperclass removes an inheritance edge; hierarchy indexes that no
// longer cover the class shed its instances.
func (db *DB) DropSuperclass(class, super model.ClassID) error {
	return db.ddl([]model.ClassID{class, super}, func() error {
		if _, err := db.Catalog.DropSuperclass(class, super); err != nil {
			return err
		}
		return db.reindexAfterUncover(class)
	})
}

// AddMethod defines a method with its implementation.
func (db *DB) AddMethod(class model.ClassID, name string, impl schema.MethodImpl) error {
	return db.ddl([]model.ClassID{class}, func() error {
		_, err := db.Catalog.AddMethod(class, name, impl)
		return err
	})
}

// RegisterMethod re-attaches an implementation to a persisted method
// signature (no catalog change, no checkpoint).
func (db *DB) RegisterMethod(class model.ClassID, name string, impl schema.MethodImpl) error {
	return db.Catalog.RegisterMethod(class, name, impl)
}

// CreateIndex defines and populates an index. path names attributes
// (resolved against the effective definitions along the way); hierarchy
// selects a class-hierarchy index.
func (db *DB) CreateIndex(name string, class model.ClassID, path []string, hierarchy bool) error {
	attrPath, err := db.resolvePath(class, path)
	if err != nil {
		return err
	}
	return db.ddl([]model.ClassID{class}, func() error {
		return db.buildIndex(name, class, attrPath, hierarchy)
	})
}

// DropIndex removes an index.
func (db *DB) DropIndex(name string) error {
	return db.ddl(nil, func() error {
		return db.Indexes.Drop(name)
	})
}

// resolvePath maps attribute names to AttrIDs step by step: each interior
// step must be a reference attribute, and the next step resolves against
// its domain class.
func (db *DB) resolvePath(class model.ClassID, path []string) ([]model.AttrID, error) {
	cur := class
	out := make([]model.AttrID, 0, len(path))
	for i, name := range path {
		a, err := db.Catalog.ResolveAttr(cur, name)
		if err != nil {
			return nil, err
		}
		out = append(out, a.ID)
		if i < len(path)-1 {
			if schema.IsPrimitive(a.Domain) {
				return nil, fmt.Errorf("core: path step %q has primitive domain; cannot continue path", name)
			}
			cur = a.Domain
		}
	}
	return out, nil
}

// buildIndex creates the index and populates it from the covered classes.
func (db *DB) buildIndex(name string, class model.ClassID, path []model.AttrID, hierarchy bool) error {
	idx, err := db.Indexes.Create(name, class, path, hierarchy)
	if err != nil {
		return err
	}
	classes := []model.ClassID{class}
	if hierarchy {
		if classes, err = db.Catalog.Descendants(class); err != nil {
			return err
		}
	}
	for _, c := range classes {
		err := db.Store.ScanClass(c, func(oid model.OID, data []byte) bool {
			obj, derr := model.DecodeObject(data)
			if derr != nil {
				return true
			}
			if perr := db.Indexes.Populate(idx, obj); perr != nil {
				err = perr
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// repopulateClass re-feeds every instance of class (and its descendants)
// through index maintenance — used when inheritance edges change coverage.
func (db *DB) repopulateClass(class model.ClassID) error {
	classes, err := db.Catalog.Descendants(class)
	if err != nil {
		return err
	}
	for _, c := range classes {
		var ierr error
		err := db.Store.ScanClass(c, func(oid model.OID, data []byte) bool {
			obj, derr := model.DecodeObject(data)
			if derr != nil {
				return true
			}
			if perr := db.Indexes.OnPut(obj, obj); perr != nil {
				ierr = perr
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if ierr != nil {
			return ierr
		}
	}
	return nil
}

// reindexAfterUncover rebuilds every hierarchy index from scratch — the
// blunt-but-correct response to a class leaving a hierarchy (its instances
// may need to leave several indexes at once).
func (db *DB) reindexAfterUncover(class model.ClassID) error {
	for _, idx := range db.Indexes.All() {
		name, root, path, hier := idx.Name, idx.Class, idx.Path, idx.Hierarchy
		if !hier {
			continue
		}
		if err := db.Indexes.Drop(name); err != nil {
			return err
		}
		if err := db.buildIndex(name, root, path, hier); err != nil {
			return err
		}
	}
	return nil
}
