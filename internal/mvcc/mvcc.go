// Package mvcc implements kimdb's multi-version concurrency control
// overlay: per-object version chains stamped with a monotonically
// increasing commit epoch, giving read-only transactions a lock-free
// snapshot-consistent view while writers keep strict two-phase locking
// (internal/txn). The paper's §3.2 extends conventional locking to class
// hierarchies; this package removes readers from that lock manager
// entirely — a hierarchy scan under a bulk writer no longer stalls.
//
// Model:
//
//   - Writers are still serialized by X instance locks. Before a writer's
//     first heap write to an object, it records the currently committed
//     heap image as the chain's base version and installs its new image as
//     the chain's pending entry. Commit stamps every pending entry of the
//     transaction with the next commit epoch and only then publishes that
//     epoch; abort discards the pending entries (the heap itself is
//     restored by the transaction's undo chain).
//   - A snapshot is just an epoch: BeginSnapshot pins the current commit
//     epoch. An object version is visible to a snapshot when it is the
//     newest committed version with epoch ≤ the snapshot's. No chain means
//     the heap image is committed truth.
//   - The overlay is volatile. Crash recovery replays the WAL into a
//     fully committed heap, so reopening starts with an empty overlay; the
//     commit epoch itself is persisted in commit records and restored to
//     the maximum seen during replay, keeping epochs monotonic across a
//     crash.
//   - Vacuum prunes versions older than the newest version visible to the
//     oldest live snapshot and drops chains that have converged with the
//     heap — wired into the internal/maint sweep and run inline at commit
//     for the chains the committing transaction touched.
//
// The ordering protocol that makes lock-free reads sound: a writer
// installs the chain entry (under the chain's shard lock) before it
// touches the heap, and a reader fetches heap bytes before consulting the
// chain. A reader that observed uncommitted heap bytes therefore always
// finds the chain that shields them (lock ordering makes the writer's
// earlier chain install visible), and resolves the committed base instead.
//
// The protocol has a converse hazard: REMOVING a chain while a reader sits
// between its heap read and its chain lookup un-shields whatever that
// reader fetched — it read a writer's uncommitted bytes, the writer
// aborted (heap restored, chain converged and dropped), and the reader now
// finds no chain and trusts the stale bytes. Chains are therefore only
// dropped when no snapshot is live at all; while snapshots exist, pruning
// trims a chain's version list but keeps the chain installed.
//
// Locking is two-level so that readers scale independently of writers:
//
//   - The manager lock guards the epoch, the snapshot registry and the
//     per-writer bookkeeping. Commit holds it across stamping AND epoch
//     publication, so a concurrent BeginSnapshot sees either none or all
//     of a commit's versions. Readers touch it only at snapshot begin/end.
//   - Chains live in shards hashed by OID, each with its own lock. A
//     reader resolving N objects takes N brief shard read-locks that
//     almost never collide with the writer — per-object resolution
//     against a single manager lock would serialize every scan behind a
//     bulk writer's lock traffic (the -mvcc bench pins this ratio).
//
// Nesting order is manager lock → shard lock (Commit, Abort); record
// takes them sequentially, never nested.
package mvcc

import (
	"sync"

	"oodb/internal/model"
)

// version is one committed object state. data == nil marks a delete (the
// object is invisible at and after this epoch until re-created).
type version struct {
	epoch uint64
	data  []byte
}

// chain is the version history of one object: an optional uncommitted
// pending entry owned by a single writer (X-lock serialized) above a list
// of committed versions ordered oldest-first (appends are O(1); lookups
// walk from the newest end). The base committed version is stamped
// epoch 0: it predates every snapshot that can still be live when the
// chain is created, because the creating writer saw it as the committed
// heap state.
type chain struct {
	pendingTxn uint64 // owning writer, 0 = none
	pendingDel bool   // pending entry is a delete
	pending    []byte // pending image (nil when pendingDel)
	tombstone  bool   // some version is a delete: the heap record may be gone
	versions   []version
}

// visible returns the newest committed version with epoch ≤ snap.
// ok reports whether the chain has any version that old (it always does
// for snapshots begun after the chain was created; false can only occur
// for epochs older than the vacuum horizon, which the snapshot registry
// prevents).
func (c *chain) visible(snap uint64) (data []byte, ok bool) {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].epoch <= snap {
			return c.versions[i].data, true
		}
	}
	return nil, false
}

// chainShards is the number of chain-map shards. A power of two well above
// typical core counts keeps reader/writer shard collisions rare.
const chainShards = 64

// shard holds the chains whose OIDs hash to it. The shard lock guards the
// maps and the contents of every chain in them.
type shard struct {
	mu     sync.RWMutex
	chains map[model.OID]*chain  // OID embeds the class: one flat map
	tombs  map[model.ClassID]int // chains with a delete version, per class
}

// shardOf maps an OID to its shard. Fibonacci hashing spreads the dense
// low-bit sequence numbers OIDs are built from.
func (m *Manager) shardOf(oid model.OID) *shard {
	return &m.shards[(uint64(oid)*0x9E3779B97F4A7C15)>>(64-6)]
}

// Manager is the process-wide MVCC state of one database. All methods are
// safe for concurrent use.
type Manager struct {
	mu    sync.RWMutex           // epoch, snaps, byTxn
	epoch uint64                 // last committed epoch
	byTxn map[uint64][]model.OID // pending chains per writer
	snaps map[uint64]int         // live snapshots per epoch

	shards [chainShards]shard
}

// NewManager returns an empty MVCC overlay at epoch 0.
func NewManager() *Manager {
	m := &Manager{
		byTxn: make(map[uint64][]model.OID),
		snaps: make(map[uint64]int),
	}
	for i := range m.shards {
		m.shards[i].chains = make(map[model.OID]*chain)
		m.shards[i].tombs = make(map[model.ClassID]int)
	}
	return m
}

// Epoch returns the last committed epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// RestoreEpoch raises the commit epoch to at least e — recovery replays
// the maximum epoch found in the WAL's commit records through this, so
// epochs stay monotonic across a crash.
func (m *Manager) RestoreEpoch(e uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e > m.epoch {
		m.epoch = e
	}
}

// BeginSnapshot pins the current commit epoch and registers the snapshot
// as live, shielding every version it can see — and every chain — from
// the vacuum.
func (m *Manager) BeginSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[m.epoch]++
	return m.epoch
}

// EndSnapshot releases a snapshot pinned by BeginSnapshot.
func (m *Manager) EndSnapshot(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := m.snaps[epoch]; n > 1 {
		m.snaps[epoch] = n - 1
	} else {
		delete(m.snaps, epoch)
	}
}

// LiveSnapshots returns the number of currently registered snapshots.
func (m *Manager) LiveSnapshots() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, c := range m.snaps {
		n += c
	}
	return n
}

// RecordWrite registers txn's intent to overwrite (or create) oid with
// next, capturing base — the committed heap image, nil if the object does
// not exist — as the chain's base version if the object has no chain yet.
// MUST be called before the heap write it shields; the caller holds the X
// instance lock, so at most one writer touches a chain's pending entry.
func (m *Manager) RecordWrite(txn uint64, oid model.OID, base, next []byte) {
	m.record(txn, oid, base, next, false)
}

// RecordDelete is RecordWrite for a delete: the pending entry marks the
// object invisible to post-commit snapshots.
func (m *Manager) RecordDelete(txn uint64, oid model.OID, base []byte) {
	m.record(txn, oid, base, nil, true)
}

func (m *Manager) record(txn uint64, oid model.OID, base, next []byte, del bool) {
	s := m.shardOf(oid)
	s.mu.Lock()
	c := s.chains[oid]
	if c == nil {
		c = &chain{versions: []version{{epoch: 0, data: base}}}
		s.chains[oid] = c
		mChainsLive.Add(1)
	}
	first := c.pendingTxn != txn
	c.pendingTxn = txn
	c.pendingDel = del
	c.pending = next
	if del && !c.tombstone {
		c.tombstone = true
		s.tombs[oid.Class()]++
	}
	s.mu.Unlock()
	mVersionWrites.Add(1)
	if first {
		// First write by this transaction: remember the chain for commit
		// stamping. (A prior writer's pending entry cannot still be here —
		// X locks serialize writers and commit/abort clears it.)
		m.mu.Lock()
		m.byTxn[txn] = append(m.byTxn[txn], oid)
		m.mu.Unlock()
	}
}

// Commit stamps every pending entry of txn with the next commit epoch and
// publishes it. The stamps and the epoch publication happen under the
// manager lock: a concurrent BeginSnapshot either sees the old epoch (and
// none of the new versions) or the new epoch (and all of them).
func (m *Manager) Commit(txn uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	oids := m.byTxn[txn]
	if len(oids) == 0 {
		return m.epoch
	}
	delete(m.byTxn, txn)
	e := m.epoch + 1
	m.epoch = e
	// Horizon computed after the epoch moves: with no live snapshot the
	// just-stamped version itself is the horizon, so an unobserved chain
	// converges (and is dropped) in the same critical section.
	oldest := m.oldestLocked()
	drop := len(m.snaps) == 0
	for _, oid := range oids {
		s := m.shardOf(oid)
		s.mu.Lock()
		c := s.chains[oid]
		if c == nil || c.pendingTxn != txn {
			s.mu.Unlock()
			continue
		}
		var data []byte
		if !c.pendingDel {
			data = c.pending
		}
		c.versions = append(c.versions, version{epoch: e, data: data})
		c.pendingTxn, c.pending, c.pendingDel = 0, nil, false
		mChainLength.Observe(uint64(len(c.versions)))
		s.pruneLocked(oid, c, oldest, drop)
		s.mu.Unlock()
	}
	return e
}

// Abort discards txn's pending entries. The heap is restored separately
// by the transaction's undo chain; the chain's committed versions already
// describe exactly that restored state.
func (m *Manager) Abort(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oids := m.byTxn[txn]
	if len(oids) == 0 {
		return
	}
	delete(m.byTxn, txn)
	oldest := m.oldestLocked()
	drop := len(m.snaps) == 0
	for _, oid := range oids {
		s := m.shardOf(oid)
		s.mu.Lock()
		c := s.chains[oid]
		if c != nil && c.pendingTxn == txn {
			c.pendingTxn, c.pending, c.pendingDel = 0, nil, false
			s.pruneLocked(oid, c, oldest, drop)
		}
		s.mu.Unlock()
	}
}

// Resolve maps a heap read to the snapshot-visible state of oid.
// heapData/heapOK describe what the heap returned (and must have been
// read before the call — see the ordering protocol in the package
// comment). The result is the visible image and whether the object exists
// at the snapshot. Resolve takes only the OID's shard read-lock, so scans
// resolving thousands of objects do not serialize behind writers.
func (m *Manager) Resolve(oid model.OID, heapData []byte, heapOK bool, snap uint64) ([]byte, bool) {
	s := m.shardOf(oid)
	s.mu.RLock()
	c := s.chains[oid]
	if c == nil {
		s.mu.RUnlock()
		return heapData, heapOK
	}
	data, ok := c.visible(snap)
	s.mu.RUnlock()
	if !ok {
		// Older than the chain's history: without a base that old the
		// object did not exist at the snapshot.
		return nil, false
	}
	return data, data != nil
}

// HasChain reports whether oid currently has a version chain.
func (m *Manager) HasChain(oid model.OID) bool {
	s := m.shardOf(oid)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.chains[oid] != nil
}

// ClassChains returns the OIDs of the given class that currently have
// version chains. Snapshot index probes use it to surface objects whose
// snapshot-visible state the live index no longer points at.
func (m *Manager) ClassChains(class model.ClassID) []model.OID {
	var out []model.OID
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for oid := range s.chains {
			if oid.Class() == class {
				out = append(out, oid)
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// ClassTombstones reports how many of the class's chains carry a delete
// version — the only chains whose object can be missing from the heap.
// Snapshot scans skip their chain-only sweep when it returns 0; the check
// must run AFTER the heap scan so a delete recorded mid-scan (whose heap
// record the scan then missed) is counted.
func (m *Manager) ClassTombstones(class model.ClassID) int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += s.tombs[class]
		s.mu.RUnlock()
	}
	return n
}

// oldestLocked is the vacuum horizon: the oldest live snapshot epoch, or
// the current epoch when no snapshot is live. Caller holds m.mu.
func (m *Manager) oldestLocked() uint64 {
	oldest := m.epoch
	for e := range m.snaps {
		if e < oldest {
			oldest = e
		}
	}
	return oldest
}

// pruneLocked trims versions no live snapshot can see: versions strictly
// older than the newest version with epoch ≤ oldest are unreachable. When
// drop is set (no snapshot live anywhere), a chain reduced to that single
// version with no pending writer has converged with the heap and is
// removed entirely. Removal with snapshots live would reopen the
// un-shielding race described in the package comment, so it is gated on
// drop. Caller holds the shard lock.
func (s *shard) pruneLocked(oid model.OID, c *chain, oldest uint64, drop bool) {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].epoch <= oldest {
			if i > 0 {
				c.versions = c.versions[i:]
				mVersionsPruned.Add(uint64(i))
			}
			break
		}
	}
	if drop && c.pendingTxn == 0 && len(c.versions) == 1 && c.versions[0].epoch <= oldest {
		delete(s.chains, oid)
		if c.tombstone {
			if n := s.tombs[oid.Class()]; n > 1 {
				s.tombs[oid.Class()] = n - 1
			} else {
				delete(s.tombs, oid.Class())
			}
		}
		mVersionsPruned.Add(1)
		mChainsLive.Add(-1)
	}
}

// Vacuum prunes every chain against the current horizon and returns the
// number of chains still live — the maintenance sweep's version GC. The
// manager read-lock is held across the whole sweep: BeginSnapshot needs
// the write lock, so the "no snapshot is live" drop decision cannot be
// invalidated mid-sweep by a snapshot that starts reading (and might
// already hold un-resolved dirty heap bytes) while chains disappear.
// Writers stall on the manager lock for the sweep's duration; readers
// (Resolve) never touch it.
func (m *Manager) Vacuum() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	oldest := m.oldestLocked()
	drop := len(m.snaps) == 0
	live := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for oid, c := range s.chains {
			s.pruneLocked(oid, c, oldest, drop)
			if s.chains[oid] != nil {
				live++
			}
		}
		s.mu.Unlock()
	}
	return live
}

// Chains returns the number of live version chains (tests, metrics).
func (m *Manager) Chains() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.chains)
		s.mu.RUnlock()
	}
	return n
}
