package mvcc

import "oodb/internal/obs"

// MVCC overlay metrics (obs registry). The chain-length histogram is the
// health signal: a growing tail means a long-lived snapshot is pinning
// versions faster than the vacuum can prune them.
var (
	mVersionWrites  = obs.RegisterCounter("mvcc_version_writes_total")
	mVersionsPruned = obs.RegisterCounter("mvcc_version_pruned_total")
	mChainsLive     = obs.RegisterGauge("mvcc_chains_live_now")
	mChainLength    = obs.RegisterHistogram("mvcc_chain_length_versions")
)
