package mvcc

import (
	"bytes"
	"sync"
	"testing"

	"oodb/internal/model"
)

func oid(class model.ClassID, seq uint64) model.OID { return model.MakeOID(class, seq) }

// resolve is Resolve with the heap state the chain invariant prescribes:
// the pending image if a writer is in flight, else the newest committed
// version. Tests that need a divergent heap call Resolve directly.
func resolve(t *testing.T, m *Manager, id model.OID, heap []byte, snap uint64) ([]byte, bool) {
	t.Helper()
	return m.Resolve(id, heap, heap != nil, snap)
}

func TestVisibilityAcrossEpochs(t *testing.T) {
	m := NewManager()
	id := oid(1, 1)
	v1, v2 := []byte("v1"), []byte("v2")

	// Writer installs v2 over committed v1.
	m.RecordWrite(100, id, v1, v2)
	before := m.BeginSnapshot()
	e := m.Commit(100)
	after := m.BeginSnapshot()
	if after != e {
		t.Fatalf("snapshot after commit pinned epoch %d, want %d", after, e)
	}

	if got, ok := resolve(t, m, id, v2, before); !ok || !bytes.Equal(got, v1) {
		t.Fatalf("pre-commit snapshot sees %q ok=%v, want %q", got, ok, v1)
	}
	if got, ok := resolve(t, m, id, v2, after); !ok || !bytes.Equal(got, v2) {
		t.Fatalf("post-commit snapshot sees %q ok=%v, want %q", got, ok, v2)
	}
	m.EndSnapshot(before)
	m.EndSnapshot(after)
}

func TestPendingInvisible(t *testing.T) {
	m := NewManager()
	id := oid(1, 1)
	v1, dirty := []byte("v1"), []byte("dirty")
	m.RecordWrite(7, id, v1, dirty)
	snap := m.BeginSnapshot()
	// The heap already holds the uncommitted image; the chain shields it.
	if got, ok := m.Resolve(id, dirty, true, snap); !ok || !bytes.Equal(got, v1) {
		t.Fatalf("snapshot sees %q ok=%v, want committed %q", got, ok, v1)
	}
	m.Abort(7)
	if got, ok := m.Resolve(id, v1, true, snap); !ok || !bytes.Equal(got, v1) {
		t.Fatalf("after abort snapshot sees %q ok=%v, want %q", got, ok, v1)
	}
	m.EndSnapshot(snap)
}

func TestInsertInvisibleToOlderSnapshot(t *testing.T) {
	m := NewManager()
	id := oid(2, 9)
	snap := m.BeginSnapshot()
	m.RecordWrite(3, id, nil, []byte("new")) // insert: no base image
	m.Commit(3)
	if _, ok := m.Resolve(id, []byte("new"), true, snap); ok {
		t.Fatal("insert committed after snapshot began must be invisible")
	}
	cur := m.BeginSnapshot()
	if got, ok := m.Resolve(id, []byte("new"), true, cur); !ok || !bytes.Equal(got, []byte("new")) {
		t.Fatalf("current snapshot sees %q ok=%v, want the insert", got, ok)
	}
	m.EndSnapshot(snap)
	m.EndSnapshot(cur)
}

func TestDeleteVisibleToOlderSnapshot(t *testing.T) {
	m := NewManager()
	id := oid(2, 1)
	v1 := []byte("v1")
	snap := m.BeginSnapshot()
	m.RecordDelete(5, id, v1)
	m.Commit(5)
	// Heap record is gone; the old snapshot still sees the base version.
	if got, ok := m.Resolve(id, nil, false, snap); !ok || !bytes.Equal(got, v1) {
		t.Fatalf("old snapshot sees %q ok=%v, want %q", got, ok, v1)
	}
	cur := m.BeginSnapshot()
	if _, ok := m.Resolve(id, nil, false, cur); ok {
		t.Fatal("current snapshot must not see the deleted object")
	}
	if got := m.ClassChains(model.ClassID(2)); len(got) != 1 || got[0] != id {
		t.Fatalf("ClassChains = %v, want [%v]", got, id)
	}
	m.EndSnapshot(snap)
	m.EndSnapshot(cur)
}

func TestVacuumPrunesConvergedChains(t *testing.T) {
	m := NewManager()
	id := oid(1, 1)
	m.RecordWrite(1, id, []byte("v1"), []byte("v2"))
	m.Commit(1)
	m.RecordWrite(2, id, []byte("v2"), []byte("v3"))
	m.Commit(2)
	if m.Chains() != 0 {
		// No live snapshot: the commit-time prune already converged it.
		t.Fatalf("chains after unpinned commits = %d, want 0", m.Chains())
	}

	snap := m.BeginSnapshot()
	m.RecordWrite(3, id, []byte("v3"), []byte("v4"))
	m.Commit(3)
	if live := m.Vacuum(); live != 1 {
		t.Fatalf("vacuum with live snapshot pruned the pinned chain (live=%d)", live)
	}
	if got, ok := resolve(t, m, id, []byte("v4"), snap); !ok || !bytes.Equal(got, []byte("v3")) {
		t.Fatalf("pinned snapshot sees %q ok=%v, want v3", got, ok)
	}
	m.EndSnapshot(snap)
	if live := m.Vacuum(); live != 0 {
		t.Fatalf("vacuum after snapshot end left %d chains", live)
	}
}

// TestNoChainDropWhileSnapshotLive pins the converse of the ordering
// protocol: a chain may converge (abort leaves only the base; commit with
// an unobservable version likewise) but must stay installed while ANY
// snapshot is live. A reader between its heap read and its Resolve may
// hold the aborted writer's dirty bytes; removing the chain would make
// Resolve trust them.
func TestNoChainDropWhileSnapshotLive(t *testing.T) {
	m := NewManager()
	id := oid(1, 1)
	snap := m.BeginSnapshot()

	// Aborted write: chain converges to its base but must remain.
	m.RecordWrite(11, id, []byte("v1"), []byte("dirty"))
	m.Abort(11)
	if m.Chains() != 1 {
		t.Fatalf("chain dropped at abort with a live snapshot (chains=%d)", m.Chains())
	}
	if got, ok := m.Resolve(id, []byte("dirty"), true, snap); !ok || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("racing reader resolves %q ok=%v, want shielded base v1", got, ok)
	}
	if live := m.Vacuum(); live != 1 {
		t.Fatalf("vacuum dropped a chain with a live snapshot (live=%d)", live)
	}

	// Committed write with no older pin than the commit itself: still kept
	// while the snapshot registry is non-empty.
	m.EndSnapshot(snap)
	snap2 := m.BeginSnapshot()
	m.RecordWrite(12, id, []byte("v1"), []byte("v2"))
	m.Commit(12)
	if m.Chains() != 1 {
		t.Fatalf("chain dropped at commit with a live snapshot (chains=%d)", m.Chains())
	}
	m.EndSnapshot(snap2)
	if live := m.Vacuum(); live != 0 {
		t.Fatalf("vacuum with no snapshots left %d chains", live)
	}
}

func TestRestoreEpochMonotonic(t *testing.T) {
	m := NewManager()
	m.RestoreEpoch(41)
	m.RestoreEpoch(7) // lower: ignored
	if e := m.Epoch(); e != 41 {
		t.Fatalf("epoch = %d, want 41", e)
	}
	m.RecordWrite(1, oid(1, 1), nil, []byte("x"))
	if e := m.Commit(1); e != 42 {
		t.Fatalf("next commit epoch = %d, want 42", e)
	}
}

func TestMultiWriteSingleStamp(t *testing.T) {
	m := NewManager()
	id := oid(1, 1)
	m.RecordWrite(9, id, []byte("base"), []byte("a"))
	m.RecordWrite(9, id, []byte("a"), []byte("b")) // second write, same txn
	e := m.Commit(9)
	snap := m.BeginSnapshot()
	if snap != e {
		t.Fatalf("snapshot epoch %d, want %d", snap, e)
	}
	if got, ok := resolve(t, m, id, []byte("b"), snap); !ok || !bytes.Equal(got, []byte("b")) {
		t.Fatalf("sees %q ok=%v, want final image", got, ok)
	}
	m.EndSnapshot(snap)
}

// TestConcurrentSnapshotEpochNeverHalfStamped drives writers committing
// multi-object transactions against racing snapshot begins: a snapshot
// must see either all of a transaction's versions or none (the epoch is
// published only after every pending entry is stamped).
func TestConcurrentSnapshotEpochNeverHalfStamped(t *testing.T) {
	m := NewManager()
	a, b := oid(1, 1), oid(1, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := []byte{0}
		for txn := uint64(1); ; txn++ {
			select {
			case <-stop:
				return
			default:
			}
			next := []byte{cur[0] + 1}
			m.RecordWrite(txn, a, cur, next)
			m.RecordWrite(txn, b, cur, next)
			m.Commit(txn)
			cur = next
		}
	}()
	for i := 0; i < 2000; i++ {
		snap := m.BeginSnapshot()
		// Heap state is unknowable mid-race; pass heapOK=false and demand
		// both objects resolve from chains to the same generation. A chain
		// may already be vacuumed (converged) — then heap would be truth —
		// so only compare when both resolve through the overlay.
		va, oka := m.Resolve(a, nil, false, snap)
		vb, okb := m.Resolve(b, nil, false, snap)
		if oka && okb && !bytes.Equal(va, vb) {
			t.Errorf("snapshot %d saw torn commit: a=%v b=%v", snap, va, vb)
		}
		m.EndSnapshot(snap)
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
