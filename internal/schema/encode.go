package schema

import (
	"encoding/binary"
	"fmt"

	"oodb/internal/model"
)

// Catalog persistence. The catalog is serialized as a single binary blob
// stored in the database's catalog segment and logged through the WAL like
// any other write. Method implementations are process-local and are NOT
// serialized; only signatures survive, and applications re-register bodies
// after open (see MethodImpl).

const catalogMagic = 0x4B43_4154 // "KCAT"

// EncodeCatalog serializes the full catalog.
func EncodeCatalog(c *Catalog) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	buf := binary.BigEndian.AppendUint32(nil, catalogMagic)
	buf = binary.AppendUvarint(buf, uint64(c.nextClass))
	buf = binary.AppendUvarint(buf, uint64(c.nextAttr))
	buf = binary.AppendUvarint(buf, c.version)

	classes := make([]*Class, 0, len(c.classes))
	for _, cl := range c.classes {
		if IsPrimitive(cl.ID) {
			continue // primitives are re-installed by NewCatalog
		}
		classes = append(classes, cl)
	}
	// Deterministic order (ascending id) so identical catalogs encode
	// identically.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j].ID < classes[j-1].ID; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(classes)))
	for _, cl := range classes {
		buf = appendString(buf, cl.Name)
		buf = binary.AppendUvarint(buf, uint64(cl.ID))
		buf = binary.AppendUvarint(buf, uint64(len(cl.Supers)))
		for _, s := range cl.Supers {
			buf = binary.AppendUvarint(buf, uint64(s))
		}
		buf = binary.AppendUvarint(buf, uint64(len(cl.OwnAttrs)))
		for _, a := range cl.OwnAttrs {
			buf = appendString(buf, a.Name)
			buf = binary.AppendUvarint(buf, uint64(a.ID))
			buf = binary.AppendUvarint(buf, uint64(a.Domain))
			if a.SetValued {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = model.AppendValue(buf, a.Default)
		}
		buf = binary.AppendUvarint(buf, uint64(len(cl.OwnMethods)))
		for _, m := range cl.OwnMethods {
			buf = appendString(buf, m.Name)
		}
	}
	return buf
}

// DecodeCatalog reconstructs a catalog from EncodeCatalog output. Method
// implementations are nil until re-registered.
func DecodeCatalog(buf []byte) (*Catalog, error) {
	if len(buf) < 4 || binary.BigEndian.Uint32(buf) != catalogMagic {
		return nil, fmt.Errorf("schema: bad catalog magic")
	}
	r := reader{buf: buf[4:]}
	c := NewCatalog()
	c.nextClass = model.ClassID(r.uvarint())
	c.nextAttr = model.AttrID(r.uvarint())
	version := r.uvarint()

	n := r.uvarint()
	var decoded []*Class
	for i := uint64(0); i < n && r.err == nil; i++ {
		name := r.str()
		id := model.ClassID(r.uvarint())
		ns := r.uvarint()
		supers := make([]model.ClassID, ns)
		for j := range supers {
			supers[j] = model.ClassID(r.uvarint())
		}
		cl := &Class{ID: id, Name: name, Supers: supers}
		na := r.uvarint()
		for j := uint64(0); j < na && r.err == nil; j++ {
			a := &Attribute{Source: id}
			a.Name = r.str()
			a.ID = model.AttrID(r.uvarint())
			a.Domain = model.ClassID(r.uvarint())
			a.SetValued = r.byte() == 1
			a.Default = r.value()
			cl.OwnAttrs = append(cl.OwnAttrs, a)
		}
		nm := r.uvarint()
		for j := uint64(0); j < nm && r.err == nil; j++ {
			cl.OwnMethods = append(cl.OwnMethods, &Method{Name: r.str(), Source: id})
		}
		if r.err == nil {
			decoded = append(decoded, cl)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("schema: corrupt catalog image: %w", r.err)
	}
	// Two-phase install: a class's superclass may have a higher id than the
	// class itself (AddSuperclass can link to a newer class), so register
	// every class before wiring subclass back-edges.
	for _, cl := range decoded {
		c.classes[cl.ID] = cl
		c.byName[cl.Name] = cl.ID
	}
	for _, cl := range decoded {
		for _, s := range cl.Supers {
			sup, ok := c.classes[s]
			if !ok {
				return nil, fmt.Errorf("schema: corrupt catalog image: class %d references unknown superclass %d", cl.ID, s)
			}
			sup.Subs = append(sup.Subs, cl.ID)
		}
	}
	c.rebuildAll()
	c.version = version
	return c, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a cursor over a binary image that latches the first error.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = model.ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = model.ErrCorrupt
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.err = model.ErrCorrupt
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) value() model.Value {
	if r.err != nil {
		return model.Null
	}
	v, n, err := model.DecodeValue(r.buf)
	if err != nil {
		r.err = err
		return model.Null
	}
	r.buf = r.buf[n:]
	return v
}
