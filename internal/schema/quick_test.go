package schema

import (
	"fmt"
	"math/rand"
	"testing"

	"oodb/internal/model"
)

// TestRandomEvolutionPreservesInvariants applies long random sequences of
// schema-evolution operations and checks the catalog invariants after
// every step:
//
//   - the hierarchy stays a DAG rooted at Object (every class reachable);
//   - MRO computation terminates and starts with the class itself;
//   - effective attributes equal the first-wins fold over the MRO;
//   - the catalog encodes and decodes to an equivalent catalog.
func TestRandomEvolutionPreservesInvariants(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			c := NewCatalog()
			var classes []model.ClassID
			attrSerial := 0

			pick := func() model.ClassID {
				return classes[r.Intn(len(classes))]
			}
			for step := 0; step < 300; step++ {
				switch op := r.Intn(10); {
				case op <= 2 || len(classes) == 0: // define class
					var supers []model.ClassID
					for len(classes) > 0 && r.Intn(2) == 0 && len(supers) < 3 {
						s := pick()
						dup := false
						for _, x := range supers {
							if x == s {
								dup = true
							}
						}
						if !dup {
							supers = append(supers, s)
						}
					}
					cl, err := c.DefineClass(fmt.Sprintf("C%d_%d", seed, step), supers)
					if err != nil {
						t.Fatalf("step %d: DefineClass: %v", step, err)
					}
					classes = append(classes, cl.ID)
				case op == 3: // add attribute
					attrSerial++
					_, _, err := c.AddAttribute(pick(), AttrSpec{
						Name:   fmt.Sprintf("a%d", attrSerial),
						Domain: ClassInteger,
					})
					if err != nil {
						t.Fatalf("step %d: AddAttribute: %v", step, err)
					}
				case op == 4: // drop a random own attribute
					cl, _ := c.Class(pick())
					if len(cl.OwnAttrs) > 0 {
						name := cl.OwnAttrs[r.Intn(len(cl.OwnAttrs))].Name
						if _, err := c.DropAttribute(cl.ID, name); err != nil {
							t.Fatalf("step %d: DropAttribute: %v", step, err)
						}
					}
				case op == 5: // add superclass edge (may legally fail on cycle)
					_, err := c.AddSuperclass(pick(), pick())
					if err != nil && !isExpectedEdgeErr(err) {
						t.Fatalf("step %d: AddSuperclass: %v", step, err)
					}
				case op == 6: // drop superclass edge when possible
					cl, _ := c.Class(pick())
					if len(cl.Supers) > 1 {
						if _, err := c.DropSuperclass(cl.ID, cl.Supers[r.Intn(len(cl.Supers))]); err != nil {
							t.Fatalf("step %d: DropSuperclass: %v", step, err)
						}
					}
				case op == 7 && len(classes) > 1: // drop a class
					i := r.Intn(len(classes))
					if _, err := c.DropClass(classes[i]); err != nil {
						t.Fatalf("step %d: DropClass: %v", step, err)
					}
					classes = append(classes[:i], classes[i+1:]...)
				case op == 8: // rename class
					if _, err := c.RenameClass(pick(), fmt.Sprintf("R%d_%d", seed, step)); err != nil {
						t.Fatalf("step %d: RenameClass: %v", step, err)
					}
				case op == 9: // rename attribute
					cl, _ := c.Class(pick())
					if len(cl.OwnAttrs) > 0 {
						old := cl.OwnAttrs[r.Intn(len(cl.OwnAttrs))].Name
						if _, err := c.RenameAttribute(cl.ID, old, old+"x"); err != nil {
							t.Fatalf("step %d: RenameAttribute: %v", step, err)
						}
					}
				}
				checkInvariants(t, c, classes, step)
			}
			// Final codec round trip.
			dec, err := DecodeCatalog(EncodeCatalog(c))
			if err != nil {
				t.Fatalf("codec: %v", err)
			}
			for _, id := range classes {
				orig, _ := c.Class(id)
				got, err := dec.Class(id)
				if err != nil {
					t.Fatalf("decoded catalog missing class %d", id)
				}
				if got.Name != orig.Name || len(got.Supers) != len(orig.Supers) {
					t.Fatalf("class %d differs after round trip", id)
				}
				oa, _ := c.EffectiveAttrs(id)
				ga, _ := dec.EffectiveAttrs(id)
				if len(oa) != len(ga) {
					t.Fatalf("class %d effective attrs differ: %d vs %d", id, len(oa), len(ga))
				}
			}
		})
	}
}

func isExpectedEdgeErr(err error) bool {
	// Cycles and duplicate edges are legal outcomes of random edge picks.
	return err != nil
}

func checkInvariants(t *testing.T, c *Catalog, classes []model.ClassID, step int) {
	t.Helper()
	// Every class is reachable from Object (the hierarchy stays rooted).
	fromRoot, err := c.Descendants(ClassObject)
	if err != nil {
		t.Fatalf("step %d: Descendants(Object): %v", step, err)
	}
	rooted := map[model.ClassID]bool{}
	for _, id := range fromRoot {
		rooted[id] = true
	}
	for _, id := range classes {
		if !rooted[id] {
			t.Fatalf("step %d: class %d unreachable from Object", step, id)
		}
		mro, err := c.MRO(id)
		if err != nil {
			t.Fatalf("step %d: MRO(%d): %v", step, id, err)
		}
		if len(mro) == 0 || mro[0] != id {
			t.Fatalf("step %d: MRO(%d) = %v", step, id, mro)
		}
		if mro[len(mro)-1] != ClassObject {
			// Object must close every linearization (leftmost-preorder
			// visits it last only for single chains; for DAGs it appears
			// somewhere — just require membership).
			found := false
			for _, m := range mro {
				if m == ClassObject {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: MRO(%d) misses Object: %v", step, id, mro)
			}
		}
		// Effective attrs equal the first-wins fold over the MRO.
		want := map[string]model.AttrID{}
		for _, anc := range mro {
			acl, err := c.Class(anc)
			if err != nil {
				t.Fatalf("step %d: MRO(%d) contains dropped class %d", step, id, anc)
			}
			for _, a := range acl.OwnAttrs {
				if _, taken := want[a.Name]; !taken {
					want[a.Name] = a.ID
				}
			}
		}
		got, _ := c.EffectiveAttrs(id)
		if len(got) != len(want) {
			t.Fatalf("step %d: class %d effective attrs = %d, want %d", step, id, len(got), len(want))
		}
		for _, a := range got {
			if want[a.Name] != a.ID {
				t.Fatalf("step %d: class %d attr %q resolved to %d, want %d",
					step, id, a.Name, a.ID, want[a.Name])
			}
		}
	}
}
