package schema

import (
	"errors"
	"testing"

	"oodb/internal/model"
)

// buildVehicleSchema constructs the paper's Figure 1 schema: Vehicle with
// subclasses Automobile and Truck (Automobile specialized further), and
// Company with subclasses AutoCompany/TruckCompany, AutoCompany specialized
// to JapaneseAutoCompany; Vehicle.manufacturer has domain Company.
func buildVehicleSchema(t *testing.T) (*Catalog, map[string]*Class) {
	t.Helper()
	c := NewCatalog()
	classes := map[string]*Class{}
	mustDefine := func(name string, supers []model.ClassID, attrs ...AttrSpec) *Class {
		cl, err := c.DefineClass(name, supers, attrs...)
		if err != nil {
			t.Fatalf("DefineClass(%s): %v", name, err)
		}
		classes[name] = cl
		return cl
	}
	company := mustDefine("Company", nil,
		AttrSpec{Name: "name", Domain: ClassString},
		AttrSpec{Name: "location", Domain: ClassString},
	)
	mustDefine("AutoCompany", []model.ClassID{company.ID})
	mustDefine("TruckCompany", []model.ClassID{company.ID})
	mustDefine("JapaneseAutoCompany", []model.ClassID{classes["AutoCompany"].ID})
	vehicle := mustDefine("Vehicle", nil,
		AttrSpec{Name: "weight", Domain: ClassInteger},
		AttrSpec{Name: "manufacturer", Domain: company.ID},
	)
	mustDefine("Automobile", []model.ClassID{vehicle.ID},
		AttrSpec{Name: "drivetrain", Domain: ClassString})
	mustDefine("Truck", []model.ClassID{vehicle.ID},
		AttrSpec{Name: "payload", Domain: ClassInteger})
	mustDefine("DomesticAutomobile", []model.ClassID{classes["Automobile"].ID})
	return c, classes
}

func TestPrimitivesInstalled(t *testing.T) {
	c := NewCatalog()
	for _, name := range []string{"Object", "Integer", "Float", "Boolean", "String", "Bytes"} {
		if _, err := c.ClassByName(name); err != nil {
			t.Errorf("primitive %s missing: %v", name, err)
		}
	}
	obj, _ := c.Class(ClassObject)
	if len(obj.Supers) != 0 {
		t.Error("Object must be the root")
	}
	if !c.IsSubclassOf(ClassInteger, ClassObject) {
		t.Error("Integer should be a subclass of Object")
	}
}

func TestDefineClassAndInheritance(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	auto := classes["Automobile"]

	// Automobile inherits weight and manufacturer from Vehicle.
	for _, name := range []string{"weight", "manufacturer", "drivetrain"} {
		if _, err := c.ResolveAttr(auto.ID, name); err != nil {
			t.Errorf("Automobile.%s: %v", name, err)
		}
	}
	// The inherited attribute keeps its defining class's AttrID.
	w1, _ := c.ResolveAttr(classes["Vehicle"].ID, "weight")
	w2, _ := c.ResolveAttr(auto.ID, "weight")
	if w1.ID != w2.ID {
		t.Error("inherited attribute should share the defining AttrID")
	}
	// Vehicle does not see drivetrain.
	if _, err := c.ResolveAttr(classes["Vehicle"].ID, "drivetrain"); err == nil {
		t.Error("Vehicle should not inherit downward")
	}
}

func TestIsSubclassOfAndDescendants(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	if !c.IsSubclassOf(classes["DomesticAutomobile"].ID, classes["Vehicle"].ID) {
		t.Error("DomesticAutomobile should be a (transitive) subclass of Vehicle")
	}
	if c.IsSubclassOf(classes["Vehicle"].ID, classes["Automobile"].ID) {
		t.Error("Vehicle is not a subclass of Automobile")
	}
	desc, err := c.Descendants(classes["Vehicle"].ID)
	if err != nil {
		t.Fatal(err)
	}
	want := map[model.ClassID]bool{
		classes["Vehicle"].ID: true, classes["Automobile"].ID: true,
		classes["Truck"].ID: true, classes["DomesticAutomobile"].ID: true,
	}
	if len(desc) != len(want) {
		t.Fatalf("Descendants = %v", desc)
	}
	for _, id := range desc {
		if !want[id] {
			t.Errorf("unexpected descendant %d", id)
		}
	}
}

func TestMultipleInheritanceConflictResolution(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil, AttrSpec{Name: "x", Domain: ClassInteger, Default: model.Int(1)})
	b, _ := c.DefineClass("B", nil, AttrSpec{Name: "x", Domain: ClassInteger, Default: model.Int(2)})
	// AB lists A before B: A.x must win (ORION leftmost-superclass rule).
	ab, err := c.DefineClass("AB", []model.ClassID{a.ID, b.ID})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ResolveAttr(ab.ID, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != a.ID {
		t.Errorf("conflict resolved to class %d, want %d (leftmost)", got.Source, a.ID)
	}
	// BA lists B first: B.x must win.
	ba, _ := c.DefineClass("BA", []model.ClassID{b.ID, a.ID})
	got, _ = c.ResolveAttr(ba.ID, "x")
	if got.Source != b.ID {
		t.Errorf("conflict resolved to class %d, want %d", got.Source, b.ID)
	}
}

func TestLocalOverrideBeatsInherited(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("Base", nil, AttrSpec{Name: "x", Domain: ClassInteger})
	sub, _ := c.DefineClass("Sub", []model.ClassID{a.ID}, AttrSpec{Name: "x", Domain: ClassString})
	got, err := c.ResolveAttr(sub.ID, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != sub.ID || got.Domain != ClassString {
		t.Error("local redefinition should shadow the inherited attribute")
	}
	// The base class is unaffected.
	base, _ := c.ResolveAttr(a.ID, "x")
	if base.Domain != ClassInteger {
		t.Error("base attribute mutated by subclass override")
	}
}

func TestLateBindingMethodResolution(t *testing.T) {
	c := NewCatalog()
	shape, _ := c.DefineClass("Shape", nil)
	tri, _ := c.DefineClass("Triangle", []model.ClassID{shape.ID})
	displayed := ""
	if _, err := c.AddMethod(shape.ID, "display", func(MethodEngine, *model.Object, []model.Value) (model.Value, error) {
		displayed = "shape"
		return model.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Triangle has no display of its own; resolution walks up (late binding).
	m, err := c.ResolveMethod(tri.ID, "display")
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != shape.ID {
		t.Errorf("resolved on class %d, want %d", m.Source, shape.ID)
	}
	if _, err := m.Impl(nil, nil, nil); err != nil || displayed != "shape" {
		t.Error("inherited method body did not run")
	}
	// Override on Triangle shadows it.
	if _, err := c.AddMethod(tri.ID, "display", func(MethodEngine, *model.Object, []model.Value) (model.Value, error) {
		displayed = "triangle"
		return model.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	m, _ = c.ResolveMethod(tri.ID, "display")
	if m.Source != tri.ID {
		t.Error("local method should shadow inherited")
	}
}

func TestCycleRejected(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil)
	b, _ := c.DefineClass("B", []model.ClassID{a.ID})
	d, _ := c.DefineClass("C", []model.ClassID{b.ID})
	if _, err := c.AddSuperclass(a.ID, d.ID); !errors.Is(err, ErrCycle) {
		t.Errorf("expected ErrCycle, got %v", err)
	}
	if _, err := c.AddSuperclass(a.ID, a.ID); !errors.Is(err, ErrCycle) {
		t.Errorf("self edge: expected ErrCycle, got %v", err)
	}
}

func TestAddDropAttributeEvolution(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	veh := classes["Vehicle"]
	attr, change, err := c.AddAttribute(veh.ID, AttrSpec{Name: "color", Domain: ClassString, Default: model.String("white")})
	if err != nil {
		t.Fatal(err)
	}
	if change.Kind != ChangeAddAttribute {
		t.Error("wrong change kind")
	}
	// Affected must include Vehicle and all descendants.
	if len(change.Affected) != 4 {
		t.Errorf("Affected = %v", change.Affected)
	}
	// Subclasses see the new attribute immediately.
	got, err := c.ResolveAttr(classes["Truck"].ID, "color")
	if err != nil || got.ID != attr.ID {
		t.Errorf("Truck.color: %v", err)
	}
	// Default value is the lazy-fill contract.
	if s, _ := got.Default.AsString(); s != "white" {
		t.Error("default not carried")
	}

	if _, err := c.DropAttribute(veh.ID, "color"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveAttr(classes["Truck"].ID, "color"); err == nil {
		t.Error("dropped attribute still resolvable")
	}
	// Dropping an inherited attribute from the subclass is rejected.
	if _, err := c.DropAttribute(classes["Truck"].ID, "weight"); err == nil {
		t.Error("dropping inherited attribute should fail")
	}
}

func TestRenameAttribute(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	veh := classes["Vehicle"]
	before, _ := c.ResolveAttr(veh.ID, "weight")
	if _, err := c.RenameAttribute(veh.ID, "weight", "grossWeight"); err != nil {
		t.Fatal(err)
	}
	after, err := c.ResolveAttr(veh.ID, "grossWeight")
	if err != nil {
		t.Fatal(err)
	}
	if after.ID != before.ID {
		t.Error("rename must preserve AttrID (stored instances key by it)")
	}
	if _, err := c.ResolveAttr(classes["Truck"].ID, "grossWeight"); err != nil {
		t.Error("rename not visible in subclass")
	}
}

func TestDropClassRelinksSubclasses(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil, AttrSpec{Name: "x", Domain: ClassInteger})
	b, _ := c.DefineClass("B", []model.ClassID{a.ID}, AttrSpec{Name: "y", Domain: ClassInteger})
	d, _ := c.DefineClass("D", []model.ClassID{b.ID})
	if _, err := c.DropClass(b.ID); err != nil {
		t.Fatal(err)
	}
	// D now inherits directly from A (Banerjee re-linking).
	if !c.IsSubclassOf(d.ID, a.ID) {
		t.Error("D should be re-linked under A")
	}
	if _, err := c.ResolveAttr(d.ID, "x"); err != nil {
		t.Error("D should still inherit A.x")
	}
	// B's own attribute is gone.
	if _, err := c.ResolveAttr(d.ID, "y"); err == nil {
		t.Error("dropped class's attribute should vanish from descendants")
	}
}

func TestDropSuperclassKeepsRoot(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil)
	b, _ := c.DefineClass("B", nil)
	ab, _ := c.DefineClass("AB", []model.ClassID{a.ID, b.ID})
	if _, err := c.DropSuperclass(ab.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if c.IsSubclassOf(ab.ID, a.ID) {
		t.Error("edge not dropped")
	}
	if _, err := c.DropSuperclass(ab.ID, b.ID); !errors.Is(err, ErrLastSuperclass) {
		t.Errorf("expected ErrLastSuperclass, got %v", err)
	}
}

func TestPrimitiveClassesImmutable(t *testing.T) {
	c := NewCatalog()
	if _, _, err := c.AddAttribute(ClassInteger, AttrSpec{Name: "x", Domain: ClassInteger}); !errors.Is(err, ErrPrimitive) {
		t.Errorf("expected ErrPrimitive, got %v", err)
	}
	if _, err := c.DropClass(ClassString); !errors.Is(err, ErrPrimitive) {
		t.Errorf("expected ErrPrimitive, got %v", err)
	}
}

func TestSchemaVersionBumps(t *testing.T) {
	c := NewCatalog()
	v0 := c.Version()
	a, _ := c.DefineClass("A", nil)
	if c.Version() <= v0 {
		t.Error("DefineClass should bump version")
	}
	v1 := c.Version()
	if _, _, err := c.AddAttribute(a.ID, AttrSpec{Name: "x", Domain: ClassInteger}); err != nil {
		t.Fatal(err)
	}
	if c.Version() <= v1 {
		t.Error("AddAttribute should bump version")
	}
}

func TestDuplicateClassAndAttr(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil, AttrSpec{Name: "x", Domain: ClassInteger})
	if _, err := c.DefineClass("A", nil); !errors.Is(err, ErrClassExists) {
		t.Errorf("expected ErrClassExists, got %v", err)
	}
	if _, _, err := c.AddAttribute(a.ID, AttrSpec{Name: "x", Domain: ClassInteger}); !errors.Is(err, ErrAttrExists) {
		t.Errorf("expected ErrAttrExists, got %v", err)
	}
}

func TestRecursiveDomain(t *testing.T) {
	// "The domain of an attribute of a class C may be the class C" (model 4).
	c := NewCatalog()
	cl, err := c.DefineClass("Employee", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddAttribute(cl.ID, AttrSpec{Name: "manager", Domain: cl.ID}); err != nil {
		t.Fatal(err)
	}
	a, _ := c.ResolveAttr(cl.ID, "manager")
	if a.Domain != cl.ID {
		t.Error("recursive domain lost")
	}
}

func TestCatalogCodecRoundTrip(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	if _, err := c.AddMethod(classes["Vehicle"].ID, "describe", nil); err != nil {
		t.Fatal(err)
	}
	enc := EncodeCatalog(c)
	got, err := DecodeCatalog(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Same classes by name, same hierarchy, same attribute ids.
	for name, cl := range classes {
		g, err := got.ClassByName(name)
		if err != nil {
			t.Fatalf("decoded catalog missing %s", name)
		}
		if g.ID != cl.ID {
			t.Errorf("%s: id %d != %d", name, g.ID, cl.ID)
		}
	}
	if !got.IsSubclassOf(classes["DomesticAutomobile"].ID, classes["Vehicle"].ID) {
		t.Error("hierarchy lost in round trip")
	}
	a1, _ := c.ResolveAttr(classes["Automobile"].ID, "weight")
	a2, err := got.ResolveAttr(classes["Automobile"].ID, "weight")
	if err != nil || a1.ID != a2.ID {
		t.Error("attribute ids lost in round trip")
	}
	// Method signature survives, implementation does not.
	m, err := got.ResolveMethod(classes["Truck"].ID, "describe")
	if err != nil {
		t.Fatal(err)
	}
	if m.Impl != nil {
		t.Error("method impl should not be persisted")
	}
	// Fresh ids continue after the old high-water marks.
	nc, err := got.DefineClass("New", nil, AttrSpec{Name: "n", Domain: ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	if nc.ID <= classes["DomesticAutomobile"].ID {
		t.Error("class id counter not restored")
	}
}

func TestCatalogCodecForwardSuperclassReference(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil)
	b, _ := c.DefineClass("B", nil) // higher id than A
	if _, err := c.AddSuperclass(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCatalog(EncodeCatalog(c))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSubclassOf(a.ID, b.ID) {
		t.Error("forward superclass edge lost")
	}
}

func TestDecodeCatalogCorrupt(t *testing.T) {
	c, _ := buildVehicleSchema(t)
	enc := EncodeCatalog(c)
	if _, err := DecodeCatalog(enc[:3]); err == nil {
		t.Error("short magic accepted")
	}
	if _, err := DecodeCatalog(enc[:len(enc)/2]); err == nil {
		t.Error("truncated catalog accepted")
	}
}

func TestCheckValueDomains(t *testing.T) {
	c, classes := buildVehicleSchema(t)
	weight, _ := c.ResolveAttr(classes["Vehicle"].ID, "weight")
	manufacturer, _ := c.ResolveAttr(classes["Vehicle"].ID, "manufacturer")

	if err := c.CheckValue(weight, model.Int(7500)); err != nil {
		t.Errorf("int into Integer: %v", err)
	}
	if err := c.CheckValue(weight, model.String("heavy")); !errors.Is(err, ErrDomain) {
		t.Errorf("string into Integer: %v", err)
	}
	if err := c.CheckValue(weight, model.Null); err != nil {
		t.Errorf("null should be legal: %v", err)
	}

	// A JapaneseAutoCompany reference satisfies a Company domain
	// (generalization interpretation of domains).
	jac := model.MakeOID(classes["JapaneseAutoCompany"].ID, 1)
	if err := c.CheckValue(manufacturer, model.Ref(jac)); err != nil {
		t.Errorf("subclass instance into superclass domain: %v", err)
	}
	// A Vehicle reference does not.
	veh := model.MakeOID(classes["Vehicle"].ID, 1)
	if err := c.CheckValue(manufacturer, model.Ref(veh)); !errors.Is(err, ErrDomain) {
		t.Errorf("unrelated class into Company domain: %v", err)
	}
}

func TestCheckValueSetValued(t *testing.T) {
	c := NewCatalog()
	cl, _ := c.DefineClass("Doc", nil, AttrSpec{Name: "tags", Domain: ClassString, SetValued: true})
	tags, _ := c.ResolveAttr(cl.ID, "tags")
	if err := c.CheckValue(tags, model.Set(model.String("a"), model.String("b"))); err != nil {
		t.Errorf("legal set rejected: %v", err)
	}
	if err := c.CheckValue(tags, model.String("a")); !errors.Is(err, ErrDomain) {
		t.Error("scalar into set-valued attribute accepted")
	}
	if err := c.CheckValue(tags, model.Set(model.Int(1))); !errors.Is(err, ErrDomain) {
		t.Error("wrong member kind accepted")
	}
}

func TestCheckValueFloatWidening(t *testing.T) {
	c := NewCatalog()
	cl, _ := c.DefineClass("P", nil, AttrSpec{Name: "f", Domain: ClassFloat})
	f, _ := c.ResolveAttr(cl.ID, "f")
	if err := c.CheckValue(f, model.Int(3)); err != nil {
		t.Errorf("int should widen into Float domain: %v", err)
	}
}

func TestMRODeterministic(t *testing.T) {
	c := NewCatalog()
	a, _ := c.DefineClass("A", nil)
	b, _ := c.DefineClass("B", []model.ClassID{a.ID})
	d, _ := c.DefineClass("D", []model.ClassID{a.ID})
	e, _ := c.DefineClass("E", []model.ClassID{b.ID, d.ID})
	mro, err := c.MRO(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Leftmost preorder with first-visit dedup: E, B, A, Object, D.
	want := []model.ClassID{e.ID, b.ID, a.ID, ClassObject, d.ID}
	if len(mro) != len(want) {
		t.Fatalf("MRO = %v, want %v", mro, want)
	}
	for i := range want {
		if mro[i] != want[i] {
			t.Fatalf("MRO = %v, want %v", mro, want)
		}
	}
}
