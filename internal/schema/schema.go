// Package schema implements the class catalog of kimdb: the class hierarchy
// (a rooted directed acyclic graph, Kim §3.1 model 5), attribute and method
// definitions, inheritance with ORION-style conflict resolution, late
// binding of messages (model 6), and dynamic schema evolution with the
// invariant checks of Banerjee et al. (SIGMOD 1987).
//
// The catalog is a runtime metaobject system: classes are data interpreted
// by the engine, not Go types. This is the composition-only port of the
// paper's inheritance model — Go has no subclassing, so the hierarchy,
// inheritance and late binding live entirely in these structures.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"oodb/internal/model"
)

// Well-known class identifiers. Class ids below FirstUserClass are reserved
// for the primitive classes the model pre-installs (Kim §3.1 model 4: "the
// domain class may be a primitive class, such as integer, string, or
// boolean"). ClassObject is the root of the class hierarchy.
const (
	ClassObject  model.ClassID = 1
	ClassInteger model.ClassID = 2
	ClassFloat   model.ClassID = 3
	ClassBoolean model.ClassID = 4
	ClassString  model.ClassID = 5
	ClassBytes   model.ClassID = 6

	// FirstUserClass is the first class id handed to user-defined classes.
	FirstUserClass model.ClassID = 16
)

// Errors reported by catalog operations.
var (
	ErrClassExists     = errors.New("schema: class already exists")
	ErrNoSuchClass     = errors.New("schema: no such class")
	ErrNoSuchAttribute = errors.New("schema: no such attribute")
	ErrNoSuchMethod    = errors.New("schema: no such method")
	ErrAttrExists      = errors.New("schema: attribute already defined on class")
	ErrMethodExists    = errors.New("schema: method already defined on class")
	ErrCycle           = errors.New("schema: edge would create a cycle in the class hierarchy")
	ErrPrimitive       = errors.New("schema: primitive classes cannot be modified")
	ErrHasSubclasses   = errors.New("schema: class still has subclasses")
	ErrLastSuperclass  = errors.New("schema: cannot drop a class's only superclass")
	ErrBadDomain       = errors.New("schema: attribute domain is not a known class")
)

// Attribute describes one attribute of a class. ID is a globally unique,
// never-reused identifier (objects store values keyed by it, which keeps
// stored state valid across schema evolution). Source is the class that
// defined the attribute — for inherited attributes the defining ancestor.
type Attribute struct {
	ID        model.AttrID
	Name      string
	Domain    model.ClassID // domain class; any class may be a domain
	SetValued bool          // attribute holds a set of values (model 2)
	Default   model.Value   // value read when an instance stores none
	Source    model.ClassID // defining class
}

// MethodEngine is the slice of the database engine a method body may use:
// fetching objects and sending further messages. It is an interface so the
// catalog does not depend on the engine packages.
type MethodEngine interface {
	// FetchObject returns the current state of the object, or an error.
	FetchObject(oid model.OID) (*model.Object, error)
	// Send dispatches a message to an object with late binding.
	Send(oid model.OID, message string, args ...model.Value) (model.Value, error)
}

// MethodImpl is the executable body of a method. Methods are program code
// attached to classes (the paper's "behavior"); like ORION's Lisp method
// bodies they are not persisted — applications re-register implementations
// when opening a database, and the catalog persists only the signatures.
type MethodImpl func(eng MethodEngine, recv *model.Object, args []model.Value) (model.Value, error)

// Method describes one method of a class.
type Method struct {
	Name   string
	Source model.ClassID // defining class
	Impl   MethodImpl    // nil until registered in this process
}

// Class is a catalog entry: name, direct superclasses in precedence order,
// locally defined attributes and methods, and derived caches (linearization
// and effective attribute/method tables).
type Class struct {
	ID     model.ClassID
	Name   string
	Supers []model.ClassID // direct superclasses, precedence order
	Subs   []model.ClassID // direct subclasses (maintained, not persisted)

	OwnAttrs   []*Attribute
	OwnMethods []*Method

	// Derived, rebuilt on any hierarchy change.
	mro        []model.ClassID
	effAttrs   map[string]*Attribute
	effMethods map[string]*Method
}

// Catalog is the schema manager. All operations are safe for concurrent
// use; evolution operations serialize against readers.
type Catalog struct {
	mu        sync.RWMutex
	classes   map[model.ClassID]*Class
	byName    map[string]model.ClassID
	nextClass model.ClassID
	nextAttr  model.AttrID
	version   uint64 // bumped on every schema change (schema versioning hook)
}

// NewCatalog returns a catalog pre-installed with the root class Object and
// the primitive classes.
func NewCatalog() *Catalog {
	c := &Catalog{
		classes:   make(map[model.ClassID]*Class),
		byName:    make(map[string]model.ClassID),
		nextClass: FirstUserClass,
		nextAttr:  1,
	}
	c.install(&Class{ID: ClassObject, Name: "Object"})
	for id, name := range map[model.ClassID]string{
		ClassInteger: "Integer",
		ClassFloat:   "Float",
		ClassBoolean: "Boolean",
		ClassString:  "String",
		ClassBytes:   "Bytes",
	} {
		c.install(&Class{ID: id, Name: name, Supers: []model.ClassID{ClassObject}})
	}
	c.rebuildAll()
	return c
}

func (c *Catalog) install(cl *Class) {
	c.classes[cl.ID] = cl
	c.byName[cl.Name] = cl.ID
	for _, s := range cl.Supers {
		sup := c.classes[s]
		sup.Subs = append(sup.Subs, cl.ID)
	}
}

// Version returns the current schema version. Every successful evolution
// operation increments it; the view and plan caches use it for
// invalidation.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Class returns the class with the given id.
func (c *Catalog) Class(id model.ClassID) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	return cl, nil
}

// ClassByName returns the class with the given name.
func (c *Catalog) ClassByName(name string) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	return c.classes[id], nil
}

// Classes returns all classes in ascending id order.
func (c *Catalog) Classes() []*Class {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Class, 0, len(c.classes))
	for _, cl := range c.classes {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsPrimitive reports whether id names one of the pre-installed primitive
// classes (or the root class Object).
func IsPrimitive(id model.ClassID) bool { return id < FirstUserClass }

// DomainKind maps a primitive domain class to the value kind instances of
// that domain must carry. General (user) classes map to KindRef, since an
// attribute whose domain is a general class stores an object reference.
func DomainKind(id model.ClassID) model.Kind {
	switch id {
	case ClassInteger:
		return model.KindInt
	case ClassFloat:
		return model.KindFloat
	case ClassBoolean:
		return model.KindBool
	case ClassString:
		return model.KindString
	case ClassBytes:
		return model.KindBytes
	default:
		return model.KindRef
	}
}
