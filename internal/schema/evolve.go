package schema

import (
	"fmt"

	"oodb/internal/model"
)

// Schema evolution (Kim §3.1 model 5: "the class hierarchy must be
// dynamically extensible"; §5.1; Banerjee et al., SIGMOD 1987). Every
// operation validates the DAG invariants — rooted at Object, acyclic,
// locally unique names — and returns a Change so the engine can maintain
// instances and indexes.

// ChangeKind enumerates evolution operations.
type ChangeKind int

// The evolution operations of the Banerjee taxonomy that affect stored
// state or access paths.
const (
	ChangeNone ChangeKind = iota
	ChangeDefineClass
	ChangeDropClass
	ChangeRenameClass
	ChangeAddAttribute
	ChangeDropAttribute
	ChangeRenameAttribute
	ChangeAddMethod
	ChangeDropMethod
	ChangeAddSuperclass
	ChangeDropSuperclass
)

// Change describes one applied evolution operation. Affected lists the
// classes whose effective definition changed (the class itself and all its
// descendants), which is exactly the set whose instances and indexes may
// need maintenance.
type Change struct {
	Kind     ChangeKind
	Class    model.ClassID
	Attr     model.AttrID
	Name     string
	Affected []model.ClassID
}

// AttrSpec describes an attribute at class-definition time.
type AttrSpec struct {
	Name      string
	Domain    model.ClassID
	SetValued bool
	Default   model.Value
}

// DefineClass creates a new class with the given direct superclasses (in
// precedence order; empty means just Object) and local attributes. It
// returns the new class.
func (c *Catalog) DefineClass(name string, supers []model.ClassID, attrs ...AttrSpec) (*Class, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrClassExists, name)
	}
	if len(supers) == 0 {
		supers = []model.ClassID{ClassObject}
	}
	seen := map[model.ClassID]bool{}
	for _, s := range supers {
		if _, ok := c.classes[s]; !ok {
			return nil, fmt.Errorf("%w: superclass id %d", ErrNoSuchClass, s)
		}
		if seen[s] {
			return nil, fmt.Errorf("schema: duplicate superclass id %d", s)
		}
		seen[s] = true
	}
	if c.nextClass > model.MaxClassID {
		return nil, fmt.Errorf("schema: class id space exhausted")
	}
	cl := &Class{
		ID:     c.nextClass,
		Name:   name,
		Supers: append([]model.ClassID(nil), supers...),
	}
	c.nextClass++
	for _, spec := range attrs {
		a, err := c.newAttribute(cl, spec)
		if err != nil {
			return nil, err
		}
		cl.OwnAttrs = append(cl.OwnAttrs, a)
	}
	c.install(cl)
	c.rebuildAll()
	return cl, nil
}

// newAttribute validates a spec and mints a new attribute with a fresh
// global id. Caller holds the write lock.
func (c *Catalog) newAttribute(cl *Class, spec AttrSpec) (*Attribute, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("schema: empty attribute name on %q", cl.Name)
	}
	for _, a := range cl.OwnAttrs {
		if a.Name == spec.Name {
			return nil, fmt.Errorf("%w: %s.%s", ErrAttrExists, cl.Name, spec.Name)
		}
	}
	if _, ok := c.classes[spec.Domain]; !ok && spec.Domain != cl.ID {
		return nil, fmt.Errorf("%w: %s.%s domain %d", ErrBadDomain, cl.Name, spec.Name, spec.Domain)
	}
	a := &Attribute{
		ID:        c.nextAttr,
		Name:      spec.Name,
		Domain:    spec.Domain,
		SetValued: spec.SetValued,
		Default:   spec.Default,
		Source:    cl.ID,
	}
	c.nextAttr++
	return a, nil
}

// AddAttribute adds a locally defined attribute to an existing class. The
// new attribute is inherited by (and may shadow an inherited name in) every
// descendant. Existing instances read the default value until written — the
// lazy instance-maintenance strategy measured in experiment E6.
func (c *Catalog) AddAttribute(class model.ClassID, spec AttrSpec) (*Attribute, Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return nil, Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if IsPrimitive(class) {
		return nil, Change{}, ErrPrimitive
	}
	a, err := c.newAttribute(cl, spec)
	if err != nil {
		return nil, Change{}, err
	}
	cl.OwnAttrs = append(cl.OwnAttrs, a)
	c.rebuildAll()
	return a, Change{Kind: ChangeAddAttribute, Class: class, Attr: a.ID, Name: a.Name, Affected: c.affected(class)}, nil
}

// DropAttribute removes a locally defined attribute. Instances keep their
// stored (AttrID, Value) pairs — the ids are never reused, so stale pairs
// are inert — but the engine scrubs indexes on the attribute.
func (c *Catalog) DropAttribute(class model.ClassID, name string) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if IsPrimitive(class) {
		return Change{}, ErrPrimitive
	}
	for i, a := range cl.OwnAttrs {
		if a.Name == name {
			cl.OwnAttrs = append(cl.OwnAttrs[:i], cl.OwnAttrs[i+1:]...)
			c.rebuildAll()
			return Change{Kind: ChangeDropAttribute, Class: class, Attr: a.ID, Name: name, Affected: c.affected(class)}, nil
		}
	}
	return Change{}, fmt.Errorf("%w: %s.%s (only locally defined attributes can be dropped)", ErrNoSuchAttribute, cl.Name, name)
}

// RenameAttribute renames a locally defined attribute. Stored instances are
// untouched (they key values by AttrID).
func (c *Catalog) RenameAttribute(class model.ClassID, oldName, newName string) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if newName == "" {
		return Change{}, fmt.Errorf("schema: empty attribute name")
	}
	for _, a := range cl.OwnAttrs {
		if a.Name == newName {
			return Change{}, fmt.Errorf("%w: %s.%s", ErrAttrExists, cl.Name, newName)
		}
	}
	for _, a := range cl.OwnAttrs {
		if a.Name == oldName {
			a.Name = newName
			c.rebuildAll()
			return Change{Kind: ChangeRenameAttribute, Class: class, Attr: a.ID, Name: newName, Affected: c.affected(class)}, nil
		}
	}
	return Change{}, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, cl.Name, oldName)
}

// AddMethod defines a method on a class. The implementation may be nil and
// registered later with RegisterMethod (e.g. after reopening a database).
func (c *Catalog) AddMethod(class model.ClassID, name string, impl MethodImpl) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if IsPrimitive(class) {
		return Change{}, ErrPrimitive
	}
	for _, m := range cl.OwnMethods {
		if m.Name == name {
			return Change{}, fmt.Errorf("%w: %s.%s", ErrMethodExists, cl.Name, name)
		}
	}
	cl.OwnMethods = append(cl.OwnMethods, &Method{Name: name, Source: class, Impl: impl})
	c.rebuildAll()
	return Change{Kind: ChangeAddMethod, Class: class, Name: name, Affected: c.affected(class)}, nil
}

// RegisterMethod attaches (or replaces) the implementation of an existing
// method signature. Method bodies are process-local (see MethodImpl).
func (c *Catalog) RegisterMethod(class model.ClassID, name string, impl MethodImpl) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	for _, m := range cl.OwnMethods {
		if m.Name == name {
			m.Impl = impl
			return nil
		}
	}
	return fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, cl.Name, name)
}

// DropMethod removes a locally defined method.
func (c *Catalog) DropMethod(class model.ClassID, name string) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	for i, m := range cl.OwnMethods {
		if m.Name == name {
			cl.OwnMethods = append(cl.OwnMethods[:i], cl.OwnMethods[i+1:]...)
			c.rebuildAll()
			return Change{Kind: ChangeDropMethod, Class: class, Name: name, Affected: c.affected(class)}, nil
		}
	}
	return Change{}, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, cl.Name, name)
}

// AddSuperclass appends super to the class's direct superclasses (lowest
// precedence), rejecting edges that would create a cycle.
func (c *Catalog) AddSuperclass(class, super model.ClassID) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if _, ok := c.classes[super]; !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, super)
	}
	if IsPrimitive(class) {
		return Change{}, ErrPrimitive
	}
	for _, s := range cl.Supers {
		if s == super {
			return Change{}, fmt.Errorf("schema: %q already a superclass of %q", c.classes[super].Name, cl.Name)
		}
	}
	if c.wouldCycle(class, super) {
		return Change{}, fmt.Errorf("%w: %s -> %s", ErrCycle, cl.Name, c.classes[super].Name)
	}
	cl.Supers = append(cl.Supers, super)
	c.classes[super].Subs = append(c.classes[super].Subs, class)
	c.rebuildAll()
	return Change{Kind: ChangeAddSuperclass, Class: class, Affected: c.affected(class)}, nil
}

// DropSuperclass removes a direct superclass edge. A class must keep at
// least one superclass (the hierarchy stays rooted at Object) — the
// Banerjee invariant; dropping the last edge re-roots the class at Object
// is NOT done implicitly, the caller gets ErrLastSuperclass instead.
func (c *Catalog) DropSuperclass(class, super model.ClassID) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if len(cl.Supers) == 1 {
		return Change{}, ErrLastSuperclass
	}
	for i, s := range cl.Supers {
		if s == super {
			cl.Supers = append(cl.Supers[:i], cl.Supers[i+1:]...)
			removeSub(c.classes[super], class)
			c.rebuildAll()
			return Change{Kind: ChangeDropSuperclass, Class: class, Affected: c.affected(class)}, nil
		}
	}
	return Change{}, fmt.Errorf("%w: id %d is not a direct superclass", ErrNoSuchClass, super)
}

// DropClass removes a class. Per Banerjee, the subclasses of the dropped
// class are re-linked to inherit from its direct superclasses so the
// hierarchy stays connected. The engine must have deleted (or migrated) the
// class's instances first.
func (c *Catalog) DropClass(class model.ClassID) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if IsPrimitive(class) {
		return Change{}, ErrPrimitive
	}
	affected := c.affected(class)
	// Re-link: every direct subclass replaces the dropped class in its
	// superclass list with the dropped class's own superclasses (keeping
	// precedence position and deduplicating).
	for _, subID := range append([]model.ClassID(nil), cl.Subs...) {
		sub := c.classes[subID]
		var next []model.ClassID
		for _, s := range sub.Supers {
			if s != class {
				next = append(next, s)
				continue
			}
			for _, rs := range cl.Supers {
				if !containsClass(next, rs) {
					next = append(next, rs)
					// rs may already be a direct superclass of sub
					// elsewhere in its list; never duplicate the
					// subclass back-edge.
					if !containsClass(c.classes[rs].Subs, subID) {
						c.classes[rs].Subs = append(c.classes[rs].Subs, subID)
					}
				}
			}
		}
		if len(next) == 0 {
			next = []model.ClassID{ClassObject}
			if !containsClass(c.classes[ClassObject].Subs, subID) {
				c.classes[ClassObject].Subs = append(c.classes[ClassObject].Subs, subID)
			}
		}
		sub.Supers = dedupClasses(next)
	}
	for _, s := range cl.Supers {
		removeSub(c.classes[s], class)
	}
	delete(c.classes, class)
	delete(c.byName, cl.Name)
	c.rebuildAll()
	return Change{Kind: ChangeDropClass, Class: class, Name: cl.Name, Affected: affected}, nil
}

// RenameClass changes a class's name.
func (c *Catalog) RenameClass(class model.ClassID, newName string) (Change, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[class]
	if !ok {
		return Change{}, fmt.Errorf("%w: id %d", ErrNoSuchClass, class)
	}
	if IsPrimitive(class) {
		return Change{}, ErrPrimitive
	}
	if _, exists := c.byName[newName]; exists {
		return Change{}, fmt.Errorf("%w: %q", ErrClassExists, newName)
	}
	delete(c.byName, cl.Name)
	cl.Name = newName
	c.byName[newName] = class
	c.version++
	return Change{Kind: ChangeRenameClass, Class: class, Name: newName, Affected: []model.ClassID{class}}, nil
}

// affected returns the class and all its descendants — the classes whose
// effective definition changes when class changes. Caller holds a lock.
func (c *Catalog) affected(class model.ClassID) []model.ClassID {
	seen := map[model.ClassID]bool{}
	var out []model.ClassID
	stack := []model.ClassID{class}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		if node := c.classes[n]; node != nil {
			stack = append(stack, node.Subs...)
		}
	}
	sortClassIDs(out)
	return out
}

func removeSub(cl *Class, sub model.ClassID) {
	for i, s := range cl.Subs {
		if s == sub {
			cl.Subs = append(cl.Subs[:i], cl.Subs[i+1:]...)
			return
		}
	}
}

func containsClass(ids []model.ClassID, id model.ClassID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func dedupClasses(ids []model.ClassID) []model.ClassID {
	seen := map[model.ClassID]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
