package schema

import (
	"fmt"

	"oodb/internal/model"
)

// Hierarchy queries. The class hierarchy is a DAG rooted at Object; a query
// against class C by default ranges over C and every class in the hierarchy
// rooted at C (Kim §3.2), so descendant enumeration is on the hot path of
// planning and is served from the read lock only.

// MRO returns the method-resolution order of the class: the class itself
// followed by its ancestors in leftmost preorder with duplicates removed on
// first visit. This is the ORION/Flavors rule the paper's model 5 implies —
// "conflicts are resolved by the order of the superclasses".
func (c *Catalog) MRO(id model.ClassID) ([]model.ClassID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	return cl.mro, nil
}

// computeMRO rebuilds the linearization for one class. Caller holds the
// write lock.
func (c *Catalog) computeMRO(cl *Class) []model.ClassID {
	seen := make(map[model.ClassID]bool)
	var order []model.ClassID
	var visit func(id model.ClassID)
	visit = func(id model.ClassID) {
		if seen[id] {
			return
		}
		seen[id] = true
		order = append(order, id)
		node := c.classes[id]
		if node == nil {
			return
		}
		for _, s := range node.Supers {
			visit(s)
		}
	}
	visit(cl.ID)
	return order
}

// rebuildAll recomputes every class's derived caches (MRO and effective
// attribute/method tables). Caller holds the write lock (or is the
// constructor). Schema evolution is rare relative to reads, so a full
// rebuild keeps the invariants simple.
func (c *Catalog) rebuildAll() {
	for _, cl := range c.classes {
		cl.mro = c.computeMRO(cl)
	}
	for _, cl := range c.classes {
		cl.effAttrs = make(map[string]*Attribute)
		cl.effMethods = make(map[string]*Method)
		// Walk the MRO from most-specific to least; first definition of a
		// name wins, so a local redefinition overrides any inherited one
		// and leftmost-superclass definitions beat later superclasses.
		for _, anc := range cl.mro {
			node := c.classes[anc]
			for _, a := range node.OwnAttrs {
				if _, taken := cl.effAttrs[a.Name]; !taken {
					cl.effAttrs[a.Name] = a
				}
			}
			for _, m := range node.OwnMethods {
				if _, taken := cl.effMethods[m.Name]; !taken {
					cl.effMethods[m.Name] = m
				}
			}
		}
	}
	c.version++
}

// IsSubclassOf reports whether sub is c (classes are their own subclass) or
// a direct or indirect subclass of super.
func (c *Catalog) IsSubclassOf(sub, super model.ClassID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[sub]
	if !ok {
		return false
	}
	for _, anc := range cl.mro {
		if anc == super {
			return true
		}
	}
	return false
}

// Descendants returns the ids of every class in the hierarchy rooted at id,
// including id itself, in deterministic (sorted) order. This is the scope of
// a class-hierarchy query and of a class-hierarchy index.
func (c *Catalog) Descendants(id model.ClassID) ([]model.ClassID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.classes[id]; !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	seen := map[model.ClassID]bool{}
	var out []model.ClassID
	stack := []model.ClassID{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, c.classes[n].Subs...)
	}
	sortClassIDs(out)
	return out, nil
}

// Ancestors returns the MRO of id without id itself.
func (c *Catalog) Ancestors(id model.ClassID) ([]model.ClassID, error) {
	mro, err := c.MRO(id)
	if err != nil {
		return nil, err
	}
	return mro[1:], nil
}

// wouldCycle reports whether adding super as a superclass of sub would
// create a cycle, i.e. whether sub is reachable from super via superclass
// edges... equivalently whether super is a descendant of sub. Caller holds
// at least the read lock.
func (c *Catalog) wouldCycle(sub, super model.ClassID) bool {
	if sub == super {
		return true
	}
	stack := []model.ClassID{super}
	seen := map[model.ClassID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == sub {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		if node := c.classes[n]; node != nil {
			stack = append(stack, node.Supers...)
		}
	}
	return false
}

func sortClassIDs(ids []model.ClassID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// EffectiveAttrs returns the effective attribute table of the class — its
// own attributes plus all inherited ones after conflict resolution — in
// deterministic (name-sorted) order.
func (c *Catalog) EffectiveAttrs(id model.ClassID) ([]*Attribute, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	out := make([]*Attribute, 0, len(cl.effAttrs))
	for _, a := range cl.effAttrs {
		out = append(out, a)
	}
	sortAttrs(out)
	return out, nil
}

func sortAttrs(attrs []*Attribute) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Name < attrs[j-1].Name; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}

// ResolveAttr resolves an attribute name against the effective definition
// of the class (local or inherited).
func (c *Catalog) ResolveAttr(id model.ClassID, name string) (*Attribute, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	a, ok := cl.effAttrs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, cl.Name, name)
	}
	return a, nil
}

// ResolveMethod resolves a message name against the effective method table
// of the class — the late-binding step of model 6: "if a message sent to an
// instance of a class is undefined for the class, it is sent up the class
// hierarchy to determine the class in which it is defined".
func (c *Catalog) ResolveMethod(id model.ClassID, name string) (*Method, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchClass, id)
	}
	m, ok := cl.effMethods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, cl.Name, name)
	}
	return m, nil
}
