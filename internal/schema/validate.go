package schema

import (
	"errors"
	"fmt"

	"oodb/internal/model"
)

// ErrDomain reports a value that does not conform to an attribute's domain.
var ErrDomain = errors.New("schema: value violates attribute domain")

// CheckValue verifies that v is a legal value for attribute a under the
// catalog's current hierarchy:
//
//   - null is legal for any attribute;
//   - a primitive domain requires the matching primitive kind (integers
//     widen to a Float domain, mirroring Compare's numeric class);
//   - a general (user-class) domain requires a reference whose target class
//     is the domain class or any of its subclasses — the paper's
//     generalization interpretation of attribute domains (§3.2: a
//     Manufacturer declared Company "may take on as its values objects from
//     the class Company and any direct or indirect subclass");
//   - a set-valued attribute requires a set whose every member satisfies
//     the element rule above.
func (c *Catalog) CheckValue(a *Attribute, v model.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.SetValued {
		members, ok := v.AsSet()
		if !ok {
			return fmt.Errorf("%w: attribute %q requires a set, got %s", ErrDomain, a.Name, v.Kind())
		}
		for _, m := range members {
			if err := c.checkElement(a, m); err != nil {
				return err
			}
		}
		return nil
	}
	return c.checkElement(a, v)
}

func (c *Catalog) checkElement(a *Attribute, v model.Value) error {
	want := DomainKind(a.Domain)
	if want != model.KindRef {
		if v.Kind() == want {
			return nil
		}
		if want == model.KindFloat && v.Kind() == model.KindInt {
			return nil // integers widen into a Float domain
		}
		return fmt.Errorf("%w: attribute %q wants %s, got %s", ErrDomain, a.Name, want, v.Kind())
	}
	oid, ok := v.AsRef()
	if !ok {
		return fmt.Errorf("%w: attribute %q wants a reference, got %s", ErrDomain, a.Name, v.Kind())
	}
	if !c.IsSubclassOf(oid.Class(), a.Domain) {
		return fmt.Errorf("%w: attribute %q wants class %d or a subclass, got class %d",
			ErrDomain, a.Name, a.Domain, oid.Class())
	}
	return nil
}
