package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oodb/internal/model"
)

func key(i int) []byte { return model.Key(model.Int(int64(i))) }
func oid(i int) model.OID {
	return model.MakeOID(20, uint64(i)+1)
}

func TestTreeInsertSearch(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), oid(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		posts := tr.Search(key(i))
		if len(posts) != 1 || posts[0] != oid(i) {
			t.Fatalf("Search(%d) = %v", i, posts)
		}
	}
	if tr.Search(key(5000)) != nil {
		t.Error("search of absent key returned postings")
	}
	if tr.Height() < 2 {
		t.Error("1000 keys should split the root")
	}
}

func TestTreeDuplicateKeys(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 50; i++ {
		tr.Insert(key(7), oid(i))
	}
	// Duplicate (key, oid) pair ignored.
	tr.Insert(key(7), oid(0))
	posts := tr.Search(key(7))
	if len(posts) != 50 {
		t.Fatalf("postings = %d, want 50", len(posts))
	}
	// Postings sorted.
	for i := 1; i < len(posts); i++ {
		if posts[i-1] >= posts[i] {
			t.Fatal("postings not sorted")
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTreeDelete(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 500; i++ {
		tr.Insert(key(i), oid(i))
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(key(i), oid(i)) {
			t.Fatalf("delete %d reported absent", i)
		}
	}
	if tr.Delete(key(0), oid(0)) {
		t.Error("double delete reported present")
	}
	if tr.Delete(key(9999), oid(1)) {
		t.Error("delete of absent key reported present")
	}
	for i := 0; i < 500; i++ {
		posts := tr.Search(key(i))
		if i%2 == 0 && posts != nil {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && len(posts) != 1 {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if tr.Len() != 250 {
		t.Errorf("Len = %d, want 250", tr.Len())
	}
}

func TestTreeRange(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), oid(i))
	}
	collect := func(lo, hi []byte, hiInc bool) []int {
		var out []int
		tr.Range(lo, hi, hiInc, func(k []byte, posts []model.OID) bool {
			out = append(out, int(posts[0].Seq())-1)
			return true
		})
		return out
	}
	got := collect(key(10), key(20), false)
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	got = collect(key(10), key(20), true)
	if len(got) != 11 || got[10] != 20 {
		t.Fatalf("range [10,20] = %v", got)
	}
	got = collect(nil, key(5), true)
	if len(got) != 6 {
		t.Fatalf("range (-inf,5] = %v", got)
	}
	got = collect(key(95), nil, false)
	if len(got) != 5 || got[4] != 99 {
		t.Fatalf("range [95,inf) = %v", got)
	}
	// Early stop.
	n := 0
	tr.Range(nil, nil, false, func([]byte, []model.OID) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop at %d", n)
	}
}

func TestTreeRandomizedAgainstMap(t *testing.T) {
	// Property-style: the tree must agree with a reference map under a
	// random mix of inserts and deletes over a small key space (forcing
	// heavy duplicate traffic and leaf churn).
	r := rand.New(rand.NewSource(3))
	tr := NewTree()
	ref := map[string]map[model.OID]bool{}
	for step := 0; step < 30000; step++ {
		k := key(r.Intn(200))
		o := oid(r.Intn(50))
		ks := string(k)
		if r.Intn(3) > 0 {
			tr.Insert(k, o)
			if ref[ks] == nil {
				ref[ks] = map[model.OID]bool{}
			}
			ref[ks][o] = true
		} else {
			want := ref[ks][o]
			got := tr.Delete(k, o)
			if got != want {
				t.Fatalf("step %d: Delete = %v, want %v", step, got, want)
			}
			delete(ref[ks], o)
		}
	}
	// Full agreement check.
	total := 0
	for ks, set := range ref {
		posts := tr.Search([]byte(ks))
		if len(posts) != len(set) {
			t.Fatalf("key %x: %d postings, want %d", ks, len(posts), len(set))
		}
		for _, o := range posts {
			if !set[o] {
				t.Fatalf("key %x: stray oid %v", ks, o)
			}
		}
		total += len(set)
	}
	if tr.Len() != total {
		t.Errorf("Len = %d, want %d", tr.Len(), total)
	}
	// Range over everything must be in sorted key order.
	var prev []byte
	tr.Range(nil, nil, false, func(k []byte, _ []model.OID) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("range keys out of order")
		}
		prev = append(prev[:0], k...)
		return true
	})
}

func TestTreeStringKeys(t *testing.T) {
	tr := NewTree()
	words := []string{"Detroit", "Austin", "Tokyo", "Osaka", "Berlin"}
	for i, w := range words {
		tr.Insert(model.Key(model.String(w)), oid(i))
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	var got []string
	tr.Range(nil, nil, false, func(k []byte, posts []model.OID) bool {
		got = append(got, words[posts[0].Seq()-1])
		return true
	})
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order = %v, want %v", got, sorted)
		}
	}
}

func TestTreeLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale tree test")
	}
	tr := NewTree()
	const n = 100000
	perm := rand.New(rand.NewSource(8)).Perm(n)
	for _, i := range perm {
		tr.Insert(key(i), oid(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i += 997 {
		if posts := tr.Search(key(i)); len(posts) != 1 {
			t.Fatalf("key %d lost", i)
		}
	}
	if h := tr.Height(); h > 5 {
		t.Errorf("height %d too tall for %d keys at order %d", h, n, btreeOrder)
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	tr := NewTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(i), oid(i))
	}
}

func BenchmarkTreeSearch(b *testing.B) {
	tr := NewTree()
	for i := 0; i < 100000; i++ {
		tr.Insert(key(i), oid(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(key(i % 100000))
	}
}

func ExampleTree() {
	tr := NewTree()
	tr.Insert(model.Key(model.Int(8000)), model.MakeOID(20, 1))
	tr.Insert(model.Key(model.Int(7000)), model.MakeOID(20, 2))
	posts := tr.Search(model.Key(model.Int(8000)))
	fmt.Println(len(posts), posts[0])
	// Output: 1 20:1
}
