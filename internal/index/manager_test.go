package index

import (
	"errors"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// fakeStore is an in-memory Fetcher for manager tests.
type fakeStore struct {
	objs map[model.OID]*model.Object
}

func newFakeStore() *fakeStore { return &fakeStore{objs: map[model.OID]*model.Object{}} }

func (f *fakeStore) FetchObject(oid model.OID) (*model.Object, error) {
	o, ok := f.objs[oid]
	if !ok {
		return nil, errors.New("no such object")
	}
	return o, nil
}

// put mirrors the engine's write path: store the object and feed the index
// manager the old/new pair.
func (f *fakeStore) put(t *testing.T, m *Manager, o *model.Object) {
	t.Helper()
	old := f.objs[o.OID]
	f.objs[o.OID] = o
	if err := m.OnPut(old, o); err != nil {
		t.Fatal(err)
	}
}

func (f *fakeStore) del(t *testing.T, m *Manager, oid model.OID) {
	t.Helper()
	old := f.objs[oid]
	delete(f.objs, oid)
	if old != nil {
		if err := m.OnDelete(old); err != nil {
			t.Fatal(err)
		}
	}
}

// vehicleWorld builds the Figure 1 schema plus an index manager and fake
// store.
type vehicleWorld struct {
	cat                            *schema.Catalog
	mgr                            *Manager
	store                          *fakeStore
	vehicle, auto, truck, company  *schema.Class
	weight, manufacturer, location model.AttrID
}

func newVehicleWorld(t *testing.T) *vehicleWorld {
	t.Helper()
	cat := schema.NewCatalog()
	company, _ := cat.DefineClass("Company", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "location", Domain: schema.ClassString})
	vehicle, _ := cat.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "weight", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "manufacturer", Domain: company.ID})
	auto, _ := cat.DefineClass("Automobile", []model.ClassID{vehicle.ID})
	truck, _ := cat.DefineClass("Truck", []model.ClassID{vehicle.ID})
	store := newFakeStore()
	mgr := NewManager(cat, store)
	w, _ := cat.ResolveAttr(vehicle.ID, "weight")
	m, _ := cat.ResolveAttr(vehicle.ID, "manufacturer")
	l, _ := cat.ResolveAttr(company.ID, "location")
	return &vehicleWorld{
		cat: cat, mgr: mgr, store: store,
		vehicle: vehicle, auto: auto, truck: truck, company: company,
		weight: w.ID, manufacturer: m.ID, location: l.ID,
	}
}

func (w *vehicleWorld) newVehicle(t *testing.T, class model.ClassID, seq uint64, weight int64, maker model.OID) *model.Object {
	o := model.NewObject(model.MakeOID(class, seq))
	o.Set(w.weight, model.Int(weight))
	if !maker.IsNil() {
		o.Set(w.manufacturer, model.Ref(maker))
	}
	return o
}

func (w *vehicleWorld) newCompany(seq uint64, loc string) *model.Object {
	o := model.NewObject(model.MakeOID(w.company.ID, seq))
	o.Set(w.location, model.String(loc))
	return o
}

func TestClassHierarchyIndexCoversSubclasses(t *testing.T) {
	w := newVehicleWorld(t)
	idx, err := w.mgr.Create("vehicle_weight", w.vehicle.ID, []model.AttrID{w.weight}, true)
	if err != nil {
		t.Fatal(err)
	}
	w.store.put(t, w.mgr, w.newVehicle(t, w.vehicle.ID, 1, 8000, model.NilOID))
	w.store.put(t, w.mgr, w.newVehicle(t, w.auto.ID, 1, 8000, model.NilOID))
	w.store.put(t, w.mgr, w.newVehicle(t, w.truck.ID, 1, 9000, model.NilOID))

	// Hierarchy-scoped lookup: all classes.
	got := idx.Lookup(model.Int(8000), nil)
	if len(got) != 2 {
		t.Fatalf("Lookup(8000) = %v", got)
	}
	// ONLY-scoped lookup: filter to the Automobile class.
	got = idx.Lookup(model.Int(8000), map[model.ClassID]bool{w.auto.ID: true})
	if len(got) != 1 || got[0].Class() != w.auto.ID {
		t.Fatalf("ONLY lookup = %v", got)
	}
	// Range across the hierarchy.
	got = idx.Range(model.Int(8500), model.Null, false, nil)
	if len(got) != 1 || got[0].Class() != w.truck.ID {
		t.Fatalf("Range = %v", got)
	}
}

func TestSingleClassIndexDoesNotCoverSubclasses(t *testing.T) {
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("veh_only", w.vehicle.ID, []model.AttrID{w.weight}, false)
	w.store.put(t, w.mgr, w.newVehicle(t, w.vehicle.ID, 1, 8000, model.NilOID))
	w.store.put(t, w.mgr, w.newVehicle(t, w.auto.ID, 1, 8000, model.NilOID))
	got := idx.Lookup(model.Int(8000), nil)
	if len(got) != 1 || got[0].Class() != w.vehicle.ID {
		t.Fatalf("SC index indexed subclasses: %v", got)
	}
}

func TestIndexUpdateAndDeleteMaintenance(t *testing.T) {
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("vehicle_weight", w.vehicle.ID, []model.AttrID{w.weight}, true)
	v := w.newVehicle(t, w.vehicle.ID, 1, 8000, model.NilOID)
	w.store.put(t, w.mgr, v)

	v2 := v.Clone()
	v2.Set(w.weight, model.Int(7000))
	w.store.put(t, w.mgr, v2)
	if got := idx.Lookup(model.Int(8000), nil); got != nil {
		t.Fatalf("old key still indexed: %v", got)
	}
	if got := idx.Lookup(model.Int(7000), nil); len(got) != 1 {
		t.Fatalf("new key missing: %v", got)
	}

	w.store.del(t, w.mgr, v.OID)
	if got := idx.Lookup(model.Int(7000), nil); got != nil {
		t.Fatalf("deleted object still indexed: %v", got)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d after delete", idx.Len())
	}
}

func TestNestedAttributeIndex(t *testing.T) {
	w := newVehicleWorld(t)
	idx, err := w.mgr.Create("veh_maker_loc", w.vehicle.ID,
		[]model.AttrID{w.manufacturer, w.location}, true)
	if err != nil {
		t.Fatal(err)
	}
	detroit := w.newCompany(1, "Detroit")
	tokyo := w.newCompany(2, "Tokyo")
	w.store.put(t, w.mgr, detroit)
	w.store.put(t, w.mgr, tokyo)

	v1 := w.newVehicle(t, w.vehicle.ID, 1, 8000, detroit.OID)
	v2 := w.newVehicle(t, w.truck.ID, 1, 9000, detroit.OID)
	v3 := w.newVehicle(t, w.auto.ID, 1, 7000, tokyo.OID)
	w.store.put(t, w.mgr, v1)
	w.store.put(t, w.mgr, v2)
	w.store.put(t, w.mgr, v3)

	got := idx.Lookup(model.String("Detroit"), nil)
	if len(got) != 2 {
		t.Fatalf("Lookup(Detroit) = %v", got)
	}
	got = idx.Lookup(model.String("Tokyo"), nil)
	if len(got) != 1 || got[0] != v3.OID {
		t.Fatalf("Lookup(Tokyo) = %v", got)
	}
}

func TestNestedIndexInteriorUpdate(t *testing.T) {
	// The crucial path-index property: updating the interior object
	// (Company.location) re-keys every head (Vehicle) whose path passes
	// through it, without the heads being touched.
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("veh_maker_loc", w.vehicle.ID,
		[]model.AttrID{w.manufacturer, w.location}, true)
	detroit := w.newCompany(1, "Detroit")
	w.store.put(t, w.mgr, detroit)
	for i := uint64(1); i <= 5; i++ {
		w.store.put(t, w.mgr, w.newVehicle(t, w.vehicle.ID, i, 8000, detroit.OID))
	}
	if got := idx.Lookup(model.String("Detroit"), nil); len(got) != 5 {
		t.Fatalf("before move: %v", got)
	}
	// The company moves.
	moved := detroit.Clone()
	moved.Set(w.location, model.String("Austin"))
	w.store.put(t, w.mgr, moved)

	if got := idx.Lookup(model.String("Detroit"), nil); got != nil {
		t.Fatalf("stale keys after interior update: %v", got)
	}
	if got := idx.Lookup(model.String("Austin"), nil); len(got) != 5 {
		t.Fatalf("after move: %v", got)
	}
}

func TestNestedIndexHeadRetargets(t *testing.T) {
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("veh_maker_loc", w.vehicle.ID,
		[]model.AttrID{w.manufacturer, w.location}, true)
	detroit := w.newCompany(1, "Detroit")
	tokyo := w.newCompany(2, "Tokyo")
	w.store.put(t, w.mgr, detroit)
	w.store.put(t, w.mgr, tokyo)
	v := w.newVehicle(t, w.vehicle.ID, 1, 8000, detroit.OID)
	w.store.put(t, w.mgr, v)

	// Head switches manufacturer.
	v2 := v.Clone()
	v2.Set(w.manufacturer, model.Ref(tokyo.OID))
	w.store.put(t, w.mgr, v2)
	if got := idx.Lookup(model.String("Detroit"), nil); got != nil {
		t.Fatalf("stale Detroit entry: %v", got)
	}
	if got := idx.Lookup(model.String("Tokyo"), nil); len(got) != 1 {
		t.Fatalf("missing Tokyo entry: %v", got)
	}
	// After the retarget, updating the old company must not disturb v.
	d2 := detroit.Clone()
	d2.Set(w.location, model.String("Flint"))
	w.store.put(t, w.mgr, d2)
	if got := idx.Lookup(model.String("Tokyo"), nil); len(got) != 1 {
		t.Fatalf("old interior update disturbed retargeted head: %v", got)
	}
}

func TestNestedIndexInteriorDelete(t *testing.T) {
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("veh_maker_loc", w.vehicle.ID,
		[]model.AttrID{w.manufacturer, w.location}, true)
	detroit := w.newCompany(1, "Detroit")
	w.store.put(t, w.mgr, detroit)
	v := w.newVehicle(t, w.vehicle.ID, 1, 8000, detroit.OID)
	w.store.put(t, w.mgr, v)

	// Deleting the company leaves the vehicle with a dangling reference:
	// its path instantiation dead-ends, so it is unindexed.
	w.store.del(t, w.mgr, detroit.OID)
	if got := idx.Lookup(model.String("Detroit"), nil); got != nil {
		t.Fatalf("dangling path still indexed: %v", got)
	}
}

func TestSetValuedAttributeIndexed(t *testing.T) {
	cat := schema.NewCatalog()
	doc, _ := cat.DefineClass("Doc", nil,
		schema.AttrSpec{Name: "tags", Domain: schema.ClassString, SetValued: true})
	tags, _ := cat.ResolveAttr(doc.ID, "tags")
	store := newFakeStore()
	mgr := NewManager(cat, store)
	idx, _ := mgr.Create("doc_tags", doc.ID, []model.AttrID{tags.ID}, true)

	o := model.NewObject(model.MakeOID(doc.ID, 1))
	o.Set(tags.ID, model.Set(model.String("db"), model.String("oo")))
	store.put(t, mgr, o)

	if got := idx.Lookup(model.String("db"), nil); len(got) != 1 {
		t.Fatalf("member db not indexed: %v", got)
	}
	if got := idx.Lookup(model.String("oo"), nil); len(got) != 1 {
		t.Fatalf("member oo not indexed: %v", got)
	}
	// Removing a member unindexes just that member.
	o2 := o.Clone()
	o2.Set(tags.ID, model.Set(model.String("db")))
	store.put(t, mgr, o2)
	if got := idx.Lookup(model.String("oo"), nil); got != nil {
		t.Fatalf("removed member still indexed: %v", got)
	}
}

func TestNullValuesNotIndexed(t *testing.T) {
	w := newVehicleWorld(t)
	idx, _ := w.mgr.Create("vehicle_weight", w.vehicle.ID, []model.AttrID{w.weight}, true)
	o := model.NewObject(model.MakeOID(w.vehicle.ID, 1)) // no weight set
	w.store.put(t, w.mgr, o)
	if idx.Len() != 0 {
		t.Errorf("null value indexed: Len = %d", idx.Len())
	}
}

func TestManagerCovering(t *testing.T) {
	w := newVehicleWorld(t)
	w.mgr.Create("ch", w.vehicle.ID, []model.AttrID{w.weight}, true)
	w.mgr.Create("sc_truck", w.truck.ID, []model.AttrID{w.weight}, false)

	// For the Truck class both indexes apply.
	got := w.mgr.Covering(w.truck.ID, w.weight)
	if len(got) != 2 {
		t.Fatalf("Covering(Truck) = %d indexes", len(got))
	}
	// For Automobile only the CH index applies.
	got = w.mgr.Covering(w.auto.ID, w.weight)
	if len(got) != 1 || got[0].Name != "ch" {
		t.Fatalf("Covering(Automobile) = %v", got)
	}
	// Wrong attribute: nothing.
	if got := w.mgr.Covering(w.truck.ID, w.manufacturer); len(got) != 0 {
		t.Fatalf("Covering(manufacturer) = %v", got)
	}
}

func TestCreateDuplicateAndDrop(t *testing.T) {
	w := newVehicleWorld(t)
	if _, err := w.mgr.Create("i", w.vehicle.ID, []model.AttrID{w.weight}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := w.mgr.Create("i", w.vehicle.ID, []model.AttrID{w.weight}, true); !errors.Is(err, ErrIndexExists) {
		t.Errorf("expected ErrIndexExists, got %v", err)
	}
	if _, err := w.mgr.Create("empty", w.vehicle.ID, nil, true); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("expected ErrEmptyPath, got %v", err)
	}
	if err := w.mgr.Drop("i"); err != nil {
		t.Fatal(err)
	}
	if err := w.mgr.Drop("i"); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("expected ErrNoSuchIndex, got %v", err)
	}
}

func TestDefsCodecRoundTrip(t *testing.T) {
	w := newVehicleWorld(t)
	w.mgr.Create("a", w.vehicle.ID, []model.AttrID{w.weight}, true)
	w.mgr.Create("b", w.vehicle.ID, []model.AttrID{w.manufacturer, w.location}, false)
	defs, err := DecodeDefs(EncodeDefs(w.mgr))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 {
		t.Fatalf("decoded %d defs", len(defs))
	}
	if defs[0].Name != "a" || !defs[0].Hierarchy || len(defs[0].Path) != 1 {
		t.Errorf("def a = %+v", defs[0])
	}
	if defs[1].Name != "b" || defs[1].Hierarchy || len(defs[1].Path) != 2 {
		t.Errorf("def b = %+v", defs[1])
	}
	if _, err := DecodeDefs([]byte{0x05, 0x01}); err == nil {
		t.Error("corrupt defs accepted")
	}
}

func TestThreeLevelNestedIndex(t *testing.T) {
	// Vehicle.manufacturer -> Company.division -> Division.city
	cat := schema.NewCatalog()
	division, _ := cat.DefineClass("Division", nil,
		schema.AttrSpec{Name: "city", Domain: schema.ClassString})
	company, _ := cat.DefineClass("Company", nil,
		schema.AttrSpec{Name: "division", Domain: division.ID})
	vehicle, _ := cat.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "manufacturer", Domain: company.ID})
	city, _ := cat.ResolveAttr(division.ID, "city")
	div, _ := cat.ResolveAttr(company.ID, "division")
	man, _ := cat.ResolveAttr(vehicle.ID, "manufacturer")

	store := newFakeStore()
	mgr := NewManager(cat, store)
	idx, _ := mgr.Create("deep", vehicle.ID, []model.AttrID{man.ID, div.ID, city.ID}, true)

	d := model.NewObject(model.MakeOID(division.ID, 1))
	d.Set(city.ID, model.String("Austin"))
	store.put(t, mgr, d)
	c := model.NewObject(model.MakeOID(company.ID, 1))
	c.Set(div.ID, model.Ref(d.OID))
	store.put(t, mgr, c)
	v := model.NewObject(model.MakeOID(vehicle.ID, 1))
	v.Set(man.ID, model.Ref(c.OID))
	store.put(t, mgr, v)

	if got := idx.Lookup(model.String("Austin"), nil); len(got) != 1 || got[0] != v.OID {
		t.Fatalf("deep lookup = %v", got)
	}
	// Update at depth 2 (the division moves).
	d2 := d.Clone()
	d2.Set(city.ID, model.String("Dallas"))
	store.put(t, mgr, d2)
	if got := idx.Lookup(model.String("Dallas"), nil); len(got) != 1 {
		t.Fatalf("deep interior update lost: %v", got)
	}
	// Update at depth 1 (the company changes division).
	d3 := model.NewObject(model.MakeOID(division.ID, 2))
	d3.Set(city.ID, model.String("Houston"))
	store.put(t, mgr, d3)
	c2 := c.Clone()
	c2.Set(div.ID, model.Ref(d3.OID))
	store.put(t, mgr, c2)
	if got := idx.Lookup(model.String("Houston"), nil); len(got) != 1 {
		t.Fatalf("mid-path retarget lost: %v", got)
	}
	if got := idx.Lookup(model.String("Dallas"), nil); got != nil {
		t.Fatalf("stale mid-path key: %v", got)
	}
}
