// Package index implements kimdb's access paths: a B+tree over
// order-preserving value keys, single-class indexes, class-hierarchy
// indexes (one structure for an attribute over a whole class hierarchy,
// Kim §3.2 / [KIM89b]) and nested-attribute path indexes ([BERT89]).
//
// Index definitions are persisted in the database's index table; index
// contents are memory-resident and rebuilt from class scans at open time —
// the classic rebuild-on-open trade: index maintenance never writes pages,
// at the cost of an O(data) scan when the database opens.
package index

import (
	"bytes"
	"sort"

	"oodb/internal/model"
)

// btreeOrder is the fan-out of internal nodes. 64 keeps the tree shallow
// while nodes stay cache-friendly.
const btreeOrder = 64

// Tree is an in-memory B+tree mapping byte-comparable keys to postings
// lists of OIDs. Duplicate keys are supported by accumulating OIDs in the
// postings list of a single key entry. Deletes are lazy (no node merging),
// matching the common production trade-off.
type Tree struct {
	root node
	size int // number of (key, oid) pairs
}

type node interface {
	// insert returns a new right sibling and its separator key if the node
	// split, else nil.
	insert(key []byte, oid model.OID, t *Tree) (sep []byte, right node)
}

type leaf struct {
	keys  [][]byte
	posts [][]model.OID
	next  *leaf
}

type inner struct {
	keys     [][]byte // len = len(children) - 1
	children []node
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{root: &leaf{}} }

// Len returns the number of (key, oid) pairs in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds oid under key. Inserting a duplicate (key, oid) pair is a
// no-op.
func (t *Tree) Insert(key []byte, oid model.OID) {
	sep, right := t.root.insert(key, oid, t)
	if right != nil {
		t.root = &inner{keys: [][]byte{sep}, children: []node{t.root, right}}
	}
}

func (l *leaf) insert(key []byte, oid model.OID, t *Tree) ([]byte, node) {
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		posts := l.posts[i]
		j := sort.Search(len(posts), func(j int) bool { return posts[j] >= oid })
		if j < len(posts) && posts[j] == oid {
			return nil, nil // duplicate pair
		}
		posts = append(posts, 0)
		copy(posts[j+1:], posts[j:])
		posts[j] = oid
		l.posts[i] = posts
		t.size++
		return nil, nil
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = append([]byte(nil), key...)
	l.posts = append(l.posts, nil)
	copy(l.posts[i+1:], l.posts[i:])
	l.posts[i] = []model.OID{oid}
	t.size++
	if len(l.keys) <= btreeOrder {
		return nil, nil
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys:  append([][]byte(nil), l.keys[mid:]...),
		posts: append([][]model.OID(nil), l.posts[mid:]...),
		next:  l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.posts = l.posts[:mid:mid]
	l.next = right
	mLeafSplits.Add(1)
	return right.keys[0], right
}

func (in *inner) insert(key []byte, oid model.OID, t *Tree) ([]byte, node) {
	i := sort.Search(len(in.keys), func(i int) bool { return bytes.Compare(key, in.keys[i]) < 0 })
	sep, right := in.children[i].insert(key, oid, t)
	if right == nil {
		return nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = sep
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = right
	if len(in.children) <= btreeOrder {
		return nil, nil
	}
	mid := len(in.keys) / 2
	sepUp := in.keys[mid]
	r := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	mInnerSplit.Add(1)
	return sepUp, r
}

// findLeaf descends to the leaf that would contain key, recording the
// probe depth (levels visited, leaf included).
func (t *Tree) findLeaf(key []byte) *leaf {
	n := t.root
	depth := uint64(1)
	for {
		switch v := n.(type) {
		case *leaf:
			mProbeDepth.Observe(depth)
			mProbes.Add(1)
			return v
		case *inner:
			i := sort.Search(len(v.keys), func(i int) bool { return bytes.Compare(key, v.keys[i]) < 0 })
			n = v.children[i]
			depth++
		}
	}
}

// Delete removes the (key, oid) pair, reporting whether it was present.
// Leaves are never merged (lazy deletion).
func (t *Tree) Delete(key []byte, oid model.OID) bool {
	l := t.findLeaf(key)
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i >= len(l.keys) || !bytes.Equal(l.keys[i], key) {
		return false
	}
	posts := l.posts[i]
	j := sort.Search(len(posts), func(j int) bool { return posts[j] >= oid })
	if j >= len(posts) || posts[j] != oid {
		return false
	}
	posts = append(posts[:j], posts[j+1:]...)
	t.size--
	if len(posts) == 0 {
		l.keys = append(l.keys[:i], l.keys[i+1:]...)
		l.posts = append(l.posts[:i], l.posts[i+1:]...)
	} else {
		l.posts[i] = posts
	}
	return true
}

// Search returns the postings list for key (nil if absent). The returned
// slice must not be modified.
func (t *Tree) Search(key []byte) []model.OID {
	l := t.findLeaf(key)
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		return l.posts[i]
	}
	return nil
}

// Range calls fn for every (key, postings) pair with lo <= key and
// (hi == nil or key < hi, or key <= hi when hiInclusive). A nil lo starts
// at the smallest key. fn returning false stops the scan.
func (t *Tree) Range(lo, hi []byte, hiInclusive bool, fn func(key []byte, posts []model.OID) bool) {
	var l *leaf
	var i int
	if lo == nil {
		l = t.leftmost()
		i = 0
	} else {
		l = t.findLeaf(lo)
		i = sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], lo) >= 0 })
	}
	for l != nil {
		for ; i < len(l.keys); i++ {
			if hi != nil {
				c := bytes.Compare(l.keys[i], hi)
				if c > 0 || (c == 0 && !hiInclusive) {
					return
				}
			}
			if !fn(l.keys[i], l.posts[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

func (t *Tree) leftmost() *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			n = v.children[0]
		}
	}
}

// Height returns the tree height (for tests).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}
