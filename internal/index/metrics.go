package index

import (
	"oodb/internal/obs"
)

// Index metrics (obs registry).
var (
	mProbeDepth = obs.RegisterHistogram("index_probe_depth_levels")
	mProbes     = obs.RegisterCounter("index_probe_lookups_total")
	mLeafSplits = obs.RegisterCounter("index_node_splits_leaf")
	mInnerSplit = obs.RegisterCounter("index_node_splits_inner")
)
