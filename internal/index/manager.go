package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// Fetcher supplies object state to path-key computation. The engine's
// object manager implements it.
type Fetcher interface {
	FetchObject(oid model.OID) (*model.Object, error)
}

// Def describes one index.
//
// A simple index (len(Path) == 1) indexes attribute Path[0] of Class. With
// Hierarchy set it is a class-hierarchy index: one structure covering Class
// and every descendant (the CH-index of [KIM89b]); otherwise it is a
// single-class (SC) index.
//
// A nested-attribute index (len(Path) > 1) maps the value reachable from a
// Class instance through the attribute path to that instance's OID
// ([BERT89]): an index on Vehicle.manufacturer.location lets the engine
// answer `WHERE manufacturer.location = "Detroit"` without traversing.
type Def struct {
	ID        uint32
	Name      string
	Class     model.ClassID
	Path      []model.AttrID
	Hierarchy bool
}

// ErrIndexExists and friends are the manager's sentinel errors.
var (
	ErrIndexExists = errors.New("index: index already exists")
	ErrNoSuchIndex = errors.New("index: no such index")
	ErrEmptyPath   = errors.New("index: empty attribute path")
)

// Index is a live index: definition plus tree plus, for nested indexes,
// the reverse-reference maps that drive maintenance.
type Index struct {
	Def
	tree *Tree

	// For nested indexes: rev[i] maps the OID of the object at path
	// position i (1-based: the object reached after traversing Path[:i])
	// to the set of head instances whose path instantiation passes through
	// it. When that object's Path[i] attribute changes, every head in
	// rev[i][oid] is re-keyed.
	rev []map[model.OID]map[model.OID]struct{}

	// headKeys remembers the key(s) currently indexed for each head
	// instance so updates and deletes can unindex exactly what was indexed.
	headKeys map[model.OID][][]byte
}

// Manager owns all indexes of a database and keeps them consistent with
// object and schema changes.
type Manager struct {
	mu     sync.RWMutex
	cat    *schema.Catalog
	fetch  Fetcher
	byID   map[uint32]*Index
	byName map[string]*Index
	nextID uint32
}

// NewManager creates an index manager over the catalog. The fetcher is
// used to walk paths during nested-index maintenance and may be set after
// construction via SetFetcher (the engine wires it once the object manager
// exists).
func NewManager(cat *schema.Catalog, fetch Fetcher) *Manager {
	return &Manager{
		cat:    cat,
		fetch:  fetch,
		byID:   make(map[uint32]*Index),
		byName: make(map[string]*Index),
		nextID: 1,
	}
}

// SetFetcher wires the object fetcher.
func (m *Manager) SetFetcher(f Fetcher) {
	m.mu.Lock()
	m.fetch = f
	m.mu.Unlock()
}

// Create defines a new index. The caller is responsible for populating it
// (the engine scans the covered classes and feeds OnPut for each object).
func (m *Manager) Create(name string, class model.ClassID, path []model.AttrID, hierarchy bool) (*Index, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	idx := &Index{
		Def: Def{
			ID:        m.nextID,
			Name:      name,
			Class:     class,
			Path:      append([]model.AttrID(nil), path...),
			Hierarchy: hierarchy,
		},
		tree:     NewTree(),
		headKeys: make(map[model.OID][][]byte),
	}
	if len(path) > 1 {
		idx.rev = make([]map[model.OID]map[model.OID]struct{}, len(path))
		for i := 1; i < len(path); i++ {
			idx.rev[i] = make(map[model.OID]map[model.OID]struct{})
		}
	}
	m.nextID++
	m.byID[idx.ID] = idx
	m.byName[name] = idx
	return idx, nil
}

// Drop removes an index.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	delete(m.byName, name)
	delete(m.byID, idx.ID)
	return nil
}

// Get returns the named index.
func (m *Manager) Get(name string) (*Index, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	return idx, nil
}

// All returns every index (ascending id).
func (m *Manager) All() []*Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Index, 0, len(m.byID))
	for id := uint32(1); id < m.nextID; id++ {
		if idx, ok := m.byID[id]; ok {
			out = append(out, idx)
		}
	}
	return out
}

// covers reports whether the index covers instances of class — exact match
// for SC indexes, hierarchy membership for CH indexes.
func (m *Manager) covers(idx *Index, class model.ClassID) bool {
	if idx.Hierarchy {
		return m.cat.IsSubclassOf(class, idx.Class)
	}
	return class == idx.Class
}

// Covering returns every index whose head class covers the given class and
// whose path starts with the given attribute. The planner uses it for
// access-path selection.
func (m *Manager) Covering(class model.ClassID, first model.AttrID) []*Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Index
	for id := uint32(1); id < m.nextID; id++ {
		idx, ok := m.byID[id]
		if !ok || len(idx.Path) == 0 || idx.Path[0] != first {
			continue
		}
		if m.covers(idx, class) {
			out = append(out, idx)
		}
	}
	return out
}

// Populate feeds one object into one index (bulk build after Create). It
// is idempotent per head object.
func (m *Manager) Populate(idx *Index, obj *model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.covers(idx, obj.Class()) {
		return nil
	}
	return m.reindexHead(idx, obj.OID, obj)
}

// OnPut maintains every index after an object write. old is the prior
// state (nil on insert), next the new state.
func (m *Manager) OnPut(old, next *model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range m.byID {
		if err := m.maintain(idx, old, next); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete maintains every index after an object delete.
func (m *Manager) OnDelete(old *model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range m.byID {
		if err := m.maintain(idx, old, nil); err != nil {
			return err
		}
	}
	return nil
}

// maintain updates one index for an object transition old -> next (either
// may be nil). Caller holds m.mu.
func (m *Manager) maintain(idx *Index, old, next *model.Object) error {
	var obj *model.Object
	if next != nil {
		obj = next
	} else {
		obj = old
	}
	if obj == nil {
		return nil
	}
	class := obj.Class()
	if m.covers(idx, class) {
		// Head-object transition.
		if err := m.reindexHead(idx, obj.OID, next); err != nil {
			return err
		}
	}
	// Interior-object transition for nested indexes: if obj participates
	// in any path instantiation at position i, and its Path[i] value
	// changed (or it was deleted), re-key the affected heads.
	if len(idx.Path) > 1 {
		for i := 1; i < len(idx.Path); i++ {
			heads, involved := idx.rev[i][obj.OID]
			if !involved {
				continue
			}
			attr := idx.Path[i]
			if old != nil && next != nil && model.Equal(old.Get(attr), next.Get(attr)) {
				continue
			}
			// Snapshot: reindexHead mutates the rev sets while we walk.
			snapshot := make([]model.OID, 0, len(heads))
			for head := range heads {
				snapshot = append(snapshot, head)
			}
			for _, head := range snapshot {
				ho, err := m.fetch.FetchObject(head)
				if err != nil {
					// Head vanished: unindex it.
					m.unindexHead(idx, head)
					continue
				}
				if err := m.reindexHead(idx, head, ho); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// reindexHead recomputes and replaces the index entries of one head
// instance. next == nil unindexes it. Caller holds m.mu.
func (m *Manager) reindexHead(idx *Index, head model.OID, next *model.Object) error {
	m.unindexHead(idx, head)
	if next == nil {
		return nil
	}
	keys, chain, err := m.pathKeys(idx, next)
	if err != nil {
		return err
	}
	for _, k := range keys {
		idx.tree.Insert(k, head)
	}
	if len(keys) > 0 {
		idx.headKeys[head] = keys
	}
	for i := 1; i < len(chain); i++ {
		for _, oid := range chain[i] {
			set := idx.rev[i][oid]
			if set == nil {
				set = make(map[model.OID]struct{})
				idx.rev[i][oid] = set
			}
			set[head] = struct{}{}
		}
	}
	return nil
}

// unindexHead removes all current entries of a head instance. Caller holds
// m.mu.
func (m *Manager) unindexHead(idx *Index, head model.OID) {
	for _, k := range idx.headKeys[head] {
		idx.tree.Delete(k, head)
	}
	delete(idx.headKeys, head)
	for i := 1; i < len(idx.rev); i++ {
		for oid, set := range idx.rev[i] {
			if _, ok := set[head]; ok {
				delete(set, head)
				if len(set) == 0 {
					delete(idx.rev[i], oid)
				}
			}
		}
	}
}

// pathKeys walks the index path from the head object and returns the
// terminal key encodings plus, per path position i >= 1, the OIDs of the
// interior objects whose Path[i] attribute is read along some
// instantiation. Set-valued terminal attributes produce one key per
// member; a null anywhere along a branch ends that branch. Multi-valued
// interior steps index every branch.
func (m *Manager) pathKeys(idx *Index, head *model.Object) (keys [][]byte, chain [][]model.OID, err error) {
	chain = make([][]model.OID, len(idx.Path))
	objs := []*model.Object{head}
	for step := 0; step < len(idx.Path); step++ {
		attr := idx.Path[step]
		last := step == len(idx.Path)-1
		var nextObjs []*model.Object
		for _, o := range objs {
			v := o.Get(attr)
			if v.IsNull() {
				continue
			}
			if last {
				if members, isSet := v.AsSet(); isSet {
					for _, mem := range members {
						keys = append(keys, model.Key(mem))
					}
				} else {
					keys = append(keys, model.Key(v))
				}
				continue
			}
			// Interior step: follow reference(s).
			follow := func(ref model.Value) error {
				oid, ok := ref.AsRef()
				if !ok {
					return nil // non-reference interior value: path dead-ends
				}
				obj, ferr := m.fetch.FetchObject(oid)
				if ferr != nil {
					return nil // dangling reference: path dead-ends
				}
				chain[step+1] = append(chain[step+1], oid)
				nextObjs = append(nextObjs, obj)
				return nil
			}
			if members, isSet := v.AsSet(); isSet {
				for _, mem := range members {
					if err := follow(mem); err != nil {
						return nil, nil, err
					}
				}
			} else if err := follow(v); err != nil {
				return nil, nil, err
			}
		}
		if last {
			break
		}
		objs = nextObjs
		if len(objs) == 0 {
			break
		}
	}
	return keys, chain, nil
}

// Lookup returns the OIDs indexed under the exact key value, filtered to
// the given class set (nil = no filter). For a CH index a query scoped
// `ONLY C` passes just {C}; a hierarchy-scoped query passes the descendant
// set or nil.
func (idx *Index) Lookup(v model.Value, classes map[model.ClassID]bool) []model.OID {
	return filterOIDs(idx.tree.Search(model.Key(v)), classes)
}

// Range returns the OIDs with lo <= key <= / < hi, filtered by class. A
// null lo or hi leaves that bound open.
func (idx *Index) Range(lo, hi model.Value, hiInclusive bool, classes map[model.ClassID]bool) []model.OID {
	var lok, hik []byte
	if !lo.IsNull() {
		lok = model.Key(lo)
	}
	if !hi.IsNull() {
		hik = model.Key(hi)
	}
	var out []model.OID
	idx.tree.Range(lok, hik, hiInclusive, func(_ []byte, posts []model.OID) bool {
		out = append(out, filterOIDs(posts, classes)...)
		return true
	})
	return out
}

// Len returns the number of live (key, oid) entries.
func (idx *Index) Len() int { return idx.tree.Len() }

func filterOIDs(posts []model.OID, classes map[model.ClassID]bool) []model.OID {
	if classes == nil {
		return append([]model.OID(nil), posts...)
	}
	var out []model.OID
	for _, oid := range posts {
		if classes[oid.Class()] {
			out = append(out, oid)
		}
	}
	return out
}

// Definition persistence: the engine stores EncodeDefs output in the index
// table blob and recreates+repopulates indexes at open.

// EncodeDefs serializes the definitions of every index.
func EncodeDefs(m *Manager) []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	buf := binary.AppendUvarint(nil, uint64(len(m.byID)))
	for id := uint32(1); id < m.nextID; id++ {
		idx, ok := m.byID[id]
		if !ok {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(idx.ID))
		buf = binary.AppendUvarint(buf, uint64(len(idx.Name)))
		buf = append(buf, idx.Name...)
		buf = binary.AppendUvarint(buf, uint64(idx.Class))
		if idx.Hierarchy {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(idx.Path)))
		for _, a := range idx.Path {
			buf = binary.AppendUvarint(buf, uint64(a))
		}
	}
	return buf
}

// DecodeDefs returns the index definitions stored in buf.
func DecodeDefs(buf []byte) ([]Def, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, model.ErrCorrupt
	}
	buf = buf[used:]
	defs := make([]Def, 0, n)
	for i := uint64(0); i < n; i++ {
		var d Def
		id, u := binary.Uvarint(buf)
		if u <= 0 {
			return nil, model.ErrCorrupt
		}
		buf = buf[u:]
		d.ID = uint32(id)
		nl, u := binary.Uvarint(buf)
		if u <= 0 || uint64(len(buf)-u) < nl {
			return nil, model.ErrCorrupt
		}
		d.Name = string(buf[u : u+int(nl)])
		buf = buf[u+int(nl):]
		cl, u := binary.Uvarint(buf)
		if u <= 0 {
			return nil, model.ErrCorrupt
		}
		buf = buf[u:]
		d.Class = model.ClassID(cl)
		if len(buf) == 0 {
			return nil, model.ErrCorrupt
		}
		d.Hierarchy = buf[0] == 1
		buf = buf[1:]
		np, u := binary.Uvarint(buf)
		if u <= 0 {
			return nil, model.ErrCorrupt
		}
		buf = buf[u:]
		for j := uint64(0); j < np; j++ {
			a, u := binary.Uvarint(buf)
			if u <= 0 {
				return nil, model.ErrCorrupt
			}
			buf = buf[u:]
			d.Path = append(d.Path, model.AttrID(a))
		}
		defs = append(defs, d)
	}
	return defs, nil
}
