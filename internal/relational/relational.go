// Package relational implements a compact relational engine used as the
// comparison baseline throughout the benchmarks: the paper repeatedly
// contrasts object-oriented facilities with their relational counterparts
// — navigation via object identifiers vs. joins (§3.3 concern 2), one
// index per relation vs. class-hierarchy indexes (§3.2), Wisconsin-style
// selections and joins vs. object operations (§5.6).
//
// The engine is deliberately conventional: relations of typed columns,
// tuple-at-a-time iteration, per-column B+tree indexes, selection with
// index or scan access paths, nested-loop and hash equijoins. It shares
// the value model (model.Value, model.Key) with the object engine so the
// comparisons measure representation and access-path differences, not
// codec differences.
package relational

import (
	"errors"
	"fmt"
	"sort"

	"oodb/internal/index"
	"oodb/internal/model"
)

// Errors of the relational engine.
var (
	ErrNoRelation = errors.New("relational: no such relation")
	ErrNoColumn   = errors.New("relational: no such column")
	ErrArity      = errors.New("relational: wrong tuple arity")
)

// Relation is a named table of tuples.
type Relation struct {
	Name string
	Cols []string

	colIdx  map[string]int
	rows    [][]model.Value // nil row = deleted
	live    int
	indexes map[string]*index.Tree // column -> index
}

// DB is a collection of relations.
type DB struct {
	relations map[string]*Relation
}

// NewDB returns an empty relational database.
func NewDB() *DB { return &DB{relations: make(map[string]*Relation)} }

// Create defines a relation with the given column names.
func (db *DB) Create(name string, cols ...string) (*Relation, error) {
	if _, dup := db.relations[name]; dup {
		return nil, fmt.Errorf("relational: relation %q already exists", name)
	}
	r := &Relation{
		Name:    name,
		Cols:    append([]string(nil), cols...),
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[string]*index.Tree),
	}
	for i, c := range cols {
		if _, dup := r.colIdx[c]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q", c)
		}
		r.colIdx[c] = i
	}
	db.relations[name] = r
	return r, nil
}

// Relation returns the named relation.
func (db *DB) Relation(name string) (*Relation, error) {
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRelation, name)
	}
	return r, nil
}

// rowOID packs a row number into the OID space the shared B+tree stores.
func rowOID(row int) model.OID { return model.MakeOID(1, uint64(row)+1) }
func oidRow(oid model.OID) int { return int(oid.Seq()) - 1 }

// Insert appends a tuple and returns its row id.
func (r *Relation) Insert(vals ...model.Value) (int, error) {
	if len(vals) != len(r.Cols) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrArity, len(vals), len(r.Cols))
	}
	row := len(r.rows)
	tuple := append([]model.Value(nil), vals...)
	r.rows = append(r.rows, tuple)
	r.live++
	for col, tree := range r.indexes {
		tree.Insert(model.Key(tuple[r.colIdx[col]]), rowOID(row))
	}
	return row, nil
}

// Update overwrites one column of a row.
func (r *Relation) Update(row int, col string, v model.Value) error {
	ci, ok := r.colIdx[col]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if row < 0 || row >= len(r.rows) || r.rows[row] == nil {
		return fmt.Errorf("relational: no row %d", row)
	}
	if tree, indexed := r.indexes[col]; indexed {
		tree.Delete(model.Key(r.rows[row][ci]), rowOID(row))
		tree.Insert(model.Key(v), rowOID(row))
	}
	r.rows[row][ci] = v
	return nil
}

// Delete removes a row.
func (r *Relation) Delete(row int) error {
	if row < 0 || row >= len(r.rows) || r.rows[row] == nil {
		return fmt.Errorf("relational: no row %d", row)
	}
	for col, tree := range r.indexes {
		tree.Delete(model.Key(r.rows[row][r.colIdx[col]]), rowOID(row))
	}
	r.rows[row] = nil
	r.live--
	return nil
}

// Get returns the tuple at row.
func (r *Relation) Get(row int) ([]model.Value, error) {
	if row < 0 || row >= len(r.rows) || r.rows[row] == nil {
		return nil, fmt.Errorf("relational: no row %d", row)
	}
	return r.rows[row], nil
}

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.live }

// Col returns the value of a named column in a tuple.
func (r *Relation) Col(tuple []model.Value, col string) (model.Value, error) {
	ci, ok := r.colIdx[col]
	if !ok {
		return model.Null, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	return tuple[ci], nil
}

// CreateIndex builds a B+tree index on a column.
func (r *Relation) CreateIndex(col string) error {
	ci, ok := r.colIdx[col]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if _, dup := r.indexes[col]; dup {
		return fmt.Errorf("relational: index on %s.%s already exists", r.Name, col)
	}
	tree := index.NewTree()
	for row, tuple := range r.rows {
		if tuple != nil {
			tree.Insert(model.Key(tuple[ci]), rowOID(row))
		}
	}
	r.indexes[col] = tree
	return nil
}

// HasIndex reports whether a column is indexed.
func (r *Relation) HasIndex(col string) bool {
	_, ok := r.indexes[col]
	return ok
}

// Scan calls fn with every live tuple.
func (r *Relation) Scan(fn func(row int, tuple []model.Value) bool) {
	for row, tuple := range r.rows {
		if tuple == nil {
			continue
		}
		if !fn(row, tuple) {
			return
		}
	}
}

// SelectEq returns the rows where col = v, via index if available.
func (r *Relation) SelectEq(col string, v model.Value) ([]int, error) {
	ci, ok := r.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if tree, ok := r.indexes[col]; ok {
		posts := tree.Search(model.Key(v))
		out := make([]int, len(posts))
		for i, oid := range posts {
			out[i] = oidRow(oid)
		}
		return out, nil
	}
	var out []int
	for row, tuple := range r.rows {
		if tuple != nil && model.Equal(tuple[ci], v) {
			out = append(out, row)
		}
	}
	return out, nil
}

// SelectRange returns the rows with lo <= col (<=|<) hi; null bounds are
// open. Uses an index when available.
func (r *Relation) SelectRange(col string, lo, hi model.Value, hiInc bool) ([]int, error) {
	ci, ok := r.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if tree, ok := r.indexes[col]; ok {
		var lok, hik []byte
		if !lo.IsNull() {
			lok = model.Key(lo)
		}
		if !hi.IsNull() {
			hik = model.Key(hi)
		}
		var out []int
		tree.Range(lok, hik, hiInc, func(_ []byte, posts []model.OID) bool {
			for _, oid := range posts {
				out = append(out, oidRow(oid))
			}
			return true
		})
		return out, nil
	}
	var out []int
	for row, tuple := range r.rows {
		if tuple == nil {
			continue
		}
		v := tuple[ci]
		if v.IsNull() {
			continue
		}
		if !lo.IsNull() && model.Compare(v, lo) < 0 {
			continue
		}
		if !hi.IsNull() {
			c := model.Compare(v, hi)
			if c > 0 || (c == 0 && !hiInc) {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// JoinRow is one joined output tuple: the row ids on both sides.
type JoinRow struct {
	Left, Right int
}

// HashJoin equijoins l.lcol = r.rcol with a build-probe hash join (build
// side = right).
func HashJoin(l, r *Relation, lcol, rcol string) ([]JoinRow, error) {
	li, ok := l.colIdx[lcol]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, l.Name, lcol)
	}
	ri, ok := r.colIdx[rcol]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Name, rcol)
	}
	build := make(map[string][]int, r.live)
	for row, tuple := range r.rows {
		if tuple == nil || tuple[ri].IsNull() {
			continue
		}
		k := string(model.Key(tuple[ri]))
		build[k] = append(build[k], row)
	}
	var out []JoinRow
	for lrow, tuple := range l.rows {
		if tuple == nil || tuple[li].IsNull() {
			continue
		}
		for _, rrow := range build[string(model.Key(tuple[li]))] {
			out = append(out, JoinRow{Left: lrow, Right: rrow})
		}
	}
	return out, nil
}

// NestedLoopJoin equijoins with the naive quadratic algorithm, using the
// right side's index on rcol when present (index nested-loop join). This
// is the join the paper calls "intolerably expensive" for CAD traversals.
func NestedLoopJoin(l, r *Relation, lcol, rcol string) ([]JoinRow, error) {
	li, ok := l.colIdx[lcol]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, l.Name, lcol)
	}
	ri, ok := r.colIdx[rcol]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Name, rcol)
	}
	var out []JoinRow
	for lrow, lt := range l.rows {
		if lt == nil || lt[li].IsNull() {
			continue
		}
		if tree, ok := r.indexes[rcol]; ok {
			for _, oid := range tree.Search(model.Key(lt[li])) {
				out = append(out, JoinRow{Left: lrow, Right: oidRow(oid)})
			}
			continue
		}
		for rrow, rt := range r.rows {
			if rt == nil || rt[ri].IsNull() {
				continue
			}
			if model.Equal(lt[li], rt[ri]) {
				out = append(out, JoinRow{Left: lrow, Right: rrow})
			}
		}
	}
	return out, nil
}

// Project returns the values of the given columns for the given rows, in
// row order.
func (r *Relation) Project(rows []int, cols ...string) ([][]model.Value, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci, ok := r.colIdx[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, c)
		}
		idxs[i] = ci
	}
	sorted := append([]int(nil), rows...)
	sort.Ints(sorted)
	out := make([][]model.Value, 0, len(sorted))
	for _, row := range sorted {
		tuple, err := r.Get(row)
		if err != nil {
			return nil, err
		}
		vals := make([]model.Value, len(idxs))
		for i, ci := range idxs {
			vals[i] = tuple[ci]
		}
		out = append(out, vals)
	}
	return out, nil
}
