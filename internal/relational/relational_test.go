package relational

import (
	"testing"

	"oodb/internal/model"
)

func makeVehicles(t *testing.T) (*DB, *Relation, *Relation) {
	t.Helper()
	db := NewDB()
	company, err := db.Create("company", "id", "name", "location")
	if err != nil {
		t.Fatal(err)
	}
	vehicle, err := db.Create("vehicle", "id", "weight", "maker")
	if err != nil {
		t.Fatal(err)
	}
	companies := []struct {
		id, name, loc string
	}{
		{"c1", "GM", "Detroit"},
		{"c2", "Toyota", "Toyota City"},
		{"c3", "Freightliner", "Detroit"},
	}
	for _, c := range companies {
		company.Insert(model.String(c.id), model.String(c.name), model.String(c.loc))
	}
	vehicles := []struct {
		id    string
		w     int64
		maker string
	}{
		{"v1", 5000, "c1"}, {"v2", 8000, "c2"}, {"v3", 7600, "c1"},
		{"v4", 9000, "c3"}, {"v5", 7000, "c3"},
	}
	for _, v := range vehicles {
		vehicle.Insert(model.String(v.id), model.Int(v.w), model.String(v.maker))
	}
	return db, company, vehicle
}

func TestInsertScanLen(t *testing.T) {
	_, company, vehicle := makeVehicles(t)
	if company.Len() != 3 || vehicle.Len() != 5 {
		t.Fatalf("Len = %d, %d", company.Len(), vehicle.Len())
	}
	n := 0
	vehicle.Scan(func(int, []model.Value) bool { n++; return true })
	if n != 5 {
		t.Fatalf("scan saw %d", n)
	}
}

func TestArityChecked(t *testing.T) {
	db := NewDB()
	r, _ := db.Create("r", "a", "b")
	if _, err := r.Insert(model.Int(1)); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestSelectEqScanAndIndex(t *testing.T) {
	_, _, vehicle := makeVehicles(t)
	rows, err := vehicle.SelectEq("weight", model.Int(7600))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scan select = %v", rows)
	}
	if err := vehicle.CreateIndex("weight"); err != nil {
		t.Fatal(err)
	}
	rows2, _ := vehicle.SelectEq("weight", model.Int(7600))
	if len(rows2) != 1 || rows2[0] != rows[0] {
		t.Fatalf("index select = %v, want %v", rows2, rows)
	}
}

func TestSelectRange(t *testing.T) {
	_, _, vehicle := makeVehicles(t)
	check := func() {
		t.Helper()
		rows, err := vehicle.SelectRange("weight", model.Int(7500), model.Null, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 { // 8000, 7600, 9000
			t.Fatalf("range = %v", rows)
		}
		rows, _ = vehicle.SelectRange("weight", model.Int(7000), model.Int(8000), true)
		if len(rows) != 3 { // 7000, 7600, 8000
			t.Fatalf("bounded range = %v", rows)
		}
		rows, _ = vehicle.SelectRange("weight", model.Int(7000), model.Int(8000), false)
		if len(rows) != 2 {
			t.Fatalf("exclusive range = %v", rows)
		}
	}
	check() // scan path
	vehicle.CreateIndex("weight")
	check() // index path
}

func TestUpdateDeleteMaintainIndexes(t *testing.T) {
	_, _, vehicle := makeVehicles(t)
	vehicle.CreateIndex("weight")
	rows, _ := vehicle.SelectEq("weight", model.Int(5000))
	if len(rows) != 1 {
		t.Fatal("setup")
	}
	if err := vehicle.Update(rows[0], "weight", model.Int(5500)); err != nil {
		t.Fatal(err)
	}
	if got, _ := vehicle.SelectEq("weight", model.Int(5000)); len(got) != 0 {
		t.Fatal("stale index entry after update")
	}
	if got, _ := vehicle.SelectEq("weight", model.Int(5500)); len(got) != 1 {
		t.Fatal("missing index entry after update")
	}
	if err := vehicle.Delete(rows[0]); err != nil {
		t.Fatal(err)
	}
	if got, _ := vehicle.SelectEq("weight", model.Int(5500)); len(got) != 0 {
		t.Fatal("stale index entry after delete")
	}
	if vehicle.Len() != 4 {
		t.Fatalf("Len = %d", vehicle.Len())
	}
	if _, err := vehicle.Get(rows[0]); err == nil {
		t.Fatal("deleted row readable")
	}
}

// paperQuery runs the paper's example query relationally: vehicles over
// 7500 lbs made by a Detroit company = select + join.
func paperQuery(t *testing.T, company, vehicle *Relation, join func(l, r *Relation, lc, rc string) ([]JoinRow, error)) []string {
	t.Helper()
	heavy, err := vehicle.SelectRange("weight", model.Int(7501), model.Null, false)
	if err != nil {
		t.Fatal(err)
	}
	heavySet := map[int]bool{}
	for _, row := range heavy {
		heavySet[row] = true
	}
	joined, err := join(vehicle, company, "maker", "id")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, j := range joined {
		if !heavySet[j.Left] {
			continue
		}
		ct, _ := company.Get(j.Right)
		loc, _ := company.Col(ct, "location")
		if s, _ := loc.AsString(); s != "Detroit" {
			continue
		}
		vt, _ := vehicle.Get(j.Left)
		id, _ := vehicle.Col(vt, "id")
		s, _ := id.AsString()
		out = append(out, s)
	}
	return out
}

func TestHashJoinPaperQuery(t *testing.T) {
	_, company, vehicle := makeVehicles(t)
	got := paperQuery(t, company, vehicle, HashJoin)
	if len(got) != 2 {
		t.Fatalf("got %v, want v3 and v4", got)
	}
}

func TestNestedLoopJoinMatchesHashJoin(t *testing.T) {
	_, company, vehicle := makeVehicles(t)
	a := paperQuery(t, company, vehicle, HashJoin)
	b := paperQuery(t, company, vehicle, NestedLoopJoin)
	if len(a) != len(b) {
		t.Fatalf("hash %v != nested-loop %v", a, b)
	}
	// Index nested-loop path too.
	company.CreateIndex("id")
	c := paperQuery(t, company, vehicle, NestedLoopJoin)
	if len(c) != len(a) {
		t.Fatalf("index nested-loop %v != %v", c, a)
	}
}

func TestProject(t *testing.T) {
	_, _, vehicle := makeVehicles(t)
	rows, _ := vehicle.SelectRange("weight", model.Int(8000), model.Null, false)
	vals, err := vehicle.Project(rows, "id", "weight")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || len(vals[0]) != 2 {
		t.Fatalf("project = %v", vals)
	}
	if _, err := vehicle.Project(rows, "nope"); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestJoinSkipsNulls(t *testing.T) {
	db := NewDB()
	l, _ := db.Create("l", "k")
	r, _ := db.Create("r", "k")
	l.Insert(model.Null)
	l.Insert(model.Int(1))
	r.Insert(model.Int(1))
	r.Insert(model.Null)
	joined, _ := HashJoin(l, r, "k", "k")
	if len(joined) != 1 {
		t.Fatalf("null keys joined: %v", joined)
	}
}

func TestDuplicateRelationAndColumn(t *testing.T) {
	db := NewDB()
	if _, err := db.Create("r", "a", "a"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	db.Create("r", "a")
	if _, err := db.Create("r", "b"); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if _, err := db.Relation("missing"); err == nil {
		t.Fatal("missing relation returned")
	}
}
