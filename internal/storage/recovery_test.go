package storage

// Regression tests for the recovery bugs the crash harness surfaced: a
// torn free-list head wedging allocation, and the physical page-image
// restore pass that runs ahead of logical replay.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestAllocSurvivesCorruptFreeListHead: a crash can tear the in-place
// free-page seal, leaving the meta free-list head pointing at garbage.
// Allocation must abandon the list (leaking its pages) rather than fail
// forever. Surfaced by crash schedules landing inside FreePage writes.
func TestAllocSurvivesCorruptFreeListHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AllocPage()
	b, _ := d.AllocPage()
	if err := d.FreePage(a); err != nil {
		t.Fatal(err)
	}
	// Tear the free head on disk, bypassing the manager.
	garbage := make([]byte, PageSize)
	rand.New(rand.NewSource(1)).Read(garbage)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(garbage, int64(a)*PageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c, err := d.AllocPage()
	if err != nil {
		t.Fatalf("alloc with corrupt free head: %v", err)
	}
	if c == a {
		t.Fatalf("alloc handed out the corrupt page %d", c)
	}
	if c == b || c == InvalidPage {
		t.Fatalf("alloc returned %d (existing page %d)", c, b)
	}
	// The list was abandoned: the next alloc extends again, no wedge.
	if _, err := d.AllocPage(); err != nil {
		t.Fatalf("second alloc after abandonment: %v", err)
	}
}

// TestAllocRejectsNonFreeHead: a stale meta page may point the free list at
// a page that was since reallocated (its type is no longer free). Popping
// it would hand out a live page — the list must be abandoned instead.
func TestAllocRejectsNonFreeHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AllocPage()
	if err := d.FreePage(a); err != nil {
		t.Fatal(err)
	}
	// Overwrite the free head with a valid heap page (checksum fine, wrong
	// type) — the reallocated-elsewhere case.
	var p Page
	p.Init(pageTypeHeap)
	p.Insert([]byte("live data"))
	if err := d.WritePage(a, &p); err != nil {
		t.Fatal(err)
	}
	c, err := d.AllocPage()
	if err != nil {
		t.Fatalf("alloc with non-free head: %v", err)
	}
	if c == a {
		t.Fatalf("alloc handed out live page %d", c)
	}
}

// TestRestoreTornPages covers the physical-redo pass: torn pages and
// never-written (zero or short) pages are overwritten from their logged
// images; intact pages are left alone even when an image exists.
func TestRestoreTornPages(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag byte) *Page {
		var p Page
		p.Init(pageTypeHeap)
		p.Insert(bytes.Repeat([]byte{tag}, 100))
		p.Seal()
		return &p
	}
	p1, _ := d.AllocPage()
	p2, _ := d.AllocPage()
	if err := d.WritePage(p1, mk(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(p2, mk(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear p2 in place; leave p1 intact.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xFF}, PageSize/2), int64(p2)*PageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	img1 := mk(0x33) // stale image for the intact page: must NOT be applied
	img2 := mk(0x22)
	beyond := uint64(p2) + 3 // image for a page past EOF: short read, restored
	img3 := mk(0x44)
	images := map[uint64][]byte{
		uint64(p1): append([]byte(nil), img1.Bytes()...),
		uint64(p2): append([]byte(nil), img2.Bytes()...),
		beyond:     append([]byte(nil), img3.Bytes()...),
	}
	restored, err := RestoreTornPages(path, images)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d pages, want 2 (torn + beyond-EOF)", restored)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	page := func(id uint64) []byte { return raw[id*PageSize : (id+1)*PageSize] }
	if !bytes.Equal(page(uint64(p1)), sealed(mk(0x11))) {
		t.Fatal("intact page was clobbered by its stale image")
	}
	if !bytes.Equal(page(uint64(p2)), sealed(img2)) {
		t.Fatal("torn page was not restored from its image")
	}
	if !bytes.Equal(page(beyond), sealed(img3)) {
		t.Fatal("beyond-EOF page was not restored from its image")
	}

	// The repaired file opens and reads back.
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("reopen after restore: %v", err)
	}
	defer d2.Close()
	var back Page
	if err := d2.ReadPage(p2, &back); err != nil {
		t.Fatalf("read restored page: %v", err)
	}
	got, err := back.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x22}, 100)) {
		t.Fatal("restored page content wrong")
	}
}

func sealed(p *Page) []byte {
	p.Seal()
	return p.buf[:]
}

// TestRestoreTornPagesNoImages: the no-op fast path must not even touch
// the file (recovery without physical records).
func TestRestoreTornPagesNoImages(t *testing.T) {
	restored, err := RestoreTornPages(filepath.Join(t.TempDir(), "absent.kdb"), nil)
	if err != nil || restored != 0 {
		t.Fatalf("restored=%d err=%v, want 0, nil", restored, err)
	}
}
