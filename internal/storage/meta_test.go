package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// readSlot reads one metadata slot's raw image from the file.
func readSlot(t *testing.T, path string, slot int64) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, slot*PageSize); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestMetaSlotAlternation verifies the A/B write protocol: every metadata
// write bumps the epoch and lands in the slot not holding the current
// state, so the previous state always survives a torn write.
func TestMetaSlotAlternation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh format: both slots valid at epoch 1.
	for slot := int64(0); slot < MetaSlots; slot++ {
		v, e, ok := MetaSlotInfo(readSlot(t, path, slot))
		if !ok || v != diskVersion || e != 1 {
			t.Fatalf("fresh slot %d: version=%d epoch=%d ok=%v, want version=%d epoch=1", slot, v, e, ok, diskVersion)
		}
	}
	// Each write alternates slots and bumps the epoch.
	wantEpoch := uint64(1)
	for i := 1; i <= 5; i++ {
		if err := d.SetRoot(RootCatalog, PageID(100+i)); err != nil {
			t.Fatal(err)
		}
		wantEpoch++
		_, e0, ok0 := MetaSlotInfo(readSlot(t, path, 0))
		_, e1, ok1 := MetaSlotInfo(readSlot(t, path, 1))
		if !ok0 || !ok1 {
			t.Fatalf("after write %d: slot invalid (ok0=%v ok1=%v)", i, ok0, ok1)
		}
		newest := e0
		if e1 > e0 {
			newest = e1
		}
		if newest != wantEpoch {
			t.Fatalf("after write %d: newest epoch %d, want %d", i, newest, wantEpoch)
		}
		if e0 == e1 {
			t.Fatalf("after write %d: both slots at epoch %d — writes are not alternating", i, e0)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen adopts the newest slot.
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.GetRoot(RootCatalog); got != 105 {
		t.Fatalf("reopened root = %d, want 105", got)
	}
}

// TestMetaTornNewestSlotFallsBack destroys the newest slot (the torn-write
// case the duplexing exists for) and verifies open falls back to the
// previous metadata state instead of failing.
func TestMetaTornNewestSlotFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetRoot(RootCatalog, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRoot(RootCatalog, 9); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Find the newest slot and tear it: scribble over its second half so
	// the checksum fails, as a power cut mid-write would leave it.
	_, e0, _ := MetaSlotInfo(readSlot(t, path, 0))
	_, e1, _ := MetaSlotInfo(readSlot(t, path, 1))
	newest := int64(0)
	if e1 > e0 {
		newest = 1
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, PageSize/2)
	for i := range junk {
		junk[i] = 0xA5
	}
	if _, err := f.WriteAt(junk, newest*PageSize+PageSize/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before := mMetaSlotFallback.Value()
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("open with torn newest slot: %v", err)
	}
	defer d2.Close()
	if got := d2.GetRoot(RootCatalog); got != 7 {
		t.Fatalf("fallback root = %d, want 7 (the state one metadata write earlier)", got)
	}
	if mMetaSlotFallback.Value() == before {
		t.Fatal("storage_meta_slot_fallbacks did not count the fallback")
	}
}

// TestMetaBothSlotsDestroyed verifies the failure mode duplexing cannot
// absorb — no valid slot at all — still fails loudly instead of opening an
// empty database over real data.
func TestMetaBothSlotsDestroyed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, PageSize)
	for i := range junk {
		junk[i] = 0x5A
	}
	for slot := int64(0); slot < MetaSlots; slot++ {
		if _, err := f.WriteAt(junk, slot*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("open accepted a file with no valid metadata slot")
	}
}

// TestMetaLegacySingleSlot synthesizes a format-version-1 file (single
// metadata slot at page 0, rewritten in place) and verifies it still opens
// and operates in legacy mode.
func TestMetaLegacySingleSlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.kdb")
	var p Page
	p.Init(pageTypeMeta)
	binary.BigEndian.PutUint32(p.buf[metaOffMagic:], diskMagic)
	binary.BigEndian.PutUint32(p.buf[metaOffVersion:], 1)
	p.Seal()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(p.buf[:], 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("open legacy file: %v", err)
	}
	if d.FirstDataPage() != 1 {
		t.Fatalf("legacy FirstDataPage = %d, want 1", d.FirstDataPage())
	}
	// Allocation, write, free and root updates all work in place.
	id, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	var hp Page
	hp.Init(pageTypeHeap)
	if err := d.WritePage(id, &hp); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRoot(RootCatalog, id); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("reopen legacy file: %v", err)
	}
	defer d2.Close()
	if got := d2.GetRoot(RootCatalog); got != id {
		t.Fatalf("legacy root = %d, want %d", got, id)
	}
	if d2.FirstDataPage() != 1 {
		t.Fatalf("legacy reopen FirstDataPage = %d, want 1", d2.FirstDataPage())
	}
}

// TestMetaSlotInfo pins the helper the fault layer's crash model depends
// on: valid slots report their version and epoch, anything else reports
// not-ok.
func TestMetaSlotInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	v, e, ok := MetaSlotInfo(readSlot(t, path, 0))
	if !ok || v != diskVersion || e != 1 {
		t.Fatalf("MetaSlotInfo(valid slot) = (%d, %d, %v), want (%d, 1, true)", v, e, ok, diskVersion)
	}
	if _, _, ok := MetaSlotInfo(make([]byte, PageSize)); ok {
		t.Fatal("MetaSlotInfo accepted an all-zero page")
	}
	if _, _, ok := MetaSlotInfo(nil); ok {
		t.Fatal("MetaSlotInfo accepted a short buffer")
	}
	// A sealed heap page is checksum-valid but not a metadata slot.
	var hp Page
	hp.Init(pageTypeHeap)
	hp.Seal()
	if _, _, ok := MetaSlotInfo(hp.buf[:]); ok {
		t.Fatal("MetaSlotInfo accepted a heap page")
	}
}
