package storage

import (
	"time"

	"oodb/internal/obs"
)

// Process-wide storage metrics (obs registry; per-pool counters for the
// benchmarks stay on BufferPool.Hits/Misses). Names follow
// layer_subsystem_name — checked by `make metrics-lint`.
var (
	// mBufHits is flushed from shard-local batches of hitBatchSize, so it
	// lags the true hit count by up to hitBatchSize-1 per shard; the exact
	// per-pool figures are PoolStats(). Misses go straight through — they
	// are dominated by the disk read they precede.
	mBufHits      = obs.RegisterCounter("storage_buffer_fetch_hits")
	mBufMisses    = obs.RegisterCounter("storage_buffer_fetch_misses")
	mBufEvictions = obs.RegisterCounter("storage_buffer_evictions_total")
	mBufCoalesced = obs.RegisterCounter("storage_buffer_coalesced_waits")
	mPageReadNs   = obs.RegisterHistogram("storage_page_read_ns")
	mPageWriteNs  = obs.RegisterHistogram("storage_page_write_ns")

	mFreeListReused    = obs.RegisterCounter("storage_freelist_reused_pages")
	mFreeListFreed     = obs.RegisterCounter("storage_freelist_freed_pages")
	mFreeListAbandoned = obs.RegisterCounter("storage_freelist_abandoned_heads")

	// mMetaSlotFallback counts opens that found one duplexed metadata slot
	// torn and fell back to its twin — the A/B design absorbing a crash
	// mid-metadata-write.
	mMetaSlotFallback = obs.RegisterCounter("storage_meta_slot_fallbacks")

	mOverflowWrites = obs.RegisterCounter("storage_overflow_chains_written")
	mOverflowFrees  = obs.RegisterCounter("storage_overflow_chains_freed")
	mOverflowLeaked = obs.RegisterCounter("storage_overflow_chains_leaked")

	mRecQuarantined = obs.RegisterCounter("storage_recovery_quarantined_records")
	mRecAmputated   = obs.RegisterCounter("storage_recovery_amputated_pages")

	// Set by Store.AccountPages — the leaked-page accountant run by the
	// crash harness (`make crash`); the future compactor's target.
	mPagesLeaked = obs.RegisterGauge("storage_account_leaked_pages")
	mPagesTotal  = obs.RegisterGauge("storage_account_total_pages")

	// Published by Store.AccessCounts from the per-store fetch-heat tracker
	// (obs.AccessTracker sampled in Store.Get) — the signal behind
	// heat-ordered compaction placement. With several stores open in one
	// process the gauges reflect whichever store snapshotted last.
	mAccessTracked = obs.RegisterGauge("storage_access_tracked_objects")
	mAccessTouches = obs.RegisterGauge("storage_access_touches_total")
	mAccessDropped = obs.RegisterGauge("storage_access_dropped_keys")
)

// readPageTimed wraps disk reads with the page-read latency histogram.
// The timing calls are skipped entirely when metrics are disabled; either
// way the cost is dwarfed by the I/O it measures.
func (bp *BufferPool) readPageTimed(id PageID, p *Page) error {
	if !obs.Enabled() {
		return bp.disk.ReadPage(id, p)
	}
	t0 := time.Now()
	err := bp.disk.ReadPage(id, p)
	mPageReadNs.Observe(uint64(time.Since(t0)))
	return err
}

// writePageTimed wraps disk writes with the page-write latency histogram.
func (bp *BufferPool) writePageTimed(id PageID, p *Page) error {
	if !obs.Enabled() {
		return bp.disk.WritePage(id, p)
	}
	t0 := time.Now()
	err := bp.disk.WritePage(id, p)
	mPageWriteNs.Observe(uint64(time.Since(t0)))
	return err
}
