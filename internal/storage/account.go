package storage

import (
	"encoding/binary"
)

// PageAccount is the result of a full-file reachability walk: every page is
// classified by type, and pages that no live structure names — not a heap
// chain, not a live record's overflow chain, not a system blob chain, and
// not sealed as free — are reported as leaked. Several recovery paths leak
// pages deliberately instead of risking a double-owned page (quarantined
// overflow chains, amputated pages, crashed DropClass frees); the
// accountant makes that cost visible instead of letting it accumulate
// silently.
type PageAccount struct {
	Total      uint64 // pages in the file, metadata slot(s) included
	Meta       uint64 // metadata slots at the head of the file
	Heap       uint64
	Overflow   uint64
	Blob       uint64
	Free       uint64
	Unreadable uint64 // failed checksum during the walk
	Leaked     uint64 // allocated-typed pages reachable from no root

	// LeakedPages holds the first few leaked page ids for debugging.
	LeakedPages []PageID

	// all holds every leaked page id (uncapped) — the compactor's reclaim
	// list (Store.ReclaimLeaked).
	all []PageID
}

const maxLeakedReported = 64

func (a *PageAccount) leak(id PageID) {
	a.Leaked++
	a.all = append(a.all, id)
	if len(a.LeakedPages) < maxLeakedReported {
		a.LeakedPages = append(a.LeakedPages, id)
	}
}

// AccountPages walks the whole database file and returns the page account.
// It is a debug/verification walk (the crash harness runs it after every
// recovery): it reads every page in the file through the buffer pool, so
// it is O(file size) and evicts the working set. The leaked and total
// counts are also published on the storage_account_* gauges.
//
// The walk takes each heap's latch while tracing its chain, so it is safe
// against concurrent writers, but the classification is only meaningful on
// a quiesced store.
func (s *Store) AccountPages() (*PageAccount, error) {
	reach := make(map[PageID]bool)

	// Heap chains, and overflow chains hanging off live records. The chain
	// walks are type-guarded exactly like the recovery walks: a stale link
	// into a reused page must not adopt that page.
	s.mu.RLock()
	heaps := make([]*Heap, 0, len(s.heaps))
	for _, h := range s.heaps {
		heaps = append(heaps, h)
	}
	s.mu.RUnlock()
	for _, h := range heaps {
		h.mu.RLock()
		for id := h.First; id != InvalidPage && !reach[id]; {
			p, err := s.pool.Fetch(id)
			if err != nil {
				break
			}
			if p.Type() != pageTypeHeap {
				s.pool.Unpin(id, false)
				break
			}
			reach[id] = true
			n := p.Slots()
			for slot := 0; slot < n; slot++ {
				if !p.Live(slot) {
					continue
				}
				rec, err := p.Read(slot)
				if err != nil || len(rec) == 0 || rec[0] != recOverflow {
					continue
				}
				_, n1 := binary.Uvarint(rec[1:])
				head, n2 := binary.Uvarint(rec[1+n1:])
				if n1 <= 0 || n2 <= 0 {
					continue
				}
				for ov := PageID(head); ov != InvalidPage && !reach[ov]; {
					op, err := s.pool.Fetch(ov)
					if err != nil {
						break
					}
					if op.Type() != pageTypeOverflow {
						s.pool.Unpin(ov, false)
						break
					}
					reach[ov] = true
					next := op.Next()
					s.pool.Unpin(ov, false)
					ov = next
				}
			}
			next := p.Next()
			s.pool.Unpin(id, false)
			id = next
		}
		h.mu.RUnlock()
	}

	// System blob chains (catalog, segment table, index table, statistics).
	for _, r := range []MetaRoot{RootCatalog, RootSegTable, RootIndexTable, RootStats} {
		for id := s.disk.GetRoot(r); id != InvalidPage && !reach[id]; {
			p, err := s.pool.Fetch(id)
			if err != nil {
				break
			}
			if p.Type() != pageTypeBlob {
				s.pool.Unpin(id, false)
				break
			}
			reach[id] = true
			next := p.Next()
			s.pool.Unpin(id, false)
			id = next
		}
	}

	// Classify every page. Free-sealed pages are accounted free whether or
	// not the free list still threads to them (an abandoned free list —
	// see AllocPage — leaves them sealed and harmless); an allocated-typed
	// page nothing reaches is a leak. The metadata slots are classified by
	// position, not content: a duplexed slot torn by a crash must read as
	// Meta, never as a reclaimable leak.
	firstData := s.disk.FirstDataPage()
	acct := &PageAccount{Total: uint64(s.disk.NumPages()), Meta: uint64(firstData)}
	for id := firstData; id < PageID(acct.Total); id++ {
		p, err := s.pool.Fetch(id)
		if err != nil {
			acct.Unreadable++
			acct.leak(id)
			continue
		}
		typ := p.Type()
		s.pool.Unpin(id, false)
		switch typ {
		case pageTypeFree:
			acct.Free++
		case pageTypeHeap:
			acct.Heap++
			if !reach[id] {
				acct.leak(id)
			}
		case pageTypeOverflow:
			acct.Overflow++
			if !reach[id] {
				acct.leak(id)
			}
		case pageTypeBlob:
			acct.Blob++
			if !reach[id] {
				acct.leak(id)
			}
		default:
			acct.leak(id)
		}
	}
	mPagesLeaked.Set(int64(acct.Leaked))
	mPagesTotal.Set(int64(acct.Total))
	return acct, nil
}
