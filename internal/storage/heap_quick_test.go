package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestHeapRandomizedAgainstMap drives a heap with a random mix of inserts,
// updates and deletes — including payloads that cross the inline/overflow
// boundary in both directions — and checks full agreement with a reference
// map after every step and at the end via Scan.
func TestHeapRandomizedAgainstMap(t *testing.T) {
	s, _ := openTestStore(t, 128)
	defer s.Close()
	h, err := NewHeap(s.pool)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	ref := map[RID][]byte{}
	var rids []RID

	payload := func() []byte {
		// Mix sizes: tiny, page-scale, and multi-page overflow.
		var n int
		switch r.Intn(4) {
		case 0:
			n = r.Intn(64)
		case 1:
			n = 1000 + r.Intn(2000)
		case 2:
			n = maxInline - 5 + r.Intn(10) // straddle the boundary
		default:
			n = PageSize + r.Intn(2*PageSize)
		}
		buf := make([]byte, n)
		r.Read(buf)
		return buf
	}

	for step := 0; step < 800; step++ {
		switch {
		case len(rids) == 0 || r.Intn(3) == 0: // insert
			data := payload()
			rid, err := h.Insert(data)
			if err != nil {
				t.Fatalf("step %d: insert %d bytes: %v", step, len(data), err)
			}
			if _, dup := ref[rid]; dup {
				t.Fatalf("step %d: RID %v reused while live", step, rid)
			}
			ref[rid] = data
			rids = append(rids, rid)
		case r.Intn(3) == 0: // delete
			i := r.Intn(len(rids))
			rid := rids[i]
			if err := h.Delete(rid); err != nil {
				t.Fatalf("step %d: delete %v: %v", step, rid, err)
			}
			delete(ref, rid)
			rids = append(rids[:i], rids[i+1:]...)
		default: // update (may relocate)
			i := r.Intn(len(rids))
			rid := rids[i]
			data := payload()
			nrid, err := h.Update(rid, data)
			if err != nil {
				t.Fatalf("step %d: update %v to %d bytes: %v", step, rid, len(data), err)
			}
			if nrid != rid {
				delete(ref, rid)
				rids[i] = nrid
			}
			ref[nrid] = data
		}
		// Spot-check a random survivor.
		if len(rids) > 0 {
			rid := rids[r.Intn(len(rids))]
			got, err := h.Read(rid)
			if err != nil {
				t.Fatalf("step %d: read %v: %v", step, rid, err)
			}
			if !bytes.Equal(got, ref[rid]) {
				t.Fatalf("step %d: %v payload mismatch (%d vs %d bytes)", step, rid, len(got), len(ref[rid]))
			}
		}
	}

	// Full verification by scan.
	seen := 0
	err = h.Scan(func(rid RID, data []byte) bool {
		want, ok := ref[rid]
		if !ok {
			t.Errorf("scan found unexpected record %v", rid)
			return true
		}
		if !bytes.Equal(data, want) {
			t.Errorf("scan payload mismatch at %v", rid)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(ref) {
		t.Fatalf("scan saw %d records, want %d", seen, len(ref))
	}
	// Reads of deleted RIDs must fail.
	if len(rids) > 0 {
		rid := rids[0]
		if err := h.Delete(rid); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Read(rid); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("read of deleted record: %v", err)
		}
	}
}
