package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/model"
)

func openTestStore(t *testing.T, pool int) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kdb")
	s, err := Open(path, Options{PoolPages: pool})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// img builds a store image for an object with one string attribute.
func img(oid model.OID, payload string) []byte {
	o := model.NewObject(oid)
	o.Set(1, model.String(payload))
	return model.EncodeObject(o)
}

func TestDiskAllocFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	a, _ := d.AllocPage()
	b, _ := d.AllocPage()
	if a == b || a == InvalidPage {
		t.Fatalf("alloc returned %d, %d", a, b)
	}
	if err := d.FreePage(a); err != nil {
		t.Fatal(err)
	}
	c, _ := d.AllocPage()
	if c != a {
		t.Errorf("free list not reused: got %d, want %d", c, a)
	}
}

func TestDiskPersistsPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.kdb")
	d, _ := OpenDisk(path)
	id, _ := d.AllocPage()
	var p Page
	p.Init(pageTypeHeap)
	p.Insert([]byte("persist me"))
	if err := d.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var q Page
	if err := d2.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	got, err := q.Read(0)
	if err != nil || string(got) != "persist me" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestDiskRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kdb")
	d, _ := OpenDisk(path)
	d.Close()
	// Corrupt the magic in both metadata slots (a single bad slot falls
	// back to its twin; a non-database file has no valid slot at all).
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < MetaSlots; slot++ {
		f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, slot*PageSize+metaOffMagic)
		// Fix the checksum so only the magic is wrong.
		var p Page
		f.ReadAt(p.buf[:], slot*PageSize)
		p.Seal()
		f.WriteAt(p.buf[:], slot*PageSize)
	}
	f.Close()
	if _, err := OpenDisk(path); !errors.Is(err, ErrNotADatabase) {
		t.Errorf("expected ErrNotADatabase, got %v", err)
	}
}

func TestBufferPoolEvictionAndPins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.kdb")
	d, _ := OpenDisk(path)
	defer d.Close()
	bp := NewBufferPool(d, 4)

	var ids []PageID
	for i := 0; i < 8; i++ {
		id, p, err := bp.FetchNew(pageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		p.Insert([]byte{byte(i)})
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	if bp.Len() > 4 {
		t.Fatalf("pool holds %d frames, cap 4", bp.Len())
	}
	// Every page readable despite eviction (dirty pages were written back).
	for i, id := range ids {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Read(0)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("page %d content lost: %v", id, err)
		}
		bp.Unpin(id, false)
	}
	// Pin all frames: further fetches must fail, not evict pinned pages.
	var pinned []PageID
	for i := 0; i < 4; i++ {
		if _, err := bp.Fetch(ids[i]); err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, ids[i])
	}
	if _, err := bp.Fetch(ids[7]); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("expected ErrPoolExhausted, got %v", err)
	}
	for _, id := range pinned {
		bp.Unpin(id, false)
	}
}

func TestHeapInsertReadUpdateDelete(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	h, err := NewHeap(s.pool)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Read(rid); string(got) != "alpha" {
		t.Errorf("Read = %q", got)
	}
	nrid, err := h.Update(rid, []byte("beta"))
	if err != nil || nrid != rid {
		t.Fatalf("in-place update moved: %v %v", nrid, err)
	}
	if got, _ := h.Read(rid); string(got) != "beta" {
		t.Errorf("Read after update = %q", got)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(rid); !errors.Is(err, ErrNoRecord) {
		t.Errorf("expected ErrNoRecord, got %v", err)
	}
}

func TestHeapGrowsAcrossPages(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	h, _ := NewHeap(s.pool)
	rec := make([]byte, 500)
	var rids []RID
	for i := 0; i < 100; i++ {
		rec[0] = byte(i)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages, _ := h.Pages()
	if pages < 2 {
		t.Fatalf("expected multi-page heap, got %d pages", pages)
	}
	for i, rid := range rids {
		got, err := h.Read(rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("record %d lost: %v", i, err)
		}
	}
	// Scan sees all records in physical order.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return true })
	if n != 100 {
		t.Errorf("scan saw %d records, want 100", n)
	}
}

func TestHeapOverflowRecords(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	h, _ := NewHeap(s.pool)
	big := bytes.Repeat([]byte("x"), 3*PageSize)
	for i := range big {
		big[i] = byte(i % 251)
	}
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow payload corrupted")
	}
	// Update overflow -> small frees the chain; the pages are reusable.
	before := s.disk.NumPages()
	if _, err := h.Update(rid, []byte("small")); err != nil {
		t.Fatal(err)
	}
	var allocd []PageID
	for i := 0; i < 3; i++ {
		id, _ := s.disk.AllocPage()
		allocd = append(allocd, id)
	}
	for _, id := range allocd {
		if id >= before {
			t.Fatalf("freed overflow pages not reused (got page %d, file had %d)", id, before)
		}
	}
	if got, _ := h.Read(rid); string(got) != "small" {
		t.Errorf("Read = %q", got)
	}
}

func TestStorePutGetDelete(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	const class = model.ClassID(20)
	if err := s.CreateSegment(class); err != nil {
		t.Fatal(err)
	}
	oid, err := s.NewOID(class)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(oid, img(oid, "one")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := model.DecodeObject(data)
	if v, _ := obj.Get(1).AsString(); v != "one" {
		t.Errorf("payload = %q", v)
	}
	// Upsert.
	if err := s.Put(oid, img(oid, "two")); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Get(oid)
	obj, _ = model.DecodeObject(data)
	if v, _ := obj.Get(1).AsString(); v != "two" {
		t.Errorf("after upsert = %q", v)
	}
	if err := s.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(oid); !errors.Is(err, ErrNoObject) {
		t.Errorf("expected ErrNoObject, got %v", err)
	}
	// Idempotent delete.
	if err := s.Delete(oid); err != nil {
		t.Errorf("second delete: %v", err)
	}
}

func TestStoreReopenRebuildsDirectory(t *testing.T) {
	s, path := openTestStore(t, 64)
	const class = model.ClassID(21)
	s.CreateSegment(class)
	var oids []model.OID
	for i := 0; i < 200; i++ {
		oid, _ := s.NewOID(class)
		if err := s.Put(oid, img(oid, fmt.Sprintf("obj-%d", i))); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	// Delete a few before closing.
	for i := 0; i < 10; i++ {
		s.Delete(oids[i])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count(class); got != 190 {
		t.Fatalf("Count = %d, want 190", got)
	}
	for i := 10; i < 200; i++ {
		data, err := s2.Get(oids[i])
		if err != nil {
			t.Fatalf("Get(%v): %v", oids[i], err)
		}
		obj, _ := model.DecodeObject(data)
		if v, _ := obj.Get(1).AsString(); v != fmt.Sprintf("obj-%d", i) {
			t.Fatalf("object %d payload = %q", i, v)
		}
	}
	// Sequence counter is past the highest allocated.
	noid, _ := s2.NewOID(class)
	if noid.Seq() <= oids[len(oids)-1].Seq() {
		t.Error("sequence counter regressed after reopen")
	}
}

func TestStoreScanClass(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	const a, b = model.ClassID(30), model.ClassID(31)
	s.CreateSegment(a)
	s.CreateSegment(b)
	for i := 0; i < 20; i++ {
		oid, _ := s.NewOID(a)
		s.Put(oid, img(oid, "a"))
	}
	for i := 0; i < 5; i++ {
		oid, _ := s.NewOID(b)
		s.Put(oid, img(oid, "b"))
	}
	n := 0
	s.ScanClass(a, func(oid model.OID, _ []byte) bool {
		if oid.Class() != a {
			t.Errorf("scan leaked class %d", oid.Class())
		}
		n++
		return true
	})
	if n != 20 {
		t.Errorf("scan saw %d, want 20", n)
	}
	// Early stop.
	n = 0
	s.ScanClass(a, func(model.OID, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop at %d, want 3", n)
	}
}

func TestStoreDropSegment(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	const class = model.ClassID(40)
	s.CreateSegment(class)
	oid, _ := s.NewOID(class)
	s.Put(oid, img(oid, "gone"))
	if err := s.DropSegment(class); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(oid); !errors.Is(err, ErrNoObject) {
		t.Errorf("object survived segment drop: %v", err)
	}
	if s.Count(class) != 0 {
		t.Error("count nonzero after drop")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	for _, size := range []int{0, 1, 100, PageSize, 3*PageSize + 17} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		head, err := s.pool.WriteBlob(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.pool.ReadBlob(head)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("blob size %d corrupted (got %d bytes)", size, len(got))
		}
		if err := s.pool.FreeBlob(head); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplaceBlobSwapsRoot(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	if err := s.pool.ReplaceBlob(RootCatalog, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.pool.ReplaceBlob(RootCatalog, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := s.pool.ReadBlob(s.disk.GetRoot(RootCatalog))
	if err != nil || string(got) != "v2" {
		t.Fatalf("blob = %q, %v", got, err)
	}
}

func TestStoreLargeObjectSurvivesReopen(t *testing.T) {
	s, path := openTestStore(t, 64)
	const class = model.ClassID(50)
	s.CreateSegment(class)
	oid, _ := s.NewOID(class)
	o := model.NewObject(oid)
	o.Set(1, model.Bytes(bytes.Repeat([]byte{7}, 2*PageSize)))
	if err := s.Put(oid, model.EncodeObject(o)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, err := s2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := model.DecodeObject(data)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := obj.Get(1).AsBytes()
	if len(b) != 2*PageSize || b[0] != 7 {
		t.Fatal("large object corrupted across reopen")
	}
}

// openRW opens an existing file read-write for test-side corruption.
func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}

func TestStoreAccessors(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	if s.Pool() == nil || s.Disk() == nil {
		t.Fatal("accessors returned nil")
	}
	const a, b = model.ClassID(60), model.ClassID(61)
	s.CreateSegment(a)
	s.CreateSegment(b)
	classes := s.Classes()
	if len(classes) != 2 || classes[0] != a || classes[1] != b {
		t.Fatalf("Classes = %v", classes)
	}
	oid, _ := s.NewOID(a)
	if s.Exists(oid) {
		t.Fatal("unwritten OID exists")
	}
	s.Put(oid, img(oid, "x"))
	if !s.Exists(oid) {
		t.Fatal("written OID missing")
	}
	pages, err := s.SegmentPages(a)
	if err != nil || pages < 1 {
		t.Fatalf("SegmentPages = %d, %v", pages, err)
	}
	if pages, err := s.SegmentPages(model.ClassID(999)); err != nil || pages != 0 {
		t.Fatalf("missing segment pages = %d, %v", pages, err)
	}
	hits, misses := s.PoolStats()
	if hits == 0 && misses == 0 {
		t.Fatal("pool counters never moved")
	}
}

func TestPageHeaderAccessors(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	p.SetLSN(42)
	if p.LSN() != 42 {
		t.Fatalf("LSN = %d", p.LSN())
	}
	if len(p.Bytes()) != PageSize {
		t.Fatalf("Bytes len = %d", len(p.Bytes()))
	}
	before := p.FreeSpace()
	p.Insert(make([]byte, 100))
	if p.FreeSpace() >= before {
		t.Fatal("FreeSpace did not shrink after insert")
	}
	var rid RID
	if !rid.IsZero() {
		t.Fatal("zero RID not IsZero")
	}
	rid = RID{Page: 1, Slot: 0}
	if rid.IsZero() {
		t.Fatal("nonzero RID IsZero")
	}
}

func TestOpenDiskRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.kdb")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("misaligned file accepted")
	}
}

func TestReadPageBeyondEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.kdb")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var p Page
	if err := d.ReadPage(9999, &p); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.WritePage(9999, &p); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := d.FreePage(9999); err == nil {
		t.Fatal("out-of-range free accepted")
	}
}
