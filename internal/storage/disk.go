package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DiskManager reads and writes fixed-size pages in a single database file
// and manages page allocation through a free list threaded through freed
// pages' Next links. Page 0 is the metadata page and is never handed out.
//
// Metadata page payload (after the standard header):
//
//	offset  field
//	32      magic (4 bytes)
//	36      format version (4 bytes)
//	40      free list head (8 bytes)
//	48      catalog blob chain head (8 bytes)
//	56      segment table blob chain head (8 bytes)
//	64      index table blob chain head (8 bytes)
type DiskManager struct {
	mu       sync.Mutex
	file     *os.File
	numPages PageID // count of pages in the file, including page 0
	meta     Page
}

const (
	diskMagic      = 0x4B44_4201 // "KDB" + format 1
	metaOffMagic   = 32
	metaOffVersion = 36
	metaOffFree    = 40
	metaOffCatalog = 48
	metaOffSegTab  = 56
	metaOffIdxTab  = 64
)

// ErrNotADatabase reports a file that does not carry the kimdb magic.
var ErrNotADatabase = errors.New("storage: not a kimdb database file")

// Disk is the complete disk surface the store programs against: the buffer
// pool's page I/O plus lifecycle. *DiskManager is the production
// implementation; the fault-injection layer (internal/fault) wraps it to
// script I/O failures and simulated crashes.
type Disk interface {
	DiskBackend
	NumPages() PageID
	Close() error
}

// The disk manager is the production page backend of the buffer pool.
var _ Disk = (*DiskManager)(nil)

// OpenDisk opens (or creates) a database file.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &DiskManager{file: f}
	if st.Size() == 0 {
		// Fresh database: format the metadata page.
		d.meta.Init(pageTypeMeta)
		binary.BigEndian.PutUint32(d.meta.buf[metaOffMagic:], diskMagic)
		binary.BigEndian.PutUint32(d.meta.buf[metaOffVersion:], 1)
		d.numPages = 1
		if err := d.writeMetaLocked(); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not page-aligned", path, st.Size())
	}
	d.numPages = PageID(st.Size() / PageSize)
	if _, err := f.ReadAt(d.meta.buf[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := d.meta.Verify(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: metadata page: %w", err)
	}
	if binary.BigEndian.Uint32(d.meta.buf[metaOffMagic:]) != diskMagic {
		f.Close()
		return nil, ErrNotADatabase
	}
	return d, nil
}

// Close syncs and closes the file.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.file.Sync(); err != nil {
		d.file.Close()
		return err
	}
	return d.file.Close()
}

// NumPages returns the current file size in pages.
func (d *DiskManager) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// ReadPage reads the page into p, verifying its checksum.
func (d *DiskManager) ReadPage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readPageLocked(id, p)
}

func (d *DiskManager) readPageLocked(id PageID, p *Page) error {
	if id >= d.numPages {
		return fmt.Errorf("storage: read of page %d beyond end (%d pages)", id, d.numPages)
	}
	if _, err := d.file.ReadAt(p.buf[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if err := p.Verify(); err != nil {
		return fmt.Errorf("page %d: %w", id, err)
	}
	return nil
}

// WritePage seals (checksums) and writes the page.
func (d *DiskManager) WritePage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writePageLocked(id, p)
}

func (d *DiskManager) writePageLocked(id PageID, p *Page) error {
	if id >= d.numPages {
		return fmt.Errorf("storage: write of page %d beyond end (%d pages)", id, d.numPages)
	}
	p.Seal()
	if _, err := d.file.WriteAt(p.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// AllocPage returns a fresh page id, reusing the free list before extending
// the file. The returned page's on-disk content is undefined; callers must
// Init and write it.
func (d *DiskManager) AllocPage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	head := PageID(binary.BigEndian.Uint64(d.meta.buf[metaOffFree:]))
	if head != InvalidPage {
		var p Page
		err := d.readPageLocked(head, &p)
		if err == nil && p.Type() != pageTypeFree {
			err = fmt.Errorf("storage: free-list head %d is not a free page", head)
		}
		if err != nil {
			// A torn or clobbered free-list head would otherwise wedge every
			// allocation forever. Abandon the list — its pages leak, which
			// only costs space — and fall through to extending the file.
			mFreeListAbandoned.Add(1)
			binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(InvalidPage))
			if merr := d.writeMetaLocked(); merr != nil {
				return InvalidPage, merr
			}
		} else {
			binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(p.Next()))
			if err := d.writeMetaLocked(); err != nil {
				return InvalidPage, err
			}
			mFreeListReused.Add(1)
			return head, nil
		}
	}
	id := d.numPages
	d.numPages++
	// Extend the file with a zero page so subsequent reads are in-bounds.
	var zero Page
	zero.Init(pageTypeFree)
	zero.Seal()
	if _, err := d.file.WriteAt(zero.buf[:], int64(id)*PageSize); err != nil {
		d.numPages--
		return InvalidPage, fmt.Errorf("storage: extend to page %d: %w", id, err)
	}
	return id, nil
}

// FreePage returns a page to the free list.
func (d *DiskManager) FreePage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == InvalidPage || id >= d.numPages {
		return fmt.Errorf("storage: free of invalid page %d", id)
	}
	var p Page
	p.Init(pageTypeFree)
	p.SetNext(PageID(binary.BigEndian.Uint64(d.meta.buf[metaOffFree:])))
	if err := d.writePageLocked(id, &p); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(id))
	mFreeListFreed.Add(1)
	return d.writeMetaLocked()
}

// Sync forces all written pages to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.file.Sync()
}

// Meta roots. The engine stores the heads of its system blob chains
// (catalog image, segment table, index table) in the metadata page.

// MetaRoot identifies one of the blob-chain roots in the metadata page.
type MetaRoot int

// The metadata roots.
const (
	RootCatalog MetaRoot = iota
	RootSegTable
	RootIndexTable
)

func (r MetaRoot) offset() int {
	switch r {
	case RootCatalog:
		return metaOffCatalog
	case RootSegTable:
		return metaOffSegTab
	default:
		return metaOffIdxTab
	}
}

// GetRoot returns the page chain head stored under the root.
func (d *DiskManager) GetRoot(r MetaRoot) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PageID(binary.BigEndian.Uint64(d.meta.buf[r.offset():]))
}

// SetRoot stores a page chain head under the root and persists the
// metadata page.
func (d *DiskManager) SetRoot(r MetaRoot, id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	binary.BigEndian.PutUint64(d.meta.buf[r.offset():], uint64(id))
	return d.writeMetaLocked()
}

func (d *DiskManager) writeMetaLocked() error {
	d.meta.Seal()
	if _, err := d.file.WriteAt(d.meta.buf[:], 0); err != nil {
		return fmt.Errorf("storage: write metadata page: %w", err)
	}
	return nil
}
