package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DiskManager reads and writes fixed-size pages in a single database file
// and manages page allocation through a free list threaded through freed
// pages' Next links.
//
// The metadata is duplexed (format version 2): pages 0 and 1 are twin
// metadata slots carrying the same payload plus a monotonically increasing
// epoch, and every metadata write goes to the slot NOT holding the current
// state before becoming current itself. On open the newest slot that
// passes its checksum wins. A crash can therefore tear at most the slot
// being written, and the survivor is the state exactly one metadata write
// earlier — every metadata transition (free-list push/pop, root flip) is
// designed so that losing only its final write leaks a page at worst (see
// AllocPage's abandoned-head fallback and ReplaceBlob/SwapBlobs' sync
// ordering). Version-1 files (single slot at page 0) still open, in
// legacy mode, where the slot is rewritten in place.
//
// Metadata slot payload (after the standard page header):
//
//	offset  field
//	32      magic (4 bytes)
//	36      format version (4 bytes)
//	40      free list head (8 bytes)
//	48      catalog blob chain head (8 bytes)
//	56      segment table blob chain head (8 bytes)
//	64      index table blob chain head (8 bytes)
//	72      statistics blob chain head (8 bytes)
//	80      metadata epoch (8 bytes)
type DiskManager struct {
	mu       sync.Mutex
	file     *os.File
	numPages PageID // count of pages in the file, including the meta slots
	meta     Page
	curSlot  PageID // slot holding the current metadata (always 0 when !duplex)
	duplex   bool   // format version >= 2: A/B metadata slots at pages 0 and 1
}

const (
	diskMagic      = 0x4B44_4201 // "KDB" + format 1
	diskVersion    = 2           // current format: duplexed metadata slots
	metaOffMagic   = 32
	metaOffVersion = 36
	metaOffFree    = 40
	metaOffCatalog = 48
	metaOffSegTab  = 56
	metaOffIdxTab  = 64
	metaOffStats   = 72
	metaOffEpoch   = 80
)

// MetaSlots is the number of duplexed metadata slots at the head of a
// format-version-2 file (pages 0 and 1). Data pages start after them.
const MetaSlots = 2

// ErrNotADatabase reports a file that does not carry the kimdb magic.
var ErrNotADatabase = errors.New("storage: not a kimdb database file")

// Disk is the complete disk surface the store programs against: the buffer
// pool's page I/O plus lifecycle. *DiskManager is the production
// implementation; the fault-injection layer (internal/fault) wraps it to
// script I/O failures and simulated crashes.
type Disk interface {
	DiskBackend
	NumPages() PageID
	FirstDataPage() PageID
	Close() error
}

// The disk manager is the production page backend of the buffer pool.
var _ Disk = (*DiskManager)(nil)

// OpenDisk opens (or creates) a database file.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &DiskManager{file: f}
	if st.Size() == 0 {
		// Fresh database: format both metadata slots so the alternating
		// writer always has a valid fallback from the first write on.
		d.duplex = true
		d.meta.Init(pageTypeMeta)
		binary.BigEndian.PutUint32(d.meta.buf[metaOffMagic:], diskMagic)
		binary.BigEndian.PutUint32(d.meta.buf[metaOffVersion:], diskVersion)
		binary.BigEndian.PutUint64(d.meta.buf[metaOffEpoch:], 1)
		d.numPages = MetaSlots
		d.meta.Seal()
		for slot := PageID(0); slot < MetaSlots; slot++ {
			if _, err := f.WriteAt(d.meta.buf[:], int64(slot)*PageSize); err != nil {
				f.Close()
				return nil, fmt.Errorf("storage: format metadata slot %d: %w", slot, err)
			}
		}
		d.curSlot = 0
		return d, nil
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not page-aligned", path, st.Size())
	}
	d.numPages = PageID(st.Size() / PageSize)
	if err := d.openMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// openMeta reads the metadata slot(s) and installs the newest valid one.
// For duplexed files a torn or stale slot is tolerated as long as its twin
// verifies — that fallback is the whole point of the duplexing and is
// counted on storage_meta_slot_fallbacks.
func (d *DiskManager) openMeta() error {
	type slotState struct {
		page  Page
		epoch uint64
		valid bool
	}
	var slots [MetaSlots]slotState
	n := d.numPages
	if n > MetaSlots {
		n = MetaSlots
	}
	for i := PageID(0); i < n; i++ {
		s := &slots[i]
		if _, err := d.file.ReadAt(s.page.buf[:], int64(i)*PageSize); err != nil {
			continue
		}
		if s.page.Verify() != nil || s.page.Type() != pageTypeMeta {
			continue
		}
		if binary.BigEndian.Uint32(s.page.buf[metaOffMagic:]) != diskMagic {
			continue
		}
		s.epoch = binary.BigEndian.Uint64(s.page.buf[metaOffEpoch:])
		s.valid = true
	}
	winner := -1
	for i := range slots {
		if slots[i].valid && (winner < 0 || slots[i].epoch > slots[winner].epoch) {
			winner = i
		}
	}
	if winner < 0 {
		// Reproduce the single-slot error surface: a readable page-0 with
		// the wrong magic is "not a database", anything else is corruption.
		var p0 Page
		if _, err := d.file.ReadAt(p0.buf[:], 0); err != nil {
			return fmt.Errorf("storage: metadata page: %w", err)
		}
		if err := p0.Verify(); err != nil {
			return fmt.Errorf("storage: metadata page: %w", err)
		}
		if binary.BigEndian.Uint32(p0.buf[metaOffMagic:]) != diskMagic {
			return ErrNotADatabase
		}
		return fmt.Errorf("storage: metadata page: not a metadata slot")
	}
	d.meta = slots[winner].page
	d.curSlot = PageID(winner)
	d.duplex = binary.BigEndian.Uint32(d.meta.buf[metaOffVersion:]) >= 2
	if d.duplex {
		for i := range slots {
			if PageID(i) < n && !slots[i].valid {
				// The twin slot exists but did not verify: a torn metadata
				// write survived by its sibling.
				mMetaSlotFallback.Add(1)
			}
		}
	}
	return nil
}

// Close syncs and closes the file.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.file.Sync(); err != nil {
		d.file.Close()
		return err
	}
	return d.file.Close()
}

// NumPages returns the current file size in pages.
func (d *DiskManager) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// FirstDataPage returns the id of the first page that can hold data: past
// both metadata slots on a duplexed file, past page 0 on a legacy one.
func (d *DiskManager) FirstDataPage() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.firstDataLocked()
}

func (d *DiskManager) firstDataLocked() PageID {
	if d.duplex {
		return MetaSlots
	}
	return 1
}

// ReadPage reads the page into p, verifying its checksum.
func (d *DiskManager) ReadPage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readPageLocked(id, p)
}

func (d *DiskManager) readPageLocked(id PageID, p *Page) error {
	if id >= d.numPages {
		return fmt.Errorf("storage: read of page %d beyond end (%d pages)", id, d.numPages)
	}
	if _, err := d.file.ReadAt(p.buf[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if err := p.Verify(); err != nil {
		return fmt.Errorf("page %d: %w", id, err)
	}
	return nil
}

// WritePage seals (checksums) and writes the page.
func (d *DiskManager) WritePage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writePageLocked(id, p)
}

func (d *DiskManager) writePageLocked(id PageID, p *Page) error {
	if id < d.firstDataLocked() {
		return fmt.Errorf("storage: write of metadata slot %d through the page seam", id)
	}
	if id >= d.numPages {
		return fmt.Errorf("storage: write of page %d beyond end (%d pages)", id, d.numPages)
	}
	p.Seal()
	if _, err := d.file.WriteAt(p.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// AllocPage returns a fresh page id, reusing the free list before extending
// the file. The returned page's on-disk content is undefined; callers must
// Init and write it.
func (d *DiskManager) AllocPage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	head := PageID(binary.BigEndian.Uint64(d.meta.buf[metaOffFree:]))
	if head != InvalidPage {
		var p Page
		err := d.readPageLocked(head, &p)
		if err == nil && p.Type() != pageTypeFree {
			err = fmt.Errorf("storage: free-list head %d is not a free page", head)
		}
		if err != nil {
			// A torn or clobbered free-list head would otherwise wedge every
			// allocation forever. Abandon the list — its pages leak, which
			// only costs space — and fall through to extending the file.
			mFreeListAbandoned.Add(1)
			binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(InvalidPage))
			if merr := d.writeMetaLocked(); merr != nil {
				return InvalidPage, merr
			}
		} else {
			binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(p.Next()))
			if err := d.writeMetaLocked(); err != nil {
				return InvalidPage, err
			}
			mFreeListReused.Add(1)
			return head, nil
		}
	}
	id := d.numPages
	d.numPages++
	// Extend the file with a zero page so subsequent reads are in-bounds.
	var zero Page
	zero.Init(pageTypeFree)
	zero.Seal()
	if _, err := d.file.WriteAt(zero.buf[:], int64(id)*PageSize); err != nil {
		d.numPages--
		return InvalidPage, fmt.Errorf("storage: extend to page %d: %w", id, err)
	}
	return id, nil
}

// FreePage returns a page to the free list.
func (d *DiskManager) FreePage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == InvalidPage || id < d.firstDataLocked() || id >= d.numPages {
		return fmt.Errorf("storage: free of invalid page %d", id)
	}
	var p Page
	p.Init(pageTypeFree)
	p.SetNext(PageID(binary.BigEndian.Uint64(d.meta.buf[metaOffFree:])))
	if err := d.writePageLocked(id, &p); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(d.meta.buf[metaOffFree:], uint64(id))
	mFreeListFreed.Add(1)
	return d.writeMetaLocked()
}

// Sync forces all written pages to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.file.Sync()
}

// Meta roots. The engine stores the heads of its system blob chains
// (catalog image, segment table, index table, statistics) in the metadata
// slots.

// MetaRoot identifies one of the blob-chain roots in the metadata page.
type MetaRoot int

// The metadata roots.
const (
	RootCatalog MetaRoot = iota
	RootSegTable
	RootIndexTable
	RootStats
)

func (r MetaRoot) offset() int {
	switch r {
	case RootCatalog:
		return metaOffCatalog
	case RootSegTable:
		return metaOffSegTab
	case RootStats:
		return metaOffStats
	default:
		return metaOffIdxTab
	}
}

// GetRoot returns the page chain head stored under the root.
func (d *DiskManager) GetRoot(r MetaRoot) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PageID(binary.BigEndian.Uint64(d.meta.buf[r.offset():]))
}

// SetRoot stores a page chain head under the root and persists the
// metadata page.
func (d *DiskManager) SetRoot(r MetaRoot, id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	binary.BigEndian.PutUint64(d.meta.buf[r.offset():], uint64(id))
	return d.writeMetaLocked()
}

// SetRoots stores several roots with a single metadata write. Because one
// metadata write lands in one slot, the batch is atomic under the crash
// model: after a crash either all of the updates are visible or none are.
// The checkpoint uses this to swap the catalog, segment-table, index-table
// and statistics blobs as one transition, closing the window where a crash
// between separate root flips could reopen with a segment whose class is
// gone from the catalog.
func (d *DiskManager) SetRoots(roots map[MetaRoot]PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r, id := range roots {
		binary.BigEndian.PutUint64(d.meta.buf[r.offset():], uint64(id))
	}
	return d.writeMetaLocked()
}

// writeMetaLocked persists the metadata: on a duplexed file the epoch is
// bumped and the write targets the slot not holding the current state, so
// a crash mid-write still leaves the previous state readable; a legacy
// file rewrites its single slot in place.
func (d *DiskManager) writeMetaLocked() error {
	if d.duplex {
		epoch := binary.BigEndian.Uint64(d.meta.buf[metaOffEpoch:]) + 1
		binary.BigEndian.PutUint64(d.meta.buf[metaOffEpoch:], epoch)
		d.curSlot = 1 - d.curSlot
	}
	d.meta.Seal()
	if _, err := d.file.WriteAt(d.meta.buf[:], int64(d.curSlot)*PageSize); err != nil {
		return fmt.Errorf("storage: write metadata page: %w", err)
	}
	return nil
}

// MetaSlotInfo inspects a raw page image as a metadata slot: it reports
// the format version and epoch if the image is a checksum-valid metadata
// page carrying the kimdb magic. The fault-injection layer uses it to find
// the newest slot of a duplexed file when simulating a torn metadata
// write, and tests use it to assert slot alternation.
func MetaSlotInfo(buf []byte) (version uint32, epoch uint64, ok bool) {
	if len(buf) != PageSize {
		return 0, 0, false
	}
	var p Page
	copy(p.buf[:], buf)
	if p.Verify() != nil || p.Type() != pageTypeMeta {
		return 0, 0, false
	}
	if binary.BigEndian.Uint32(p.buf[metaOffMagic:]) != diskMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(p.buf[metaOffVersion:]),
		binary.BigEndian.Uint64(p.buf[metaOffEpoch:]), true
}
