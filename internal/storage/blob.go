package storage

import "fmt"

// System blobs. The catalog image, the segment table and the index table
// are variable-length byte strings stored in chains of blob pages whose
// heads live in the metadata page. Blobs are rewritten whole — they change
// only at DDL and checkpoint time.

// WriteBlob stores data in a fresh page chain and returns the head.
func (bp *BufferPool) WriteBlob(data []byte) (PageID, error) {
	if len(data) == 0 {
		// An empty blob still needs a page so the root distinguishes
		// "empty" from "absent".
		id, p, err := bp.FetchNew(pageTypeBlob)
		if err != nil {
			return InvalidPage, err
		}
		_, err = p.Insert(nil)
		bp.Unpin(id, true)
		return id, err
	}
	var head, prev PageID
	for off := 0; off < len(data); {
		chunk := len(data) - off
		if chunk > maxInline {
			chunk = maxInline
		}
		id, p, err := bp.FetchNew(pageTypeBlob)
		if err != nil {
			return InvalidPage, err
		}
		if _, err := p.Insert(data[off : off+chunk]); err != nil {
			bp.Unpin(id, false)
			return InvalidPage, err
		}
		bp.Unpin(id, true)
		if head == InvalidPage {
			head = id
		} else {
			pp, err := bp.Fetch(prev)
			if err != nil {
				return InvalidPage, err
			}
			pp.SetNext(id)
			bp.Unpin(prev, true)
		}
		prev = id
		off += chunk
	}
	return head, nil
}

// ReadBlob reassembles a blob from its chain head.
func (bp *BufferPool) ReadBlob(head PageID) ([]byte, error) {
	var out []byte
	for id := head; id != InvalidPage; {
		p, err := bp.Fetch(id)
		if err != nil {
			return nil, err
		}
		if p.Type() != pageTypeBlob {
			bp.Unpin(id, false)
			return nil, fmt.Errorf("storage: page %d is not a blob page", id)
		}
		chunk, err := p.Read(0)
		if err != nil {
			bp.Unpin(id, false)
			return nil, fmt.Errorf("storage: corrupt blob page %d: %w", id, err)
		}
		out = append(out, chunk...)
		next := p.Next()
		bp.Unpin(id, false)
		id = next
	}
	return out, nil
}

// FreeBlob returns a blob chain's pages to the free list. Pages that are
// not blob-typed terminate the walk and are leaked, not freed: after a
// crash a stale chain pointer can lead into a reused page, and freeing it
// would hand one page to two owners (same rule as heap overflow chains).
func (bp *BufferPool) FreeBlob(head PageID) error {
	for id := head; id != InvalidPage; {
		p, err := bp.Fetch(id)
		if err != nil {
			return nil // unverifiable page: leak the rest of the chain
		}
		if p.Type() != pageTypeBlob {
			bp.Unpin(id, false)
			return nil
		}
		next := p.Next()
		bp.Unpin(id, false)
		bp.Drop(id)
		if err := bp.FreePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// ReplaceBlob atomically (with respect to the metadata root) swaps the blob
// stored under root for data: the new chain is written AND made durable
// first, the root is flipped, then the old chain is freed. The durability
// barrier before the flip is load-bearing: the root write reaches the
// metadata page immediately, so if the chain pages were still only buffered
// a crash before the next checkpoint flush would leave the root pointing at
// garbage and the store unopenable (the old chain, though intact, is no
// longer referenced).
func (bp *BufferPool) ReplaceBlob(root MetaRoot, data []byte) error {
	old := bp.disk.GetRoot(root)
	head, err := bp.WriteBlob(data)
	if err != nil {
		return err
	}
	if err := bp.FlushChain(head); err != nil {
		return err
	}
	if err := bp.disk.SetRoot(root, head); err != nil {
		return err
	}
	if old != InvalidPage {
		// The flip must be durable before the old chain is destroyed. The
		// metadata slots are no longer modeled durable-at-write: a crash can
		// lose the root flip, and if the old chain's pages were already
		// free-sealed the surviving (old) root would lead into reused pages
		// and the store could not open.
		if err := bp.disk.Sync(); err != nil {
			return err
		}
		return bp.FreeBlob(old)
	}
	return nil
}

// swapRootOrder fixes the order in which SwapBlobs writes and frees chains.
// The order is load-bearing for the crash harness: schedules are replayed
// by global I/O op index, so the checkpoint's I/O sequence must be
// identical across runs.
var swapRootOrder = []MetaRoot{RootCatalog, RootSegTable, RootIndexTable, RootStats}

// SwapBlobs replaces several system blobs as one atomic transition: every
// new chain is written and made durable first, then all roots are flipped
// with a single metadata write (SetRoots), the flip is synced, and only
// then are the old chains freed. Compared with per-root ReplaceBlob calls
// this closes the metadata-swap window the checkpoint used to have — a
// crash between the catalog flip and the segment-table flip could reopen
// with a segment whose class was gone from the catalog (readable orphan
// rows). With one root write there is no between: a crash leaves either
// every old root or every new one, and the not-yet-referenced (or
// no-longer-freed) chains merely leak pages, which the accountant counts
// and the compactor reclaims.
func (bp *BufferPool) SwapBlobs(blobs map[MetaRoot][]byte) error {
	roots := make(map[MetaRoot]PageID, len(blobs))
	olds := make([]PageID, 0, len(blobs))
	for _, r := range swapRootOrder {
		data, ok := blobs[r]
		if !ok {
			continue
		}
		head, err := bp.WriteBlob(data)
		if err != nil {
			return err
		}
		if err := bp.FlushChain(head); err != nil {
			return err
		}
		roots[r] = head
		if old := bp.disk.GetRoot(r); old != InvalidPage {
			olds = append(olds, old)
		}
	}
	if len(roots) != len(blobs) {
		return fmt.Errorf("storage: SwapBlobs: unknown meta root in request")
	}
	if len(roots) == 0 {
		return nil
	}
	if err := bp.disk.SetRoots(roots); err != nil {
		return err
	}
	// Same barrier as ReplaceBlob: the flip must be durable before any old
	// chain page is destroyed in place.
	if err := bp.disk.Sync(); err != nil {
		return err
	}
	for _, old := range olds {
		if err := bp.FreeBlob(old); err != nil {
			return err
		}
	}
	return nil
}
