package storage

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowDisk wraps the real disk manager, parking reads of designated pages
// on a gate channel so tests can hold a miss in flight while probing the
// pool from other goroutines.
type slowDisk struct {
	*DiskManager
	mu      sync.Mutex
	slow    map[PageID]bool
	gate    chan struct{} // reads of slow pages block until this closes
	entered chan PageID   // signals a slow read has started
	reads   map[PageID]int
	fail    map[PageID]error
}

func newSlowDisk(d *DiskManager) *slowDisk {
	return &slowDisk{
		DiskManager: d,
		slow:        make(map[PageID]bool),
		gate:        make(chan struct{}),
		entered:     make(chan PageID, 16),
		reads:       make(map[PageID]int),
		fail:        make(map[PageID]error),
	}
}

func (sd *slowDisk) ReadPage(id PageID, p *Page) error {
	sd.mu.Lock()
	sd.reads[id]++
	isSlow := sd.slow[id]
	ferr := sd.fail[id]
	sd.mu.Unlock()
	if isSlow {
		sd.entered <- id
		<-sd.gate
	}
	if ferr != nil {
		return ferr
	}
	return sd.DiskManager.ReadPage(id, p)
}

func (sd *slowDisk) readCount(id PageID) int {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.reads[id]
}

// seedPages writes n heap pages through a throwaway pool and flushes them,
// returning their ids: fodder for cold-cache fetch tests.
func seedPages(t *testing.T, d *DiskManager, n int) []PageID {
	t.Helper()
	bp := NewBufferPool(d, n+1)
	ids := make([]PageID, n)
	for i := range ids {
		id, p, err := bp.FetchNew(pageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, true)
		ids[i] = id
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestFetchHitDoesNotBlockOnMiss is the regression test for the seed bug
// where Fetch held the pool mutex across disk I/O: a cache hit must
// complete while another page's (arbitrarily slow) disk read is in flight.
func TestFetchHitDoesNotBlockOnMiss(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "b.kdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ids := seedPages(t, d, 2)
	slowPage, hotPage := ids[0], ids[1]

	sd := newSlowDisk(d)
	// One shard on purpose: the hit and the miss share a stripe, so only
	// the I/O-outside-the-lock protocol can keep the hit fast.
	bp := NewShardedBufferPool(sd, 8, 1)

	// Warm the hot page.
	if _, err := bp.Fetch(hotPage); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(hotPage, false)

	sd.mu.Lock()
	sd.slow[slowPage] = true
	sd.mu.Unlock()

	missDone := make(chan error, 1)
	go func() {
		_, err := bp.Fetch(slowPage)
		if err == nil {
			bp.Unpin(slowPage, false)
		}
		missDone <- err
	}()
	<-sd.entered // the miss is now parked inside disk I/O

	hitDone := make(chan error, 1)
	go func() {
		_, err := bp.Fetch(hotPage)
		if err == nil {
			bp.Unpin(hotPage, false)
		}
		hitDone <- err
	}()
	select {
	case err := <-hitDone:
		if err != nil {
			t.Fatalf("cache hit failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache hit blocked behind another page's disk read")
	}

	close(sd.gate)
	if err := <-missDone; err != nil {
		t.Fatalf("slow fetch failed: %v", err)
	}
}

// TestFetchCoalescesConcurrentMisses asserts that concurrent fetchers of
// the same absent page share one disk read instead of duplicating I/O.
func TestFetchCoalescesConcurrentMisses(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "b.kdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := seedPages(t, d, 1)[0]

	sd := newSlowDisk(d)
	sd.slow[id] = true
	bp := NewBufferPool(sd, 8)

	const fetchers = 8
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := bp.Fetch(id)
			if err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			if got, err := p.Read(0); err != nil || got[0] != 0 {
				t.Errorf("page content: %v %v", got, err)
			}
			bp.Unpin(id, false)
			ok.Add(1)
		}()
	}
	<-sd.entered // exactly one fetcher reached the disk
	close(sd.gate)
	wg.Wait()
	if ok.Load() != fetchers {
		t.Fatalf("%d/%d fetchers succeeded", ok.Load(), fetchers)
	}
	if n := sd.readCount(id); n != 1 {
		t.Fatalf("page read from disk %d times; want 1 (coalesced)", n)
	}
	if h, m := bp.Hits.Load(), bp.Misses.Load(); m != 1 || h < fetchers-1 {
		t.Errorf("hits=%d misses=%d; want 1 miss and >=%d hits", h, m, fetchers-1)
	}
}

// TestFetchLoadFailurePropagates asserts a failed load reaches both the
// loader and any coalesced waiters, and that the frame is dropped so a
// later fetch retries the disk.
func TestFetchLoadFailurePropagates(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "b.kdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := seedPages(t, d, 1)[0]

	sd := newSlowDisk(d)
	sd.slow[id] = true
	boom := errors.New("injected read failure")
	sd.fail[id] = boom
	bp := NewBufferPool(sd, 8)

	const fetchers = 4
	errsCh := make(chan error, fetchers)
	for i := 0; i < fetchers; i++ {
		go func() {
			_, err := bp.Fetch(id)
			errsCh <- err
		}()
	}
	<-sd.entered
	close(sd.gate)
	for i := 0; i < fetchers; i++ {
		if err := <-errsCh; !errors.Is(err, boom) {
			t.Fatalf("fetcher error = %v, want %v", err, boom)
		}
	}
	if bp.Len() != 0 {
		t.Fatalf("failed frame still resident (%d frames)", bp.Len())
	}

	// Clear the fault: the next fetch must retry the disk and succeed.
	sd.mu.Lock()
	delete(sd.fail, id)
	delete(sd.slow, id)
	sd.mu.Unlock()
	p, err := bp.Fetch(id)
	if err != nil {
		t.Fatalf("fetch after fault cleared: %v", err)
	}
	if got, err := p.Read(0); err != nil || got[0] != 0 {
		t.Fatalf("page content after retry: %v %v", got, err)
	}
	bp.Unpin(id, false)
}

// TestShardedPoolStripes sanity-checks shard-count normalization.
func TestShardedPoolStripes(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "b.kdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cases := []struct {
		capacity, shards, want int
	}{
		{1024, 16, 16},
		{1024, 0, 1},   // clamped up to 1
		{1024, 24, 16}, // rounded down to a power of two
		{4, 16, 4},     // clamped to capacity
		{1, 16, 1},
	}
	for _, c := range cases {
		bp := NewShardedBufferPool(d, c.capacity, c.shards)
		if got := bp.ShardCount(); got != c.want {
			t.Errorf("shards(cap=%d, req=%d) = %d, want %d", c.capacity, c.shards, got, c.want)
		}
	}
}

// TestConcurrentFetchStress hammers a small sharded pool from many
// goroutines (run under -race): hits, misses, evictions and pins all
// interleave.
func TestConcurrentFetchStress(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "b.kdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ids := seedPages(t, d, 32)
	bp := NewShardedBufferPool(d, 16, 4) // smaller than the working set: constant eviction

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(w*13+i)%len(ids)]
				p, err := bp.Fetch(id)
				if err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue // transient: all frames of one stripe pinned
					}
					t.Errorf("fetch %d: %v", id, err)
					return
				}
				if _, err := p.Read(0); err != nil {
					t.Errorf("read %d: %v", id, err)
				}
				bp.Unpin(id, false)
			}
		}(w)
	}
	wg.Wait()
	if h, m := bp.Hits.Load(), bp.Misses.Load(); h+m == 0 {
		t.Error("counters never moved")
	}
}
