package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestPageInsertReadDelete(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s1); string(got) != "hello" {
		t.Errorf("Read(s1) = %q", got)
	}
	if got, _ := p.Read(s2); string(got) != "world!" {
		t.Errorf("Read(s2) = %q", got)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s1); err == nil {
		t.Error("read of deleted slot succeeded")
	}
	if err := p.Delete(s1); err == nil {
		t.Error("double delete succeeded")
	}
	// Deleted slot is reused.
	s3, err := p.Insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("slot not reused: got %d, want %d", s3, s1)
	}
}

func TestPageFillAndCompaction(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	rec := make([]byte, 100)
	var slots []int
	for {
		s, err := p.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("only %d 100-byte records fit in a 4K page", len(slots))
	}
	// Delete every other record, then insert larger records into the
	// reclaimed (fragmented) space — forcing compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 150)
	inserted := 0
	for {
		if _, err := p.Insert(big); err != nil {
			break
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("compaction failed to reclaim fragmented space")
	}
	// Survivors are intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || len(got) != 100 {
			t.Fatalf("record %d corrupted after compaction: %v", slots[i], err)
		}
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	s, _ := p.Insert([]byte("aaaa"))
	if err := p.Update(s, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s); string(got) != "bb" {
		t.Errorf("shrinking update: %q", got)
	}
	if err := p.Update(s, bytes.Repeat([]byte("c"), 500)); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s); len(got) != 500 || got[0] != 'c' {
		t.Error("growing update corrupted record")
	}
}

func TestPageUpdateFullSignalsRelocation(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	s, _ := p.Insert(make([]byte, 100))
	for {
		if _, err := p.Insert(make([]byte, 200)); err != nil {
			break
		}
	}
	err := p.Update(s, make([]byte, 3000))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("expected ErrPageFull, got %v", err)
	}
	// Contract: after ErrPageFull from Update the slot is deleted.
	if p.Live(s) {
		t.Error("slot should be deleted after failed growing update")
	}
}

func TestPageTooLarge(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	if _, err := p.Insert(make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestPageChecksum(t *testing.T) {
	var p Page
	p.Init(pageTypeHeap)
	p.Insert([]byte("payload"))
	p.Seal()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	p.buf[2000] ^= 0xFF
	if err := p.Verify(); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("expected ErrBadChecksum, got %v", err)
	}
}

func TestPageRandomizedWorkload(t *testing.T) {
	// Property-style stress: random inserts/updates/deletes mirrored
	// against a map; the page must agree at every step.
	var p Page
	p.Init(pageTypeHeap)
	r := rand.New(rand.NewSource(1))
	mirror := map[int][]byte{}
	for step := 0; step < 5000; step++ {
		switch r.Intn(3) {
		case 0: // insert
			rec := make([]byte, 1+r.Intn(200))
			r.Read(rec)
			s, err := p.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, taken := mirror[s]; taken {
				t.Fatalf("step %d: slot %d double-allocated", step, s)
			}
			mirror[s] = rec
		case 1: // update
			for s, old := range mirror {
				rec := make([]byte, 1+r.Intn(200))
				r.Read(rec)
				err := p.Update(s, rec)
				if errors.Is(err, ErrPageFull) {
					delete(mirror, s) // contract: slot deleted
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				_ = old
				mirror[s] = rec
				break
			}
		case 2: // delete
			for s := range mirror {
				if err := p.Delete(s); err != nil {
					t.Fatal(err)
				}
				delete(mirror, s)
				break
			}
		}
		// Verify a random member.
		for s, want := range mirror {
			got, err := p.Read(s)
			if err != nil {
				t.Fatalf("step %d: read slot %d: %v", step, s, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: slot %d mismatch", step, s)
			}
			break
		}
	}
}
