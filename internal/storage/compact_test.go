package storage

import (
	"bytes"
	"strings"
	"testing"

	"oodb/internal/model"
)

const compactTestClass = model.ClassID(3)

// fillSegment inserts n objects; every overflowEvery-th one carries a
// payload big enough to need an overflow chain. Returns the minted OIDs.
func fillSegment(t *testing.T, s *Store, class model.ClassID, n, overflowEvery int) []model.OID {
	t.Helper()
	if err := s.CreateSegment(class); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("B", 3*PageSize)
	oids := make([]model.OID, n)
	for i := 0; i < n; i++ {
		oid, err := s.NewOID(class)
		if err != nil {
			t.Fatal(err)
		}
		payload := strings.Repeat("p", 100)
		if overflowEvery > 0 && i%overflowEvery == 0 {
			payload = big
		}
		if err := s.Put(oid, img(oid, payload)); err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	return oids
}

// TestRewriteSegmentFidelity deletes most of a segment, rewrites it, and
// verifies every survivor reads back byte-identical (overflow records
// included), the chain shrank, and freeing the detached old chain leaves
// the file leak-free.
func TestRewriteSegmentFidelity(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	oids := fillSegment(t, s, compactTestClass, 200, 20)

	want := make(map[model.OID][]byte)
	for i, oid := range oids {
		if i%4 != 0 {
			if err := s.Delete(oid); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data, err := s.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = append([]byte(nil), data...)
	}

	visited := 0
	detached, res, err := s.RewriteSegment(compactTestClass, func(oid model.OID, data []byte) {
		visited++
		if w, ok := want[oid]; !ok || !bytes.Equal(w, data) {
			t.Errorf("visit callback saw wrong image for %s", oid)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveRecords != len(want) || visited != len(want) {
		t.Fatalf("copied %d records, visited %d, want %d", res.LiveRecords, visited, len(want))
	}
	if res.PagesAfter >= res.PagesBefore {
		t.Fatalf("compaction did not shrink the chain: %d -> %d pages", res.PagesBefore, res.PagesAfter)
	}
	for oid, w := range want {
		got, err := s.Get(oid)
		if err != nil {
			t.Fatalf("get %s after rewrite: %v", oid, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("object %s changed across rewrite", oid)
		}
	}
	// Mirror the engine protocol: persist the new segment table, then free
	// the detached chain — after which nothing should be leaked.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.FreeDetached(detached); err != nil {
		t.Fatal(err)
	}
	acct, err := s.AccountPages()
	if err != nil {
		t.Fatal(err)
	}
	if acct.Leaked != 0 {
		t.Fatalf("%d pages leaked after rewrite+free (ids %v)", acct.Leaked, acct.LeakedPages)
	}
}

// TestRewriteSegmentDropsStaleCopies plants a physical record the
// directory does not name — the residue a crash-torn update leaves after
// the rebuild picks one copy — and verifies the rewrite drops it.
func TestRewriteSegmentDropsStaleCopies(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	oids := fillSegment(t, s, compactTestClass, 10, 0)

	// A second physical copy of oids[0], inserted behind the directory's
	// back: scan sees two records, the directory names one.
	s.mu.RLock()
	h := s.heaps[compactTestClass]
	s.mu.RUnlock()
	if _, err := h.Insert(img(oids[0], "stale shadow copy")); err != nil {
		t.Fatal(err)
	}

	_, res, err := s.RewriteSegment(compactTestClass, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveRecords != len(oids) {
		t.Fatalf("rewrite copied %d records, want %d (stale copy must be dropped)", res.LiveRecords, len(oids))
	}
	n := 0
	err = s.ScanClass(compactTestClass, func(oid model.OID, data []byte) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(oids) {
		t.Fatalf("scan after rewrite sees %d records, want %d", n, len(oids))
	}
}

// TestSegmentInfoOccupancy pins the trigger-policy signal: a freshly
// filled segment reads as dense, the same segment after mass deletion
// reads as sparse, and a class without a segment reads as nil.
func TestSegmentInfoOccupancy(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	oids := fillSegment(t, s, compactTestClass, 300, 0)

	dense, err := s.SegmentInfo(compactTestClass)
	if err != nil {
		t.Fatal(err)
	}
	if dense == nil || dense.LiveRecords != len(oids) || dense.Pages == 0 {
		t.Fatalf("dense info = %+v", dense)
	}
	for i, oid := range oids {
		if i%10 != 0 {
			if err := s.Delete(oid); err != nil {
				t.Fatal(err)
			}
		}
	}
	sparse, err := s.SegmentInfo(compactTestClass)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Pages != dense.Pages {
		t.Fatalf("deletes changed the chain length: %d -> %d", dense.Pages, sparse.Pages)
	}
	if sparse.Occupancy >= dense.Occupancy {
		t.Fatalf("occupancy did not fall after deletes: %.3f -> %.3f", dense.Occupancy, sparse.Occupancy)
	}
	if sparse.Occupancy <= 0 || dense.Occupancy > 1 {
		t.Fatalf("occupancy out of range: dense=%.3f sparse=%.3f", dense.Occupancy, sparse.Occupancy)
	}
	if info, err := s.SegmentInfo(model.ClassID(99)); err != nil || info != nil {
		t.Fatalf("no-segment info = (%v, %v), want (nil, nil)", info, err)
	}
}

// TestReclaimLeaked detaches a segment without freeing it (the durable
// state a crash between checkpoint and free leaves behind), then verifies
// the accountant reports the leak and ReclaimLeaked drives it — and the
// storage_account_leaked_pages gauge — to zero.
func TestReclaimLeaked(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	fillSegment(t, s, compactTestClass, 100, 10)

	d := s.DetachSegment(compactTestClass)
	if d == nil {
		t.Fatal("detach returned nil for an existing segment")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The detached chain is now garbage: durably unnamed, never freed.
	acct, err := s.AccountPages()
	if err != nil {
		t.Fatal(err)
	}
	if acct.Leaked == 0 {
		t.Fatal("accountant missed the abandoned segment")
	}
	if mPagesLeaked.Value() != int64(acct.Leaked) {
		t.Fatalf("leak gauge = %d, account = %d", mPagesLeaked.Value(), acct.Leaked)
	}

	n, err := s.ReclaimLeaked()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != acct.Leaked {
		t.Fatalf("reclaimed %d pages, account said %d", n, acct.Leaked)
	}
	after, err := s.AccountPages()
	if err != nil {
		t.Fatal(err)
	}
	if after.Leaked != 0 {
		t.Fatalf("%d pages still leaked after reclaim", after.Leaked)
	}
	if mPagesLeaked.Value() != 0 {
		t.Fatalf("leak gauge = %d after reclaim, want 0", mPagesLeaked.Value())
	}
	// The reclaimed pages are genuinely reusable.
	if err := s.CreateSegment(compactTestClass); err != nil {
		t.Fatal(err)
	}
	oid, err := s.NewOID(compactTestClass)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(oid, img(oid, "after reclaim")); err != nil {
		t.Fatal(err)
	}
}

// scanOrderOf returns the class's OIDs in physical scan order.
func scanOrderOf(t *testing.T, s *Store, class model.ClassID) []model.OID {
	t.Helper()
	var order []model.OID
	if err := s.ScanClass(class, func(oid model.OID, _ []byte) bool {
		order = append(order, oid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return order
}

// TestRewriteSegmentOrderedContract exercises the full Placement contract
// against a deliberately abusive policy: reversed order, an unknown OID, a
// duplicate, and an omitted live OID. The rewrite must lay records in the
// filtered policy order with the omitted survivor appended in scan order,
// keep every byte identical, and count the displaced records.
func TestRewriteSegmentOrderedContract(t *testing.T) {
	s, _ := openTestStore(t, 64)
	defer s.Close()
	oids := fillSegment(t, s, compactTestClass, 40, 10)
	want := make(map[model.OID][]byte)
	for i, oid := range oids {
		if i%2 != 0 {
			if err := s.Delete(oid); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data, err := s.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = append([]byte(nil), data...)
	}
	before := scanOrderOf(t, s, compactTestClass)
	if len(before) != len(want) {
		t.Fatalf("pre-rewrite scan sees %d records, want %d", len(before), len(want))
	}

	var sawScanOrder []model.OID
	policy := func(scanOrder []model.OID) []model.OID {
		sawScanOrder = append([]model.OID(nil), scanOrder...)
		out := []model.OID{model.MakeOID(compactTestClass, 9999)} // unknown: ignored
		for i := len(scanOrder) - 1; i >= 1; i-- {                // omit scanOrder[0]
			out = append(out, scanOrder[i])
		}
		out = append(out, scanOrder[len(scanOrder)-1]) // duplicate: first position wins
		return out
	}
	detached, res, err := s.RewriteSegmentOrdered(compactTestClass, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.FreeDetached(detached)
	if len(sawScanOrder) != len(before) {
		t.Fatalf("policy saw %d live OIDs, want %d", len(sawScanOrder), len(before))
	}
	for i := range before {
		if sawScanOrder[i] != before[i] {
			t.Fatalf("policy input differs from scan order at %d", i)
		}
	}
	if res.LiveRecords != len(want) {
		t.Fatalf("rewrote %d records, want %d", res.LiveRecords, len(want))
	}

	// Expected final order: reversed tail, then the omitted head appended.
	var expect []model.OID
	for i := len(before) - 1; i >= 1; i-- {
		expect = append(expect, before[i])
	}
	expect = append(expect, before[0])
	after := scanOrderOf(t, s, compactTestClass)
	if len(after) != len(expect) {
		t.Fatalf("post-rewrite scan sees %d records, want %d", len(after), len(expect))
	}
	for i := range expect {
		if after[i] != expect[i] {
			t.Fatalf("physical order at %d = %s, want %s\n got %v\nwant %v", i, after[i], expect[i], after, expect)
		}
	}
	moved := 0
	for i := range expect {
		if expect[i] != before[i] {
			moved++
		}
	}
	if res.Reordered != moved {
		t.Fatalf("Reordered = %d, want %d", res.Reordered, moved)
	}
	for oid, w := range want {
		got, err := s.Get(oid)
		if err != nil {
			t.Fatalf("get %s after ordered rewrite: %v", oid, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("object %s changed across ordered rewrite", oid)
		}
	}
}

// TestRewriteSegmentOrderedNilMatchesDefault pins the byte-identity of the
// default path: a nil placement and an identity placement produce the same
// physical order as the unordered RewriteSegment, with Reordered == 0.
func TestRewriteSegmentOrderedNilMatchesDefault(t *testing.T) {
	build := func(t *testing.T) *Store {
		s, _ := openTestStore(t, 64)
		oids := fillSegment(t, s, compactTestClass, 60, 15)
		for i, oid := range oids {
			if i%3 != 0 {
				if err := s.Delete(oid); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	orders := make([][]model.OID, 3)
	for i, order := range []Placement{
		nil,
		func(scan []model.OID) []model.OID { return scan },
		nil, // third store uses the legacy RewriteSegment entry point
	} {
		s := build(t)
		var res *CompactResult
		var err error
		if i == 2 {
			_, res, err = s.RewriteSegment(compactTestClass, nil)
		} else {
			_, res, err = s.RewriteSegmentOrdered(compactTestClass, order, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Reordered != 0 {
			t.Fatalf("variant %d: Reordered = %d, want 0", i, res.Reordered)
		}
		orders[i] = scanOrderOf(t, s, compactTestClass)
		s.Close()
	}
	for v := 1; v < 3; v++ {
		if len(orders[v]) != len(orders[0]) {
			t.Fatalf("variant %d order length %d != %d", v, len(orders[v]), len(orders[0]))
		}
		for i := range orders[0] {
			if orders[v][i] != orders[0][i] {
				t.Fatalf("variant %d diverges from nil placement at position %d", v, i)
			}
		}
	}
}
