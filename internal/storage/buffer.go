package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DiskBackend is the page I/O surface the buffer pool programs against.
// *DiskManager is the production implementation; tests substitute stubs
// (e.g. a slow disk) to exercise the pool's concurrency protocol.
type DiskBackend interface {
	ReadPage(id PageID, p *Page) error
	WritePage(id PageID, p *Page) error
	AllocPage() (PageID, error)
	FreePage(id PageID) error
	Sync() error
	GetRoot(r MetaRoot) PageID
	SetRoot(r MetaRoot, id PageID) error
	// SetRoots updates several roots with one metadata write — atomic
	// under the crash model (see DiskManager.SetRoots).
	SetRoots(roots map[MetaRoot]PageID) error
}

// PageLogger receives full-page images ahead of in-place page writes
// (WAL-before-data). LogPageImage is called with the sealed image of a
// dirty page the first time that page is about to be written back since its
// on-disk state was last known durable; FlushImages must make every logged
// image durable and completes before the page write itself. Recovery uses
// the images to physically restore pages torn by a crash mid-write, which
// is the only way to save records that predate the last checkpoint (they
// are no longer in the log, so amputating the torn page would lose them).
type PageLogger interface {
	LogPageImage(id PageID, img []byte) error
	FlushImages() error
}

// DefaultPoolShards is the default number of lock-striped shards.
const DefaultPoolShards = 16

// BufferPool caches pages in memory with LRU replacement and pin counting.
// All page access above the disk manager goes through the pool; the engine
// pins a page for the duration of a read or write and the pool refuses to
// evict pinned frames. Dirty frames are written back on eviction and on
// FlushAll (the checkpoint path).
//
// The pool is sharded: frames are striped across N independent shards keyed
// by PageID, each with its own mutex, LRU list and pin table, so fetches of
// unrelated pages never contend. Within a shard, a miss reads from disk
// *outside* the shard lock: the fetching goroutine installs a frame in the
// "loading" state (ready channel open) and releases the lock for the
// duration of the I/O. Concurrent fetchers of the same page find the
// loading frame, pin it, and wait on the channel — they coalesce onto one
// disk read instead of duplicating it — while fetchers of other pages in
// the shard proceed untouched.
type BufferPool struct {
	disk   DiskBackend
	shards []*poolShard
	mask   uint64 // len(shards)-1; len is a power of two

	// pageLog, when set, receives full-page images before in-place write-
	// backs (WAL-before-data). Set once right after open, before writes.
	pageLog PageLogger

	// recovering, while set, suppresses page frees driven by on-disk record
	// stubs (overflow and blob chains). During WAL replay a stub read from
	// the heap can predate the records being replayed — a crash may have
	// reverted its page to an older image — so the chain it names may
	// belong to another owner by now. Freeing through it would double-enter
	// pages on the free list; recovery leaks such chains instead.
	recovering atomic.Bool

	// Stats observed by the benchmarks (E3/E5 measure the cost gap between
	// buffer-pool access and workspace pointer access). Atomic: they are
	// read outside any shard lock and bumped from all shards.
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// SetPageLogger installs the full-page-image logger. Must be called before
// any page writes go through the pool (the engine wires it immediately
// after open).
func (bp *BufferPool) SetPageLogger(l PageLogger) { bp.pageLog = l }

// SetRecovering toggles recovery mode: stub-driven chain frees become
// leaks (see the recovering field). The engine sets it around WAL replay.
func (bp *BufferPool) SetRecovering(on bool) { bp.recovering.Store(on) }

// Recovering reports whether the pool is in recovery mode.
func (bp *BufferPool) Recovering() bool { return bp.recovering.Load() }

// poolShard is one lock stripe: a private frame table, LRU list and
// capacity slice of the pool.
type poolShard struct {
	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of PageID; front = most recently used
	cap    int

	// hitBatch counts hits under the shard lock and is flushed to the
	// process-wide obs counter every hitBatchSize hits. A striped atomic
	// add per hit would cost ~20% of the hit path; a plain increment under
	// a lock we already hold costs nothing measurable, at the price of the
	// obs mirror lagging by up to hitBatchSize-1 hits per shard. The exact
	// figures stay on BufferPool.Hits/Misses (see PoolStats).
	hitBatch uint32
}

// hitBatchSize is the flush granularity of the shard-local hit counter.
const hitBatchSize = 256

type frame struct {
	page  Page
	pins  int
	dirty bool
	// imaged records that a full-page image of this frame has been logged
	// since the page's on-disk state was last made durable; further write-
	// backs in the same interval need no new image (recovery only needs
	// *some* consistent base to replay onto). Cleared after a sync.
	imaged bool
	elem   *list.Element

	// ready is non-nil while the frame's page is being read from disk.
	// It is closed — after err is set — when the load finishes; waiters
	// pin the frame, block on it outside the shard lock, then check err.
	ready chan struct{}
	err   error
}

// ErrPoolExhausted reports that every frame in the page's shard is pinned.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// NewBufferPool creates a pool of the given total capacity with the default
// shard count.
func NewBufferPool(disk DiskBackend, capacity int) *BufferPool {
	return NewShardedBufferPool(disk, capacity, DefaultPoolShards)
}

// NewShardedBufferPool creates a pool of the given total capacity striped
// over the given number of shards. The shard count is clamped to the
// capacity and rounded down to a power of two; each shard owns an equal
// slice of the capacity (rounded up, so the pool never shrinks below the
// request).
func NewShardedBufferPool(disk DiskBackend, capacity, shards int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	// Round down to a power of two so shard selection is a mask.
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	perShard := (capacity + n - 1) / n
	bp := &BufferPool{
		disk:   disk,
		shards: make([]*poolShard, n),
		mask:   uint64(n - 1),
	}
	for i := range bp.shards {
		bp.shards[i] = &poolShard{
			frames: make(map[PageID]*frame, perShard),
			lru:    list.New(),
			cap:    perShard,
		}
	}
	return bp
}

// ShardCount returns the number of lock stripes (for tests and stats).
func (bp *BufferPool) ShardCount() int { return len(bp.shards) }

func (bp *BufferPool) shard(id PageID) *poolShard {
	return bp.shards[uint64(id)&bp.mask]
}

// Fetch pins the page and returns it. The caller must Unpin it (with the
// dirty flag if it modified the page).
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	sh := bp.shard(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		f.pins++
		sh.lru.MoveToFront(f.elem)
		ready := f.ready
		sh.hitBatch++
		flush := sh.hitBatch == hitBatchSize
		if flush {
			sh.hitBatch = 0
		}
		sh.mu.Unlock()
		bp.Hits.Add(1)
		if flush {
			mBufHits.Add(hitBatchSize)
		}
		if ready != nil {
			// Another goroutine is reading this page from disk; wait for
			// it rather than issuing a duplicate read.
			mBufCoalesced.Add(1)
			<-ready
			if f.err != nil {
				// The loader failed and dropped the frame (our pin with
				// it); surface its error.
				return nil, f.err
			}
		}
		return &f.page, nil
	}
	bp.Misses.Add(1)
	mBufMisses.Add(1)
	f, err := bp.allocFrameLocked(sh, id)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f.pins = 1
	f.ready = make(chan struct{})
	sh.mu.Unlock()

	// Disk I/O happens outside the shard lock: cache hits on other pages
	// of this shard must never wait on this read.
	rerr := bp.readPageTimed(id, &f.page)

	sh.mu.Lock()
	ready := f.ready
	f.ready = nil
	f.err = rerr
	if rerr != nil {
		sh.dropFrameLocked(id, f)
	}
	sh.mu.Unlock()
	close(ready)
	if rerr != nil {
		return nil, rerr
	}
	return &f.page, nil
}

// FetchNew allocates a fresh page on disk, pins a zeroed frame for it
// initialized to the given type, and returns the id and page. The frame is
// dirty from birth.
func (bp *BufferPool) FetchNew(ptype byte) (PageID, *Page, error) {
	id, err := bp.disk.AllocPage()
	if err != nil {
		return InvalidPage, nil, err
	}
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, err := bp.allocFrameLocked(sh, id)
	if err != nil {
		return InvalidPage, nil, err
	}
	f.page.Init(ptype)
	f.pins = 1
	f.dirty = true
	return id, &f.page, nil
}

// Unpin releases one pin on the page, marking the frame dirty if the caller
// modified it.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// allocFrameLocked finds room for one more frame in the shard, evicting the
// least recently used unpinned frame if the shard is at capacity.
func (bp *BufferPool) allocFrameLocked(sh *poolShard, id PageID) (*frame, error) {
	if len(sh.frames) >= sh.cap {
		if err := bp.evictLocked(sh); err != nil {
			return nil, err
		}
	}
	f := &frame{}
	f.elem = sh.lru.PushFront(id)
	sh.frames[id] = f
	return f, nil
}

func (sh *poolShard) dropFrameLocked(id PageID, f *frame) {
	sh.lru.Remove(f.elem)
	delete(sh.frames, id)
}

// sortedIDsLocked returns the shard's resident page ids in ascending order
// (deterministic sweeps for checkpoint and the crash harness).
func (sh *poolShard) sortedIDsLocked() []PageID {
	ids := make([]PageID, 0, len(sh.frames))
	for id := range sh.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// imageLocked logs a full-page image of the frame if the page logger is
// installed and this is the first write-back since the frame's on-disk
// state was known durable. With flush set, logged images are made durable
// immediately — required before the page write that follows (the
// WAL-before-data rule).
func (bp *BufferPool) imageLocked(id PageID, f *frame, flush bool) error {
	if bp.pageLog == nil || f.imaged {
		return nil
	}
	f.page.Seal()
	if err := bp.pageLog.LogPageImage(id, f.page.Bytes()); err != nil {
		return err
	}
	if flush {
		if err := bp.pageLog.FlushImages(); err != nil {
			return err
		}
	}
	f.imaged = true
	return nil
}

func (bp *BufferPool) evictLocked(sh *poolShard) error {
	for e := sh.lru.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		f := sh.frames[id]
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.imageLocked(id, f, true); err != nil {
				return err
			}
			if err := bp.writePageTimed(id, &f.page); err != nil {
				return err
			}
		}
		sh.dropFrameLocked(id, f)
		mBufEvictions.Add(1)
		return nil
	}
	return ErrPoolExhausted
}

// FlushAll writes every dirty frame back to disk and syncs. This is the
// checkpoint path: after FlushAll returns, the on-disk pages reflect all
// buffered changes. Page images for all dirty frames are logged and made
// durable in one batch before any page is overwritten, so a crash in the
// middle of the write-back pass can always be repaired physically.
func (bp *BufferPool) FlushAll() error {
	// Frames are visited in sorted page order, not map order: the crash
	// harness replays schedules by global I/O op index, which must be
	// identical across runs of the same seed.
	if bp.pageLog != nil {
		logged := false
		for _, sh := range bp.shards {
			sh.mu.Lock()
			for _, id := range sh.sortedIDsLocked() {
				f := sh.frames[id]
				if f.dirty && !f.imaged {
					f.page.Seal()
					if err := bp.pageLog.LogPageImage(id, f.page.Bytes()); err != nil {
						sh.mu.Unlock()
						return err
					}
					f.imaged = true
					logged = true
				}
			}
			sh.mu.Unlock()
		}
		if logged {
			if err := bp.pageLog.FlushImages(); err != nil {
				return err
			}
		}
	}
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, id := range sh.sortedIDsLocked() {
			f := sh.frames[id]
			if f.dirty {
				// Frames dirtied since the imaging pass (concurrent writers
				// under an active-transaction checkpoint) get their image
				// here, flushed inline.
				if err := bp.imageLocked(id, f, true); err != nil {
					sh.mu.Unlock()
					return err
				}
				if err := bp.writePageTimed(id, &f.page); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	if err := bp.disk.Sync(); err != nil {
		return err
	}
	// The synced state is a valid recovery base: the next write-back of any
	// frame must log a fresh image.
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			f.imaged = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// FlushChain writes back and syncs every page of a linked chain (pages
// threaded by their Next pointer, e.g. a blob chain), making the chain
// durably readable. ReplaceBlob uses this to persist a new chain BEFORE
// flipping the meta root to it: without that ordering, a crash after the
// root write but before the next full flush leaves the root pointing at
// pages that never reached disk, and the store cannot open.
func (bp *BufferPool) FlushChain(head PageID) error {
	for id := head; id != InvalidPage; {
		sh := bp.shard(id)
		sh.mu.Lock()
		var next PageID
		if f, ok := sh.frames[id]; ok && f.ready == nil {
			if f.dirty {
				if err := bp.writePageTimed(id, &f.page); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
			next = f.page.Next()
			sh.mu.Unlock()
		} else {
			sh.mu.Unlock()
			// Not resident (or still loading): the on-disk copy is current
			// for non-resident pages — evictions write through.
			var p Page
			if err := bp.disk.ReadPage(id, &p); err != nil {
				return err
			}
			next = p.Next()
		}
		id = next
	}
	return bp.disk.Sync()
}

// FreePage returns a page to the disk free list after forcing the log:
// the free-list seal destroys the page's prior content in place, so the
// records describing how to rebuild it — typically the freeing
// transaction's undo, still sitting in the log's append buffer — must be
// durable first. Same WAL-before-data rule eviction enforces with page
// images, applied to the one other destructive in-place write.
func (bp *BufferPool) FreePage(id PageID) error {
	if bp.pageLog != nil {
		if err := bp.pageLog.FlushImages(); err != nil {
			return err
		}
	}
	return bp.disk.FreePage(id)
}

// Drop discards the frame for a page without writing it (used when the
// page itself is being freed).
func (bp *BufferPool) Drop(id PageID) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		if f.pins > 0 {
			panic(fmt.Sprintf("storage: drop of pinned page %d", id))
		}
		sh.dropFrameLocked(id, f)
	}
}

// Len returns the number of resident frames (for tests).
func (bp *BufferPool) Len() int {
	n := 0
	for _, sh := range bp.shards {
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}
