package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// BufferPool caches pages in memory with LRU replacement and pin counting.
// All page access above the disk manager goes through the pool; the engine
// pins a page for the duration of a read or write and the pool refuses to
// evict pinned frames. Dirty frames are written back on eviction and on
// FlushAll (the checkpoint path).
type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	frames map[PageID]*frame
	lru    *list.List // of PageID; front = most recently used
	cap    int

	// Stats observed by the benchmarks (E3/E5 measure the cost gap between
	// buffer-pool access and workspace pointer access).
	Hits   uint64
	Misses uint64
}

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element
}

// ErrPoolExhausted reports that every frame is pinned.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// NewBufferPool creates a pool of the given capacity over the disk manager.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		frames: make(map[PageID]*frame, capacity),
		lru:    list.New(),
		cap:    capacity,
	}
}

// Fetch pins the page and returns it. The caller must Unpin it (with the
// dirty flag if it modified the page).
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		bp.lru.MoveToFront(f.elem)
		bp.Hits++
		return &f.page, nil
	}
	bp.Misses++
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.ReadPage(id, &f.page); err != nil {
		bp.dropFrameLocked(id, f)
		return nil, err
	}
	f.pins = 1
	return &f.page, nil
}

// FetchNew allocates a fresh page on disk, pins a zeroed frame for it
// initialized to the given type, and returns the id and page. The frame is
// dirty from birth.
func (bp *BufferPool) FetchNew(ptype byte) (PageID, *Page, error) {
	id, err := bp.disk.AllocPage()
	if err != nil {
		return InvalidPage, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return InvalidPage, nil, err
	}
	f.page.Init(ptype)
	f.pins = 1
	f.dirty = true
	return id, &f.page, nil
}

// Unpin releases one pin on the page, marking the frame dirty if the caller
// modified it.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// allocFrameLocked finds room for one more frame, evicting the least
// recently used unpinned frame if the pool is at capacity.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.cap {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &frame{}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) dropFrameLocked(id PageID, f *frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, id)
}

func (bp *BufferPool) evictLocked() error {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		f := bp.frames[id]
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.disk.WritePage(id, &f.page); err != nil {
				return err
			}
		}
		bp.dropFrameLocked(id, f)
		return nil
	}
	return ErrPoolExhausted
}

// FlushAll writes every dirty frame back to disk and syncs. This is the
// checkpoint path: after FlushAll returns, the on-disk pages reflect all
// buffered changes.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.WritePage(id, &f.page); err != nil {
				bp.mu.Unlock()
				return err
			}
			f.dirty = false
		}
	}
	bp.mu.Unlock()
	return bp.disk.Sync()
}

// Drop discards the frame for a page without writing it (used when the
// page itself is being freed).
func (bp *BufferPool) Drop(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			panic(fmt.Sprintf("storage: drop of pinned page %d", id))
		}
		bp.dropFrameLocked(id, f)
	}
}

// Len returns the number of resident frames (for tests).
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
