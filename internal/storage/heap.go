package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// RID is a record identifier: the physical address of a stored record.
type RID struct {
	Page PageID
	Slot uint16
}

// IsZero reports whether the RID is unset.
func (r RID) IsZero() bool { return r.Page == InvalidPage && r.Slot == 0 }

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Record tags. Every heap record starts with a tag byte: inline records
// carry the payload directly; overflow stubs point at a chain of overflow
// pages holding the payload (long unstructured data — images, documents —
// per Kim §2.2).
const (
	recInline   = 0x00
	recOverflow = 0x01
)

// ErrNoRecord reports a read of a missing record.
var ErrNoRecord = errors.New("storage: no such record")

// Heap is one class's segment: a chain of heap pages. New records go to the
// tail page (with in-page compaction reusing freed space); records that
// outgrow their page are relocated transparently, with the new RID returned
// to the caller for directory maintenance.
//
// The heap latch (mu) serializes page mutation within the segment: the
// lock manager isolates logical conflicts (two writers never touch the
// same object), but two transactions writing *different* objects of the
// same class legitimately run concurrently and would otherwise race on a
// shared page. The latch is a reader/writer lock: reads only inspect page
// bytes, so concurrent readers of the same segment share the latch and
// serialize only against mutators.
type Heap struct {
	mu    sync.RWMutex
	pool  *BufferPool
	First PageID
	Last  PageID
}

// NewHeap creates an empty heap with one allocated page.
func NewHeap(pool *BufferPool) (*Heap, error) {
	id, _, err := pool.FetchNew(pageTypeHeap)
	if err != nil {
		return nil, err
	}
	pool.Unpin(id, true)
	return &Heap{pool: pool, First: id, Last: id}, nil
}

// OpenHeap re-attaches to an existing heap chain.
func OpenHeap(pool *BufferPool, first, last PageID) *Heap {
	return &Heap{pool: pool, First: first, Last: last}
}

// maxInline is the largest payload stored inline (tag byte included in the
// page record).
const maxInline = MaxRecord - 1

// Insert stores the payload and returns its RID.
func (h *Heap) Insert(data []byte) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insert(data)
}

func (h *Heap) insert(data []byte) (RID, error) {
	if len(data) <= maxInline {
		rec := make([]byte, 0, len(data)+1)
		rec = append(rec, recInline)
		rec = append(rec, data...)
		return h.insertRec(rec)
	}
	head, err := h.writeOverflow(data)
	if err != nil {
		return RID{}, err
	}
	stub := make([]byte, 0, 16)
	stub = append(stub, recOverflow)
	stub = binary.AppendUvarint(stub, uint64(len(data)))
	stub = binary.AppendUvarint(stub, uint64(head))
	return h.insertRec(stub)
}

// insertRec places an already-tagged record on the tail page, growing the
// chain when the tail is full.
func (h *Heap) insertRec(rec []byte) (RID, error) {
	p, err := h.pool.Fetch(h.Last)
	if err != nil {
		return RID{}, err
	}
	slot, err := p.Insert(rec)
	if err == nil {
		h.pool.Unpin(h.Last, true)
		return RID{Page: h.Last, Slot: uint16(slot)}, nil
	}
	if !errors.Is(err, ErrPageFull) {
		h.pool.Unpin(h.Last, false)
		return RID{}, err
	}
	// Grow the chain.
	newID, np, nerr := h.pool.FetchNew(pageTypeHeap)
	if nerr != nil {
		h.pool.Unpin(h.Last, false)
		return RID{}, nerr
	}
	p.SetNext(newID)
	h.pool.Unpin(h.Last, true)
	prev := h.Last
	h.Last = newID
	slot, err = np.Insert(rec)
	h.pool.Unpin(newID, true)
	if err != nil {
		h.Last = prev
		return RID{}, err
	}
	return RID{Page: newID, Slot: uint16(slot)}, nil
}

// Bounds returns the first and last page of the heap chain under the
// latch (the checkpoint path reads them while writers may be growing the
// chain).
func (h *Heap) Bounds() (first, last PageID) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.First, h.Last
}

// Read returns a copy of the payload stored at rid.
func (h *Heap) Read(rid RID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.read(rid)
}

func (h *Heap) read(rid RID) ([]byte, error) {
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := p.Read(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("%w: %s (%v)", ErrNoRecord, rid, err)
	}
	if len(rec) == 0 {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("%w: %s (empty record)", ErrNoRecord, rid)
	}
	switch rec[0] {
	case recInline:
		out := make([]byte, len(rec)-1)
		copy(out, rec[1:])
		h.pool.Unpin(rid.Page, false)
		return out, nil
	case recOverflow:
		total, n := binary.Uvarint(rec[1:])
		head, m := binary.Uvarint(rec[1+n:])
		h.pool.Unpin(rid.Page, false)
		if n <= 0 || m <= 0 {
			return nil, fmt.Errorf("storage: corrupt overflow stub at %s", rid)
		}
		return h.readOverflow(PageID(head), int(total))
	default:
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: unknown record tag %d at %s", rec[0], rid)
	}
}

// Update replaces the payload at rid, returning the (possibly new) RID.
func (h *Heap) Update(rid RID, data []byte) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.update(rid, data)
}

func (h *Heap) update(rid RID, data []byte) (RID, error) {
	// Free any existing overflow chain first; the new image replaces it.
	if err := h.freeIfOverflow(rid); err != nil {
		return RID{}, err
	}
	if len(data) <= maxInline {
		rec := make([]byte, 0, len(data)+1)
		rec = append(rec, recInline)
		rec = append(rec, data...)
		p, err := h.pool.Fetch(rid.Page)
		if err != nil {
			return RID{}, err
		}
		err = p.Update(int(rid.Slot), rec)
		h.pool.Unpin(rid.Page, true)
		if err == nil {
			return rid, nil
		}
		if !errors.Is(err, ErrPageFull) {
			return RID{}, err
		}
		// Page.Update already removed the old record; relocate.
		return h.insertRec(rec)
	}
	// New image needs overflow: write chain, swap the stub in.
	head, err := h.writeOverflow(data)
	if err != nil {
		return RID{}, err
	}
	stub := make([]byte, 0, 16)
	stub = append(stub, recOverflow)
	stub = binary.AppendUvarint(stub, uint64(len(data)))
	stub = binary.AppendUvarint(stub, uint64(head))
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return RID{}, err
	}
	err = p.Update(int(rid.Slot), stub)
	h.pool.Unpin(rid.Page, true)
	if err == nil {
		return rid, nil
	}
	if !errors.Is(err, ErrPageFull) {
		return RID{}, err
	}
	return h.insertRec(stub)
}

// Delete removes the record at rid, freeing any overflow chain.
func (h *Heap) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delete(rid)
}

func (h *Heap) delete(rid RID) error {
	if err := h.freeIfOverflow(rid); err != nil {
		return err
	}
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = p.Delete(int(rid.Slot))
	h.pool.Unpin(rid.Page, err == nil)
	if err != nil {
		return fmt.Errorf("%w: %s (%v)", ErrNoRecord, rid, err)
	}
	return nil
}

// freeIfOverflow releases the overflow chain referenced by the record at
// rid, if any. In recovery mode the chain is leaked instead: the stub was
// read from a possibly-reverted page, so the pages it names may have been
// reallocated to another owner since — even to another overflow chain,
// which no type check can distinguish.
func (h *Heap) freeIfOverflow(rid RID) error {
	if h.pool.Recovering() {
		mOverflowLeaked.Add(1)
		return nil
	}
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	rec, err := p.Read(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(rid.Page, false)
		return fmt.Errorf("%w: %s (%v)", ErrNoRecord, rid, err)
	}
	var head PageID
	if rec[0] == recOverflow {
		_, n := binary.Uvarint(rec[1:])
		hd, m := binary.Uvarint(rec[1+n:])
		if n <= 0 || m <= 0 {
			h.pool.Unpin(rid.Page, false)
			return fmt.Errorf("storage: corrupt overflow stub at %s", rid)
		}
		head = PageID(hd)
	}
	h.pool.Unpin(rid.Page, false)
	freed := head != InvalidPage
	for head != InvalidPage {
		op, err := h.pool.Fetch(head)
		if err != nil {
			// Unreadable chain page: stop and leak the rest. Freeing pages
			// we cannot verify risks freeing someone else's page.
			mOverflowLeaked.Add(1)
			return nil
		}
		if op.Type() != pageTypeOverflow {
			// Stale stub (crash recovery replaying over a reverted page
			// image): the chain pointer leads to a page that was freed and
			// reused. Freeing it would enter a live page — or a page
			// already on the free list — into the free list and a later
			// alloc would hand it to two owners. Stop; leak the chain.
			h.pool.Unpin(head, false)
			mOverflowLeaked.Add(1)
			return nil
		}
		next := op.Next()
		h.pool.Unpin(head, false)
		h.pool.Drop(head)
		if err := h.pool.FreePage(head); err != nil {
			return err
		}
		head = next
	}
	if freed {
		mOverflowFrees.Add(1)
	}
	return nil
}

// writeOverflow spills the payload across a fresh chain of overflow pages
// and returns the chain head.
func (h *Heap) writeOverflow(data []byte) (PageID, error) {
	var head, prev PageID
	for off := 0; off < len(data); {
		chunk := len(data) - off
		if chunk > maxInline {
			chunk = maxInline
		}
		id, p, err := h.pool.FetchNew(pageTypeOverflow)
		if err != nil {
			return InvalidPage, err
		}
		if _, err := p.Insert(data[off : off+chunk]); err != nil {
			h.pool.Unpin(id, false)
			return InvalidPage, err
		}
		h.pool.Unpin(id, true)
		if head == InvalidPage {
			head = id
		} else {
			pp, err := h.pool.Fetch(prev)
			if err != nil {
				return InvalidPage, err
			}
			pp.SetNext(id)
			h.pool.Unpin(prev, true)
		}
		prev = id
		off += chunk
	}
	mOverflowWrites.Add(1)
	return head, nil
}

// readOverflow reassembles a payload from an overflow chain.
func (h *Heap) readOverflow(head PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for id := head; id != InvalidPage; {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		chunk, err := p.Read(0)
		if err != nil {
			h.pool.Unpin(id, false)
			return nil, fmt.Errorf("storage: corrupt overflow page %d: %w", id, err)
		}
		out = append(out, chunk...)
		next := p.Next()
		h.pool.Unpin(id, false)
		id = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain length %d, expected %d", len(out), total)
	}
	return out, nil
}

// Scan calls fn for every live record in the heap, in physical order. The
// payload passed to fn is freshly allocated and may be retained. If fn
// returns false the scan stops early.
//
// Each page is collected AND read under a single hold of the heap latch,
// so a concurrent update cannot relocate a record within a page between
// the scan noting its slot and reading it. A record the scan does not see
// at its original position can therefore only have moved to the heap tail
// (updates relocate into the last page), which the scan visits afterwards
// — lock-free snapshot scans rely on this no-miss guarantee; they dedup
// the resulting duplicates by OID. fn runs outside the latch and may
// itself read through the heap.
func (h *Heap) Scan(fn func(rid RID, data []byte) bool) error {
	type rec struct {
		rid  RID
		data []byte
	}
	var recs []rec
	for id := h.First; id != InvalidPage; {
		h.mu.RLock()
		p, err := h.pool.Fetch(id)
		if err != nil {
			h.mu.RUnlock()
			return err
		}
		next := p.Next()
		n := p.Slots()
		recs = recs[:0]
		for slot := 0; slot < n; slot++ {
			if !p.Live(slot) {
				continue
			}
			rid := RID{Page: id, Slot: uint16(slot)}
			data, err := h.read(rid)
			if errors.Is(err, ErrNoRecord) {
				continue // quarantined or torn slot
			}
			if err != nil {
				h.pool.Unpin(id, false)
				h.mu.RUnlock()
				return err
			}
			recs = append(recs, rec{rid, data})
		}
		h.pool.Unpin(id, false)
		h.mu.RUnlock()
		for _, r := range recs {
			if !fn(r.rid, r.data) {
				return nil
			}
		}
		id = next
	}
	return nil
}

// RecoverScan is Scan for crash recovery: a live record whose content
// cannot be reassembled — typically an overflow stub whose chain pages
// never became durable before the crash and reverted to stale (but
// checksum-valid) states — is quarantined and the scan continues, where a
// normal Scan would fail. A quarantined record's transaction either logged
// its redo before acknowledging (logical WAL replay reinserts the object)
// or never acknowledged (the record had to disappear anyway).
func (h *Heap) RecoverScan(fn func(rid RID, data []byte) bool) error {
	for id := h.First; id != InvalidPage; {
		h.mu.RLock()
		p, err := h.pool.Fetch(id)
		if err != nil {
			h.mu.RUnlock()
			return err
		}
		if p.Type() != pageTypeHeap {
			// Stale chain link into a reused page (rebuildDirectory cuts
			// these, but the scan guards independently): stop here rather
			// than read someone else's records.
			h.pool.Unpin(id, false)
			h.mu.RUnlock()
			return nil
		}
		next := p.Next()
		n := p.Slots()
		var rids []RID
		for slot := 0; slot < n; slot++ {
			if p.Live(slot) {
				rids = append(rids, RID{Page: id, Slot: uint16(slot)})
			}
		}
		h.pool.Unpin(id, false)
		h.mu.RUnlock()
		for _, rid := range rids {
			data, err := h.Read(rid)
			if errors.Is(err, ErrNoRecord) {
				continue
			}
			if err != nil {
				if qerr := h.quarantine(rid); qerr != nil {
					return qerr
				}
				continue
			}
			if !fn(rid, data) {
				return nil
			}
		}
		id = next
	}
	return nil
}

// quarantine deletes an unreadable record's slot in place without touching
// its overflow chain: the chain pages may have reverted to older states or
// been reallocated, so walking them to free is unsafe. The chain is leaked
// deliberately (reclaimed by a future segment rewrite).
func (h *Heap) quarantine(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = p.Delete(int(rid.Slot))
	h.pool.Unpin(rid.Page, err == nil)
	if err != nil {
		return fmt.Errorf("storage: quarantine %s: %w", rid, err)
	}
	mRecQuarantined.Add(1)
	return nil
}

// Pages returns the number of pages in the heap chain (for clustering and
// capacity tests).
func (h *Heap) Pages() (int, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for id := h.First; id != InvalidPage; {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		next := p.Next()
		h.pool.Unpin(id, false)
		n++
		id = next
	}
	return n, nil
}
