package storage

import (
	"path/filepath"
	"testing"

	"oodb/internal/obs"
)

// BenchmarkObsOverhead measures the cost the obs instrumentation adds to the
// hottest storage path: a buffer-pool fetch that hits. The acceptance bar
// for the subsystem is that the enabled/ and disabled/ sub-benchmarks stay
// within a few percent of each other — the counters are lock-striped
// atomics and the latency histograms only wrap actual disk I/O, so a hit
// pays two striped Add calls and one Enabled() load.
//
// Run with:
//
//	go test ./internal/storage -run '^$' -bench BenchmarkObsOverhead -count 5
func BenchmarkObsOverhead(b *testing.B) {
	d, err := OpenDisk(filepath.Join(b.TempDir(), "bench.kdb"))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()

	const nPages = 64
	bp := NewBufferPool(d, nPages+8)
	ids := make([]PageID, nPages)
	for i := range ids {
		id, p, err := bp.FetchNew(pageTypeHeap)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		bp.Unpin(id, true)
		ids[i] = id
	}
	if err := bp.FlushAll(); err != nil {
		b.Fatal(err)
	}

	fetchLoop := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := ids[i%nPages]
			if _, err := bp.Fetch(id); err != nil {
				b.Fatal(err)
			}
			bp.Unpin(id, false)
		}
	}

	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		fetchLoop(b)
	})
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		fetchLoop(b)
	})
}
