package storage

import (
	"path/filepath"
	"testing"

	"oodb/internal/model"
	"oodb/internal/obs"
)

// BenchmarkAccessOverhead measures what the heat sampler adds to Store.Get,
// the single path it instruments. The acceptance bar is the same as
// BenchmarkObsOverhead's: enabled/ and disabled/ must stay within a few
// percent — a hit pays one Enabled() load plus one lock-free probe into
// the tracker's atomic table. The raw/ sub-benchmark isolates the Touch
// call itself so a regression can be attributed.
//
// Run with:
//
//	go test ./internal/storage -run '^$' -bench BenchmarkAccessOverhead -count 5
func BenchmarkAccessOverhead(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.kdb"), Options{PoolPages: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	oids := fillSegmentB(b, s, compactTestClass, 512)

	getLoop := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Get(oids[i%len(oids)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		getLoop(b)
	})
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		getLoop(b)
	})
	b.Run("raw", func(b *testing.B) {
		tr := obs.NewAccessTracker()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Touch(uint64(i % 512))
		}
	})
}

// fillSegmentB is fillSegment for benchmarks (testing.B lacks the helper's
// *testing.T), without overflow records — the bench wants uniform hits.
func fillSegmentB(b *testing.B, s *Store, class model.ClassID, n int) []model.OID {
	b.Helper()
	if err := s.CreateSegment(class); err != nil {
		b.Fatal(err)
	}
	oids := make([]model.OID, n)
	for i := 0; i < n; i++ {
		oid, err := s.NewOID(class)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put(oid, img(oid, "payload-payload-payload")); err != nil {
			b.Fatal(err)
		}
		oids[i] = oid
	}
	return oids
}
