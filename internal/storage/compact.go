package storage

import (
	"encoding/binary"
	"fmt"

	"oodb/internal/model"
)

// Online segment compaction. A class's heap accumulates dead space as
// objects are updated, deleted and quarantined: pages sit half-empty in
// allocation order interleaved with other classes' I/O, and overflow
// chains orphaned by crashes leak entirely. RewriteSegment copies the live
// records of one class into a fresh, contiguous chain of full pages and
// swaps it in under the store mutex — the object-level contract (OIDs,
// indexes, WAL replay) is untouched because kimdb addresses objects
// logically: only the OID→RID directory changes.
//
// Crash safety is inherited from the DropClass protocol: the caller
// (core.CompactClass) checkpoints after the swap so the segment table
// durably names the new chain, and only then frees the detached old chain.
// A crash before the checkpoint leaks the new pages (the durable segment
// table still names the old chain, which is intact); a crash after it
// leaks whatever old pages were not yet freed. Neither loses a committed
// row, and no page is ever freed twice — the accountant's reclaim sweeps
// the leak either way.

// CompactResult reports what one segment rewrite did.
type CompactResult struct {
	Class       model.ClassID
	LiveRecords int   // records copied into the new segment
	LiveBytes   int64 // full (overflow-resolved) bytes copied
	PagesBefore int   // heap chain length before (overflow pages excluded)
	PagesAfter  int   // heap chain length after
	Reordered   int   // records placed at a different position than scan order
}

// Placement is a compaction ordering policy: given the class's live OIDs in
// physical scan order, it returns the order records should be laid into the
// fresh segment. Placement decides layout and nothing else — the rewrite
// copies exactly the live set regardless of what the policy returns:
//
//   - OIDs absent from scanOrder (not live in this class) are ignored;
//   - duplicates keep their first position;
//   - live OIDs the policy omitted are appended afterwards in scan order.
//
// So a policy may safely return a partial or over-complete order (e.g. a
// composite DFS that only reaches part of the graph, or heat counts that
// include since-deleted objects). A nil Placement means physical scan
// order — byte-identical to an unordered rewrite. The policy runs inside
// the compaction critical section but outside all storage locks, so it may
// fetch objects through the store; it must not write.
type Placement func(scanOrder []model.OID) []model.OID

// SegmentInfo is the occupancy snapshot the maintenance trigger policy
// reads: how full a class's heap pages are with live, current records.
type SegmentInfo struct {
	Class       model.ClassID
	Pages       int     // heap chain length (overflow pages excluded)
	LiveRecords int     // live records whose RID the directory names
	LiveBytes   int64   // heap-resident bytes of those records (stubs, not chains)
	Occupancy   float64 // LiveBytes / (Pages × usable page payload), clamped to 1
}

// SegmentInfo computes the occupancy of a class's segment with one scan.
// Returns nil (no error) if the class has no segment.
func (s *Store) SegmentInfo(class model.ClassID) (*SegmentInfo, error) {
	s.mu.RLock()
	h, ok := s.heaps[class]
	cur := make(map[model.OID]RID)
	for oid, rid := range s.dir {
		if oid.Class() == class {
			cur[oid] = rid
		}
	}
	s.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	info := &SegmentInfo{Class: class}
	err := h.Scan(func(rid RID, data []byte) bool {
		oid, n := binary.Uvarint(data)
		if n <= 0 {
			return true
		}
		if r, ok := cur[model.OID(oid)]; !ok || r != rid {
			return true // dead or shadowed copy: not live space
		}
		info.LiveRecords++
		resident := int64(len(data)) + 1 // payload + record tag byte
		if resident > maxInline {
			// Overflowed record: only its stub lives in the heap page.
			resident = 1 + 2*binary.MaxVarintLen64
		}
		info.LiveBytes += resident
		return true
	})
	if err != nil {
		return nil, err
	}
	if info.Pages, err = h.Pages(); err != nil {
		return nil, err
	}
	if info.Pages > 0 {
		info.Occupancy = float64(info.LiveBytes) / float64(info.Pages*MaxRecord)
		if info.Occupancy > 1 {
			info.Occupancy = 1
		}
	}
	return info, nil
}

// RewriteSegment copies every live, current record of the class into a
// fresh heap in physical scan order and swaps the fresh heap in. The old
// segment is returned detached — its pages (and the old overflow chains)
// are still allocated; the caller frees them with FreeDetached once the
// metadata that stopped naming them is durable.
//
// Concurrency contract: the caller must exclude writers of the class for
// the duration (core.CompactClass holds the class write lock under the DDL
// mutex). Lock-free readers that resolved an RID before the swap keep
// reading the old heap's pages, which stay intact until FreeDetached —
// the same discipline DropClass relies on.
//
// visit, when non-nil, observes each copied record — the statistics
// collector rides along on the sweep so compaction and ANALYZE share one
// pass.
//
// Records the directory does not name at their scanned RID are dropped:
// dead slots, and stale duplicates a crash can leave behind (an update
// torn between its delete and insert halves replays into one directory
// entry, but both physical copies survive rebuild). Compaction is thus
// also the dedup pass for such slots.
func (s *Store) RewriteSegment(class model.ClassID, visit func(oid model.OID, data []byte)) (*DetachedSegment, *CompactResult, error) {
	return s.RewriteSegmentOrdered(class, nil, visit)
}

// RewriteSegmentOrdered is RewriteSegment with a placement policy deciding
// the physical order of the fresh segment. A nil order is physical scan
// order — the byte-identical default. See Placement for the ordering
// contract; everything else (live-set selection, crash safety, the swap
// discipline) is identical to RewriteSegment.
//
// The live records are buffered in memory for the reorder (overflow
// resolved — the same bytes the streaming path holds one at a time), then
// inserted in final order; overflow chains are re-created by Insert as
// records land. The policy callback runs after the scan with no storage
// locks held.
func (s *Store) RewriteSegmentOrdered(class model.ClassID, order Placement, visit func(oid model.OID, data []byte)) (*DetachedSegment, *CompactResult, error) {
	s.mu.RLock()
	old, ok := s.heaps[class]
	cur := make(map[model.OID]RID)
	for oid, rid := range s.dir {
		if oid.Class() == class {
			cur[oid] = rid
		}
	}
	s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSegment, class)
	}
	res := &CompactResult{Class: class}
	var err error
	if res.PagesBefore, err = old.Pages(); err != nil {
		return nil, nil, err
	}

	// Collect the live set in scan order. Heap.read hands each record its
	// own buffer, so holding them is safe; the buffered image is the same
	// overflow-resolved bytes the streaming path held one at a time.
	type liveRec struct {
		oid  model.OID
		data []byte
	}
	var live []liveRec
	err = old.Scan(func(rid RID, data []byte) bool {
		raw, n := binary.Uvarint(data)
		if n <= 0 {
			return true // torn record: nothing names it
		}
		oid := model.OID(raw)
		if r, ok := cur[oid]; !ok || r != rid {
			return true // dead or shadowed copy
		}
		live = append(live, liveRec{oid, data})
		return true
	})
	if err != nil {
		return nil, nil, err
	}

	// Apply the placement policy: map OID → scan position, walk the
	// policy's order keeping first-seen live OIDs, append the rest in scan
	// order. final holds indexes into live.
	final := make([]int, 0, len(live))
	if order != nil {
		scanOrder := make([]model.OID, len(live))
		pos := make(map[model.OID]int, len(live))
		for i, r := range live {
			scanOrder[i] = r.oid
			pos[r.oid] = i
		}
		placed := make([]bool, len(live))
		for _, oid := range order(scanOrder) {
			if i, ok := pos[oid]; ok && !placed[i] {
				placed[i] = true
				final = append(final, i)
			}
		}
		for i := range live {
			if !placed[i] {
				final = append(final, i)
			}
		}
		for at, i := range final {
			if at != i {
				res.Reordered++
			}
		}
	} else {
		for i := range live {
			final = append(final, i)
		}
	}

	fresh, err := NewHeap(s.pool)
	if err != nil {
		return nil, nil, err
	}
	abort := func(cause error) (*DetachedSegment, *CompactResult, error) {
		// Best-effort: return the half-built heap's pages. It was never
		// published, so freeing it cannot race anyone.
		_ = s.FreeDetached(&DetachedSegment{heap: fresh})
		return nil, nil, cause
	}
	newDir := make(map[model.OID]RID, len(live))
	for _, i := range final {
		r := live[i]
		nrid, ierr := fresh.Insert(r.data)
		if ierr != nil {
			return abort(ierr)
		}
		newDir[r.oid] = nrid
		res.LiveRecords++
		res.LiveBytes += int64(len(r.data))
		if visit != nil {
			visit(r.oid, r.data)
		}
	}
	if res.PagesAfter, err = fresh.Pages(); err != nil {
		return abort(err)
	}
	s.mu.Lock()
	if h, ok := s.heaps[class]; !ok || h != old {
		s.mu.Unlock()
		return abort(fmt.Errorf("storage: segment for class %d changed during rewrite", class))
	}
	s.heaps[class] = fresh
	for oid, rid := range newDir {
		s.dir[oid] = rid
	}
	// Directory entries whose record the scan did not surface (a torn slot
	// the rebuild indexed anyway) would dangle into the freed old heap.
	for oid := range cur {
		if _, ok := newDir[oid]; !ok {
			delete(s.dir, oid)
		}
	}
	s.mu.Unlock()
	return &DetachedSegment{heap: old}, res, nil
}
