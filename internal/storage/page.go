// Package storage implements the disk-resident storage engine of kimdb:
// slotted pages, a disk manager with a free list, a buffer pool with LRU
// replacement and pinning, and per-class heap segments with overflow chains
// for long unstructured data (the paper's multimedia/long-data requirement,
// §2.2).
//
// Crash-consistency model: the engine above this package logs logical
// (object-level) redo/undo records through internal/wal and checkpoints by
// flushing the buffer pool. Pages carry checksums so torn writes are
// detected; a detected-torn record is dropped at directory-rebuild time and
// re-materialized by logical WAL replay.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the size of every page in a database file.
const PageSize = 4096

// PageID identifies a page within a database file. Page 0 is the metadata
// page; InvalidPage (0) therefore doubles as "no page" in chain links.
type PageID uint64

// InvalidPage is the null page link.
const InvalidPage PageID = 0

// Page types.
const (
	pageTypeFree = iota
	pageTypeHeap
	pageTypeOverflow
	pageTypeMeta
	pageTypeBlob

	// PageTypeHeap is the one page type exported by name, for external
	// consumers (the fault-injection tests) that construct raw pages
	// against the Disk interface.
	PageTypeHeap = pageTypeHeap
)

// Page header layout (all big-endian):
//
//	offset  size  field
//	0       4     checksum (crc32c of bytes [4:PageSize])
//	4       8     LSN of the last logical op that touched the page
//	12      1     page type
//	13      1     unused
//	14      2     slot count
//	16      2     free-space pointer (offset of the lowest used record byte)
//	18      6     unused
//	24      8     next page in chain
//	32      ...   slot array (4 bytes per slot), then free space, then
//	              records growing down from PageSize
const (
	pageHeaderSize = 32
	slotSize       = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("storage: page full")
	ErrBadSlot     = errors.New("storage: invalid slot")
	ErrBadChecksum = errors.New("storage: page checksum mismatch (torn write)")
	ErrTooLarge    = errors.New("storage: record exceeds page capacity")
)

// Page is a fixed-size slotted page. All accessors operate directly on the
// byte image so a page can be handed to the disk manager without copying.
type Page struct {
	buf [PageSize]byte
}

// Init formats the page in place with the given type.
func (p *Page) Init(ptype byte) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.buf[12] = ptype
	p.setFreePtr(PageSize)
}

// Bytes returns the raw page image.
func (p *Page) Bytes() []byte { return p.buf[:] }

// Type returns the page type byte.
func (p *Page) Type() byte { return p.buf[12] }

// LSN returns the page's last-touched log sequence number.
func (p *Page) LSN() uint64 { return binary.BigEndian.Uint64(p.buf[4:]) }

// SetLSN stamps the page with an LSN.
func (p *Page) SetLSN(lsn uint64) { binary.BigEndian.PutUint64(p.buf[4:], lsn) }

// Next returns the next-page chain link.
func (p *Page) Next() PageID { return PageID(binary.BigEndian.Uint64(p.buf[24:])) }

// SetNext sets the next-page chain link.
func (p *Page) SetNext(id PageID) { binary.BigEndian.PutUint64(p.buf[24:], uint64(id)) }

func (p *Page) slotCount() int     { return int(binary.BigEndian.Uint16(p.buf[14:])) }
func (p *Page) setSlotCount(n int) { binary.BigEndian.PutUint16(p.buf[14:], uint16(n)) }
func (p *Page) freePtr() int       { return int(binary.BigEndian.Uint16(p.buf[16:])) }
func (p *Page) setFreePtr(off int) { binary.BigEndian.PutUint16(p.buf[16:], uint16(off)) }

func (p *Page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.BigEndian.Uint16(p.buf[base:])), int(binary.BigEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.BigEndian.PutUint16(p.buf[base:], uint16(off))
	binary.BigEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// Seal computes and stores the page checksum. Called by the disk manager
// just before a write.
func (p *Page) Seal() {
	sum := crc32.Checksum(p.buf[4:], crcTable)
	binary.BigEndian.PutUint32(p.buf[0:], sum)
}

// Verify checks the stored checksum against the page contents. A page of
// all zeroes (never written) verifies trivially.
func (p *Page) Verify() error {
	stored := binary.BigEndian.Uint32(p.buf[0:])
	if stored == 0 && p.Type() == pageTypeFree {
		return nil
	}
	if crc32.Checksum(p.buf[4:], crcTable) != stored {
		return ErrBadChecksum
	}
	return nil
}

// FreeSpace returns the number of payload bytes an Insert can currently
// accept (accounting for the new slot entry it would need).
func (p *Page) FreeSpace() int {
	free := p.freePtr() - (pageHeaderSize + p.slotCount()*slotSize)
	free -= slotSize // room for one more slot entry
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecord is the largest record payload a freshly initialized page can
// hold inline.
const MaxRecord = PageSize - pageHeaderSize - slotSize

// Insert stores a record and returns its slot number. Deleted slots are
// reused. Returns ErrPageFull when the payload does not fit even after
// compaction, and ErrTooLarge when it can never fit on an empty page.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecord {
		return 0, ErrTooLarge
	}
	// Reuse a deleted slot if one exists (its slotSize is already paid for).
	// A slot is deleted iff its offset is zero: record offsets are always
	// >= pageHeaderSize, so zero is never a live offset, and zero-length
	// live records (empty blob chunks) stay distinguishable.
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	needSlot := 0
	if slot == -1 {
		needSlot = slotSize
	}
	if p.freePtr()-(pageHeaderSize+p.slotCount()*slotSize)-needSlot < len(rec) {
		p.compact()
		if p.freePtr()-(pageHeaderSize+p.slotCount()*slotSize)-needSlot < len(rec) {
			return 0, ErrPageFull
		}
	}
	off := p.freePtr() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreePtr(off)
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, off, len(rec))
	return slot, nil
}

// Read returns the record stored in the slot. The returned slice aliases
// the page image and must be copied before the page is unpinned.
func (p *Page) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	off, length := p.slot(slot)
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	return p.buf[off : off+length], nil
}

// Update replaces the record in the slot. If the new payload does not fit
// the page even after compaction, Update returns ErrPageFull and leaves the
// old record intact; the heap layer then relocates the record.
func (p *Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	if len(rec) > MaxRecord {
		return ErrTooLarge
	}
	// Try in-page relocation: logically delete, compact, re-place.
	p.setSlot(slot, 0, 0)
	p.compact()
	if p.freePtr()-(pageHeaderSize+p.slotCount()*slotSize) < len(rec) {
		// Roll back is impossible after compaction moved bytes; the old
		// record's content is preserved only if we re-insert it. The heap
		// layer treats ErrPageFull from Update as "record now deleted,
		// relocate", so losing the old image here is safe: the caller
		// already holds the new image.
		return ErrPageFull
	}
	noff := p.freePtr() - len(rec)
	copy(p.buf[noff:], rec)
	p.setFreePtr(noff)
	p.setSlot(slot, noff, len(rec))
	return nil
}

// Delete removes the record in the slot. The space is reclaimed by the next
// compaction.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if off, _ := p.slot(slot); off == 0 {
		return fmt.Errorf("%w: slot %d already deleted", ErrBadSlot, slot)
	}
	p.setSlot(slot, 0, 0)
	return nil
}

// Slots returns the number of slots (live and deleted) on the page.
func (p *Page) Slots() int { return p.slotCount() }

// Live reports whether the slot holds a record.
func (p *Page) Live(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	off, _ := p.slot(slot)
	return off != 0
}

// compact rewrites all live records contiguously at the top of the page,
// squeezing out holes left by deletes and shrinking updates.
func (p *Page) compact() {
	type entry struct{ slot, off, length int }
	var live []entry
	for i := 0; i < p.slotCount(); i++ {
		if off, l := p.slot(i); off != 0 {
			live = append(live, entry{i, off, l})
		}
	}
	// Copy live records into a scratch area, then lay them back down.
	var scratch [PageSize]byte
	w := PageSize
	for _, e := range live {
		w -= e.length
		copy(scratch[w:], p.buf[e.off:e.off+e.length])
	}
	copy(p.buf[w:], scratch[w:])
	// Fix slot offsets.
	o := PageSize
	for _, e := range live {
		o -= e.length
		p.setSlot(e.slot, o, e.length)
	}
	p.setFreePtr(w)
}
