package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// RestoreTornPages physically repairs the database file at path using
// full-page images recovered from the WAL (see PageLogger): any page whose
// on-disk state is torn (fails its checksum) or was never written (still
// all-zero where an image says content belongs) is overwritten with its
// logged image. It runs BEFORE the store opens — physical redo ahead of
// logical replay — so the open-time directory rebuild sees a consistent
// page, including records that predate the last checkpoint and are no
// longer in the log.
//
// Pages whose on-disk state verifies are left alone: a valid page is either
// the image's own content (the write completed) or an older consistent
// state that logical replay brings forward; in both cases the logged image
// is at best redundant and at worst stale (e.g. the page was freed and
// reformatted after the image was logged).
func RestoreTornPages(path string, images map[uint64][]byte) (restored int, err error) {
	if len(images) == 0 {
		return 0, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: restore open %s: %w", path, err)
	}
	defer f.Close()

	ids := make([]uint64, 0, len(images))
	for id := range images {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		img := images[id]
		if len(img) != PageSize {
			return restored, fmt.Errorf("storage: page image for %d has %d bytes", id, len(img))
		}
		var p Page
		n, rerr := f.ReadAt(p.buf[:], int64(id)*PageSize)
		intact := rerr == nil && n == PageSize &&
			binary.BigEndian.Uint32(p.buf[0:4]) != 0 && p.Verify() == nil
		if intact {
			continue
		}
		if _, werr := f.WriteAt(img, int64(id)*PageSize); werr != nil {
			return restored, fmt.Errorf("storage: restore page %d: %w", id, werr)
		}
		restored++
	}
	if restored > 0 {
		if err := f.Sync(); err != nil {
			return restored, err
		}
	}
	return restored, nil
}
