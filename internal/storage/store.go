package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"oodb/internal/model"
	"oodb/internal/obs"
)

// Store binds the disk manager, buffer pool, per-class heap segments and
// the object directory into the object store the engine programs against.
//
// Contract with callers: the byte images handed to Put must begin with the
// object's OID as a uvarint — model.EncodeObject's layout — because the
// open-time directory rebuild recovers OIDs by peeking that prefix.
// The store mutex is a sync.RWMutex: the read paths (Get, Exists,
// ScanClass, Count, Classes) only consult the heap map and directory, so
// concurrent readers share the lock and serialize only against writers
// (segment DDL, directory updates).
type Store struct {
	disk Disk
	pool *BufferPool

	// access counts per-OID fetch frequency (Get only — internal scans and
	// rewrites do not register as workload heat). It feeds heat-ordered
	// compaction placement (internal/maint); per-store so tests opening
	// many databases in one process do not cross-pollute heat.
	access *obs.AccessTracker

	mu    sync.RWMutex
	heaps map[model.ClassID]*Heap
	dir   map[model.OID]RID
	seq   map[model.ClassID]uint64 // next sequence number per class
}

// ErrNoObject reports a lookup of an OID with no stored object.
var ErrNoObject = errors.New("storage: no such object")

// ErrNoSegment reports an operation on a class with no storage segment
// (e.g. a replayed write to a class dropped after the log record was
// written).
var ErrNoSegment = errors.New("storage: no segment for class")

// Options configures a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero means the
	// default (1024 pages = 4 MiB).
	PoolPages int
	// PoolShards is the number of lock stripes in the buffer pool. Zero
	// means DefaultPoolShards; it is clamped to PoolPages and rounded down
	// to a power of two.
	PoolShards int
	// WrapDisk, when set, wraps the disk manager before the store builds on
	// it — the seam the fault-injection layer uses to script I/O failures.
	WrapDisk func(Disk) Disk
}

// Open opens (or creates) the object store at path and rebuilds the object
// directory by scanning every class segment. Records that fail checksum or
// decoding are skipped — logical WAL replay above this layer restores them.
func Open(path string, opts Options) (*Store, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	if opts.PoolShards == 0 {
		opts.PoolShards = DefaultPoolShards
	}
	dm, err := OpenDisk(path)
	if err != nil {
		return nil, err
	}
	var disk Disk = dm
	if opts.WrapDisk != nil {
		disk = opts.WrapDisk(disk)
	}
	s := &Store{
		disk:   disk,
		pool:   NewShardedBufferPool(disk, opts.PoolPages, opts.PoolShards),
		access: obs.NewAccessTracker(),
		heaps:  make(map[model.ClassID]*Heap),
		dir:    make(map[model.OID]RID),
		seq:    make(map[model.ClassID]uint64),
	}
	if err := s.loadSegments(); err != nil {
		disk.Close()
		return nil, err
	}
	if err := s.rebuildDirectory(); err != nil {
		disk.Close()
		return nil, err
	}
	return s, nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	if err := s.Checkpoint(); err != nil {
		s.disk.Close()
		return err
	}
	return s.disk.Close()
}

// CloseNoFlush releases the disk without flushing the pool — the engine's
// fail-stop close path. A poisoned database's dirty pages may hold
// uncommitted heap state whose WAL undo information never became durable;
// persisting them would make the corruption real, so they are dropped and
// the next open recovers from the durable prefix instead.
func (s *Store) CloseNoFlush() error {
	return s.disk.Close()
}

// Pool exposes the buffer pool (the engine stores system blobs through it).
func (s *Store) Pool() *BufferPool { return s.pool }

// Disk exposes the disk layer (the production disk manager, or the fault
// wrapper around it under test).
func (s *Store) Disk() Disk { return s.disk }

// CreateSegment ensures a heap segment exists for the class.
func (s *Store) CreateSegment(class model.ClassID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.heaps[class]; ok {
		return nil
	}
	h, err := NewHeap(s.pool)
	if err != nil {
		return err
	}
	s.heaps[class] = h
	if _, ok := s.seq[class]; !ok {
		s.seq[class] = 1
	}
	return nil
}

// DetachedSegment is a segment logically removed from the store — no
// longer named by the heap map, directory or the next encodeSegTable —
// whose pages are still allocated on disk. The detach/free split lets DDL
// order destruction after durability: DropClass detaches inside its
// critical section, checkpoints (so the catalog and segment table durably
// stop naming the class), and only then frees the pages. A crash between
// the checkpoint and the frees merely leaks pages (counted by the
// accountant, AccountPages); freeing before the checkpoint — the old
// single-call DropSegment behavior — destroyed committed heap pages in
// place while the durable metadata still named them, and a crash in that
// window lost data that predated the last checkpoint and so had no WAL
// redo to restore it.
type DetachedSegment struct {
	heap *Heap
}

// DetachSegment logically removes a class's segment: the heap mapping,
// sequence counter and directory entries are deleted, so the next
// Checkpoint persists a segment table without the class. The segment's
// pages are untouched; free them with FreeDetached once the metadata that
// stopped naming them is durable. Returns nil if the class has no
// segment.
func (s *Store) DetachSegment(class model.ClassID) *DetachedSegment {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.heaps[class]
	if !ok {
		return nil
	}
	delete(s.heaps, class)
	delete(s.seq, class)
	for oid := range s.dir {
		if oid.Class() == class {
			delete(s.dir, oid)
		}
	}
	return &DetachedSegment{heap: h}
}

// FreeDetached physically frees a detached segment: every record's
// overflow chain, then the heap chain pages. All frees go through the
// pool's FreePage, which forces the log before the free-list seal
// destroys page content in place (WAL-before-data). Calling with nil is a
// no-op.
func (s *Store) FreeDetached(d *DetachedSegment) error {
	if d == nil {
		return nil
	}
	h := d.heap
	// Free overflow chains record by record, then the heap pages.
	if err := h.Scan(func(rid RID, _ []byte) bool {
		_ = h.Delete(rid)
		return true
	}); err != nil {
		return err
	}
	for id := h.First; id != InvalidPage; {
		p, err := s.pool.Fetch(id)
		if err != nil {
			return err
		}
		next := p.Next()
		s.pool.Unpin(id, false)
		s.pool.Drop(id)
		if err := s.pool.FreePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// DropSegment deletes a class's segment and every object in it: a detach
// followed immediately by the physical frees. DDL paths that must order
// the frees after a checkpoint call the two halves separately.
func (s *Store) DropSegment(class model.ClassID) error {
	return s.FreeDetached(s.DetachSegment(class))
}

// NewOID mints the next OID for the class. The segment must exist.
func (s *Store) NewOID(class model.ClassID) (model.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.heaps[class]; !ok {
		return model.NilOID, fmt.Errorf("%w: %d", ErrNoSegment, class)
	}
	n := s.seq[class]
	if n == 0 {
		n = 1
	}
	s.seq[class] = n + 1
	return model.MakeOID(class, n), nil
}

// Put upserts the object image under oid. The image must begin with the
// OID uvarint (see Store contract). Put is idempotent with respect to
// logical WAL replay: replaying a Put yields the same stored state.
func (s *Store) Put(oid model.OID, data []byte) error {
	s.mu.RLock()
	h, ok := s.heaps[oid.Class()]
	if !ok {
		s.mu.RUnlock()
		return fmt.Errorf("%w: %d", ErrNoSegment, oid.Class())
	}
	rid, exists := s.dir[oid]
	s.mu.RUnlock()

	var err error
	var newRID RID
	if exists {
		newRID, err = h.Update(rid, data)
	} else {
		newRID, err = h.Insert(data)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.dir[oid] = newRID
	// Keep the sequence high-water mark ahead of replayed inserts.
	if next := oid.Seq() + 1; next > s.seq[oid.Class()] {
		s.seq[oid.Class()] = next
	}
	s.mu.Unlock()
	return nil
}

// Get returns the stored image of oid.
//
// Get is the access-heat sampling site: both the locked fetch path
// (core.Tx.Fetch → FetchObject) and the snapshot path (snapshotFetch)
// funnel through here, while internal sweeps (ScanClass, rewrites,
// recovery) bypass it — so the tracker sees exactly the object-navigation
// workload that heat-ordered placement should optimize for.
func (s *Store) Get(oid model.OID) ([]byte, error) {
	s.access.Touch(uint64(oid))
	s.mu.RLock()
	h, ok := s.heaps[oid.Class()]
	rid, found := s.dir[oid]
	s.mu.RUnlock()
	if !ok || !found {
		return nil, fmt.Errorf("%w: %s", ErrNoObject, oid)
	}
	return h.Read(rid)
}

// Exists reports whether oid has a stored object.
func (s *Store) Exists(oid model.OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.dir[oid]
	return ok
}

// Delete removes oid. Deleting a missing object is a no-op (idempotent
// replay).
func (s *Store) Delete(oid model.OID) error {
	s.mu.Lock()
	h, ok := s.heaps[oid.Class()]
	rid, found := s.dir[oid]
	if found {
		delete(s.dir, oid)
	}
	s.mu.Unlock()
	if !ok || !found {
		return nil
	}
	return h.Delete(rid)
}

// ScanClass calls fn with every stored object image of exactly the given
// class, in physical order. fn's data may be retained.
func (s *Store) ScanClass(class model.ClassID, fn func(oid model.OID, data []byte) bool) error {
	s.mu.RLock()
	h, ok := s.heaps[class]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	return h.Scan(func(rid RID, data []byte) bool {
		oid, n := binary.Uvarint(data)
		if n <= 0 {
			return true // skip torn record
		}
		return fn(model.OID(oid), data)
	})
}

// Count returns the number of live objects of exactly the given class.
func (s *Store) Count(class model.ClassID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for oid := range s.dir {
		if oid.Class() == class {
			n++
		}
	}
	return n
}

// Classes returns the classes that have segments.
func (s *Store) Classes() []model.ClassID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.ClassID, 0, len(s.heaps))
	for c := range s.heaps {
		out = append(out, c)
	}
	sortClassIDs(out)
	return out
}

func sortClassIDs(ids []model.ClassID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// SegmentPages returns the page count of the class's heap (clustering
// experiments).
func (s *Store) SegmentPages(class model.ClassID) (int, error) {
	s.mu.RLock()
	h, ok := s.heaps[class]
	s.mu.RUnlock()
	if !ok {
		return 0, nil
	}
	return h.Pages()
}

// PoolStats returns buffer pool hit/miss counters.
func (s *Store) PoolStats() (hits, misses uint64) {
	return s.pool.Hits.Load(), s.pool.Misses.Load()
}

// AccessCounts snapshots the per-OID fetch counters sampled in Get, and
// publishes the tracker totals to the storage_access_* gauges as a side
// effect. Heat-ordered placement (internal/maint) reads this; callers may
// follow with ResetAccessCounts so the next compaction sees recent heat
// rather than all history.
func (s *Store) AccessCounts() map[model.OID]uint64 {
	raw := s.access.Counts()
	out := make(map[model.OID]uint64, len(raw))
	for k, n := range raw {
		out[model.OID(k)] = n
	}
	mAccessTracked.Set(int64(s.access.Tracked()))
	mAccessTouches.Set(int64(s.access.Touches()))
	mAccessDropped.Set(int64(s.access.Drops()))
	return out
}

// ResetAccessCounts clears the fetch-heat counters — the decay step after
// a placement consumed them.
func (s *Store) ResetAccessCounts() { s.access.Reset() }

// Checkpoint persists the segment table and flushes every dirty page to
// disk. After Checkpoint returns, the on-disk state is self-contained: a
// reopened store rebuilds its directory without any WAL. Data pages flush
// before the root moves: the new table may name chains still dirty in the
// pool (a compaction's rewritten heap), and publishing the root first
// would lose them on a crash between the two steps.
func (s *Store) Checkpoint() error {
	s.mu.RLock()
	table := s.encodeSegTable()
	s.mu.RUnlock()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.pool.ReplaceBlob(RootSegTable, table)
}

// EncodeSegTable serializes the current segment table — the blob the
// engine's checkpoint swaps under RootSegTable together with the catalog
// (see BufferPool.SwapBlobs).
func (s *Store) EncodeSegTable() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.encodeSegTable()
}

// ReclaimLeaked frees every page the accountant classifies as leaked —
// quarantined overflow chains, abandoned free-list pages, chains detached
// by a crashed DropClass or compaction. Caller contract: the store must be
// quiesced (no transactions in flight) and checkpointed, so the
// reachability walk sees exactly the durable live set and everything
// outside it is provably garbage; the engine's ReclaimLeaked enforces that
// with its begin fence. Unreadable (torn) unreachable pages are reclaimed
// too: at a quiesced checkpoint nothing can restore them. Returns the
// number of pages returned to the free list.
func (s *Store) ReclaimLeaked() (int, error) {
	acct, err := s.AccountPages()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range acct.all {
		s.pool.Drop(id)
		if err := s.pool.FreePage(id); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		mPagesLeaked.Set(0)
	}
	return n, nil
}

// encodeSegTable serializes {class, first, last, nextSeq} rows. Caller
// holds s.mu.
func (s *Store) encodeSegTable() []byte {
	classes := make([]model.ClassID, 0, len(s.heaps))
	for c := range s.heaps {
		classes = append(classes, c)
	}
	sortClassIDs(classes)
	buf := binary.AppendUvarint(nil, uint64(len(classes)))
	for _, c := range classes {
		first, last := s.heaps[c].Bounds()
		buf = binary.AppendUvarint(buf, uint64(c))
		buf = binary.AppendUvarint(buf, uint64(first))
		buf = binary.AppendUvarint(buf, uint64(last))
		buf = binary.AppendUvarint(buf, s.seq[c])
	}
	return buf
}

// loadSegments restores the heap map from the persisted segment table.
func (s *Store) loadSegments() error {
	head := s.disk.GetRoot(RootSegTable)
	if head == InvalidPage {
		return nil
	}
	buf, err := s.pool.ReadBlob(head)
	if err != nil {
		return err
	}
	r := reader{buf: buf}
	n := r.uvarint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		class := model.ClassID(r.uvarint())
		first := PageID(r.uvarint())
		last := PageID(r.uvarint())
		seq := r.uvarint()
		if r.err == nil {
			s.heaps[class] = OpenHeap(s.pool, first, last)
			s.seq[class] = seq
		}
	}
	if r.err != nil {
		return fmt.Errorf("storage: corrupt segment table: %w", r.err)
	}
	return nil
}

// rebuildDirectory scans every segment, mapping OIDs to RIDs and advancing
// sequence high-water marks past every object seen. It also repairs heap
// tail pointers that a crash may have left stale (the chain on disk can be
// longer than the persisted Last), and amputates torn pages: a page that
// fails its checksum is cut out of the chain and freed, its records left
// to logical WAL replay above this layer.
func (s *Store) rebuildDirectory() error {
	// Deterministic class order: recovery I/O must replay identically for
	// the crash harness's schedule reproduction.
	classes := make([]model.ClassID, 0, len(s.heaps))
	for c := range s.heaps {
		classes = append(classes, c)
	}
	sortClassIDs(classes)
	for _, class := range classes {
		h := s.heaps[class]
		// Walk to the true tail, amputating at the first page that is torn
		// OR not a heap page. The type check matters as much as the
		// checksum: a page freed and reused since the chain link was
		// persisted comes back checksum-valid with someone else's content
		// (a stale free-list seal whose next link aims at, say, a live
		// catalog page), and following it would adopt — and later
		// quarantine-mutate — pages this class does not own.
		last := h.First
		prev := InvalidPage
		for id := h.First; id != InvalidPage; {
			p, err := s.pool.Fetch(id)
			bad := errors.Is(err, ErrBadChecksum)
			if err == nil && p.Type() != pageTypeHeap {
				s.pool.Unpin(id, false)
				bad = true
			}
			if bad {
				if err := s.amputate(h, prev, id); err != nil {
					return err
				}
				if prev == InvalidPage {
					last = h.First // head was reformatted in place
				} else {
					last = prev
				}
				break
			}
			if err != nil {
				return err
			}
			next := p.Next()
			s.pool.Unpin(id, false)
			prev, last = id, id
			id = next
		}
		h.Last = last
		err := h.RecoverScan(func(rid RID, data []byte) bool {
			raw, n := binary.Uvarint(data)
			if n <= 0 {
				return true // torn record: skip, WAL replay restores it
			}
			oid := model.OID(raw)
			if oid.Class() != class {
				return true // foreign record: corrupt, skip
			}
			s.dir[oid] = rid
			if next := oid.Seq() + 1; next > s.seq[class] {
				s.seq[class] = next
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// amputate removes a torn or foreign-typed page from a heap chain: the
// predecessor's link is cut, or the page is reformatted in place when it
// heads the chain. The records it held are restored by logical WAL replay
// above this layer — the crash-consistency contract documented on the
// package.
//
// The amputated page is deliberately NOT returned to the free list. Its
// provenance is unknowable here: it may already be on the free list (the
// chain link to it being the stale pointer), or it may be owned by another
// structure that reused it — freeing it would enter it twice and a later
// AllocPage would hand one page to two owners. Leaking it costs a page
// until a segment rewrite; double allocation corrupts committed data.
func (s *Store) amputate(h *Heap, prev, bad PageID) error {
	if prev == InvalidPage {
		// The chain head itself is bad. The segment table durably names it
		// as this class's page — the alloc that handed it over updated the
		// metadata before the table was written — so reformatting it in
		// place is safe. Go through the pool: the walk may have left a
		// cached frame with the stale content.
		s.pool.Drop(h.First)
		var p Page
		p.Init(pageTypeHeap)
		mRecAmputated.Add(1)
		return s.disk.WritePage(h.First, &p)
	}
	pp, err := s.pool.Fetch(prev)
	if err != nil {
		return err
	}
	pp.SetNext(InvalidPage)
	s.pool.Unpin(prev, true)
	s.pool.Drop(bad)
	mRecAmputated.Add(1)
	return nil
}

// reader mirrors the latching cursor in internal/schema for local decoding.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = model.ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}
