// Package stats implements the statistics the maintenance subsystem
// collects and the query planner consumes: per-class cardinality and
// average object size, plus per-attribute observation counts, min/max
// bounds and a distinct-count sketch. Kim's §5 names performance the open
// front for OODBs; a planner can only trade an index probe against a
// hierarchy scan if something measures how selective its predicates are —
// this package is that something.
//
// Statistics are advisory: they steer cost decisions, never correctness.
// Every structure here is deterministic (the distinct sketch hashes the
// order-preserving key encoding with FNV-1a; no timestamps, no process
// randomness), because the collectors run inside the crash harness's
// deterministic I/O schedules.
package stats

import (
	"hash/fnv"
	"sort"

	"oodb/internal/model"
)

// sketchK is the size of the KMV (k-minimum-values) distinct sketch: the k
// smallest 64-bit value hashes are retained, and the k-th smallest
// estimates the distinct count by how densely hashes fill the space.
const sketchK = 256

// kmv is a k-minimum-values sketch over 64-bit hashes. Below k distinct
// hashes it is exact; above, the classic (k-1)/kth-minimum estimator.
type kmv struct {
	member map[uint64]struct{}
	heap   []uint64 // max-heap of the k smallest hashes seen
}

func newKMV() *kmv {
	return &kmv{member: make(map[uint64]struct{}, sketchK)}
}

func (s *kmv) add(h uint64) {
	if _, ok := s.member[h]; ok {
		return
	}
	if len(s.heap) < sketchK {
		s.member[h] = struct{}{}
		s.heap = append(s.heap, h)
		s.up(len(s.heap) - 1)
		return
	}
	if h >= s.heap[0] {
		return // larger than the current k-th minimum: not kept
	}
	delete(s.member, s.heap[0])
	s.member[h] = struct{}{}
	s.heap[0] = h
	s.down(0)
}

func (s *kmv) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *kmv) down(i int) {
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < len(s.heap) && s.heap[l] > s.heap[big] {
			big = l
		}
		if r < len(s.heap) && s.heap[r] > s.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// estimate returns the approximate distinct count.
func (s *kmv) estimate() uint64 {
	if len(s.heap) < sketchK {
		return uint64(len(s.heap)) // exact below the sketch size
	}
	kth := s.heap[0] // the k-th smallest hash (heap max)
	if kth == 0 {
		return uint64(len(s.heap))
	}
	// (k-1) hashes landed uniformly below kth/2^64 of the space.
	est := float64(sketchK-1) * (float64(1<<63) * 2 / float64(kth))
	return uint64(est)
}

func hashValue(v model.Value) uint64 {
	h := fnv.New64a()
	h.Write(model.Key(v)) // order-preserving encoding: one canonical image per value
	return h.Sum64()
}

// AttrStats summarizes the observed values of one attribute.
type AttrStats struct {
	Attr     model.AttrID
	Count    uint64      // non-null observations
	Distinct uint64      // estimated distinct values (exact below the sketch size)
	Min, Max model.Value // bounds under model.Compare; Null when Count == 0
}

// ClassStats summarizes the instances of one class.
type ClassStats struct {
	Class       model.ClassID
	Cardinality uint64 // live objects
	TotalBytes  uint64 // sum of encoded object sizes
	Attrs       map[model.AttrID]*AttrStats
}

// AvgSize returns the average encoded object size in bytes.
func (c *ClassStats) AvgSize() float64 {
	if c.Cardinality == 0 {
		return 0
	}
	return float64(c.TotalBytes) / float64(c.Cardinality)
}

// Attr returns the attribute summary, or nil if the attribute was never
// observed non-null.
func (c *ClassStats) Attr(a model.AttrID) *AttrStats {
	if c == nil {
		return nil
	}
	return c.Attrs[a]
}

// SortedAttrs returns the attribute summaries in ascending AttrID order
// (deterministic rendering and encoding).
func (c *ClassStats) SortedAttrs() []*AttrStats {
	out := make([]*AttrStats, 0, len(c.Attrs))
	for _, a := range c.Attrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// Collector accumulates ClassStats over one sweep of a class — a
// compaction rewrite or an on-demand analyze scan.
type Collector struct {
	cs       *ClassStats
	sketches map[model.AttrID]*kmv
}

// NewCollector starts a collection for the class.
func NewCollector(class model.ClassID) *Collector {
	return &Collector{
		cs:       &ClassStats{Class: class, Attrs: make(map[model.AttrID]*AttrStats)},
		sketches: make(map[model.AttrID]*kmv),
	}
}

// Observe feeds one object (and its encoded size) into the collection.
// Set-valued attributes contribute each member to the distinct sketch —
// the fan-out a CONTAINS predicate selects over — and their bounds span
// the members.
func (c *Collector) Observe(obj *model.Object, size int) {
	c.cs.Cardinality++
	c.cs.TotalBytes += uint64(size)
	for _, av := range obj.AttrVals() {
		if av.V.IsNull() {
			continue
		}
		as := c.cs.Attrs[av.ID]
		if as == nil {
			as = &AttrStats{Attr: av.ID, Min: model.Null, Max: model.Null}
			c.cs.Attrs[av.ID] = as
			c.sketches[av.ID] = newKMV()
		}
		as.Count++
		sk := c.sketches[av.ID]
		if members, ok := av.V.AsSet(); ok {
			for _, m := range members {
				sk.add(hashValue(m))
				as.observeBounds(m)
			}
			continue
		}
		sk.add(hashValue(av.V))
		as.observeBounds(av.V)
	}
}

func (a *AttrStats) observeBounds(v model.Value) {
	if a.Min.IsNull() || model.Compare(v, a.Min) < 0 {
		a.Min = v
	}
	if a.Max.IsNull() || model.Compare(v, a.Max) > 0 {
		a.Max = v
	}
}

// Finalize freezes the collection into a ClassStats (distinct estimates
// resolved from the sketches). The collector must not be reused after.
func (c *Collector) Finalize() *ClassStats {
	for id, as := range c.cs.Attrs {
		as.Distinct = c.sketches[id].estimate()
	}
	return c.cs
}
