package stats

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"oodb/internal/model"
)

// Registry is the engine-resident statistics store: one ClassStats per
// analyzed class, concurrency-safe, persisted as a system blob under the
// metadata's RootStats at every checkpoint and reloaded at open. Classes
// that were never analyzed simply have no entry — the planner falls back
// to its heuristic ranking for them.
type Registry struct {
	mu      sync.RWMutex
	classes map[model.ClassID]*ClassStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[model.ClassID]*ClassStats)}
}

// Get returns the stats for a class, or nil if the class was never
// analyzed. The returned value is shared and must be treated read-only.
func (r *Registry) Get(class model.ClassID) *ClassStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.classes[class]
}

// Put installs (or replaces) the stats for a class.
func (r *Registry) Put(cs *ClassStats) {
	r.mu.Lock()
	r.classes[cs.Class] = cs
	r.mu.Unlock()
}

// Remove drops the stats for a class (DropClass calls it).
func (r *Registry) Remove(class model.ClassID) {
	r.mu.Lock()
	delete(r.classes, class)
	r.mu.Unlock()
}

// Classes returns the analyzed classes in ascending order.
func (r *Registry) Classes() []model.ClassID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]model.ClassID, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of analyzed classes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes)
}

// statsMagic heads the persisted registry blob.
var statsMagic = [4]byte{'K', 'S', 'T', '1'}

// Encode serializes the registry deterministically (classes and attributes
// in ascending id order; values in the model codec).
func (r *Registry) Encode() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	classes := make([]model.ClassID, 0, len(r.classes))
	for c := range r.classes {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	buf := append([]byte(nil), statsMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(classes)))
	for _, c := range classes {
		cs := r.classes[c]
		buf = binary.AppendUvarint(buf, uint64(cs.Class))
		buf = binary.AppendUvarint(buf, cs.Cardinality)
		buf = binary.AppendUvarint(buf, cs.TotalBytes)
		attrs := cs.SortedAttrs()
		buf = binary.AppendUvarint(buf, uint64(len(attrs)))
		for _, a := range attrs {
			buf = binary.AppendUvarint(buf, uint64(a.Attr))
			buf = binary.AppendUvarint(buf, a.Count)
			buf = binary.AppendUvarint(buf, a.Distinct)
			buf = model.AppendValue(buf, a.Min)
			buf = model.AppendValue(buf, a.Max)
		}
	}
	return buf
}

// DecodeRegistry rebuilds a registry from its persisted blob.
func DecodeRegistry(buf []byte) (*Registry, error) {
	r := NewRegistry()
	if len(buf) < len(statsMagic) || string(buf[:4]) != string(statsMagic[:]) {
		return nil, fmt.Errorf("stats: bad registry magic")
	}
	buf = buf[4:]
	rd := reader{buf: buf}
	nClasses := rd.uvarint()
	for i := uint64(0); i < nClasses && rd.err == nil; i++ {
		cs := &ClassStats{
			Class:       model.ClassID(rd.uvarint()),
			Cardinality: rd.uvarint(),
			TotalBytes:  rd.uvarint(),
			Attrs:       make(map[model.AttrID]*AttrStats),
		}
		nAttrs := rd.uvarint()
		for j := uint64(0); j < nAttrs && rd.err == nil; j++ {
			a := &AttrStats{
				Attr:     model.AttrID(rd.uvarint()),
				Count:    rd.uvarint(),
				Distinct: rd.uvarint(),
			}
			a.Min = rd.value()
			a.Max = rd.value()
			if rd.err == nil {
				cs.Attrs[a.Attr] = a
			}
		}
		if rd.err == nil {
			r.classes[cs.Class] = cs
		}
	}
	if rd.err != nil {
		return nil, fmt.Errorf("stats: corrupt registry blob: %w", rd.err)
	}
	return r, nil
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = model.ErrCorrupt
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) value() model.Value {
	if r.err != nil {
		return model.Null
	}
	v, n, err := model.DecodeValue(r.buf)
	if err != nil {
		r.err = err
		return model.Null
	}
	r.buf = r.buf[n:]
	return v
}
