package stats

import (
	"fmt"
	"testing"

	"oodb/internal/model"
)

func TestKMVExactBelowK(t *testing.T) {
	s := newKMV()
	for i := 0; i < sketchK-1; i++ {
		s.add(hashValue(model.Int(int64(i))))
		s.add(hashValue(model.Int(int64(i)))) // duplicates must not count
	}
	if got := s.estimate(); got != sketchK-1 {
		t.Fatalf("estimate below k = %d, want %d (exact)", got, sketchK-1)
	}
}

func TestKMVEstimateAboveK(t *testing.T) {
	s := newKMV()
	const n = 50000
	for i := 0; i < n; i++ {
		s.add(hashValue(model.String(fmt.Sprintf("value-%d", i))))
	}
	got := float64(s.estimate())
	if got < 0.8*n || got > 1.2*n {
		t.Fatalf("estimate for %d distinct values = %.0f, want within 20%%", n, got)
	}
}

func TestCollectorBoundsAndCounts(t *testing.T) {
	c := NewCollector(7)
	for i := 0; i < 10; i++ {
		o := model.NewObject(model.MakeOID(7, uint64(i+1)))
		o.Set(1, model.Int(int64(10-i))) // values 1..10
		if i%2 == 0 {
			o.Set(2, model.String("even"))
		}
		c.Observe(o, 100)
	}
	cs := c.Finalize()
	if cs.Cardinality != 10 || cs.TotalBytes != 1000 {
		t.Fatalf("cardinality=%d totalBytes=%d", cs.Cardinality, cs.TotalBytes)
	}
	if cs.AvgSize() != 100 {
		t.Fatalf("avg size = %f, want 100", cs.AvgSize())
	}
	a1 := cs.Attr(1)
	if a1 == nil || a1.Count != 10 || a1.Distinct != 10 {
		t.Fatalf("attr 1 = %+v", a1)
	}
	if model.Compare(a1.Min, model.Int(1)) != 0 || model.Compare(a1.Max, model.Int(10)) != 0 {
		t.Fatalf("attr 1 bounds = [%v, %v]", a1.Min, a1.Max)
	}
	a2 := cs.Attr(2)
	if a2 == nil || a2.Count != 5 || a2.Distinct != 1 {
		t.Fatalf("attr 2 = %+v", a2)
	}
	if cs.Attr(3) != nil {
		t.Fatal("unobserved attribute has stats")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	for class := model.ClassID(1); class <= 3; class++ {
		c := NewCollector(class)
		for i := 0; i < int(class)*20; i++ {
			o := model.NewObject(model.MakeOID(class, uint64(i+1)))
			o.Set(1, model.Int(int64(i)))
			o.Set(2, model.String(fmt.Sprintf("s%d", i%4)))
			c.Observe(o, 64+i)
		}
		r.Put(c.Finalize())
	}
	dec, err := DecodeRegistry(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != r.Len() {
		t.Fatalf("decoded %d classes, want %d", dec.Len(), r.Len())
	}
	for _, class := range r.Classes() {
		want, got := r.Get(class), dec.Get(class)
		if got == nil {
			t.Fatalf("class %d lost in round trip", class)
		}
		if got.Cardinality != want.Cardinality || got.TotalBytes != want.TotalBytes {
			t.Fatalf("class %d: got %+v, want %+v", class, got, want)
		}
		for _, wa := range want.SortedAttrs() {
			ga := got.Attr(wa.Attr)
			if ga == nil || ga.Count != wa.Count || ga.Distinct != wa.Distinct {
				t.Fatalf("class %d attr %d: got %+v, want %+v", class, wa.Attr, ga, wa)
			}
			if model.Compare(ga.Min, wa.Min) != 0 || model.Compare(ga.Max, wa.Max) != 0 {
				t.Fatalf("class %d attr %d bounds: got [%v,%v], want [%v,%v]",
					class, wa.Attr, ga.Min, ga.Max, wa.Min, wa.Max)
			}
		}
	}
	// Determinism: the same registry encodes to the same bytes.
	if string(r.Encode()) != string(r.Encode()) {
		t.Fatal("encoding is not deterministic")
	}

	if _, err := DecodeRegistry([]byte("junk")); err == nil {
		t.Fatal("decode accepted junk")
	}
	if _, err := DecodeRegistry(nil); err == nil {
		t.Fatal("decode accepted a nil blob")
	}
	if dec, err := DecodeRegistry(NewRegistry().Encode()); err != nil || dec.Len() != 0 {
		t.Fatalf("empty registry round trip = (%v, %v)", dec, err)
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	c := NewCollector(5)
	c.Observe(model.NewObject(model.MakeOID(5, 1)), 10)
	r.Put(c.Finalize())
	if r.Get(5) == nil {
		t.Fatal("put did not register")
	}
	r.Remove(5)
	if r.Get(5) != nil {
		t.Fatal("remove did not unregister")
	}
}
