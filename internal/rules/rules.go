// Package rules implements kimdb's deductive capability (Kim §5.4): a
// Datalog rule engine layered over the object database, in the spirit of
// the ORION rule-system coupling [BALL88] the paper cites.
//
// Rules are Horn clauses over predicates whose extensional facts come from
// the object base (class extents and attribute values, exposed through an
// EDB adapter) and whose intensional facts are derived by forward chaining
// (semi-naive, to fixpoint). Queries against derived predicates restrict
// evaluation to the rules reachable from the goal — goal-directed
// (backward) invocation realized as relevance-restricted bottom-up
// evaluation. Negation is not supported (the paper's own scope: "forward
// and backward chaining of rules").
package rules

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"oodb/internal/core"
	"oodb/internal/model"
)

// Term is a variable or a constant.
type Term struct {
	Var string      // non-empty for variables
	Val model.Value // constant when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v model.Value) Term { return Term{Val: v} }

func (t Term) String() string {
	if t.Var != "" {
		return "?" + t.Var
	}
	return t.Val.String()
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is a Horn clause: Head :- Body.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ")
}

// EDB supplies extensional facts.
type EDB interface {
	// Facts calls fn with each fact of pred; it returns false if the
	// predicate is unknown to this EDB.
	Facts(pred string, fn func(args []model.Value)) bool
}

// Errors of the rule engine.
var (
	ErrUnsafeRule = errors.New("rules: unsafe rule (head variable not bound in body)")
	ErrUnknown    = errors.New("rules: unknown predicate")
)

// Engine holds a rule base over an EDB.
type Engine struct {
	edb    EDB
	rules  []Rule
	byPred map[string][]int // head pred -> rule indexes
}

// NewEngine returns an engine over the EDB.
func NewEngine(edb EDB) *Engine {
	return &Engine{edb: edb, byPred: make(map[string][]int)}
}

// AddRule installs a rule after the Datalog safety check: every head
// variable must occur in the body.
func (e *Engine) AddRule(r Rule) error {
	bodyVars := map[string]bool{}
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.Var != "" {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.Var != "" && !bodyVars[t.Var] {
			return fmt.Errorf("%w: %s in %s", ErrUnsafeRule, t.Var, r)
		}
	}
	e.rules = append(e.rules, r)
	e.byPred[r.Head.Pred] = append(e.byPred[r.Head.Pred], len(e.rules)-1)
	return nil
}

// tuple is one fact's arguments; key gives it map identity.
type tuple []model.Value

func tupleKey(t tuple) string {
	var buf []byte
	for _, v := range t {
		buf = model.AppendKey(buf, v)
	}
	return string(buf)
}

// relation is a set of tuples.
type relation struct {
	keys map[string]bool
	rows []tuple
}

func newRelation() *relation { return &relation{keys: make(map[string]bool)} }

func (r *relation) add(t tuple) bool {
	k := tupleKey(t)
	if r.keys[k] {
		return false
	}
	r.keys[k] = true
	r.rows = append(r.rows, t)
	return true
}

// relevant returns the IDB predicates reachable from goal through rule
// bodies (the goal-directed restriction).
func (e *Engine) relevant(goal string) map[string]bool {
	out := map[string]bool{}
	var visit func(p string)
	visit = func(p string) {
		if out[p] {
			return
		}
		if _, idb := e.byPred[p]; !idb {
			return
		}
		out[p] = true
		for _, ri := range e.byPred[p] {
			for _, a := range e.rules[ri].Body {
				visit(a.Pred)
			}
		}
	}
	visit(goal)
	return out
}

// edbRelation materializes an EDB predicate.
func (e *Engine) edbRelation(pred string) (*relation, bool) {
	rel := newRelation()
	known := e.edb.Facts(pred, func(args []model.Value) {
		rel.add(append(tuple(nil), args...))
	})
	if !known {
		return nil, false
	}
	return rel, true
}

// Infer computes all facts of the goal predicate (extensional and
// derived), sorted deterministically.
func (e *Engine) Infer(goal string) ([][]model.Value, error) {
	idb := e.relevant(goal)
	_, isIDB := e.byPred[goal]
	edbRel, isEDB := e.edbRelation(goal)
	if !isIDB && !isEDB {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, goal)
	}

	// Materialize every EDB predicate any relevant rule mentions.
	edbRels := map[string]*relation{}
	if isEDB {
		edbRels[goal] = edbRel
	}
	for p := range idb {
		for _, ri := range e.byPred[p] {
			for _, a := range e.rules[ri].Body {
				if _, done := edbRels[a.Pred]; done || idb[a.Pred] {
					continue
				}
				rel, ok := e.edbRelation(a.Pred)
				if !ok {
					return nil, fmt.Errorf("%w: %q in %s", ErrUnknown, a.Pred, e.rules[ri])
				}
				edbRels[a.Pred] = rel
			}
		}
	}

	// Semi-naive fixpoint over the relevant IDB predicates.
	full := map[string]*relation{}
	delta := map[string]*relation{}
	for p := range idb {
		full[p] = newRelation()
		delta[p] = newRelation()
	}
	lookup := func(pred string, deltaOnly bool) *relation {
		if idb[pred] {
			if deltaOnly {
				return delta[pred]
			}
			return full[pred]
		}
		return edbRels[pred]
	}

	// Initial round: evaluate every rule naively.
	for p := range idb {
		for _, ri := range e.byPred[p] {
			for _, t := range e.evalRule(e.rules[ri], lookup, -1) {
				if full[p].add(t) {
					delta[p].add(t)
				}
			}
		}
	}
	for {
		next := map[string]*relation{}
		for p := range idb {
			next[p] = newRelation()
		}
		changed := false
		for p := range idb {
			for _, ri := range e.byPred[p] {
				rule := e.rules[ri]
				// Semi-naive: one body position at a time restricted to
				// the delta of an IDB predicate.
				for pos, a := range rule.Body {
					if !idb[a.Pred] {
						continue
					}
					for _, t := range e.evalRuleDelta(rule, lookup, pos) {
						if full[p].add(t) {
							next[p].add(t)
							changed = true
						}
					}
				}
			}
		}
		delta = next
		if !changed {
			break
		}
	}

	out := newRelation()
	if isEDB {
		for _, t := range edbRel.rows {
			out.add(t)
		}
	}
	if isIDB {
		for _, t := range full[goal].rows {
			out.add(t)
		}
	}
	rows := make([][]model.Value, len(out.rows))
	for i, t := range out.rows {
		rows[i] = t
	}
	sort.Slice(rows, func(i, j int) bool {
		return tupleKey(rows[i]) < tupleKey(rows[j])
	})
	return rows, nil
}

type lookupFn func(pred string, deltaOnly bool) *relation

// evalRule evaluates a rule body with no delta restriction.
func (e *Engine) evalRule(r Rule, lookup lookupFn, _ int) []tuple {
	return e.evalBody(r, lookup, -1)
}

// evalRuleDelta evaluates with body position deltaPos restricted to the
// delta relation.
func (e *Engine) evalRuleDelta(r Rule, lookup lookupFn, deltaPos int) []tuple {
	return e.evalBody(r, lookup, deltaPos)
}

func (e *Engine) evalBody(r Rule, lookup lookupFn, deltaPos int) []tuple {
	envs := []map[string]model.Value{{}}
	for pos, atom := range r.Body {
		rel := lookup(atom.Pred, pos == deltaPos)
		if rel == nil {
			return nil
		}
		var next []map[string]model.Value
		for _, env := range envs {
			for _, fact := range rel.rows {
				if len(fact) != len(atom.Args) {
					continue
				}
				if ext, ok := unify(env, atom, fact); ok {
					next = append(next, ext)
				}
			}
		}
		envs = next
		if len(envs) == 0 {
			return nil
		}
	}
	var out []tuple
	for _, env := range envs {
		t := make(tuple, len(r.Head.Args))
		for i, term := range r.Head.Args {
			if term.Var != "" {
				t[i] = env[term.Var]
			} else {
				t[i] = term.Val
			}
		}
		out = append(out, t)
	}
	return out
}

// unify extends env so atom matches fact, or fails.
func unify(env map[string]model.Value, atom Atom, fact tuple) (map[string]model.Value, bool) {
	ext := env
	copied := false
	for i, term := range atom.Args {
		want := fact[i]
		if term.Var == "" {
			if !model.Equal(term.Val, want) {
				return nil, false
			}
			continue
		}
		if bound, ok := ext[term.Var]; ok {
			if !model.Equal(bound, want) {
				return nil, false
			}
			continue
		}
		if !copied {
			ext = make(map[string]model.Value, len(env)+1)
			for k, v := range env {
				ext[k] = v
			}
			copied = true
		}
		ext[term.Var] = want
	}
	return ext, true
}

// Query answers a goal atom: facts of the predicate unified against the
// atom's constants, returning one binding map per solution.
func (e *Engine) Query(goal Atom) ([]map[string]model.Value, error) {
	facts, err := e.Infer(goal.Pred)
	if err != nil {
		return nil, err
	}
	var out []map[string]model.Value
	for _, f := range facts {
		if len(f) != len(goal.Args) {
			continue
		}
		if env, ok := unify(map[string]model.Value{}, goal, f); ok {
			out = append(out, env)
		}
	}
	return out, nil
}

// ObjectEDB adapts a kimdb database to the EDB interface. Predicates are
// registered explicitly:
//
//   - MapClass("vehicle", "Vehicle") exposes vehicle(x) — one unary fact
//     per instance of Vehicle or any subclass (hierarchy semantics);
//   - MapAttr("weight", "Vehicle", "weight") exposes weight(x, w) — one
//     binary fact per instance with a non-null value; set-valued
//     attributes yield one fact per member.
type ObjectEDB struct {
	db      *core.DB
	classes map[string]model.ClassID
	attrs   map[string]struct {
		class model.ClassID
		attr  string
	}
}

// NewObjectEDB returns an empty adapter over db.
func NewObjectEDB(db *core.DB) *ObjectEDB {
	return &ObjectEDB{
		db:      db,
		classes: make(map[string]model.ClassID),
		attrs: make(map[string]struct {
			class model.ClassID
			attr  string
		}),
	}
}

// MapClass exposes a class extent as a unary predicate.
func (o *ObjectEDB) MapClass(pred, className string) error {
	cl, err := o.db.Catalog.ClassByName(className)
	if err != nil {
		return err
	}
	o.classes[pred] = cl.ID
	return nil
}

// MapAttr exposes an attribute as a binary predicate over a class
// hierarchy.
func (o *ObjectEDB) MapAttr(pred, className, attrName string) error {
	cl, err := o.db.Catalog.ClassByName(className)
	if err != nil {
		return err
	}
	if _, err := o.db.Catalog.ResolveAttr(cl.ID, attrName); err != nil {
		return err
	}
	o.attrs[pred] = struct {
		class model.ClassID
		attr  string
	}{cl.ID, attrName}
	return nil
}

// Facts implements EDB.
func (o *ObjectEDB) Facts(pred string, fn func(args []model.Value)) bool {
	if class, ok := o.classes[pred]; ok {
		o.scanHierarchy(class, func(obj *model.Object) {
			fn([]model.Value{model.Ref(obj.OID)})
		})
		return true
	}
	if m, ok := o.attrs[pred]; ok {
		o.scanHierarchy(m.class, func(obj *model.Object) {
			a, err := o.db.Catalog.ResolveAttr(obj.Class(), m.attr)
			if err != nil {
				return
			}
			v, ok := obj.Lookup(a.ID)
			if !ok {
				v = a.Default
			}
			if v.IsNull() {
				return
			}
			if members, isSet := v.AsSet(); isSet {
				for _, mem := range members {
					fn([]model.Value{model.Ref(obj.OID), mem})
				}
				return
			}
			fn([]model.Value{model.Ref(obj.OID), v})
		})
		return true
	}
	return false
}

func (o *ObjectEDB) scanHierarchy(class model.ClassID, fn func(*model.Object)) {
	classes, err := o.db.Catalog.Descendants(class)
	if err != nil {
		return
	}
	for _, c := range classes {
		_ = o.db.Store.ScanClass(c, func(_ model.OID, data []byte) bool {
			if obj, derr := model.DecodeObject(data); derr == nil {
				fn(obj)
			}
			return true
		})
	}
}

// interface check
var _ EDB = (*ObjectEDB)(nil)

// MapEDB is a simple in-memory EDB for tests and standalone use.
type MapEDB map[string][][]model.Value

// Facts implements EDB.
func (m MapEDB) Facts(pred string, fn func(args []model.Value)) bool {
	rows, ok := m[pred]
	if !ok {
		return false
	}
	for _, r := range rows {
		fn(r)
	}
	return true
}
