package rules

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

func s(v string) model.Value { return model.String(v) }

func TestEDBPassThrough(t *testing.T) {
	edb := MapEDB{
		"parent": {{s("a"), s("b")}, {s("b"), s("c")}},
	}
	e := NewEngine(edb)
	facts, err := e.Infer("parent")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	if _, err := e.Infer("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("expected ErrUnknown, got %v", err)
	}
}

func TestSimpleDerivation(t *testing.T) {
	edb := MapEDB{
		"parent": {{s("a"), s("b")}, {s("b"), s("c")}, {s("x"), s("y")}},
	}
	e := NewEngine(edb)
	// grandparent(X,Z) :- parent(X,Y), parent(Y,Z).
	if err := e.AddRule(Rule{
		Head: A("grandparent", V("X"), V("Z")),
		Body: []Atom{A("parent", V("X"), V("Y")), A("parent", V("Y"), V("Z"))},
	}); err != nil {
		t.Fatal(err)
	}
	facts, err := e.Infer("grandparent")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 {
		t.Fatalf("facts = %v", facts)
	}
	if a, _ := facts[0][0].AsString(); a != "a" {
		t.Errorf("grandparent = %v", facts[0])
	}
}

func TestRecursionTransitiveClosure(t *testing.T) {
	// A chain a->b->c->d->e; ancestor must contain all 10 pairs.
	edb := MapEDB{"parent": {
		{s("a"), s("b")}, {s("b"), s("c")}, {s("c"), s("d")}, {s("d"), s("e")},
	}}
	e := NewEngine(edb)
	e.AddRule(Rule{
		Head: A("ancestor", V("X"), V("Y")),
		Body: []Atom{A("parent", V("X"), V("Y"))},
	})
	e.AddRule(Rule{
		Head: A("ancestor", V("X"), V("Z")),
		Body: []Atom{A("ancestor", V("X"), V("Y")), A("parent", V("Y"), V("Z"))},
	})
	facts, err := e.Infer("ancestor")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 10 {
		t.Fatalf("ancestor has %d facts, want 10", len(facts))
	}
}

func TestRecursionWithCycleTerminates(t *testing.T) {
	edb := MapEDB{"edge": {
		{s("a"), s("b")}, {s("b"), s("c")}, {s("c"), s("a")},
	}}
	e := NewEngine(edb)
	e.AddRule(Rule{Head: A("reach", V("X"), V("Y")), Body: []Atom{A("edge", V("X"), V("Y"))}})
	e.AddRule(Rule{
		Head: A("reach", V("X"), V("Z")),
		Body: []Atom{A("reach", V("X"), V("Y")), A("edge", V("Y"), V("Z"))},
	})
	facts, err := e.Infer("reach")
	if err != nil {
		t.Fatal(err)
	}
	// 3 nodes fully connected through the cycle: 9 pairs.
	if len(facts) != 9 {
		t.Fatalf("reach has %d facts, want 9", len(facts))
	}
}

func TestQueryWithConstants(t *testing.T) {
	edb := MapEDB{"parent": {
		{s("a"), s("b")}, {s("b"), s("c")}, {s("a"), s("d")},
	}}
	e := NewEngine(edb)
	e.AddRule(Rule{Head: A("anc", V("X"), V("Y")), Body: []Atom{A("parent", V("X"), V("Y"))}})
	e.AddRule(Rule{
		Head: A("anc", V("X"), V("Z")),
		Body: []Atom{A("anc", V("X"), V("Y")), A("parent", V("Y"), V("Z"))},
	})
	// Who are a's descendants?
	sols, err := e.Query(A("anc", C(s("a")), V("D")))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 { // b, c, d
		t.Fatalf("solutions = %v", sols)
	}
	// Is (a, c) derivable? Ground query: one empty-binding solution.
	sols, _ = e.Query(A("anc", C(s("a")), C(s("c"))))
	if len(sols) != 1 {
		t.Fatalf("ground query = %v", sols)
	}
	sols, _ = e.Query(A("anc", C(s("c")), C(s("a"))))
	if len(sols) != 0 {
		t.Fatalf("false ground query = %v", sols)
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	e := NewEngine(MapEDB{})
	err := e.AddRule(Rule{
		Head: A("p", V("X"), V("Y")),
		Body: []Atom{A("q", V("X"))},
	})
	if !errors.Is(err, ErrUnsafeRule) {
		t.Fatalf("expected ErrUnsafeRule, got %v", err)
	}
}

func TestConstantsInRuleBody(t *testing.T) {
	edb := MapEDB{"weight": {
		{s("t1"), model.Int(9000)}, {s("t2"), model.Int(100)},
	}}
	e := NewEngine(edb)
	// heavy(X) :- weight(X, 9000).
	e.AddRule(Rule{
		Head: A("heavy", V("X")),
		Body: []Atom{A("weight", V("X"), C(model.Int(9000)))},
	})
	facts, err := e.Infer("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 {
		t.Fatalf("heavy = %v", facts)
	}
	if id, _ := facts[0][0].AsString(); id != "t1" {
		t.Errorf("heavy = %v", facts[0])
	}
}

func TestUnknownBodyPredicate(t *testing.T) {
	e := NewEngine(MapEDB{})
	e.AddRule(Rule{Head: A("p", V("X")), Body: []Atom{A("mystery", V("X"))}})
	if _, err := e.Infer("p"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("expected ErrUnknown, got %v", err)
	}
}

// TestObjectEDB runs the deductive layer over a real database: the
// "deductive object-oriented database" of §5.4.
func TestObjectEDB(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	emp, _ := db.DefineClass("Employee", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	db.AddAttribute(emp.ID, schema.AttrSpec{Name: "boss", Domain: emp.ID})
	mgr, _ := db.DefineClass("Manager", []model.ClassID{emp.ID})

	var alice, bob, carol model.OID
	db.Do(func(tx *core.Tx) error {
		alice, _ = tx.InsertClass(mgr.ID, map[string]model.Value{"name": s("alice")})
		bob, _ = tx.InsertClass(emp.ID, map[string]model.Value{
			"name": s("bob"), "boss": model.Ref(alice)})
		carol, _ = tx.InsertClass(emp.ID, map[string]model.Value{
			"name": s("carol"), "boss": model.Ref(bob)})
		return nil
	})

	edb := NewObjectEDB(db)
	if err := edb.MapClass("employee", "Employee"); err != nil {
		t.Fatal(err)
	}
	if err := edb.MapAttr("boss", "Employee", "boss"); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(edb)
	// Class extents have hierarchy semantics: the Manager instance is an
	// employee too.
	facts, err := e.Infer("employee")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 3 {
		t.Fatalf("employee extent = %d, want 3", len(facts))
	}
	// chain(X,Y): X reports (transitively) to Y.
	e.AddRule(Rule{Head: A("chain", V("X"), V("Y")), Body: []Atom{A("boss", V("X"), V("Y"))}})
	e.AddRule(Rule{
		Head: A("chain", V("X"), V("Z")),
		Body: []Atom{A("chain", V("X"), V("Y")), A("boss", V("Y"), V("Z"))},
	})
	sols, err := e.Query(A("chain", C(model.Ref(carol)), V("Up")))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 { // bob and alice
		t.Fatalf("carol's chain = %v", sols)
	}
	ups := map[model.OID]bool{}
	for _, env := range sols {
		oid, _ := env["Up"].AsRef()
		ups[oid] = true
	}
	if !ups[bob] || !ups[alice] {
		t.Fatalf("chain misses bob or alice: %v", ups)
	}
}

func TestObjectEDBSetValued(t *testing.T) {
	db, _ := core.Open(t.TempDir(), core.Options{})
	defer db.Close()
	doc, _ := db.DefineClass("Doc", nil,
		schema.AttrSpec{Name: "tags", Domain: schema.ClassString, SetValued: true})
	var oid model.OID
	db.Do(func(tx *core.Tx) error {
		var err error
		oid, err = tx.InsertClass(doc.ID, map[string]model.Value{
			"tags": model.Set(s("db"), s("oo"))})
		return err
	})
	_ = oid
	edb := NewObjectEDB(db)
	edb.MapAttr("tag", "Doc", "tags")
	e := NewEngine(edb)
	facts, err := e.Infer("tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 {
		t.Fatalf("set-valued attr produced %d facts, want 2", len(facts))
	}
}
