package fault

import (
	"math/rand"
	"os"
	"sync"

	"oodb/internal/wal"
)

// WALFile wraps the log's backing file. Writes, fsyncs and truncations are
// failpoints; the durability model tracks the byte length guaranteed to
// survive a crash (everything up to the last honest fsync), and at crash
// time the tail beyond it is cut back to a seeded prefix — possibly
// splitting a record frame, which is exactly the torn tail the WAL scanner
// must truncate on reopen.
//
// Truncation (checkpoint Reset) is treated as durable at the op, like
// directory metadata on a journaling filesystem; only appended bytes are
// subject to loss.
type WALFile struct {
	inj *Injector
	f   wal.File

	mu      sync.Mutex
	pos     int64
	size    int64
	durable int64
}

// WrapWAL returns an Options.WrapWAL hook injecting faults through inj.
func WrapWAL(inj *Injector) func(wal.File) wal.File {
	return func(under wal.File) wal.File {
		w := &WALFile{inj: inj, f: under}
		if st, err := under.Stat(); err == nil {
			// Pre-existing content predates this process: durable.
			w.size, w.durable = st.Size(), st.Size()
		}
		inj.OnCrash(w.applyCrash)
		return w
	}
}

func (w *WALFile) Read(p []byte) (int, error) { return w.f.Read(p) }

func (w *WALFile) Write(p []byte) (int, error) {
	dec := w.inj.begin(OpWALWrite)
	switch dec {
	case decCrash:
		return 0, ErrCrashed
	case decError:
		// Short write: a prefix reaches the file, the rest does not, and
		// the caller gets an error — the classic partially-applied append.
		n := len(p) / 2
		m, _ := w.f.Write(p[:n])
		w.advance(m)
		return m, ErrInjected
	case decTorn:
		k := 0
		if len(p) > 0 {
			k = w.inj.Intn(len(p))
		}
		m, _ := w.f.Write(p[:k])
		w.advance(m)
		w.inj.Crash()
		return m, ErrCrashed
	}
	n, err := w.f.Write(p)
	w.advance(n)
	return n, err
}

func (w *WALFile) advance(n int) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.pos += int64(n)
	if w.pos > w.size {
		w.size = w.pos
	}
	w.mu.Unlock()
}

func (w *WALFile) Seek(offset int64, whence int) (int64, error) {
	n, err := w.f.Seek(offset, whence)
	if err == nil {
		w.mu.Lock()
		w.pos = n
		if w.size < n {
			w.size = n
		}
		w.mu.Unlock()
	}
	return n, err
}

func (w *WALFile) Sync() error {
	switch w.inj.begin(OpWALSync) {
	case decError:
		return ErrInjected
	case decLie:
		return nil // acknowledged, not durable
	case decCrash, decTorn:
		return ErrCrashed
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.durable = w.size
	w.mu.Unlock()
	return nil
}

func (w *WALFile) Truncate(size int64) error {
	switch w.inj.begin(OpWALTrunc) {
	case decError:
		return ErrInjected
	case decOK:
	default:
		return ErrCrashed
	}
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	w.mu.Lock()
	w.size = size
	if w.pos > size {
		w.pos = size
	}
	w.durable = size
	w.mu.Unlock()
	return nil
}

func (w *WALFile) Stat() (os.FileInfo, error) { return w.f.Stat() }

func (w *WALFile) Close() error { return w.f.Close() }

// applyCrash cuts the log back to its durable length plus a seeded prefix
// of the unsynced tail.
func (w *WALFile) applyCrash(rng *rand.Rand) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tail := w.size - w.durable
	if tail <= 0 {
		return
	}
	keep := rng.Int63n(tail + 1)
	w.f.Truncate(w.durable + keep)
	w.f.Sync()
	w.size = w.durable + keep
}
