// Package harness drives the crash-recovery test matrix: a deterministic
// mixed commit/abort/DDL workload runs against an engine whose I/O is
// wrapped by internal/fault, crashes at a scheduled point, and is then
// reopened cleanly and checked against an in-memory reference model.
//
// The two recovery invariants (DESIGN.md "Durability & recovery"):
//
//  1. Every acknowledged commit is readable after recovery, and no
//     aborted or unacknowledged write is visible. A transaction whose
//     Commit call was in flight when the crash hit is indeterminate: the
//     checker accepts exactly-all or exactly-none of its effects.
//  2. Indexes and heap agree: every indexed entry resolves to a live
//     object whose attribute carries the indexed key, and every live
//     object is found under its key.
//
// Everything is reproducible from a fault.Schedule: the workload draws all
// decisions from the schedule seed, I/O ops are counted globally, and the
// lost-write simulation at the crash point is seeded too.
package harness

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"oodb/internal/core"
	"oodb/internal/fault"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// rnd is the workload's own deterministic stream, separate from the
// injector's (which is consumed only at crash time).
type rnd struct{ r *rand.Rand }

func newRand(seed int64) *rnd { return &rnd{r: rand.New(rand.NewSource(seed))} }

func (r *rnd) intn(n int) int { return r.r.Intn(n) }

// bigValue pads prefix to a deterministic 4–12 KB string.
func bigValue(r *rnd, prefix string) string {
	n := 4096 + r.intn(8192)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	copy(buf, prefix)
	return string(buf)
}

// Model is the in-memory reference state: what the database must contain
// after crash recovery.
type Model struct {
	// Objects maps every acknowledged-live OID to its expected attributes
	// (only attributes the workload set explicitly; defaults are not
	// materialized).
	Objects map[model.OID]map[string]model.Value
	// Ever records every OID the workload ever allocated, acknowledged or
	// not — the universe of objects that could legitimately surface after a
	// recovery whose durability guarantees were voided (fsync lies).
	Ever map[model.OID]bool
	// History records every full attribute state each OID ever reached on
	// the heap, in write order — including states written by transactions
	// that later aborted or whose commit never acknowledged, because under
	// a lying fsync a crash can revert pages to any of them (an undo or a
	// redo may have hit the lie). CheckLied verifies the CONTENT of every
	// visible object against this set, not just its reachability.
	History map[model.OID][]map[string]model.Value
	// Indexes holds acknowledged-present index names mapped to the
	// attribute they index; acknowledged drops remove entries.
	Indexes map[string]IndexSpec
	// Maybe holds index names touched by a DDL that crashed mid-flight:
	// present or absent are both acceptable until resolved by a check.
	Maybe map[string]IndexSpec
	// NumAttrs and NumClasses number the extra attributes / filler classes
	// created by DDL steps (names are derived from the counters so a
	// crashed, retried DDL is idempotent).
	NumAttrs   int
	NumClasses int
}

// IndexSpec describes an index the workload created, by names the checker
// can resolve after reopen.
type IndexSpec struct {
	Class     string // class name the index is declared on
	Attr      string // indexed attribute (single-step path)
	Hierarchy bool
}

// NewModel returns an empty reference model.
func NewModel() *Model {
	return &Model{
		Objects: make(map[model.OID]map[string]model.Value),
		Ever:    make(map[model.OID]bool),
		History: make(map[model.OID][]map[string]model.Value),
		Indexes: make(map[string]IndexSpec),
		Maybe:   make(map[string]IndexSpec),
	}
}

func (m *Model) sortedOIDs() []model.OID {
	out := make([]model.OID, 0, len(m.Objects))
	for oid := range m.Objects {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TxnEffect is the pending effect of one transaction, applied to the model
// only when the transaction acknowledges, or held as the indeterminate
// candidate when the crash hit mid-commit.
type TxnEffect struct {
	ops []effOp
}

type effOp struct {
	del   bool
	oid   model.OID
	attrs map[string]model.Value
}

func (e *TxnEffect) put(oid model.OID, attrs map[string]model.Value) {
	e.ops = append(e.ops, effOp{oid: oid, attrs: attrs})
}

func (e *TxnEffect) delete(oid model.OID) {
	e.ops = append(e.ops, effOp{del: true, oid: oid})
}

// apply folds the effect into an object map (insert/update merge, delete
// removes).
func (e *TxnEffect) apply(objs map[model.OID]map[string]model.Value) {
	for _, op := range e.ops {
		if op.del {
			delete(objs, op.oid)
			continue
		}
		cur := objs[op.oid]
		if cur == nil {
			cur = make(map[string]model.Value, len(op.attrs))
			objs[op.oid] = cur
		}
		for k, v := range op.attrs {
			cur[k] = v
		}
	}
}

// RunResult reports how a workload run ended.
type RunResult struct {
	// Crashed is true when the injector's simulated crash (or an injected
	// error) terminated the run; false means the workload completed and
	// closed cleanly.
	Crashed bool
	// Indet is the effect of the transaction whose Commit was in flight at
	// the crash (nil when the crash hit outside a commit): the checker
	// accepts the model with or without it.
	Indet *TxnEffect
	// Err is the error that ended the run (nil on clean completion).
	Err error
}

// Run executes steps workload steps against the database in dir with the
// given injector, updating the model with every acknowledged effect. The
// same (seed, steps) always issues the same operation sequence, so a
// census run (injector that never fires) enumerates exactly the I/O ops a
// scheduled run will hit.
func Run(dir string, inj *fault.Injector, seed int64, steps int, m *Model) *RunResult {
	r := newRand(seed)
	inj.SetPhase("open")
	db, err := core.Open(dir, core.Options{
		PoolPages:       64,       // small pool: exercise eviction write-backs
		CheckpointBytes: 32 << 10, // small threshold: exercise auto-checkpoints
		WrapDisk:        fault.WrapDisk(inj, filepath.Join(dir, "data.kdb")),
		WrapWAL:         fault.WrapWAL(inj),
	})
	if err != nil {
		return &RunResult{Crashed: true, Err: err}
	}

	w := &workload{db: db, inj: inj, m: m, r: r}
	if res := w.ensureSchema(); res != nil {
		return res
	}
	for step := 0; step < steps; step++ {
		var res *RunResult
		switch {
		case step%7 == 3:
			res = w.ddlStep()
		case step%11 == 5:
			res = w.checkpointStep()
		default:
			res = w.txnStep()
		}
		if res != nil {
			return res
		}
	}
	inj.SetPhase("close")
	if err := db.Close(); err != nil {
		return &RunResult{Crashed: true, Err: err}
	}
	return &RunResult{}
}

type workload struct {
	db  *core.DB
	inj *fault.Injector
	m   *Model
	r   *rnd
}

// died wraps an error that ended the run. An error without the injector
// having crashed is a workload-level invariant violation (e.g. an object
// the model says is live was not found) and fails the test immediately.
func (w *workload) died(err error, indet *TxnEffect) *RunResult {
	return &RunResult{Crashed: w.inj.Crashed(), Indet: indet, Err: err}
}

// ensureSchema (re-)creates the fixed schema: class B(n Integer, s String),
// class S under B adding (m Integer), and the hierarchy index b_n on B.n.
// Every piece is existence-checked first so the step is idempotent across
// crash/recover cycles (a crashed DDL may have persisted half the
// ensemble: class without segment, class without index).
func (w *workload) ensureSchema() *RunResult {
	w.inj.SetPhase("ddl")
	db := w.db
	clB, err := db.Catalog.ClassByName("B")
	if err != nil {
		clB, err = db.DefineClass("B", nil,
			schema.AttrSpec{Name: "n", Domain: schema.ClassInteger, Default: model.Int(0)},
			schema.AttrSpec{Name: "s", Domain: schema.ClassString, Default: model.String("")},
		)
		if err != nil {
			return w.died(err, nil)
		}
	}
	clS, err := db.Catalog.ClassByName("S")
	if err != nil {
		clS, err = db.DefineClass("S", []model.ClassID{clB.ID},
			schema.AttrSpec{Name: "m", Domain: schema.ClassInteger, Default: model.Int(0)},
		)
		if err != nil {
			return w.died(err, nil)
		}
	}
	// Segment repair: a crash between the catalog checkpoint and the
	// segment-table checkpoint can leave a class without its segment.
	if err := db.Store.CreateSegment(clB.ID); err != nil {
		return w.died(err, nil)
	}
	if err := db.Store.CreateSegment(clS.ID); err != nil {
		return w.died(err, nil)
	}
	if _, err := db.Indexes.Get("b_n"); err != nil {
		// In-flight until the create acknowledges: a crash inside
		// CreateIndex leaves the index present-or-absent.
		w.m.Maybe["b_n"] = IndexSpec{Class: "B", Attr: "n", Hierarchy: true}
		if err := db.CreateIndex("b_n", clB.ID, []string{"n"}, true); err != nil {
			return w.died(err, nil)
		}
	}
	w.m.Indexes["b_n"] = IndexSpec{Class: "B", Attr: "n", Hierarchy: true}
	delete(w.m.Maybe, "b_n")
	return nil
}

// txnStep runs one transaction of 1–4 operations, committing or (25%)
// aborting it. Effects reach the model only on acknowledgment.
func (w *workload) txnStep() *RunResult {
	db, r, m := w.db, w.r, w.m
	abort := r.intn(4) == 0
	w.inj.SetPhase("dml")

	clB, err := db.Catalog.ClassByName("B")
	if err != nil {
		return w.died(err, nil)
	}
	clS, err := db.Catalog.ClassByName("S")
	if err != nil {
		return w.died(err, nil)
	}

	tx := db.Begin()
	eff := &TxnEffect{}
	live := m.sortedOIDs()
	// work tracks the heap state each OID reaches inside this transaction;
	// every write is recorded into m.History immediately — not on ack —
	// because even an aborted or unacknowledged state can resurface after a
	// crash behind a lying fsync.
	work := make(map[model.OID]map[string]model.Value)
	record := func(oid model.OID, attrs map[string]model.Value) {
		st, ok := work[oid]
		if !ok {
			st = make(map[string]model.Value, len(attrs))
			for k, v := range m.Objects[oid] {
				st[k] = v
			}
		}
		for k, v := range attrs {
			st[k] = v
		}
		work[oid] = st
		snap := make(map[string]model.Value, len(st))
		for k, v := range st {
			snap[k] = v
		}
		m.History[oid] = append(m.History[oid], snap)
	}
	nops := 1 + r.intn(4)
	for i := 0; i < nops; i++ {
		switch r.intn(10) {
		case 0, 1, 2, 3: // insert
			// A quarter of the inserts carry multi-KB strings: they fill
			// the WAL's append buffer and the small pool mid-transaction,
			// so real I/O (and therefore crash points) happens inside the
			// dml and abort phases, not only at commit boundaries.
			s := fmt.Sprintf("v%d", r.intn(100))
			if r.intn(4) == 0 {
				s = bigValue(r, s)
			}
			attrs := map[string]model.Value{
				"n": model.Int(int64(r.intn(1000))),
				"s": model.String(s),
			}
			class := clB.ID
			if r.intn(2) == 0 {
				class = clS.ID
				attrs["m"] = model.Int(int64(r.intn(1000)))
			}
			oid, err := tx.InsertClass(class, attrs)
			if err != nil {
				return w.died(err, nil)
			}
			m.Ever[oid] = true
			record(oid, attrs)
			eff.put(oid, attrs)
			live = append(live, oid)
		case 4, 5, 6: // update
			if len(live) == 0 {
				continue
			}
			oid := live[r.intn(len(live))]
			attrs := map[string]model.Value{"n": model.Int(int64(r.intn(1000)))}
			if oid.Class() == clS.ID && r.intn(2) == 0 {
				attrs = map[string]model.Value{"m": model.Int(int64(r.intn(1000)))}
			}
			if err := tx.Update(oid, attrs); err != nil {
				return w.died(err, nil)
			}
			record(oid, attrs)
			eff.put(oid, attrs)
		default: // delete
			if len(live) == 0 {
				continue
			}
			k := r.intn(len(live))
			oid := live[k]
			if err := tx.Delete(oid); err != nil {
				return w.died(err, nil)
			}
			eff.delete(oid)
			live = append(live[:k], live[k+1:]...)
		}
	}
	if abort {
		w.inj.SetPhase("abort")
		if err := tx.Abort(); err != nil {
			// A crashed abort leaves a loser transaction: recovery undoes
			// it entirely, so the effect must be invisible — same as an
			// acknowledged abort. Nothing indeterminate.
			return w.died(err, nil)
		}
		return nil
	}
	w.inj.SetPhase("group-commit")
	if err := tx.Commit(); err != nil {
		// The ack never reached the "application": the commit record may or
		// may not be durable. Both all-and-nothing outcomes are acceptable.
		return w.died(err, eff)
	}
	eff.apply(m.Objects)
	return nil
}

// ddlStep performs one schema operation: add an attribute to B, toggle the
// secondary index s_m on S.m, or define a filler subclass. All acknowledged
// DDL is durable (the DDL path checkpoints before returning), so the model
// records it on ack; a crashed index toggle goes into the Maybe set.
func (w *workload) ddlStep() *RunResult {
	db, m := w.db, w.m
	w.inj.SetPhase("ddl")
	switch w.r.intn(3) {
	case 0: // add attribute xN to B
		clB, err := db.Catalog.ClassByName("B")
		if err != nil {
			return w.died(err, nil)
		}
		name := fmt.Sprintf("x%d", m.NumAttrs)
		if _, err := db.Catalog.ResolveAttr(clB.ID, name); err == nil {
			m.NumAttrs++ // a crashed earlier attempt actually landed
			return nil
		}
		if _, err := db.AddAttribute(clB.ID, schema.AttrSpec{
			Name: name, Domain: schema.ClassInteger, Default: model.Int(0),
		}); err != nil {
			return w.died(err, nil)
		}
		m.NumAttrs++
	case 1: // toggle index s_m on S.m
		spec := IndexSpec{Class: "S", Attr: "m"}
		if _, err := db.Indexes.Get("s_m"); err == nil {
			m.Maybe["s_m"] = spec
			if err := db.DropIndex("s_m"); err != nil {
				return w.died(err, nil)
			}
			delete(m.Indexes, "s_m")
			delete(m.Maybe, "s_m")
		} else {
			clS, err := db.Catalog.ClassByName("S")
			if err != nil {
				return w.died(err, nil)
			}
			m.Maybe["s_m"] = spec
			if err := db.CreateIndex("s_m", clS.ID, []string{"m"}, false); err != nil {
				return w.died(err, nil)
			}
			m.Indexes["s_m"] = spec
			delete(m.Maybe, "s_m")
		}
	default: // define filler subclass CN under B
		name := fmt.Sprintf("C%d", m.NumClasses)
		if _, err := db.Catalog.ClassByName(name); err == nil {
			m.NumClasses++
			return nil
		}
		clB, err := db.Catalog.ClassByName("B")
		if err != nil {
			return w.died(err, nil)
		}
		if _, err := db.DefineClass(name, []model.ClassID{clB.ID}); err != nil {
			return w.died(err, nil)
		}
		m.NumClasses++
	}
	return nil
}

func (w *workload) checkpointStep() *RunResult {
	w.inj.SetPhase("checkpoint")
	if err := w.db.Checkpoint(); err != nil {
		return w.died(err, nil)
	}
	return nil
}

// Check reopens the database in dir WITHOUT fault injection (the reboot)
// and verifies both recovery invariants against the model. indet, when
// non-nil, is the in-flight commit's effect: the check passes if the
// database matches the model either without it or with it applied in full;
// whichever matched is folded into the model so multi-cycle runs continue
// from truth. Maybe-indexes are resolved against observed state.
func Check(dir string, m *Model, indet *TxnEffect) error {
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		return fmt.Errorf("recovery reopen: %w", err)
	}
	defer db.Close()

	errExact := checkObjects(db, m.Objects)
	if errExact != nil && indet != nil {
		withIndet := cloneObjects(m.Objects)
		indet.apply(withIndet)
		if err := checkObjects(db, withIndet); err != nil {
			return fmt.Errorf("neither commit outcome matches: without indet: %v; with indet: %w", errExact, err)
		}
		indet.apply(m.Objects) // the in-flight commit actually landed
	} else if errExact != nil {
		return errExact
	}

	if err := checkIndexes(db, m); err != nil {
		return err
	}
	return nil
}

// CheckLied is the weakened post-recovery check for runs where the lie
// window actually armed (fault.Injector.Lied): a device that acknowledges
// fsync without durability voids every durability guarantee. An
// acknowledged commit may be lost wholesale — a checkpoint trusting the
// lying fsync truncates the only copy of its redo records — and a loser's
// writes may surface, because unsynced pages can survive a crash while the
// WAL tail holding their undo records did not. No write-ahead protocol can
// detect the lie without reading back; see DESIGN.md.
//
// What recovery must still deliver: it never wedges or panics. The reopen
// either fails with a clean error (even the catalog may be gone) or yields
// a readable state in which every visible object (a) was written by the
// workload and (b) reads back as SOME state the workload actually put it
// in — a crash behind a lying fsync may revert an object to any version it
// ever held (committed, aborted-then-lost-undo, or unacknowledged), but it
// must never fabricate content that was never written.
func CheckLied(dir string, m *Model) error {
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		// Data loss up to and including the catalog: accepted under lying
		// fsyncs, as long as it is a clean error, which reaching this
		// return proves.
		return nil
	}
	defer db.Close()
	for _, c := range db.Store.Classes() {
		var oids []model.OID
		err := db.Store.ScanClass(c, func(oid model.OID, _ []byte) bool {
			oids = append(oids, oid)
			return true
		})
		if err != nil {
			return fmt.Errorf("lie recovery: scan class %d: %w", c, err)
		}
		for _, oid := range oids {
			if !m.Ever[oid] {
				return fmt.Errorf("lie recovery: object %s visible but never written by the workload", oid)
			}
			obj, err := db.FetchObject(oid)
			if err != nil {
				return fmt.Errorf("lie recovery: visible object %s unreadable: %w", oid, err)
			}
			states := m.History[oid]
			matched := false
			for _, st := range states {
				if stateMatches(db, obj, st) {
					matched = true
					break
				}
			}
			if !matched {
				return fmt.Errorf("lie recovery: object %s content matches none of its %d recorded states", oid, len(states))
			}
		}
	}
	return nil
}

// stateMatches reports whether obj reads back equal to one recorded
// historical state on every attribute that state set.
func stateMatches(db *core.DB, obj *model.Object, st map[string]model.Value) bool {
	for name, want := range st {
		got, err := db.AttrValue(obj, name)
		if err != nil || model.Compare(got, want) != 0 {
			return false
		}
	}
	return true
}

func cloneObjects(objs map[model.OID]map[string]model.Value) map[model.OID]map[string]model.Value {
	out := make(map[model.OID]map[string]model.Value, len(objs))
	for oid, attrs := range objs {
		cp := make(map[string]model.Value, len(attrs))
		for k, v := range attrs {
			cp[k] = v
		}
		out[oid] = cp
	}
	return out
}

// checkObjects verifies invariant 1: the set of live objects in classes B
// and S (and filler subclasses) equals the model's, and every expected
// attribute reads back equal.
func checkObjects(db *core.DB, want map[model.OID]map[string]model.Value) error {
	got := make(map[model.OID]bool)
	for _, c := range db.Store.Classes() {
		err := db.Store.ScanClass(c, func(oid model.OID, _ []byte) bool {
			got[oid] = true
			return true
		})
		if err != nil {
			return fmt.Errorf("scan class %d: %w", c, err)
		}
	}
	for oid := range got {
		if _, ok := want[oid]; !ok {
			return fmt.Errorf("object %s visible after recovery but never acknowledged", oid)
		}
	}
	for oid, attrs := range want {
		if !got[oid] {
			return fmt.Errorf("acknowledged object %s lost after recovery", oid)
		}
		obj, err := db.FetchObject(oid)
		if err != nil {
			return fmt.Errorf("fetch acknowledged object %s: %w", oid, err)
		}
		for name, wantV := range attrs {
			gotV, err := db.AttrValue(obj, name)
			if err != nil {
				return fmt.Errorf("object %s attr %q: %w", oid, name, err)
			}
			if model.Compare(gotV, wantV) != 0 {
				return fmt.Errorf("object %s attr %q: got %v want %v", oid, name, gotV, wantV)
			}
		}
	}
	return nil
}

// checkIndexes verifies invariant 2 (index/heap agreement) for every index
// the harness knows, and resolves Maybe entries against observed state.
func checkIndexes(db *core.DB, m *Model) error {
	for name, spec := range m.Indexes {
		if _, inFlight := m.Maybe[name]; inFlight {
			continue // a crashed drop was in flight: Maybe overrides
		}
		if _, err := db.Indexes.Get(name); err != nil {
			return fmt.Errorf("acknowledged index %q missing after recovery", name)
		}
		if err := checkIndexAgreement(db, name, spec, m.Objects); err != nil {
			return err
		}
	}
	for name, spec := range m.Maybe {
		if _, err := db.Indexes.Get(name); err != nil {
			delete(m.Indexes, name) // the crashed drop actually landed
			delete(m.Maybe, name)
			continue // absent: the crashed create never landed
		}
		if err := checkIndexAgreement(db, name, spec, m.Objects); err != nil {
			return err
		}
		m.Indexes[name] = spec
		delete(m.Maybe, name)
	}
	return nil
}

func checkIndexAgreement(db *core.DB, name string, spec IndexSpec, objs map[model.OID]map[string]model.Value) error {
	idx, err := db.Indexes.Get(name)
	if err != nil {
		return err
	}
	cl, err := db.Catalog.ClassByName(spec.Class)
	if err != nil {
		return fmt.Errorf("index %q: class %q: %w", name, spec.Class, err)
	}
	covered := map[model.ClassID]bool{cl.ID: true}
	if spec.Hierarchy {
		descs, err := db.Catalog.Descendants(cl.ID)
		if err != nil {
			return err
		}
		for _, d := range descs {
			covered[d] = true
		}
	}
	// Forward: every covered live object is found under its key.
	for oid, attrs := range objs {
		if !covered[oid.Class()] {
			continue
		}
		key, ok := attrs[spec.Attr]
		if !ok {
			// The workload always sets indexed attributes at insert; an
			// object without one predates the index-covered class set.
			continue
		}
		found := false
		for _, hit := range idx.Lookup(key, nil) {
			if hit == oid {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("index %q: live object %s not found under key %v", name, oid, key)
		}
	}
	// Backward: every posting resolves to a live object (no dangling).
	for _, oid := range idx.Range(model.Int(-1<<62), model.Int(1<<62), true, nil) {
		if _, ok := objs[oid]; !ok {
			return fmt.Errorf("index %q: dangling posting %s (object not live)", name, oid)
		}
	}
	return nil
}
