package fault

import (
	"math/rand"
	"os"
	"sort"
	"sync"

	"oodb/internal/storage"
)

// Disk wraps a storage.Disk with a failpoint at every page-I/O site and a
// durability model for simulated crashes: it remembers the pre-write
// content of every page written since the last honest fsync, and when the
// crash fires each such write independently survives, vanishes (the page
// reverts to its durable content), or tears (half new, half old) — decided
// by the schedule's seeded RNG, applied to the real file so a plain reopen
// observes exactly what a power cut could have left.
//
// Writes the disk manager performs internally without going through the
// page seam — the metadata page (roots, free list) and file extension —
// are treated as durable at write time. That narrows the simulation to the
// data pages the WAL protocol is responsible for; metadata durability would
// need its own journaling and is noted as an open item.
type Disk struct {
	inj     *Injector
	under   storage.Disk
	raw     *os.File
	initErr error

	mu       sync.Mutex
	unsynced map[storage.PageID][]byte // pre-write durable image; nil = absent
}

// WrapDisk returns an Options.WrapDisk hook that injects faults through inj
// for the database file at path (the wrapper needs its own descriptor to
// rewind pages at crash time).
func WrapDisk(inj *Injector, path string) func(storage.Disk) storage.Disk {
	return func(under storage.Disk) storage.Disk {
		d := &Disk{inj: inj, under: under, unsynced: make(map[storage.PageID][]byte)}
		d.raw, d.initErr = os.OpenFile(path, os.O_RDWR, 0o644)
		inj.OnCrash(d.applyCrash)
		return d
	}
}

func (d *Disk) ReadPage(id storage.PageID, p *storage.Page) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskRead) {
	case decError:
		return ErrInjected
	case decOK:
		return d.under.ReadPage(id, p)
	default:
		return ErrCrashed
	}
}

func (d *Disk) WritePage(id storage.PageID, p *storage.Page) error {
	if d.initErr != nil {
		return d.initErr
	}
	dec := d.inj.begin(OpDiskWrite)
	switch dec {
	case decError:
		return ErrInjected
	case decCrash:
		return ErrCrashed
	}
	d.captureBefore(id)
	if dec == decTorn {
		// The crashing write itself: the first half of the new page reaches
		// the platter, the rest (including nothing that fixes the now-stale
		// checksum unless the halves happen to agree) does not.
		img := *p
		img.Seal()
		torn := make([]byte, storage.PageSize)
		d.mu.Lock()
		if before := d.unsynced[id]; before != nil {
			copy(torn, before)
		}
		d.mu.Unlock()
		copy(torn[:storage.PageSize/2], img.Bytes()[:storage.PageSize/2])
		d.raw.WriteAt(torn, int64(id)*storage.PageSize)
		d.inj.Crash()
		return ErrCrashed
	}
	return d.under.WritePage(id, p)
}

func (d *Disk) AllocPage() (storage.PageID, error) {
	if d.initErr != nil {
		return storage.InvalidPage, d.initErr
	}
	switch d.inj.begin(OpDiskAlloc) {
	case decError:
		return storage.InvalidPage, ErrInjected
	case decOK:
		return d.under.AllocPage()
	default:
		return storage.InvalidPage, ErrCrashed
	}
}

func (d *Disk) FreePage(id storage.PageID) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskFree) {
	case decError:
		return ErrInjected
	case decOK:
		// FreePage rewrites the page as a free-list link: track it like any
		// other page write so the crash model can lose it.
		d.captureBefore(id)
		return d.under.FreePage(id)
	default:
		return ErrCrashed
	}
}

func (d *Disk) Sync() error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskSync) {
	case decError:
		return ErrInjected
	case decLie:
		return nil // acknowledged, not durable: unsynced stays tracked
	case decCrash, decTorn:
		return ErrCrashed
	}
	if err := d.under.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	d.unsynced = make(map[storage.PageID][]byte)
	d.mu.Unlock()
	return nil
}

// GetRoot is read-only against in-memory metadata: not an I/O site.
func (d *Disk) GetRoot(r storage.MetaRoot) storage.PageID {
	return d.under.GetRoot(r)
}

func (d *Disk) SetRoot(r storage.MetaRoot, id storage.PageID) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskRoot) {
	case decError:
		return ErrInjected
	case decOK:
		return d.under.SetRoot(r, id)
	default:
		return ErrCrashed
	}
}

func (d *Disk) NumPages() storage.PageID { return d.under.NumPages() }

func (d *Disk) Close() error {
	if d.raw != nil {
		d.raw.Close()
	}
	return d.under.Close()
}

// captureBefore snapshots the page's current on-disk content the first time
// it is written since the last honest fsync — the state it reverts to if
// the crash decides the write never happened.
func (d *Disk) captureBefore(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.unsynced[id]; ok {
		return
	}
	buf := make([]byte, storage.PageSize)
	if _, err := d.raw.ReadAt(buf, int64(id)*storage.PageSize); err != nil {
		d.unsynced[id] = nil // the page did not durably exist yet
		return
	}
	d.unsynced[id] = buf
}

// applyCrash rewrites the real file to one state a power cut could have
// produced: every page written since the last honest fsync independently
// survives, reverts, or tears. Deterministic: pages are visited in sorted
// order and all randomness comes from the schedule RNG.
func (d *Disk) applyCrash(rng *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.raw == nil {
		return
	}
	ids := make([]storage.PageID, 0, len(d.unsynced))
	for id := range d.unsynced {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		before := d.unsynced[id]
		off := int64(id) * storage.PageSize
		switch rng.Intn(3) {
		case 0:
			// The write made it to the platter.
		case 1:
			// The write was lost entirely.
			if before == nil {
				before = make([]byte, storage.PageSize)
			}
			d.raw.WriteAt(before, off)
		case 2:
			// Torn: the first half made it, the second half did not.
			cur := make([]byte, storage.PageSize)
			if _, err := d.raw.ReadAt(cur, off); err != nil {
				continue
			}
			if before == nil {
				before = make([]byte, storage.PageSize)
			}
			copy(cur[storage.PageSize/2:], before[storage.PageSize/2:])
			d.raw.WriteAt(cur, off)
		}
	}
	d.unsynced = make(map[storage.PageID][]byte)
	d.raw.Sync()
}
