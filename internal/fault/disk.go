package fault

import (
	"bytes"
	"math/rand"
	"os"
	"sort"
	"sync"

	"oodb/internal/storage"
)

// Disk wraps a storage.Disk with a failpoint at every page-I/O site and a
// durability model for simulated crashes: it remembers the pre-write
// content of every page written since the last honest fsync, and when the
// crash fires each such write independently survives, vanishes (the page
// reverts to its durable content), or tears (half new, half old) — decided
// by the schedule's seeded RNG, applied to the real file so a plain reopen
// observes exactly what a power cut could have left.
//
// The duplexed metadata slots (pages 0 and 1 of a format-2 file) get the
// same treatment: the wrapper snapshots both slots at every honest fsync,
// and at crash time a slot that changed since then independently survives
// or reverts — and the newest changed slot may additionally tear, which is
// precisely the failure the A/B design absorbs (the torn slot's twin holds
// the state one metadata write earlier). The metadata is therefore no
// longer modeled durable-at-write. The one write still treated as durable
// is the zero page the disk manager appends when extending the file; its
// loss is indistinguishable from the file simply being shorter.
type Disk struct {
	inj     *Injector
	under   storage.Disk
	raw     *os.File
	initErr error

	mu         sync.Mutex
	unsynced   map[storage.PageID][]byte // pre-write durable image; nil = absent
	metaDuplex bool
	metaBefore [storage.MetaSlots][]byte // slot content at last honest fsync
}

// WrapDisk returns an Options.WrapDisk hook that injects faults through inj
// for the database file at path (the wrapper needs its own descriptor to
// rewind pages at crash time).
func WrapDisk(inj *Injector, path string) func(storage.Disk) storage.Disk {
	return func(under storage.Disk) storage.Disk {
		d := &Disk{inj: inj, under: under, unsynced: make(map[storage.PageID][]byte)}
		d.raw, d.initErr = os.OpenFile(path, os.O_RDWR, 0o644)
		if d.initErr == nil {
			d.metaDuplex = under.FirstDataPage() >= storage.MetaSlots
			d.snapshotMeta()
		}
		inj.OnCrash(d.applyCrash)
		return d
	}
}

// snapshotMeta records the metadata slots' current file content as their
// durable baseline. Called at wrap time and after every honest fsync;
// caller holds d.mu (or is single-threaded at wrap time).
func (d *Disk) snapshotMeta() {
	if !d.metaDuplex {
		return
	}
	for slot := 0; slot < storage.MetaSlots; slot++ {
		buf := make([]byte, storage.PageSize)
		if _, err := d.raw.ReadAt(buf, int64(slot)*storage.PageSize); err != nil {
			d.metaBefore[slot] = nil
			continue
		}
		d.metaBefore[slot] = buf
	}
}

func (d *Disk) ReadPage(id storage.PageID, p *storage.Page) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskRead) {
	case decError:
		return ErrInjected
	case decOK:
		return d.under.ReadPage(id, p)
	default:
		return ErrCrashed
	}
}

func (d *Disk) WritePage(id storage.PageID, p *storage.Page) error {
	if d.initErr != nil {
		return d.initErr
	}
	dec := d.inj.begin(OpDiskWrite)
	switch dec {
	case decError:
		return ErrInjected
	case decCrash:
		return ErrCrashed
	}
	d.captureBefore(id)
	if dec == decTorn {
		// The crashing write itself: the first half of the new page reaches
		// the platter, the rest (including nothing that fixes the now-stale
		// checksum unless the halves happen to agree) does not.
		img := *p
		img.Seal()
		torn := make([]byte, storage.PageSize)
		d.mu.Lock()
		if before := d.unsynced[id]; before != nil {
			copy(torn, before)
		}
		d.mu.Unlock()
		copy(torn[:storage.PageSize/2], img.Bytes()[:storage.PageSize/2])
		d.raw.WriteAt(torn, int64(id)*storage.PageSize)
		d.inj.Crash()
		return ErrCrashed
	}
	return d.under.WritePage(id, p)
}

func (d *Disk) AllocPage() (storage.PageID, error) {
	if d.initErr != nil {
		return storage.InvalidPage, d.initErr
	}
	switch d.inj.begin(OpDiskAlloc) {
	case decError:
		return storage.InvalidPage, ErrInjected
	case decOK:
		return d.under.AllocPage()
	default:
		return storage.InvalidPage, ErrCrashed
	}
}

func (d *Disk) FreePage(id storage.PageID) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskFree) {
	case decError:
		return ErrInjected
	case decOK:
		// FreePage rewrites the page as a free-list link: track it like any
		// other page write so the crash model can lose it.
		d.captureBefore(id)
		return d.under.FreePage(id)
	default:
		return ErrCrashed
	}
}

func (d *Disk) Sync() error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskSync) {
	case decError:
		return ErrInjected
	case decLie:
		return nil // acknowledged, not durable: unsynced stays tracked
	case decCrash, decTorn:
		return ErrCrashed
	}
	if err := d.under.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	d.unsynced = make(map[storage.PageID][]byte)
	d.snapshotMeta()
	d.mu.Unlock()
	return nil
}

// GetRoot is read-only against in-memory metadata: not an I/O site.
func (d *Disk) GetRoot(r storage.MetaRoot) storage.PageID {
	return d.under.GetRoot(r)
}

func (d *Disk) SetRoot(r storage.MetaRoot, id storage.PageID) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskRoot) {
	case decError:
		return ErrInjected
	case decOK:
		return d.under.SetRoot(r, id)
	default:
		return ErrCrashed
	}
}

// SetRoots is one metadata write no matter how many roots it carries, so
// it costs one injectable op — the single-root-swap checkpoint relies on
// the whole batch having exactly one crash point.
func (d *Disk) SetRoots(roots map[storage.MetaRoot]storage.PageID) error {
	if d.initErr != nil {
		return d.initErr
	}
	switch d.inj.begin(OpDiskRoot) {
	case decError:
		return ErrInjected
	case decOK:
		return d.under.SetRoots(roots)
	default:
		return ErrCrashed
	}
}

func (d *Disk) NumPages() storage.PageID { return d.under.NumPages() }

func (d *Disk) FirstDataPage() storage.PageID { return d.under.FirstDataPage() }

func (d *Disk) Close() error {
	if d.raw != nil {
		d.raw.Close()
	}
	return d.under.Close()
}

// captureBefore snapshots the page's current on-disk content the first time
// it is written since the last honest fsync — the state it reverts to if
// the crash decides the write never happened.
func (d *Disk) captureBefore(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.unsynced[id]; ok {
		return
	}
	buf := make([]byte, storage.PageSize)
	if _, err := d.raw.ReadAt(buf, int64(id)*storage.PageSize); err != nil {
		d.unsynced[id] = nil // the page did not durably exist yet
		return
	}
	d.unsynced[id] = buf
}

// applyCrash rewrites the real file to one state a power cut could have
// produced: every page written since the last honest fsync independently
// survives, reverts, or tears, and the duplexed metadata slots get the
// same treatment (see applyMetaCrash). Deterministic: pages are visited in
// sorted order and all randomness comes from the schedule RNG.
func (d *Disk) applyCrash(rng *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.raw == nil {
		return
	}
	ids := make([]storage.PageID, 0, len(d.unsynced))
	for id := range d.unsynced {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		before := d.unsynced[id]
		off := int64(id) * storage.PageSize
		switch rng.Intn(3) {
		case 0:
			// The write made it to the platter.
		case 1:
			// The write was lost entirely.
			if before == nil {
				before = make([]byte, storage.PageSize)
			}
			d.raw.WriteAt(before, off)
		case 2:
			// Torn: the first half made it, the second half did not.
			cur := make([]byte, storage.PageSize)
			if _, err := d.raw.ReadAt(cur, off); err != nil {
				continue
			}
			if before == nil {
				before = make([]byte, storage.PageSize)
			}
			copy(cur[storage.PageSize/2:], before[storage.PageSize/2:])
			d.raw.WriteAt(cur, off)
		}
	}
	d.applyMetaCrash(rng)
	d.unsynced = make(map[storage.PageID][]byte)
	d.snapshotMeta()
	d.raw.Sync()
}

// applyMetaCrash simulates lost and torn metadata writes on a duplexed
// file. Every slot that changed since the last honest fsync independently
// survives or reverts to its fsync-time content; the slot carrying the
// newest epoch may additionally tear (half new, half old — almost surely
// failing its checksum), which models the one write that can be in flight
// when the power cuts. At most one slot tears, so a valid slot always
// survives: either the twin's last write (one metadata write earlier) or
// the fsync-point state — both transitions the metadata protocol is
// designed to lose safely (the free list leaks or abandons; roots only
// move with a sync barrier before the old chains are freed).
func (d *Disk) applyMetaCrash(rng *rand.Rand) {
	if !d.metaDuplex {
		return
	}
	type slotState struct {
		cur     []byte
		changed bool
		epoch   uint64
	}
	var slots [storage.MetaSlots]slotState
	newest, newestEpoch := -1, uint64(0)
	for i := 0; i < storage.MetaSlots; i++ {
		cur := make([]byte, storage.PageSize)
		if _, err := d.raw.ReadAt(cur, int64(i)*storage.PageSize); err != nil {
			continue
		}
		slots[i].cur = cur
		slots[i].changed = d.metaBefore[i] != nil && !bytes.Equal(cur, d.metaBefore[i])
		if _, epoch, ok := storage.MetaSlotInfo(cur); ok {
			slots[i].epoch = epoch
			if newest < 0 || epoch > newestEpoch {
				newest, newestEpoch = i, epoch
			}
		}
	}
	for i := 0; i < storage.MetaSlots; i++ {
		if !slots[i].changed {
			continue
		}
		off := int64(i) * storage.PageSize
		fates := 2
		if i == newest {
			fates = 3
		}
		switch rng.Intn(fates) {
		case 0:
			// The metadata write made it to the platter.
		case 1:
			// Lost: the slot reverts to its content at the last fsync.
			d.raw.WriteAt(d.metaBefore[i], off)
		case 2:
			// Torn mid-write (newest slot only).
			torn := append([]byte(nil), slots[i].cur...)
			copy(torn[storage.PageSize/2:], d.metaBefore[i][storage.PageSize/2:])
			d.raw.WriteAt(torn, off)
		}
	}
}
