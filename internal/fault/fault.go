// Package fault provides deterministic fault injection for the storage and
// WAL stack. It wraps the two I/O seams the engine exposes —
// storage.Disk (via storage/core Options.WrapDisk) and wal.File (via
// Options.WrapWAL) — and scripts failpoints at every I/O operation:
// fail-after-N-ops, short/torn writes, fsync errors, fsync lies (ack
// without durability), and hard crashes after which every I/O fails until
// "reboot" (reopening the database without the crashed wrapper).
//
// Determinism is the point: every run is driven by a Schedule (seed + crash
// point + style), ops are counted globally across both seams, and the
// lost-write simulation applied at crash time draws from the schedule's
// seeded RNG in a fixed order. A failing schedule printed by the harness
// reproduces the identical crash state when re-run.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Op identifies an injectable I/O site.
type Op string

// The injectable sites. Each names one operation on a wrapped seam.
const (
	OpDiskRead  Op = "disk.read"
	OpDiskWrite Op = "disk.write"
	OpDiskSync  Op = "disk.sync"
	OpDiskAlloc Op = "disk.alloc"
	OpDiskFree  Op = "disk.free"
	OpDiskRoot  Op = "disk.root"
	OpWALWrite  Op = "wal.write"
	OpWALSync   Op = "wal.sync"
	OpWALTrunc  Op = "wal.trunc"
)

// Sentinel errors surfaced by injected faults.
var (
	// ErrInjected is returned by an op armed with FailAt (a transient,
	// non-crash I/O error).
	ErrInjected = errors.New("fault: injected I/O error")
	// ErrCrashed is returned by every op after the simulated crash fires:
	// the process is "dead" and all I/O fails until reboot.
	ErrCrashed = errors.New("fault: I/O after simulated crash")
)

// Style selects how the crash point manifests.
type Style int

// The crash styles.
const (
	// StyleClean fails the crashing op before any byte reaches the file.
	StyleClean Style = iota
	// StyleTorn lets a seeded prefix of the crashing write reach the file
	// first (a torn page or torn WAL record). Non-write ops degrade to
	// StyleClean.
	StyleTorn
	// StyleLie makes the crashing fsync (and every later one) acknowledge
	// without durability; the crash itself fires a few ops later. Non-sync
	// ops degrade to StyleClean.
	StyleLie
)

func (s Style) String() string {
	switch s {
	case StyleTorn:
		return "torn"
	case StyleLie:
		return "lie"
	default:
		return "clean"
	}
}

// Schedule scripts one deterministic run: the RNG seed (workload and
// lost-write decisions) and the global op index at which to crash.
type Schedule struct {
	Seed    int64
	CrashAt int // 1-based global op index; 0 never crashes
	Style   Style
}

func (s Schedule) String() string {
	return fmt.Sprintf("seed=%d crashAt=%d style=%s", s.Seed, s.CrashAt, s.Style)
}

// Point is one enumerable crash site observed by a census run: the global
// op index, the site, and the workload phase active when it executed.
type Point struct {
	Index int
	Op    Op
	Phase string
}

// decision is the injector's verdict for one op.
type decision int

const (
	decOK decision = iota
	decError
	decCrash
	decTorn
	decLie
)

// Injector counts I/O ops across every wrapped seam and decides, per op,
// whether it proceeds, fails, or crashes the "process". All decisions and
// all randomness are serialized under one mutex so concurrent I/O still
// yields a well-defined (if interleaving-dependent) outcome; the
// single-threaded harness workload is fully deterministic.
type Injector struct {
	mu      sync.Mutex
	sched   Schedule
	rng     *rand.Rand
	n       int
	phase   string
	record  bool
	census  []Point
	crashed bool
	lieFrom int // >0: syncs lie from this op on; crash at lieAt
	lieAt   int
	failAt  map[Op]int
	seen    map[Op]int
	onCrash []func(*rand.Rand)
}

// NewInjector builds an injector for the schedule.
func NewInjector(sched Schedule) *Injector {
	return &Injector{
		sched:  sched,
		rng:    rand.New(rand.NewSource(sched.Seed)),
		failAt: make(map[Op]int),
		seen:   make(map[Op]int),
	}
}

// NewCensus builds an injector that never fires but records every op as a
// Point, so a harness can enumerate the crash sites of a workload.
func NewCensus(seed int64) *Injector {
	in := NewInjector(Schedule{Seed: seed})
	in.record = true
	return in
}

// SetPhase labels subsequent ops with the workload phase (census metadata).
func (in *Injector) SetPhase(p string) {
	in.mu.Lock()
	in.phase = p
	in.mu.Unlock()
}

// Census returns the recorded points of a census run.
func (in *Injector) Census() []Point {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Point(nil), in.census...)
}

// Ops returns the number of ops observed so far.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// Crashed reports whether the simulated crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Lied reports whether the lie window armed: some fsync acknowledged
// without durability. From that point no durability guarantee holds — the
// engine may have truncated redo records it believed were flushed — so
// checkers must fall back to the weaker lie contract (clean reopen or
// clean failure, internally readable state).
func (in *Injector) Lied() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lieFrom > 0
}

// FailAt arms a one-shot ErrInjected on the n-th (1-based) future
// occurrence of op — the transient-error knob for unit tests, independent
// of the crash schedule.
func (in *Injector) FailAt(op Op, n int) {
	in.mu.Lock()
	in.failAt[op] = in.seen[op] + n
	in.mu.Unlock()
}

// OnCrash registers a hook run (under the injector lock) when the crash
// fires. The wrappers use it to apply the seeded lost-write simulation to
// their files; hooks run in registration order, which is deterministic for
// a deterministic open sequence.
func (in *Injector) OnCrash(fn func(*rand.Rand)) {
	in.mu.Lock()
	in.onCrash = append(in.onCrash, fn)
	in.mu.Unlock()
}

// Crash forces the crash now (used by the torn-write path after its
// partial write, and by tests).
func (in *Injector) Crash() {
	in.mu.Lock()
	in.crashLocked()
	in.mu.Unlock()
}

// Intn draws from the schedule's RNG under the injector lock (the wrappers
// use it for torn-write prefix lengths).
func (in *Injector) Intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// begin records one op and returns its fate.
func (in *Injector) begin(op Op) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return decCrash
	}
	in.n++
	in.seen[op]++
	if in.record {
		in.census = append(in.census, Point{Index: in.n, Op: op, Phase: in.phase})
	}
	if at, ok := in.failAt[op]; ok && in.seen[op] == at {
		delete(in.failAt, op)
		return decError
	}
	if in.lieFrom > 0 {
		if in.n >= in.lieAt {
			in.crashLocked()
			return decCrash
		}
		if op == OpWALSync || op == OpDiskSync {
			return decLie // the device keeps lying until the crash
		}
	}
	if in.sched.CrashAt > 0 && in.n == in.sched.CrashAt {
		switch in.sched.Style {
		case StyleTorn:
			if op == OpDiskWrite || op == OpWALWrite {
				return decTorn // wrapper writes a prefix, then calls Crash
			}
		case StyleLie:
			if op == OpWALSync || op == OpDiskSync {
				in.lieFrom = in.n
				in.lieAt = in.n + 2 + in.rng.Intn(8)
				return decLie
			}
		}
		in.crashLocked()
		return decCrash
	}
	return decOK
}

func (in *Injector) crashLocked() {
	if in.crashed {
		return
	}
	in.crashed = true
	for _, fn := range in.onCrash {
		fn(in.rng)
	}
}
