package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/storage"
	"oodb/internal/wal"
)

// drive feeds a fixed op sequence through begin and returns the decisions,
// so two injectors with the same schedule can be compared verbatim.
func drive(in *Injector, ops []Op) []decision {
	out := make([]decision, len(ops))
	for i, op := range ops {
		out[i] = in.begin(op)
	}
	return out
}

var sampleOps = func() []Op {
	cycle := []Op{
		OpWALWrite, OpDiskWrite, OpWALWrite, OpWALSync, OpDiskWrite,
		OpDiskAlloc, OpDiskSync, OpDiskFree, OpWALWrite, OpWALSync,
	}
	var ops []Op
	for len(ops) < 100 {
		ops = append(ops, cycle...)
	}
	return ops[:100]
}()

func TestInjectorDeterminism(t *testing.T) {
	for _, style := range []Style{StyleClean, StyleTorn, StyleLie} {
		sched := Schedule{Seed: 99, CrashAt: 37, Style: style}
		a := drive(NewInjector(sched), sampleOps)
		b := drive(NewInjector(sched), sampleOps)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("style %s: decision %d differs: %v vs %v", style, i, a[i], b[i])
			}
		}
	}
}

func TestInjectorCrashStopsAllIO(t *testing.T) {
	in := NewInjector(Schedule{Seed: 1, CrashAt: 5})
	decs := drive(in, sampleOps)
	for i := 4; i < len(decs); i++ {
		if decs[i] != decCrash {
			t.Fatalf("op %d after crash point: got %v, want decCrash", i+1, decs[i])
		}
	}
	if !in.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
}

func TestFailAtIsOneShot(t *testing.T) {
	in := NewInjector(Schedule{Seed: 1})
	in.FailAt(OpWALSync, 2) // second future wal.sync fails
	got := drive(in, []Op{OpWALSync, OpWALWrite, OpWALSync, OpWALSync})
	want := []decision{decOK, decOK, decError, decOK}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCensusRecordsEveryOp(t *testing.T) {
	in := NewCensus(1)
	in.SetPhase("alpha")
	in.begin(OpWALWrite)
	in.SetPhase("beta")
	in.begin(OpDiskSync)
	pts := in.Census()
	if len(pts) != 2 {
		t.Fatalf("census has %d points, want 2", len(pts))
	}
	if pts[0] != (Point{Index: 1, Op: OpWALWrite, Phase: "alpha"}) {
		t.Fatalf("point 0: %+v", pts[0])
	}
	if pts[1] != (Point{Index: 2, Op: OpDiskSync, Phase: "beta"}) {
		t.Fatalf("point 1: %+v", pts[1])
	}
	if in.Crashed() {
		t.Fatal("census injector must never crash")
	}
}

// TestLieArmsOnSyncThenCrashes: under StyleLie the crashing sync (and every
// later one) acknowledges without durability, and the hard crash follows
// within a bounded number of ops.
func TestLieArmsOnSyncThenCrashes(t *testing.T) {
	in := NewInjector(Schedule{Seed: 3, CrashAt: 4, Style: StyleLie})
	ops := []Op{OpWALWrite, OpWALWrite, OpWALWrite, OpWALSync}
	decs := drive(in, ops)
	if decs[3] != decLie {
		t.Fatalf("crashing sync: got %v, want decLie", decs[3])
	}
	if !in.Lied() {
		t.Fatal("Lied() false after lie armed")
	}
	crashedAt := -1
	for i := 0; i < 12; i++ {
		d := in.begin(OpWALSync)
		if d == decCrash {
			crashedAt = i
			break
		}
		if d != decLie {
			t.Fatalf("sync %d during lie window: got %v, want decLie", i, d)
		}
	}
	if crashedAt < 0 {
		t.Fatal("lie window never ended in a crash")
	}
}

// TestTornDegradesOnNonWrite: a torn-style crash point landing on a
// non-write op falls back to a clean crash.
func TestTornDegradesOnNonWrite(t *testing.T) {
	in := NewInjector(Schedule{Seed: 3, CrashAt: 1, Style: StyleTorn})
	if d := in.begin(OpDiskSync); d != decCrash {
		t.Fatalf("torn at sync: got %v, want decCrash", d)
	}
}

// TestWALFileCrashKeepsDurablePrefix: after a crash the log file holds its
// durable prefix intact plus at most the unsynced tail.
func TestWALFileCrashKeepsDurablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Schedule{Seed: 11, CrashAt: 1000})
	var wf wal.File = WrapWAL(in)(f)

	durable := bytes.Repeat([]byte{0xAA}, 100)
	if _, err := wf.Write(durable); err != nil {
		t.Fatal(err)
	}
	if err := wf.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write(bytes.Repeat([]byte{0xBB}, 50)); err != nil {
		t.Fatal(err)
	}
	in.Crash()

	if _, err := wf.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v, want ErrCrashed", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 100 || len(got) > 150 {
		t.Fatalf("post-crash length %d, want within [100,150]", len(got))
	}
	if !bytes.Equal(got[:100], durable) {
		t.Fatal("durable prefix corrupted by crash")
	}
	for _, b := range got[100:] {
		if b != 0xBB {
			t.Fatalf("unsynced tail holds foreign byte %#x", b)
		}
	}
}

// TestWALFileShortWrite: the injected transient error writes exactly half
// the buffer and reports ErrInjected.
func TestWALFileShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Schedule{Seed: 11})
	wf := WrapWAL(in)(f)
	in.FailAt(OpWALWrite, 1)
	n, err := wf.Write(bytes.Repeat([]byte{0xCC}, 64))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 32 {
		t.Fatalf("short write wrote %d bytes, want 32", n)
	}
	st, _ := os.Stat(path)
	if st.Size() != 32 {
		t.Fatalf("file holds %d bytes, want 32", st.Size())
	}
}

// TestDiskCrashModel: an unsynced page write ends the crash in one of the
// three modelled states — survived, reverted to the synced image, or torn
// half-and-half — and never anything else.
func TestDiskCrashModel(t *testing.T) {
	outcomes := make(map[string]bool)
	for seed := int64(0); seed < 12; seed++ {
		path := filepath.Join(t.TempDir(), "d.kdb")
		dm, err := storage.OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		in := NewInjector(Schedule{Seed: seed, CrashAt: 100000})
		d := WrapDisk(in, path)(dm)

		id, err := d.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		v1 := pageWithRecord(bytes.Repeat([]byte{0x11}, 512))
		if err := d.WritePage(id, v1); err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		v2 := pageWithRecord(bytes.Repeat([]byte{0x22}, 512))
		if err := d.WritePage(id, v2); err != nil {
			t.Fatal(err)
		}
		in.Crash()

		if err := d.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("sync after crash: %v, want ErrCrashed", err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := raw[int(id)*storage.PageSize : (int(id)+1)*storage.PageSize]
		half := storage.PageSize / 2
		v1b, v2b := sealedBytes(v1), sealedBytes(v2)
		torn := append(append([]byte(nil), v2b[:half]...), v1b[half:]...)
		switch {
		case bytes.Equal(got, v2b):
			outcomes["survived"] = true
		case bytes.Equal(got, v1b):
			outcomes["reverted"] = true
		case bytes.Equal(got, torn):
			outcomes["torn"] = true
		default:
			t.Fatalf("seed %d: page in a state outside the crash model", seed)
		}
	}
	// Across a dozen seeds all three outcomes should occur; if the RNG ever
	// stops covering them the model has degenerated.
	for _, o := range []string{"survived", "reverted", "torn"} {
		if !outcomes[o] {
			t.Fatalf("outcome %q never produced across seeds", o)
		}
	}
}

func pageWithRecord(rec []byte) *storage.Page {
	var p storage.Page
	p.Init(storage.PageTypeHeap)
	if _, err := p.Insert(rec); err != nil {
		panic(err)
	}
	return &p
}

func sealedBytes(p *storage.Page) []byte {
	p.Seal()
	return append([]byte(nil), p.Bytes()...)
}
