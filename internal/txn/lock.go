// Package txn implements kimdb's concurrency control: a hierarchical
// granularity lock manager (database → class → instance) with intention
// modes, strict two-phase locking and waits-for deadlock detection —
// the ORION transaction model of Garza & Kim (SIGMOD 1988), which the paper
// cites as the required extension of conventional concurrency control to
// the semantics of a class hierarchy (§3.2).
package txn

import (
	"errors"
	"fmt"
	"sync"

	"oodb/internal/model"
)

// Mode is a lock mode. The lattice and compatibility matrix are the
// classical granular-locking ones (IS < IX < SIX < X; S conflicts with IX).
type Mode int

// The lock modes.
const (
	IS Mode = iota
	IX
	S
	SIX
	X
)

// String returns the conventional mode name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible[a][b] reports whether a holder in mode a is compatible with a
// requester in mode b.
var compatible = [5][5]bool{
	IS:  {IS: true, IX: true, S: true, SIX: true, X: false},
	IX:  {IS: true, IX: true, S: false, SIX: false, X: false},
	S:   {IS: true, IX: false, S: true, SIX: false, X: false},
	SIX: {IS: true, IX: false, S: false, SIX: false, X: false},
	X:   {IS: false, IX: false, S: false, SIX: false, X: false},
}

// join[a][b] is the supremum of two modes: the weakest single mode that
// grants both (used for lock upgrades by re-request).
var join = [5][5]Mode{
	IS:  {IS: IS, IX: IX, S: S, SIX: SIX, X: X},
	IX:  {IS: IX, IX: IX, S: SIX, SIX: SIX, X: X},
	S:   {IS: S, IX: SIX, S: S, SIX: SIX, X: X},
	SIX: {IS: SIX, IX: SIX, S: SIX, SIX: SIX, X: X},
	X:   {IS: X, IX: X, S: X, SIX: X, X: X},
}

// ResKind is the granularity level of a lockable resource.
type ResKind int

// The lock granularities.
const (
	ResDatabase ResKind = iota
	ResClass
	ResInstance
)

// Resource names a lockable entity.
type Resource struct {
	Kind  ResKind
	Class model.ClassID // for ResClass and ResInstance
	OID   model.OID     // for ResInstance
}

// DatabaseRes returns the whole-database resource.
func DatabaseRes() Resource { return Resource{Kind: ResDatabase} }

// ClassRes returns the resource for a class.
func ClassRes(c model.ClassID) Resource { return Resource{Kind: ResClass, Class: c} }

// InstanceRes returns the resource for one object.
func InstanceRes(oid model.OID) Resource {
	return Resource{Kind: ResInstance, Class: oid.Class(), OID: oid}
}

func (r Resource) String() string {
	switch r.Kind {
	case ResDatabase:
		return "db"
	case ResClass:
		return fmt.Sprintf("class(%d)", r.Class)
	default:
		return fmt.Sprintf("obj(%s)", r.OID)
	}
}

// ErrDeadlock aborts the requesting transaction: granting its request
// would close a waits-for cycle. Callers must roll the transaction back.
var ErrDeadlock = errors.New("txn: deadlock detected; transaction chosen as victim")

// ErrTxnDone reports lock traffic from a finished transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

type waiter struct {
	txn  uint64
	mode Mode
	ch   chan error
}

type lockEntry struct {
	holders map[uint64]Mode
	queue   []*waiter
}

// LockManager is the central lock table. All methods are safe for
// concurrent use.
type LockManager struct {
	mu       sync.Mutex
	locks    map[Resource]*lockEntry
	held     map[uint64]map[Resource]Mode // per-txn holdings, for release
	pending  map[uint64]map[Resource]bool // per-txn queued requests
	waitsFor map[uint64]map[uint64]bool   // waits-for graph
}

// NewLockManager returns an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:    make(map[Resource]*lockEntry),
		held:     make(map[uint64]map[Resource]Mode),
		pending:  make(map[uint64]map[Resource]bool),
		waitsFor: make(map[uint64]map[uint64]bool),
	}
}

// Acquire obtains (or upgrades to) mode on res for txn, blocking while
// conflicting holders exist. It returns ErrDeadlock — without granting —
// if waiting would close a cycle; the caller must abort the transaction.
func (lm *LockManager) Acquire(txn uint64, res Resource, mode Mode) error {
	lm.mu.Lock()
	entry := lm.locks[res]
	if entry == nil {
		entry = &lockEntry{holders: make(map[uint64]Mode)}
		lm.locks[res] = entry
	}
	if cur, holds := entry.holders[txn]; holds {
		mode = join[cur][mode]
		if mode == cur {
			lm.mu.Unlock()
			return nil
		}
	}
	if lm.grantableLocked(entry, txn, mode) {
		lm.grantLocked(entry, txn, res, mode)
		lm.mu.Unlock()
		return nil
	}
	// Must wait. Record waits-for edges and check for a cycle first.
	blockers := lm.blockersLocked(entry, txn, mode)
	edges := lm.waitsFor[txn]
	if edges == nil {
		edges = make(map[uint64]bool)
		lm.waitsFor[txn] = edges
	}
	for _, b := range blockers {
		edges[b] = true
	}
	if lm.cycleLocked(txn) {
		delete(lm.waitsFor, txn)
		lm.mu.Unlock()
		return ErrDeadlock
	}
	w := &waiter{txn: txn, mode: mode, ch: make(chan error, 1)}
	pend := lm.pending[txn]
	if pend == nil {
		pend = make(map[Resource]bool)
		lm.pending[txn] = pend
	}
	pend[res] = true
	if _, upgrading := entry.holders[txn]; upgrading {
		// Upgrades go to the front so they cannot starve behind new
		// requests that conflict with the mode they already hold.
		entry.queue = append([]*waiter{w}, entry.queue...)
	} else {
		entry.queue = append(entry.queue, w)
	}
	lm.mu.Unlock()
	err := <-w.ch
	lm.mu.Lock()
	if pend := lm.pending[txn]; pend != nil {
		delete(pend, res)
		if len(pend) == 0 {
			delete(lm.pending, txn)
		}
	}
	lm.mu.Unlock()
	return err
}

// grantableLocked reports whether txn may take mode on entry right now.
func (lm *LockManager) grantableLocked(entry *lockEntry, txn uint64, mode Mode) bool {
	for holder, hm := range entry.holders {
		if holder == txn {
			continue
		}
		if !compatible[hm][mode] {
			return false
		}
	}
	// Fairness: a fresh (non-upgrade) request must also queue behind
	// existing waiters.
	if _, upgrading := entry.holders[txn]; !upgrading && len(entry.queue) > 0 {
		return false
	}
	return true
}

func (lm *LockManager) grantLocked(entry *lockEntry, txn uint64, res Resource, mode Mode) {
	entry.holders[txn] = mode
	h := lm.held[txn]
	if h == nil {
		h = make(map[Resource]Mode)
		lm.held[txn] = h
	}
	h[res] = mode
}

// blockersLocked lists the transactions txn would wait on: incompatible
// holders, plus — for a fresh request only — the queued waiters it lines
// up behind. An upgrader is prepended to the queue (see Acquire), so no
// queued waiter can ever block it: anything ahead of it is another
// upgrader, which necessarily also holds the resource and is already
// covered by the holder clause. Recording waiter edges for upgraders
// fabricated cycles — two S holders with one queued X waiter turned a
// plain S→X upgrade into a spurious deadlock (upgrader→waiter from the
// queue clause, waiter→upgrader from the holder clause) and aborted a
// transaction that only needed to wait for the other S holder to finish.
func (lm *LockManager) blockersLocked(entry *lockEntry, txn uint64, mode Mode) []uint64 {
	var out []uint64
	for holder, hm := range entry.holders {
		if holder != txn && !compatible[hm][mode] {
			out = append(out, holder)
		}
	}
	if _, upgrading := entry.holders[txn]; !upgrading {
		for _, w := range entry.queue {
			if w.txn != txn {
				out = append(out, w.txn)
			}
		}
	}
	return out
}

// cycleLocked reports whether start can reach itself in the waits-for
// graph.
func (lm *LockManager) cycleLocked(start uint64) bool {
	seen := make(map[uint64]bool)
	var stack []uint64
	for t := range lm.waitsFor[start] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for n := range lm.waitsFor[t] {
			stack = append(stack, n)
		}
	}
	return false
}

// ReleaseAll drops every lock txn holds and cancels its queued requests
// (strict 2PL: locks are released only at commit/abort).
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waitsFor, txn)
	// Cancel queued requests first (a transaction aborted while blocked
	// may be queued on resources it does not hold).
	for res := range lm.pending[txn] {
		entry := lm.locks[res]
		if entry == nil {
			continue
		}
		kept := entry.queue[:0]
		for _, w := range entry.queue {
			if w.txn == txn {
				w.ch <- ErrTxnDone
			} else {
				kept = append(kept, w)
			}
		}
		entry.queue = kept
		lm.wakeLocked(res, entry)
		if len(entry.holders) == 0 && len(entry.queue) == 0 {
			delete(lm.locks, res)
		}
	}
	delete(lm.pending, txn)
	for res := range lm.held[txn] {
		entry := lm.locks[res]
		if entry == nil {
			continue
		}
		delete(entry.holders, txn)
		// Cancel queued requests from this txn (aborted while waiting).
		kept := entry.queue[:0]
		for _, w := range entry.queue {
			if w.txn == txn {
				w.ch <- ErrTxnDone
			} else {
				kept = append(kept, w)
			}
		}
		entry.queue = kept
		lm.wakeLocked(res, entry)
		if len(entry.holders) == 0 && len(entry.queue) == 0 {
			delete(lm.locks, res)
		}
	}
	delete(lm.held, txn)
	// Remove edges pointing at txn from every waiter.
	for _, edges := range lm.waitsFor {
		delete(edges, txn)
	}
}

// wakeLocked grants queued requests in FIFO order until the head cannot be
// granted.
func (lm *LockManager) wakeLocked(res Resource, entry *lockEntry) {
	for len(entry.queue) > 0 {
		w := entry.queue[0]
		mode := w.mode
		if cur, holds := entry.holders[w.txn]; holds {
			mode = join[cur][mode]
		}
		granted := true
		for holder, hm := range entry.holders {
			if holder != w.txn && !compatible[hm][mode] {
				granted = false
				break
			}
		}
		if !granted {
			return
		}
		entry.queue = entry.queue[1:]
		lm.grantLocked(entry, w.txn, res, mode)
		delete(lm.waitsFor, w.txn)
		w.ch <- nil
	}
}

// Holding returns the mode txn holds on res (ok false if none). Intended
// for tests and assertions.
func (lm *LockManager) Holding(txn uint64, res Resource) (Mode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	m, ok := lm.held[txn][res]
	return m, ok
}

// LockInstanceRead takes the standard hierarchy for reading one object:
// IS on the database, IS on the object's class, S on the instance.
func (lm *LockManager) LockInstanceRead(txn uint64, oid model.OID) error {
	if err := lm.Acquire(txn, DatabaseRes(), IS); err != nil {
		return err
	}
	if err := lm.Acquire(txn, ClassRes(oid.Class()), IS); err != nil {
		return err
	}
	return lm.Acquire(txn, InstanceRes(oid), S)
}

// LockInstanceWrite takes IX on the database and class and X on the
// instance.
func (lm *LockManager) LockInstanceWrite(txn uint64, oid model.OID) error {
	if err := lm.Acquire(txn, DatabaseRes(), IX); err != nil {
		return err
	}
	if err := lm.Acquire(txn, ClassRes(oid.Class()), IX); err != nil {
		return err
	}
	return lm.Acquire(txn, InstanceRes(oid), X)
}

// LockClassRead takes a shared lock on a whole class (a class scan): IS on
// the database, S on the class. Instance locks become unnecessary under it.
func (lm *LockManager) LockClassRead(txn uint64, class model.ClassID) error {
	if err := lm.Acquire(txn, DatabaseRes(), IS); err != nil {
		return err
	}
	return lm.Acquire(txn, ClassRes(class), S)
}

// LockClassWrite takes an exclusive lock on a whole class (DDL, bulk
// load): IX on the database, X on the class.
func (lm *LockManager) LockClassWrite(txn uint64, class model.ClassID) error {
	if err := lm.Acquire(txn, DatabaseRes(), IX); err != nil {
		return err
	}
	return lm.Acquire(txn, ClassRes(class), X)
}

// LockHierarchyRead locks a class and all the given descendants shared —
// the lock footprint of a class-hierarchy query (Garza-Kim: a query whose
// scope is the hierarchy rooted at C locks every class in that hierarchy).
func (lm *LockManager) LockHierarchyRead(txn uint64, classes []model.ClassID) error {
	if err := lm.Acquire(txn, DatabaseRes(), IS); err != nil {
		return err
	}
	for _, c := range classes {
		if err := lm.Acquire(txn, ClassRes(c), S); err != nil {
			return err
		}
	}
	return nil
}
