package txn

import (
	"errors"
	"testing"
	"time"

	"oodb/internal/model"
)

// waitQueued polls until txn has a pending (queued) request on res, or
// fails the test after a deadline. In-package so it can watch the pending
// map directly instead of sleeping and hoping.
func waitQueued(t *testing.T, lm *LockManager, txn uint64, res Resource) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lm.mu.Lock()
		queued := lm.pending[txn][res]
		lm.mu.Unlock()
		if queued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("txn %d never queued on %v", txn, res)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestUpgradeUpgradeDeadlockPrompt pins the upgrade-upgrade deadlock:
// two S holders that both request X can never both proceed — each waits
// for the other to release S. The manager must detect the cycle the
// moment the second upgrader requests (not via timeout or starvation),
// and the victim is deterministic: the requester that closes the cycle,
// i.e. the second upgrader.
func TestUpgradeUpgradeDeadlockPrompt(t *testing.T) {
	lm := NewLockManager()
	res := ClassRes(model.ClassID(7))
	if err := lm.Acquire(1, res, S); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, res, S); err != nil {
		t.Fatal(err)
	}

	// First upgrader blocks waiting for txn 2's S to go away.
	firstErr := make(chan error, 1)
	go func() { firstErr <- lm.Acquire(1, res, X) }()
	waitQueued(t, lm, 1, res)

	// Second upgrader closes the cycle and must be the victim, now.
	start := time.Now()
	err := lm.Acquire(2, res, X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader got %v, want ErrDeadlock", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadlock detection took %v; must be immediate, not timeout-driven", d)
	}

	// The victim aborts; the survivor's upgrade is granted.
	lm.ReleaseAll(2)
	if err := <-firstErr; err != nil {
		t.Fatalf("surviving upgrader got %v, want grant", err)
	}
	if m, ok := lm.Holding(1, res); !ok || m != X {
		t.Fatalf("survivor holds %v %v, want X", m, ok)
	}
	lm.ReleaseAll(1)
}

// TestUpgradeNotDeadlockedByQueuedWaiter is the regression for the
// fairness-rule interaction: with T1 and T2 holding S and T3 queued for
// X, T1's S→X upgrade used to record a waits-for edge on T3 (a queued
// waiter that cannot block the front-of-queue upgrader) while T3 already
// had an edge on holder T1 — a fabricated T1→T3→T1 cycle that aborted T1
// for no reason. The upgrade must simply wait for T2 and win.
func TestUpgradeNotDeadlockedByQueuedWaiter(t *testing.T) {
	lm := NewLockManager()
	res := ClassRes(model.ClassID(9))
	if err := lm.Acquire(1, res, S); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, res, S); err != nil {
		t.Fatal(err)
	}

	// T3: fresh X request, queues behind the two S holders.
	thirdErr := make(chan error, 1)
	go func() { thirdErr <- lm.Acquire(3, res, X) }()
	waitQueued(t, lm, 3, res)

	// T1 upgrades S→X. Only T2 actually blocks it; ErrDeadlock here is
	// the bug this test pins.
	upErr := make(chan error, 1)
	go func() { upErr <- lm.Acquire(1, res, X) }()
	waitQueued(t, lm, 1, res)
	select {
	case err := <-upErr:
		t.Fatalf("upgrade returned early with %v; it should wait for T2", err)
	default:
	}

	// T2 finishes: the upgrader (queue front) is granted before T3.
	lm.ReleaseAll(2)
	if err := <-upErr; err != nil {
		t.Fatalf("upgrader got %v, want grant", err)
	}
	if m, ok := lm.Holding(1, res); !ok || m != X {
		t.Fatalf("upgrader holds %v %v, want X", m, ok)
	}
	select {
	case err := <-thirdErr:
		t.Fatalf("queued X waiter resolved with %v while X is held", err)
	default:
	}

	// And the queued waiter still gets its turn afterwards.
	lm.ReleaseAll(1)
	if err := <-thirdErr; err != nil {
		t.Fatalf("queued waiter got %v, want grant", err)
	}
	lm.ReleaseAll(3)
}
