package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oodb/internal/model"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the classical matrix.
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{IS, IS, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, IS, true},
		{S, S, true}, {S, IX, false}, {S, IS, true},
		{SIX, IS, true}, {SIX, S, false}, {SIX, IX, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		if compatible[c.a][c.b] != c.ok {
			t.Errorf("compatible[%v][%v] = %v, want %v", c.a, c.b, compatible[c.a][c.b], c.ok)
		}
	}
}

func TestJoinLattice(t *testing.T) {
	if join[S][IX] != SIX || join[IX][S] != SIX {
		t.Error("S join IX should be SIX")
	}
	if join[IS][IX] != IX {
		t.Error("IS join IX should be IX")
	}
	if join[SIX][X] != X {
		t.Error("SIX join X should be X")
	}
	// Join is idempotent and monotone.
	for a := IS; a <= X; a++ {
		if join[a][a] != a {
			t.Errorf("join[%v][%v] != %v", a, a, a)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	if err := lm.LockInstanceRead(1, oid); err != nil {
		t.Fatal(err)
	}
	if err := lm.LockInstanceRead(2, oid); err != nil {
		t.Fatal(err)
	}
	if m, ok := lm.Holding(1, InstanceRes(oid)); !ok || m != S {
		t.Errorf("txn1 holding = %v %v", m, ok)
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	if err := lm.LockInstanceWrite(1, oid); err != nil {
		t.Fatal(err)
	}
	var got atomic.Int32
	done := make(chan struct{})
	go func() {
		if err := lm.LockInstanceWrite(2, oid); err != nil {
			t.Error(err)
		}
		got.Store(1)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("writer acquired lock while held exclusively")
	}
	lm.ReleaseAll(1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woken")
	}
}

func TestIntentionConflictClassLevel(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	// Writer holds IX on the class; a class-level S (scan) must wait, but
	// another instance write in the same class proceeds.
	if err := lm.LockInstanceWrite(1, oid); err != nil {
		t.Fatal(err)
	}
	if err := lm.LockInstanceWrite(2, model.MakeOID(20, 2)); err != nil {
		t.Fatal(err)
	}
	scanDone := make(chan error, 1)
	go func() { scanDone <- lm.LockClassRead(3, 20) }()
	select {
	case err := <-scanDone:
		t.Fatalf("class scan acquired S under IX holders: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}
}

func TestClassScanBlocksWriters(t *testing.T) {
	lm := NewLockManager()
	if err := lm.LockClassRead(1, 20); err != nil {
		t.Fatal(err)
	}
	// A reader of one instance coexists (IS vs S at class level).
	if err := lm.LockInstanceRead(2, model.MakeOID(20, 5)); err != nil {
		t.Fatal(err)
	}
	// A writer must wait.
	done := make(chan error, 1)
	go func() { done <- lm.LockInstanceWrite(3, model.MakeOID(20, 6)) }()
	select {
	case <-done:
		t.Fatal("writer acquired IX under class S")
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeSToX(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	if err := lm.LockInstanceRead(1, oid); err != nil {
		t.Fatal(err)
	}
	if err := lm.LockInstanceWrite(1, oid); err != nil {
		t.Fatal(err)
	}
	if m, _ := lm.Holding(1, InstanceRes(oid)); m != X {
		t.Errorf("after upgrade: %v", m)
	}
	// Class lock upgraded to IX as well (join of IS and IX).
	if m, _ := lm.Holding(1, ClassRes(20)); m != IX {
		t.Errorf("class mode = %v, want IX", m)
	}
}

func TestDeadlockDetected(t *testing.T) {
	lm := NewLockManager()
	a := model.MakeOID(20, 1)
	b := model.MakeOID(20, 2)
	if err := lm.LockInstanceWrite(1, a); err != nil {
		t.Fatal(err)
	}
	if err := lm.LockInstanceWrite(2, b); err != nil {
		t.Fatal(err)
	}
	// txn1 waits for b (held by txn2)...
	errs := make(chan error, 1)
	go func() { errs <- lm.LockInstanceWrite(1, b) }()
	time.Sleep(20 * time.Millisecond)
	// ...and txn2 requesting a closes the cycle: it must get ErrDeadlock
	// immediately, without blocking.
	err := lm.LockInstanceWrite(2, a)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	// Victim aborts; txn1 proceeds.
	lm.ReleaseAll(2)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Two readers both upgrading to X is the classic upgrade deadlock.
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	lm.LockInstanceRead(1, oid)
	lm.LockInstanceRead(2, oid)
	errs := make(chan error, 1)
	go func() { errs <- lm.Acquire(1, InstanceRes(oid), X) }()
	time.Sleep(20 * time.Millisecond)
	err := lm.Acquire(2, InstanceRes(oid), X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	lm.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestAbortWhileWaiting(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	lm.LockInstanceWrite(1, oid)
	errs := make(chan error, 1)
	go func() { errs <- lm.LockInstanceWrite(2, oid) }()
	time.Sleep(20 * time.Millisecond)
	// txn2 aborts while queued; but ReleaseAll(2) needs txn2 in held map.
	// It holds DB IX and class IX from the helper, so ReleaseAll reaches
	// the queue and cancels the instance request.
	lm.ReleaseAll(2)
	select {
	case err := <-errs:
		if !errors.Is(err, ErrTxnDone) {
			t.Fatalf("expected ErrTxnDone, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter never signaled")
	}
	lm.ReleaseAll(1)
}

func TestFIFOFairness(t *testing.T) {
	// A stream of readers must not starve a queued writer: once the writer
	// queues, later read requests queue behind it.
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	lm.LockInstanceRead(1, oid)
	writerDone := make(chan error, 1)
	go func() { writerDone <- lm.Acquire(2, InstanceRes(oid), X) }()
	time.Sleep(20 * time.Millisecond)
	readerDone := make(chan error, 1)
	go func() { readerDone <- lm.Acquire(3, InstanceRes(oid), S) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("late reader jumped the queued writer")
	default:
	}
	lm.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	lm := NewLockManager()
	oid := model.MakeOID(20, 1)
	var inCrit atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			if err := lm.LockInstanceWrite(txn, oid); err != nil {
				t.Error(err)
				return
			}
			n := inCrit.Add(1)
			if n > maxSeen.Load() {
				maxSeen.Store(n)
			}
			time.Sleep(time.Millisecond)
			inCrit.Add(-1)
			lm.ReleaseAll(txn)
		}(uint64(i + 1))
	}
	wg.Wait()
	if maxSeen.Load() != 1 {
		t.Fatalf("%d writers in critical section simultaneously", maxSeen.Load())
	}
}

func TestHierarchyReadLocksAllClasses(t *testing.T) {
	lm := NewLockManager()
	classes := []model.ClassID{20, 21, 22}
	if err := lm.LockHierarchyRead(1, classes); err != nil {
		t.Fatal(err)
	}
	for _, c := range classes {
		if m, ok := lm.Holding(1, ClassRes(c)); !ok || m != S {
			t.Errorf("class %d mode = %v %v", c, m, ok)
		}
	}
	// DDL on a subclass (class X) must wait even though the query targeted
	// the root — the Garza-Kim hierarchy-locking property.
	done := make(chan error, 1)
	go func() { done <- lm.LockClassWrite(2, 22) }()
	select {
	case <-done:
		t.Fatal("DDL acquired X under hierarchy S locks")
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllIsIdempotent(t *testing.T) {
	lm := NewLockManager()
	lm.LockInstanceWrite(1, model.MakeOID(20, 1))
	lm.ReleaseAll(1)
	lm.ReleaseAll(1) // must not panic
	// Resource map is cleaned up.
	lm.mu.Lock()
	n := len(lm.locks)
	lm.mu.Unlock()
	if n != 0 {
		t.Errorf("%d lock entries leak after release", n)
	}
}
