package bench

import (
	"os"
	"testing"

	"oodb"
)

func openDB(t *testing.T) *oodb.DB {
	t.Helper()
	dir, err := os.MkdirTemp("", "bench-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	db, err := oodb.Open(dir, oodb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestBuildHierarchyShape(t *testing.T) {
	db := openDB(t)
	h, err := BuildHierarchy(db, 3, 3, 10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 3 + 9 = 13 classes.
	if len(h.Classes) != 13 {
		t.Fatalf("classes = %d", len(h.Classes))
	}
	res, err := db.Query(`SELECT * FROM H0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 130 {
		t.Fatalf("rows = %d, want 130", len(res.Rows))
	}
	// Both index organizations build and agree with a scan.
	if err := h.IndexCH(db); err != nil {
		t.Fatal(err)
	}
	if err := h.IndexPerClass(db); err != nil {
		t.Fatal(err)
	}
	scanTotal := 0
	for k := 0; k < 100; k++ {
		res, err := db.Query(`SELECT * FROM H0 WHERE val = ` + itoa(k))
		if err != nil {
			t.Fatal(err)
		}
		scanTotal += len(res.Rows)
	}
	if scanTotal != 130 {
		t.Fatalf("value histogram sums to %d, want 130", scanTotal)
	}
}

func TestBuildVehicleWorldShape(t *testing.T) {
	db := openDB(t)
	w, err := BuildVehicleWorld(db, 10, 50, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Companies) != 10 || len(w.Vehicles) != 50 {
		t.Fatalf("built %d companies, %d vehicles", len(w.Companies), len(w.Vehicles))
	}
	// Every vehicle has a manufacturer with a resolvable location.
	res, err := db.Query(`SELECT vid FROM Vehicle WHERE manufacturer = null`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("%d vehicles without manufacturer", len(res.Rows))
	}
	// The three-level path resolves.
	if _, err := db.Query(`SELECT * FROM Vehicle WHERE manufacturer.division.city = 'City0'`); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPartsAndTraversals(t *testing.T) {
	db := openDB(t)
	p, err := BuildParts(db, 200, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.OIDs) != 200 {
		t.Fatalf("parts = %d", len(p.OIDs))
	}
	ws := db.NewWorkspace()
	n1, err := Traverse(ws, p.OIDs[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := TraverseFetch(db, p.OIDs[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("workspace traversal visited %d, fetch traversal %d", n1, n2)
	}
	// Depth 4 with 3 connections: 1 + 3 + 9 + 27 = 40 visits.
	if n1 != 40 {
		t.Fatalf("visits = %d, want 40", n1)
	}

	rp, err := BuildRelParts(200, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	n3, err := rp.TraverseRel(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 40 {
		t.Fatalf("relational visits = %d, want 40 (same graph shape)", n3)
	}
	if rp.Part.Len() != 200 || rp.Conn.Len() != 600 {
		t.Fatalf("relational sizes: %d parts, %d conns", rp.Part.Len(), rp.Conn.Len())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
