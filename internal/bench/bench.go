// Package bench provides the workload generators and measured operations
// behind kimdb's benchmark harness (DESIGN.md §7). Three workload families
// cover the paper's quantitative claims:
//
//   - synthetic class hierarchies (fanout × depth, instances per class,
//     a shared integer attribute) for the indexing experiments E1/E8;
//   - the paper's Figure 1 vehicle/company schema, scaled, for the
//     nested-attribute experiments E2;
//   - an OO1-style parts database (Cattell's benchmark, [RUBE87], which
//     §5.6 endorses as the right shape for OODB measurement: lookup,
//     traversal, insert over a connection graph), built identically in
//     the object engine and the relational baseline so E3/E4 compare
//     access paths, not data.
package bench

import (
	"fmt"
	"math/rand"

	"oodb"
	"oodb/internal/model"
	"oodb/internal/relational"
)

// Hierarchy describes a generated class hierarchy.
type Hierarchy struct {
	Root     string
	Classes  []string // all classes, root first
	PerClass int
	ValRange int
}

// BuildHierarchy creates a class tree "H0" rooted hierarchy with the given
// fanout and depth (depth 1 = root only), an integer attribute "val" on
// the root, and perClass instances per class with val uniform in
// [0, valRange).
func BuildHierarchy(db *oodb.DB, fanout, depth, perClass, valRange int, seed int64) (*Hierarchy, error) {
	h := &Hierarchy{Root: "H0", PerClass: perClass, ValRange: valRange}
	if _, err := db.DefineClass("H0", nil,
		oodb.Attr{Name: "val", Domain: "Integer"},
		oodb.Attr{Name: "tag", Domain: "String"},
	); err != nil {
		return nil, err
	}
	h.Classes = append(h.Classes, "H0")
	level := []string{"H0"}
	n := 1
	for d := 1; d < depth; d++ {
		var next []string
		for _, parent := range level {
			for f := 0; f < fanout; f++ {
				name := fmt.Sprintf("H%d", n)
				n++
				if _, err := db.DefineClass(name, []string{parent}); err != nil {
					return nil, err
				}
				h.Classes = append(h.Classes, name)
				next = append(next, name)
			}
		}
		level = next
	}
	r := rand.New(rand.NewSource(seed))
	for _, class := range h.Classes {
		err := db.Do(func(tx *oodb.Tx) error {
			for i := 0; i < perClass; i++ {
				if _, err := tx.Insert(class, oodb.Attrs{
					"val": oodb.Int(int64(r.Intn(valRange))),
					"tag": oodb.String(class),
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// IndexPerClass builds one single-class index per hierarchy class on
// "val" (the baseline organization of E1).
func (h *Hierarchy) IndexPerClass(db *oodb.DB) error {
	for _, class := range h.Classes {
		if err := db.CreateIndex("sc_"+class, class, []string{"val"}, false); err != nil {
			return err
		}
	}
	return nil
}

// IndexCH builds one class-hierarchy index on "val" over the whole
// hierarchy.
func (h *Hierarchy) IndexCH(db *oodb.DB) error {
	return db.CreateIndex("ch_val", h.Root, []string{"val"}, true)
}

// VehicleWorld is a scaled Figure 1 database.
type VehicleWorld struct {
	Companies []oodb.OID
	Vehicles  []oodb.OID
	Cities    int
}

// BuildVehicleWorld creates the Figure 1 schema (Company hierarchy,
// Vehicle hierarchy, Vehicle.manufacturer -> Company, Company.division ->
// Division for 3-level paths) with nCompanies companies spread over
// `cities` cities and nVehicles vehicles.
func BuildVehicleWorld(db *oodb.DB, nCompanies, nVehicles, cities int, seed int64) (*VehicleWorld, error) {
	w := &VehicleWorld{Cities: cities}
	if _, err := db.DefineClass("Division", nil,
		oodb.Attr{Name: "city", Domain: "String"},
	); err != nil {
		return nil, err
	}
	if _, err := db.DefineClass("Company", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "location", Domain: "String"},
		oodb.Attr{Name: "division", Domain: "Division"},
	); err != nil {
		return nil, err
	}
	for _, sub := range []string{"AutoCompany", "TruckCompany"} {
		if _, err := db.DefineClass(sub, []string{"Company"}); err != nil {
			return nil, err
		}
	}
	if _, err := db.DefineClass("Vehicle", nil,
		oodb.Attr{Name: "vid", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
		oodb.Attr{Name: "manufacturer", Domain: "Company"},
	); err != nil {
		return nil, err
	}
	for _, sub := range []string{"Automobile", "Truck"} {
		if _, err := db.DefineClass(sub, []string{"Vehicle"}); err != nil {
			return nil, err
		}
	}
	r := rand.New(rand.NewSource(seed))
	companyClasses := []string{"Company", "AutoCompany", "TruckCompany"}
	err := db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < nCompanies; i++ {
			div, err := tx.Insert("Division", oodb.Attrs{
				"city": oodb.String(fmt.Sprintf("City%d", r.Intn(cities))),
			})
			if err != nil {
				return err
			}
			oid, err := tx.Insert(companyClasses[i%len(companyClasses)], oodb.Attrs{
				"name":     oodb.String(fmt.Sprintf("Co%d", i)),
				"location": oodb.String(fmt.Sprintf("City%d", r.Intn(cities))),
				"division": oodb.Ref(div),
			})
			if err != nil {
				return err
			}
			w.Companies = append(w.Companies, oid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	vehicleClasses := []string{"Vehicle", "Automobile", "Truck"}
	const batch = 500
	for start := 0; start < nVehicles; start += batch {
		end := start + batch
		if end > nVehicles {
			end = nVehicles
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for i := start; i < end; i++ {
				oid, err := tx.Insert(vehicleClasses[i%len(vehicleClasses)], oodb.Attrs{
					"vid":          oodb.String(fmt.Sprintf("v%d", i)),
					"weight":       oodb.Int(int64(1000 + r.Intn(9000))),
					"manufacturer": oodb.Ref(w.Companies[r.Intn(len(w.Companies))]),
				})
				if err != nil {
					return err
				}
				w.Vehicles = append(w.Vehicles, oid)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Parts is an OO1-style parts database in the object engine.
type Parts struct {
	OIDs []oodb.OID
	Conn int
}

// BuildParts creates nParts Part objects, each with integer fields x, y,
// a string type, and `conn` outgoing connections to other parts. Per OO1,
// connections exhibit locality: 90% connect to one of the 1% nearest
// parts by id.
func BuildParts(db *oodb.DB, nParts, conn int, seed int64) (*Parts, error) {
	if _, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "pid", Domain: "Integer"},
		oodb.Attr{Name: "x", Domain: "Integer"},
		oodb.Attr{Name: "y", Domain: "Integer"},
		oodb.Attr{Name: "ptype", Domain: "String"},
		oodb.Attr{Name: "to", Domain: "Part", SetValued: true},
	); err != nil {
		return nil, err
	}
	p := &Parts{Conn: conn}
	r := rand.New(rand.NewSource(seed))
	const batch = 500
	for start := 0; start < nParts; start += batch {
		end := start + batch
		if end > nParts {
			end = nParts
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for i := start; i < end; i++ {
				oid, err := tx.Insert("Part", oodb.Attrs{
					"pid":   oodb.Int(int64(i)),
					"x":     oodb.Int(int64(r.Intn(100000))),
					"y":     oodb.Int(int64(r.Intn(100000))),
					"ptype": oodb.String(fmt.Sprintf("type%d", r.Intn(10))),
				})
				if err != nil {
					return err
				}
				p.OIDs = append(p.OIDs, oid)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Second pass: wire connections (OO1 locality).
	for start := 0; start < nParts; start += batch {
		end := start + batch
		if end > nParts {
			end = nParts
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for i := start; i < end; i++ {
				members := make([]oodb.Value, 0, conn)
				for c := 0; c < conn; c++ {
					members = append(members, oodb.Ref(p.OIDs[connTarget(r, i, nParts)]))
				}
				if err := tx.Update(p.OIDs[i], oodb.Attrs{"to": oodb.SetOf(members...)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// connTarget picks an OO1-style connection target: 90% within the 1%
// nearest ids, 10% uniform.
func connTarget(r *rand.Rand, from, n int) int {
	if r.Intn(10) == 0 {
		return r.Intn(n)
	}
	window := n / 100
	if window < 10 {
		window = 10
	}
	t := from + r.Intn(2*window+1) - window
	if t < 0 {
		t += n
	}
	if t >= n {
		t -= n
	}
	return t
}

// Traverse walks the connection graph depth levels deep from root through
// the workspace (swizzled navigation), returning the number of parts
// visited.
func Traverse(ws *oodb.Workspace, root oodb.OID, depth int) (int, error) {
	visited := 0
	var walk func(oid oodb.OID, d int) error
	walk = func(oid oodb.OID, d int) error {
		d--
		desc, err := ws.Fetch(oid)
		if err != nil {
			return err
		}
		visited++
		if d == 0 {
			return nil
		}
		targets, err := desc.DerefSet("to")
		if err != nil {
			return err
		}
		for _, t := range targets {
			if err := walk(t.OID(), d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, depth); err != nil {
		return 0, err
	}
	return visited, nil
}

// TraverseFetch is the same walk performed with a database fetch per
// object (no workspace, no swizzling) — the per-access cost the paper
// calls an order of magnitude above a memory lookup.
func TraverseFetch(db *oodb.DB, root oodb.OID, depth int) (int, error) {
	visited := 0
	var walk func(oid oodb.OID, d int) error
	walk = func(oid oodb.OID, d int) error {
		d--
		obj, err := db.Fetch(oid)
		if err != nil {
			return err
		}
		visited++
		if d == 0 {
			return nil
		}
		to, err := db.Get(obj, "to")
		if err != nil {
			return err
		}
		members, _ := to.AsSet()
		for _, m := range members {
			ref, ok := m.AsRef()
			if !ok {
				continue
			}
			if err := walk(ref, d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, depth); err != nil {
		return 0, err
	}
	return visited, nil
}

// RelParts is the same parts database in the relational baseline: a part
// relation plus a connection relation, joined by part id.
type RelParts struct {
	DB   *relational.DB
	Part *relational.Relation
	Conn *relational.Relation
	N    int
}

// BuildRelParts mirrors BuildParts relationally with indexes on the join
// columns (part.id and conn.from) — the favorable configuration for the
// relational side.
func BuildRelParts(nParts, conn int, seed int64) (*RelParts, error) {
	rdb := relational.NewDB()
	part, err := rdb.Create("part", "id", "x", "y", "ptype")
	if err != nil {
		return nil, err
	}
	connRel, err := rdb.Create("conn", "from", "to")
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < nParts; i++ {
		if _, err := part.Insert(
			model.Int(int64(i)),
			model.Int(int64(r.Intn(100000))),
			model.Int(int64(r.Intn(100000))),
			model.String(fmt.Sprintf("type%d", r.Intn(10))),
		); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nParts; i++ {
		for c := 0; c < conn; c++ {
			if _, err := connRel.Insert(
				model.Int(int64(i)),
				model.Int(int64(connTarget(r, i, nParts))),
			); err != nil {
				return nil, err
			}
		}
	}
	if err := part.CreateIndex("id"); err != nil {
		return nil, err
	}
	if err := connRel.CreateIndex("from"); err != nil {
		return nil, err
	}
	return &RelParts{DB: rdb, Part: part, Conn: connRel, N: nParts}, nil
}

// TraverseRel performs the same depth-limited traversal with joins: each
// hop is an index lookup on conn.from followed by an index lookup on
// part.id (index nested-loop join, the relational system's best case for
// this access pattern).
func (rp *RelParts) TraverseRel(root int64, depth int) (int, error) {
	visited := 0
	var walk func(id int64, d int) error
	walk = func(id int64, d int) error {
		d--
		rows, err := rp.Part.SelectEq("id", model.Int(id))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil
		}
		visited++
		if d == 0 {
			return nil
		}
		crows, err := rp.Conn.SelectEq("from", model.Int(id))
		if err != nil {
			return err
		}
		for _, cr := range crows {
			tuple, err := rp.Conn.Get(cr)
			if err != nil {
				return err
			}
			to, _ := rp.Conn.Col(tuple, "to")
			tid, _ := to.AsInt()
			if err := walk(tid, d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, depth); err != nil {
		return 0, err
	}
	return visited, nil
}
