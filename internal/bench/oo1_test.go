package bench

import (
	"testing"

	"oodb"
)

// TestOO1Deterministic pins the property kimbench -oo1 relies on: the same
// (nParts, conn, noisePer, seed) tuple builds the identical graph in any
// directory — equal structural fingerprint and equal closure traversal —
// so separate builds can be compared as layouts of one logical database.
// A different seed must produce a different graph, or the fingerprint is
// not actually pinning anything.
func TestOO1Deterministic(t *testing.T) {
	build := func(seed int64) (*oodb.DB, *OO1) {
		db, err := oodb.Open(t.TempDir(), oodb.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		g, err := BuildOO1(db, 200, 3, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		return db, g
	}
	db1, g1 := build(17)
	db2, g2 := build(17)
	db3, g3 := build(18)

	h1, err := g1.GraphHash(db1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := g2.GraphHash(db2)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := g3.GraphHash(db3)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same seed, different graphs: %x vs %x", h1, h2)
	}
	if h1 == h3 {
		t.Fatalf("different seeds produced the same graph hash %x; fingerprint is vacuous", h1)
	}

	for _, root := range []int{0, 50, 199} {
		v1, c1, err := g1.Closure(db1, root)
		if err != nil {
			t.Fatal(err)
		}
		v2, c2, err := g2.Closure(db2, root)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 || c1 != c2 {
			t.Fatalf("root %d: same seed, different traversals: (%d,%x) vs (%d,%x)", root, v1, c1, v2, c2)
		}
	}

	// The generator must actually fragment: most of the segment's records
	// were noise and are dead, so occupancy is low before compaction.
	info, err := db1.Engine().SegmentInfo(mustClass(t, db1, "Part"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Occupancy > 0.55 {
		t.Fatalf("OO1 build left occupancy %.2f; the fragmented baseline is not fragmented", info.Occupancy)
	}
}

func mustClass(t *testing.T, db *oodb.DB, name string) (id oodb.ClassID) {
	t.Helper()
	cls, err := db.ClassByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cls.ID
}
