package bench

// OO1-style navigation workload for the clustering experiments (E17). The
// paper's §5 endorses the OO1 shape ([RUBE87]) for OODB measurement; this
// generator builds the part/connection graph so that *logical* locality
// (OO1's 90%-nearby connection rule) is deliberately decorrelated from
// *physical* placement: parts are inserted in seeded-shuffled pid order,
// interleaved with padded same-class noise objects that are then deleted.
// The result is a ~90%-dead, shuffled segment — the worst case a long-lived
// database converges to — on which the compactor's placement policies
// (internal/maint) have something real to win.
//
// Everything is driven by one seeded rand stream, so a given (nParts, conn,
// noisePer, seed) tuple reproduces the identical graph, byte for byte —
// pinned by the determinism test and relied on by kimbench -oo1, which
// builds the same graph in separate directories to compare layouts.
//
// Build order is load-bearing:
//
//  1. insert real parts (small) interleaved with noisePer padded noise
//     parts each, in shuffled pid order — physical order ⊥ pid locality;
//  2. delete every noise part — pages become mostly dead, leaving free
//     space in place;
//  3. wire connections with in-place updates — the heap only relocates an
//     update when its page is full, and step 2 guaranteed room, so wiring
//     does not disturb the shuffled layout.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"oodb"
)

// OO1 is a built OO1-style parts graph.
type OO1 struct {
	N        int        // real parts, pids 0..N-1
	Conn     int        // outgoing connections per part
	NoisePer int        // noise objects interleaved per real part (deleted)
	Parts    []oodb.OID // pid-indexed
}

// BuildOO1 builds the fragmented parts graph described in the package
// comment. Connections follow OO1 locality (connTarget: 90% within the 1%
// nearest pids, 10% uniform).
func BuildOO1(db *oodb.DB, nParts, conn, noisePer int, seed int64) (*OO1, error) {
	if _, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "pid", Domain: "Integer"},
		oodb.Attr{Name: "x", Domain: "Integer"},
		oodb.Attr{Name: "y", Domain: "Integer"},
		oodb.Attr{Name: "ptype", Domain: "String"},
		oodb.Attr{Name: "pad", Domain: "String"},
		oodb.Attr{Name: "to", Domain: "Part", SetValued: true},
	); err != nil {
		return nil, err
	}
	g := &OO1{N: nParts, Conn: conn, NoisePer: noisePer, Parts: make([]oodb.OID, nParts)}
	r := rand.New(rand.NewSource(seed))
	order := r.Perm(nParts)
	pad := strings.Repeat("n", 220)
	noise := make([]oodb.OID, 0, nParts*noisePer)
	const batch = 500
	for lo := 0; lo < nParts; lo += batch {
		hi := lo + batch
		if hi > nParts {
			hi = nParts
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for k := lo; k < hi; k++ {
				pid := order[k]
				oid, err := tx.Insert("Part", oodb.Attrs{
					"pid":   oodb.Int(int64(pid)),
					"x":     oodb.Int(int64(r.Intn(100000))),
					"y":     oodb.Int(int64(r.Intn(100000))),
					"ptype": oodb.String(fmt.Sprintf("type%d", r.Intn(10))),
					"pad":   oodb.String(""),
				})
				if err != nil {
					return err
				}
				g.Parts[pid] = oid
				for j := 0; j < noisePer; j++ {
					noid, err := tx.Insert("Part", oodb.Attrs{
						"pid":   oodb.Int(-1),
						"x":     oodb.Int(0),
						"y":     oodb.Int(0),
						"ptype": oodb.String("noise"),
						"pad":   oodb.String(pad),
					})
					if err != nil {
						return err
					}
					noise = append(noise, noid)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for lo := 0; lo < len(noise); lo += batch {
		hi := lo + batch
		if hi > len(noise) {
			hi = len(noise)
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for _, oid := range noise[lo:hi] {
				if err := tx.Delete(oid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for lo := 0; lo < nParts; lo += batch {
		hi := lo + batch
		if hi > nParts {
			hi = nParts
		}
		err := db.Do(func(tx *oodb.Tx) error {
			for i := lo; i < hi; i++ {
				members := make([]oodb.Value, 0, conn)
				for c := 0; c < conn; c++ {
					members = append(members, oodb.Ref(g.Parts[connTarget(r, i, nParts)]))
				}
				if err := tx.Update(g.Parts[i], oodb.Attrs{"to": oodb.SetOf(members...)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Closure runs a depth-first closure traversal from the part with pid
// rootPid, following "to" connections and visiting each part once, with
// one database fetch per visit (the pointer-chasing access pattern
// clustering exists to serve). Returns the number of parts visited and an
// order-sensitive FNV-1a hash of the visited pid sequence — the traversal
// fingerprint the determinism test and the differential suite compare
// across layouts.
func (g *OO1) Closure(db *oodb.DB, rootPid int) (int, uint64, error) {
	h := fnv.New64a()
	var buf [8]byte
	seen := make(map[oodb.OID]bool, g.N)
	stack := []oodb.OID{g.Parts[rootPid]}
	visited := 0
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[oid] {
			continue
		}
		seen[oid] = true
		obj, err := db.Fetch(oid)
		if err != nil {
			return visited, 0, err
		}
		visited++
		pidV, err := db.Get(obj, "pid")
		if err != nil {
			return visited, 0, err
		}
		pid, _ := pidV.AsInt()
		putUint64(&buf, uint64(pid))
		_, _ = h.Write(buf[:])
		to, err := db.Get(obj, "to")
		if err != nil {
			return visited, 0, err
		}
		members, _ := to.AsSet()
		// Push in reverse so pops follow set order.
		for i := len(members) - 1; i >= 0; i-- {
			if ref, ok := members[i].AsRef(); ok && !seen[ref] {
				stack = append(stack, ref)
			}
		}
	}
	return visited, h.Sum64(), nil
}

// GraphHash fingerprints the whole graph's logical content — every part's
// pid, x, y, ptype and connection-target pid list, in pid order. Two
// databases with equal GraphHash hold the same graph regardless of
// physical layout; the determinism test pins same-seed equality and the
// differential suite pins invariance across clustered rewrites.
func (g *OO1) GraphHash(db *oodb.DB) (uint64, error) {
	pidOf := make(map[oodb.OID]int, g.N)
	for pid, oid := range g.Parts {
		pidOf[oid] = pid
	}
	h := fnv.New64a()
	var buf [8]byte
	for pid := 0; pid < g.N; pid++ {
		obj, err := db.Fetch(g.Parts[pid])
		if err != nil {
			return 0, err
		}
		for _, attr := range []string{"pid", "x", "y"} {
			v, err := db.Get(obj, attr)
			if err != nil {
				return 0, err
			}
			n, _ := v.AsInt()
			putUint64(&buf, uint64(n))
			_, _ = h.Write(buf[:])
		}
		tv, err := db.Get(obj, "ptype")
		if err != nil {
			return 0, err
		}
		s, _ := tv.AsString()
		_, _ = h.Write([]byte(s))
		to, err := db.Get(obj, "to")
		if err != nil {
			return 0, err
		}
		members, _ := to.AsSet()
		for _, m := range members {
			ref, ok := m.AsRef()
			if !ok {
				continue
			}
			putUint64(&buf, uint64(pidOf[ref]))
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64(), nil
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}
