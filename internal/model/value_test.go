package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if i, ok := Int(42).AsInt(); !ok || i != 42 {
		t.Errorf("Int accessor: %v %v", i, ok)
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float accessor: %v %v", f, ok)
	}
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int widened to float: %v %v", f, ok)
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Errorf("Bool accessor: %v %v", b, ok)
	}
	if s, ok := String("hi").AsString(); !ok || s != "hi" {
		t.Errorf("String accessor: %q %v", s, ok)
	}
	if b, ok := Bytes([]byte{1, 2}).AsBytes(); !ok || len(b) != 2 || b[0] != 1 {
		t.Errorf("Bytes accessor: %v %v", b, ok)
	}
	oid := MakeOID(5, 9)
	if r, ok := Ref(oid).AsRef(); !ok || r != oid {
		t.Errorf("Ref accessor: %v %v", r, ok)
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("cross-kind accessor succeeded")
	}
}

func TestRefNilIsNull(t *testing.T) {
	if !Ref(NilOID).IsNull() {
		t.Fatal("Ref(NilOID) should be null")
	}
}

func TestBytesImmutable(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	b, _ := v.AsBytes()
	if b[0] != 1 {
		t.Fatal("Bytes value aliased caller's slice")
	}
}

func TestSetNormalization(t *testing.T) {
	s := Set(Int(3), Int(1), Int(2), Int(1))
	members, ok := s.AsSet()
	if !ok || len(members) != 3 {
		t.Fatalf("set members = %v", members)
	}
	for i, want := range []int64{1, 2, 3} {
		if got, _ := members[i].AsInt(); got != want {
			t.Errorf("members[%d] = %v, want %d", i, members[i], want)
		}
	}
	if !Equal(Set(Int(2), Int(1)), Set(Int(1), Int(2), Int(2))) {
		t.Error("normalized sets should be equal")
	}
}

func TestSetContains(t *testing.T) {
	s := Set(String("a"), String("c"))
	if !s.Contains(String("a")) || s.Contains(String("b")) {
		t.Fatal("Contains wrong")
	}
	if Int(1).Contains(Int(1)) {
		t.Fatal("non-set Contains should be false")
	}
}

func TestCompareOrderAcrossKinds(t *testing.T) {
	ordered := []Value{
		Null,
		Int(-5),
		Float(-1.5),
		Int(0),
		Float(0.5),
		Int(1),
		Int(2),
		Bool(false),
		Bool(true),
		String("a"),
		String("b"),
		Bytes([]byte{0}),
		Ref(MakeOID(1, 1)),
		Ref(MakeOID(1, 2)),
		Set(),
		Set(Int(1)),
		Set(Int(1), Int(2)),
		Set(Int(2)),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want && !(got == 0 && want == 0) {
				if sign(got) != want {
					t.Errorf("Compare(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
				}
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareNumericMixed(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) != Float(2.0)")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("Int(2) should be < Float(2.5)")
	}
	if Compare(Float(3.5), Int(3)) != 1 {
		t.Error("Float(3.5) should be > Int(3)")
	}
}

// randValue generates a random value of bounded depth for property tests.
// Integers are bounded to ±2^53 — the exact range of the numeric key
// encoding (see AppendKey).
func randValue(r *rand.Rand, depth int) Value {
	k := r.Intn(8)
	if depth <= 0 && k == 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return Null
	case 1:
		return Int(r.Int63n(1<<53) - 1<<52)
	case 2:
		return Float(math.Trunc(r.NormFloat64()*1e6) / 8)
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		buf := make([]byte, r.Intn(12))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		return String(string(buf))
	case 5:
		buf := make([]byte, r.Intn(12))
		r.Read(buf)
		return Bytes(buf)
	case 6:
		return Ref(MakeOID(ClassID(r.Intn(1000)+1), uint64(r.Intn(1<<20))))
	default:
		n := r.Intn(4)
		members := make([]Value, n)
		for i := range members {
			members[i] = randValue(r, depth-1)
		}
		return Set(members...)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]Value, 60)
	for i := range vals {
		vals[i] = randValue(r, 2)
	}
	// Antisymmetry and reflexivity.
	for _, a := range vals {
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, %v) != 0", a, a)
		}
		for _, b := range vals {
			if sign(Compare(a, b)) != -sign(Compare(b, a)) {
				t.Fatalf("antisymmetry violated for %v, %v", a, b)
			}
		}
	}
	// Transitivity (spot check over triples).
	for i := 0; i < 2000; i++ {
		a, b, c := vals[r.Intn(len(vals))], vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":     Null,
		"42":       Int(42),
		"true":     Bool(true),
		`"x"`:      String("x"),
		"@2:3":     Ref(MakeOID(2, 3)),
		"{1, 2}":   Set(Int(2), Int(1)),
		"bytes[3]": Bytes([]byte{1, 2, 3}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "null", KindInt: "integer", KindFloat: "float",
		KindBool: "boolean", KindString: "string", KindBytes: "bytes",
		KindRef: "reference", KindSet: "set",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEqualProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Equal(Int(a), Int(b)) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
