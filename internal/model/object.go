package model

import (
	"encoding/binary"
)

// AttrVal is one stored attribute: its global id and its value.
type AttrVal struct {
	ID AttrID
	V  Value
}

// Object is the stored state of one instance: its identity and the values of
// its attributes. Attribute values are keyed by global AttrID, so an object
// image remains interpretable across schema evolution — attributes added
// after the object was written are simply absent (and read as the class
// default), attributes dropped are ignored on load.
//
// Attributes are held as a slice sorted by AttrID. Objects rarely carry more
// than a handful of stored values, so the slice beats a map on every axis
// that matters to the read path: one backing array instead of hash buckets
// (decode allocation), binary search instead of hashing (lookup), and
// already-sorted iteration (encode needs no per-call sort).
//
// The behavior of an object (its methods) lives on its class in the catalog;
// Object carries state only.
type Object struct {
	OID   OID
	attrs []AttrVal
}

// NewObject returns an empty object with the given identity.
func NewObject(oid OID) *Object {
	return &Object{OID: oid}
}

// Class returns the class of the instance (embedded in its OID).
func (o *Object) Class() ClassID { return o.OID.Class() }

// find returns the index of a in the sorted attribute slice, or the
// insertion point with found=false.
func (o *Object) find(a AttrID) (int, bool) {
	lo, hi := 0, len(o.attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.attrs[mid].ID < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(o.attrs) && o.attrs[lo].ID == a
}

// Lookup returns the stored value of attribute a and whether it is present.
func (o *Object) Lookup(a AttrID) (Value, bool) {
	if i, ok := o.find(a); ok {
		return o.attrs[i].V, true
	}
	return Null, false
}

// Get returns the stored value of attribute a, or null if the attribute has
// no stored value.
func (o *Object) Get(a AttrID) Value {
	v, _ := o.Lookup(a)
	return v
}

// Set stores v as the value of attribute a. Setting null removes the stored
// value, keeping images minimal.
func (o *Object) Set(a AttrID, v Value) {
	i, ok := o.find(a)
	if v.IsNull() {
		if ok {
			o.attrs = append(o.attrs[:i], o.attrs[i+1:]...)
		}
		return
	}
	if ok {
		o.attrs[i].V = v
		return
	}
	o.attrs = append(o.attrs, AttrVal{})
	copy(o.attrs[i+1:], o.attrs[i:])
	o.attrs[i] = AttrVal{ID: a, V: v}
}

// NumAttrs returns the number of stored attribute values.
func (o *Object) NumAttrs() int { return len(o.attrs) }

// AttrVals returns the stored attributes in ascending AttrID order. The
// slice is the object's own storage: callers must not mutate it.
func (o *Object) AttrVals() []AttrVal { return o.attrs }

// Clone returns a deep-enough copy of the object: the attribute slice is
// copied; Values are immutable and shared.
func (o *Object) Clone() *Object {
	dup := &Object{OID: o.OID}
	if len(o.attrs) > 0 {
		dup.attrs = make([]AttrVal, len(o.attrs))
		copy(dup.attrs, o.attrs)
	}
	return dup
}

// EncodeObject returns the storage image of the object: OID, attribute
// count, then (AttrID, Value) pairs in ascending AttrID order (the slice
// invariant — encoding is deterministic by construction).
func EncodeObject(o *Object) []byte {
	buf := make([]byte, 0, 16+8*len(o.attrs))
	buf = binary.AppendUvarint(buf, uint64(o.OID))
	buf = binary.AppendUvarint(buf, uint64(len(o.attrs)))
	for _, av := range o.attrs {
		buf = binary.AppendUvarint(buf, uint64(av.ID))
		buf = AppendValue(buf, av.V)
	}
	return buf
}

// DecodeObject decodes a storage image produced by EncodeObject.
func DecodeObject(buf []byte) (*Object, error) {
	oid, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	cnt, m := binary.Uvarint(buf[n:])
	if m <= 0 || cnt > uint64(len(buf)) {
		return nil, ErrCorrupt
	}
	n += m
	obj := &Object{OID: OID(oid)}
	if cnt > 0 {
		obj.attrs = make([]AttrVal, 0, cnt)
	}
	for i := uint64(0); i < cnt; i++ {
		id, m := binary.Uvarint(buf[n:])
		if m <= 0 {
			return nil, ErrCorrupt
		}
		n += m
		v, used, err := DecodeValue(buf[n:])
		if err != nil {
			return nil, err
		}
		n += used
		// Images are written in ascending id order; append on the fast
		// path, insert in place if an old image violates the order.
		if k := len(obj.attrs); k == 0 || obj.attrs[k-1].ID < AttrID(id) {
			obj.attrs = append(obj.attrs, AttrVal{ID: AttrID(id), V: v})
		} else {
			obj.Set(AttrID(id), v)
		}
	}
	return obj, nil
}
