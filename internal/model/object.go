package model

import (
	"encoding/binary"
	"sort"
)

// Object is the stored state of one instance: its identity and the values of
// its attributes. Attribute values are keyed by global AttrID, so an object
// image remains interpretable across schema evolution — attributes added
// after the object was written are simply absent (and read as the class
// default), attributes dropped are ignored on load.
//
// The behavior of an object (its methods) lives on its class in the catalog;
// Object carries state only.
type Object struct {
	OID   OID
	Attrs map[AttrID]Value
}

// NewObject returns an empty object with the given identity.
func NewObject(oid OID) *Object {
	return &Object{OID: oid, Attrs: make(map[AttrID]Value)}
}

// Class returns the class of the instance (embedded in its OID).
func (o *Object) Class() ClassID { return o.OID.Class() }

// Get returns the stored value of attribute a, or null if the attribute has
// no stored value.
func (o *Object) Get(a AttrID) Value {
	if v, ok := o.Attrs[a]; ok {
		return v
	}
	return Null
}

// Set stores v as the value of attribute a. Setting null removes the stored
// value, keeping images minimal.
func (o *Object) Set(a AttrID, v Value) {
	if v.IsNull() {
		delete(o.Attrs, a)
		return
	}
	o.Attrs[a] = v
}

// Clone returns a deep-enough copy of the object: the attribute map is
// copied; Values are immutable and shared.
func (o *Object) Clone() *Object {
	dup := &Object{OID: o.OID, Attrs: make(map[AttrID]Value, len(o.Attrs))}
	for k, v := range o.Attrs {
		dup.Attrs[k] = v
	}
	return dup
}

// sortedAttrIDs returns the object's attribute ids in ascending order so
// encoding is deterministic (required for testing recovery byte-for-byte).
func (o *Object) sortedAttrIDs() []AttrID {
	ids := make([]AttrID, 0, len(o.Attrs))
	for id := range o.Attrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EncodeObject returns the storage image of the object: OID, attribute
// count, then (AttrID, Value) pairs in ascending AttrID order.
func EncodeObject(o *Object) []byte {
	buf := make([]byte, 0, 16+8*len(o.Attrs))
	buf = binary.AppendUvarint(buf, uint64(o.OID))
	buf = binary.AppendUvarint(buf, uint64(len(o.Attrs)))
	for _, id := range o.sortedAttrIDs() {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = AppendValue(buf, o.Attrs[id])
	}
	return buf
}

// DecodeObject decodes a storage image produced by EncodeObject.
func DecodeObject(buf []byte) (*Object, error) {
	oid, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	cnt, m := binary.Uvarint(buf[n:])
	if m <= 0 || cnt > uint64(len(buf)) {
		return nil, ErrCorrupt
	}
	n += m
	obj := &Object{OID: OID(oid), Attrs: make(map[AttrID]Value, cnt)}
	for i := uint64(0); i < cnt; i++ {
		id, m := binary.Uvarint(buf[n:])
		if m <= 0 {
			return nil, ErrCorrupt
		}
		n += m
		v, used, err := DecodeValue(buf[n:])
		if err != nil {
			return nil, err
		}
		n += used
		obj.Attrs[AttrID(id)] = v
	}
	return obj, nil
}
