// Package model defines the core object-oriented data model of kimdb:
// object identifiers, attribute values, objects, and their binary
// representations.
//
// The model follows the "core object-oriented concepts" of Kim (PODS 1990),
// Section 3.1: every real-world entity is uniformly modeled as an object with
// a unique identifier; the state of an object is a set of attribute values;
// the value of an attribute is itself an object (a primitive object such as
// an integer, a reference to a general object, or a set of such values).
package model

import "fmt"

// ClassID identifies a class in the schema. Class identifiers are assigned
// by the catalog and are stable for the life of a database. The low 24 bits
// of every OID carry the class of the instance, so a ClassID must fit in
// 24 bits.
type ClassID uint32

// MaxClassID is the largest class identifier representable inside an OID.
const MaxClassID ClassID = 1<<24 - 1

// AttrID identifies an attribute globally (across all classes). Attribute
// identifiers are assigned by the catalog when an attribute is first defined
// and never reused, which keeps stored objects self-describing across schema
// evolution: an object stores (AttrID, Value) pairs, so adding or dropping
// attributes never forces a rewrite of unrelated state.
type AttrID uint32

// OID is a unique object identifier: 24 bits of class identifier and 40 bits
// of per-class sequence number. An OID of zero is "no object" (the null
// reference).
//
// Embedding the class in the identifier is the classic ORION layout; it lets
// the system locate an object's class — and therefore its segment, lock
// ancestors and index set — without a directory lookup.
type OID uint64

// NilOID is the null object reference.
const NilOID OID = 0

// seqBits is the width of the per-class sequence number inside an OID.
const seqBits = 40

// maxSeq is the largest per-class sequence number.
const maxSeq = 1<<seqBits - 1

// MakeOID composes an OID from a class identifier and a sequence number.
// It panics if either component is out of range; identifiers are always
// produced by the catalog and the storage engine, so an out-of-range value
// is a programming error, not an input error.
func MakeOID(class ClassID, seq uint64) OID {
	if class > MaxClassID {
		panic(fmt.Sprintf("model: class id %d exceeds 24 bits", class))
	}
	if seq > maxSeq {
		panic(fmt.Sprintf("model: sequence %d exceeds 40 bits", seq))
	}
	return OID(uint64(class)<<seqBits | seq)
}

// Class returns the class identifier embedded in the OID.
func (o OID) Class() ClassID { return ClassID(o >> seqBits) }

// Seq returns the per-class sequence number embedded in the OID.
func (o OID) Seq() uint64 { return uint64(o) & maxSeq }

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

// String renders the OID as "class:seq" for logs and error messages.
func (o OID) String() string {
	if o.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%d", o.Class(), o.Seq())
}
