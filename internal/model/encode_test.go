package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-2.75), Float(math.Inf(1)),
		Bool(true), Bool(false),
		String(""), String("Detroit"), String("日本語\x00embedded"),
		Bytes(nil), Bytes([]byte{0, 255, 1}),
		Ref(MakeOID(12, 99)),
		Set(), Set(Int(1), String("x"), Set(Bool(true))),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(enc))
		}
		if !Equal(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		v := randValue(r, 3)
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) || !Equal(got, v) {
			t.Fatalf("round trip %v -> %v (%d/%d bytes)", v, got, n, len(enc))
		}
	}
}

func TestDecodeValueCorrupt(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindInt)},            // missing varint
		{byte(KindFloat), 1, 2},    // short float
		{byte(KindString), 5, 'a'}, // declared length exceeds data
		{byte(KindSet), 200},       // set count exceeds data
		{0xEE},                     // unknown kind
	}
	for i, buf := range bad {
		if _, _, err := DecodeValue(buf); err == nil {
			t.Errorf("case %d: expected corruption error", i)
		}
	}
}

func TestDecodeValueDepthLimit(t *testing.T) {
	// nested returns the encoding of levels set headers (one member each)
	// around a null: Set(Set(...Set(Null)...)).
	nested := func(levels int) []byte {
		buf := make([]byte, 0, 2*levels+1)
		for i := 0; i < levels; i++ {
			buf = append(buf, byte(KindSet), 1)
		}
		return append(buf, byte(KindNull))
	}

	// Nesting at the limit decodes.
	v, n, err := DecodeValue(nested(maxDecodeDepth))
	if err != nil {
		t.Fatalf("decode at depth limit: %v", err)
	}
	if n != 2*maxDecodeDepth+1 || v.Kind() != KindSet {
		t.Fatalf("depth-limit decode consumed %d bytes, kind %v", n, v.Kind())
	}

	// One level past the limit is refused as corrupt.
	if _, _, err := DecodeValue(nested(maxDecodeDepth + 1)); err == nil {
		t.Fatal("nesting past the limit decoded")
	}

	// A hostile stream of set headers — the stack-overflow shape a
	// network peer can cheaply send — must fail, not crash. Truncated on
	// purpose: the depth check has to fire long before the data runs out.
	if _, _, err := DecodeValue(nested(1 << 20)[:1<<20]); err == nil {
		t.Fatal("hostile deep nesting decoded")
	}
}

func TestKeyOrderMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	vals := make([]Value, 120)
	for i := range vals {
		vals[i] = randValue(r, 2)
	}
	for _, a := range vals {
		ka := Key(a)
		for _, b := range vals {
			kb := Key(b)
			if sign(bytes.Compare(ka, kb)) != sign(Compare(a, b)) {
				t.Fatalf("key order disagrees with Compare for %v vs %v", a, b)
			}
		}
	}
}

func TestKeyStringEscaping(t *testing.T) {
	// "a\x00b" must sort between "a" and "a\x01".
	a := Key(String("a"))
	ab0 := Key(String("a\x00b"))
	a1 := Key(String("a\x01"))
	if !(bytes.Compare(a, ab0) < 0 && bytes.Compare(ab0, a1) < 0) {
		t.Fatal("zero-byte escaping breaks string key order")
	}
}

func TestKeyNumericMixes(t *testing.T) {
	pairs := [][2]Value{
		{Int(2), Float(2.5)},
		{Float(-0.5), Int(0)},
		{Int(-10), Int(10)},
		{Float(math.Inf(-1)), Int(math.MinInt32)},
	}
	for _, p := range pairs {
		if sign(bytes.Compare(Key(p[0]), Key(p[1]))) != sign(Compare(p[0], p[1])) {
			t.Errorf("key order wrong for %v vs %v", p[0], p[1])
		}
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	o := NewObject(MakeOID(7, 123))
	o.Set(1, Int(7500))
	o.Set(2, String("Vehicle"))
	o.Set(9, Ref(MakeOID(8, 4)))
	o.Set(11, Set(Int(1), Int(2)))

	enc := EncodeObject(o)
	got, err := DecodeObject(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != o.OID {
		t.Fatalf("OID %v != %v", got.OID, o.OID)
	}
	if got.NumAttrs() != o.NumAttrs() {
		t.Fatalf("attr count %d != %d", got.NumAttrs(), o.NumAttrs())
	}
	for _, av := range o.AttrVals() {
		if !Equal(got.Get(av.ID), av.V) {
			t.Errorf("attr %d: %v != %v", av.ID, got.Get(av.ID), av.V)
		}
	}
}

func TestObjectEncodingDeterministic(t *testing.T) {
	build := func() *Object {
		o := NewObject(MakeOID(3, 1))
		for i := AttrID(1); i <= 20; i++ {
			o.Set(i, Int(int64(i)*3))
		}
		return o
	}
	a, b := EncodeObject(build()), EncodeObject(build())
	if !bytes.Equal(a, b) {
		t.Fatal("object encoding not deterministic")
	}
}

func TestObjectSetNullDeletes(t *testing.T) {
	o := NewObject(MakeOID(1, 1))
	o.Set(5, Int(1))
	o.Set(5, Null)
	if _, present := o.Lookup(5); present {
		t.Fatal("setting null should delete the stored attribute")
	}
	if !o.Get(5).IsNull() {
		t.Fatal("Get of absent attribute should be null")
	}
}

func TestObjectClone(t *testing.T) {
	o := NewObject(MakeOID(1, 1))
	o.Set(1, Int(10))
	c := o.Clone()
	c.Set(1, Int(20))
	if v, _ := o.Get(1).AsInt(); v != 10 {
		t.Fatal("clone aliases original attribute map")
	}
}

func TestDecodeObjectCorrupt(t *testing.T) {
	o := NewObject(MakeOID(2, 2))
	o.Set(1, String("x"))
	enc := EncodeObject(o)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeObject(enc[:cut]); err == nil {
			// Some prefixes may decode as a smaller valid object only if
			// counts allow; an object with one attr must fail at any cut.
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}
