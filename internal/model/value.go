package model

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the primitive classes of the core model plus the two
// constructors the paper's model requires: references (an attribute whose
// domain is a general class stores the OID of the referenced object) and
// sets (an attribute "may take on a single value or a set of values",
// Kim §3.1 model 2).
type Kind uint8

// The value kinds. The zero value of Kind is KindNull so that the zero
// Value is the null object.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindBytes
	KindRef
	KindSet
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindBool:
		return "boolean"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindRef:
		return "reference"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is the state of one attribute of one object: a primitive object, a
// reference to a general object, or a set of values. Value is an immutable
// tagged union; the zero Value is null.
//
// Bytes values are stored in an immutable string so that sharing a Value
// never aliases mutable storage.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, bool (0/1), or OID
	str  string // string or bytes payload
	set  []Value
}

// Null is the null value (absence of a value; also the null reference).
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Bytes returns a long-unstructured-data value. The input is copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, str: string(v)} }

// Ref returns a reference value holding the OID of another object. A nil
// OID yields the null value, so Ref(NilOID).IsNull() is true.
func Ref(oid OID) Value {
	if oid.IsNil() {
		return Null
	}
	return Value{kind: KindRef, num: uint64(oid)}
}

// Set returns a set value over the given members. The members are stored in
// normalized (sorted, deduplicated) order so that equal sets compare equal.
func Set(members ...Value) Value {
	dup := make([]Value, len(members))
	copy(dup, members)
	sort.Slice(dup, func(i, j int) bool { return Compare(dup[i], dup[j]) < 0 })
	out := dup[:0]
	for i, v := range dup {
		if i == 0 || Compare(v, dup[i-1]) != 0 {
			out = append(out, v)
		}
	}
	return Value{kind: KindSet, set: out}
}

// Kind returns the kind tag of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. ok is false if the value is not an
// integer.
func (v Value) AsInt() (i int64, ok bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return int64(v.num), true
}

// AsFloat returns the float payload, widening integers. ok is false if the
// value is neither a float nor an integer.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.num), true
	case KindInt:
		return float64(int64(v.num)), true
	}
	return 0, false
}

// AsBool returns the boolean payload. ok is false if the value is not a
// boolean.
func (v Value) AsBool() (b, ok bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.num == 1, true
}

// AsString returns the string payload. ok is false if the value is not a
// string.
func (v Value) AsString() (s string, ok bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsBytes returns a copy of the bytes payload. ok is false if the value is
// not a bytes value.
func (v Value) AsBytes() (b []byte, ok bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return []byte(v.str), true
}

// AsRef returns the referenced OID. ok is false if the value is not a
// reference.
func (v Value) AsRef() (oid OID, ok bool) {
	if v.kind != KindRef {
		return NilOID, false
	}
	return OID(v.num), true
}

// AsSet returns the members of a set value in normalized order. The returned
// slice must not be modified. ok is false if the value is not a set.
func (v Value) AsSet() (members []Value, ok bool) {
	if v.kind != KindSet {
		return nil, false
	}
	return v.set, true
}

// Contains reports whether a set value contains member (by Compare
// equality). A non-set value contains nothing.
func (v Value) Contains(member Value) bool {
	if v.kind != KindSet {
		return false
	}
	i := sort.Search(len(v.set), func(i int) bool { return Compare(v.set[i], member) >= 0 })
	return i < len(v.set) && Compare(v.set[i], member) == 0
}

// String renders the value for logs, query results and the shell.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.num == 1)
	case KindString:
		return strconv.Quote(v.str)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.str))
	case KindRef:
		return "@" + OID(v.num).String()
	case KindSet:
		parts := make([]string, len(v.set))
		for i, m := range v.set {
			parts[i] = m.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// kindOrder gives the total order across kinds used by Compare when the
// operands have different kinds (after numeric widening). Null sorts first,
// matching SQL-style "nulls first" index order.
func kindOrder(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindBool:
		return 2
	case KindString:
		return 3
	case KindBytes:
		return 4
	case KindRef:
		return 5
	case KindSet:
		return 6
	default:
		return 7
	}
}

// Compare defines a total order over all values: null first, then numerics
// (integers and floats compare by numeric value), booleans (false < true),
// strings, bytes, references (by OID), and sets (lexicographic over
// normalized members). The order is the index key order.
func Compare(a, b Value) int {
	ao, bo := kindOrder(a.kind), kindOrder(b.kind)
	if ao != bo {
		if ao < bo {
			return -1
		}
		return 1
	}
	switch {
	case a.kind == KindNull:
		return 0
	case ao == 1: // numeric
		if a.kind == KindInt && b.kind == KindInt {
			ai, bi := int64(a.num), int64(b.num)
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			}
			return 0
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case a.kind == KindBool:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	case a.kind == KindString, a.kind == KindBytes:
		return strings.Compare(a.str, b.str)
	case a.kind == KindRef:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	default: // set
		for i := 0; i < len(a.set) && i < len(b.set); i++ {
			if c := Compare(a.set[i], b.set[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(a.set) < len(b.set):
			return -1
		case len(a.set) > len(b.set):
			return 1
		}
		return 0
	}
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }
