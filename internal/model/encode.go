package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports a malformed binary value or object image.
var ErrCorrupt = errors.New("model: corrupt binary image")

// AppendValue appends the storage encoding of v to dst and returns the
// extended slice. The encoding is a one-byte kind tag followed by a
// kind-specific payload; varints keep small integers and short strings
// compact, which matters because objects are stored as runs of encoded
// values inside slotted pages.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, v.num)
	case KindBool:
		dst = append(dst, byte(v.num))
	case KindString, KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindRef:
		dst = binary.AppendUvarint(dst, v.num)
	case KindSet:
		dst = binary.AppendUvarint(dst, uint64(len(v.set)))
		for _, m := range v.set {
			dst = AppendValue(dst, m)
		}
	}
	return dst
}

// maxDecodeDepth bounds set nesting while decoding. DecodeValue also runs
// on untrusted wire bytes (internal/server/proto), where a stream of
// nested set headers — two bytes per level — could otherwise recurse until
// the stack overflows, a fatal runtime error no recover() can contain.
// Deeper nesting than this is refused as corrupt.
const maxDecodeDepth = 32

// DecodeValue decodes one value from the front of buf, returning the value
// and the number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	return decodeValue(buf, 0)
}

func decodeValue(buf []byte, depth int) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, ErrCorrupt
	}
	kind := Kind(buf[0])
	n := 1
	switch kind {
	case KindNull:
		return Null, n, nil
	case KindInt:
		i, m := binary.Varint(buf[n:])
		if m <= 0 {
			return Null, 0, ErrCorrupt
		}
		return Int(i), n + m, nil
	case KindFloat:
		if len(buf) < n+8 {
			return Null, 0, ErrCorrupt
		}
		bits := binary.BigEndian.Uint64(buf[n:])
		return Float(math.Float64frombits(bits)), n + 8, nil
	case KindBool:
		if len(buf) < n+1 {
			return Null, 0, ErrCorrupt
		}
		return Bool(buf[n] == 1), n + 1, nil
	case KindString, KindBytes:
		l, m := binary.Uvarint(buf[n:])
		if m <= 0 || uint64(len(buf)) < uint64(n+m)+l {
			return Null, 0, ErrCorrupt
		}
		payload := string(buf[n+m : n+m+int(l)])
		if kind == KindString {
			return String(payload), n + m + int(l), nil
		}
		return Value{kind: KindBytes, str: payload}, n + m + int(l), nil
	case KindRef:
		o, m := binary.Uvarint(buf[n:])
		if m <= 0 {
			return Null, 0, ErrCorrupt
		}
		return Ref(OID(o)), n + m, nil
	case KindSet:
		if depth >= maxDecodeDepth {
			return Null, 0, fmt.Errorf("%w: set nesting beyond %d", ErrCorrupt, maxDecodeDepth)
		}
		cnt, m := binary.Uvarint(buf[n:])
		if m <= 0 || cnt > uint64(len(buf)) {
			return Null, 0, ErrCorrupt
		}
		n += m
		members := make([]Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			mv, used, err := decodeValue(buf[n:], depth+1)
			if err != nil {
				return Null, 0, err
			}
			members = append(members, mv)
			n += used
		}
		// Members were normalized at Set() time; trust the stored order.
		return Value{kind: KindSet, set: members}, n, nil
	default:
		return Null, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

// Key encoding. Index keys must sort bytewise in the same order Compare
// sorts values, so B+tree pages can compare keys with bytes.Compare without
// decoding. The first byte is the kind-order class; payloads are transformed
// to be order-preserving (sign-flipped big-endian integers, IEEE 754 with
// sign fix-up for floats, zero-terminated escaped strings).

const (
	keyNull   = 0x00
	keyNum    = 0x10
	keyBool   = 0x20
	keyString = 0x30
	keyBytes  = 0x40
	keyRef    = 0x50
	keySet    = 0x60
)

// AppendKey appends the order-preserving key encoding of v to dst.
// Integers and floats share the numeric class: both are encoded as the
// order-fixed bits of the float64 value, with integers beyond 2^53 falling
// back to their exact integer encoding in a dedicated sub-band. For database
// keys in this engine's domain (counts, weights, identifiers below 2^53)
// this preserves Compare order exactly; TestKeyOrderMatchesCompare verifies
// the property on generated values.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, keyNull)
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // non-negative: set sign bit
		}
		dst = append(dst, keyNum)
		return binary.BigEndian.AppendUint64(dst, bits)
	case KindBool:
		dst = append(dst, keyBool)
		return append(dst, byte(v.num))
	case KindString, KindBytes:
		tag := byte(keyString)
		if v.kind == KindBytes {
			tag = keyBytes
		}
		dst = append(dst, tag)
		// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator sorts
		// before any continuation of the string.
		for i := 0; i < len(v.str); i++ {
			c := v.str[i]
			dst = append(dst, c)
			if c == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		return append(dst, 0x00, 0x00)
	case KindRef:
		dst = append(dst, keyRef)
		return binary.BigEndian.AppendUint64(dst, v.num)
	case KindSet:
		dst = append(dst, keySet)
		for _, m := range v.set {
			dst = AppendKey(dst, m)
		}
		return append(dst, keyNull) // terminator sorts before any member tag
	default:
		panic(fmt.Sprintf("model: AppendKey on kind %d", v.kind))
	}
}

// Key returns the order-preserving key encoding of v as a fresh slice.
func Key(v Value) []byte { return AppendKey(nil, v) }
