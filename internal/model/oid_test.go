package model

import (
	"testing"
	"testing/quick"
)

func TestMakeOIDRoundTrip(t *testing.T) {
	cases := []struct {
		class ClassID
		seq   uint64
	}{
		{0, 0},
		{1, 1},
		{42, 1 << 20},
		{MaxClassID, 1<<40 - 1},
	}
	for _, c := range cases {
		oid := MakeOID(c.class, c.seq)
		if oid.Class() != c.class {
			t.Errorf("MakeOID(%d,%d).Class() = %d", c.class, c.seq, oid.Class())
		}
		if oid.Seq() != c.seq {
			t.Errorf("MakeOID(%d,%d).Seq() = %d", c.class, c.seq, oid.Seq())
		}
	}
}

func TestMakeOIDProperty(t *testing.T) {
	f := func(class uint32, seq uint64) bool {
		c := ClassID(class) & MaxClassID
		s := seq & (1<<40 - 1)
		oid := MakeOID(c, s)
		return oid.Class() == c && oid.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeOIDPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range class")
		}
	}()
	MakeOID(MaxClassID+1, 0)
}

func TestNilOID(t *testing.T) {
	if !NilOID.IsNil() {
		t.Fatal("NilOID.IsNil() = false")
	}
	if NilOID.String() != "nil" {
		t.Fatalf("NilOID.String() = %q", NilOID.String())
	}
	oid := MakeOID(3, 7)
	if oid.IsNil() {
		t.Fatal("non-nil OID reported nil")
	}
	if oid.String() != "3:7" {
		t.Fatalf("String() = %q, want 3:7", oid.String())
	}
}

func TestOIDZeroSeqZeroClassIsNil(t *testing.T) {
	// MakeOID(0,0) collides with the null reference by construction; the
	// catalog never assigns class id 0, so this documents the invariant.
	if !MakeOID(0, 0).IsNil() {
		t.Fatal("MakeOID(0,0) should be NilOID")
	}
}
