// Package version implements kimdb's version model, following Chou & Kim
// (VLDB 1986 / DAC 1988), the semantics the paper lists among the CAx
// requirements (§3.3) and revisits under "Semantic Extensions" (§5.5):
//
//   - a versionable instance is represented by a generic object plus a set
//     of version instances forming a derivation hierarchy;
//   - versions progress transient → working → released: transient versions
//     are updatable and deletable, working versions are frozen but can
//     spawn derivations and be deleted, released versions are immutable;
//   - a reference to the generic object dynamically binds to its default
//     version (or the most recently derived one when no default is set);
//   - deriving or promoting a version notifies registered dependents
//     (change notification: flag-based, queryable, plus an optional
//     callback).
//
// Per the paper's §5.5 layering advice, this manager is a layer above the
// engine: version state is ordinary attributes maintained through ordinary
// transactions, so installation-specific version semantics can be built as
// alternative layers without engine changes.
//
// Not to be confused with internal/mvcc, which is transaction-time
// versioning for isolation (snapshot reads at a pinned commit epoch,
// invisible to applications). This package models versions users create,
// name and query; the two share nothing but the word.
package version

import (
	"errors"
	"fmt"
	"sync"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// State is a version's lifecycle state.
type State int

// The version states.
const (
	Transient State = iota
	Working
	Released
)

func (s State) String() string {
	switch s {
	case Transient:
		return "transient"
	case Working:
		return "working"
	case Released:
		return "released"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Hidden attribute names the manager adds to versionable classes and to
// the generic class. The leading underscore keeps them out of the way of
// application attributes (identifiers may not start with '_' in the query
// language's reserved space by convention).
const (
	attrGeneric = "_vGeneric" // version -> its generic object
	attrParent  = "_vParent"  // version -> version it was derived from
	attrNumber  = "_vNumber"  // version -> version number (1, 2, ...)
	attrState   = "_vState"   // version -> lifecycle state (int)

	genericClassName = "VersionGeneric"
	attrDefault      = "_vDefault" // generic -> default version
	attrNext         = "_vNext"    // generic -> next version number
	attrVersions     = "_vAll"     // generic -> set of version refs
)

// Errors of the version layer.
var (
	ErrNotVersionable = errors.New("version: class is not versioning-enabled")
	ErrFrozen         = errors.New("version: working and released versions are immutable")
	ErrReleased       = errors.New("version: released versions cannot be deleted")
	ErrNotVersion     = errors.New("version: object is not a version instance")
	ErrNotGeneric     = errors.New("version: object is not a generic object")
)

// Notification describes one change event delivered to dependents.
type Notification struct {
	Generic  model.OID // the generic object whose version set changed
	Version  model.OID // the version derived or promoted
	Event    string    // "derive" or "promote"
	NewState State     // for promote
}

// Policy tailors installation-specific version semantics — the layered
// architecture §5.5 recommends: "the lower level may support a basic
// mechanism for low-level version semantics that are common to various
// proposals; the higher level may be made extensible to allow easy
// tailoring". The zero Policy is the Chou-Kim default.
type Policy struct {
	// CanUpdate reports whether a version in the given state accepts
	// in-place updates. Nil means the default (transient only).
	CanUpdate func(State) bool
	// CanDelete reports whether a version in the given state may be
	// deleted. Nil means the default (anything but released).
	CanDelete func(State) bool
	// PromoteParentOnDerive controls whether deriving from a transient
	// version first promotes it to working (the Chou-Kim rule). Nil means
	// true.
	PromoteParentOnDerive *bool
}

// Manager layers version semantics over a database.
type Manager struct {
	db      *core.DB
	generic *schema.Class

	mu         sync.Mutex
	enabled    map[model.ClassID]bool
	dependents map[model.OID]map[model.OID]bool // generic -> dependents
	stale      map[model.OID]bool               // dependents flagged out-of-date
	callback   func(Notification)
	policy     Policy
}

// SetPolicy installs installation-specific version semantics.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	m.policy = p
	m.mu.Unlock()
}

func (m *Manager) canUpdate(st State) bool {
	m.mu.Lock()
	f := m.policy.CanUpdate
	m.mu.Unlock()
	if f == nil {
		return st == Transient
	}
	return f(st)
}

func (m *Manager) canDelete(st State) bool {
	m.mu.Lock()
	f := m.policy.CanDelete
	m.mu.Unlock()
	if f == nil {
		return st != Released
	}
	return f(st)
}

func (m *Manager) promoteParentOnDerive() bool {
	m.mu.Lock()
	p := m.policy.PromoteParentOnDerive
	m.mu.Unlock()
	return p == nil || *p
}

// New creates (or re-attaches) the version layer, installing the generic
// class if absent.
func New(db *core.DB) (*Manager, error) {
	m := &Manager{
		db:         db,
		enabled:    make(map[model.ClassID]bool),
		dependents: make(map[model.OID]map[model.OID]bool),
		stale:      make(map[model.OID]bool),
	}
	cl, err := db.Catalog.ClassByName(genericClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		cl, err = db.DefineClass(genericClassName, nil,
			schema.AttrSpec{Name: attrDefault, Domain: schema.ClassObject},
			schema.AttrSpec{Name: attrNext, Domain: schema.ClassInteger, Default: model.Int(1)},
			schema.AttrSpec{Name: attrVersions, Domain: schema.ClassObject, SetValued: true},
		)
	}
	if err != nil {
		return nil, err
	}
	m.generic = cl
	// Re-detect versioning-enabled classes (they carry the hidden attrs).
	for _, c := range db.Catalog.Classes() {
		if schema.IsPrimitive(c.ID) {
			continue
		}
		if _, err := db.Catalog.ResolveAttr(c.ID, attrGeneric); err == nil {
			m.enabled[c.ID] = true
		}
	}
	return m, nil
}

// OnChange installs a notification callback (message-based notification;
// the flag-based mechanism via StaleDependents works regardless).
func (m *Manager) OnChange(fn func(Notification)) {
	m.mu.Lock()
	m.callback = fn
	m.mu.Unlock()
}

// EnableVersioning makes a class versionable by adding the hidden version
// attributes. Idempotent.
func (m *Manager) EnableVersioning(class model.ClassID) error {
	m.mu.Lock()
	if m.enabled[class] {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	for _, spec := range []schema.AttrSpec{
		{Name: attrGeneric, Domain: m.generic.ID},
		{Name: attrParent, Domain: schema.ClassObject},
		{Name: attrNumber, Domain: schema.ClassInteger},
		{Name: attrState, Domain: schema.ClassInteger, Default: model.Int(int64(Transient))},
	} {
		if _, err := m.db.AddAttribute(class, spec); err != nil && !errors.Is(err, schema.ErrAttrExists) {
			return err
		}
	}
	m.mu.Lock()
	m.enabled[class] = true
	m.mu.Unlock()
	return nil
}

// CreateVersioned creates the first (transient) version of a new
// versionable entity along with its generic object, returning both.
func (m *Manager) CreateVersioned(tx *core.Tx, class model.ClassID, attrs map[string]model.Value) (generic, version model.OID, err error) {
	if !m.isEnabled(class) {
		return model.NilOID, model.NilOID, ErrNotVersionable
	}
	generic, err = tx.InsertClass(m.generic.ID, map[string]model.Value{attrNext: model.Int(2)})
	if err != nil {
		return model.NilOID, model.NilOID, err
	}
	all := make(map[string]model.Value, len(attrs)+3)
	for k, v := range attrs {
		all[k] = v
	}
	all[attrGeneric] = model.Ref(generic)
	all[attrNumber] = model.Int(1)
	all[attrState] = model.Int(int64(Transient))
	version, err = tx.InsertClass(class, all)
	if err != nil {
		return model.NilOID, model.NilOID, err
	}
	err = tx.Update(generic, map[string]model.Value{
		attrVersions: model.Set(model.Ref(version)),
	})
	return generic, version, err
}

func (m *Manager) isEnabled(class model.ClassID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enabled[class]
}

// StateOf returns the lifecycle state of a version instance.
func (m *Manager) StateOf(oid model.OID) (State, error) {
	obj, err := m.db.FetchObject(oid)
	if err != nil {
		return Transient, err
	}
	v, err := m.db.AttrValue(obj, attrState)
	if err != nil {
		return Transient, ErrNotVersion
	}
	n, _ := v.AsInt()
	return State(n), nil
}

// GenericOf returns the generic object of a version instance.
func (m *Manager) GenericOf(oid model.OID) (model.OID, error) {
	obj, err := m.db.FetchObject(oid)
	if err != nil {
		return model.NilOID, err
	}
	v, err := m.db.AttrValue(obj, attrGeneric)
	if err != nil {
		return model.NilOID, ErrNotVersion
	}
	g, ok := v.AsRef()
	if !ok {
		return model.NilOID, ErrNotVersion
	}
	return g, nil
}

// UpdateVersion writes attributes of a version, enforcing the update
// rules: only transient versions are updatable.
func (m *Manager) UpdateVersion(tx *core.Tx, oid model.OID, attrs map[string]model.Value) error {
	st, err := m.StateOf(oid)
	if err != nil {
		return err
	}
	if !m.canUpdate(st) {
		return fmt.Errorf("%w (state %s)", ErrFrozen, st)
	}
	return tx.Update(oid, attrs)
}

// Promote advances a version transient → working → released. Promoting a
// released version is a no-op.
func (m *Manager) Promote(tx *core.Tx, oid model.OID) (State, error) {
	st, err := m.StateOf(oid)
	if err != nil {
		return st, err
	}
	if st == Released {
		return Released, nil
	}
	next := st + 1
	if err := tx.Update(oid, map[string]model.Value{attrState: model.Int(int64(next))}); err != nil {
		return st, err
	}
	g, err := m.GenericOf(oid)
	if err == nil {
		m.notify(Notification{Generic: g, Version: oid, Event: "promote", NewState: next})
	}
	return next, nil
}

// Derive creates a new transient version from an existing version. Per
// Chou-Kim, deriving from a transient version first promotes it to
// working (a version with derivations must be stable).
func (m *Manager) Derive(tx *core.Tx, parent model.OID) (model.OID, error) {
	st, err := m.StateOf(parent)
	if err != nil {
		return model.NilOID, err
	}
	if st == Transient && m.promoteParentOnDerive() {
		if _, err := m.Promote(tx, parent); err != nil {
			return model.NilOID, err
		}
	}
	pobj, err := m.db.FetchObject(parent)
	if err != nil {
		return model.NilOID, err
	}
	g, err := m.GenericOf(parent)
	if err != nil {
		return model.NilOID, err
	}
	gobj, err := m.db.FetchObject(g)
	if err != nil {
		return model.NilOID, err
	}
	nextV, err := m.db.AttrValue(gobj, attrNext)
	if err != nil {
		return model.NilOID, ErrNotGeneric
	}
	n, _ := nextV.AsInt()
	if n == 0 {
		n = 1
	}

	// Copy the parent's application state.
	child := model.NewObject(model.NilOID) // template
	for _, av := range pobj.AttrVals() {
		child.Set(av.ID, av.V)
	}
	attrs := map[string]model.Value{}
	effAttrs, err := m.db.Catalog.EffectiveAttrs(parent.Class())
	if err != nil {
		return model.NilOID, err
	}
	for _, a := range effAttrs {
		if v, ok := child.Lookup(a.ID); ok {
			attrs[a.Name] = v
		}
	}
	attrs[attrGeneric] = model.Ref(g)
	attrs[attrParent] = model.Ref(parent)
	attrs[attrNumber] = model.Int(n)
	attrs[attrState] = model.Int(int64(Transient))
	oid, err := tx.InsertClass(parent.Class(), attrs)
	if err != nil {
		return model.NilOID, err
	}

	// Register with the generic object.
	versions, _ := m.db.AttrValue(gobj, attrVersions)
	members, _ := versions.AsSet()
	newSet := append(append([]model.Value(nil), members...), model.Ref(oid))
	if err := tx.Update(g, map[string]model.Value{
		attrVersions: model.Set(newSet...),
		attrNext:     model.Int(n + 1),
	}); err != nil {
		return model.NilOID, err
	}
	m.notify(Notification{Generic: g, Version: oid, Event: "derive"})
	return oid, nil
}

// DeleteVersion removes a version; released versions are protected.
func (m *Manager) DeleteVersion(tx *core.Tx, oid model.OID) error {
	st, err := m.StateOf(oid)
	if err != nil {
		return err
	}
	if !m.canDelete(st) {
		return ErrReleased
	}
	g, err := m.GenericOf(oid)
	if err != nil {
		return err
	}
	gobj, err := m.db.FetchObject(g)
	if err != nil {
		return err
	}
	versions, _ := m.db.AttrValue(gobj, attrVersions)
	members, _ := versions.AsSet()
	var kept []model.Value
	for _, mem := range members {
		if ref, _ := mem.AsRef(); ref != oid {
			kept = append(kept, mem)
		}
	}
	upd := map[string]model.Value{attrVersions: model.Set(kept...)}
	// Clear the default if it pointed at the deleted version.
	if def, _ := m.db.AttrValue(gobj, attrDefault); !def.IsNull() {
		if ref, _ := def.AsRef(); ref == oid {
			upd[attrDefault] = model.Null
		}
	}
	if err := tx.Update(g, upd); err != nil {
		return err
	}
	return tx.Delete(oid)
}

// SetDefault pins the generic object's default version (static binding).
func (m *Manager) SetDefault(tx *core.Tx, generic, version model.OID) error {
	return tx.Update(generic, map[string]model.Value{attrDefault: model.Ref(version)})
}

// Resolve performs dynamic binding: a reference to the generic object
// resolves to its default version if set, else to the most recently
// derived (highest-numbered) version.
func (m *Manager) Resolve(generic model.OID) (model.OID, error) {
	gobj, err := m.db.FetchObject(generic)
	if err != nil {
		return model.NilOID, err
	}
	if def, err := m.db.AttrValue(gobj, attrDefault); err == nil && !def.IsNull() {
		if oid, ok := def.AsRef(); ok {
			return oid, nil
		}
	}
	vs, err := m.Versions(generic)
	if err != nil {
		return model.NilOID, err
	}
	if len(vs) == 0 {
		return model.NilOID, fmt.Errorf("version: generic %s has no versions", generic)
	}
	best := vs[0]
	bestN := int64(-1)
	for _, v := range vs {
		obj, err := m.db.FetchObject(v)
		if err != nil {
			continue
		}
		nv, _ := m.db.AttrValue(obj, attrNumber)
		n, _ := nv.AsInt()
		if n > bestN {
			bestN, best = n, v
		}
	}
	return best, nil
}

// Versions lists a generic object's versions.
func (m *Manager) Versions(generic model.OID) ([]model.OID, error) {
	gobj, err := m.db.FetchObject(generic)
	if err != nil {
		return nil, err
	}
	vs, err := m.db.AttrValue(gobj, attrVersions)
	if err != nil {
		return nil, ErrNotGeneric
	}
	members, _ := vs.AsSet()
	out := make([]model.OID, 0, len(members))
	for _, mem := range members {
		if oid, ok := mem.AsRef(); ok {
			out = append(out, oid)
		}
	}
	return out, nil
}

// ParentOf returns the version a version was derived from (nil for the
// first version).
func (m *Manager) ParentOf(oid model.OID) (model.OID, error) {
	obj, err := m.db.FetchObject(oid)
	if err != nil {
		return model.NilOID, err
	}
	v, err := m.db.AttrValue(obj, attrParent)
	if err != nil {
		return model.NilOID, ErrNotVersion
	}
	p, _ := v.AsRef()
	return p, nil
}

// RegisterDependent subscribes an object to change notification for a
// generic object: derives and promotes flag it stale.
func (m *Manager) RegisterDependent(generic, dependent model.OID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.dependents[generic]
	if set == nil {
		set = make(map[model.OID]bool)
		m.dependents[generic] = set
	}
	set[dependent] = true
}

// StaleDependents returns the dependents flagged by change notification
// since the last ClearStale.
func (m *Manager) StaleDependents() []model.OID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]model.OID, 0, len(m.stale))
	for oid := range m.stale {
		out = append(out, oid)
	}
	return out
}

// ClearStale acknowledges stale flags.
func (m *Manager) ClearStale() {
	m.mu.Lock()
	m.stale = make(map[model.OID]bool)
	m.mu.Unlock()
}

func (m *Manager) notify(n Notification) {
	m.mu.Lock()
	for dep := range m.dependents[n.Generic] {
		m.stale[dep] = true
	}
	cb := m.callback
	m.mu.Unlock()
	if cb != nil {
		cb(n)
	}
}
