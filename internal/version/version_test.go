package version

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

type world struct {
	db     *core.DB
	vm     *Manager
	design *schema.Class
}

func newWorld(t *testing.T) *world {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	design, err := db.DefineClass("Design", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "area", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EnableVersioning(design.ID); err != nil {
		t.Fatal(err)
	}
	return &world{db: db, vm: vm, design: design}
}

func (w *world) create(t *testing.T) (generic, v1 model.OID) {
	t.Helper()
	err := w.db.Do(func(tx *core.Tx) error {
		var err error
		generic, v1, err = w.vm.CreateVersioned(tx, w.design.ID, map[string]model.Value{
			"name": model.String("alu"), "area": model.Int(100),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return generic, v1
}

func TestCreateVersioned(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	st, err := w.vm.StateOf(v1)
	if err != nil || st != Transient {
		t.Fatalf("state = %v, %v", st, err)
	}
	gg, err := w.vm.GenericOf(v1)
	if err != nil || gg != g {
		t.Fatalf("generic = %v, %v", gg, err)
	}
	vs, _ := w.vm.Versions(g)
	if len(vs) != 1 || vs[0] != v1 {
		t.Fatalf("versions = %v", vs)
	}
}

func TestCreateRequiresEnabledClass(t *testing.T) {
	w := newWorld(t)
	other, _ := w.db.DefineClass("Plain", nil)
	err := w.db.Do(func(tx *core.Tx) error {
		_, _, err := w.vm.CreateVersioned(tx, other.ID, nil)
		return err
	})
	if !errors.Is(err, ErrNotVersionable) {
		t.Fatalf("expected ErrNotVersionable, got %v", err)
	}
}

func TestUpdateRules(t *testing.T) {
	w := newWorld(t)
	_, v1 := w.create(t)
	// Transient updatable.
	err := w.db.Do(func(tx *core.Tx) error {
		return w.vm.UpdateVersion(tx, v1, map[string]model.Value{"area": model.Int(200)})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Promote to working: frozen.
	w.db.Do(func(tx *core.Tx) error {
		_, err := w.vm.Promote(tx, v1)
		return err
	})
	err = w.db.Do(func(tx *core.Tx) error {
		return w.vm.UpdateVersion(tx, v1, map[string]model.Value{"area": model.Int(300)})
	})
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("expected ErrFrozen, got %v", err)
	}
}

func TestDeriveCopiesStateAndPromotesParent(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	var v2 model.OID
	err := w.db.Do(func(tx *core.Tx) error {
		var err error
		v2, err = w.vm.Derive(tx, v1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parent auto-promoted to working.
	st, _ := w.vm.StateOf(v1)
	if st != Working {
		t.Errorf("parent state = %v, want working", st)
	}
	// Child is transient, carries copied attributes, linked to parent.
	st, _ = w.vm.StateOf(v2)
	if st != Transient {
		t.Errorf("child state = %v", st)
	}
	obj, _ := w.db.FetchObject(v2)
	area, _ := w.db.AttrValue(obj, "area")
	if n, _ := area.AsInt(); n != 100 {
		t.Errorf("copied area = %v", area)
	}
	p, _ := w.vm.ParentOf(v2)
	if p != v1 {
		t.Errorf("parent = %v", p)
	}
	vs, _ := w.vm.Versions(g)
	if len(vs) != 2 {
		t.Errorf("versions = %v", vs)
	}
}

func TestDerivationHierarchy(t *testing.T) {
	w := newWorld(t)
	_, v1 := w.create(t)
	var v2, v3, v4 model.OID
	w.db.Do(func(tx *core.Tx) error {
		v2, _ = w.vm.Derive(tx, v1)
		v3, _ = w.vm.Derive(tx, v1) // sibling branch
		v4, _ = w.vm.Derive(tx, v2)
		return nil
	})
	// v2 and v3 share parent v1; v4 descends from v2.
	if p, _ := w.vm.ParentOf(v3); p != v1 {
		t.Error("v3 parent wrong")
	}
	if p, _ := w.vm.ParentOf(v4); p != v2 {
		t.Error("v4 parent wrong")
	}
	// Version numbers are distinct and increasing.
	nums := map[int64]bool{}
	for _, v := range []model.OID{v1, v2, v3, v4} {
		obj, _ := w.db.FetchObject(v)
		nv, _ := w.db.AttrValue(obj, attrNumber)
		n, _ := nv.AsInt()
		if nums[n] {
			t.Fatalf("duplicate version number %d", n)
		}
		nums[n] = true
	}
}

func TestResolveDynamicBinding(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	var v2 model.OID
	w.db.Do(func(tx *core.Tx) error {
		var err error
		v2, err = w.vm.Derive(tx, v1)
		return err
	})
	// No default: resolves to the latest (v2).
	got, err := w.vm.Resolve(g)
	if err != nil || got != v2 {
		t.Fatalf("Resolve = %v, %v (want %v)", got, err, v2)
	}
	// Pin default to v1: static binding.
	w.db.Do(func(tx *core.Tx) error { return w.vm.SetDefault(tx, g, v1) })
	got, _ = w.vm.Resolve(g)
	if got != v1 {
		t.Fatalf("Resolve with default = %v, want %v", got, v1)
	}
}

func TestDeleteRules(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	var v2 model.OID
	w.db.Do(func(tx *core.Tx) error {
		var err error
		v2, err = w.vm.Derive(tx, v1)
		return err
	})
	// Release v1: undeletable.
	w.db.Do(func(tx *core.Tx) error {
		w.vm.Promote(tx, v1) // already working after derive -> released
		return nil
	})
	if st, _ := w.vm.StateOf(v1); st != Released {
		t.Fatalf("v1 state = %v", st)
	}
	err := w.db.Do(func(tx *core.Tx) error { return w.vm.DeleteVersion(tx, v1) })
	if !errors.Is(err, ErrReleased) {
		t.Fatalf("expected ErrReleased, got %v", err)
	}
	// Transient v2 deletable; generic sheds it.
	if err := w.db.Do(func(tx *core.Tx) error { return w.vm.DeleteVersion(tx, v2) }); err != nil {
		t.Fatal(err)
	}
	vs, _ := w.vm.Versions(g)
	if len(vs) != 1 || vs[0] != v1 {
		t.Fatalf("versions after delete = %v", vs)
	}
	if _, err := w.db.FetchObject(v2); err == nil {
		t.Fatal("deleted version still stored")
	}
}

func TestDeleteClearsDefault(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	var v2 model.OID
	w.db.Do(func(tx *core.Tx) error {
		v2, _ = w.vm.Derive(tx, v1)
		return w.vm.SetDefault(tx, g, v2)
	})
	w.db.Do(func(tx *core.Tx) error { return w.vm.DeleteVersion(tx, v2) })
	// Default cleared; resolve falls back to v1.
	got, err := w.vm.Resolve(g)
	if err != nil || got != v1 {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
}

func TestChangeNotification(t *testing.T) {
	w := newWorld(t)
	g, v1 := w.create(t)
	user := model.MakeOID(999, 1) // any object identity can subscribe
	w.vm.RegisterDependent(g, user)
	var events []Notification
	w.vm.OnChange(func(n Notification) { events = append(events, n) })

	w.db.Do(func(tx *core.Tx) error {
		_, err := w.vm.Derive(tx, v1)
		return err
	})
	stale := w.vm.StaleDependents()
	if len(stale) != 1 || stale[0] != user {
		t.Fatalf("stale = %v", stale)
	}
	// Derive auto-promoted v1 first, so two events arrive: promote then
	// derive.
	if len(events) != 2 || events[0].Event != "promote" || events[1].Event != "derive" {
		t.Fatalf("events = %+v", events)
	}
	w.vm.ClearStale()
	if len(w.vm.StaleDependents()) != 0 {
		t.Fatal("ClearStale ineffective")
	}
}

func TestReattachDetectsEnabledClasses(t *testing.T) {
	dir := t.TempDir()
	db, _ := core.Open(dir, core.Options{})
	design, _ := db.DefineClass("Design", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	vm, _ := New(db)
	vm.EnableVersioning(design.ID)
	var g, v1 model.OID
	db.Do(func(tx *core.Tx) error {
		g, v1, _ = vm.CreateVersioned(tx, design.ID, map[string]model.Value{"name": model.String("x")})
		return nil
	})
	db.Close()

	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	vm2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	// Versioning survives reopen: no re-enable needed.
	err = db2.Do(func(tx *core.Tx) error {
		_, err := vm2.Derive(tx, v1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := vm2.Versions(g)
	if len(vs) != 2 {
		t.Fatalf("versions after reopen = %v", vs)
	}
}

func TestPolicyTailorsSemantics(t *testing.T) {
	// The §5.5 layering: an installation where working versions stay
	// editable, released versions are deletable, and deriving never
	// auto-promotes.
	w := newWorld(t)
	noPromote := false
	w.vm.SetPolicy(Policy{
		CanUpdate:             func(s State) bool { return s != Released },
		CanDelete:             func(State) bool { return true },
		PromoteParentOnDerive: &noPromote,
	})
	_, v1 := w.create(t)
	w.db.Do(func(tx *core.Tx) error {
		_, err := w.vm.Promote(tx, v1) // -> working
		return err
	})
	// Working versions editable under this policy.
	err := w.db.Do(func(tx *core.Tx) error {
		return w.vm.UpdateVersion(tx, v1, map[string]model.Value{"area": model.Int(7)})
	})
	if err != nil {
		t.Fatalf("policy should allow updating working version: %v", err)
	}
	// Deriving from a transient version leaves it transient.
	var v2, v3 model.OID
	w.db.Do(func(tx *core.Tx) error {
		v2, _ = w.vm.Derive(tx, v1)
		v3, _ = w.vm.Derive(tx, v2)
		return nil
	})
	if st, _ := w.vm.StateOf(v2); st != Transient {
		t.Fatalf("v2 state = %v; policy disabled auto-promote", st)
	}
	_ = v3
	// Released versions deletable under this policy.
	w.db.Do(func(tx *core.Tx) error {
		w.vm.Promote(tx, v2)
		w.vm.Promote(tx, v2)
		return nil
	})
	if st, _ := w.vm.StateOf(v2); st != Released {
		t.Fatalf("v2 state = %v", st)
	}
	if err := w.db.Do(func(tx *core.Tx) error { return w.vm.DeleteVersion(tx, v2) }); err != nil {
		t.Fatalf("policy should allow deleting released: %v", err)
	}
	// Resetting to the zero policy restores Chou-Kim rules.
	w.vm.SetPolicy(Policy{})
	err = w.db.Do(func(tx *core.Tx) error {
		return w.vm.UpdateVersion(tx, v1, map[string]model.Value{"area": model.Int(9)})
	})
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("default policy should freeze working versions: %v", err)
	}
}
