// Package client is the Go wire client for kimsrv: it speaks the
// internal/server/proto protocol and exposes the engine's Session surface
// — Query/QuerySnapshot, Fetch/Get, Insert/Update/Delete,
// Begin/Commit/CommitAsync/Abort — over a network connection, so an
// application links against this package instead of the embedded engine
// and moves between the two with the same call shapes.
//
// A Client owns one connection and one server-side session. Calls are
// safe for concurrent use; they are serialized onto the connection in
// request order (the server executes a session's requests in order, so
// one connection is one session's program order). For parallelism, open
// more clients — sessions are what the server multiplexes.
//
// Typed errors: the server's wire error codes surface as wrapped
// sentinel errors (ErrDenied, ErrRetryable, ErrDraining, ...) that
// callers dispatch on with errors.Is; the server's message text rides
// along in Error().
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"oodb/internal/model"
	"oodb/internal/server/proto"
)

// Typed client-facing errors, mapped from wire error codes.
var (
	// ErrDenied reports an authorization denial.
	ErrDenied = errors.New("client: access denied")
	// ErrAuth reports a handshake rejection (unknown role or bad token).
	ErrAuth = errors.New("client: authentication failed")
	// ErrRetryable reports an admission-control shed: the request was not
	// executed and a retry after backoff is expected to succeed.
	ErrRetryable = errors.New("client: server over capacity (retryable)")
	// ErrDraining reports a server in graceful shutdown.
	ErrDraining = errors.New("client: server draining")
	// ErrServerFull reports the session limit was reached at handshake.
	ErrServerFull = errors.New("client: server session limit reached")
	// ErrNotFound reports a missing object, class or attribute.
	ErrNotFound = errors.New("client: not found")
	// ErrTxState reports Begin with a transaction open or
	// Commit/CommitAsync/Abort without one.
	ErrTxState = errors.New("client: transaction state")
	// ErrConflict reports a deadlock casualty; the transaction was
	// aborted server-side and may be retried from Begin.
	ErrConflict = errors.New("client: transaction aborted by conflict")
	// ErrVersion reports a protocol version mismatch.
	ErrVersion = errors.New("client: protocol version mismatch")
	// ErrBadRequest reports a request the server could not parse.
	ErrBadRequest = errors.New("client: bad request")
	// ErrTooLarge reports a frame beyond the server's limit.
	ErrTooLarge = errors.New("client: frame too large")
	// ErrUnavailable reports an engine fail-stop; the server must
	// restart before it can execute anything.
	ErrUnavailable = errors.New("client: server unavailable (engine fail-stopped)")
	// ErrServer is an unclassified server-side failure.
	ErrServer = errors.New("client: server error")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: connection closed")
	// ErrProtocol reports a response that does not decode or match the
	// request sequence; the connection is unusable afterwards.
	ErrProtocol = errors.New("client: protocol error")
)

func codeErr(code byte) error {
	switch code {
	case proto.ErrCodeDenied:
		return ErrDenied
	case proto.ErrCodeAuth:
		return ErrAuth
	case proto.ErrCodeRetryable:
		return ErrRetryable
	case proto.ErrCodeDraining:
		return ErrDraining
	case proto.ErrCodeServerFull:
		return ErrServerFull
	case proto.ErrCodeNotFound:
		return ErrNotFound
	case proto.ErrCodeTxState:
		return ErrTxState
	case proto.ErrCodeConflict:
		return ErrConflict
	case proto.ErrCodeVersion:
		return ErrVersion
	case proto.ErrCodeBadRequest:
		return ErrBadRequest
	case proto.ErrCodeTooLarge:
		return ErrTooLarge
	case proto.ErrCodeUnavailable:
		return ErrUnavailable
	default:
		return ErrServer
	}
}

// Retryable reports whether err is worth retrying after a backoff
// (admission-control shed or session limit).
func Retryable(err error) bool {
	return errors.Is(err, ErrRetryable) || errors.Is(err, ErrServerFull)
}

// notSentError marks a connection error raised before the request was
// written to the wire; see NotSent.
type notSentError struct{ err error }

func (e *notSentError) Error() string { return e.err.Error() }
func (e *notSentError) Unwrap() error { return e.err }

// NotSent reports whether err is a connection failure that provably
// happened before the request reached the wire — the client had already
// latched closed — so the server cannot have executed the request and a
// retry on a fresh connection is safe even for non-idempotent
// operations. A connection error without this mark (write failure,
// response timeout, lost frame) is ambiguous: the server may already
// have executed the request exactly once.
func NotSent(err error) bool {
	var ns *notSentError
	return errors.As(err, &ns)
}

// Options configures Dial.
type Options struct {
	// Role is the session's role name (authorization subject).
	Role string
	// Token authenticates the role when the server requires one.
	Token string
	// DialTimeout bounds the TCP connect + handshake (default 10s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round-trip (default 60s).
	RequestTimeout time.Duration
	// MaxFrame caps accepted response frames (default proto.MaxFrame).
	MaxFrame int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Role == "" {
		out.Role = "public"
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 10 * time.Second
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 60 * time.Second
	}
	if out.MaxFrame <= 0 || out.MaxFrame > proto.MaxFrame {
		out.MaxFrame = proto.MaxFrame
	}
	return out
}

// Result is a query result received over the wire.
type Result struct {
	Cols []string
	Rows []Row
}

// Row is one result row: the object's identity (zero for aggregate rows)
// and projected values aligned with Result.Cols.
type Row struct {
	OID    model.OID
	Values []model.Value
}

// Object is a fetched object: identity, class name, and effective
// attributes (inheritance and class defaults applied server-side).
type Object struct {
	OID   model.OID
	Class string
	Attrs map[string]model.Value
}

// Client is one connection to a kimsrv server, carrying one session.
type Client struct {
	mu        sync.Mutex
	nc        net.Conn
	opts      Options
	seq       uint32
	sessionID uint64
	closed    bool
}

// Dial connects to a kimsrv server and performs the protocol handshake.
func Dial(addr string, opts Options) (*Client, error) {
	o := opts.withDefaults()
	nc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, opts: o}
	deadline := time.Now().Add(o.DialTimeout)
	_ = nc.SetDeadline(deadline)
	body := proto.AppendHello(nil, proto.Hello{Version: proto.Version, Role: o.Role, Token: o.Token})
	respBody, err := c.roundTripLocked(proto.VerbHello, body)
	_ = nc.SetDeadline(time.Time{})
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	w, err := proto.ReadWelcome(proto.NewReader(respBody))
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("%w: bad welcome: %v", ErrProtocol, err)
	}
	c.sessionID = w.SessionID
	return c, nil
}

// SessionID returns the server-assigned session identifier.
func (c *Client) SessionID() uint64 { return c.sessionID }

// Close closes the connection. The server aborts any open transaction.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// roundTrip sends one request and reads its response body.
func (c *Client) roundTrip(verb byte, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Nothing was sent on this latched connection; mark the error so
		// Redialer.Do may safely retry even non-idempotent requests.
		return nil, &notSentError{ErrClosed}
	}
	_ = c.nc.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	resp, err := c.roundTripLocked(verb, body)
	_ = c.nc.SetDeadline(time.Time{})
	if err != nil && (errors.Is(err, ErrClosed) || errors.Is(err, ErrProtocol)) {
		// A timeout, partial read/write or sequence mismatch leaves the
		// stream desynchronized: later frames would be misparsed or
		// matched to the wrong request. Latch closed so every later call
		// fails fast with ErrClosed instead.
		c.closed = true
		_ = c.nc.Close()
	}
	return resp, err
}

func (c *Client) roundTripLocked(verb byte, body []byte) ([]byte, error) {
	c.seq++
	seq := c.seq
	payload := proto.AppendRequest(make([]byte, 0, 5+len(body)), verb, seq)
	payload = append(payload, body...)
	framed := proto.AppendFrame(make([]byte, 0, 4+len(payload)), payload)
	if _, err := c.nc.Write(framed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	respPayload, err := proto.ReadFrame(c.nc, c.opts.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	r := proto.NewReader(respPayload)
	status := r.Byte()
	gotSeq := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: short response", ErrProtocol)
	}
	if gotSeq != seq {
		// A shed of a pipelined request or a stray error (seq 0) means
		// the stream no longer matches our program order.
		return nil, fmt.Errorf("%w: response seq %d, want %d", ErrProtocol, gotSeq, seq)
	}
	switch status {
	case proto.StatusOK:
		return respPayload[5:], nil
	case proto.StatusErr:
		code := r.Byte()
		msg := r.ReadString()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: bad error response", ErrProtocol)
		}
		return nil, fmt.Errorf("%w: %s", codeErr(code), msg)
	default:
		return nil, fmt.Errorf("%w: unknown status %d", ErrProtocol, status)
	}
}

// --- Session surface ----------------------------------------------------

// Query runs a declarative query; results are filtered to what the
// session's role may read.
func (c *Client) Query(src string) (*Result, error) {
	return c.query(proto.VerbQuery, src)
}

// QuerySnapshot runs a query in a lock-free snapshot at the server's last
// commit epoch.
func (c *Client) QuerySnapshot(src string) (*Result, error) {
	return c.query(proto.VerbQuerySnapshot, src)
}

func (c *Client) query(verb byte, src string) (*Result, error) {
	body, err := c.roundTrip(verb, proto.AppendString(nil, src))
	if err != nil {
		return nil, err
	}
	wire, err := proto.ReadResult(proto.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: bad result: %v", ErrProtocol, err)
	}
	res := &Result{Cols: wire.Cols, Rows: make([]Row, 0, len(wire.Rows))}
	for _, row := range wire.Rows {
		res.Rows = append(res.Rows, Row{OID: row.OID, Values: row.Values})
	}
	return res, nil
}

// Fetch returns an object with its effective attributes. Reads hit the
// session's server-side workspace cache; pass refresh to force a reload
// of the last committed state.
func (c *Client) Fetch(oid model.OID) (*Object, error) { return c.fetch(oid, false) }

// FetchFresh is Fetch bypassing the session's workspace cache.
func (c *Client) FetchFresh(oid model.OID) (*Object, error) { return c.fetch(oid, true) }

func (c *Client) fetch(oid model.OID, refresh bool) (*Object, error) {
	req := proto.AppendOID(nil, oid)
	var rb byte
	if refresh {
		rb = 1
	}
	req = append(req, rb)
	body, err := c.roundTrip(proto.VerbFetch, req)
	if err != nil {
		return nil, err
	}
	wire, err := proto.ReadObject(proto.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: bad object: %v", ErrProtocol, err)
	}
	return &Object{OID: wire.OID, Class: wire.Class, Attrs: wire.Attrs}, nil
}

// Get reads one attribute of an object (inheritance and defaults applied).
func (c *Client) Get(oid model.OID, attr string) (model.Value, error) {
	req := proto.AppendOID(nil, oid)
	req = proto.AppendString(req, attr)
	body, err := c.roundTrip(proto.VerbGet, req)
	if err != nil {
		return model.Null, err
	}
	r := proto.NewReader(body)
	v := r.Value()
	if err := r.Err(); err != nil {
		return model.Null, fmt.Errorf("%w: bad value: %v", ErrProtocol, err)
	}
	return v, nil
}

// Insert creates an object. Inside an open transaction it joins the
// transaction; otherwise it autocommits.
func (c *Client) Insert(class string, attrs map[string]model.Value) (model.OID, error) {
	req := proto.AppendString(nil, class)
	req = proto.AppendAttrs(req, attrs)
	body, err := c.roundTrip(proto.VerbInsert, req)
	if err != nil {
		return 0, err
	}
	r := proto.NewReader(body)
	oid := r.OID()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("%w: bad oid: %v", ErrProtocol, err)
	}
	return oid, nil
}

// Update writes attributes of an object.
func (c *Client) Update(oid model.OID, attrs map[string]model.Value) error {
	req := proto.AppendOID(nil, oid)
	req = proto.AppendAttrs(req, attrs)
	_, err := c.roundTrip(proto.VerbUpdate, req)
	return err
}

// Delete removes an object.
func (c *Client) Delete(oid model.OID) error {
	_, err := c.roundTrip(proto.VerbDelete, proto.AppendOID(nil, oid))
	return err
}

// Begin opens an explicit transaction on the session. Subsequent
// Insert/Update/Delete/Fetch/Query calls run inside it until Commit,
// CommitAsync or Abort.
func (c *Client) Begin() error {
	_, err := c.roundTrip(proto.VerbBegin, nil)
	return err
}

// Commit makes the session's open transaction durable.
func (c *Client) Commit() error {
	_, err := c.roundTrip(proto.VerbCommit, nil)
	return err
}

// CommitAsync commits with relaxed durability: the server acknowledges as
// soon as the commit record is queued for the WAL writer's next batch. A
// server crash can lose a suffix of async-acknowledged commits, never an
// intermediate one.
func (c *Client) CommitAsync() error {
	_, err := c.roundTrip(proto.VerbCommitAsync, nil)
	return err
}

// Abort rolls back the session's open transaction.
func (c *Client) Abort() error {
	_, err := c.roundTrip(proto.VerbAbort, nil)
	return err
}

// Classes returns the sorted class names of the served database.
func (c *Client) Classes() ([]string, error) {
	body, err := c.roundTrip(proto.VerbClasses, nil)
	if err != nil {
		return nil, err
	}
	r := proto.NewReader(body)
	names := r.Strings()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: bad class list: %v", ErrProtocol, err)
	}
	return names, nil
}

// Ping checks liveness end-to-end through the session worker.
func (c *Client) Ping() error {
	_, err := c.roundTrip(proto.VerbPing, nil)
	return err
}
