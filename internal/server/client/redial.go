package client

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Redialer wraps a Client with automatic re-establishment. A Client
// latches closed on the first timeout or protocol desync — deliberately,
// because the stream is unsynchronized — which means long-lived holders
// (health probes, shard routers) would otherwise keep a permanently dead
// handle. A Redialer owns the dial loop instead: Do borrows the current
// connection, and when a call fails with a connection-level error
// (ErrClosed, ErrProtocol) the dead client is discarded and the next Do
// dials afresh.
//
// Redial attempts are rate-limited with capped exponential backoff:
// after a failed dial, calls inside the backoff window fail fast with
// the dial error instead of hammering a down server. A successful dial
// resets the backoff.
//
// A Redialer is safe for concurrent use. Note that rotating the
// underlying connection rotates the server-side session: an explicit
// transaction does not survive a redial (the server aborts it when the
// old connection dies), so transactional callers must treat a redial as
// a transaction abort and retry from Begin.
type Redialer struct {
	addr string
	opts Options

	// Backoff schedule; fixed at construction.
	base time.Duration
	cap  time.Duration

	mu      sync.Mutex
	c       *Client
	closed  bool
	backoff time.Duration // next wait; 0 after a success
	until   time.Time     // no dial attempts before this instant
	lastErr error         // dial error reported during the backoff window
}

// RedialOptions configures a Redialer beyond the embedded client options.
type RedialOptions struct {
	// Backoff is the first retry delay after a failed dial (default 50ms).
	Backoff time.Duration
	// BackoffCap bounds the exponential growth (default 5s).
	BackoffCap time.Duration
}

// NewRedialer returns a Redialer for addr. No connection is made until
// the first Client or Do call.
func NewRedialer(addr string, opts Options, ropts RedialOptions) *Redialer {
	base := ropts.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := ropts.BackoffCap
	if cap < base {
		cap = 5 * time.Second
		if cap < base {
			cap = base
		}
	}
	return &Redialer{addr: addr, opts: opts, base: base, cap: cap}
}

// Addr returns the dial address.
func (rd *Redialer) Addr() string { return rd.addr }

// Client returns a live client, dialing if necessary. During a backoff
// window after a failed dial it fails fast with the previous dial error.
func (rd *Redialer) Client() (*Client, error) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return rd.clientLocked()
}

func (rd *Redialer) clientLocked() (*Client, error) {
	if rd.closed {
		return nil, ErrClosed
	}
	if rd.c != nil {
		return rd.c, nil
	}
	if now := time.Now(); now.Before(rd.until) {
		return nil, fmt.Errorf("%w (redial in %v)", rd.lastErr, rd.until.Sub(now).Round(time.Millisecond))
	}
	c, err := Dial(rd.addr, rd.opts)
	if err != nil {
		if rd.backoff == 0 {
			rd.backoff = rd.base
		} else if rd.backoff < rd.cap {
			rd.backoff *= 2
			if rd.backoff > rd.cap {
				rd.backoff = rd.cap
			}
		}
		rd.until = time.Now().Add(rd.backoff)
		rd.lastErr = err
		return nil, err
	}
	rd.backoff = 0
	rd.until = time.Time{}
	rd.lastErr = nil
	rd.c = c
	return c, nil
}

// Invalidate discards the current connection (if it is still the one the
// caller saw fail) so the next call dials afresh. Invalidation does not
// start a backoff window: the connection dying says nothing about
// whether an immediate redial would succeed.
func (rd *Redialer) Invalidate(c *Client) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if c != nil && rd.c == c {
		rd.c = nil
		_ = c.Close()
	}
}

// Do runs fn with a live client. If fn fails with a connection-level
// error (ErrClosed, ErrProtocol) the connection is discarded so the
// next call dials afresh. The failed call itself is retried once on a
// fresh dial only when the failure provably preceded the send — the
// borrowed client had already latched closed (NotSent) — because then
// the server cannot have executed the request, making the heal safe
// even for non-idempotent operations. A connection error raised
// mid-round-trip (write failure, response timeout, lost frame) is
// returned as-is: the server may have executed the request already,
// and blindly re-sending could execute it twice. Operations that are
// idempotent can opt into the broader heal with DoIdempotent.
func (rd *Redialer) Do(fn func(*Client) error) error { return rd.do(fn, false) }

// DoIdempotent is Do for operations the caller asserts are idempotent
// (reads, pings, attribute writes that converge): it additionally
// retries once when the connection died mid-round-trip, accepting that
// the server may execute the request a second time.
func (rd *Redialer) DoIdempotent(fn func(*Client) error) error { return rd.do(fn, true) }

func (rd *Redialer) do(fn func(*Client) error, idempotent bool) error {
	for attempt := 0; ; attempt++ {
		c, err := rd.Client()
		if err != nil {
			return err
		}
		err = fn(c)
		if err == nil {
			return nil
		}
		if connErr(err) {
			rd.Invalidate(c)
		}
		retriable := NotSent(err) || (idempotent && connErr(err))
		if !retriable || attempt > 0 {
			return err
		}
	}
}

// connErr reports whether err indicates the connection itself (not the
// request) failed, so a fresh dial may heal it.
func connErr(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, ErrProtocol)
}

// Close closes the Redialer and the current connection. Later calls
// fail with ErrClosed.
func (rd *Redialer) Close() error {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if rd.closed {
		return nil
	}
	rd.closed = true
	if rd.c != nil {
		err := rd.c.Close()
		rd.c = nil
		return err
	}
	return nil
}
