package server

import "oodb/internal/obs"

// Server metrics, layer "server". The gauges are not just reporting: the
// admission controller reads the same counters it publishes here
// (sessions, in-flight requests) to decide handshake rejection and
// queue-depth shedding, so /metrics always shows the exact state the
// controller acted on.
var (
	// Sessions.
	mSessionsActive   = obs.RegisterGauge("server_sessions_active")
	mSessionsOpened   = obs.RegisterCounter("server_sessions_opened_total")
	mSessionsEvicted  = obs.RegisterCounter("server_sessions_evicted_total")
	mSessionsRejected = obs.RegisterCounter("server_sessions_rejected_total")

	// Requests. Per-verb counters follow server_requests_<verb>_total.
	mReqInflight  = obs.RegisterGauge("server_requests_inflight")
	mReqShed      = obs.RegisterCounter("server_requests_shed_total")
	mReqErrors    = obs.RegisterCounter("server_requests_errors_total")
	mReqLatencyNs = obs.RegisterHistogram("server_request_latency_ns")

	mReqQuery       = obs.RegisterCounter("server_requests_query_total")
	mReqSnapshot    = obs.RegisterCounter("server_requests_snapshot_total")
	mReqFetch       = obs.RegisterCounter("server_requests_fetch_total")
	mReqGet         = obs.RegisterCounter("server_requests_get_total")
	mReqInsert      = obs.RegisterCounter("server_requests_insert_total")
	mReqUpdate      = obs.RegisterCounter("server_requests_update_total")
	mReqDelete      = obs.RegisterCounter("server_requests_delete_total")
	mReqBegin       = obs.RegisterCounter("server_requests_begin_total")
	mReqCommit      = obs.RegisterCounter("server_requests_commit_total")
	mReqCommitAsync = obs.RegisterCounter("server_requests_commitasync_total")
	mReqAbort       = obs.RegisterCounter("server_requests_abort_total")
	mReqPing        = obs.RegisterCounter("server_requests_ping_total")
	mReqClasses     = obs.RegisterCounter("server_requests_classes_total")

	// Wire traffic.
	mBytesIn  = obs.RegisterCounter("server_bytes_in_total")
	mBytesOut = obs.RegisterCounter("server_bytes_out_total")

	// Lifecycle.
	mConnPanics  = obs.RegisterCounter("server_conn_panics_total")
	mDrainAborts = obs.RegisterCounter("server_drain_aborted_txns_total")
	mDrains      = obs.RegisterCounter("server_drain_started_total")
)
