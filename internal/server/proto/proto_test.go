package proto

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"oodb/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf, MaxFrame)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, MaxFrame); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReadFrameRefusesOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 512)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-10]
	_, err := ReadFrame(bytes.NewReader(short), MaxFrame)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Version: Version, Role: "engineer", Token: "s3cret"}
	buf := AppendHello(nil, h)
	got, err := ReadHello(NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
}

func TestHelloBadMagic(t *testing.T) {
	buf := AppendHello(nil, Hello{Version: 1, Role: "r"})
	buf[0] ^= 0xFF
	if _, err := ReadHello(NewReader(buf)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestAttrsRoundTrip(t *testing.T) {
	attrs := map[string]model.Value{
		"weight": model.Int(7600),
		"name":   model.String("clamp"),
		"parts":  model.Set(model.Ref(model.OID(42)), model.Int(-1)),
		"ok":     model.Bool(true),
		"ratio":  model.Float(2.5),
		"note":   model.Null,
	}
	buf := AppendAttrs(nil, attrs)
	got := NewReader(buf).Attrs()
	if len(got) != len(attrs) {
		t.Fatalf("got %d attrs, want %d", len(got), len(attrs))
	}
	for name, v := range attrs {
		if model.Compare(got[name], v) != 0 {
			t.Fatalf("attr %q: got %v, want %v", name, got[name], v)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := &Result{
		Cols: []string{"oid", "weight"},
		Rows: []ResultRow{
			{OID: model.OID(1<<40 | 7), Values: []model.Value{model.Ref(model.OID(1<<40 | 7)), model.Int(10)}},
			{OID: 0, Values: []model.Value{model.Null, model.Float(1.5)}},
		},
	}
	buf := AppendResult(nil, res)
	got, err := ReadResult(NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cols, res.Cols) {
		t.Fatalf("cols: got %v, want %v", got.Cols, res.Cols)
	}
	if len(got.Rows) != len(res.Rows) {
		t.Fatalf("rows: got %d, want %d", len(got.Rows), len(res.Rows))
	}
	for i := range res.Rows {
		if got.Rows[i].OID != res.Rows[i].OID {
			t.Fatalf("row %d oid: got %v, want %v", i, got.Rows[i].OID, res.Rows[i].OID)
		}
		for j := range res.Rows[i].Values {
			if model.Compare(got.Rows[i].Values[j], res.Rows[i].Values[j]) != 0 {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestObjectRoundTrip(t *testing.T) {
	o := &Object{
		OID:   model.OID(3<<40 | 9),
		Class: "Vehicle",
		Attrs: map[string]model.Value{"weight": model.Int(7600)},
	}
	got, err := ReadObject(NewReader(AppendObject(nil, o)))
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != o.OID || got.Class != o.Class || len(got.Attrs) != 1 ||
		model.Compare(got.Attrs["weight"], o.Attrs["weight"]) != 0 {
		t.Fatalf("got %+v, want %+v", got, o)
	}
}

// TestReaderNeverPanics drives the decoding cursor with random junk: every
// decode must end in a latched error or clean values, never a panic or an
// out-of-range slice. This is the unit-level half of the server's
// malformed-frame guarantee.
func TestReaderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		r := NewReader(buf)
		// Exercise every read primitive in a random order.
		for k := 0; k < 8; k++ {
			switch rng.Intn(6) {
			case 0:
				r.Byte()
			case 1:
				r.Uvarint()
			case 2:
				_ = r.ReadString()
			case 3:
				r.Value()
			case 4:
				r.Attrs()
			case 5:
				r.Uint32()
			}
		}
		r2 := NewReader(buf)
		_, _ = ReadResult(r2)
		r3 := NewReader(buf)
		_, _ = ReadObject(r3)
		r4 := NewReader(buf)
		_, _ = ReadHello(r4)
	}
}

func TestErrorResponseShape(t *testing.T) {
	buf := AppendError(nil, 7, ErrCodeRetryable, "shed")
	r := NewReader(buf)
	if st := r.Byte(); st != StatusErr {
		t.Fatalf("status = %d", st)
	}
	if seq := r.Uint32(); seq != 7 {
		t.Fatalf("seq = %d", seq)
	}
	if code := r.Byte(); code != ErrCodeRetryable {
		t.Fatalf("code = %d", code)
	}
	if msg := r.ReadString(); msg != "shed" {
		t.Fatalf("msg = %q", msg)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}
