// Package proto is kimdb's wire protocol: the framing, verbs, typed
// error codes and message codecs shared by the kimsrv server
// (internal/server) and the Go client (internal/server/client).
//
// The protocol is deliberately minimal — the client-server split the
// paper's architecture assumes (§5: an engine that serves applications,
// with sessions and authorization as database facilities) needs exactly
// the Session surface, not a general RPC system:
//
//   - Every message is one length-prefixed frame: a 4-byte big-endian
//     payload length followed by the payload. A frame longer than the
//     negotiated maximum is a protocol error; the receiver must refuse it
//     without allocating the claimed length.
//   - A request payload is verb byte | sequence uint32 | body. A response
//     payload is status byte | sequence uint32 | body, echoing the request
//     sequence so clients may pipeline. Error responses carry a one-byte
//     typed code and a human-readable message; the codes — not the message
//     strings — are the contract clients dispatch on (retryable shed,
//     draining, authorization denial, ...).
//   - The first frame on a connection is the handshake: magic, protocol
//     version, role, token. The server refuses mismatched versions,
//     unknown roles, bad tokens, drained or full servers — each with its
//     typed code — before any session state exists.
//   - Values, attribute maps and query results reuse the storage encoding
//     of internal/model (AppendValue/DecodeValue), so the wire format
//     inherits the engine's one canonical value codec instead of growing a
//     second one.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"oodb/internal/model"
)

// Magic opens every handshake frame.
const Magic = "kimw"

// Version is the protocol version this build speaks. A server refuses a
// client with a different version (ErrCodeVersion) and reports its own
// version in the handshake response, so mixed deployments fail fast and
// loud instead of misparsing frames.
const Version = 1

// MaxFrame is the default maximum frame length (16 MiB): generous enough
// for multi-megabyte blob attribute values and large result sets, small
// enough that a hostile length prefix cannot balloon server memory.
const MaxFrame = 16 << 20

// frameHeaderLen is the length prefix size.
const frameHeaderLen = 4

// Verbs. The wire surface is the engine's Session surface plus explicit
// transaction control and a liveness ping.
const (
	VerbHello byte = iota + 1
	VerbQuery
	VerbQuerySnapshot
	VerbFetch
	VerbGet
	VerbInsert
	VerbUpdate
	VerbDelete
	VerbBegin
	VerbCommit
	VerbCommitAsync
	VerbAbort
	VerbPing
	VerbClasses
)

// VerbName returns the lowercase name of a verb (for metrics and errors).
func VerbName(v byte) string {
	switch v {
	case VerbHello:
		return "hello"
	case VerbQuery:
		return "query"
	case VerbQuerySnapshot:
		return "snapshot"
	case VerbFetch:
		return "fetch"
	case VerbGet:
		return "get"
	case VerbInsert:
		return "insert"
	case VerbUpdate:
		return "update"
	case VerbDelete:
		return "delete"
	case VerbBegin:
		return "begin"
	case VerbCommit:
		return "commit"
	case VerbCommitAsync:
		return "commitasync"
	case VerbAbort:
		return "abort"
	case VerbPing:
		return "ping"
	case VerbClasses:
		return "classes"
	default:
		return fmt.Sprintf("verb(%d)", v)
	}
}

// Response status bytes.
const (
	StatusOK  byte = 0
	StatusErr byte = 1
)

// Typed error codes carried by error responses. Clients dispatch on these;
// the accompanying message is for humans.
const (
	// ErrCodeInternal is an unclassified server-side failure.
	ErrCodeInternal byte = iota + 1
	// ErrCodeBadRequest is a malformed or unparseable request body.
	ErrCodeBadRequest
	// ErrCodeVersion is a protocol version mismatch at handshake.
	ErrCodeVersion
	// ErrCodeAuth is a handshake rejection: unknown role or bad token.
	ErrCodeAuth
	// ErrCodeDenied is an authorization denial on an operation.
	ErrCodeDenied
	// ErrCodeNotFound is a fetch of a nonexistent object/class/attribute.
	ErrCodeNotFound
	// ErrCodeTxState is a transaction-state error: Begin with a
	// transaction already open, Commit/Abort with none.
	ErrCodeTxState
	// ErrCodeConflict is a concurrency casualty (deadlock victim); the
	// transaction was aborted and the request may be retried afresh.
	ErrCodeConflict
	// ErrCodeRetryable is an admission-control shed: the server or session
	// queue is over capacity. The request was not executed; retrying after
	// a backoff is expected to succeed.
	ErrCodeRetryable
	// ErrCodeDraining reports a server in graceful shutdown: it accepts no
	// new sessions or work.
	ErrCodeDraining
	// ErrCodeServerFull is a handshake rejection: the session limit is
	// reached. Retryable by reconnecting later.
	ErrCodeServerFull
	// ErrCodeTooLarge is a frame exceeding the maximum length.
	ErrCodeTooLarge
	// ErrCodeUnavailable is an engine fail-stop (poisoned database): the
	// server cannot execute anything until restarted.
	ErrCodeUnavailable
)

// Framing errors.
var (
	// ErrFrameTooLarge reports a frame whose length prefix exceeds the
	// maximum. The stream is unsynchronized after this; the connection
	// must close.
	ErrFrameTooLarge = errors.New("proto: frame exceeds maximum length")
	// ErrMalformed reports a payload that does not decode.
	ErrMalformed = errors.New("proto: malformed message")
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends the framed payload to dst (single-write send path).
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame, refusing lengths beyond max before
// allocating. io.EOF is returned unchanged at a clean frame boundary.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// --- Append-side primitives --------------------------------------------

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendStrings appends a uvarint-counted list of strings.
func AppendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = AppendString(dst, s)
	}
	return dst
}

// AppendUvarint appends a uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendOID appends an object identifier.
func AppendOID(dst []byte, oid model.OID) []byte {
	return binary.AppendUvarint(dst, uint64(oid))
}

// AppendValue appends a value in the engine's canonical encoding.
func AppendValue(dst []byte, v model.Value) []byte {
	return model.AppendValue(dst, v)
}

// AppendAttrs appends a name→value attribute map (count, then pairs).
// Iteration order is not part of the contract; receivers rebuild a map.
func AppendAttrs(dst []byte, attrs map[string]model.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for name, v := range attrs {
		dst = AppendString(dst, name)
		dst = model.AppendValue(dst, v)
	}
	return dst
}

// --- Read-side cursor ---------------------------------------------------

// Reader is a decoding cursor over one payload. The first malformed field
// latches the error; every later read returns zero values, so decode
// sequences can check Err once at the end. Hostile input can therefore
// never panic the caller — it only latches ErrMalformed.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a cursor over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrMalformed
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uvarint reads a uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// String reads a length-prefixed string.
func (r *Reader) ReadString() string {
	n := r.Uvarint()
	if r.err != nil || n > uint64(r.Remaining()) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Strings reads a uvarint-counted list of strings.
func (r *Reader) Strings() []string {
	n := r.Uvarint()
	if r.err != nil || n > uint64(r.Remaining())+1 {
		r.fail()
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, r.ReadString())
	}
	if r.err != nil {
		return nil
	}
	return ss
}

// OID reads an object identifier.
func (r *Reader) OID() model.OID { return model.OID(r.Uvarint()) }

// Value reads one value in the engine's canonical encoding.
func (r *Reader) Value() model.Value {
	if r.err != nil {
		return model.Null
	}
	v, n, err := model.DecodeValue(r.buf[r.off:])
	if err != nil {
		r.fail()
		return model.Null
	}
	r.off += n
	return v
}

// Attrs reads a name→value attribute map.
func (r *Reader) Attrs() map[string]model.Value {
	n := r.Uvarint()
	if r.err != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	attrs := make(map[string]model.Value, n)
	for i := uint64(0); i < n; i++ {
		name := r.ReadString()
		v := r.Value()
		if r.err != nil {
			return nil
		}
		attrs[name] = v
	}
	return attrs
}

// --- Handshake ----------------------------------------------------------

// Hello is the client half of the handshake.
type Hello struct {
	Version uint64
	Role    string
	Token   string
}

// AppendHello encodes a handshake request body.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, Magic...)
	dst = binary.AppendUvarint(dst, h.Version)
	dst = AppendString(dst, h.Role)
	return AppendString(dst, h.Token)
}

// ReadHello decodes a handshake request body.
func ReadHello(r *Reader) (Hello, error) {
	var h Hello
	for i := 0; i < len(Magic); i++ {
		if r.Byte() != Magic[i] {
			return h, fmt.Errorf("%w: bad magic", ErrMalformed)
		}
	}
	h.Version = r.Uvarint()
	h.Role = r.ReadString()
	h.Token = r.ReadString()
	if err := r.Err(); err != nil {
		return h, err
	}
	return h, nil
}

// Welcome is the server half of the handshake.
type Welcome struct {
	Version   uint64
	SessionID uint64
}

// AppendWelcome encodes a handshake response body.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = binary.AppendUvarint(dst, w.Version)
	return binary.AppendUvarint(dst, w.SessionID)
}

// ReadWelcome decodes a handshake response body.
func ReadWelcome(r *Reader) (Welcome, error) {
	w := Welcome{Version: r.Uvarint(), SessionID: r.Uvarint()}
	return w, r.Err()
}

// --- Requests and responses --------------------------------------------

// AppendRequest encodes a request header (verb, sequence) before the body.
func AppendRequest(dst []byte, verb byte, seq uint32) []byte {
	dst = append(dst, verb)
	return binary.BigEndian.AppendUint32(dst, seq)
}

// AppendOK encodes a success response header before the body.
func AppendOK(dst []byte, seq uint32) []byte {
	dst = append(dst, StatusOK)
	return binary.BigEndian.AppendUint32(dst, seq)
}

// AppendError encodes a complete error response.
func AppendError(dst []byte, seq uint32, code byte, msg string) []byte {
	dst = append(dst, StatusErr)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = append(dst, code)
	return AppendString(dst, msg)
}

// --- Query results ------------------------------------------------------

// ResultRow is one wire result row: the object's identity (nil OID for
// aggregate rows) and its projected values, aligned with the column list.
type ResultRow struct {
	OID    model.OID
	Values []model.Value
}

// Result is a wire query result.
type Result struct {
	Cols []string
	Rows []ResultRow
}

// AppendResult encodes a query result.
func AppendResult(dst []byte, res *Result) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(res.Cols)))
	for _, c := range res.Cols {
		dst = AppendString(dst, c)
	}
	dst = binary.AppendUvarint(dst, uint64(len(res.Rows)))
	for _, row := range res.Rows {
		dst = AppendOID(dst, row.OID)
		for _, v := range row.Values {
			dst = model.AppendValue(dst, v)
		}
	}
	return dst
}

// ReadResult decodes a query result.
func ReadResult(r *Reader) (*Result, error) {
	ncols := r.Uvarint()
	if r.err != nil || ncols > uint64(r.Remaining())+1 {
		return nil, ErrMalformed
	}
	res := &Result{Cols: make([]string, 0, ncols)}
	for i := uint64(0); i < ncols; i++ {
		res.Cols = append(res.Cols, r.ReadString())
	}
	nrows := r.Uvarint()
	if r.err != nil || nrows > uint64(r.Remaining())+1 {
		return nil, ErrMalformed
	}
	res.Rows = make([]ResultRow, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		row := ResultRow{OID: r.OID(), Values: make([]model.Value, 0, ncols)}
		for j := uint64(0); j < ncols; j++ {
			row.Values = append(row.Values, r.Value())
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, r.Err()
}

// Object is one wire-encoded object: its identity, class name, and
// effective attributes (inheritance and defaults applied server-side).
type Object struct {
	OID   model.OID
	Class string
	Attrs map[string]model.Value
}

// AppendObject encodes an object.
func AppendObject(dst []byte, o *Object) []byte {
	dst = AppendOID(dst, o.OID)
	dst = AppendString(dst, o.Class)
	return AppendAttrs(dst, o.Attrs)
}

// ReadObject decodes an object.
func ReadObject(r *Reader) (*Object, error) {
	o := &Object{OID: r.OID(), Class: r.ReadString()}
	o.Attrs = r.Attrs()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return o, nil
}
