package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"oodb"
	"oodb/internal/authz"
	"oodb/internal/model"
	"oodb/internal/server/client"
	"oodb/internal/server/proto"
)

// newTestDB opens a fresh database with a small schema.
func newTestDB(t *testing.T) *oodb.DB {
	t.Helper()
	db, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
	); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer starts a server over db and tears it down with the test.
func startServer(t *testing.T, db *oodb.DB, opts Options) *Server {
	t.Helper()
	s := New(db, opts)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Drain(2 * time.Second) })
	return s
}

func dial(t *testing.T, s *Server, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(s.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	c := dial(t, s, client.Options{Role: "app"})

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	oid, err := c.Insert("Part", map[string]model.Value{
		"name": model.String("cam"), "weight": model.Int(12),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fetch: effective attributes come back with class name.
	obj, err := c.Fetch(oid)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Class != "Part" || model.Compare(obj.Attrs["weight"], model.Int(12)) != 0 {
		t.Fatalf("fetch: got %+v", obj)
	}

	// Get: one attribute.
	v, err := c.Get(oid, "name")
	if err != nil {
		t.Fatal(err)
	}
	if model.Compare(v, model.String("cam")) != 0 {
		t.Fatalf("get: %v", v)
	}

	// Update + cached re-read through the session workspace.
	if err := c.Update(oid, map[string]model.Value{"weight": model.Int(15)}); err != nil {
		t.Fatal(err)
	}
	if v, err = c.Get(oid, "weight"); err != nil || model.Compare(v, model.Int(15)) != 0 {
		t.Fatalf("get after update: %v %v (read-your-writes through the workspace)", v, err)
	}

	// Query and snapshot query agree.
	for _, q := range []func(string) (*client.Result, error){c.Query, c.QuerySnapshot} {
		res, err := q(`SELECT name FROM Part WHERE weight > 10`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || model.Compare(res.Rows[0].Values[0], model.String("cam")) != 0 {
			t.Fatalf("query: %+v", res)
		}
	}

	// Delete, then NotFound.
	if err := c.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(oid); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("fetch deleted: %v, want ErrNotFound", err)
	}
}

// TestClientServerParity runs the same workload embedded and remote and
// compares what each surface observes — the wire adds transport, not
// semantics.
func TestClientServerParity(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	c := dial(t, s, client.Options{Role: "app"})

	// Same inserts through both surfaces.
	var localOID oodb.OID
	if err := db.Do(func(tx *oodb.Tx) error {
		var err error
		localOID, err = tx.Insert("Part", oodb.Attrs{"name": oodb.String("local"), "weight": oodb.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	remoteOID, err := c.Insert("Part", map[string]model.Value{
		"name": model.String("remote"), "weight": model.Int(2)})
	if err != nil {
		t.Fatal(err)
	}

	const q = `SELECT name, weight FROM Part`
	lres, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(lres.Rows) != 2 || len(rres.Rows) != len(lres.Rows) {
		t.Fatalf("row counts: local %d remote %d", len(lres.Rows), len(rres.Rows))
	}
	render := func(cols []string, rows [][]model.Value) string {
		out := fmt.Sprintf("%v\n", cols)
		for _, vals := range rows {
			for _, v := range vals {
				out += v.String() + "|"
			}
			out += "\n"
		}
		return out
	}
	lrows := make([][]model.Value, len(lres.Rows))
	for i, r := range lres.Rows {
		lrows[i] = r.Values
	}
	rrows := make([][]model.Value, len(rres.Rows))
	for i, r := range rres.Rows {
		rrows[i] = r.Values
	}
	if render(lres.Cols, lrows) != render(rres.Cols, rrows) {
		t.Fatalf("rendered results differ:\nlocal:\n%s\nremote:\n%s",
			render(lres.Cols, lrows), render(rres.Cols, rrows))
	}

	// Both sides see each other's objects identically.
	for _, oid := range []oodb.OID{localOID, remoteOID} {
		lobj, err := db.Fetch(oid)
		if err != nil {
			t.Fatal(err)
		}
		robj, err := c.Fetch(oid)
		if err != nil {
			t.Fatal(err)
		}
		for _, attr := range []string{"name", "weight"} {
			lv, err := db.Get(lobj, attr)
			if err != nil {
				t.Fatal(err)
			}
			if model.Compare(lv, robj.Attrs[attr]) != 0 {
				t.Fatalf("oid %v attr %s: local %v remote %v", oid, attr, lv, robj.Attrs[attr])
			}
		}
	}
}

func TestExplicitTransaction(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	c := dial(t, s, client.Options{Role: "app"})

	// Abort rolls back.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := c.Insert("Part", map[string]model.Value{"name": model.String("tmp"), "weight": model.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Inside the transaction the session reads its own uncommitted write.
	res, err := c.Query(`SELECT name FROM Part WHERE name = 'tmp'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("in-tx query: %v rows=%v", err, res)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(oid); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("after abort: %v, want ErrNotFound", err)
	}

	// Commit persists.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err = c.Insert("Part", map[string]model.Value{"name": model.String("kept"), "weight": model.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fetch(oid); err != nil {
		t.Fatalf("committed object missing: %v", err)
	}

	// Transaction-state errors are typed.
	if err := c.Commit(); !errors.Is(err, client.ErrTxState) {
		t.Fatalf("commit without tx: %v", err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); !errors.Is(err, client.ErrTxState) {
		t.Fatalf("double begin: %v", err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeRejections(t *testing.T) {
	db := newTestDB(t)
	az := db.Authorizer()
	az.AddRole("reader")
	s := startServer(t, db, Options{
		Authorizer:  az,
		Tokens:      map[string]string{"reader": "tok"},
		MaxSessions: 1,
	})

	// Bad token.
	if _, err := client.Dial(s.Addr().String(), client.Options{Role: "reader", Token: "wrong"}); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("bad token: %v", err)
	}
	// Unknown role.
	if _, err := client.Dial(s.Addr().String(), client.Options{Role: "nobody"}); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("unknown role: %v", err)
	}
	// Session limit.
	c1 := dial(t, s, client.Options{Role: "reader", Token: "tok"})
	_ = c1
	if _, err := client.Dial(s.Addr().String(), client.Options{Role: "reader", Token: "tok"}); !errors.Is(err, client.ErrServerFull) {
		t.Fatalf("over session limit: %v", err)
	}
}

// TestSessionCapNotOvershot races many concurrent handshakes against a
// small session cap: the atomic slot reservation must never admit more
// than MaxSessions, no matter how the handshakes interleave.
func TestSessionCapNotOvershot(t *testing.T) {
	db := newTestDB(t)
	const limit = 4
	s := startServer(t, db, Options{MaxSessions: limit})

	const dials = 32
	var mu sync.Mutex
	var admitted []*client.Client
	var wg sync.WaitGroup
	for i := 0; i < dials; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String(), client.Options{Role: "app"})
			if err != nil {
				if !errors.Is(err, client.ErrServerFull) {
					t.Errorf("unexpected dial error: %v", err)
				}
				return
			}
			mu.Lock()
			admitted = append(admitted, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	defer func() {
		for _, c := range admitted {
			_ = c.Close()
		}
	}()
	if len(admitted) > limit {
		t.Fatalf("%d sessions admitted past cap %d", len(admitted), limit)
	}
	if got := s.Sessions(); got > limit {
		t.Fatalf("server counts %d active sessions, cap %d", got, limit)
	}
}

// TestClientFailsFastAfterTimeout: a request timeout leaves the stream
// desynchronized (the late response is still in flight), so the client
// must latch closed and fail later calls immediately with ErrClosed
// instead of writing onto the broken stream.
func TestClientFailsFastAfterTimeout(t *testing.T) {
	db := newTestDB(t)
	gate := make(chan struct{})
	s := startServer(t, db, Options{})
	s.testHook = func(verb byte) {
		if verb == proto.VerbPing {
			<-gate
		}
	}
	defer close(gate)

	c := dial(t, s, client.Options{Role: "app", RequestTimeout: 100 * time.Millisecond})
	if err := c.Ping(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("stalled ping: %v, want ErrClosed wrap", err)
	}
	start := time.Now()
	if err := c.Ping(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after timeout: %v, want ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("call after timeout took %v; want immediate ErrClosed", elapsed)
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	body := proto.AppendHello(nil, proto.Hello{Version: proto.Version + 7, Role: "x"})
	payload := proto.AppendRequest(nil, proto.VerbHello, 1)
	payload = append(payload, body...)
	if err := proto.WriteFrame(nc, payload); err != nil {
		t.Fatal(err)
	}
	resp, err := proto.ReadFrame(nc, proto.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	r := proto.NewReader(resp)
	if st := r.Byte(); st != proto.StatusErr {
		t.Fatalf("status %d", st)
	}
	r.Uint32()
	if code := r.Byte(); code != proto.ErrCodeVersion {
		t.Fatalf("code %d, want ErrCodeVersion", code)
	}
}

// TestAuthorizationEnforced proves the wire surface applies the same
// lattice semantics as the embedded Session: content filtering on
// queries, typed denials on writes.
func TestAuthorizationEnforced(t *testing.T) {
	db := newTestDB(t)
	cl, err := db.ClassByName("Part")
	if err != nil {
		t.Fatal(err)
	}
	az := db.Authorizer()
	az.AddRole("reader")
	az.AddRole("writer")
	if err := az.Grant(authz.Grant{Role: "reader", Type: authz.Read, Object: authz.Class(cl.ID)}); err != nil {
		t.Fatal(err)
	}
	if err := az.Grant(authz.Grant{Role: "writer", Type: authz.Write, Object: authz.Class(cl.ID)}); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, db, Options{Authorizer: az})

	w := dial(t, s, client.Options{Role: "writer"})
	oid, err := w.Insert("Part", map[string]model.Value{"name": model.String("axle"), "weight": model.Int(3)})
	if err != nil {
		t.Fatal(err)
	}

	r := dial(t, s, client.Options{Role: "reader"})
	// Reader may read...
	if _, err := r.Fetch(oid); err != nil {
		t.Fatal(err)
	}
	res, err := r.Query(`SELECT name FROM Part`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("reader query: %v %v", err, res)
	}
	// ...but not write.
	if err := r.Update(oid, map[string]model.Value{"weight": model.Int(9)}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("reader update: %v, want ErrDenied", err)
	}
	if err := r.Delete(oid); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("reader delete: %v, want ErrDenied", err)
	}
	if _, err := r.Insert("Part", map[string]model.Value{"name": model.String("x")}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("reader insert: %v, want ErrDenied", err)
	}

	// A role with no grants sees an empty world, not an error (content
	// filtering, like a view).
	az.AddRole("outsider")
	o := dial(t, s, client.Options{Role: "outsider"})
	res, err = o.Query(`SELECT name FROM Part`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("outsider sees %d rows", len(res.Rows))
	}
	if _, err := o.Fetch(oid); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("outsider fetch: %v, want ErrDenied", err)
	}
}

// TestIdleSessionEviction proves an evicted session's open transaction is
// aborted and its locks released, so an abandoned client cannot wedge
// writers.
func TestIdleSessionEviction(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{IdleTimeout: 150 * time.Millisecond})
	var oid model.OID
	if err := db.Do(func(tx *oodb.Tx) error {
		var err error
		oid, err = tx.Insert("Part", oodb.Attrs{"name": oodb.String("contended"), "weight": oodb.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	idle := dial(t, s, client.Options{Role: "app"})
	if err := idle.Begin(); err != nil {
		t.Fatal(err)
	}
	// The idle session takes an exclusive lock and then goes silent.
	if err := idle.Update(oid, map[string]model.Value{"weight": model.Int(2)}); err != nil {
		t.Fatal(err)
	}

	evictedBefore := mSessionsEvicted.Value()
	deadline := time.Now().Add(5 * time.Second)
	for mSessionsEvicted.Value() == evictedBefore {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The abandoned transaction's lock must be gone: a new session can
	// write the same object. (db.Do would retry a deadlock, but it cannot
	// wait out a lock that is never released — a 2s cap proves release.)
	active := dial(t, s, client.Options{Role: "app"})
	done := make(chan error, 1)
	go func() {
		done <- active.Update(oid, map[string]model.Value{"weight": model.Int(3)})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("update after eviction: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update blocked: evicted session's locks not released")
	}

	// The evicted client's connection is dead.
	if err := idle.Ping(); err == nil {
		t.Fatal("evicted session still answers")
	}
}

// TestSessionQueueShed fills one session's pipeline while its worker is
// held busy: overflow must come back as typed retryable sheds without
// executing, and the server must stay healthy.
func TestSessionQueueShed(t *testing.T) {
	db := newTestDB(t)
	gate := make(chan struct{})
	s := startServer(t, db, Options{SessionQueue: 2, MaxInFlight: 64})
	s.testHook = func(verb byte) {
		if verb == proto.VerbPing {
			<-gate
		}
	}

	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := proto.AppendRequest(nil, proto.VerbHello, 1)
	hello = proto.AppendHello(hello, proto.Hello{Version: proto.Version, Role: "app"})
	if err := proto.WriteFrame(nc, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.ReadFrame(nc, proto.MaxFrame); err != nil {
		t.Fatal(err)
	}

	// Pipeline many pings: 1 executes (blocked on the gate), SessionQueue
	// buffer, the rest shed.
	const n = 10
	for seq := uint32(2); seq < 2+n; seq++ {
		if err := proto.WriteFrame(nc, proto.AppendRequest(nil, proto.VerbPing, seq)); err != nil {
			t.Fatal(err)
		}
	}
	sheds := 0
	for i := 0; i < n-3; i++ { // at least n-1-SessionQueue responses are sheds
		resp, err := proto.ReadFrame(nc, proto.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		r := proto.NewReader(resp)
		if st := r.Byte(); st == proto.StatusErr {
			r.Uint32()
			if code := r.Byte(); code == proto.ErrCodeRetryable {
				sheds++
				continue
			}
		}
		t.Fatalf("expected retryable shed, got frame %v", resp)
	}
	if sheds == 0 {
		t.Fatal("no sheds observed")
	}
	close(gate) // release the worker; remaining pings complete
	for i := 0; i < 3; i++ {
		if _, err := proto.ReadFrame(nc, proto.MaxFrame); err != nil {
			t.Fatalf("queued responses after release: %v", err)
		}
	}
}

// TestPanicIsolation injects a panic into one session's request: that
// session dies, its transaction aborts, and the server keeps serving
// other sessions.
func TestPanicIsolation(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	var once sync.Once
	s.testHook = func(verb byte) {
		if verb == proto.VerbPing {
			var fire bool
			once.Do(func() { fire = true })
			if fire {
				panic("injected")
			}
		}
	}

	victim := dial(t, s, client.Options{Role: "app"})
	before := mConnPanics.Value()
	_ = victim.Ping() // the injected panic kills this session
	deadline := time.Now().Add(2 * time.Second)
	for mConnPanics.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("panic not recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Server still healthy for a new session.
	healthy := dial(t, s, client.Options{Role: "app"})
	if err := healthy.Ping(); err != nil {
		t.Fatalf("server unhealthy after isolated panic: %v", err)
	}
}

// TestConcurrentSessions is the -race stress: many sessions doing mixed
// reads, writes and transactions at once.
func TestConcurrentSessions(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{MaxInFlight: 32})

	const sessions = 16
	const opsPer = 20
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String(), client.Options{Role: "app"})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for op := 0; op < opsPer; op++ {
				oid, err := c.Insert("Part", map[string]model.Value{
					"name":   model.String(fmt.Sprintf("p-%d-%d", id, op)),
					"weight": model.Int(int64(op)),
				})
				if err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
				if _, err := c.Get(oid, "weight"); err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if op%3 == 0 {
					if err := c.Update(oid, map[string]model.Value{"weight": model.Int(int64(op + 100))}); err != nil {
						errs <- fmt.Errorf("update: %w", err)
						return
					}
				}
				if op%5 == 0 {
					if _, err := c.QuerySnapshot(fmt.Sprintf(`SELECT name FROM Part WHERE weight = %d`, op)); err != nil {
						errs <- fmt.Errorf("snapshot query: %w", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !client.Retryable(err) {
			t.Fatal(err)
		}
	}

	res, err := db.Query(`SELECT * FROM Part`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != sessions*opsPer {
		t.Fatalf("rows = %d, want %d", len(res.Rows), sessions*opsPer)
	}
}
