package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"oodb/internal/authz"
	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/query"
	"oodb/internal/schema"
	"oodb/internal/server/proto"
	"oodb/internal/storage"
	"oodb/internal/txn"
	"oodb/internal/workspace"
)

// wsCacheCap bounds each session's workspace cache (objects, not bytes).
const wsCacheCap = 4096

// request is one decoded frame waiting for the session worker.
type request struct {
	verb byte
	seq  uint32
	body []byte
	at   time.Time
}

// conn is one client session. Two goroutines serve it: the reader decodes
// frames and enqueues them (shedding on overflow without blocking), the
// worker executes them in order and writes responses. The explicit
// transaction and the workspace are touched only by the worker, so they
// need no locks; teardown runs after both goroutines exit.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	id  uint64

	role string
	ws   *workspace.Workspace
	tx   *core.Tx

	lastActive atomic.Int64
	draining   atomic.Bool
	evicted    atomic.Bool
	dead       atomic.Bool // worker hit a panic or fatal write error

	queue chan request
}

// serveConn owns the connection lifecycle: handshake, reader loop, worker,
// teardown. Runs on its own goroutine per accepted connection.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{
		srv:   s,
		nc:    nc,
		br:    bufio.NewReaderSize(&countingReader{r: nc}, 32<<10),
		queue: make(chan request, s.opts.SessionQueue),
	}
	c.lastActive.Store(time.Now().UnixNano())
	if !c.handshake() {
		_ = nc.Close()
		return
	}
	s.addConn(c)
	// A Drain that swept s.conns between the handshake's draining check
	// and addConn never saw this connection; re-check so it still gets
	// its read-deadline kick instead of idling out the drain timeout.
	if s.draining.Load() {
		c.startDrain()
	}
	mSessionsOpened.Add(1)
	mSessionsActive.Set(s.sessions.Load())

	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		c.workerLoop()
	}()
	c.readerLoop()
	close(c.queue)
	<-workerDone

	// Teardown: an open transaction at session end is aborted — this is
	// what releases an evicted or crashed session's locks.
	if c.tx != nil {
		if c.evicted.Load() || s.draining.Load() {
			mDrainAborts.Add(1)
		}
		_ = c.tx.Abort()
		c.tx = nil
	}
	_ = nc.Close()
	s.removeConn(c)
	mSessionsActive.Set(s.sessions.Add(-1))
}

// countingReader feeds the bytes-in counter under the bufio reader.
type countingReader struct{ r io.Reader }

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		mBytesIn.Add(uint64(n))
	}
	return n, err
}

// handshake reads and answers the hello frame. It reports whether the
// session may proceed; on success the session slot in s.sessions is
// already reserved (teardown in serveConn releases it).
func (c *conn) handshake() (ok bool) {
	s := c.srv
	_ = c.nc.SetReadDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	payload, err := proto.ReadFrame(c.br, s.opts.MaxFrame)
	if err != nil {
		if errors.Is(err, proto.ErrFrameTooLarge) {
			c.writeResponse(proto.AppendError(nil, 0, proto.ErrCodeTooLarge, err.Error()))
		}
		mSessionsRejected.Add(1)
		return false
	}
	r := proto.NewReader(payload)
	verb := r.Byte()
	seq := r.Uint32()
	hello, herr := proto.ReadHello(r)
	reject := func(code byte, msg string) bool {
		mSessionsRejected.Add(1)
		c.writeResponse(proto.AppendError(nil, seq, code, msg))
		return false
	}
	switch {
	case verb != proto.VerbHello || herr != nil:
		return reject(proto.ErrCodeBadRequest, "malformed handshake")
	case hello.Version != proto.Version:
		return reject(proto.ErrCodeVersion,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, proto.Version))
	case s.draining.Load():
		return reject(proto.ErrCodeDraining, "server is draining")
	}
	// Reserve the session slot atomically before any further checks:
	// N concurrent handshakes racing a check-then-increment could all
	// pass a bare Load comparison and overshoot the cap. Any rejection
	// past this point rolls the reservation back.
	if s.sessions.Add(1) > int64(s.opts.MaxSessions) {
		s.sessions.Add(-1)
		return reject(proto.ErrCodeServerFull,
			fmt.Sprintf("session limit %d reached", s.opts.MaxSessions))
	}
	defer func() {
		if !ok {
			s.sessions.Add(-1)
		}
	}()
	if s.opts.Tokens != nil {
		want, ok := s.opts.Tokens[hello.Role]
		if !ok || want != hello.Token {
			return reject(proto.ErrCodeAuth, "unknown role or bad token")
		}
	}
	c.role = hello.Role
	c.id = s.sessionSeq.Add(1)
	c.ws = s.db.NewWorkspace()
	resp := proto.AppendOK(nil, seq)
	resp = proto.AppendWelcome(resp, proto.Welcome{Version: proto.Version, SessionID: c.id})
	return c.writeResponse(resp)
}

// readerLoop decodes frames and enqueues them for the worker. It never
// blocks on the queue: overflow is shed immediately with a typed
// retryable error, which is the per-session half of admission control.
func (c *conn) readerLoop() {
	s := c.srv
	for {
		// The read deadline doubles as a backstop for the janitor: a
		// session that sends nothing for well past the idle limit fails
		// its read even if eviction lost the race.
		_ = c.nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout + s.opts.IdleTimeout/2))
		payload, err := proto.ReadFrame(c.br, s.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, proto.ErrFrameTooLarge) {
				// The stream is unsynchronized past a refused length
				// prefix; answer with the typed error and hang up.
				c.writeResponse(proto.AppendError(nil, 0, proto.ErrCodeTooLarge, err.Error()))
			}
			return
		}
		if c.draining.Load() || c.dead.Load() {
			return
		}
		if len(payload) < 5 {
			// Too short to carry verb+seq. The frame boundary is intact,
			// so the connection survives; seq 0 tells the client this
			// response matches no request it can identify.
			c.writeResponse(proto.AppendError(nil, 0, proto.ErrCodeBadRequest, "short request"))
			continue
		}
		r := proto.NewReader(payload)
		req := request{verb: r.Byte(), seq: r.Uint32(), body: payload[5:], at: time.Now()}
		c.lastActive.Store(req.at.UnixNano())
		select {
		case c.queue <- req:
		default:
			mReqShed.Add(1)
			c.writeResponse(proto.AppendError(nil, req.seq, proto.ErrCodeRetryable,
				"session queue full; retry"))
		}
	}
}

// workerLoop executes queued requests in order.
func (c *conn) workerLoop() {
	for req := range c.queue {
		if c.dead.Load() {
			continue // drain the queue without executing
		}
		resp := c.execute(req)
		if resp != nil && !c.writeResponse(resp) {
			c.dead.Store(true)
			_ = c.nc.Close()
		}
	}
}

// execute runs one request under the global in-flight cap, with panic
// isolation. It returns the encoded response (nil if the request was shed
// with a response already written).
func (c *conn) execute(req request) (resp []byte) {
	s := c.srv
	// Global admission: a bounded wait for an execution slot, then shed.
	select {
	case s.inflight <- struct{}{}:
	default:
		t := time.NewTimer(s.opts.QueueWait)
		select {
		case s.inflight <- struct{}{}:
			t.Stop()
		case <-t.C:
			mReqShed.Add(1)
			return proto.AppendError(nil, req.seq, proto.ErrCodeRetryable,
				"server over capacity; retry")
		}
	}
	mReqInflight.Add(1)
	defer func() {
		<-s.inflight
		mReqInflight.Add(-1)
		mReqLatencyNs.Observe(uint64(time.Since(req.at)))
		if p := recover(); p != nil {
			// Panic isolation: the fault is confined to this session. Its
			// transaction state is unknowable, so teardown aborts it and
			// the connection closes; the server keeps serving.
			mConnPanics.Add(1)
			obs.Logf("server: session %d: panic in %s: %v", c.id, proto.VerbName(req.verb), p)
			c.dead.Store(true)
			c.writeResponse(proto.AppendError(nil, req.seq, proto.ErrCodeInternal,
				fmt.Sprintf("internal error in %s", proto.VerbName(req.verb))))
			_ = c.nc.Close()
			resp = nil
		}
	}()
	if hook := s.testHook; hook != nil {
		hook(req.verb)
	}
	countVerb(req.verb)
	body, err := c.dispatch(req.verb, proto.NewReader(req.body))
	if err != nil {
		mReqErrors.Add(1)
		return proto.AppendError(nil, req.seq, errCode(err), err.Error())
	}
	return append(proto.AppendOK(nil, req.seq), body...)
}

func countVerb(verb byte) {
	switch verb {
	case proto.VerbQuery:
		mReqQuery.Add(1)
	case proto.VerbQuerySnapshot:
		mReqSnapshot.Add(1)
	case proto.VerbFetch:
		mReqFetch.Add(1)
	case proto.VerbGet:
		mReqGet.Add(1)
	case proto.VerbInsert:
		mReqInsert.Add(1)
	case proto.VerbUpdate:
		mReqUpdate.Add(1)
	case proto.VerbDelete:
		mReqDelete.Add(1)
	case proto.VerbBegin:
		mReqBegin.Add(1)
	case proto.VerbCommit:
		mReqCommit.Add(1)
	case proto.VerbCommitAsync:
		mReqCommitAsync.Add(1)
	case proto.VerbAbort:
		mReqAbort.Add(1)
	case proto.VerbPing:
		mReqPing.Add(1)
	case proto.VerbClasses:
		mReqClasses.Add(1)
	}
}

// errCode maps engine errors to wire codes. The codes, not the message
// strings, are the client-facing contract.
func errCode(err error) byte {
	switch {
	case errors.Is(err, authz.ErrNoSuchRole):
		return proto.ErrCodeAuth
	case errors.Is(err, authz.ErrDenied):
		return proto.ErrCodeDenied
	case errors.Is(err, storage.ErrNoObject), errors.Is(err, storage.ErrNoRecord),
		errors.Is(err, schema.ErrNoSuchClass), errors.Is(err, schema.ErrNoSuchAttribute):
		return proto.ErrCodeNotFound
	case errors.Is(err, txn.ErrDeadlock):
		return proto.ErrCodeConflict
	case errors.Is(err, core.ErrPoisoned), errors.Is(err, core.ErrClosed):
		return proto.ErrCodeUnavailable
	case errors.Is(err, core.ErrTxnFinished), errors.Is(err, core.ErrReadOnlyTxn),
		errors.Is(err, errTxOpen), errors.Is(err, errNoTx):
		return proto.ErrCodeTxState
	case errors.Is(err, proto.ErrMalformed), errors.Is(err, schema.ErrDomain):
		return proto.ErrCodeBadRequest
	default:
		return proto.ErrCodeInternal
	}
}

// Transaction-state errors surfaced to clients with ErrCodeTxState.
var (
	errTxOpen = errors.New("server: transaction already open on this session")
	errNoTx   = errors.New("server: no transaction open on this session")
)

// writeResponse frames and writes one response under the write deadline.
// Response writers can race (worker vs reader-side sheds), so the write
// is a single Write call of the framed buffer — net.Conn serializes
// concurrent Writes, and one frame per Write keeps them atomic on the
// stream. It reports whether the write succeeded.
func (c *conn) writeResponse(payload []byte) bool {
	framed := proto.AppendFrame(make([]byte, 0, len(payload)+4), payload)
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
	n, err := c.nc.Write(framed)
	mBytesOut.Add(uint64(n))
	return err == nil
}

// startDrain tells the session to stop accepting input and finish queued
// work. The immediate read deadline kicks the reader out of its blocked
// frame read; the drain flag makes it exit instead of reporting an error.
func (c *conn) startDrain() {
	c.draining.Store(true)
	_ = c.nc.SetReadDeadline(time.Now())
}

// evict closes an idle session. Teardown aborts its open transaction.
func (c *conn) evict() {
	if c.evicted.Swap(true) {
		return
	}
	mSessionsEvicted.Add(1)
	obs.Logf("server: session %d (%s) evicted after idle timeout", c.id, c.role)
	_ = c.nc.Close()
}

// --- Request dispatch ---------------------------------------------------

// dispatch decodes and executes one request body, returning the encoded
// response body.
func (c *conn) dispatch(verb byte, r *proto.Reader) ([]byte, error) {
	switch verb {
	case proto.VerbPing:
		return nil, nil
	case proto.VerbClasses:
		return c.doClasses()
	case proto.VerbQuery, proto.VerbQuerySnapshot:
		src := r.ReadString()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return c.doQuery(src, verb == proto.VerbQuerySnapshot)
	case proto.VerbFetch:
		oid := r.OID()
		refresh := r.Byte()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return c.doFetch(oid, refresh != 0)
	case proto.VerbGet:
		oid := r.OID()
		attr := r.ReadString()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return c.doGet(oid, attr)
	case proto.VerbInsert:
		class := r.ReadString()
		attrs := r.Attrs()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return c.doInsert(class, attrs)
	case proto.VerbUpdate:
		oid := r.OID()
		attrs := r.Attrs()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, c.doUpdate(oid, attrs)
	case proto.VerbDelete:
		oid := r.OID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, c.doDelete(oid)
	case proto.VerbBegin:
		if c.tx != nil {
			return nil, errTxOpen
		}
		c.tx = c.srv.db.Begin()
		return nil, nil
	case proto.VerbCommit, proto.VerbCommitAsync:
		if c.tx == nil {
			return nil, errNoTx
		}
		tx := c.tx
		c.tx = nil
		if verb == proto.VerbCommitAsync {
			return nil, tx.CommitAsync()
		}
		return nil, tx.Commit()
	case proto.VerbAbort:
		if c.tx == nil {
			return nil, errNoTx
		}
		tx := c.tx
		c.tx = nil
		return nil, tx.Abort()
	default:
		return nil, fmt.Errorf("%w: unknown verb %d", proto.ErrMalformed, verb)
	}
}

// doClasses returns the sorted class names of the served database — the
// schema surface a federation or shard router needs to enumerate remote
// members. Read access to the database is required when an authorizer is
// configured, mirroring the aggregate-row rule in doQuery.
func (c *conn) doClasses() ([]byte, error) {
	if err := c.check(authz.Read, authz.Database()); err != nil {
		return nil, err
	}
	classes := c.srv.db.Engine().Catalog.Classes()
	names := make([]string, 0, len(classes))
	for _, cl := range classes {
		names = append(names, cl.Name)
	}
	sort.Strings(names)
	return proto.AppendStrings(nil, names), nil
}

// check runs one authorization check, or allows everything in open mode.
func (c *conn) check(t authz.AuthType, obj authz.Object) error {
	az := c.srv.opts.Authorizer
	if az == nil {
		return nil
	}
	return az.Check(c.role, t, obj)
}

// allowed is check as a boolean.
func (c *conn) allowed(t authz.AuthType, obj authz.Object) bool {
	return c.check(t, obj) == nil
}

// doQuery runs a query — inside the session transaction when one is open
// (reading its uncommitted writes), in a snapshot for VerbQuerySnapshot,
// in its own read-only transaction otherwise — and filters rows to the
// instances the role may read, mirroring the embedded Session semantics.
func (c *conn) doQuery(src string, snapshot bool) ([]byte, error) {
	db := c.srv.db
	var res *query.Result
	var err error
	switch {
	case snapshot:
		res, err = db.QuerySnapshot(src)
	case c.tx != nil:
		res, err = db.QueryTx(c.tx, src)
	default:
		res, err = db.Query(src)
	}
	if err != nil {
		return nil, err
	}
	wire := &proto.Result{Cols: res.Cols, Rows: make([]proto.ResultRow, 0, len(res.Rows))}
	az := c.srv.opts.Authorizer
	for _, row := range res.Rows {
		if az != nil {
			if row.OID.IsNil() {
				// Aggregate rows carry no identity; require whole-database
				// read, as the embedded Session does.
				if !c.allowed(authz.Read, authz.Database()) {
					continue
				}
			} else if !c.allowed(authz.Read, authz.Instance(row.OID)) {
				continue
			}
		}
		wire.Rows = append(wire.Rows, proto.ResultRow{OID: row.OID, Values: row.Values})
	}
	return proto.AppendResult(nil, wire), nil
}

// fetchObject reads an object for this session: through the open
// transaction (locked read) when one is open, else through the session
// workspace — the paper's memory-resident object cache, giving each
// session read-your-writes caching of its working set. refresh bypasses
// the cached copy.
func (c *conn) fetchObject(oid model.OID, refresh bool) (*model.Object, error) {
	if c.tx != nil {
		return c.tx.Fetch(oid)
	}
	if refresh {
		c.ws.Evict(oid)
	}
	if c.ws.Len() >= wsCacheCap {
		// Bound the per-session cache. Everything in it is clean (the
		// server never writes through descriptors), so a wholesale
		// discard is safe and cheaper than LRU bookkeeping.
		c.ws.Discard()
	}
	d, err := c.ws.Fetch(oid)
	if err != nil {
		return nil, err
	}
	return d.Object(), nil
}

// doFetch returns the whole object with effective attributes (defaults
// and inheritance applied). Attribute-level read prohibitions filter the
// affected attributes out of the result rather than failing the fetch —
// content filtering, like the view semantics of Session.Query.
func (c *conn) doFetch(oid model.OID, refresh bool) ([]byte, error) {
	if err := c.check(authz.Read, authz.Instance(oid)); err != nil {
		return nil, err
	}
	db := c.srv.db
	obj, err := c.fetchObject(oid, refresh)
	if err != nil {
		return nil, err
	}
	cl, err := db.Engine().Catalog.Class(obj.Class())
	if err != nil {
		return nil, err
	}
	attrs, err := db.Engine().Catalog.EffectiveAttrs(cl.ID)
	if err != nil {
		return nil, err
	}
	wire := &proto.Object{OID: oid, Class: cl.Name, Attrs: make(map[string]model.Value, len(attrs))}
	for _, a := range attrs {
		if err := c.check(authz.Read, authz.Attribute(cl.ID, a.Name)); err != nil && !errors.Is(err, authz.ErrNoGrant) {
			continue // explicit attribute-level denial: filter it out
		}
		v, err := db.Get(obj, a.Name)
		if err != nil {
			continue
		}
		wire.Attrs[a.Name] = v
	}
	return proto.AppendObject(nil, wire), nil
}

// doGet reads one attribute, honoring attribute-level grants exactly as
// the embedded Session.Get does.
func (c *conn) doGet(oid model.OID, attr string) ([]byte, error) {
	if err := c.check(authz.Read, authz.Instance(oid)); err != nil {
		return nil, err
	}
	obj, err := c.fetchObject(oid, false)
	if err != nil {
		return nil, err
	}
	if err := c.check(authz.Read, authz.Attribute(obj.Class(), attr)); err != nil && !errors.Is(err, authz.ErrNoGrant) {
		return nil, err
	}
	v, err := c.srv.db.Get(obj, attr)
	if err != nil {
		return nil, err
	}
	return proto.AppendValue(nil, v), nil
}

// doInsert creates an object if the role may write the class.
func (c *conn) doInsert(class string, attrs map[string]model.Value) ([]byte, error) {
	db := c.srv.db
	cl, err := db.ClassByName(class)
	if err != nil {
		return nil, err
	}
	if err := c.check(authz.Write, authz.Class(cl.ID)); err != nil {
		return nil, err
	}
	var oid model.OID
	if c.tx != nil {
		oid, err = c.tx.Insert(class, attrs)
	} else {
		err = db.Do(func(tx *core.Tx) error {
			var err error
			oid, err = tx.Insert(class, attrs)
			return err
		})
	}
	if err != nil {
		return nil, err
	}
	return proto.AppendOID(nil, oid), nil
}

// doUpdate writes attributes if the role may write the instance and no
// attribute-level write prohibition covers a written attribute.
func (c *conn) doUpdate(oid model.OID, attrs map[string]model.Value) error {
	if err := c.check(authz.Write, authz.Instance(oid)); err != nil {
		return err
	}
	if az := c.srv.opts.Authorizer; az != nil {
		obj, err := c.fetchObject(oid, false)
		if err != nil {
			return err
		}
		for name := range attrs {
			err := az.Check(c.role, authz.Write, authz.Attribute(obj.Class(), name))
			if err != nil && !errors.Is(err, authz.ErrNoGrant) {
				return fmt.Errorf("attribute %q: %w", name, authz.ErrDenied)
			}
		}
	}
	// The session cache must not serve the pre-update image back to this
	// session (read-your-writes within the session's workspace).
	defer c.ws.Evict(oid)
	if c.tx != nil {
		return c.tx.Update(oid, attrs)
	}
	return c.srv.db.Do(func(tx *core.Tx) error { return tx.Update(oid, attrs) })
}

// doDelete removes an object if the role may write it.
func (c *conn) doDelete(oid model.OID) error {
	if err := c.check(authz.Write, authz.Instance(oid)); err != nil {
		return err
	}
	defer c.ws.Evict(oid)
	if c.tx != nil {
		return c.tx.Delete(oid)
	}
	return c.srv.db.Do(func(tx *core.Tx) error { return tx.Delete(oid) })
}
