package server

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"oodb/internal/model"
	"oodb/internal/server/client"
	"oodb/internal/server/proto"
)

// rawDial opens a TCP connection and optionally completes a valid
// handshake, returning the socket for raw frame injection.
func rawDial(t *testing.T, s *Server, handshake bool) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	if handshake {
		hello := proto.AppendRequest(nil, proto.VerbHello, 1)
		hello = proto.AppendHello(hello, proto.Hello{Version: proto.Version, Role: "fuzz"})
		if err := proto.WriteFrame(nc, hello); err != nil {
			t.Fatal(err)
		}
		if _, err := proto.ReadFrame(nc, proto.MaxFrame); err != nil {
			t.Fatal(err)
		}
	}
	return nc
}

// TestMalformedFramesNeverCrash throws random junk at the server — raw
// garbage bytes, well-framed junk bodies, truncated requests, and real
// verbs with corrupt bodies — before and after handshake. The invariants:
// the server process survives with zero recorded panics, and an honest
// client still gets service afterwards.
func TestMalformedFramesNeverCrash(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{MaxFrame: 1 << 16})
	panicsBefore := mConnPanics.Value()
	rng := rand.New(rand.NewSource(42))

	drainConn := func(nc net.Conn) {
		_ = nc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		_, _ = io.Copy(io.Discard, nc)
	}

	// Round 1: raw garbage streams straight at the handshake.
	for i := 0; i < 50; i++ {
		nc := rawDial(t, s, false)
		junk := make([]byte, rng.Intn(512))
		rng.Read(junk)
		_, _ = nc.Write(junk)
		drainConn(nc)
		nc.Close()
	}

	// Round 2: well-framed junk bodies on handshaken sessions — every
	// verb value (known and unknown), random body bytes.
	for i := 0; i < 100; i++ {
		nc := rawDial(t, s, true)
		for j := 0; j < 5; j++ {
			body := make([]byte, 5+rng.Intn(128))
			rng.Read(body)
			body[0] = byte(rng.Intn(40)) // verbs 0..39, mostly invalid
			if err := proto.WriteFrame(nc, body); err != nil {
				break
			}
		}
		drainConn(nc)
		nc.Close()
	}

	// Round 3: frames shorter than a verb+seq header.
	for i := 0; i < 20; i++ {
		nc := rawDial(t, s, true)
		_ = proto.WriteFrame(nc, make([]byte, rng.Intn(5)))
		drainConn(nc)
		nc.Close()
	}

	// Round 4: an oversized length prefix must be refused with a typed
	// error before the server allocates, then the connection hangs up.
	nc := rawDial(t, s, true)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(s.opts.MaxFrame+1))
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := proto.ReadFrame(nc, proto.MaxFrame)
	if err != nil {
		t.Fatalf("no typed response to oversized frame: %v", err)
	}
	r := proto.NewReader(resp)
	if st := r.Byte(); st != proto.StatusErr {
		t.Fatalf("status %d", st)
	}
	r.Uint32()
	if code := r.Byte(); code != proto.ErrCodeTooLarge {
		t.Fatalf("code %d, want ErrCodeTooLarge", code)
	}
	if _, err := proto.ReadFrame(nc, proto.MaxFrame); err == nil {
		t.Fatal("connection stayed open after oversized frame")
	}

	// Round 5: valid verbs with truncated/corrupt bodies through the
	// dispatcher (these reach dispatch and must fail as BadRequest, not
	// panic).
	nc2 := rawDial(t, s, true)
	seq := uint32(100)
	for _, verb := range []byte{proto.VerbQuery, proto.VerbFetch, proto.VerbGet,
		proto.VerbInsert, proto.VerbUpdate, proto.VerbDelete} {
		for i := 0; i < 20; i++ {
			seq++
			req := proto.AppendRequest(nil, verb, seq)
			tail := make([]byte, rng.Intn(32))
			rng.Read(tail)
			req = append(req, tail...)
			if err := proto.WriteFrame(nc2, req); err != nil {
				t.Fatal(err)
			}
			_ = nc2.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := proto.ReadFrame(nc2, proto.MaxFrame); err != nil {
				t.Fatalf("verb %s corrupt body %d: connection died: %v", proto.VerbName(verb), i, err)
			}
		}
	}
	nc2.Close()

	// Round 6: a deeply nested set value in an Insert body. Two bytes per
	// nesting level means a single frame can claim hundreds of thousands
	// of levels; unbounded decode recursion would overflow the worker's
	// stack — a fatal runtime error recover() cannot contain. The decoder
	// must refuse it as a bad request and keep the connection alive.
	nc3 := rawDial(t, s, true)
	deep := proto.AppendRequest(nil, proto.VerbInsert, 1)
	deep = proto.AppendString(deep, "Part")
	deep = proto.AppendUvarint(deep, 1) // one attribute
	deep = proto.AppendString(deep, "name")
	for i := 0; i < 20000; i++ {
		deep = append(deep, 7 /* KindSet */, 1)
	}
	if err := proto.WriteFrame(nc3, deep); err != nil {
		t.Fatal(err)
	}
	_ = nc3.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err = proto.ReadFrame(nc3, proto.MaxFrame)
	if err != nil {
		t.Fatalf("deep-set insert: connection died: %v", err)
	}
	r = proto.NewReader(resp)
	if st := r.Byte(); st != proto.StatusErr {
		t.Fatalf("deep-set insert: status %d", st)
	}
	r.Uint32()
	if code := r.Byte(); code != proto.ErrCodeBadRequest {
		t.Fatalf("deep-set insert: code %d, want ErrCodeBadRequest", code)
	}
	nc3.Close()

	if got := mConnPanics.Value(); got != panicsBefore {
		t.Fatalf("server recorded %d panics under fuzz", got-panicsBefore)
	}

	// The server still serves honest clients.
	c := dial(t, s, client.Options{Role: "app"})
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after fuzz: %v", err)
	}
	oid, err := c.Insert("Part", map[string]model.Value{"name": model.String("ok"), "weight": model.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(oid); err != nil {
		t.Fatal(err)
	}
}
