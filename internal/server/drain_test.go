package server

import (
	"sync"
	"testing"
	"time"

	"oodb"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/server/client"
)

// TestDrainUnderLoad is the shutdown-correctness regression: drain the
// server while writers are mid-commit and prove that (a) every commit the
// server acknowledged is durable across a restart — zero committed-
// transaction loss, (b) new dials are refused once draining, and (c) the
// drain checkpointed the engine.
func TestDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
	); err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// Writers hammer explicit transactions; each records the OIDs whose
	// Commit the server acknowledged. Anything acked before or during the
	// drain must survive the restart.
	const writers = 8
	var mu sync.Mutex
	var acked []model.OID
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String(), client.Options{Role: "app"})
			if err != nil {
				return
			}
			defer c.Close()
			for n := 0; ; n++ {
				if err := c.Begin(); err != nil {
					return
				}
				oid, err := c.Insert("Part", map[string]model.Value{
					"name":   model.String("drained"),
					"weight": model.Int(int64(id*1000 + n)),
				})
				if err != nil {
					return
				}
				if err := c.Commit(); err != nil {
					return
				}
				mu.Lock()
				acked = append(acked, oid)
				mu.Unlock()
			}
		}(i)
	}

	// Let load build, then drain mid-flight.
	time.Sleep(100 * time.Millisecond)
	ckptBefore := obs.TakeSnapshot().Histograms["core_checkpoint_duration_ns"].Count
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if len(acked) == 0 {
		t.Fatal("no commits acknowledged before drain; load never started")
	}
	t.Logf("drain landed with %d acknowledged commits", len(acked))

	// (b) New dials are refused.
	if _, err := client.Dial(s.Addr().String(), client.Options{Role: "app", DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded against a drained server")
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// Second drain reports closed rather than re-running.
	if err := s.Drain(time.Second); err != ErrServerClosed {
		t.Fatalf("second drain: %v, want ErrServerClosed", err)
	}

	// (c) The drain checkpointed.
	if after := obs.TakeSnapshot().Histograms["core_checkpoint_duration_ns"].Count; after <= ckptBefore {
		t.Fatalf("checkpoint count %d not above %d: drain did not checkpoint", after, ckptBefore)
	}

	// (a) Zero committed-transaction loss: restart and re-read every
	// acknowledged OID.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer db2.Close()
	for _, oid := range acked {
		if _, err := db2.Fetch(oid); err != nil {
			t.Fatalf("acknowledged commit %v lost across drain+restart: %v", oid, err)
		}
	}
}

// TestDrainIdleSessions proves drain completes promptly when sessions are
// connected but quiet, and aborts a straggler's open transaction.
func TestDrainIdleSessions(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(s.Addr().String(), client.Options{Role: "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := c.Insert("Part", map[string]model.Value{"name": model.String("orphan"), "weight": model.Int(1)})
	if err != nil {
		t.Fatal(err)
	}

	abortsBefore := mDrainAborts.Value()
	start := time.Now()
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain of idle sessions took %v", d)
	}
	if mDrainAborts.Value() != abortsBefore+1 {
		t.Fatalf("drain aborts = %d, want %d", mDrainAborts.Value(), abortsBefore+1)
	}
	// The straggler's uncommitted insert must not exist.
	if _, err := db.Fetch(oid); err == nil {
		t.Fatal("uncommitted insert survived drain")
	}
}
